package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name with their
// HELP/TYPE headers, series within a family sorted by label set, so the
// output is deterministic for a given registry state. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the series table under the lock, then render outside it
	// (instrument reads are individually synchronised).
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelString(all[i].labels) < labelString(all[j].labels)
	})

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			lastFamily = s.name
			if h := help[s.name]; h != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.name, escapeHelp(h))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind())
		}
		s.write(bw)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's exposition at
// any path (mount it at /metrics). A nil registry serves an empty body.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (s *series) kind() string {
	switch {
	case s.counter != nil:
		return "counter"
	case s.gauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

func (s *series) write(w io.Writer) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels), s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels), s.gauge.Value())
	case s.hist != nil:
		snap := s.hist.Snapshot()
		for i, b := range snap.Bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", s.name,
				labelString(append(append([]Label(nil), s.labels...), L("le", formatFloat(b)))),
				snap.Cumulative[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.name,
			labelString(append(append([]Label(nil), s.labels...), L("le", "+Inf"))), snap.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(snap.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", s.name, labelString(s.labels), snap.Count)
	}
}

// labelString renders {k="v",...} (empty string for no labels). The
// "le" label is appended after the canonical labels, matching the
// Prometheus client convention of trailing le.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
