// Package obs is the pipeline observability layer: a dependency-free,
// race-safe metrics registry (counters, gauges, bounded histograms with
// quantile snapshots), lightweight per-stage span tracing, and a
// Prometheus-style text exposition.
//
// The paper's evaluation (§IV) is throughput tables; a production
// deployment of the streaming pipeline needs the same numbers live:
// which stage is the bottleneck (match kernel vs. host post-pass vs.
// transfer), how often the retry/degrade ladder fires, which devices the
// health supervisor has quarantined. Every subsystem takes an optional
// *Registry and reports into it; the metric families are documented in
// README.md ("Observability").
//
// # Zero cost when off
//
// The package follows the same contract as faults.Injector and
// health.Supervisor: a nil *Registry is inert. Every method on a nil
// *Registry returns a nil instrument, and every method on a nil
// instrument is a no-op, so call sites may write
//
//	reg.Counter("culzss_writer_segments_total").Inc()
//
// unconditionally — with reg == nil the whole chain costs two nil tests
// and touches no memory. Hot paths that resolve instruments repeatedly
// should still cache them (resolution takes a mutex and builds a map
// key); the wired subsystems resolve once at construction.
//
// # Naming
//
// Metric names follow the Prometheus conventions: snake_case, a
// `culzss_` namespace prefix, `_total` suffix on counters, `_seconds`
// on duration histograms. Labels are ordered canonically (sorted by
// key) so the same label set always resolves to the same series.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds every registered instrument. All methods are safe for
// concurrent use; a nil *Registry is inert (see the package comment).
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by series ID (name + canonical labels)
	help   map[string]string  // family name -> HELP text
	tracer *Tracer
}

// series is one (name, labels) instrument of any kind. Exactly one of
// counter/gauge/hist is non-nil.
type series struct {
	name    string
	labels  []Label // canonically ordered
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry with a default-capacity span
// tracer attached.
func NewRegistry() *Registry {
	r := &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
	r.tracer = newTracer(r, defaultTraceCap)
	return r
}

// SetHelp attaches a HELP line to a metric family for the exposition.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Tracer returns the registry's span tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// canonical sorts labels by key (copying first) and validates them.
func canonical(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// seriesID builds the map key for (name, labels).
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('\x01')
		b.WriteString(l.Value)
	}
	return b.String()
}

// validName enforces the Prometheus metric/label name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup finds or creates the series, calling make under the lock when
// absent. It panics when the same (name, labels) was already registered
// as a different instrument kind, or the name is malformed — both are
// programmer errors.
func (r *Registry) lookup(name string, labels []Label, mk func(*series)) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	labels = canonical(labels)
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, name))
		}
	}
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		return s
	}
	s := &series{name: name, labels: labels}
	mk(s)
	r.series[id] = s
	return s
}

// Counter returns (creating on first use) the counter series for
// (name, labels). Nil registry yields a nil, inert counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.counter = &Counter{} })
	if s.counter == nil {
		panic(fmt.Sprintf("obs: %s already registered as a non-counter", name))
	}
	return s.counter
}

// Gauge returns (creating on first use) the gauge series for
// (name, labels). Nil registry yields a nil, inert gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.gauge = &Gauge{} })
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: %s already registered as a non-gauge", name))
	}
	return s.gauge
}

// Histogram returns (creating on first use) the histogram series for
// (name, labels), with the default duration-oriented buckets. Nil
// registry yields a nil, inert histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (ascending; +Inf is implicit). nil buckets means DefBuckets. The
// bucket layout is fixed at first registration; later calls with
// different buckets return the existing series unchanged.
func (r *Registry) HistogramBuckets(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.hist = newHistogram(buckets) })
	if s.hist == nil {
		panic(fmt.Sprintf("obs: %s already registered as a non-histogram", name))
	}
	return s.hist
}

// Counter is a monotonically increasing int64. All methods are safe for
// concurrent use and inert on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that may go up and down. All methods are safe for
// concurrent use and inert on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
