package obs

import (
	"math"
	"sort"
	"sync"
)

// DefBuckets are the default histogram bounds, in seconds: the pipeline's
// stage durations span microsecond transfers to multi-second degraded
// segments.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// reservoirCap bounds the per-histogram sample reservoir backing the
// quantile snapshots. 512 recent samples give stable p50/p90/p99 for the
// segment-scale event rates this pipeline sees, at 4 KiB per series.
const reservoirCap = 512

// Histogram accumulates float64 observations into fixed buckets
// (Prometheus-style cumulative on exposition) and a bounded reservoir of
// the most recent observations for quantile snapshots. All methods are
// safe for concurrent use and inert on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // per-bucket (non-cumulative), len(bounds)+1
	count  uint64
	sum    float64

	// Ring reservoir of recent observations.
	recent []float64
	next   int
	full   bool
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if len(h.recent) < reservoirCap {
		h.recent = append(h.recent, v)
	} else {
		h.recent[h.next] = v
		h.full = true
	}
	h.next = (h.next + 1) % reservoirCap
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Cumulative[i] counts samples
	// <= Bounds[i]. Count covers everything including the +Inf bucket.
	Bounds     []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
	// quantile source: sorted copy of the recent-sample reservoir.
	sorted []float64
}

// Snapshot returns a consistent copy of the histogram's state. The zero
// snapshot is returned for a nil receiver.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.bounds)),
		Count:      h.count,
		Sum:        h.sum,
		sorted:     append([]float64(nil), h.recent...),
	}
	var run uint64
	for i := range h.bounds {
		run += h.counts[i]
		snap.Cumulative[i] = run
	}
	sort.Float64s(snap.sorted)
	return snap
}

// Quantile returns the q-th quantile (0 <= q <= 1) over the histogram's
// recent-sample reservoir, or 0 when no samples were recorded. The
// reservoir holds the most recent observations (up to its fixed
// capacity), so on a long-lived series this is a sliding-window
// quantile, which is what a dashboard wants anyway.
func (s HistSnapshot) Quantile(q float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[n-1]
	}
	// Nearest-rank on the sorted reservoir.
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return s.sorted[i]
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
