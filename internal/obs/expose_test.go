package obs

import (
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with one of everything, fully
// deterministic (no wall-clock content).
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.SetHelp("culzss_writer_segments_total", "Segments the Writer pipeline processed.")
	r.Counter("culzss_writer_segments_total").Add(12)
	r.Counter("culzss_writer_retries_total").Add(3)
	r.SetHelp("culzss_health_device_state", "Breaker state per device (0 closed, 1 open, 2 half-open).")
	r.Gauge("culzss_health_device_state", L("device", "0")).Set(1)
	r.Gauge("culzss_health_device_state", L("device", "1")).Set(0)
	r.SetHelp("culzss_stage_seconds", "Wall time per pipeline stage.")
	h := r.HistogramBuckets("culzss_stage_seconds", []float64{0.001, 0.01, 0.1, 1}, L("stage", "kernel"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}
	r.Counter("culzss_writer_bytes_in_total").Add(1 << 20)
	// A label value needing escapes.
	r.Counter("culzss_escape_total", L("msg", `quote " slash \ newline`+"\n")).Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	// Map iteration must not leak into the output order.
	var a, b strings.Builder
	r := goldenRegistry()
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two expositions of the same registry differ")
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE culzss_writer_segments_total counter",
		"culzss_writer_segments_total 12",
		`culzss_health_device_state{device="0"} 1`,
		`culzss_stage_seconds_bucket{stage="kernel",le="+Inf"} 5`,
		"culzss_stage_seconds_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Fatalf("nil registry served %q", body)
	}
}
