package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	// Every chain off a nil registry must be a no-op, not a panic.
	r.Counter("c_total").Inc()
	r.Counter("c_total").Add(5)
	r.Gauge("g").Set(3)
	r.Gauge("g").Inc()
	r.Gauge("g").Dec()
	r.Histogram("h_seconds").Observe(0.5)
	r.SetHelp("c_total", "help")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Counter("c_total").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if snap := r.Histogram("h_seconds").Snapshot(); snap.Count != 0 || snap.Quantile(0.5) != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
	tr := r.Tracer()
	sp := tr.Start("op", "stage")
	sp.SetDevice(1).Annotate("k", "v").End(nil)
	tr.Record(Span{})
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("culzss_test_total", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same series.
	if r.Counter("culzss_test_total", L("kind", "a")) != c {
		t.Fatal("lookup did not return the existing series")
	}
	// Label order must not matter.
	c2 := r.Counter("culzss_multi_total", L("b", "2"), L("a", "1"))
	if r.Counter("culzss_multi_total", L("a", "1"), L("b", "2")) != c2 {
		t.Fatal("label order changed series identity")
	}
	g := r.Gauge("culzss_test_gauge")
	g.Set(7)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("culzss_h_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d", snap.Count)
	}
	wantCum := []uint64{1, 3, 4} // <=0.1, <=1, <=10
	for i, want := range wantCum {
		if snap.Cumulative[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, snap.Cumulative[i], want)
		}
	}
	if got := snap.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	if got := snap.Quantile(1); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
	if got := snap.Quantile(0); got != 0.05 {
		t.Fatalf("p0 = %v, want 0.05", got)
	}
	if m := snap.Mean(); m < 11.2 || m > 11.3 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramReservoirSlides(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("culzss_slide_seconds")
	// Fill past the reservoir with small values, then flood with 9s: the
	// quantiles must reflect the recent window, not the whole history.
	for i := 0; i < reservoirCap; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < reservoirCap; i++ {
		h.Observe(9)
	}
	snap := h.Snapshot()
	if snap.Count != 2*reservoirCap {
		t.Fatalf("count = %d", snap.Count)
	}
	if got := snap.Quantile(0.5); got != 9 {
		t.Fatalf("sliding p50 = %v, want 9", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("culzss_kind_total")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("culzss_kind_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestTracerRingAndStageHistogram(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	sp := tr.Start("segment 0", "kernel")
	sp.SetDevice(2).Annotate("retries", "1").End(nil)
	tr.Record(Span{Op: "segment 0", Stage: "frame-emit", Device: -1, Duration: time.Millisecond})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Stage != "kernel" || spans[0].Device != 2 || spans[0].Err != "" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Label{"retries", "1"}) {
		t.Fatalf("span 0 attrs = %v", spans[0].Attrs)
	}
	// Every ended span observes the stage histogram.
	if snap := r.Histogram(StageSecondsMetric, L("stage", "kernel")).Snapshot(); snap.Count != 1 {
		t.Fatalf("stage histogram count = %d", snap.Count)
	}
	if tr.Total() != 2 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestTracerRingWraps(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	n := defaultTraceCap + 10
	for i := 0; i < n; i++ {
		tr.Record(Span{Op: "op", Stage: "s", Device: i})
	}
	spans := tr.Spans()
	if len(spans) != defaultTraceCap {
		t.Fatalf("retained = %d, want %d", len(spans), defaultTraceCap)
	}
	// Oldest retained span is number n-cap; newest is n-1.
	if spans[0].Device != n-defaultTraceCap || spans[len(spans)-1].Device != n-1 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].Device, spans[len(spans)-1].Device)
	}
	if tr.Total() != int64(n) {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	// Race-safety smoke: hammer every instrument kind from many
	// goroutines while snapshots and expositions run concurrently.
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("culzss_conc_total").Inc()
				r.Gauge("culzss_conc_gauge").Add(1)
				r.Histogram("culzss_conc_seconds").Observe(float64(i) / 1000)
				sp := r.Tracer().Start("op", "stage")
				sp.End(nil)
			}
		}(g)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = r.Histogram("culzss_conc_seconds").Snapshot()
				_ = r.Tracer().Spans()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("culzss_conc_total").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}
