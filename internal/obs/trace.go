package obs

import (
	"sync"
	"time"
)

// defaultTraceCap bounds the tracer's completed-span ring. A segment
// produces a handful of spans, so 512 covers the recent ~100 segments —
// enough to reconstruct what the pipeline was doing when something went
// wrong, at a fixed memory cost.
const defaultTraceCap = 512

// StageSecondsMetric is the histogram family every completed span
// observes its wall duration into, labelled {stage="<stage>"}.
const StageSecondsMetric = "culzss_stage_seconds"

// Span is one completed stage of a piece of work's lifecycle
// (read -> dispatch -> kernel -> post-pass -> frame-emit for a Writer
// segment).
type Span struct {
	// Op names the work item ("segment 12", "shard 3").
	Op string
	// Stage is the lifecycle stage ("read", "dispatch", "kernel",
	// "post-pass", "frame-emit").
	Stage string
	// Device is the pool slot that served the stage; -1 when no device
	// was involved (host-side stages, CPU degrades).
	Device int
	// Start and Duration are wall-clock.
	Start    time.Time
	Duration time.Duration
	// Attrs carry stage annotations (retries, degraded, timeout...).
	Attrs []Label
	// Err is the failure message ("" on success).
	Err string
}

// Tracer records completed spans into a bounded ring and mirrors their
// durations into the registry's stage histogram. A nil *Tracer is inert.
type Tracer struct {
	reg *Registry
	cap int

	mu    sync.Mutex
	ring  []Span
	next  int
	total int64
}

func newTracer(reg *Registry, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{reg: reg, cap: capacity}
}

// Start opens a span for (op, stage). The returned *ActiveSpan is nil —
// and every method on it a no-op — when the tracer is nil, so call
// sites need no guards:
//
//	sp := tr.Start("segment 12", "kernel")
//	...
//	sp.SetDevice(1).Annotate("retries", "2").End(err)
func (t *Tracer) Start(op, stage string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{Op: op, Stage: stage, Device: -1, Start: time.Now()}}
}

// Record logs an already-measured span (for stages whose timing is
// captured outside an ActiveSpan, like the Writer's read stage).
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.reg.Histogram(StageSecondsMetric, L("stage", sp.Stage)).Observe(sp.Duration.Seconds())
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
	}
	t.next = (t.next + 1) % t.cap
	t.total++
	t.mu.Unlock()
}

// Spans returns a copy of the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns the number of spans recorded over the tracer's lifetime
// (the ring retains only the most recent).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ActiveSpan is a span being measured. Methods are chainable and inert
// on a nil receiver.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// SetDevice records the device pool slot serving this stage.
func (s *ActiveSpan) SetDevice(id int) *ActiveSpan {
	if s != nil {
		s.span.Device = id
	}
	return s
}

// Annotate attaches a key/value annotation.
func (s *ActiveSpan) Annotate(key, value string) *ActiveSpan {
	if s != nil {
		s.span.Attrs = append(s.span.Attrs, Label{Key: key, Value: value})
	}
	return s
}

// End closes the span with err (nil for success) and records it.
func (s *ActiveSpan) End(err error) {
	if s == nil {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	if err != nil {
		s.span.Err = err.Error()
	}
	s.t.Record(s.span)
}
