package cudasim

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPhasedDeterministicAcrossHostWorkers: the functional result and the
// model counters must not depend on how many host goroutines execute the
// simulation.
func TestPhasedDeterministicAcrossHostWorkers(t *testing.T) {
	d := FermiGTX480()
	run := func(workers int) (*LaunchReport, []byte) {
		in := make([]byte, 8192)
		for i := range in {
			in[i] = byte(i * 13)
		}
		gIn := NewGlobal("in", in)
		gOut := NewGlobal("out", make([]byte, len(in)))
		rep, err := d.LaunchPhased(LaunchConfig{
			Kernel: "det", Blocks: 32, ThreadsPerBlock: 64, SharedPerBlock: 256,
			Serialization: 0.5, HostWorkers: workers,
		}, func(b *BlockCtx) {
			buf := b.Shared(256)
			b.GlobalReadCoalesced(buf, gIn, b.Index*256)
			b.Parallel(func(th *ThreadCtx) {
				for i := th.Tid; i < 256; i += b.NumThreads {
					buf[i] ^= byte(th.Tid)
					th.Work(3)
					th.SharedAccess(1, 1)
				}
			})
			b.GlobalWriteCoalesced(gOut, b.Index*256, buf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, gOut.Bytes()
	}
	rep1, out1 := run(1)
	rep8, out8 := run(8)
	if string(out1) != string(out8) {
		t.Fatal("functional output depends on host workers")
	}
	if rep1.WarpCycles != rep8.WarpCycles ||
		rep1.GlobalTransactions != rep8.GlobalTransactions ||
		rep1.KernelTime != rep8.KernelTime ||
		rep1.SaturatedKernelTime != rep8.SaturatedKernelTime {
		t.Fatalf("model depends on host workers:\n%+v\n%+v", rep1, rep8)
	}
}

func TestSaturatedNeverExceedsWaveTime(t *testing.T) {
	d := FermiGTX480()
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "sat", Blocks: 3, ThreadsPerBlock: 32,
	}, func(b *BlockCtx) {
		b.Parallel(func(th *ThreadCtx) { th.Work(int64(1000 * (b.Index + 1))) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SaturatedKernelTime > rep.KernelTime {
		t.Fatalf("saturated %v > wave %v", rep.SaturatedKernelTime, rep.KernelTime)
	}
}

func TestGlobalWriteStrided(t *testing.T) {
	d := FermiGTX480()
	g := NewGlobal("dst", make([]byte, 32*64))
	src := make([]byte, 32*2)
	for i := range src {
		src[i] = byte(i + 1)
	}
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "wstrided", Blocks: 1, ThreadsPerBlock: 32,
	}, func(b *BlockCtx) {
		b.GlobalWriteStrided(g, 0, 64, 2, 32, src)
	})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		if g.Bytes()[lane*64] != byte(lane*2+1) || g.Bytes()[lane*64+1] != byte(lane*2+2) {
			t.Fatalf("lane %d landed wrong", lane)
		}
	}
	if rep.GlobalBytes != 64 {
		t.Fatalf("GlobalBytes = %d", rep.GlobalBytes)
	}
	if rep.GlobalTransactions != 32 { // 64-byte stride: one segment per... two lanes share a 128B segment
		// lanes at 0,64 share segment 0; 128,192 share 1; etc -> 16.
		if rep.GlobalTransactions != 16 {
			t.Fatalf("GlobalTransactions = %d, want 16", rep.GlobalTransactions)
		}
	}
}

func TestStridedBoundsFaults(t *testing.T) {
	d := FermiGTX480()
	g := NewGlobal("g", make([]byte, 100))
	if _, err := d.LaunchPhased(LaunchConfig{Kernel: "oob", Blocks: 1, ThreadsPerBlock: 32},
		func(b *BlockCtx) {
			buf := make([]byte, 64)
			b.GlobalReadStrided(buf, g, 0, 64, 2, 32) // needs (31*64)+2 bytes
		}); err == nil {
		t.Fatal("strided OOB read not faulted")
	}
	if _, err := d.LaunchPhased(LaunchConfig{Kernel: "oob2", Blocks: 1, ThreadsPerBlock: 32},
		func(b *BlockCtx) {
			b.GlobalWriteStrided(g, 0, 64, 2, 32, make([]byte, 64))
		}); err == nil {
		t.Fatal("strided OOB write not faulted")
	}
	if _, err := d.LaunchPhased(LaunchConfig{Kernel: "small", Blocks: 1, ThreadsPerBlock: 32},
		func(b *BlockCtx) {
			buf := make([]byte, 4) // too small for 32 lanes x 1 byte
			b.GlobalReadStrided(buf, g, 0, 2, 1, 32)
		}); err == nil {
		t.Fatal("undersized dst not faulted")
	}
}

// TestGoroutineEngineHistogram exercises atomics under real concurrency.
func TestGoroutineEngineHistogram(t *testing.T) {
	d := FermiGTX480()
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 16)
	}
	var hist [16]int32
	err := d.Launch(8, 128, 0, 0, func(g *GThread) {
		base := g.BlockIdx * 512
		for i := g.ThreadIdx; i < 512; i += g.BlockDim {
			g.AtomicAdd(&hist[data[base+i]], 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range hist {
		if c != 256 {
			t.Fatalf("hist[%d] = %d, want 256", v, c)
		}
	}
}

// TestGoroutineEngineBarrierPhases checks that barriers order cross-thread
// visibility over multiple phases.
func TestGoroutineEngineBarrierPhases(t *testing.T) {
	d := FermiGTX480()
	const tpb = 64
	var violations atomic.Int32
	err := d.Launch(4, tpb, tpb, 0, func(g *GThread) {
		for phase := int32(1); phase <= 8; phase++ {
			g.Shared[g.ThreadIdx] = phase
			g.SyncThreads()
			// Every peer must have published this phase's value.
			peer := (g.ThreadIdx + 17) % g.BlockDim
			if g.Shared[peer] != phase {
				violations.Add(1)
			}
			g.SyncThreads()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d barrier visibility violations", violations.Load())
	}
}

func TestPipelineLongCopies(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Copy-bound pipeline: kernels are free, makespan is the copy-engine
	// serialisation of all H2D + D2H work.
	slices := []PipelineStage{
		{H2D: ms(5), Kernel: ms(1), D2H: ms(5)},
		{H2D: ms(5), Kernel: ms(1), D2H: ms(5)},
	}
	got := PipelineSchedule(slices)
	if got < ms(20) {
		t.Fatalf("copy-bound pipeline %v under the copy-engine floor 20ms", got)
	}
	if got > ms(22) {
		t.Fatalf("copy-bound pipeline %v too pessimistic", got)
	}
}

func TestLaunchReportDetail(t *testing.T) {
	d := FermiGTX480()
	g := NewGlobal("src", make([]byte, 1<<16))
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "detail", Blocks: 16, ThreadsPerBlock: 128, SharedPerBlock: 4096,
	}, func(b *BlockCtx) {
		buf := b.Shared(4096)
		b.GlobalReadCoalesced(buf, g, b.Index*4096)
		b.Parallel(func(th *ThreadCtx) {
			th.Work(500)
			th.SharedAccess(100, 2)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Detail(d)
	for _, want := range []string{
		"kernel \"detail\"", "occupancy", "warp cycles", "transactions",
		"coalescing", "replay cycles", "wave", "saturated", "bound by",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Detail missing %q:\n%s", want, out)
		}
	}
	// A memory-dominated kernel classifies as bandwidth/latency bound.
	memRep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "membound", Blocks: 16, ThreadsPerBlock: 128, SharedPerBlock: 4096,
	}, func(b *BlockCtx) {
		buf := b.Shared(4096)
		b.GlobalReadCoalesced(buf, g, b.Index*4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := memRep.Detail(d); !strings.Contains(out, "memory") {
		t.Errorf("memory-bound kernel misclassified:\n%s", out)
	}
}
