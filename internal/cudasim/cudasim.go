// Package cudasim is a pure-Go simulator of the CUDA execution model, built
// so the CULZSS GPU kernels can run — functionally and with a performance
// model — without NVIDIA hardware.
//
// # What is simulated
//
// The simulator provides the architectural features the paper's results
// depend on:
//
//   - the grid/block/thread hierarchy with 32-wide warps;
//   - barrier synchronisation inside a block (SyncThreads);
//   - shared memory with a per-block size budget and a 32-bank conflict
//     model;
//   - global memory with per-warp coalescing analysis (how many 128-byte
//     transactions a warp-wide access needs);
//   - SIMT divergence: a warp's cost interpolates between the slowest
//     lane (perfect lockstep) and the sum of all lanes (fully serialised
//     divergent execution) according to a per-kernel serialisation factor;
//   - occupancy limits (resident blocks and warps per SM) and a wave-based
//     assignment of blocks to streaming multiprocessors;
//   - host↔device transfer cost over a PCIe bandwidth/latency model.
//
// # Two execution engines
//
// Launch (launch.go) runs every thread as a goroutine with real barriers —
// the reference engine, suitable for arbitrary kernels and used to validate
// barrier/atomic semantics.
//
// LaunchPhased (phased.go) is the bulk-synchronous engine the compression
// kernels use: a kernel is a function over a BlockCtx that alternates
// Parallel(perThread) phases; the barrier between phases is implicit. This
// executes as plain loops (no goroutine per thread), which keeps the
// functional simulation fast, while per-thread cycle and memory-access
// accounting feeds the timing model. Blocks are spread over a host worker
// pool, so kernels also enjoy real host parallelism.
//
// # Fidelity contract
//
// Functional results are exact: kernels compute real bytes. Timing is a
// model, not a measurement: counters come from real execution (comparisons
// performed, bytes moved, transactions needed), and the constants in
// Device translate them into simulated time. The model's purpose is to
// preserve the *shape* of the paper's results — which implementation wins
// on which data and by roughly what factor — from the same causes the
// paper identifies (divergence, coalescing, bank conflicts, redundant
// work). EXPERIMENTS.md reports simulated and host wall-clock side by
// side.
package cudasim

import (
	"context"
	"fmt"
	"time"
)

// WarpSize is the number of lanes per warp on every modeled device.
const WarpSize = 32

// TransactionBytes is the global-memory transaction granularity (the
// 128-byte coalescing block of Fermi, paper §III.D).
const TransactionBytes = 128

// Device describes the simulated GPU. All cost constants are per-device so
// alternative GPUs can be modeled; FermiGTX480 reproduces the paper's
// testbed.
type Device struct {
	Name string

	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of CUDA cores (SPs) per SM.
	CoresPerSM int
	// ClockHz is the shader clock in Hz.
	ClockHz float64

	// SharedMemPerSM is the shared-memory capacity of one SM in bytes.
	SharedMemPerSM int
	// MaxSharedPerBlock is the largest shared allocation one block may make.
	MaxSharedPerBlock int
	// MaxThreadsPerBlock bounds block width.
	MaxThreadsPerBlock int
	// MaxWarpsPerSM bounds resident warps per SM (occupancy).
	MaxWarpsPerSM int
	// MaxBlocksPerSM bounds resident blocks per SM (occupancy).
	MaxBlocksPerSM int

	// GlobalBandwidth is device-memory bandwidth in bytes/second.
	GlobalBandwidth float64
	// GlobalLatencyCycles is the unloaded latency of one global-memory
	// transaction in shader cycles.
	GlobalLatencyCycles int64
	// SharedBanks is the number of shared-memory banks.
	SharedBanks int
	// BankWidthBytes is the width of one shared-memory bank word. Accesses
	// by different lanes falling in the same bank but different words
	// serialise; lanes hitting the same word broadcast (Fermi rule).
	BankWidthBytes int

	// PCIeBandwidth is effective host↔device copy bandwidth in bytes/second.
	PCIeBandwidth float64
	// PCIeLatency is the fixed per-copy overhead.
	PCIeLatency time.Duration

	// LegacyBankSemantics switches BankConflictDegree to the pre-Fermi
	// (G80/GT200) rule: 16 banks serviced per half-warp and no same-word
	// multicast — lanes touching different bytes of one bank word
	// serialise. The paper's four-character thread stagger (§III.B.2)
	// exists for exactly this rule; the bank-skew ablation uses it.
	LegacyBankSemantics bool

	// LaunchHook, when non-nil, runs before every kernel launch (both
	// engines); a non-nil error aborts the launch without executing any
	// block, modeling a driver or device launch failure. The context is
	// the launch's (LaunchConfig.Context for the phased engine,
	// context.Background() for the goroutine engine): a hook that blocks
	// — the fault-injection layer's hang rule, modeling a wedged kernel —
	// must select on it so a watchdog cancelling the launch unwedges the
	// hook promptly. The fault injection suite (internal/faults) plugs in
	// here; production devices leave it nil.
	LaunchHook func(ctx context.Context, kernel string) error
}

// FermiGTX480 models the paper's testbed GPU: a GeForce GTX 480
// (Fermi GF100: 15 SMs x 32 cores = 480 CUDA cores, 1.4 GHz shader clock,
// 177 GB/s GDDR5) on PCIe 2.0 x16.
func FermiGTX480() *Device {
	return &Device{
		Name:                "GeForce GTX 480 (simulated)",
		SMs:                 15,
		CoresPerSM:          32,
		ClockHz:             1.4e9,
		SharedMemPerSM:      48 << 10,
		MaxSharedPerBlock:   48 << 10,
		MaxThreadsPerBlock:  1024,
		MaxWarpsPerSM:       48,
		MaxBlocksPerSM:      8,
		GlobalBandwidth:     177e9,
		GlobalLatencyCycles: 400,
		SharedBanks:         32,
		BankWidthBytes:      4,
		PCIeBandwidth:       6e9,
		PCIeLatency:         10 * time.Microsecond,
	}
}

// Validate reports whether the device description is usable.
func (d *Device) Validate() error {
	switch {
	case d.SMs < 1:
		return fmt.Errorf("cudasim: device needs >= 1 SM, have %d", d.SMs)
	case d.ClockHz <= 0:
		return fmt.Errorf("cudasim: non-positive clock")
	case d.SharedBanks < 1 || d.BankWidthBytes < 1:
		return fmt.Errorf("cudasim: bad shared-memory geometry")
	case d.GlobalBandwidth <= 0 || d.PCIeBandwidth <= 0:
		return fmt.Errorf("cudasim: non-positive bandwidth")
	case d.MaxThreadsPerBlock < WarpSize:
		return fmt.Errorf("cudasim: MaxThreadsPerBlock %d < warp size", d.MaxThreadsPerBlock)
	}
	return nil
}

// Occupancy computes how many blocks of the given shape can be resident on
// one SM and the resulting warp occupancy fraction.
func (d *Device) Occupancy(threadsPerBlock, sharedPerBlock int) (blocksPerSM int, occupancy float64) {
	warpsPerBlock := (threadsPerBlock + WarpSize - 1) / WarpSize
	if warpsPerBlock == 0 {
		warpsPerBlock = 1
	}
	blocksPerSM = d.MaxBlocksPerSM
	if byWarps := d.MaxWarpsPerSM / warpsPerBlock; byWarps < blocksPerSM {
		blocksPerSM = byWarps
	}
	if sharedPerBlock > 0 {
		if byShared := d.SharedMemPerSM / sharedPerBlock; byShared < blocksPerSM {
			blocksPerSM = byShared
		}
	}
	if blocksPerSM < 1 {
		blocksPerSM = 0
		return 0, 0
	}
	occupancy = float64(blocksPerSM*warpsPerBlock) / float64(d.MaxWarpsPerSM)
	if occupancy > 1 {
		occupancy = 1
	}
	return blocksPerSM, occupancy
}

// CyclesToTime converts shader cycles to simulated time.
func (d *Device) CyclesToTime(cycles int64) time.Duration {
	return time.Duration(float64(cycles) / d.ClockHz * float64(time.Second))
}

// TransferTime models one host↔device copy of n bytes.
func (d *Device) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return d.PCIeLatency + time.Duration(float64(n)/d.PCIeBandwidth*float64(time.Second))
}

// BankConflictDegree returns the serialisation factor of a warp-wide
// shared-memory access in which lane i touches byte address base+i*stride:
// the maximum, over banks, of the number of *distinct bank words* the warp
// addresses in that bank. 1 means conflict-free (including the broadcast
// case where lanes share a word); k means the access replays k times.
//
// The paper's V2 kernel staggers threads by four characters (§III.B.2)
// precisely to keep this degree at 1.
func (d *Device) BankConflictDegree(stride int) int {
	if stride < 0 {
		stride = -stride
	}
	banks, group := d.SharedBanks, WarpSize
	if d.LegacyBankSemantics {
		banks, group = 16, 16 // half-warp service on pre-Fermi parts
	}
	type bw struct{ bank, word int }
	seen := make(map[bw]bool, WarpSize)
	perBank := make(map[int]int, banks)
	max := 1
	for lane := 0; lane < group; lane++ {
		addr := lane * stride
		word := addr / d.BankWidthBytes
		bank := word % banks
		if d.LegacyBankSemantics {
			// No multicast: distinct addresses in one word still replay.
			word = addr
		}
		key := bw{bank, word}
		if seen[key] {
			continue // identical address (Fermi: same word): broadcast
		}
		seen[key] = true
		perBank[bank]++
		if perBank[bank] > max {
			max = perBank[bank]
		}
	}
	return max
}

// CoalescedTransactions returns how many global-memory transactions a
// warp needs when lane i accesses elemBytes bytes at byte address
// base+i*stride. Addresses are grouped into TransactionBytes-aligned
// segments; each distinct segment costs one transaction (the Fermi rule,
// paper §III.D: "anytime an access is needed to an address from a block,
// the entire block must be transferred").
func CoalescedTransactions(base, stride, elemBytes, lanes int) int64 {
	if lanes <= 0 || elemBytes <= 0 {
		return 0
	}
	if lanes > WarpSize {
		// Full blocks issue per warp; callers pass lanes<=WarpSize, but be
		// permissive and analyse the first warp's worth per warp group.
		var total int64
		for off := 0; off < lanes; off += WarpSize {
			n := lanes - off
			if n > WarpSize {
				n = WarpSize
			}
			total += CoalescedTransactions(base+off*stride, stride, elemBytes, n)
		}
		return total
	}
	segs := make(map[int]bool, lanes)
	for lane := 0; lane < lanes; lane++ {
		lo := base + lane*stride
		hi := lo + elemBytes - 1
		for s := lo / TransactionBytes; s <= hi/TransactionBytes; s++ {
			segs[s] = true
		}
	}
	return int64(len(segs))
}
