package cudasim

import "time"

// Pipeline scheduling for the Fermi concurrent-copy-and-execute feature
// the paper's §VII proposes exploiting ("The concurrent execution and
// streaming feature of new Fermi GPUs can be used to process those
// chunks"). A stream slice i is processed in three stages — H2D copy,
// kernel, D2H copy — and a Fermi-class device can run one copy and one
// kernel concurrently (one copy engine), so stage k of slice i overlaps
// stage k-1 of slice i+1.

// PipelineStage describes one slice's three stage durations.
type PipelineStage struct {
	H2D, Kernel, D2H time.Duration
}

// PipelineSchedule returns the makespan of executing the slices through
// the three-stage pipeline with one copy engine (H2D and D2H share it, as
// on GF100) and one compute engine. The copy engine services uploads
// eagerly — H2D(i+1) runs while kernel(i) computes — and drains the
// downloads as kernels finish (the order a stream queue produces when
// uploads are enqueued ahead of the returning downloads).
func PipelineSchedule(slices []PipelineStage) time.Duration {
	var h2dFree, kernelFree time.Duration
	kEnd := make([]time.Duration, len(slices))
	for i, s := range slices {
		h2dFree += s.H2D
		kStart := maxDur(kernelFree, h2dFree)
		kEnd[i] = kStart + s.Kernel
		kernelFree = kEnd[i]
	}
	// Downloads share the copy engine; it is free for them once the
	// uploads are issued, and each must wait for its kernel.
	copyFree := h2dFree
	var done time.Duration
	for i, s := range slices {
		dStart := maxDur(copyFree, kEnd[i])
		copyFree = dStart + s.D2H
		done = copyFree
	}
	if len(slices) == 0 {
		return 0
	}
	return done
}

// SequentialSchedule is the unpipelined baseline: every stage of every
// slice runs back to back (the paper's measured configuration).
func SequentialSchedule(slices []PipelineStage) time.Duration {
	var total time.Duration
	for _, s := range slices {
		total += s.H2D + s.Kernel + s.D2H
	}
	return total
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
