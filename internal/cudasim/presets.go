package cudasim

// Additional device presets beyond the paper's GTX 480 testbed, for
// model experiments: an older-generation part with legacy shared-memory
// bank semantics (where the paper's four-character thread stagger has
// visible effect) and a notional multi-die configuration helper.

// TeslaC1060 models a GT200-class part: 30 SMs x 8 SPs, 16 KiB shared
// memory per SM with 16 banks serviced per half-warp and no same-word
// multicast — the environment the paper's bank-conflict avoidance
// (§III.B.2) was designed against.
func TeslaC1060() *Device {
	return &Device{
		Name:                "Tesla C1060 (simulated)",
		SMs:                 30,
		CoresPerSM:          8,
		ClockHz:             1.296e9,
		SharedMemPerSM:      16 << 10,
		MaxSharedPerBlock:   16 << 10,
		MaxThreadsPerBlock:  512,
		MaxWarpsPerSM:       32,
		MaxBlocksPerSM:      8,
		GlobalBandwidth:     102e9,
		GlobalLatencyCycles: 500,
		SharedBanks:         16,
		BankWidthBytes:      4,
		PCIeBandwidth:       5e9,
		PCIeLatency:         12e3, // 12us in ns
		LegacyBankSemantics: true,
	}
}

// Clone returns a copy of the device that can be mutated independently
// (multi-GPU runs give each simulated GPU its own descriptor).
func (d *Device) Clone() *Device {
	c := *d
	return &c
}
