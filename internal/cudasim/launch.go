package cudasim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the reference execution engine: every thread is a real
// goroutine and SyncThreads is a real reusable barrier. It exists to (a)
// define the semantics the phased engine's bulk-synchronous model must
// agree with, and (b) run generic kernels (reductions, histograms, the
// package's own tests) that are not written in phase style.
//
// It is not used for the large compression launches — a goroutine per
// thread is orders of magnitude more expensive than the phased loops —
// but any phase-structured kernel can be mechanically rewritten for it.

// barrier is a reusable counting barrier for n parties. A party that dies
// (kernel panic) breaks the barrier so the surviving parties do not hang.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for the current
// generation, or until the barrier breaks.
func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
}

// brk permanently releases all current and future waiters.
func (b *barrier) brk() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// GThread is the per-thread context of the goroutine engine.
type GThread struct {
	// BlockIdx and ThreadIdx locate the thread in the 1-D grid.
	BlockIdx  int
	ThreadIdx int
	// BlockDim and GridDim describe the launch shape.
	BlockDim int
	GridDim  int
	// Shared is the block's shared memory as 32-bit words (the natural
	// bank granularity); all threads of a block see the same slice.
	Shared []int32

	bar *barrier
}

// SyncThreads blocks until every thread in the block reaches the barrier —
// CUDA's __syncthreads.
func (t *GThread) SyncThreads() { t.bar.wait() }

// AtomicAdd atomically adds v to *p and returns the previous value,
// matching CUDA's atomicAdd.
func (t *GThread) AtomicAdd(p *int32, v int32) int32 {
	return atomic.AddInt32(p, v) - v
}

// AtomicMax atomically stores max(*p, v) and returns the previous value.
func (t *GThread) AtomicMax(p *int32, v int32) int32 {
	for {
		old := atomic.LoadInt32(p)
		if old >= v || atomic.CompareAndSwapInt32(p, old, v) {
			return old
		}
	}
}

// Launch runs kernel with blocks x threadsPerBlock real goroutine threads.
// sharedWords 32-bit words of shared memory are allocated per block.
// Blocks execute with at most hostWorkers concurrent blocks (0 means
// GOMAXPROCS). A kernel panic is recovered and returned as an error.
func (d *Device) Launch(blocks, threadsPerBlock, sharedWords int, hostWorkers int, kernel func(t *GThread)) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if threadsPerBlock < 1 || threadsPerBlock > d.MaxThreadsPerBlock {
		return fmt.Errorf("cudasim: threads per block %d out of range", threadsPerBlock)
	}
	if sharedWords*4 > d.MaxSharedPerBlock {
		return fmt.Errorf("cudasim: shared %d words exceeds per-block budget", sharedWords)
	}
	if d.LaunchHook != nil {
		if err := d.LaunchHook(context.Background(), "goroutine-kernel"); err != nil {
			return fmt.Errorf("cudasim: launch failed: %w", err)
		}
	}
	if hostWorkers <= 0 {
		hostWorkers = runtime.GOMAXPROCS(0)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, hostWorkers)
	for b := 0; b < blocks; b++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(b int) {
			defer wg.Done()
			defer func() { <-sem }()
			shared := make([]int32, sharedWords)
			bar := newBarrier(threadsPerBlock)
			var tg sync.WaitGroup
			for tid := 0; tid < threadsPerBlock; tid++ {
				tg.Add(1)
				go func(tid int) {
					defer tg.Done()
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("cudasim: kernel panic in block %d thread %d: %v", b, tid, r)
							}
							mu.Unlock()
							// Release peers stuck at the barrier so the
							// block can drain after a lane dies.
							bar.brk()
						}
					}()
					kernel(&GThread{
						BlockIdx: b, ThreadIdx: tid,
						BlockDim: threadsPerBlock, GridDim: blocks,
						Shared: shared, bar: bar,
					})
				}(tid)
			}
			tg.Wait()
		}(b)
	}
	wg.Wait()
	return firstErr
}
