package cudasim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property tests over the model primitives.

func TestQuickBankConflictDegreeBounds(t *testing.T) {
	fermi := FermiGTX480()
	legacy := TeslaC1060()
	f := func(strideRaw int16) bool {
		stride := int(strideRaw)
		d := fermi.BankConflictDegree(stride)
		if d < 1 || d > WarpSize {
			return false
		}
		dl := legacy.BankConflictDegree(stride)
		return dl >= 1 && dl <= 16 // half-warp service on the legacy part
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoalescedTransactionsBounds(t *testing.T) {
	f := func(baseRaw, strideRaw uint16, elemRaw, lanesRaw uint8) bool {
		base := int(baseRaw)
		stride := int(strideRaw) % 4096
		elem := 1 + int(elemRaw)%64
		lanes := 1 + int(lanesRaw)%WarpSize
		got := CoalescedTransactions(base, stride, elem, lanes)
		// Lower bound: each transaction covers at most 128 of the
		// distinct touched bytes (overlapping lanes cover only the span).
		totalBytes := int64(lanes * elem)
		span := int64((lanes-1)*stride + elem)
		covered := totalBytes
		if span < covered {
			covered = span
		}
		lo := (covered + TransactionBytes - 1) / TransactionBytes
		// Upper bound: one segment per 128 bytes per lane plus a boundary
		// crossing.
		hi := int64(lanes) * (int64(elem)/TransactionBytes + 2)
		return got >= 1 && got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOccupancyMonotone(t *testing.T) {
	d := FermiGTX480()
	// More shared memory per block can never increase residency.
	f := func(tpbRaw uint8, sharedRaw uint16) bool {
		tpb := 32 * (1 + int(tpbRaw)%8) // 32..256
		shared := int(sharedRaw) % d.MaxSharedPerBlock
		b1, o1 := d.Occupancy(tpb, shared)
		b2, o2 := d.Occupancy(tpb, shared+1024)
		return b2 <= b1 && o2 <= o1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPipelineNeverBeatsCriticalPath(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		var slices []PipelineStage
		var kernelSum, copySum, seq int64
		for _, r := range raw {
			h := int64(r % 97)
			k := int64(r % 51)
			d := int64(r % 29)
			slices = append(slices, PipelineStage{
				H2D: dur(h), Kernel: dur(k), D2H: dur(d),
			})
			kernelSum += k
			copySum += h + d
			seq += h + k + d
		}
		got := int64(PipelineSchedule(slices) / 1e6)
		want := SequentialSchedule(slices)
		// Never faster than either engine's total work, never slower
		// than fully sequential.
		if int64(want/1e6) < got {
			return false
		}
		return got >= kernelSum && got >= copySum || len(slices) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func dur(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
