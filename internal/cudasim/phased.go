package cudasim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Global is a device-resident byte buffer. Kernels access it through the
// BlockCtx copy primitives so the simulator can account transactions; the
// host reads it back with Bytes after the launch.
type Global struct {
	name string
	data []byte
}

// NewGlobal allocates a device buffer wrapping data (no copy; the host
// transfer cost is modeled separately via Device.TransferTime, since the
// paper's API receives buffers already in host memory and copies them in).
func NewGlobal(name string, data []byte) *Global {
	return &Global{name: name, data: data}
}

// Bytes exposes the buffer contents (host view after a launch).
func (g *Global) Bytes() []byte { return g.data }

// Len returns the buffer size.
func (g *Global) Len() int { return len(g.data) }

// LaunchConfig shapes a phased kernel launch.
type LaunchConfig struct {
	// Kernel names the launch in reports.
	Kernel string
	// Blocks is the 1-D grid size.
	Blocks int
	// ThreadsPerBlock is the 1-D block size (128 in the paper §III.D).
	ThreadsPerBlock int
	// SharedPerBlock declares the block's shared-memory budget in bytes.
	// BlockCtx.Shared allocations are checked against it and it feeds the
	// occupancy calculation.
	SharedPerBlock int
	// Serialization is the SIMT divergence factor in [0,1]: a warp's cost
	// is max(lanes) + Serialization*(sum(lanes)-max(lanes)). 0 models a
	// perfectly uniform (lockstep) kernel, 1 a fully divergent one whose
	// lanes serialise. The CULZSS kernels document their values.
	Serialization float64
	// HostWorkers bounds the goroutines executing blocks functionally;
	// 0 means GOMAXPROCS. This affects wall-clock only, never the model.
	HostWorkers int
	// Context, when non-nil, is handed to the device's LaunchHook so a
	// blocking hook (an injected hang) can be cut by cancelling the
	// launch; nil means context.Background(). The kernel body itself is
	// not preempted — cancellation points live in the hook and in the
	// callers' chunk/shard loops.
	Context context.Context
}

func (c *LaunchConfig) validate(d *Device) error {
	switch {
	case c.Blocks < 0:
		return fmt.Errorf("cudasim: negative grid")
	case c.ThreadsPerBlock < 1 || c.ThreadsPerBlock > d.MaxThreadsPerBlock:
		return fmt.Errorf("cudasim: threads per block %d out of range [1,%d]", c.ThreadsPerBlock, d.MaxThreadsPerBlock)
	case c.SharedPerBlock < 0 || c.SharedPerBlock > d.MaxSharedPerBlock:
		return fmt.Errorf("cudasim: shared per block %d out of range [0,%d]", c.SharedPerBlock, d.MaxSharedPerBlock)
	case c.Serialization < 0 || c.Serialization > 1:
		return fmt.Errorf("cudasim: serialization %v out of [0,1]", c.Serialization)
	}
	if blocksPerSM, _ := d.Occupancy(c.ThreadsPerBlock, c.SharedPerBlock); blocksPerSM == 0 {
		return fmt.Errorf("cudasim: block shape (%d threads, %d B shared) does not fit on an SM", c.ThreadsPerBlock, c.SharedPerBlock)
	}
	return nil
}

// LaunchReport summarises one kernel launch: the model's counters and the
// simulated and measured times.
type LaunchReport struct {
	Kernel          string
	Blocks          int
	ThreadsPerBlock int
	SharedPerBlock  int

	BlocksPerSM int
	Occupancy   float64

	// WarpCycles is the divergence-adjusted sum of warp execution cycles
	// across all blocks (compute plus shared-memory replay).
	WarpCycles int64
	// MemStallCycles is the modeled exposed global-memory latency.
	MemStallCycles int64
	// GlobalTransactions and GlobalBytes count device-memory traffic.
	GlobalTransactions int64
	GlobalBytes        int64
	// SharedAccesses counts shared-memory accesses; SharedReplayCycles is
	// the extra cost bank conflicts added.
	SharedAccesses     int64
	SharedReplayCycles int64

	// KernelTime is the simulated device execution time with the grid's
	// actual block-to-SM placement.
	KernelTime time.Duration
	// SaturatedKernelTime is the kernel time with the total work spread
	// evenly over every SM — the asymptotic time of a grid large enough
	// to fill the device. Small benchmark inputs under-fill the GPU
	// (the paper's 128 MB runs do not), so scale-free comparisons
	// between kernels use this.
	SaturatedKernelTime time.Duration
	// WallTime is the measured host execution time of the simulation.
	WallTime time.Duration
}

// blockAccount accumulates one block's counters.
type blockAccount struct {
	warpCycles         int64
	globalTransactions int64
	globalBytes        int64
	sharedAccesses     int64
	sharedReplay       int64
}

// ThreadCtx is the per-thread accounting handle passed to Parallel bodies.
type ThreadCtx struct {
	// Tid is the thread index within the block.
	Tid int
	// GlobalID is Block.Index*ThreadsPerBlock + Tid.
	GlobalID int

	block      *BlockCtx
	laneCycles int64
}

// Work charges n shader cycles of arithmetic to this lane.
func (t *ThreadCtx) Work(n int64) { t.laneCycles += n }

// SharedAccess charges n shared-memory accesses whose warp-wide pattern has
// the given bank-conflict degree (1 = conflict-free). Each access costs
// degree cycles on this lane and is counted in the launch totals.
func (t *ThreadCtx) SharedAccess(n int64, conflictDegree int) {
	if conflictDegree < 1 {
		conflictDegree = 1
	}
	t.laneCycles += n * int64(conflictDegree)
	t.block.acct.sharedAccesses += n
	t.block.acct.sharedReplay += n * int64(conflictDegree-1)
}

// GlobalAccess accounts device-memory traffic this lane is responsible for
// without moving bytes. Kernels whose functional data flow goes through
// host-visible slices (the compression kernels stream their input through
// staged buffers but write results into host-mapped arrays) use this to
// keep the traffic model honest.
func (t *ThreadCtx) GlobalAccess(transactions, bytes int64) {
	t.block.acct.globalTransactions += transactions
	t.block.acct.globalBytes += bytes
}

// BlockCtx is the per-block view a phased kernel runs against.
type BlockCtx struct {
	// Index is the block index in the 1-D grid.
	Index int
	// NumThreads is the block width.
	NumThreads int

	dev        *Device
	cfg        *LaunchConfig
	acct       blockAccount
	sharedUsed int
	lanes      []int64 // per-thread cycles within the current phase
}

// Shared allocates n bytes of the block's shared memory, zeroed. The sum of
// a block's allocations must stay within LaunchConfig.SharedPerBlock.
func (b *BlockCtx) Shared(n int) []byte {
	if n < 0 {
		panic(launchFault{fmt.Errorf("cudasim: negative shared allocation")})
	}
	b.sharedUsed += n
	if b.sharedUsed > b.cfg.SharedPerBlock {
		panic(launchFault{fmt.Errorf("cudasim: block %d shared memory overflow: %d > budget %d",
			b.Index, b.sharedUsed, b.cfg.SharedPerBlock)})
	}
	return make([]byte, n)
}

// launchFault carries kernel-detected errors through panic/recover so that
// kernels can abort a launch without plumbing error returns through phases.
type launchFault struct{ err error }

// Fault aborts the launch with the given error.
func (b *BlockCtx) Fault(err error) {
	panic(launchFault{fmt.Errorf("cudasim: block %d: %w", b.Index, err)})
}

// Parallel runs fn once per thread in the block. Threads within a phase are
// semantically concurrent: a correct kernel must not depend on the order in
// which lanes run, and writes by one lane are visible to others only in the
// next phase (the implicit barrier between phases is the SyncThreads of
// the bulk-synchronous model).
func (b *BlockCtx) Parallel(fn func(t *ThreadCtx)) {
	if b.lanes == nil {
		b.lanes = make([]int64, b.NumThreads)
	}
	for tid := 0; tid < b.NumThreads; tid++ {
		t := ThreadCtx{Tid: tid, GlobalID: b.Index*b.NumThreads + tid, block: b}
		fn(&t)
		b.lanes[tid] = t.laneCycles
	}
	// Fold the phase's lane costs into divergence-adjusted warp cycles.
	s := b.cfg.Serialization
	for w := 0; w < b.NumThreads; w += WarpSize {
		end := w + WarpSize
		if end > b.NumThreads {
			end = b.NumThreads
		}
		var sum, max int64
		for _, c := range b.lanes[w:end] {
			sum += c
			if c > max {
				max = c
			}
		}
		b.acct.warpCycles += max + int64(s*float64(sum-max))
	}
	for i := range b.lanes {
		b.lanes[i] = 0
	}
}

// GlobalReadCoalesced copies len(dst) bytes from g at byte offset off into
// dst (typically a shared buffer), modeling the block's threads reading
// consecutive bytes: warp after warp, lane i of a warp reads byte
// base+i (the paper's "each thread reads 1 byte ... one memory transaction"
// pattern, §III.D). Cost: one transaction per distinct 128-byte segment.
func (b *BlockCtx) GlobalReadCoalesced(dst []byte, g *Global, off int) {
	n := len(dst)
	if off < 0 || off+n > len(g.data) {
		b.Fault(fmt.Errorf("global read [%d,%d) out of %q bounds %d", off, off+n, g.name, len(g.data)))
	}
	copy(dst, g.data[off:off+n])
	b.recordGlobal(off, 1, 1, n)
}

// GlobalWriteCoalesced copies src into g at byte offset off with the same
// unit-stride coalescing model as GlobalReadCoalesced.
func (b *BlockCtx) GlobalWriteCoalesced(g *Global, off int, src []byte) {
	n := len(src)
	if off < 0 || off+n > len(g.data) {
		b.Fault(fmt.Errorf("global write [%d,%d) out of %q bounds %d", off, off+n, g.name, len(g.data)))
	}
	copy(g.data[off:off+n], src)
	b.recordGlobal(off, 1, 1, n)
}

// GlobalReadStrided copies, for each of lanes threads, elem bytes from g at
// off+lane*stride into dst[lane*elem:], modeling the uncoalesced pattern of
// each thread streaming its own distant region (CULZSS V1 without shared
// staging). Cost: transactions per the coalescing rule on the strided
// pattern, which for stride >= TransactionBytes is one transaction per
// lane per element group.
func (b *BlockCtx) GlobalReadStrided(dst []byte, g *Global, off, stride, elem, lanes int) {
	if lanes <= 0 || elem <= 0 {
		return
	}
	need := (lanes-1)*stride + elem
	if off < 0 || off+need > len(g.data) {
		b.Fault(fmt.Errorf("strided global read base %d stride %d x%d out of %q bounds %d", off, stride, lanes, g.name, len(g.data)))
	}
	if len(dst) < lanes*elem {
		b.Fault(fmt.Errorf("strided global read dst too small: %d < %d", len(dst), lanes*elem))
	}
	for l := 0; l < lanes; l++ {
		copy(dst[l*elem:(l+1)*elem], g.data[off+l*stride:off+l*stride+elem])
	}
	b.acct.globalTransactions += CoalescedTransactions(off, stride, elem, lanes)
	b.acct.globalBytes += int64(lanes * elem)
}

// GlobalWriteStrided is the write-direction counterpart of
// GlobalReadStrided: lane l writes src[l*elem:(l+1)*elem] to off+l*stride.
func (b *BlockCtx) GlobalWriteStrided(g *Global, off, stride, elem, lanes int, src []byte) {
	if lanes <= 0 || elem <= 0 {
		return
	}
	need := (lanes-1)*stride + elem
	if off < 0 || off+need > len(g.data) {
		b.Fault(fmt.Errorf("strided global write base %d stride %d x%d out of %q bounds %d", off, stride, lanes, g.name, len(g.data)))
	}
	if len(src) < lanes*elem {
		b.Fault(fmt.Errorf("strided global write src too small: %d < %d", len(src), lanes*elem))
	}
	for l := 0; l < lanes; l++ {
		copy(g.data[off+l*stride:off+l*stride+elem], src[l*elem:(l+1)*elem])
	}
	b.acct.globalTransactions += CoalescedTransactions(off, stride, elem, lanes)
	b.acct.globalBytes += int64(lanes * elem)
}

// recordGlobal accounts a unit-stride block-wide access of n bytes at off.
func (b *BlockCtx) recordGlobal(off, stride, elem, n int) {
	if n <= 0 {
		return
	}
	first := off / TransactionBytes
	last := (off + n - 1) / TransactionBytes
	b.acct.globalTransactions += int64(last - first + 1)
	b.acct.globalBytes += int64(n)
}

// LaunchPhased executes a bulk-synchronous kernel over the grid and returns
// the performance report. Kernels run functionally on a host worker pool;
// the timing in the report comes from the device model.
func (d *Device) LaunchPhased(cfg LaunchConfig, kernel func(b *BlockCtx)) (*LaunchReport, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	if d.LaunchHook != nil {
		ctx := cfg.Context
		if ctx == nil {
			ctx = context.Background()
		}
		if err := d.LaunchHook(ctx, cfg.Kernel); err != nil {
			return nil, fmt.Errorf("cudasim: launch failed: %w", err)
		}
	}
	workers := cfg.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Blocks {
		workers = cfg.Blocks
	}

	start := time.Now()
	accounts := make([]blockAccount, cfg.Blocks)
	var (
		wg       sync.WaitGroup
		faultMu  sync.Mutex
		faultErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							f, ok := r.(launchFault)
							if !ok {
								panic(r)
							}
							faultMu.Lock()
							if faultErr == nil {
								faultErr = f.err
							}
							faultMu.Unlock()
						}
					}()
					b := &BlockCtx{Index: idx, NumThreads: cfg.ThreadsPerBlock, dev: d, cfg: &cfg}
					kernel(b)
					accounts[idx] = b.acct
				}()
			}
		}()
	}
	for idx := 0; idx < cfg.Blocks; idx++ {
		next <- idx
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)
	if faultErr != nil {
		return nil, faultErr
	}

	return d.assemble(&cfg, accounts, wall), nil
}

// assemble folds per-block accounts into the launch report and applies the
// timing model.
func (d *Device) assemble(cfg *LaunchConfig, accounts []blockAccount, wall time.Duration) *LaunchReport {
	blocksPerSM, occupancy := d.Occupancy(cfg.ThreadsPerBlock, cfg.SharedPerBlock)
	r := &LaunchReport{
		Kernel:          cfg.Kernel,
		Blocks:          cfg.Blocks,
		ThreadsPerBlock: cfg.ThreadsPerBlock,
		SharedPerBlock:  cfg.SharedPerBlock,
		BlocksPerSM:     blocksPerSM,
		Occupancy:       occupancy,
		WallTime:        wall,
	}

	// Latency hiding: resident warps beyond the issuing one overlap global
	// latency; with R resident warps an exposed transaction costs
	// latency/max(1, R/2) cycles (a standard throughput approximation).
	warpsPerBlock := (cfg.ThreadsPerBlock + WarpSize - 1) / WarpSize
	resident := float64(blocksPerSM * warpsPerBlock)
	hiding := resident / 2
	if hiding < 1 {
		hiding = 1
	}

	// An SM retires a full warp instruction every WarpSize/CoresPerSM
	// cycles (1 on Fermi's 32-SP SMs, 4 on GT200's 8-SP SMs), so warp
	// cycles scale by the issue factor before scheduling.
	issue := float64(WarpSize) / float64(d.CoresPerSM)
	if issue < 1 {
		issue = 1
	}

	// Greedy wave assignment of blocks to SMs: each SM executes its blocks
	// back to back; concurrent residency buys latency hiding, not extra
	// issue throughput.
	sms := make([]int64, d.SMs)
	for _, a := range accounts {
		stall := int64(float64(a.globalTransactions*d.GlobalLatencyCycles) / hiding)
		cycles := int64(float64(a.warpCycles)*issue) + stall
		// Place on the least-loaded SM.
		min := 0
		for i := 1; i < len(sms); i++ {
			if sms[i] < sms[min] {
				min = i
			}
		}
		sms[min] += cycles

		r.WarpCycles += a.warpCycles
		r.MemStallCycles += stall
		r.GlobalTransactions += a.globalTransactions
		r.GlobalBytes += a.globalBytes
		r.SharedAccesses += a.sharedAccesses
		r.SharedReplayCycles += a.sharedReplay
	}
	var kernelCycles, totalCycles int64
	for _, c := range sms {
		totalCycles += c
		if c > kernelCycles {
			kernelCycles = c
		}
	}
	kernelTime := d.CyclesToTime(kernelCycles)
	saturated := d.CyclesToTime((totalCycles + int64(d.SMs) - 1) / int64(d.SMs))
	// The kernel can never beat the device memory bandwidth.
	if bwTime := time.Duration(float64(r.GlobalBytes) / d.GlobalBandwidth * float64(time.Second)); bwTime > kernelTime {
		kernelTime = bwTime
	}
	if bwTime := time.Duration(float64(r.GlobalBytes) / d.GlobalBandwidth * float64(time.Second)); bwTime > saturated {
		saturated = bwTime
	}
	r.KernelTime = kernelTime
	r.SaturatedKernelTime = saturated
	return r
}
