package cudasim

import (
	"strings"
	"testing"
	"time"
)

func TestFermiPresetValid(t *testing.T) {
	d := FermiGTX480()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.SMs*d.CoresPerSM != 480 {
		t.Fatalf("GTX480 core count = %d, want 480", d.SMs*d.CoresPerSM)
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	bad := []func(*Device){
		func(d *Device) { d.SMs = 0 },
		func(d *Device) { d.ClockHz = 0 },
		func(d *Device) { d.SharedBanks = 0 },
		func(d *Device) { d.GlobalBandwidth = 0 },
		func(d *Device) { d.MaxThreadsPerBlock = 8 },
	}
	for i, mutate := range bad {
		d := FermiGTX480()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad device", i)
		}
	}
}

func TestOccupancy(t *testing.T) {
	d := FermiGTX480()
	// 128 threads = 4 warps; warp limit allows 12 blocks, block limit 8.
	blocks, occ := d.Occupancy(128, 0)
	if blocks != 8 {
		t.Fatalf("blocksPerSM = %d, want 8", blocks)
	}
	if want := float64(8*4) / 48; occ != want {
		t.Fatalf("occupancy = %v, want %v", occ, want)
	}
	// Shared memory becomes the limit: 20 KiB blocks -> 2 resident.
	blocks, _ = d.Occupancy(128, 20<<10)
	if blocks != 2 {
		t.Fatalf("blocksPerSM = %d, want 2 (shared limited)", blocks)
	}
	// 1024-thread blocks: warp limit 48/32 = 1.
	blocks, _ = d.Occupancy(1024, 0)
	if blocks != 1 {
		t.Fatalf("blocksPerSM = %d, want 1", blocks)
	}
	// Impossible shape.
	blocks, occ = d.Occupancy(128, 49<<10)
	if blocks != 0 || occ != 0 {
		t.Fatalf("impossible shape got %d blocks, occ %v", blocks, occ)
	}
}

func TestBankConflictDegree(t *testing.T) {
	d := FermiGTX480()
	cases := []struct {
		stride int
		want   int
	}{
		{1, 1},    // byte-sequential lanes share words -> broadcast
		{4, 1},    // word-sequential: each lane its own bank
		{8, 2},    // two lanes per bank, different words
		{128, 32}, // all lanes in bank 0, distinct words: full serialisation
		{0, 1},    // everyone reads the same word: broadcast
		{64, 16},
	}
	for _, c := range cases {
		if got := d.BankConflictDegree(c.stride); got != c.want {
			t.Errorf("BankConflictDegree(%d) = %d, want %d", c.stride, got, c.want)
		}
	}
}

func TestCoalescedTransactions(t *testing.T) {
	cases := []struct {
		base, stride, elem, lanes int
		want                      int64
	}{
		{0, 1, 1, 32, 1},    // the paper's unit pattern: 32 bytes in one segment
		{0, 4, 4, 32, 1},    // 128 aligned bytes: exactly one transaction
		{64, 4, 4, 32, 2},   // misaligned by half a segment: two transactions
		{0, 128, 1, 32, 32}, // each lane its own segment: fully scattered
		{0, 0, 4, 32, 1},    // broadcast
		{0, 4096, 1, 32, 32},
		{0, 1, 1, 0, 0},
	}
	for _, c := range cases {
		if got := CoalescedTransactions(c.base, c.stride, c.elem, c.lanes); got != c.want {
			t.Errorf("CoalescedTransactions(%d,%d,%d,%d) = %d, want %d",
				c.base, c.stride, c.elem, c.lanes, got, c.want)
		}
	}
}

func TestCoalescedTransactionsMultiWarp(t *testing.T) {
	// 128 lanes unit stride = 4 warps x 1 transaction.
	if got := CoalescedTransactions(0, 1, 1, 128); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
}

func TestTransferTime(t *testing.T) {
	d := FermiGTX480()
	if d.TransferTime(0) != 0 {
		t.Fatal("zero-byte transfer should be free")
	}
	one := d.TransferTime(6_000_000) // 1ms of bandwidth + latency
	if one < time.Millisecond || one > 2*time.Millisecond {
		t.Fatalf("TransferTime(6MB) = %v", one)
	}
}

func TestLaunchPhasedFunctional(t *testing.T) {
	d := FermiGTX480()
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte(i * 7)
	}
	gIn := NewGlobal("in", in)
	gOut := NewGlobal("out", make([]byte, len(in)))

	// Kernel: each block stages 256 bytes into shared, each thread adds 1,
	// writes back coalesced.
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "add1", Blocks: 16, ThreadsPerBlock: 128, SharedPerBlock: 256,
	}, func(b *BlockCtx) {
		buf := b.Shared(256)
		b.GlobalReadCoalesced(buf, gIn, b.Index*256)
		b.Parallel(func(th *ThreadCtx) {
			for i := th.Tid; i < 256; i += b.NumThreads {
				buf[i]++
				th.Work(2)
				th.SharedAccess(2, 1)
			}
		})
		b.GlobalWriteCoalesced(gOut, b.Index*256, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gOut.Bytes() {
		if v != in[i]+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, in[i]+1)
		}
	}
	if rep.GlobalBytes != 2*4096 {
		t.Fatalf("GlobalBytes = %d, want %d", rep.GlobalBytes, 2*4096)
	}
	// 256 aligned bytes = 2 transactions per direction per block.
	if rep.GlobalTransactions != int64(16*4) {
		t.Fatalf("GlobalTransactions = %d, want 64", rep.GlobalTransactions)
	}
	if rep.SharedAccesses != int64(16*256*2) {
		t.Fatalf("SharedAccesses = %d", rep.SharedAccesses)
	}
	if rep.KernelTime <= 0 {
		t.Fatal("KernelTime not positive")
	}
	if rep.Occupancy <= 0 || rep.Occupancy > 1 {
		t.Fatalf("Occupancy = %v", rep.Occupancy)
	}
}

func TestLaunchPhasedSerializationModel(t *testing.T) {
	d := FermiGTX480()
	run := func(serialization float64) *LaunchReport {
		rep, err := d.LaunchPhased(LaunchConfig{
			Kernel: "diverge", Blocks: 1, ThreadsPerBlock: 32,
			Serialization: serialization,
		}, func(b *BlockCtx) {
			b.Parallel(func(th *ThreadCtx) { th.Work(100) })
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if got := run(0).WarpCycles; got != 100 {
		t.Fatalf("lockstep warp cycles = %d, want 100", got)
	}
	if got := run(1).WarpCycles; got != 3200 {
		t.Fatalf("serialised warp cycles = %d, want 3200", got)
	}
	if got := run(0.5).WarpCycles; got != 100+(3200-100)/2 {
		t.Fatalf("half-serialised warp cycles = %d", got)
	}
}

func TestLaunchPhasedSharedOverflow(t *testing.T) {
	d := FermiGTX480()
	_, err := d.LaunchPhased(LaunchConfig{
		Kernel: "overflow", Blocks: 1, ThreadsPerBlock: 32, SharedPerBlock: 128,
	}, func(b *BlockCtx) {
		b.Shared(64)
		b.Shared(65) // 129 > 128
	})
	if err == nil || !strings.Contains(err.Error(), "shared memory overflow") {
		t.Fatalf("err = %v, want shared overflow", err)
	}
}

func TestLaunchPhasedOutOfBoundsFaults(t *testing.T) {
	d := FermiGTX480()
	g := NewGlobal("g", make([]byte, 64))
	_, err := d.LaunchPhased(LaunchConfig{
		Kernel: "oob", Blocks: 1, ThreadsPerBlock: 32, SharedPerBlock: 256,
	}, func(b *BlockCtx) {
		buf := b.Shared(128)
		b.GlobalReadCoalesced(buf, g, 0) // 128 > 64
	})
	if err == nil {
		t.Fatal("out-of-bounds read not faulted")
	}
}

func TestLaunchPhasedConfigValidation(t *testing.T) {
	d := FermiGTX480()
	noop := func(b *BlockCtx) {}
	cases := []LaunchConfig{
		{Blocks: 1, ThreadsPerBlock: 0},
		{Blocks: 1, ThreadsPerBlock: 2048},
		{Blocks: 1, ThreadsPerBlock: 32, SharedPerBlock: 1 << 20},
		{Blocks: 1, ThreadsPerBlock: 32, Serialization: 1.5},
		{Blocks: -1, ThreadsPerBlock: 32},
	}
	for i, cfg := range cases {
		if _, err := d.LaunchPhased(cfg, noop); err == nil {
			t.Errorf("case %d: launch accepted bad config %+v", i, cfg)
		}
	}
}

func TestLaunchPhasedStrided(t *testing.T) {
	d := FermiGTX480()
	src := make([]byte, 32*256)
	for i := range src {
		src[i] = byte(i % 251)
	}
	g := NewGlobal("src", src)
	var got []byte
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "strided", Blocks: 1, ThreadsPerBlock: 32, SharedPerBlock: 32 * 4,
	}, func(b *BlockCtx) {
		buf := b.Shared(32 * 4)
		// Each lane grabs 4 bytes from its own 256-byte-strided region.
		b.GlobalReadStrided(buf, g, 0, 256, 4, 32)
		got = append([]byte(nil), buf...)
	})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		for j := 0; j < 4; j++ {
			if got[lane*4+j] != src[lane*256+j] {
				t.Fatalf("lane %d byte %d wrong", lane, j)
			}
		}
	}
	// 256-byte stride scatters every lane into its own segment.
	if rep.GlobalTransactions != 32 {
		t.Fatalf("GlobalTransactions = %d, want 32", rep.GlobalTransactions)
	}
}

func TestGoroutineEngineReduction(t *testing.T) {
	d := FermiGTX480()
	const blocks, tpb = 8, 64
	results := make([]int32, blocks)
	err := d.Launch(blocks, tpb, tpb, 0, func(t *GThread) {
		// Classic tree reduction over shared memory: sum of thread ids.
		t.Shared[t.ThreadIdx] = int32(t.ThreadIdx)
		t.SyncThreads()
		for s := t.BlockDim / 2; s > 0; s /= 2 {
			if t.ThreadIdx < s {
				t.Shared[t.ThreadIdx] += t.Shared[t.ThreadIdx+s]
			}
			t.SyncThreads()
		}
		if t.ThreadIdx == 0 {
			results[t.BlockIdx] = t.Shared[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int32(tpb * (tpb - 1) / 2)
	for b, r := range results {
		if r != want {
			t.Fatalf("block %d sum = %d, want %d", b, r, want)
		}
	}
}

func TestGoroutineEngineAtomics(t *testing.T) {
	d := FermiGTX480()
	var counter, maxSeen int32
	err := d.Launch(4, 128, 0, 0, func(t *GThread) {
		t.AtomicAdd(&counter, 1)
		t.AtomicMax(&maxSeen, int32(t.BlockIdx*1000+t.ThreadIdx))
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 4*128 {
		t.Fatalf("counter = %d, want %d", counter, 4*128)
	}
	if maxSeen != 3*1000+127 {
		t.Fatalf("maxSeen = %d", maxSeen)
	}
}

func TestGoroutineEnginePanicRecovered(t *testing.T) {
	d := FermiGTX480()
	err := d.Launch(2, 32, 0, 0, func(t *GThread) {
		if t.BlockIdx == 1 && t.ThreadIdx == 7 {
			panic("lane fault")
		}
		t.SyncThreads() // peers must not deadlock
	})
	if err == nil || !strings.Contains(err.Error(), "lane fault") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestGoroutineEngineRejectsBadShapes(t *testing.T) {
	d := FermiGTX480()
	noop := func(t *GThread) {}
	if err := d.Launch(1, 0, 0, 0, noop); err == nil {
		t.Fatal("accepted zero threads")
	}
	if err := d.Launch(1, 4096, 0, 0, noop); err == nil {
		t.Fatal("accepted oversize block")
	}
	if err := d.Launch(1, 32, 1<<20, 0, noop); err == nil {
		t.Fatal("accepted oversize shared")
	}
}

func TestKernelTimeRespectsBandwidthFloor(t *testing.T) {
	d := FermiGTX480()
	// A kernel that moves lots of bytes with almost no compute must be
	// bandwidth-bound: KernelTime >= bytes/bandwidth.
	n := 1 << 20
	g := NewGlobal("big", make([]byte, n))
	rep, err := d.LaunchPhased(LaunchConfig{
		Kernel: "membound", Blocks: 64, ThreadsPerBlock: 128, SharedPerBlock: n / 64,
	}, func(b *BlockCtx) {
		buf := b.Shared(n / 64)
		b.GlobalReadCoalesced(buf, g, b.Index*n/64)
	})
	if err != nil {
		t.Fatal(err)
	}
	floor := time.Duration(float64(n) / d.GlobalBandwidth * float64(time.Second))
	if rep.KernelTime < floor {
		t.Fatalf("KernelTime %v under bandwidth floor %v", rep.KernelTime, floor)
	}
}
