package cudasim

import (
	"fmt"
	"strings"
	"time"
)

// Detail renders a profiler-style breakdown of a launch: the counters,
// derived rates, and a compute-vs-memory classification — the analysis a
// CUDA profiler would give for the real kernel.
func (r *LaunchReport) Detail(d *Device) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %q: %d blocks x %d threads, %d B shared/block\n",
		r.Kernel, r.Blocks, r.ThreadsPerBlock, r.SharedPerBlock)
	fmt.Fprintf(&sb, "  occupancy:     %.0f%% (%d blocks/SM resident)\n", r.Occupancy*100, r.BlocksPerSM)
	fmt.Fprintf(&sb, "  warp cycles:   %d (divergence-adjusted)\n", r.WarpCycles)
	fmt.Fprintf(&sb, "  mem stalls:    %d cycles exposed\n", r.MemStallCycles)
	fmt.Fprintf(&sb, "  global:        %d transactions, %s moved\n",
		r.GlobalTransactions, byteCount(r.GlobalBytes))
	if r.GlobalTransactions > 0 {
		fmt.Fprintf(&sb, "  coalescing:    %.1f bytes useful per 128 B transaction\n",
			float64(r.GlobalBytes)/float64(r.GlobalTransactions))
	}
	fmt.Fprintf(&sb, "  shared:        %d accesses, %d replay cycles from bank conflicts\n",
		r.SharedAccesses, r.SharedReplayCycles)
	fmt.Fprintf(&sb, "  kernel time:   %v (wave)  /  %v (saturated)\n",
		r.KernelTime.Round(time.Microsecond), r.SaturatedKernelTime.Round(time.Microsecond))
	if r.KernelTime > 0 && d != nil {
		bwTime := time.Duration(float64(r.GlobalBytes) / d.GlobalBandwidth * float64(time.Second))
		frac := float64(bwTime) / float64(r.KernelTime)
		switch {
		case frac > 0.8:
			fmt.Fprintf(&sb, "  bound by:      memory bandwidth (%.0f%% of kernel time)\n", frac*100)
		case float64(r.MemStallCycles) > float64(r.WarpCycles):
			sb.WriteString("  bound by:      memory latency (stalls exceed compute)\n")
		default:
			fmt.Fprintf(&sb, "  bound by:      compute (bandwidth would allow %.1fx)\n", safeInverse(frac))
		}
	}
	fmt.Fprintf(&sb, "  host wall:     %v (simulation cost, not modeled time)\n", r.WallTime.Round(time.Microsecond))
	return sb.String()
}

func safeInverse(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return 1 / f
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
