package cliutil

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"4096":   4096,
		"64K":    64 << 10,
		"64KiB":  64 << 10,
		"8MiB":   8 << 20,
		"128MB":  128_000_000,
		"1GiB":   1 << 30,
		"2GB":    2_000_000_000,
		"1.5MiB": 3 << 19,
		"100B":   100,
		" 7M ":   7 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "-4K", "12QiB", "MiB"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted", in)
		}
	}
}
