// Package cliutil holds the small helpers shared by the cmd/ binaries:
// human-friendly size parsing and duration/size rendering.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a human byte size: plain bytes ("4096"), decimal units
// ("128MB", "2GB"), or binary units ("8MiB", "1GiB", "64KiB"/"64K").
func ParseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	upper := strings.ToUpper(s)
	type unit struct {
		suffix string
		mult   int
	}
	units := []unit{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(upper, u.suffix) {
			num := strings.TrimSpace(upper[:len(upper)-len(u.suffix)])
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("cliutil: bad size %q: %v", s, err)
			}
			if v < 0 {
				return 0, fmt.Errorf("cliutil: negative size %q", s)
			}
			return int(v * float64(u.mult)), nil
		}
	}
	v, err := strconv.Atoi(upper)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("cliutil: negative size %q", s)
	}
	return v, nil
}
