// Package health is the device-pool supervisor behind the resilient
// multi-GPU and streaming paths: per-device circuit breakers, a watchdog
// that bounds every guarded operation with a deadline, and quarantine
// with periodic half-open re-probe so a recovered device rejoins the
// pool.
//
// PR 2's retry/degrade machinery treats *segments* as the unit of
// failure isolation: an op that fails is retried and eventually
// re-encoded on the host. That is the wrong granularity for a sick
// *device* — a GPU whose every launch fails (or hangs) makes every
// segment walk the full retry ladder, and a hung kernel wedges its
// worker forever. This package isolates at the device level instead:
//
//   - A Breaker per device tracks recent outcomes in a sliding window.
//     Enough failures open the breaker; an open device is quarantined —
//     dispatchers stop routing work to it, so the fleet pays the failure
//     cost once per quarantine period instead of once per operation.
//   - After the quarantine period the breaker turns HalfOpen and admits
//     a single probe operation. Success (the configured number of times)
//     closes the breaker and the device rejoins the pool; failure
//     re-opens it for another period.
//   - Run wraps a guarded operation in a watchdog: the op runs under a
//     deadline-bound context and is abandoned when the deadline fires,
//     surfacing a typed *TimeoutError instead of blocking forever.
//     Cooperative cancellation (the cudasim launch hook and the
//     chunk/shard loops select on the context) means an abandoned op
//     also *exits* promptly; the watchdog's correctness never depends on
//     it.
//
// The supervisor also keeps a logbook of breaker transitions and a set
// of fleet counters (timeouts, breaker opens, redispatches) that
// gpu.MultiGPUReport and core.WriterStats surface. All methods are safe
// for concurrent use. A nil *Supervisor is inert where the gpu layer
// consults it, so production paths that never arm one pay a pointer
// test.
package health

import (
	"context"
	"errors"
	"fmt"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/obs"
)

// State is a circuit breaker's position.
type State int

// Breaker states.
const (
	// Closed: the device is believed healthy; work flows normally.
	Closed State = iota
	// Open: the device is quarantined; no work is routed to it until the
	// quarantine period elapses.
	Open
	// HalfOpen: the quarantine period elapsed; one probe operation at a
	// time may test whether the device recovered.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Policy tunes the supervisor. The zero value selects the defaults
// documented per field.
type Policy struct {
	// Obs, when non-nil, mirrors the supervisor's counters into the
	// observability registry (the culzss_health_* families, README
	// "Observability"). Nil costs nothing: the instruments resolve to
	// inert nils at construction.
	Obs *obs.Registry
	// Window is the sliding outcome window per device; 0 means 8.
	Window int
	// Threshold is the number of failures inside the window that opens
	// the breaker; 0 means 3. Threshold 1 opens on any failure.
	Threshold int
	// OpenFor is the quarantine period before an open breaker turns
	// half-open; 0 means 250ms.
	OpenFor time.Duration
	// HalfOpenProbes is the number of consecutive probe successes that
	// close a half-open breaker; 0 means 1.
	HalfOpenProbes int
	// Deadline is the watchdog bound Run places on every guarded
	// operation; 0 disables the watchdog (operations may block on their
	// own context only).
	Deadline time.Duration
	// Clock overrides time.Now for the quarantine timing (test hook).
	Clock func() time.Time
}

func (p Policy) window() int {
	if p.Window <= 0 {
		return 8
	}
	return p.Window
}

func (p Policy) threshold() int {
	if p.Threshold <= 0 {
		return 3
	}
	return p.Threshold
}

func (p Policy) openFor() time.Duration {
	if p.OpenFor <= 0 {
		return 250 * time.Millisecond
	}
	return p.OpenFor
}

func (p Policy) halfOpenProbes() int {
	if p.HalfOpenProbes <= 0 {
		return 1
	}
	return p.HalfOpenProbes
}

func (p Policy) now() time.Time {
	if p.Clock != nil {
		return p.Clock()
	}
	return time.Now()
}

// TimeoutError is the typed error Run returns when the watchdog deadline
// cuts a guarded operation — the "hung kernel" signal.
type TimeoutError struct {
	// Op names the guarded operation ("launch", "segment", "shard 3").
	Op string
	// Device is the pool index of the device the operation ran on.
	Device int
	// Deadline is the watchdog bound that fired.
	Deadline time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("health: %s on device %d exceeded watchdog deadline %v", e.Op, e.Device, e.Deadline)
}

// Is lets errors.Is(err, context.DeadlineExceeded) treat a watchdog cut
// like any other deadline, so existing deadline handling composes.
func (e *TimeoutError) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrNoDevice is returned by dispatchers when every device in the pool
// is quarantined (or excluded) — the signal to degrade to the CPU path.
var ErrNoDevice = errors.New("health: no healthy device available")

// Event is one logbook entry: a breaker state transition.
type Event struct {
	// At is the transition time (per Policy.Clock).
	At time.Time
	// Device is the pool index.
	Device int
	// From and To are the breaker states.
	From, To State
	// Cause is a short human-readable reason ("failure threshold",
	// "quarantine elapsed", "probe success", "probe failure").
	Cause string
}

// String renders a one-line logbook entry.
func (e Event) String() string {
	return fmt.Sprintf("device %d: %v -> %v (%s)", e.Device, e.From, e.To, e.Cause)
}

// DeviceSlot describes one pool member.
type DeviceSlot struct {
	// Device is the simulated GPU; nil lets the dispatching layer pick
	// its default. Per-device fault behaviour (a dead or hanging device)
	// is armed on the device itself via cudasim.Device.LaunchHook.
	Device *cudasim.Device
}

// Snapshot is a point-in-time view of the pool.
type Snapshot struct {
	// Devices is the pool size; Healthy counts devices currently Closed
	// or HalfOpen; Quarantined counts devices currently Open.
	Devices, Healthy, Quarantined int
	// States holds every device's current breaker state.
	States []State
	// TimedOut counts watchdog-cut operations; BreakerOpens counts
	// transitions into Open; Redispatched counts operations re-routed to
	// a sibling device after a failure; Failures/Successes count recorded
	// outcomes.
	TimedOut, BreakerOpens, Redispatched, Failures, Successes int
}

// logbookCap bounds the supervisor's event history; older entries are
// dropped (a supervisor may outlive millions of operations).
const logbookCap = 1024
