package health

import (
	"context"
	"errors"
	"sync"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/obs"
)

// metrics holds the supervisor's pre-resolved observability instruments.
// With Policy.Obs nil every field is nil and every increment is a no-op
// (the obs nil-inert contract), so the zero-cost-when-off property holds
// without guards at the call sites. Each counter increments exactly where
// the supervisor's own lifetime counter does, so a fresh registry's totals
// reconcile with Snapshot deltas by construction.
type metrics struct {
	transitions [3]*obs.Counter // indexed by the destination State
	opens       *obs.Counter
	timeouts    *obs.Counter
	redispatch  *obs.Counter
	successes   *obs.Counter
	failures    *obs.Counter
	quarantined *obs.Gauge
}

func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	reg.SetHelp("culzss_health_breaker_transitions_total", "Circuit-breaker state transitions by destination state.")
	reg.SetHelp("culzss_health_breaker_opens_total", "Circuit-breaker transitions into Open (device quarantines).")
	reg.SetHelp("culzss_health_watchdog_timeouts_total", "Guarded operations cut by the watchdog deadline.")
	reg.SetHelp("culzss_health_redispatches_total", "Operations re-routed to a sibling device after a failure.")
	reg.SetHelp("culzss_health_outcomes_total", "Operation outcomes recorded on device breakers.")
	reg.SetHelp("culzss_health_quarantined_devices", "Devices currently quarantined (breaker Open).")
	var m metrics
	for _, st := range []State{Closed, Open, HalfOpen} {
		m.transitions[st] = reg.Counter("culzss_health_breaker_transitions_total", obs.L("to", st.String()))
	}
	m.opens = reg.Counter("culzss_health_breaker_opens_total")
	m.timeouts = reg.Counter("culzss_health_watchdog_timeouts_total")
	m.redispatch = reg.Counter("culzss_health_redispatches_total")
	m.successes = reg.Counter("culzss_health_outcomes_total", obs.L("outcome", "success"))
	m.failures = reg.Counter("culzss_health_outcomes_total", obs.L("outcome", "failure"))
	m.quarantined = reg.Gauge("culzss_health_quarantined_devices")
	return m
}

// Supervisor owns a pool of devices, one circuit breaker per device, the
// watchdog, and the fleet counters. Construct with NewSupervisor; the
// zero value is not usable (but a nil *Supervisor is inert in the gpu
// layer, which treats "no supervisor" as "legacy fail-fast dispatch").
type Supervisor struct {
	pol Policy
	met metrics

	mu     sync.Mutex
	slots  []*slot
	events []Event
	rr     int // round-robin cursor for Acquire fairness

	timedOut     int
	opens        int
	redispatched int
	failures     int
	successes    int
}

// slot is one device's breaker bookkeeping.
type slot struct {
	dev   *cudasim.Device
	state State

	// Sliding outcome window (true = failure), ring-buffered.
	window []bool
	wlen   int // samples recorded (saturates at len(window))
	wpos   int
	fails  int // failures currently inside the window

	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	probeWins int  // consecutive half-open successes so far
}

// NewSupervisor builds a supervisor over the given pool. An empty slice
// yields a single default slot (one device, the dispatcher's default
// preset) so callers can always count on Devices() >= 1.
func NewSupervisor(slots []DeviceSlot, pol Policy) *Supervisor {
	if len(slots) == 0 {
		slots = []DeviceSlot{{}}
	}
	s := &Supervisor{pol: pol, met: newMetrics(pol.Obs)}
	for _, ds := range slots {
		s.slots = append(s.slots, &slot{
			dev:    ds.Device,
			window: make([]bool, pol.window()),
		})
	}
	return s
}

// NewPool is shorthand for a homogeneous pool: n clones of base (nil base
// means the dispatcher default on every slot).
func NewPool(base *cudasim.Device, n int, pol Policy) *Supervisor {
	if n < 1 {
		n = 1
	}
	slots := make([]DeviceSlot, n)
	for i := range slots {
		if base != nil {
			slots[i] = DeviceSlot{Device: base.Clone()}
		}
	}
	return NewSupervisor(slots, pol)
}

// Devices returns the pool size.
func (s *Supervisor) Devices() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// Device returns slot id's device (nil when the slot uses the
// dispatcher's default preset).
func (s *Supervisor) Device(id int) *cudasim.Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots[id].dev
}

// Policy returns the supervisor's policy (defaults not yet applied).
func (s *Supervisor) Policy() Policy { return s.pol }

// State returns device id's current breaker state, applying the lazy
// Open → HalfOpen transition if the quarantine period has elapsed.
func (s *Supervisor) State(id int) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ripenLocked(id)
	return s.slots[id].state
}

// ripenLocked performs the clock-driven Open → HalfOpen transition.
func (s *Supervisor) ripenLocked(id int) {
	sl := s.slots[id]
	if sl.state == Open && s.pol.now().Sub(sl.openedAt) >= s.pol.openFor() {
		s.transitionLocked(id, HalfOpen, "quarantine elapsed")
		sl.probing = false
		sl.probeWins = 0
	}
}

// transitionLocked records a state change in the logbook.
func (s *Supervisor) transitionLocked(id int, to State, cause string) {
	sl := s.slots[id]
	if sl.state == to {
		return
	}
	if to == Open {
		s.opens++
		s.met.opens.Inc()
		s.met.quarantined.Inc()
	}
	if sl.state == Open {
		s.met.quarantined.Dec()
	}
	s.met.transitions[to].Inc()
	s.events = append(s.events, Event{At: s.pol.now(), Device: id, From: sl.state, To: to, Cause: cause})
	if len(s.events) > logbookCap {
		s.events = s.events[len(s.events)-logbookCap:]
	}
	sl.state = to
}

// Acquire picks a healthy device, preferring id == prefer (use the shard
// or segment's "home" device for locality, or -1 for round-robin). A
// Closed device is always eligible; a HalfOpen device admits one probe at
// a time; Open devices are skipped. exclude lists devices the caller has
// already failed on for this piece of work. ok is false when the whole
// pool is quarantined or excluded.
func (s *Supervisor) Acquire(prefer int, exclude map[int]bool) (id int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.slots)
	start := prefer
	if start < 0 || start >= n {
		start = s.rr % n
		s.rr++
	}
	for off := 0; off < n; off++ {
		id := (start + off) % n
		if exclude[id] {
			continue
		}
		s.ripenLocked(id)
		sl := s.slots[id]
		switch sl.state {
		case Closed:
			return id, true
		case HalfOpen:
			if !sl.probing {
				sl.probing = true
				return id, true
			}
		}
	}
	return 0, false
}

// ReportSuccess records a successful operation on device id.
func (s *Supervisor) ReportSuccess(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.successes++
	s.met.successes.Inc()
	s.recordLocked(id, false, "")
}

// ReportFailure records a failed operation on device id; cause feeds the
// logbook when the failure trips the breaker.
func (s *Supervisor) ReportFailure(id int, cause string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures++
	s.met.failures.Inc()
	s.recordLocked(id, true, cause)
}

// recordLocked pushes one outcome through device id's breaker.
func (s *Supervisor) recordLocked(id int, fail bool, cause string) {
	sl := s.slots[id]
	s.ripenLocked(id)

	if sl.state == HalfOpen {
		sl.probing = false
		if fail {
			s.reopenLocked(id, "probe failure: "+cause)
			return
		}
		sl.probeWins++
		if sl.probeWins >= s.pol.halfOpenProbes() {
			s.transitionLocked(id, Closed, "probe success")
			s.resetWindowLocked(id)
		}
		return
	}

	// Closed (or, rarely, Open when a straggler reports during
	// quarantine — still count the outcome; it cannot close the breaker).
	if sl.wlen == len(sl.window) {
		if sl.window[sl.wpos] {
			sl.fails--
		}
	} else {
		sl.wlen++
	}
	sl.window[sl.wpos] = fail
	if fail {
		sl.fails++
	}
	sl.wpos = (sl.wpos + 1) % len(sl.window)

	if sl.state == Closed && fail && sl.fails >= s.pol.threshold() {
		s.reopenLocked(id, "failure threshold: "+cause)
	}
}

// reopenLocked quarantines device id.
func (s *Supervisor) reopenLocked(id int, cause string) {
	sl := s.slots[id]
	s.transitionLocked(id, Open, cause)
	sl.openedAt = s.pol.now()
	sl.probing = false
	sl.probeWins = 0
	s.resetWindowLocked(id)
}

// resetWindowLocked clears the outcome window (a state change starts a
// fresh observation period).
func (s *Supervisor) resetWindowLocked(id int) {
	sl := s.slots[id]
	for i := range sl.window {
		sl.window[i] = false
	}
	sl.wlen, sl.wpos, sl.fails = 0, 0, 0
}

// NoteRedispatch counts one piece of work re-routed to a sibling device
// after a failure (called by the dispatch layers).
func (s *Supervisor) NoteRedispatch() {
	s.mu.Lock()
	s.redispatched++
	s.met.redispatch.Inc()
	s.mu.Unlock()
}

// Run executes a guarded operation on device id under the watchdog and
// records the outcome on the device's breaker.
//
// f receives a context bounded by Policy.Deadline (when set) and chained
// to ctx; Run waits for f or the deadline, whichever first. On deadline
// the operation is *abandoned* — Run returns a typed *TimeoutError
// immediately and f's goroutine is left to notice its cancelled context
// (the cudasim launch hook and the chunk loops are cancellation points,
// so a simulated hang unblocks promptly; a truly unresponsive op costs
// an abandoned goroutine, never a wedged dispatcher). A caller-cancelled
// ctx returns ctx's error without charging the device's breaker: the
// caller gave up, the device did not fail.
//
// f must write results only to storage the caller reads after Run
// returns nil; an abandoned attempt's writes must stay attempt-local.
func (s *Supervisor) Run(ctx context.Context, id int, op string, f func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx := ctx
	cancel := func() {}
	if d := s.pol.Deadline; d > 0 {
		runCtx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()

	done := make(chan error, 1)
	go func() { done <- f(runCtx) }()

	var err error
	select {
	case err = <-done:
	case <-runCtx.Done():
		if ctx.Err() != nil {
			return ctx.Err() // the caller cancelled; not the device's fault
		}
		return s.timeoutLocked(id, op)
	}
	if err == nil {
		s.ReportSuccess(id)
		return nil
	}
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return err // caller cancellation surfaced through f
	}
	if runCtx.Err() == context.DeadlineExceeded && errors.Is(err, context.DeadlineExceeded) {
		// The deadline fired and f noticed before our select did —
		// classify as the same watchdog timeout.
		return s.timeoutLocked(id, op)
	}
	s.ReportFailure(id, err.Error())
	return err
}

// timeoutLocked records a watchdog cut and returns the typed error.
func (s *Supervisor) timeoutLocked(id int, op string) error {
	s.mu.Lock()
	s.timedOut++
	s.met.timeouts.Inc()
	s.failures++
	s.met.failures.Inc()
	s.recordLocked(id, true, "watchdog timeout")
	s.mu.Unlock()
	return &TimeoutError{Op: op, Device: id, Deadline: s.pol.Deadline}
}

// Snapshot returns the pool's current states and lifetime counters.
func (s *Supervisor) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Devices:      len(s.slots),
		States:       make([]State, len(s.slots)),
		TimedOut:     s.timedOut,
		BreakerOpens: s.opens,
		Redispatched: s.redispatched,
		Failures:     s.failures,
		Successes:    s.successes,
	}
	for i := range s.slots {
		s.ripenLocked(i)
		snap.States[i] = s.slots[i].state
		if s.slots[i].state == Open {
			snap.Quarantined++
		} else {
			snap.Healthy++
		}
	}
	return snap
}

// Events returns a copy of the logbook (breaker transitions, oldest
// first; capped at logbookCap entries).
func (s *Supervisor) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}
