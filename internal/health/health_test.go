package health

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for quarantine timing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testPolicy(clk *fakeClock) Policy {
	return Policy{Window: 8, Threshold: 2, OpenFor: 100 * time.Millisecond, Clock: clk.now}
}

// --- breaker state machine ---------------------------------------------

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	s := NewPool(nil, 1, testPolicy(clk))
	if got := s.State(0); got != Closed {
		t.Fatalf("fresh breaker: state %v, want closed", got)
	}
	s.ReportFailure(0, "boom")
	if got := s.State(0); got != Closed {
		t.Fatalf("one failure under threshold 2: state %v, want closed", got)
	}
	s.ReportFailure(0, "boom")
	if got := s.State(0); got != Open {
		t.Fatalf("threshold failures: state %v, want open", got)
	}
	ev := s.Events()
	if len(ev) != 1 || ev[0].From != Closed || ev[0].To != Open {
		t.Fatalf("logbook: %v, want one closed->open entry", ev)
	}
}

func TestSuccessesKeepBreakerClosed(t *testing.T) {
	clk := newFakeClock()
	s := NewPool(nil, 1, Policy{Window: 4, Threshold: 3, Clock: clk.now})
	// Failures interleaved with successes so the sliding window never
	// holds 3 failures at once.
	for i := 0; i < 20; i++ {
		s.ReportFailure(0, "flaky")
		s.ReportSuccess(0)
		s.ReportSuccess(0)
	}
	if got := s.State(0); got != Closed {
		t.Fatalf("interleaved outcomes: state %v, want closed", got)
	}
	// Now a burst inside one window trips it.
	s.ReportFailure(0, "burst")
	s.ReportFailure(0, "burst")
	s.ReportFailure(0, "burst")
	if got := s.State(0); got != Open {
		t.Fatalf("burst: state %v, want open", got)
	}
}

func TestQuarantineThenReprobeCloses(t *testing.T) {
	clk := newFakeClock()
	s := NewPool(nil, 1, testPolicy(clk))
	s.ReportFailure(0, "x")
	s.ReportFailure(0, "x")
	if got := s.State(0); got != Open {
		t.Fatalf("state %v, want open", got)
	}
	// During quarantine the device is not acquirable.
	if _, ok := s.Acquire(0, nil); ok {
		t.Fatal("acquired a quarantined device")
	}
	clk.advance(99 * time.Millisecond)
	if got := s.State(0); got != Open {
		t.Fatalf("before quarantine elapses: state %v, want open", got)
	}
	clk.advance(2 * time.Millisecond)
	if got := s.State(0); got != HalfOpen {
		t.Fatalf("after quarantine: state %v, want half-open", got)
	}
	// Half-open admits exactly one probe at a time.
	id, ok := s.Acquire(0, nil)
	if !ok || id != 0 {
		t.Fatalf("probe acquire: id=%d ok=%v", id, ok)
	}
	if _, ok := s.Acquire(0, nil); ok {
		t.Fatal("second concurrent probe admitted")
	}
	s.ReportSuccess(0)
	if got := s.State(0); got != Closed {
		t.Fatalf("after probe success: state %v, want closed", got)
	}
	// Full cycle in the logbook: open -> half-open -> closed.
	ev := s.Events()
	if len(ev) != 3 || ev[1].To != HalfOpen || ev[2].To != Closed {
		t.Fatalf("logbook: %v", ev)
	}
}

func TestProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	s := NewPool(nil, 1, testPolicy(clk))
	s.ReportFailure(0, "x")
	s.ReportFailure(0, "x")
	clk.advance(150 * time.Millisecond)
	if _, ok := s.Acquire(0, nil); !ok {
		t.Fatal("half-open probe not admitted")
	}
	s.ReportFailure(0, "still dead")
	if got := s.State(0); got != Open {
		t.Fatalf("after probe failure: state %v, want open again", got)
	}
	// The next quarantine period starts from the re-open.
	clk.advance(99 * time.Millisecond)
	if got := s.State(0); got != Open {
		t.Fatalf("fresh quarantine: state %v, want open", got)
	}
	clk.advance(2 * time.Millisecond)
	if got := s.State(0); got != HalfOpen {
		t.Fatalf("second quarantine elapsed: state %v, want half-open", got)
	}
}

func TestHalfOpenNeedsConfiguredProbes(t *testing.T) {
	clk := newFakeClock()
	pol := testPolicy(clk)
	pol.HalfOpenProbes = 2
	s := NewPool(nil, 1, pol)
	s.ReportFailure(0, "x")
	s.ReportFailure(0, "x")
	clk.advance(150 * time.Millisecond)
	s.Acquire(0, nil)
	s.ReportSuccess(0)
	if got := s.State(0); got != HalfOpen {
		t.Fatalf("one of two probes: state %v, want half-open", got)
	}
	s.Acquire(0, nil)
	s.ReportSuccess(0)
	if got := s.State(0); got != Closed {
		t.Fatalf("two probes: state %v, want closed", got)
	}
}

// --- acquire / pool routing --------------------------------------------

func TestAcquireSkipsOpenAndExcluded(t *testing.T) {
	clk := newFakeClock()
	pol := testPolicy(clk)
	pol.Threshold = 1
	s := NewPool(nil, 3, pol)
	s.ReportFailure(0, "dead")
	if got := s.State(0); got != Open {
		t.Fatalf("state %v, want open", got)
	}
	id, ok := s.Acquire(0, nil)
	if !ok || id == 0 {
		t.Fatalf("acquire preferring quarantined slot: id=%d ok=%v, want a sibling", id, ok)
	}
	id, ok = s.Acquire(0, map[int]bool{1: true})
	if !ok || id != 2 {
		t.Fatalf("acquire excluding 1: id=%d ok=%v, want 2", id, ok)
	}
	if _, ok := s.Acquire(-1, map[int]bool{1: true, 2: true}); ok {
		t.Fatal("acquired with whole pool quarantined or excluded")
	}
}

func TestAcquireRoundRobinSpreadsLoad(t *testing.T) {
	clk := newFakeClock()
	s := NewPool(nil, 3, testPolicy(clk))
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		id, ok := s.Acquire(-1, nil)
		if !ok {
			t.Fatal("healthy pool refused acquire")
		}
		seen[id]++
		s.ReportSuccess(id)
	}
	for id := 0; id < 3; id++ {
		if seen[id] != 3 {
			t.Fatalf("round-robin skew: %v", seen)
		}
	}
}

// --- watchdog -----------------------------------------------------------

func TestRunWatchdogCutsHungOperation(t *testing.T) {
	s := NewPool(nil, 1, Policy{Threshold: 1, Deadline: 30 * time.Millisecond, OpenFor: time.Hour})
	start := time.Now()
	err := s.Run(context.Background(), 0, "launch", func(ctx context.Context) error {
		<-ctx.Done() // a cooperative hang: blocks until the watchdog cuts it
		return ctx.Err()
	})
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Op != "launch" || te.Device != 0 {
		t.Fatalf("timeout identity: %+v", te)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("TimeoutError must match errors.Is(_, context.DeadlineExceeded)")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v; the hang leaked past the deadline", elapsed)
	}
	if got := s.State(0); got != Open {
		t.Fatalf("after watchdog cut at threshold 1: state %v, want open", got)
	}
	snap := s.Snapshot()
	if snap.TimedOut != 1 || snap.Failures != 1 {
		t.Fatalf("counters: %+v, want TimedOut=1 Failures=1", snap)
	}
}

func TestRunCallerCancelNotChargedToDevice(t *testing.T) {
	s := NewPool(nil, 1, Policy{Threshold: 1, Deadline: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := s.Run(ctx, 0, "op", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := s.Snapshot()
	if snap.Failures != 0 || snap.TimedOut != 0 {
		t.Fatalf("caller cancellation charged the breaker: %+v", snap)
	}
	if got := s.State(0); got != Closed {
		t.Fatalf("state %v, want closed", got)
	}
}

func TestRunRecordsOutcomes(t *testing.T) {
	s := NewPool(nil, 1, Policy{Threshold: 5})
	if err := s.Run(nil, 0, "ok", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("kernel fault")
	if err := s.Run(nil, 0, "bad", func(context.Context) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	snap := s.Snapshot()
	if snap.Successes != 1 || snap.Failures != 1 {
		t.Fatalf("counters: %+v", snap)
	}
}

// --- snapshot / nil safety ---------------------------------------------

func TestSnapshotCountsPool(t *testing.T) {
	clk := newFakeClock()
	pol := testPolicy(clk)
	pol.Threshold = 1
	s := NewPool(nil, 3, pol)
	s.ReportFailure(1, "dead")
	s.NoteRedispatch()
	snap := s.Snapshot()
	if snap.Devices != 3 || snap.Healthy != 2 || snap.Quarantined != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.Redispatched != 1 || snap.BreakerOpens != 1 {
		t.Fatalf("counters: %+v", snap)
	}
	if len(snap.States) != 3 || snap.States[1] != Open {
		t.Fatalf("states: %v", snap.States)
	}
}

func TestNilSupervisorIsInert(t *testing.T) {
	var s *Supervisor
	if s.Devices() != 0 {
		t.Fatal("nil supervisor has devices")
	}
	if snap := s.Snapshot(); snap.Devices != 0 {
		t.Fatalf("nil snapshot: %+v", snap)
	}
	if ev := s.Events(); ev != nil {
		t.Fatalf("nil events: %v", ev)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
