package bzip2

import (
	"math/rand"
	"testing"

	"culzss/internal/bitio"
	"culzss/internal/bzip2/huffman"
	"culzss/internal/format"
)

// TestDecompressBlockNeverPanics feeds random bytes into the block
// decoder; every outcome must be an error or a (wrong) result, never a
// panic.
func TestDecompressBlockNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		garbage := make([]byte, n)
		rng.Read(garbage)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decompressBlock panicked: %v", trial, r)
				}
			}()
			_, _ = decompressBlock(garbage)
		}()
	}
}

// TestDecompressContainerNeverPanics does the same through the public
// entry point with a valid header and corrupted payload.
func TestDecompressContainerNeverPanics(t *testing.T) {
	base, err := Compress(genText(20000, 12), Options{BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decompress panicked: %v", trial, r)
				}
			}()
			_, _ = Decompress(corrupt, 2)
		}()
	}
}

// TestHuffmanDecoderRandomBits drives the canonical decoder with random
// bit streams: it must consume or error, never hang or panic.
func TestHuffmanDecoderRandomBits(t *testing.T) {
	freq := make([]int64, alphaSize)
	rng := rand.New(rand.NewSource(14))
	for i := range freq {
		freq[i] = int64(1 + rng.Intn(100))
	}
	dec, err := huffman.NewDecoder(huffman.BuildLengths(freq))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		raw := make([]byte, 1+rng.Intn(64))
		rng.Read(raw)
		r := bitio.NewReader(raw)
		for {
			if _, err := dec.Decode(r); err != nil {
				break
			}
		}
	}
}

// TestEmptyBlockInMultiBlockStream exercises the degenerate all-empty
// and single-byte block paths.
func TestEmptyBlockInMultiBlockStream(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 37)
		}
		comp, err := Compress(data, Options{BlockSize: 2})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := Decompress(comp, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d bytes", n, len(got))
		}
		for i := range got {
			if got[i] != data[i] {
				t.Fatalf("n=%d: byte %d differs", n, i)
			}
		}
	}
}

// TestBlockStreamSizesRecorded sanity-checks the container chunk table
// against the actual payload.
func TestBlockStreamSizesRecorded(t *testing.T) {
	data := genText(50000, 15)
	comp, err := Compress(data, Options{BlockSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	h, off, err := format.ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.PayloadLen() != len(comp)-off {
		t.Fatalf("chunk table says %d payload bytes, container has %d", h.PayloadLen(), len(comp)-off)
	}
	if want := (len(data) + 8191) / 8192; len(h.ChunkSizes) != want {
		t.Fatalf("blocks = %d, want %d", len(h.ChunkSizes), want)
	}
}
