package bzip2

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"culzss/internal/bzip2/bwt"
	"culzss/internal/format"
)

func genText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"block", "sorting", "transform", "huffman", "selector", "entropy", "symbol", "stream"}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

func TestMTFRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMTFKnownValues(t *testing.T) {
	// "aaa" -> first 'a' is at index 97, then front.
	got := mtfEncode([]byte("aaa"))
	if got[0] != 97 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("mtf(aaa) = %v", got)
	}
	// After 'a' moved to front, 'b' sits at index 98.
	got = mtfEncode([]byte("ab"))
	if got[0] != 97 || got[1] != 98 {
		t.Fatalf("mtf(ab) = %v", got)
	}
	got = mtfEncode([]byte("aba"))
	if got[2] != 1 {
		t.Fatalf("mtf(aba)[2] = %d, want 1", got[2])
	}
}

func TestRLE1RoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("abc"),
		[]byte("aaaa"),
		[]byte("aaaab"),
		bytes.Repeat([]byte{'x'}, 259),
		bytes.Repeat([]byte{'x'}, 260),
		bytes.Repeat([]byte{'x'}, 1000),
		[]byte("aaabbbbccccc"),
	}
	for _, in := range inputs {
		enc := rle1Encode(in)
		dec, err := rle1Decode(enc)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !bytes.Equal(dec, in) {
			t.Fatalf("%q: round trip mismatch (%q)", in, dec)
		}
	}
}

func TestRLE1CompressesRuns(t *testing.T) {
	in := bytes.Repeat([]byte{'z'}, 1000)
	enc := rle1Encode(in)
	if len(enc) > 30 {
		t.Fatalf("1000-byte run encoded to %d bytes", len(enc))
	}
}

func TestRLE1RejectsTruncation(t *testing.T) {
	enc := rle1Encode(bytes.Repeat([]byte{'q'}, 100))
	if _, err := rle1Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("accepted truncated RLE1")
	}
}

func TestRLE1Quick(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := rle1Decode(rle1Encode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLE2RoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0, 0, 0, 0, 0, 0, 0},
		{1, 2, 3},
		{0, 5, 0, 0, 9, 0, 0, 0},
		bytes.Repeat([]byte{0}, 1000),
		{255, 0, 255},
	}
	for _, in := range inputs {
		syms := rle2Encode(in)
		if syms[len(syms)-1] != symEOB {
			t.Fatalf("%v: missing EOB", in)
		}
		dec, err := rle2Decode(syms)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if !bytes.Equal(dec, in) && !(len(dec) == 0 && len(in) == 0) {
			t.Fatalf("%v: got %v", in, dec)
		}
	}
}

func TestRLE2ZeroRunsCrush(t *testing.T) {
	in := bytes.Repeat([]byte{0}, 10000)
	syms := rle2Encode(in)
	// 10000 zeros need ~log2(10000) RUNA/RUNB symbols plus EOB.
	if len(syms) > 20 {
		t.Fatalf("10000 zeros became %d symbols", len(syms))
	}
}

func TestRLE2Errors(t *testing.T) {
	if _, err := rle2Decode([]uint16{5}); err == nil {
		t.Fatal("accepted stream without EOB")
	}
	if _, err := rle2Decode([]uint16{symEOB, 5}); err == nil {
		t.Fatal("accepted data after EOB")
	}
	if _, err := rle2Decode(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestRLE2Quick(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := rle2Decode(rle2Encode(data))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(dec) == 0
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	for name, input := range map[string][]byte{
		"empty":    {},
		"tiny":     []byte("a"),
		"text":     genText(300000, 1),
		"periodic": bytes.Repeat([]byte("abcdefghijklmnopqrst"), 5000),
		"random":   func() []byte { b := make([]byte, 100000); rand.New(rand.NewSource(2)).Read(b); return b }(),
		"zeros":    make([]byte, 50000),
	} {
		comp, err := Compress(input, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Decompress(comp, 0)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestCompressionRatioOnText(t *testing.T) {
	input := genText(500000, 3)
	comp, err := Compress(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(comp)) / float64(len(input))
	// Repetitive generated text should crush well below 35%.
	if ratio > 0.35 {
		t.Fatalf("bzip2 ratio on text = %.3f", ratio)
	}
}

func TestMultiBlockBoundaries(t *testing.T) {
	input := genText(2*DefaultBlockSize+12345, 4)
	comp, err := Compress(input, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := format.ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.ChunkSizes) != 3 {
		t.Fatalf("blocks = %d, want 3", len(h.ChunkSizes))
	}
	got, err := Decompress(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
}

func TestSmallBlockSize(t *testing.T) {
	input := genText(10000, 5)
	comp, err := Compress(input, Options{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, 0)
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestSortStatsSurface(t *testing.T) {
	var st bwt.Stats
	input := bytes.Repeat([]byte("abcdefghijklmnopqrst"), 5000)
	if _, err := Compress(input, Options{SortStats: &st, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if st.FallbackElems == 0 {
		t.Fatal("periodic data did not reach the fallback sort")
	}
}

func TestDecompressErrors(t *testing.T) {
	input := genText(50000, 6)
	comp, err := Compress(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong codec.
	wrong := append([]byte(nil), comp...)
	wrong[5] = byte(format.CodecSerialBitPacked)
	if _, err := Decompress(wrong, 0); err == nil {
		t.Fatal("accepted wrong codec")
	}
	// Truncations at various depths.
	for _, cut := range []int{8, len(comp) / 2, len(comp) - 2} {
		if _, err := Decompress(comp[:cut], 0); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	// Payload corruption must be detected (structure or checksum).
	for _, pos := range []int{len(comp) - 5, len(comp) / 2, len(comp) / 3} {
		corrupt := append([]byte(nil), comp...)
		corrupt[pos] ^= 0x01
		if _, err := Decompress(corrupt, 0); err == nil {
			t.Fatalf("accepted corruption at %d", pos)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := Compress(data, Options{BlockSize: 4096})
		if err != nil {
			return false
		}
		got, err := Decompress(comp, 2)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNTablesHeuristic(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {199, 2}, {200, 3}, {599, 3}, {600, 4}, {1199, 4}, {1200, 5}, {2399, 5}, {2400, 6}, {1 << 20, 6},
	}
	for _, c := range cases {
		if got := nTablesFor(c.n); got != c.want {
			t.Errorf("nTablesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
