package bzip2

// Move-to-front coding (paper ref [3]'s pipeline stage): after the BWT
// clusters identical bytes, MTF turns locality into a stream dominated by
// small values — mostly zeros — which the zero-run coder then crushes.

// mtfEncode transforms data into MTF indices.
func mtfEncode(data []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, c := range data {
		var j int
		for j = 0; list[j] != c; j++ {
		}
		out[i] = byte(j)
		copy(list[1:j+1], list[:j])
		list[0] = c
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(idx []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	out := make([]byte, len(idx))
	for i, j := range idx {
		c := list[j]
		out[i] = c
		copy(list[1:int(j)+1], list[:j])
		list[0] = c
	}
	return out
}
