// Package bzip2 is the from-scratch BZIP2-style baseline the paper
// compares against (§IV): the full pipeline of stage-1 run-length
// encoding, Burrows–Wheeler transform, move-to-front, zero-run encoding
// and canonical Huffman coding with multiple tables and selectors — plus
// the complete inverse pipeline.
//
// It intentionally reproduces the algorithmic structure (and therefore the
// performance character) of the real program: block-at-a-time operation,
// a depth-limited block sort with a fallback that dominates on repetitive
// input, and group-of-50 Huffman table selection. The on-disk format is
// this repository's container (internal/format), not the .bz2 interchange
// format.
package bzip2

import (
	"fmt"
	"runtime"
	"sync"

	"culzss/internal/bitio"
	"culzss/internal/bzip2/bwt"
	"culzss/internal/bzip2/huffman"
	"culzss/internal/format"
)

// DefaultBlockSize matches bzip2 -9: 900 kB blocks.
const DefaultBlockSize = 900 * 1000

// Options configures the compressor.
type Options struct {
	// BlockSize is the uncompressed bytes per independently-compressed
	// block; 0 means DefaultBlockSize (bzip2 -9).
	BlockSize int
	// Workers bounds concurrent block compression. The paper benchmarks
	// the stock single-threaded program, so the harness passes 1; 0 means
	// GOMAXPROCS (the PBZIP2 mode).
	Workers int
	// SortStats, when non-nil, accumulates block-sort statistics summed
	// over blocks (main-sort compares, fallback volume).
	SortStats *bwt.Stats
}

func (o *Options) fill() {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Compress compresses data into a CULZSS container with the bzip2 codec.
func Compress(data []byte, opts Options) ([]byte, error) {
	opts.fill()
	chunks := format.SplitChunks(data, opts.BlockSize)
	streams := make([][]byte, len(chunks))
	statsPer := make([]bwt.Stats, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, chunk := range chunks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, chunk []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			streams[i] = compressBlock(chunk, &statsPer[i])
		}(i, chunk)
	}
	wg.Wait()

	if opts.SortStats != nil {
		for i := range statsPer {
			opts.SortStats.MainCompares += statsPer[i].MainCompares
			opts.SortStats.FallbackElems += statsPer[i].FallbackElems
			opts.SortStats.FallbackRounds += statsPer[i].FallbackRounds
		}
	}

	h := &format.Header{
		Codec:       format.CodecBZip2,
		ChunkSize:   opts.BlockSize,
		OriginalLen: len(data),
		Checksum:    format.Checksum32(data),
		ChunkSizes:  make([]int, len(streams)),
	}
	total := 0
	for i, s := range streams {
		h.ChunkSizes[i] = len(s)
		total += len(s)
	}
	out := format.AppendHeader(make([]byte, 0, 64+total), h)
	for _, s := range streams {
		out = append(out, s...)
	}
	return out, nil
}

// Decompress expands a bzip2 container, verifying the checksum.
func Decompress(container []byte, workers int) ([]byte, error) {
	h, off, err := format.ParseHeader(container)
	if err != nil {
		return nil, err
	}
	if h.Codec != format.CodecBZip2 {
		return nil, fmt.Errorf("bzip2: container holds %v", h.Codec)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	payload := container[off:]
	bounds := h.ChunkBounds()
	out := make([]byte, h.OriginalLen)

	var wg sync.WaitGroup
	errs := make([]error, len(bounds))
	sem := make(chan struct{}, workers)
	for _, b := range bounds {
		wg.Add(1)
		sem <- struct{}{}
		go func(b format.ChunkBound) {
			defer wg.Done()
			defer func() { <-sem }()
			dec, err := decompressBlock(payload[b.CompOff : b.CompOff+b.CompLen])
			if err != nil {
				errs[b.Index] = fmt.Errorf("bzip2: block %d: %w", b.Index, err)
				return
			}
			if len(dec) != b.UncompLen {
				errs[b.Index] = fmt.Errorf("bzip2: block %d expands to %d bytes, want %d", b.Index, len(dec), b.UncompLen)
				return
			}
			copy(out[b.UncompOff:], dec)
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if format.Checksum32(out) != h.Checksum {
		return nil, format.ErrChecksum
	}
	return out, nil
}

// nTablesFor mirrors bzip2's table-count heuristic on the group count.
func nTablesFor(nSyms int) int {
	switch {
	case nSyms < 200:
		return 2
	case nSyms < 600:
		return 3
	case nSyms < 1200:
		return 4
	case nSyms < 2400:
		return 5
	default:
		return maxTables
	}
}

// compressBlock runs the full forward pipeline over one block.
func compressBlock(chunk []byte, st *bwt.Stats) []byte {
	rle1 := rle1Encode(chunk)
	last, primary := bwt.Transform(rle1, st)
	mtf := mtfEncode(last)
	syms := rle2Encode(mtf)

	nGroups := (len(syms) + groupSize - 1) / groupSize
	nTables := nTablesFor(len(syms))
	if nTables > nGroups {
		nTables = nGroups
	}
	if nTables < 1 {
		nTables = 1
	}

	// Per-group frequency tables.
	groupFreq := make([][]int64, nGroups)
	for g := range groupFreq {
		f := make([]int64, alphaSize)
		lo, hi := g*groupSize, (g+1)*groupSize
		if hi > len(syms) {
			hi = len(syms)
		}
		for _, s := range syms[lo:hi] {
			f[s]++
		}
		groupFreq[g] = f
	}

	// Iterative table refinement (bzip2 does N_ITERS=4): start from a
	// round-robin assignment, then alternate (a) rebuild each table from
	// its groups' frequencies, (b) reassign each group to its cheapest
	// table.
	selectors := make([]int, nGroups)
	for g := range selectors {
		selectors[g] = g % nTables
	}
	var lengths [][]uint8
	for iter := 0; iter < 4; iter++ {
		freqs := make([][]int64, nTables)
		for t := range freqs {
			freqs[t] = make([]int64, alphaSize)
		}
		for g, t := range selectors {
			for s, f := range groupFreq[g] {
				freqs[t][s] += f
			}
		}
		lengths = make([][]uint8, nTables)
		for t := range lengths {
			// Zero frequencies become one so every table covers the full
			// alphabet (as hbMakeCodeLengths does).
			f := freqs[t]
			padded := make([]int64, alphaSize)
			for s := range padded {
				if f[s] > 0 {
					padded[s] = f[s]
				} else {
					padded[s] = 1
				}
			}
			lengths[t] = huffman.BuildLengths(padded)
		}
		for g := range selectors {
			best, bestCost := 0, int64(1)<<62
			for t := 0; t < nTables; t++ {
				var cost int64
				for s, f := range groupFreq[g] {
					if f > 0 {
						cost += f * int64(lengths[t][s])
					}
				}
				if cost < bestCost {
					best, bestCost = t, cost
				}
			}
			selectors[g] = best
		}
	}

	encoders := make([]*huffman.Encoder, nTables)
	for t := range encoders {
		enc, err := huffman.NewEncoder(lengths[t])
		if err != nil {
			// Lengths come from BuildLengths over positive frequencies;
			// failure here is a programming error.
			panic(fmt.Sprintf("bzip2: internal: %v", err))
		}
		encoders[t] = enc
	}

	// Serialise the block.
	w := bitio.NewWriter(len(chunk)/3 + 256)
	w.WriteBits(uint64(len(rle1)), 32)
	w.WriteBits(uint64(primary), 32)
	w.WriteBits(uint64(nTables), 8)
	w.WriteBits(uint64(nGroups), 32)
	for _, sel := range selectors {
		w.WriteBits(uint64(sel), selectorBits)
	}
	for t := 0; t < nTables; t++ {
		for s := 0; s < alphaSize; s++ {
			w.WriteBits(uint64(lengths[t][s]), 5)
		}
	}
	for g := 0; g < nGroups; g++ {
		enc := encoders[selectors[g]]
		lo, hi := g*groupSize, (g+1)*groupSize
		if hi > len(syms) {
			hi = len(syms)
		}
		for _, s := range syms[lo:hi] {
			if err := enc.Encode(w, int(s)); err != nil {
				panic(fmt.Sprintf("bzip2: internal: %v", err))
			}
		}
	}
	return w.Bytes()
}

// decompressBlock inverts compressBlock.
func decompressBlock(stream []byte) ([]byte, error) {
	r := bitio.NewReader(stream)
	rle1Len, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	primary, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	nTables64, err := r.ReadBits(8)
	if err != nil {
		return nil, err
	}
	nGroups64, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	nTables, nGroups := int(nTables64), int(nGroups64)
	if nTables < 1 || nTables > maxTables {
		return nil, fmt.Errorf("table count %d out of range", nTables)
	}
	if nGroups < 0 || nGroups > len(stream) {
		return nil, fmt.Errorf("group count %d implausible", nGroups)
	}
	selectors := make([]int, nGroups)
	for g := range selectors {
		v, err := r.ReadBits(selectorBits)
		if err != nil {
			return nil, err
		}
		if int(v) >= nTables {
			return nil, fmt.Errorf("selector %d out of range", v)
		}
		selectors[g] = int(v)
	}
	decoders := make([]*huffman.Decoder, nTables)
	for t := range decoders {
		lengths := make([]uint8, alphaSize)
		for s := range lengths {
			v, err := r.ReadBits(5)
			if err != nil {
				return nil, err
			}
			lengths[s] = uint8(v)
		}
		dec, err := huffman.NewDecoder(lengths)
		if err != nil {
			return nil, err
		}
		decoders[t] = dec
	}

	var syms []uint16
	done := false
	for g := 0; g < nGroups && !done; g++ {
		dec := decoders[selectors[g]]
		for k := 0; k < groupSize; k++ {
			s, err := dec.Decode(r)
			if err != nil {
				return nil, err
			}
			syms = append(syms, uint16(s))
			if s == symEOB {
				done = true
				break
			}
		}
	}
	if !done {
		return nil, fmt.Errorf("symbol stream missing EOB")
	}

	mtf, err := rle2Decode(syms)
	if err != nil {
		return nil, err
	}
	last := mtfDecode(mtf)
	if len(last) != int(rle1Len) {
		return nil, fmt.Errorf("BWT length %d, header says %d", len(last), rle1Len)
	}
	if len(last) == 0 {
		return []byte{}, nil
	}
	if int(primary) >= len(last) {
		return nil, fmt.Errorf("primary index %d out of range", primary)
	}
	rle1 := bwt.Inverse(last, int(primary))
	return rle1Decode(rle1)
}
