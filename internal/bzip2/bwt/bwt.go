// Package bwt implements the Burrows–Wheeler transform over block
// rotations, the heart of the BZIP2 baseline (paper §IV: the BZIP2 program
// the CULZSS implementations are compared against).
//
// The forward transform sorts all cyclic rotations of the block. Like real
// bzip2, it uses a cache-friendly main sort — a most-significant-byte
// bucket pass followed by multi-key quicksort with a depth limit — and
// falls back to a prefix-doubling sort when groups stay tied past the
// depth limit. On typical text the main sort finishes almost everything;
// on highly repetitive input (the paper's custom dataset of repeating
// 20-byte substrings) nearly every group survives to the fallback, which
// is exactly the mechanism that makes bzip2 pathologically slow on that
// dataset (Table I: 77.8 s vs ~20 s on the other sets).
package bwt

import "sort"

// DepthLimit is how many byte positions the main sort compares before
// deferring a tied group to the fallback sort.
const DepthLimit = 48

// Stats reports how the work split between the two sorts; the benchmark
// harness surfaces it to explain bzip2's behaviour on repetitive data.
type Stats struct {
	// MainCompares counts byte comparisons in the bucket+quicksort phase.
	MainCompares int64
	// FallbackElems is how many rotations needed the prefix-doubling
	// fallback.
	FallbackElems int
	// FallbackRounds is the number of doubling rounds the fallback ran.
	FallbackRounds int
}

// Transform computes the BWT of data: the last column of the sorted
// rotation matrix and the row index of the original string. Empty input
// yields (nil, 0).
func Transform(data []byte, stats *Stats) (last []byte, primary int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	sa := sortRotations(data, stats)
	last = make([]byte, n)
	for i, r := range sa {
		if r == 0 {
			primary = i
			last[i] = data[n-1]
		} else {
			last[i] = data[r-1]
		}
	}
	return last, primary
}

// Inverse reconstructs the original block from the BWT output.
func Inverse(last []byte, primary int) []byte {
	n := len(last)
	if n == 0 {
		return nil
	}
	if primary < 0 || primary >= n {
		return nil
	}
	// LF mapping: next[i] is the row whose first column holds the
	// occurrence of last[i], so following next from the primary row emits
	// the original string back to front.
	var cnt [256]int
	for _, c := range last {
		cnt[c]++
	}
	var c0 [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		c0[c] = sum
		sum += cnt[c]
	}
	next := make([]int32, n)
	var seen [256]int
	for i, c := range last {
		next[c0[c]+seen[c]] = int32(i)
		seen[c]++
	}
	out := make([]byte, n)
	row := next[primary]
	for k := 0; k < n; k++ {
		out[k] = last[row]
		row = next[row]
	}
	return out
}

// sortRotations returns the rotation start indices in sorted rotation
// order.
func sortRotations(data []byte, stats *Stats) []int32 {
	n := len(data)
	sa := make([]int32, n)

	// MSB bucket pass: one pass of counting sort on the first byte.
	var cnt [257]int
	for _, c := range data {
		cnt[int(c)+1]++
	}
	for c := 1; c < 257; c++ {
		cnt[c] += cnt[c-1]
	}
	pos := cnt
	for i := 0; i < n; i++ {
		c := data[i]
		sa[pos[c]] = int32(i)
		pos[c]++
	}

	// at returns the rotation byte at depth d for rotation start r.
	// Depth may exceed n for blocks shorter than DepthLimit.
	at := func(r int32, d int) byte {
		i := int(r) + d
		if i >= n {
			i %= n
		}
		return data[i]
	}

	var deferred [][2]int // tied groups for the fallback: [lo, hi)
	var mkqs func(lo, hi, depth int)
	mkqs = func(lo, hi, depth int) {
		for hi-lo > 1 {
			if depth >= DepthLimit {
				deferred = append(deferred, [2]int{lo, hi})
				return
			}
			if hi-lo < 12 {
				insertion(data, sa, lo, hi, depth, n, stats)
				return
			}
			// Median-of-three pivot byte at this depth.
			p := medianOf3(at(sa[lo], depth), at(sa[(lo+hi)/2], depth), at(sa[hi-1], depth))
			lt, gt := lo, hi
			i := lo
			for i < gt {
				c := at(sa[i], depth)
				if stats != nil {
					stats.MainCompares++
				}
				switch {
				case c < p:
					sa[lt], sa[i] = sa[i], sa[lt]
					lt++
					i++
				case c > p:
					gt--
					sa[gt], sa[i] = sa[i], sa[gt]
				default:
					i++
				}
			}
			mkqs(lo, lt, depth)
			mkqs(gt, hi, depth)
			// Equal range continues one byte deeper (tail-recurse).
			lo, hi = lt, gt
			depth++
		}
	}
	// Sort within each first-byte bucket (the placement loop above
	// consumed cnt, so recompute the bucket boundaries).
	var bounds [257]int
	for _, c := range data {
		bounds[int(c)+1]++
	}
	for c := 1; c < 257; c++ {
		bounds[c] += bounds[c-1]
	}
	for c := 0; c < 256; c++ {
		if bounds[c+1]-bounds[c] > 1 {
			mkqs(bounds[c], bounds[c+1], 1)
		}
	}

	if len(deferred) > 0 {
		fallbackSort(data, sa, deferred, stats)
	}
	return sa
}

func insertion(data []byte, sa []int32, lo, hi, depth, n int, stats *Stats) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && lessRot(data, sa[j], sa[j-1], depth, n, stats); j-- {
			sa[j], sa[j-1] = sa[j-1], sa[j]
		}
	}
}

// lessRot compares rotations a and b byte-by-byte from depth, wrapping,
// for at most n positions.
func lessRot(data []byte, a, b int32, depth, n int, stats *Stats) bool {
	ia, ib := (int(a)+depth)%n, (int(b)+depth)%n
	for k := depth; k < n; k++ {
		if stats != nil {
			stats.MainCompares++
		}
		ca, cb := data[ia], data[ib]
		if ca != cb {
			return ca < cb
		}
		ia++
		if ia == n {
			ia = 0
		}
		ib++
		if ib == n {
			ib = 0
		}
	}
	return false // fully equal rotations: stable either way
}

func medianOf3(a, b, c byte) byte {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// fallbackSort resolves deferred tied groups with a prefix-doubling rank
// sort over cyclic rotations — O(n log n) with radix passes regardless of
// repetition, the analogue of bzip2's fallbackSort. It is still an order
// of magnitude costlier than the main sort's happy path, which is what
// makes the highly-repetitive dataset expensive (Table I, BZIP2 row).
func fallbackSort(data []byte, sa []int32, groups [][2]int, stats *Stats) {
	n := len(data)
	rank := make([]int32, n)
	for i := 0; i < n; i++ {
		rank[i] = int32(data[i])
	}
	order := make([]int32, n)
	tmp := make([]int32, n)
	newRank := make([]int32, n)
	// Keys are ranks (< n) after the first round, but the initial ranks
	// are raw byte values, so the histogram must cover max(n, 256).
	cntLen := n + 1
	if cntLen < 257 {
		cntLen = 257
	}
	cnt := make([]int32, cntLen)

	// radixPass stably orders src into dst by key(i).
	radixPass := func(src, dst []int32, key func(int32) int32) {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, v := range src {
			cnt[key(v)]++
		}
		var sum int32
		for i := range cnt {
			c := cnt[i]
			cnt[i] = sum
			sum += c
		}
		for _, v := range src {
			k := key(v)
			dst[cnt[k]] = v
			cnt[k]++
		}
	}

	for i := range order {
		order[i] = int32(i)
	}
	radixPass(order, tmp, func(i int32) int32 { return rank[i] })
	copy(order, tmp)

	for h := 1; ; h *= 2 {
		if stats != nil {
			stats.FallbackRounds++
		}
		second := func(i int32) int32 {
			j := int(i) + h
			if j >= n {
				j %= n // h itself can exceed n in the final round
			}
			return rank[j]
		}
		// LSD radix: by second key, then stably by first.
		radixPass(order, tmp, second)
		radixPass(tmp, order, func(i int32) int32 { return rank[i] })

		// Re-rank.
		newRank[order[0]] = 0
		distinct := int32(1)
		for i := 1; i < n; i++ {
			a, b := order[i-1], order[i]
			if rank[a] != rank[b] || second(a) != second(b) {
				distinct++
			}
			newRank[b] = distinct - 1
		}
		copy(rank, newRank)
		if int(distinct) == n || h >= n {
			break
		}
	}
	for _, g := range groups {
		lo, hi := g[0], g[1]
		if stats != nil {
			stats.FallbackElems += hi - lo
		}
		grp := sa[lo:hi]
		sort.Slice(grp, func(x, y int) bool { return rank[grp[x]] < rank[grp[y]] })
	}
}
