package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveBWT is the textbook reference: materialise and sort all rotations.
func naiveBWT(data []byte) ([]byte, int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	rots := make([]int, n)
	for i := range rots {
		rots[i] = i
	}
	double := append(append([]byte(nil), data...), data...)
	sort.SliceStable(rots, func(a, b int) bool {
		return bytes.Compare(double[rots[a]:rots[a]+n], double[rots[b]:rots[b]+n]) < 0
	})
	last := make([]byte, n)
	primary := 0
	for i, r := range rots {
		if r == 0 {
			primary = i
		}
		last[i] = double[r+n-1]
	}
	return last, primary
}

func TestTransformMatchesNaive(t *testing.T) {
	inputs := [][]byte{
		[]byte("banana"),
		[]byte("mississippi"),
		[]byte("abracadabra"),
		[]byte("aaaaaa"),
		[]byte("abababab"),
		{0, 255, 0, 255, 1},
		[]byte("x"),
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		n := rng.Intn(300) + 1
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(4)) // tiny alphabet stresses ties
		}
		inputs = append(inputs, b)
	}
	for _, in := range inputs {
		gotLast, gotPrim := Transform(in, nil)
		wantLast, wantPrim := naiveBWT(in)
		if !bytes.Equal(gotLast, wantLast) {
			t.Fatalf("input %q: last column mismatch\ngot  %q\nwant %q", in, gotLast, wantLast)
		}
		// With fully equal rotations the primary row among equals is
		// ambiguous but inverse must still work; check via inverse below.
		if got := Inverse(gotLast, gotPrim); !bytes.Equal(got, in) {
			t.Fatalf("input %q: inverse(transform) = %q", in, got)
		}
		_ = wantPrim
	}
}

func TestBananaKnownAnswer(t *testing.T) {
	// Classic worked example: BWT("banana") = "nnbaaa", primary row 3.
	last, primary := Transform([]byte("banana"), nil)
	if string(last) != "nnbaaa" {
		t.Fatalf("BWT(banana) = %q, want nnbaaa", last)
	}
	if primary != 3 {
		t.Fatalf("primary = %d, want 3", primary)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if last, p := Transform(nil, nil); last != nil || p != 0 {
		t.Fatal("empty transform not nil")
	}
	if out := Inverse(nil, 0); out != nil {
		t.Fatal("empty inverse not nil")
	}
	if out := Inverse([]byte("ab"), 5); out != nil {
		t.Fatal("out-of-range primary accepted")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		last, p := Transform(data, nil)
		return bytes.Equal(Inverse(last, p), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripLargeText(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"block", "sorting", "lossless", "data", "compression", "algorithm"}
	var buf bytes.Buffer
	for buf.Len() < 200000 {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	in := buf.Bytes()
	var st Stats
	last, p := Transform(in, &st)
	if !bytes.Equal(Inverse(last, p), in) {
		t.Fatal("round trip failed")
	}
	if st.MainCompares == 0 {
		t.Fatal("no main-sort work recorded")
	}
}

func TestFallbackTriggersOnRepetitiveData(t *testing.T) {
	// The paper's highly-compressible pattern: repeating 20-byte
	// substrings. Every rotation group stays tied past DepthLimit, so the
	// fallback must take over — the mechanism behind bzip2's 77.8 s row.
	in := bytes.Repeat([]byte("abcdefghijklmnopqrst"), 2000)
	var st Stats
	last, p := Transform(in, &st)
	if !bytes.Equal(Inverse(last, p), in) {
		t.Fatal("round trip failed")
	}
	if st.FallbackElems == 0 {
		t.Fatal("fallback did not trigger on period-20 data")
	}
	if st.FallbackRounds == 0 {
		t.Fatal("no doubling rounds recorded")
	}

	// Text of the same size must NOT hit the fallback meaningfully.
	var stText Stats
	rng := rand.New(rand.NewSource(9))
	text := make([]byte, len(in))
	for i := range text {
		text[i] = byte('a' + rng.Intn(26))
	}
	Transform(text, &stText)
	if stText.FallbackElems > st.FallbackElems/10 {
		t.Fatalf("random text hit the fallback heavily: %d elems", stText.FallbackElems)
	}
}

func TestBWTGroupsRuns(t *testing.T) {
	// Sanity on purpose: BWT of text clusters identical characters, which
	// is what makes MTF+RLE effective afterwards.
	in := bytes.Repeat([]byte("the cat sat on the mat "), 200)
	last, _ := Transform(in, nil)
	runs := 1
	for i := 1; i < len(last); i++ {
		if last[i] != last[i-1] {
			runs++
		}
	}
	if runs > len(last)/3 {
		t.Fatalf("BWT output has %d runs over %d bytes — not clustering", runs, len(last))
	}
}

func BenchmarkTransformText(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"kernel", "window", "buffer", "stream", "packet"}
	var buf bytes.Buffer
	for buf.Len() < 1<<20 {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	in := buf.Bytes()
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(in, nil)
	}
}

func BenchmarkTransformRepetitive(b *testing.B) {
	in := bytes.Repeat([]byte("abcdefghijklmnopqrst"), 1<<20/20)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(in, nil)
	}
}

func TestShortBlocksWithHighBytes(t *testing.T) {
	// Regression: blocks shorter than 256 bytes whose byte values exceed
	// the block length overflowed the fallback sort's histogram.
	in := bytes.Repeat([]byte{0xFB}, 201) // forces the fallback, high byte
	last, p := Transform(in, nil)
	if !bytes.Equal(Inverse(last, p), in) {
		t.Fatal("short high-byte block round trip failed")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(255)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(200 + rng.Intn(56)) // high values, tiny alphabet
		}
		last, p := Transform(b, nil)
		if !bytes.Equal(Inverse(last, p), b) {
			t.Fatalf("trial %d failed", trial)
		}
	}
}
