package bzip2

import "fmt"

// Stage 1 run-length encoding — bzip2's pre-BWT pass. Runs of four to 259
// identical bytes become the byte repeated four times followed by a count
// byte (run length minus four). Its real job is protecting the block sort
// from degenerate runs; the paper's highly-compressible dataset (repeating
// 20-byte substrings) deliberately survives it, which is why that dataset
// still wrecks the sort (Table I, BZIP2 row).

// rle1MaxRun is the longest run one (byte x4 + count) unit can express.
const rle1MaxRun = 4 + 255

// rle1Encode applies the stage-1 RLE.
func rle1Encode(data []byte) []byte {
	out := make([]byte, 0, len(data)+len(data)/4+16)
	i := 0
	for i < len(data) {
		c := data[i]
		run := 1
		for i+run < len(data) && run < rle1MaxRun && data[i+run] == c {
			run++
		}
		if run < 4 {
			for k := 0; k < run; k++ {
				out = append(out, c)
			}
		} else {
			out = append(out, c, c, c, c, byte(run-4))
		}
		i += run
	}
	return out
}

// rle1Decode inverts rle1Encode.
func rle1Decode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*2)
	i := 0
	for i < len(data) {
		c := data[i]
		run := 1
		for i+run < len(data) && run < 4 && data[i+run] == c {
			run++
		}
		out = append(out, data[i:i+run]...)
		i += run
		if run == 4 {
			if i >= len(data) {
				return nil, fmt.Errorf("bzip2: truncated RLE1 run count")
			}
			extra := int(data[i])
			i++
			for k := 0; k < extra; k++ {
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// Stage 2: the MTF output's zero runs are re-expressed with the RUNA/RUNB
// symbols in bijective base 2, exactly as bzip2 does; every nonzero MTF
// value v becomes symbol v+1 and the block ends with EOB.

// Symbol space of the entropy-coded stream.
const (
	symRunA      = 0
	symRunB      = 1
	symEOB       = 257
	alphaSize    = 258
	groupSize    = 50 // symbols per selector group, as in bzip2
	maxTables    = 6
	selectorBits = 3
)

// rle2Encode maps MTF indices to the RUNA/RUNB symbol stream, appending
// the EOB symbol.
func rle2Encode(mtf []byte) []uint16 {
	out := make([]uint16, 0, len(mtf)/2+16)
	emitRun := func(r int) {
		// Bijective base 2 with digits {1: RUNA, 2: RUNB}.
		for r > 0 {
			d := r & 1
			if d == 1 {
				out = append(out, symRunA)
				r = (r - 1) / 2
			} else {
				out = append(out, symRunB)
				r = (r - 2) / 2
			}
		}
	}
	run := 0
	for _, v := range mtf {
		if v == 0 {
			run++
			continue
		}
		emitRun(run)
		run = 0
		out = append(out, uint16(v)+1)
	}
	emitRun(run)
	return append(out, symEOB)
}

// rle2Decode inverts rle2Encode; the input must end with EOB.
func rle2Decode(syms []uint16) ([]byte, error) {
	out := make([]byte, 0, len(syms)*2)
	i := 0
	for {
		if i >= len(syms) {
			return nil, fmt.Errorf("bzip2: symbol stream missing EOB")
		}
		s := syms[i]
		switch {
		case s == symEOB:
			if i != len(syms)-1 {
				return nil, fmt.Errorf("bzip2: data after EOB")
			}
			return out, nil
		case s == symRunA || s == symRunB:
			// Collect the whole run group.
			run, place := 0, 1
			for i < len(syms) && (syms[i] == symRunA || syms[i] == symRunB) {
				if syms[i] == symRunA {
					run += place
				} else {
					run += 2 * place
				}
				place *= 2
				i++
			}
			for k := 0; k < run; k++ {
				out = append(out, 0)
			}
		case s <= 256:
			out = append(out, byte(s-1))
			i++
		default:
			return nil, fmt.Errorf("bzip2: symbol %d out of range", s)
		}
	}
}
