// Package bzfile writes the real “.bz2” interchange format, as produced
// by the bzip2 program the paper benchmarks against.
//
// The repository's bzip2 baseline (internal/bzip2) uses its own container
// for the evaluation; this package serialises the same pipeline —
// stage-1 RLE, Burrows–Wheeler transform, move-to-front, zero run-length
// symbols, multi-table canonical Huffman — into the bit-exact on-disk
// format, which lets the whole pipeline be cross-validated against an
// independent implementation (the standard library's compress/bzip2
// reader decodes our output byte-for-byte).
//
// Only the writer is provided; reading .bz2 already exists in the
// standard library.
package bzfile

import (
	"fmt"
	"io"
	"sort"

	"culzss/internal/bitio"
	"culzss/internal/bzip2/bwt"
	"culzss/internal/bzip2/huffman"
)

// Writer-side constants of the format.
const (
	groupSize    = 50
	maxSelectors = 18002
	maxCodeLen   = 17 // encoder choice; the format allows up to 20
)

// Encode compresses data into a complete .bz2 stream written to w.
// level selects the block size (level * 100_000 bytes), 1..9.
func Encode(w io.Writer, data []byte, level int) error {
	if level < 1 || level > 9 {
		return fmt.Errorf("bzfile: level %d out of 1..9", level)
	}
	bw := bitio.NewWriter(len(data)/2 + 64)
	// Stream header: "BZh" + level digit.
	bw.WriteBits(uint64('B'), 8)
	bw.WriteBits(uint64('Z'), 8)
	bw.WriteBits(uint64('h'), 8)
	bw.WriteBits(uint64('0'+level), 8)

	blockSize := level * 100_000
	var streamCRC uint32
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		blockCRC, err := encodeBlock(bw, data[off:end])
		if err != nil {
			return err
		}
		streamCRC = (streamCRC<<1 | streamCRC>>31) ^ blockCRC
	}

	// Stream footer: sqrt(pi) magic + combined CRC.
	bw.WriteBits(0x177245385090, 48)
	bw.WriteBits(uint64(streamCRC), 32)
	if _, err := w.Write(bw.Bytes()); err != nil {
		return fmt.Errorf("bzfile: %w", err)
	}
	return nil
}

// encodeBlock writes one compressed block and returns its CRC.
func encodeBlock(bw *bitio.Writer, block []byte) (uint32, error) {
	blockCRC := crc32bz(block)

	// Stage 1 RLE with the format's run cap (4 + 0..251 extras).
	rle := rle1(block)
	// BWT over the RLE'd block.
	last, primary := bwt.Transform(rle, nil)

	// Used-byte map and the MTF alphabet (used bytes ascending).
	var used [256]bool
	for _, c := range last {
		used[c] = true
	}
	var alphabet []byte
	for v := 0; v < 256; v++ {
		if used[v] {
			alphabet = append(alphabet, byte(v))
		}
	}
	nUsed := len(alphabet)
	if nUsed == 0 {
		return 0, fmt.Errorf("bzfile: empty block")
	}
	eob := nUsed + 1
	alphaSize := nUsed + 2

	// MTF + zero-run symbols.
	syms := mtfRle2(last, alphabet, eob)

	// Huffman tables: 2..6 groups, refined like the reference encoder.
	nGroups := groupsFor(len(syms))
	lengths, selectors, err := buildTables(syms, alphaSize, nGroups)
	if err != nil {
		return 0, err
	}
	encoders := make([]*huffman.Encoder, nGroups)
	for t := range encoders {
		enc, err := huffman.NewEncoder(lengths[t])
		if err != nil {
			return 0, err
		}
		encoders[t] = enc
	}

	// --- serialise ---
	bw.WriteBits(0x314159265359, 48) // block magic (pi)
	bw.WriteBits(uint64(blockCRC), 32)
	bw.WriteBit(0) // randomised: deprecated, always 0
	bw.WriteBits(uint64(primary), 24)

	// Symbol-used maps: 16 sector bits, then 16 bits per used sector.
	var sectors uint16
	for s := 0; s < 16; s++ {
		for b := 0; b < 16; b++ {
			if used[s*16+b] {
				sectors |= 1 << (15 - s)
			}
		}
	}
	bw.WriteBits(uint64(sectors), 16)
	for s := 0; s < 16; s++ {
		if sectors&(1<<(15-s)) == 0 {
			continue
		}
		var m uint16
		for b := 0; b < 16; b++ {
			if used[s*16+b] {
				m |= 1 << (15 - b)
			}
		}
		bw.WriteBits(uint64(m), 16)
	}

	bw.WriteBits(uint64(nGroups), 3)
	bw.WriteBits(uint64(len(selectors)), 15)

	// Selectors, MTF-coded over table indices, unary-written.
	mtfTables := make([]int, nGroups)
	for i := range mtfTables {
		mtfTables[i] = i
	}
	for _, sel := range selectors {
		j := 0
		for mtfTables[j] != sel {
			j++
		}
		copy(mtfTables[1:j+1], mtfTables[:j])
		mtfTables[0] = sel
		for k := 0; k < j; k++ {
			bw.WriteBit(1)
		}
		bw.WriteBit(0)
	}

	// Delta-coded code lengths per table.
	for t := 0; t < nGroups; t++ {
		cur := int(lengths[t][0])
		bw.WriteBits(uint64(cur), 5)
		for s := 0; s < alphaSize; s++ {
			target := int(lengths[t][s])
			for cur < target {
				bw.WriteBit(1)
				bw.WriteBit(0)
				cur++
			}
			for cur > target {
				bw.WriteBit(1)
				bw.WriteBit(1)
				cur--
			}
			bw.WriteBit(0)
		}
	}

	// The symbol stream, switching tables per group of 50.
	for g := 0; g*groupSize < len(syms); g++ {
		enc := encoders[selectors[g]]
		lo, hi := g*groupSize, (g+1)*groupSize
		if hi > len(syms) {
			hi = len(syms)
		}
		for _, s := range syms[lo:hi] {
			if err := enc.Encode(bw, int(s)); err != nil {
				return 0, err
			}
		}
	}
	return blockCRC, nil
}

// rle1 is the format's stage-1 RLE: runs of 4..255 become the byte
// repeated four times plus an extra count byte 0..251.
func rle1(data []byte) []byte {
	out := make([]byte, 0, len(data)+len(data)/4+16)
	i := 0
	for i < len(data) {
		c := data[i]
		run := 1
		for i+run < len(data) && run < 255 && data[i+run] == c {
			run++
		}
		if run < 4 {
			for k := 0; k < run; k++ {
				out = append(out, c)
			}
		} else {
			out = append(out, c, c, c, c, byte(run-4))
		}
		i += run
	}
	return out
}

// mtfRle2 converts the BWT output to the symbol stream: MTF over the used
// alphabet, zero runs in bijective base 2 (RUNA=0, RUNB=1), nonzero MTF
// value v as symbol v+1, terminated by eob.
func mtfRle2(last []byte, alphabet []byte, eob int) []uint16 {
	list := append([]byte(nil), alphabet...)
	out := make([]uint16, 0, len(last)/2+16)
	emitRun := func(r int) {
		for r > 0 {
			if r&1 == 1 {
				out = append(out, 0) // RUNA
				r = (r - 1) / 2
			} else {
				out = append(out, 1) // RUNB
				r = (r - 2) / 2
			}
		}
	}
	run := 0
	for _, c := range last {
		var j int
		for j = 0; list[j] != c; j++ {
		}
		if j == 0 {
			run++
			continue
		}
		emitRun(run)
		run = 0
		copy(list[1:j+1], list[:j])
		list[0] = c
		out = append(out, uint16(j)+1)
	}
	emitRun(run)
	return append(out, uint16(eob))
}

// groupsFor mirrors the reference encoder's table-count choice.
func groupsFor(nSyms int) int {
	switch {
	case nSyms < 200:
		return 2
	case nSyms < 600:
		return 3
	case nSyms < 1200:
		return 4
	case nSyms < 2400:
		return 5
	default:
		return 6
	}
}

// buildTables assigns groups to tables with iterative refinement and
// returns per-table code lengths plus the selector list.
func buildTables(syms []uint16, alphaSize, nGroups int) ([][]uint8, []int, error) {
	nSel := (len(syms) + groupSize - 1) / groupSize
	if nSel == 0 {
		nSel = 1
	}
	if nSel > maxSelectors {
		return nil, nil, fmt.Errorf("bzfile: %d selectors exceed the format limit", nSel)
	}
	groupFreq := make([][]int64, nSel)
	for g := range groupFreq {
		f := make([]int64, alphaSize)
		lo, hi := g*groupSize, (g+1)*groupSize
		if hi > len(syms) {
			hi = len(syms)
		}
		for _, s := range syms[lo:hi] {
			f[s]++
		}
		groupFreq[g] = f
	}

	selectors := make([]int, nSel)
	for g := range selectors {
		selectors[g] = g % nGroups
	}
	var lengths [][]uint8
	for iter := 0; iter < 4; iter++ {
		freqs := make([][]int64, nGroups)
		for t := range freqs {
			freqs[t] = make([]int64, alphaSize)
		}
		for g, t := range selectors {
			for s, f := range groupFreq[g] {
				freqs[t][s] += f
			}
		}
		lengths = make([][]uint8, nGroups)
		for t := range lengths {
			padded := make([]int64, alphaSize)
			for s := range padded {
				padded[s] = freqs[t][s]
				if padded[s] == 0 {
					padded[s] = 1
				}
			}
			l := huffman.BuildLengths(padded)
			capLengths(l, padded)
			lengths[t] = l
		}
		for g := range selectors {
			best, bestCost := 0, int64(1)<<62
			for t := 0; t < nGroups; t++ {
				var cost int64
				for s, f := range groupFreq[g] {
					if f > 0 {
						cost += f * int64(lengths[t][s])
					}
				}
				if cost < bestCost {
					best, bestCost = t, cost
				}
			}
			selectors[g] = best
		}
	}
	return lengths, selectors, nil
}

// capLengths enforces the writer's maxCodeLen by rebuilding with damped
// frequencies when needed (BuildLengths already caps at 20; tighten to
// 17 so older decoders are happy).
func capLengths(lengths []uint8, freq []int64) {
	for over := true; over; {
		over = false
		for _, l := range lengths {
			if int(l) > maxCodeLen {
				over = true
				break
			}
		}
		if !over {
			return
		}
		for i, v := range freq {
			if v > 0 {
				freq[i] = 1 + v/2
			}
		}
		copy(lengths, huffman.BuildLengths(freq))
	}
}

// crc32bz is bzip2's CRC-32: polynomial 0x04c11db7, MSB-first (not
// reflected), initial value all-ones, final complement.
func crc32bz(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b) << 24
		for k := 0; k < 8; k++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ 0x04c11db7
			} else {
				crc <<= 1
			}
		}
	}
	return ^crc
}

// sortedUsed is a test helper exposing the alphabet derivation.
func sortedUsed(data []byte) []byte {
	var used [256]bool
	for _, c := range data {
		used[c] = true
	}
	var out []byte
	for v := 0; v < 256; v++ {
		if used[v] {
			out = append(out, byte(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
