package bzfile

import (
	"bytes"
	stdbzip2 "compress/bzip2"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// roundTripStd encodes with this package and decodes with the standard
// library's independent bzip2 reader — the strongest cross-validation of
// the whole RLE/BWT/MTF/Huffman pipeline available offline.
func roundTripStd(t *testing.T, data []byte, level int) {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, data, level); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := io.ReadAll(stdbzip2.NewReader(&buf))
	if err != nil {
		t.Fatalf("stdlib decode: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(got))
	}
}

func TestStdlibDecodesOurOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randBytes := make([]byte, 50000)
	rng.Read(randBytes)
	var text strings.Builder
	words := []string{"block", "sorting", "huffman", "the", "transform", "of"}
	for text.Len() < 200000 {
		text.WriteString(words[rng.Intn(len(words))])
		text.WriteByte(' ')
	}
	cases := map[string][]byte{
		"empty":     {},
		"one":       {42},
		"short":     []byte("hello, bzip2 world"),
		"runs":      bytes.Repeat([]byte{'a'}, 10000),
		"run_break": append(bytes.Repeat([]byte{'x'}, 300), []byte("tail")...),
		"period20":  bytes.Repeat([]byte("abcdefghijklmnopqrst"), 2000),
		"text":      []byte(text.String()),
		"random":    randBytes,
		"all_bytes": func() []byte {
			b := make([]byte, 256)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"zeros": make([]byte, 30000),
		"alt":   bytes.Repeat([]byte{0, 255}, 5000),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			roundTripStd(t, data, 9)
		})
	}
}

func TestAllLevels(t *testing.T) {
	data := bytes.Repeat([]byte("level sweep content with some repetition; "), 1000)
	for level := 1; level <= 9; level++ {
		roundTripStd(t, data, level)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, data, 0); err == nil {
		t.Fatal("accepted level 0")
	}
	if err := Encode(&buf, data, 10); err == nil {
		t.Fatal("accepted level 10")
	}
}

func TestMultiBlockStreams(t *testing.T) {
	// Level 1 = 100 kB blocks; 350 kB input = 4 blocks, exercising the
	// stream CRC combination.
	rng := rand.New(rand.NewSource(2))
	var sb strings.Builder
	for sb.Len() < 350000 {
		sb.WriteString("multi block stream content ")
		if rng.Intn(10) == 0 {
			sb.WriteString(strings.Repeat("z", rng.Intn(300)))
		}
	}
	roundTripStd(t, []byte(sb.String()), 1)
}

func TestQuickAgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		var buf bytes.Buffer
		if err := Encode(&buf, data, 5); err != nil {
			return false
		}
		got, err := io.ReadAll(stdbzip2.NewReader(&buf))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressesText(t *testing.T) {
	data := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 2000)
	var buf bytes.Buffer
	if err := Encode(&buf, data, 9); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > len(data)/10 {
		t.Fatalf("repetitive text compressed to only %d/%d", buf.Len(), len(data))
	}
}

func TestCRC32bzKnownValue(t *testing.T) {
	// The unreflected CRC-32/BZIP2 check value for "123456789".
	if got := crc32bz([]byte("123456789")); got != 0xFC891918 {
		t.Fatalf("crc32bz = %#x, want 0xFC891918", got)
	}
}

func TestRLE1FormatCap(t *testing.T) {
	// The format caps a run unit at 4+251 = 255 source bytes.
	enc := rle1(bytes.Repeat([]byte{'q'}, 1000))
	for i := 0; i+4 < len(enc); {
		if enc[i] == enc[i+1] && enc[i] == enc[i+2] && enc[i] == enc[i+3] {
			if enc[i+4] > 251 {
				t.Fatalf("count byte %d exceeds format cap 251", enc[i+4])
			}
			i += 5
			continue
		}
		i++
	}
}

func TestHeaderBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []byte("x"), 7); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:4]
	if string(hdr) != "BZh7" {
		t.Fatalf("header = %q", hdr)
	}
}
