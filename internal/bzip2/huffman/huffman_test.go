package huffman

import (
	"math/rand"
	"testing"

	"culzss/internal/bitio"
)

func TestBuildLengthsBasics(t *testing.T) {
	// Uniform four symbols -> all length 2.
	l := BuildLengths([]int64{10, 10, 10, 10})
	for s, got := range l {
		if got != 2 {
			t.Fatalf("symbol %d length %d, want 2", s, got)
		}
	}
	// Skewed: most frequent symbol gets the shortest code.
	l = BuildLengths([]int64{100, 10, 10, 1})
	if l[0] >= l[3] {
		t.Fatalf("frequent symbol not shorter: %v", l)
	}
	// Absent symbols get zero.
	l = BuildLengths([]int64{5, 0, 7})
	if l[1] != 0 || l[0] == 0 || l[2] == 0 {
		t.Fatalf("absence handling wrong: %v", l)
	}
	// Single present symbol gets length 1.
	l = BuildLengths([]int64{0, 42, 0})
	if l[1] != 1 {
		t.Fatalf("single symbol length = %d, want 1", l[1])
	}
	// Empty.
	l = BuildLengths([]int64{0, 0})
	if l[0] != 0 || l[1] != 0 {
		t.Fatalf("empty table lengths: %v", l)
	}
}

func TestBuildLengthsKraftEquality(t *testing.T) {
	// A complete Huffman code satisfies Kraft with equality.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 2
		freq := make([]int64, n)
		nz := 0
		for i := range freq {
			if rng.Intn(3) > 0 {
				freq[i] = int64(rng.Intn(10000) + 1)
				nz++
			}
		}
		if nz < 2 {
			continue
		}
		lengths := BuildLengths(freq)
		var k float64
		for _, l := range lengths {
			if l > 0 {
				k += 1 / float64(uint64(1)<<l)
			}
		}
		if k < 0.999999 || k > 1.000001 {
			t.Fatalf("trial %d: Kraft sum %v != 1 (lengths %v)", trial, k, lengths)
		}
	}
}

func TestBuildLengthsRespectsLimit(t *testing.T) {
	// Fibonacci-ish frequencies force deep trees; the damping retry must
	// cap the depth at MaxCodeLen.
	freq := make([]int64, 40)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
	}
	lengths := BuildLengths(freq)
	for s, l := range lengths {
		if l == 0 {
			t.Fatalf("symbol %d dropped", s)
		}
		if int(l) > MaxCodeLen {
			t.Fatalf("symbol %d length %d exceeds limit", s, l)
		}
	}
}

func TestBuildLengthsOptimality(t *testing.T) {
	// Expected code length must beat the trivial fixed-width code on a
	// skewed distribution.
	freq := []int64{1000, 500, 100, 50, 10, 5, 1, 1}
	lengths := BuildLengths(freq)
	var total, weighted int64
	for s, f := range freq {
		total += f
		weighted += f * int64(lengths[s])
	}
	if avg := float64(weighted) / float64(total); avg >= 3.0 {
		t.Fatalf("average code length %v not better than fixed 3-bit", avg)
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	freq := []int64{50, 30, 10, 5, 3, 1, 1}
	lengths := BuildLengths(freq)
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatal(err)
	}
	for a := range codes {
		for b := range codes {
			if a == b || lengths[a] == 0 || lengths[b] == 0 || lengths[a] > lengths[b] {
				continue
			}
			// code[a] must not be a prefix of code[b].
			if codes[a] == codes[b]>>(lengths[b]-lengths[a]) {
				t.Fatalf("code %d (%b/%d) is a prefix of %d (%b/%d)",
					a, codes[a], lengths[a], b, codes[b], lengths[b])
			}
		}
	}
}

func TestCanonicalCodesRejectsBad(t *testing.T) {
	if _, err := CanonicalCodes([]uint8{25}); err == nil {
		t.Fatal("accepted over-limit length")
	}
	// Over-subscribed: three codes of length 1.
	if _, err := CanonicalCodes([]uint8{1, 1, 1}); err == nil {
		t.Fatal("accepted over-subscribed code")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(250) + 2
		freq := make([]int64, n)
		for i := range freq {
			freq[i] = int64(rng.Intn(1000))
		}
		freq[0]++ // ensure at least one present
		freq[n-1]++
		lengths := BuildLengths(freq)
		enc, err := NewEncoder(lengths)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(lengths)
		if err != nil {
			t.Fatal(err)
		}

		var syms []int
		for s, f := range freq {
			if f > 0 {
				for k := 0; k < 1+int(f%7); k++ {
					syms = append(syms, s)
				}
			}
		}
		rng.Shuffle(len(syms), func(i, j int) { syms[i], syms[j] = syms[j], syms[i] })

		w := bitio.NewWriter(0)
		for _, s := range syms {
			if err := enc.Encode(w, s); err != nil {
				t.Fatal(err)
			}
		}
		r := bitio.NewReader(w.Bytes())
		for i, want := range syms {
			got, err := dec.Decode(r)
			if err != nil {
				t.Fatalf("trial %d sym %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d sym %d: got %d want %d", trial, i, got, want)
			}
		}
	}
}

func TestEncodeRejectsAbsentSymbol(t *testing.T) {
	lengths := BuildLengths([]int64{5, 0, 5})
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := enc.Encode(w, 1); err == nil {
		t.Fatal("encoded absent symbol")
	}
	if err := enc.Encode(w, 99); err == nil {
		t.Fatal("encoded out-of-range symbol")
	}
}

func TestDecoderErrors(t *testing.T) {
	if _, err := NewDecoder([]uint8{0, 0}); err == nil {
		t.Fatal("built decoder for empty table")
	}
	lengths := BuildLengths([]int64{5, 5, 5, 5})
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	r := bitio.NewReader(nil)
	if _, err := dec.Decode(r); err == nil {
		t.Fatal("decoded from empty stream")
	}
}

func TestCodeLen(t *testing.T) {
	lengths := BuildLengths([]int64{100, 1})
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	if enc.CodeLen(0) == 0 || enc.CodeLen(1) == 0 {
		t.Fatal("present symbols report zero length")
	}
}
