// Package huffman implements canonical, length-limited Huffman coding for
// the BZIP2 baseline's entropy stage.
//
// Codes are canonical: only the code lengths travel in the stream; both
// sides reconstruct identical codes by assigning values in (length,
// symbol) order. Lengths are limited to MaxCodeLen the way bzip2 does it —
// when a tree comes out too deep, frequencies are halved (keeping them
// positive) and the tree is rebuilt.
package huffman

import (
	"errors"
	"fmt"
	"sort"

	"culzss/internal/bitio"
)

// MaxCodeLen is the longest code the coder will produce, matching bzip2's
// 20-bit limit (its BZ_MAX_CODE_LEN is larger only to hold scratch).
const MaxCodeLen = 20

// ErrBadCode is returned when a decoder meets a bit pattern outside the
// code, or a code table is malformed.
var ErrBadCode = errors.New("huffman: invalid code")

// BuildLengths computes canonical code lengths for the given symbol
// frequencies. Symbols with zero frequency get length 0 (absent). If only
// one symbol is present it gets length 1. The result never exceeds
// MaxCodeLen.
func BuildLengths(freq []int64) []uint8 {
	f := make([]int64, len(freq))
	copy(f, freq)
	for {
		lengths, maxLen := buildOnce(f)
		if maxLen <= MaxCodeLen {
			return lengths
		}
		// bzip2's trick: damp the distribution and retry.
		for i, v := range f {
			if v > 0 {
				f[i] = 1 + v/2
			}
		}
	}
}

// buildOnce builds unrestricted Huffman code lengths with the two-queue
// method and reports the deepest code.
func buildOnce(freq []int64) ([]uint8, int) {
	type node struct {
		weight      int64
		left, right int // node indices, -1 for leaves
		sym         int
	}
	var leaves []node
	for s, w := range freq {
		if w > 0 {
			leaves = append(leaves, node{weight: w, left: -1, right: -1, sym: s})
		}
	}
	lengths := make([]uint8, len(freq))
	switch len(leaves) {
	case 0:
		return lengths, 0
	case 1:
		lengths[leaves[0].sym] = 1
		return lengths, 1
	}
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].weight != leaves[j].weight {
			return leaves[i].weight < leaves[j].weight
		}
		return leaves[i].sym < leaves[j].sym
	})

	nodes := make([]node, 0, 2*len(leaves))
	nodes = append(nodes, leaves...)
	var q1, q2 []int // leaf queue, internal queue (both ascending)
	for i := range leaves {
		q1 = append(q1, i)
	}
	pop := func() int {
		switch {
		case len(q1) == 0:
			i := q2[0]
			q2 = q2[1:]
			return i
		case len(q2) == 0:
			i := q1[0]
			q1 = q1[1:]
			return i
		case nodes[q1[0]].weight <= nodes[q2[0]].weight:
			i := q1[0]
			q1 = q1[1:]
			return i
		default:
			i := q2[0]
			q2 = q2[1:]
			return i
		}
	}
	for len(q1)+len(q2) > 1 {
		a, b := pop(), pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, left: a, right: b})
		q2 = append(q2, len(nodes)-1)
	}
	root := pop()

	// Depth-first depth assignment.
	maxLen := 0
	type item struct{ idx, depth int }
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.idx]
		if nd.left < 0 {
			lengths[nd.sym] = uint8(it.depth)
			if it.depth > maxLen {
				maxLen = it.depth
			}
			continue
		}
		stack = append(stack, item{nd.left, it.depth + 1}, item{nd.right, it.depth + 1})
	}
	return lengths, maxLen
}

// CanonicalCodes assigns canonical code values to the given lengths:
// shorter codes first, ties broken by symbol order.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	var countPerLen [MaxCodeLen + 1]int
	maxLen := 0
	for s, l := range lengths {
		if int(l) > MaxCodeLen {
			return nil, fmt.Errorf("%w: symbol %d has length %d", ErrBadCode, s, l)
		}
		if l > 0 {
			countPerLen[l]++
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	// Kraft check: over-subscribed tables are invalid.
	var k uint64
	for l := 1; l <= maxLen; l++ {
		k += uint64(countPerLen[l]) << uint(maxLen-l)
	}
	if maxLen > 0 && k > 1<<uint(maxLen) {
		return nil, fmt.Errorf("%w: over-subscribed code", ErrBadCode)
	}
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= maxLen; l++ {
		code = (code + uint32(countPerLen[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]uint32, len(lengths))
	for s, l := range lengths {
		if l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes, nil
}

// Encoder writes symbols of one canonical table.
type Encoder struct {
	lengths []uint8
	codes   []uint32
}

// NewEncoder builds an encoder for the given code lengths.
func NewEncoder(lengths []uint8) (*Encoder, error) {
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	return &Encoder{lengths: lengths, codes: codes}, nil
}

// Encode appends the code for sym to w.
func (e *Encoder) Encode(w *bitio.Writer, sym int) error {
	if sym < 0 || sym >= len(e.lengths) || e.lengths[sym] == 0 {
		return fmt.Errorf("%w: symbol %d not in table", ErrBadCode, sym)
	}
	w.WriteBits(uint64(e.codes[sym]), uint(e.lengths[sym]))
	return nil
}

// CodeLen reports the length of sym's code (0 = absent).
func (e *Encoder) CodeLen(sym int) int { return int(e.lengths[sym]) }

// Decoder reads symbols of one canonical table using the limit/base
// method: per length l it knows the largest code value and the index of
// the first symbol of that length.
type Decoder struct {
	maxLen  int
	limit   [MaxCodeLen + 1]uint32 // largest code of each length
	base    [MaxCodeLen + 1]uint32 // first code of each length
	offset  [MaxCodeLen + 1]int    // index into perm of first symbol of each length
	perm    []int                  // symbols in canonical order
	present [MaxCodeLen + 1]bool
}

// NewDecoder builds a decoder for the given code lengths.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	d := &Decoder{}
	type sc struct {
		sym  int
		len  uint8
		code uint32
	}
	var all []sc
	for s, l := range lengths {
		if l > 0 {
			all = append(all, sc{s, l, codes[s]})
			if int(l) > d.maxLen {
				d.maxLen = int(l)
			}
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w: empty table", ErrBadCode)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].len != all[j].len {
			return all[i].len < all[j].len
		}
		return all[i].code < all[j].code
	})
	d.perm = make([]int, len(all))
	for i, x := range all {
		d.perm[i] = x.sym
	}
	idx := 0
	for l := 1; l <= d.maxLen; l++ {
		start := idx
		first, last := uint32(0), uint32(0)
		found := false
		for idx < len(all) && int(all[idx].len) == l {
			if !found {
				first = all[idx].code
				found = true
			}
			last = all[idx].code
			idx++
		}
		if found {
			d.present[l] = true
			d.base[l] = first
			d.limit[l] = last
			d.offset[l] = start
		}
	}
	return d, nil
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	code := uint32(0)
	for l := 1; l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if d.present[l] && code >= d.base[l] && code <= d.limit[l] {
			return d.perm[d.offset[l]+int(code-d.base[l])], nil
		}
	}
	return 0, ErrBadCode
}
