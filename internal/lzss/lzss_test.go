package lzss

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range []Config{Dipperstein(), CULZSSV1(), CULZSSV2()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %+v invalid: %v", cfg, err)
		}
	}
	if err := CULZSSV1().byteAlignedOK(); err != nil {
		t.Errorf("CULZSSV1 not byte-aligned encodable: %v", err)
	}
	if err := CULZSSV2().byteAlignedOK(); err != nil {
		t.Errorf("CULZSSV2 not byte-aligned encodable: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Window: 0, MaxMatch: 18, MinMatch: 3},
		{Window: 128, MaxMatch: 2, MinMatch: 3},
		{Window: 128, MaxMatch: 18, MinMatch: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	tooWide := Config{Window: 512, MaxMatch: 18, MinMatch: 3}
	if err := tooWide.byteAlignedOK(); err == nil {
		t.Errorf("byteAlignedOK accepted window 512")
	}
	tooLong := Config{Window: 128, MaxMatch: 300, MinMatch: 3}
	if err := tooLong.byteAlignedOK(); err == nil {
		t.Errorf("byteAlignedOK accepted max match 300")
	}
}

func TestLongestMatchBasics(t *testing.T) {
	cfg := Config{Window: 16, MaxMatch: 8, MinMatch: 3}
	data := []byte("abcabcabc")

	// At pos 3, "abcabc" matches distance 3 with overlap, capped by the
	// remaining 6 bytes.
	m := LongestMatch(data, 3, 0, &cfg, nil)
	if m.Distance != 3 || m.Length != 6 {
		t.Fatalf("match at 3 = %+v, want {3 6}", m)
	}

	// At pos 0 there is no window.
	if m := LongestMatch(data, 0, 0, &cfg, nil); m.Length != 0 {
		t.Fatalf("match at 0 = %+v, want none", m)
	}

	// Short candidate below MinMatch is rejected.
	m = LongestMatch([]byte("abxaby"), 3, 0, &cfg, nil)
	if m.Length != 0 {
		t.Fatalf("sub-minimum match accepted: %+v", m)
	}
}

func TestLongestMatchWindowLimit(t *testing.T) {
	cfg := Config{Window: 4, MaxMatch: 8, MinMatch: 3}
	// "abcd" appears at 0, but from pos 8 the window only reaches back 4.
	data := []byte("abcdXYZWabcd")
	m := LongestMatch(data, 8, 0, &cfg, nil)
	if m.Length != 0 {
		t.Fatalf("match beyond window accepted: %+v", m)
	}
	// With a big enough window the match is found.
	cfg.Window = 16
	m = LongestMatch(data, 8, 0, &cfg, nil)
	if m.Distance != 8 || m.Length != 4 {
		t.Fatalf("match = %+v, want {8 4}", m)
	}
}

func TestLongestMatchWinStartOverride(t *testing.T) {
	cfg := Config{Window: 256, MaxMatch: 8, MinMatch: 3}
	data := []byte("abcdefghabcdefgh")
	// Restricting winStart to 8 hides the copy at 0.
	if m := LongestMatch(data, 8, 8, &cfg, nil); m.Length != 0 {
		t.Fatalf("winStart ignored: %+v", m)
	}
	if m := LongestMatch(data, 8, 0, &cfg, nil); m.Length != 8 {
		t.Fatalf("match = %+v, want length 8", m)
	}
}

func TestLongestMatchPrefersClosest(t *testing.T) {
	cfg := Config{Window: 64, MaxMatch: 4, MinMatch: 3}
	data := []byte("abcXabcYabc")
	m := LongestMatch(data, 8, 0, &cfg, nil)
	if m.Distance != 4 || m.Length != 3 {
		t.Fatalf("match = %+v, want closest {4 3}", m)
	}
}

func TestLongestMatchEarlyExitAtMax(t *testing.T) {
	cfg := Config{Window: 128, MaxMatch: 8, MinMatch: 3}
	data := bytes.Repeat([]byte("ab"), 64)
	var stats SearchStats
	m := LongestMatch(data, 64, 0, &cfg, &stats)
	if m.Length != 8 {
		t.Fatalf("match = %+v, want max length 8", m)
	}
	// Early exit means the first candidate (distance 2) already gives the
	// max, so only a couple of offsets are visited.
	if stats.Offsets > 4 {
		t.Fatalf("early exit did not trigger: %d offsets visited", stats.Offsets)
	}
}

func TestLongestMatchStats(t *testing.T) {
	cfg := Config{Window: 8, MaxMatch: 8, MinMatch: 3}
	var stats SearchStats
	data := []byte("xyzxyzxyz")
	LongestMatch(data, 3, 0, &cfg, &stats)
	LongestMatch(data, 6, 0, &cfg, &stats)
	if stats.Positions != 2 {
		t.Fatalf("Positions = %d", stats.Positions)
	}
	if stats.Matched != 2 {
		t.Fatalf("Matched = %d", stats.Matched)
	}
	if stats.Comparisons == 0 || stats.Offsets == 0 {
		t.Fatalf("counters not accumulated: %+v", stats)
	}
	var sum SearchStats
	sum.Add(stats)
	sum.Add(stats)
	if sum.Positions != 4 {
		t.Fatalf("Add broken: %+v", sum)
	}
}

func TestHashMatcherAgreesWithBrute(t *testing.T) {
	cfgs := []Config{Dipperstein(), CULZSSV1(), CULZSSV2(), {Window: 32, MaxMatch: 10, MinMatch: 3}}
	inputs := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog the quick brown fox"),
		bytes.Repeat([]byte("abcde"), 100),
		genText(4096, 7),
		genRandom(2048, 8),
	}
	for _, cfg := range cfgs {
		for ii, input := range inputs {
			hm := NewHashMatcher(cfg)
			hm.Reset(input)
			for pos := 0; pos < len(input); pos++ {
				want := LongestMatch(input, pos, pos-cfg.Window, &cfg, nil)
				got := hm.Find(pos, nil)
				if got != want {
					t.Fatalf("cfg %+v input %d pos %d: hash %+v brute %+v", cfg, ii, pos, got, want)
				}
				hm.Insert(pos)
			}
		}
	}
}

func TestEncodersIdenticalAcrossSearch(t *testing.T) {
	cfg := Dipperstein()
	input := genText(8192, 3)
	brute, err := EncodeBitPacked(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := EncodeBitPacked(input, cfg, SearchHashChain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(brute, hash) {
		t.Fatal("brute and hash-chain streams differ")
	}
}

func roundTripBitPacked(t *testing.T, input []byte, cfg Config, search Search) []byte {
	t.Helper()
	comp, err := EncodeBitPacked(input, cfg, search, nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeBitPacked(comp, len(input), cfg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, input) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(input), len(got))
	}
	return comp
}

func roundTripByteAligned(t *testing.T, input []byte, cfg Config, search Search) []byte {
	t.Helper()
	comp, err := EncodeByteAligned(input, cfg, search, nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeByteAligned(comp, len(input), cfg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, input) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(input), len(got))
	}
	return comp
}

func genText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "compression", "window", "lzss", "cuda", "thread", "block", "memory", "kernel", "data"}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

func genRandom(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestRoundTripsAcrossConfigsAndInputs(t *testing.T) {
	cfgs := []Config{Dipperstein(), CULZSSV1(), CULZSSV2(), {Window: 256, MaxMatch: 20, MinMatch: 3}}
	inputs := map[string][]byte{
		"empty":    {},
		"single":   {42},
		"two":      {1, 2},
		"runs":     bytes.Repeat([]byte{'a'}, 1000),
		"period20": bytes.Repeat([]byte("abcdefghijklmnopqrst"), 50),
		"text":     genText(4096, 11),
		"random":   genRandom(4096, 12),
		"all_bytes": func() []byte {
			b := make([]byte, 256)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"short_match": []byte("ababab"),
	}
	for _, cfg := range cfgs {
		for name, input := range inputs {
			comp := roundTripBitPacked(t, input, cfg, SearchBrute)
			if len(input) > 0 && len(comp) > MaxEncodedLenBitPacked(len(input), cfg) {
				t.Errorf("cfg %+v %s: bit-packed %d exceeds bound %d", cfg, name, len(comp), MaxEncodedLenBitPacked(len(input), cfg))
			}
			roundTripBitPacked(t, input, cfg, SearchHashChain)
			if cfg.byteAlignedOK() != nil {
				continue // Dipperstein's 4 KiB window has no byte-aligned form
			}
			comp = roundTripByteAligned(t, input, cfg, SearchBrute)
			if len(comp) > MaxEncodedLenByteAligned(len(input)) {
				t.Errorf("cfg %+v %s: byte-aligned %d exceeds bound %d", cfg, name, len(comp), MaxEncodedLenByteAligned(len(input)))
			}
			roundTripByteAligned(t, input, cfg, SearchHashChain)
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	input := bytes.Repeat([]byte("abcdefghijklmnopqrst"), 200) // period-20, the paper's custom set
	cfg := CULZSSV2()
	comp, err := EncodeByteAligned(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(comp)) / float64(len(input))
	if ratio > 0.10 {
		t.Fatalf("V2 ratio on period-20 data = %.2f, want well under 0.10", ratio)
	}
	// V1's 18-byte lookahead compresses the same data noticeably worse
	// (Table II last row: 13.9%% vs 6.34%%).
	compV1, err := EncodeByteAligned(input, CULZSSV1(), SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(compV1) <= len(comp) {
		t.Fatalf("V1 (%d) should be larger than V2 (%d) on period-20 data", len(compV1), len(comp))
	}
}

func TestDecodeBitPackedErrors(t *testing.T) {
	cfg := CULZSSV1()
	input := genText(512, 5)
	comp, err := EncodeBitPacked(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation.
	if _, err := DecodeBitPacked(comp[:len(comp)/2], len(input), cfg); err == nil {
		t.Fatal("accepted truncated stream")
	}
	// Declared length longer than the stream expands to.
	if _, err := DecodeBitPacked(comp, len(input)+1000, cfg); err == nil {
		t.Fatal("accepted over-long declared length")
	}
	// A coded token whose distance reaches before output start.
	bad, err := EncodeBitPacked(nil, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = bad
	w := []byte{0b10000000} // flag=1 then garbage distance bits, truncated
	if _, err := DecodeBitPacked(w, 10, cfg); err == nil {
		t.Fatal("accepted garbage stream")
	}
}

func TestDecodeByteAlignedErrors(t *testing.T) {
	cfg := CULZSSV1()
	input := genText(512, 6)
	comp, err := EncodeByteAligned(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeByteAligned(comp[:len(comp)/2], len(input), cfg); err == nil {
		t.Fatal("accepted truncated stream")
	}
	if _, err := DecodeByteAligned(nil, 1, cfg); err == nil {
		t.Fatal("accepted empty stream for nonzero length")
	}
	// First token coded with distance 1 but no produced output.
	bad := []byte{0b10000000, 0, 0}
	if _, err := DecodeByteAligned(bad, 10, cfg); err == nil {
		t.Fatal("accepted forward-referencing stream")
	}
	// Match overruns the declared original length.
	pre := []byte{0b01000000, 'a', 0, 250} // literal 'a' then 253-byte match, originalLen 5
	if _, err := DecodeByteAligned(pre, 5, cfg); err == nil {
		t.Fatal("accepted overrunning match")
	}
}

func TestParseTokensByteAligned(t *testing.T) {
	cfg := CULZSSV1()
	input := []byte("abcabcabcabc")
	comp, err := EncodeByteAligned(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := ParseTokensByteAligned(comp, len(input), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: literals a, b, c then one coded token of length 9.
	if len(tokens) != 4 {
		t.Fatalf("tokens = %+v", tokens)
	}
	if tokens[3].Match.Length != 9 || tokens[3].Match.Distance != 3 {
		t.Fatalf("final token = %+v", tokens[3])
	}
	// Re-serialising the parsed tokens reproduces the stream.
	again, err := AppendTokensByteAligned(nil, tokens, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, comp) {
		t.Fatal("token re-serialisation differs")
	}
}

func TestAppendTokensByteAlignedRangeChecks(t *testing.T) {
	cfg := CULZSSV1()
	if _, err := AppendTokensByteAligned(nil, []Token{{Coded: true, Match: Match{Distance: 300, Length: 5}}}, &cfg); err == nil {
		t.Fatal("accepted out-of-range distance")
	}
	if _, err := AppendTokensByteAligned(nil, []Token{{Coded: true, Match: Match{Distance: 10, Length: 2}}}, &cfg); err == nil {
		t.Fatal("accepted sub-minimum length")
	}
}

func TestHashMatcherMaxChain(t *testing.T) {
	cfg := Config{Window: 4096, MaxMatch: 18, MinMatch: 3}
	hm := NewHashMatcher(cfg)
	data := bytes.Repeat([]byte("abc"), 2000)
	hm.Reset(data)
	for pos := 0; pos < 3000; pos++ {
		hm.Insert(pos)
	}
	hm.SetMaxChain(1)
	m := hm.Find(3000, nil)
	if m.Length == 0 {
		t.Fatal("bounded chain found nothing on trivially matchable data")
	}
}
