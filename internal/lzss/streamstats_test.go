package lzss

import (
	"strings"
	"testing"
)

func TestAnalyzeTokensBasics(t *testing.T) {
	tokens := []Token{
		{Literal: 'a'},
		{Coded: true, Match: Match{Distance: 1, Length: 5}},
		{Literal: 'b'},
		{Coded: true, Match: Match{Distance: 100, Length: 20}},
		{Coded: true, Match: Match{Distance: 7, Length: 130}},
	}
	s := AnalyzeTokens(tokens)
	if s.Literals != 2 || s.Matches != 3 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MatchedBytes != 155 || s.OutputBytes() != 157 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.MinLen != 5 || s.MaxLen != 130 {
		t.Fatalf("lengths: %+v", s)
	}
	if s.MinDist != 1 || s.MaxDist != 100 {
		t.Fatalf("distances: %+v", s)
	}
	if s.LengthHist[1] != 1 || s.LengthHist[3] != 1 || s.LengthHist[6] != 1 {
		t.Fatalf("histogram: %+v", s.LengthHist)
	}
	if got := s.MatchCoverage(); got < 0.98 || got > 1 {
		t.Fatalf("coverage = %v", got)
	}
	if s.AvgLen() == 0 || s.AvgDist() == 0 {
		t.Fatal("averages zero")
	}
	str := s.String()
	for _, want := range []string{"2 literals", "3 matches", "length histogram", "128+"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestAnalyzeTokensEmpty(t *testing.T) {
	s := AnalyzeTokens(nil)
	if s.OutputBytes() != 0 || s.MatchCoverage() != 0 || s.AvgLen() != 0 || s.AvgDist() != 0 {
		t.Fatalf("empty stats not zero: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAnalyzeRealStream(t *testing.T) {
	cfg := CULZSSV1()
	input := genText(8192, 17)
	comp, err := EncodeByteAligned(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := ParseTokensByteAligned(comp, len(input), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeTokens(tokens)
	if s.OutputBytes() != len(input) {
		t.Fatalf("OutputBytes = %d, want %d", s.OutputBytes(), len(input))
	}
	if s.MaxDist > cfg.Window {
		t.Fatalf("distance %d beyond window", s.MaxDist)
	}
	if s.MaxLen > cfg.MaxMatch {
		t.Fatalf("length %d beyond max match", s.MaxLen)
	}
}
