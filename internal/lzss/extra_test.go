package lzss

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestFigure1EncodingExample reproduces the paper's Figure 1 worked
// example. With a window covering the whole text, the encoder must find
// the same long matches the figure shows — in particular the final
// "I said what I meant" line collapsing into one long back-reference
// (the figure's "(24,19)") and the encoded size landing well under the
// original 102 characters (figure: 56).
func TestFigure1EncodingExample(t *testing.T) {
	// The figure's text: 102 characters across its four content lines.
	text := "I meant what I said and I said what I meant \nFrom there to here \nfrom here to there \nI said what I meant"
	if len(text) != 104 { // the figure counts 102 + our line joins
		t.Fatalf("figure text length drifted: %d", len(text))
	}
	cfg := Config{Window: 256, MaxMatch: 64, MinMatch: 3}

	comp, err := EncodeByteAligned([]byte(text), cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The figure compresses 102 -> 56 token-characters; our byte-aligned
	// stream (2-byte coded tokens + flag bytes) must land in the same
	// region, clearly below 70%.
	if len(comp) >= len(text)*7/10 {
		t.Fatalf("figure text barely compressed: %d -> %d", len(text), len(comp))
	}
	tokens, err := ParseTokensByteAligned(comp, len(text), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The figure's hallmark: a long match near the end covering
	// "I said what I meant" (19 chars) — our greedy parse finds an
	// 18+ byte match for that repetition.
	longest := 0
	for _, tok := range tokens {
		if tok.Coded && tok.Match.Length > longest {
			longest = tok.Match.Length
		}
	}
	if longest < 15 {
		t.Fatalf("longest match %d; the figure's long repetitions were missed", longest)
	}
	// Round trip, of course.
	back, err := DecodeByteAligned(comp, len(text), cfg)
	if err != nil || string(back) != text {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestByteAlignedWriterBasics(t *testing.T) {
	cfg := CULZSSV1()
	w := NewByteAlignedWriter(&cfg, 0)
	w.Literal('a')
	if err := w.Match(Match{Distance: 1, Length: 5}); err != nil {
		t.Fatal(err)
	}
	w.Literal('b')
	got := w.Bytes()
	// flags: 010 followed by zero padding -> 0b01000000
	want := []byte{0x40, 'a', 0, 2, 'b'}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream = %x, want %x", got, want)
	}
	dec, err := DecodeByteAligned(got, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec) != "aaaaaab" {
		t.Fatalf("decoded %q", dec)
	}
}

func TestByteAlignedWriterGroupBoundaries(t *testing.T) {
	cfg := CULZSSV1()
	// 20 literals: groups of 8 + 8 + 4, three flag bytes.
	w := NewByteAlignedWriter(&cfg, 0)
	for i := 0; i < 20; i++ {
		w.Literal(byte('A' + i))
	}
	got := w.Bytes()
	if len(got) != 23 {
		t.Fatalf("len = %d, want 23 (20 literals + 3 flags)", len(got))
	}
	if got[0] != 0 || got[9] != 0 || got[18] != 0 {
		t.Fatalf("flag bytes misplaced: %x", got)
	}
	dec, err := DecodeByteAligned(got, 20, cfg)
	if err != nil || len(dec) != 20 || dec[19] != 'T' {
		t.Fatalf("decode: %q %v", dec, err)
	}
}

func TestByteAlignedWriterRangeChecks(t *testing.T) {
	cfg := CULZSSV1()
	w := NewByteAlignedWriter(&cfg, 0)
	if err := w.Match(Match{Distance: 0, Length: 5}); err == nil {
		t.Error("accepted distance 0")
	}
	if err := w.Match(Match{Distance: 300, Length: 5}); err == nil {
		t.Error("accepted distance 300")
	}
	if err := w.Match(Match{Distance: 1, Length: 2}); err == nil {
		t.Error("accepted sub-minimum length")
	}
	if err := w.Match(Match{Distance: 1, Length: 1000}); err == nil {
		t.Error("accepted over-long match")
	}
}

// TestWriterMatchesAppendTokens pins the incremental writer to the
// token-slice serializer.
func TestWriterMatchesAppendTokens(t *testing.T) {
	cfg := CULZSSV2()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		var tokens []Token
		w := NewByteAlignedWriter(&cfg, 0)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b := byte(rng.Intn(256))
				tokens = append(tokens, Token{Literal: b})
				w.Literal(b)
			} else {
				m := Match{Distance: 1 + rng.Intn(256), Length: cfg.MinMatch + rng.Intn(250)}
				tokens = append(tokens, Token{Coded: true, Match: m})
				if err := w.Match(m); err != nil {
					t.Fatal(err)
				}
			}
		}
		want, err := AppendTokensByteAligned(nil, tokens, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.Bytes(), want) {
			t.Fatalf("trial %d: writer and serializer disagree", trial)
		}
	}
}

// TestDecodersNeverPanicOnGarbage feeds random bytes into both decoders:
// errors are fine, panics are not.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfgs := []Config{CULZSSV1(), CULZSSV2(), Dipperstein()}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		garbage := make([]byte, n)
		rng.Read(garbage)
		declared := rng.Intn(256)
		cfg := cfgs[trial%len(cfgs)]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: byte-aligned decoder panicked: %v", trial, r)
				}
			}()
			_, _ = DecodeByteAligned(garbage, declared, cfg)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: bit-packed decoder panicked: %v", trial, r)
				}
			}()
			_, _ = DecodeBitPacked(garbage, declared, cfg)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: token parser panicked: %v", trial, r)
				}
			}()
			_, _ = ParseTokensByteAligned(garbage, declared, &cfg)
		}()
	}
}

func TestTinyWindowConfig(t *testing.T) {
	cfg := Config{Window: 1, MaxMatch: 4, MinMatch: 3}
	input := []byte("aaaaaaaaabbbbbbbbb")
	comp, err := EncodeBitPacked(input, cfg, SearchBrute, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBitPacked(comp, len(input), cfg)
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("window-1 round trip failed: %v", err)
	}
	// Runs compress even with distance-1-only references.
	if len(comp) >= len(input) {
		t.Fatalf("runs did not compress at window 1: %d -> %d", len(input), len(comp))
	}
}

func TestSearchStringer(t *testing.T) {
	if SearchBrute.String() != "brute" || SearchHashChain.String() != "hashchain" {
		t.Fatal("Search.String broken")
	}
	if !strings.Contains(Search(9).String(), "?") {
		t.Fatal("unknown Search should render with a marker")
	}
}

func TestHashMatcherResetReuse(t *testing.T) {
	cfg := CULZSSV1()
	hm := NewHashMatcher(cfg)
	a := []byte("abcabcabcabc")
	b := []byte("xyzxyzxyzxyz")
	hm.Reset(a)
	for i := range a {
		hm.Insert(i)
	}
	hm.Reset(b)
	for pos := 0; pos < len(b); pos++ {
		want := LongestMatch(b, pos, pos-cfg.Window, &cfg, nil)
		got := hm.Find(pos, nil)
		if got != want {
			t.Fatalf("stale chains after Reset: pos %d got %+v want %+v", pos, got, want)
		}
		hm.Insert(pos)
	}
}
