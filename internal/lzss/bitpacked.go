package lzss

import (
	"fmt"

	"culzss/internal/bitio"
)

// Bit-packed token stream — the format of the paper's serial and pthread
// CPU implementations (Dipperstein-shaped).
//
// Each token is one flag bit followed by either
//
//	literal:  8 bits of raw byte                      (flag = 0)
//	coded:    Width(Window) bits of distance-1 and    (flag = 1)
//	          Width(MaxMatch-MinMatch+1) bits of length-MinMatch
//
// The stream carries no terminator; the decoder stops after producing the
// uncompressed length recorded in the container header. Trailing padding
// bits from the final byte are ignored.

// offsetBits returns the width of the distance field for cfg.
func offsetBits(cfg *Config) uint { return bitio.Width(cfg.Window) }

// lengthBits returns the width of the length field for cfg.
func lengthBits(cfg *Config) uint { return bitio.Width(cfg.MaxMatch - cfg.MinMatch + 1) }

// EncodeBitPacked compresses src into a dense bit-packed token stream
// using greedy longest-match parsing with the given search strategy.
// Search statistics are accumulated into stats when non-nil.
func EncodeBitPacked(src []byte, cfg Config, search Search, stats *SearchStats) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(src)/2 + 16)
	m := newMatcher(search, &cfg, src)
	ob, lb := offsetBits(&cfg), lengthBits(&cfg)
	for pos := 0; pos < len(src); {
		match := m.find(pos, stats)
		if match.Length >= cfg.MinMatch {
			w.WriteBit(1)
			w.WriteBits(uint64(match.Distance-1), ob)
			w.WriteBits(uint64(match.Length-cfg.MinMatch), lb)
			pos += match.Length
		} else {
			w.WriteBit(0)
			w.WriteBits(uint64(src[pos]), 8)
			pos++
		}
	}
	return w.Bytes(), nil
}

// DecodeBitPacked expands a bit-packed token stream produced with cfg into
// exactly originalLen bytes.
func DecodeBitPacked(comp []byte, originalLen int, cfg Config) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, originalLen)
	var err error
	if dst, err = AppendDecodedBitPacked(dst, comp, originalLen, cfg); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendDecodedBitPacked appends the decoded expansion of comp to dst and
// returns the extended slice. The stream must decode to exactly
// originalLen additional bytes.
func AppendDecodedBitPacked(dst, comp []byte, originalLen int, cfg Config) ([]byte, error) {
	r := bitio.NewReader(comp)
	ob, lb := offsetBits(&cfg), lengthBits(&cfg)
	base := len(dst)
	for len(dst)-base < originalLen {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if flag == 0 {
			lit, err := r.ReadBits(8)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
			}
			dst = append(dst, byte(lit))
			continue
		}
		distM1, err := r.ReadBits(ob)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		lenM, err := r.ReadBits(lb)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		dist := int(distM1) + 1
		length := int(lenM) + cfg.MinMatch
		if dist > len(dst)-base {
			// A back-reference may not reach before the start of this
			// stream's own output (chunks are independent).
			return nil, fmt.Errorf("%w: distance %d exceeds produced output %d", ErrCorrupt, dist, len(dst)-base)
		}
		if len(dst)-base+length > originalLen {
			return nil, fmt.Errorf("%w: match overruns declared length", ErrCorrupt)
		}
		// Byte-at-a-time copy: overlapping matches (dist < length) must
		// re-read bytes written earlier in this same copy.
		from := len(dst) - dist
		for i := 0; i < length; i++ {
			dst = append(dst, dst[from+i])
		}
	}
	return dst, nil
}
