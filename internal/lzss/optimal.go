package lzss

// Optimal parsing — a beyond-the-paper extension in the spirit of §VII's
// "further improvement opportunities on the LZSS algorithm".
//
// The paper's encoders (and both GPU kernels) parse greedily: take the
// longest match at the current position. Greedy is not optimal: accepting
// a shorter match (or a literal) sometimes exposes a much longer match
// one position later. Because every prefix of a match is itself a valid
// match at the same distance, the minimum-cost tokenisation is a simple
// backward dynamic program over token costs.
//
// Costs are in eighths of a byte (a flag bit is 1/8 byte in the
// byte-aligned stream): a literal costs 8+1, a coded token 16+1.

const (
	literalCost8 = 9  // 1 flag bit + 8 payload bits
	matchCost8   = 17 // 1 flag bit + 16 payload bits
)

// EncodeByteAlignedOptimal compresses src into the byte-aligned stream
// using minimum-cost parsing. Output decodes with the same decoder and is
// never larger than the greedy parse (modulo the final flag byte's
// padding).
func EncodeByteAlignedOptimal(src []byte, cfg Config, stats *SearchStats) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.byteAlignedOK(); err != nil {
		return nil, err
	}
	n := len(src)
	// Longest match per position (hash chains keep this near-linear).
	hm := NewHashMatcher(cfg)
	hm.Reset(src)
	best := make([]Match, n)
	for i := 0; i < n; i++ {
		best[i] = hm.Find(i, stats)
		hm.Insert(i)
	}

	// Backward DP: cost[i] = cheapest encoding of src[i:].
	const inf = int64(1) << 62
	cost := make([]int64, n+1)
	choice := make([]int32, n) // 0 = literal, l>0 = match of length l
	for i := n - 1; i >= 0; i-- {
		c := literalCost8 + cost[i+1]
		choice[i] = 0
		if m := best[i]; m.Length >= cfg.MinMatch {
			// Any length in [MinMatch, m.Length] is valid at m.Distance.
			for l := cfg.MinMatch; l <= m.Length; l++ {
				if v := matchCost8 + cost[i+l]; v < c {
					c = v
					choice[i] = int32(l)
				}
			}
		}
		if c >= inf {
			c = inf - 1
		}
		cost[i] = c
	}

	// Forward reconstruction.
	w := NewByteAlignedWriter(&cfg, n/2+16)
	for i := 0; i < n; {
		if l := int(choice[i]); l > 0 {
			if err := w.Match(Match{Distance: best[i].Distance, Length: l}); err != nil {
				return nil, err
			}
			i += l
		} else {
			w.Literal(src[i])
			i++
		}
	}
	return w.Bytes(), nil
}
