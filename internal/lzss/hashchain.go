package lzss

// HashMatcher is a hash-chain longest-match searcher: the paper's §VII
// "improved searching with better search algorithms" future-work item.
// It finds exactly matches of length >= MinMatch that the brute scan would
// find (greedy-equivalent output), but visits only window positions whose
// first MinMatch bytes hash like the lookahead, so it is orders of
// magnitude faster on large windows.
//
// Usage: Reset with the input, then for each position either Find (which
// does not insert) followed by Insert for every consumed position, or use
// the package-level encoders which drive it correctly.
type HashMatcher struct {
	cfg      Config
	maxChain int
	data     []byte
	head     []int32
	prev     []int32
}

const (
	hashBits = 15
	hashSize = 1 << hashBits
	noPos    = int32(-1)
	// DefaultMaxChain bounds the number of chain links visited per search.
	// 0 means unlimited. The default is generous enough that output is
	// identical to brute force on all the paper's datasets at the preset
	// window sizes.
	DefaultMaxChain = 4096
)

// NewHashMatcher returns a matcher for the given configuration.
func NewHashMatcher(cfg Config) *HashMatcher {
	m := &HashMatcher{cfg: cfg, maxChain: DefaultMaxChain,
		head: make([]int32, hashSize)}
	for i := range m.head {
		m.head[i] = noPos
	}
	return m
}

// SetMaxChain bounds chain walks per search; 0 means unlimited.
func (m *HashMatcher) SetMaxChain(n int) { m.maxChain = n }

// Reset points the matcher at new input and clears all chains.
func (m *HashMatcher) Reset(data []byte) {
	m.data = data
	if cap(m.prev) < len(data) {
		m.prev = make([]int32, len(data))
	}
	m.prev = m.prev[:len(data)]
	for i := range m.head {
		m.head[i] = noPos
	}
}

// hash3 hashes the three bytes at data[pos:pos+3].
func (m *HashMatcher) hash3(pos int) uint32 {
	d := m.data
	h := uint32(d[pos])<<10 ^ uint32(d[pos+1])<<5 ^ uint32(d[pos+2])
	h *= 2654435761 // Knuth multiplicative mix
	return h >> (32 - hashBits)
}

// Insert records position pos in the chains so later searches can find it.
// Positions with fewer than MinMatch bytes remaining are ignored.
func (m *HashMatcher) Insert(pos int) {
	if pos+3 > len(m.data) {
		return
	}
	h := m.hash3(pos)
	m.prev[pos] = m.head[h]
	m.head[h] = int32(pos)
}

// Find returns the longest match at pos against previously inserted
// positions within the window, preferring the shortest distance on ties
// (matching LongestMatch). It does not insert pos.
func (m *HashMatcher) Find(pos int, stats *SearchStats) Match {
	cfg := &m.cfg
	data := m.data
	maxLen := cfg.MaxMatch
	if rem := len(data) - pos; rem < maxLen {
		maxLen = rem
	}
	if stats != nil {
		stats.Positions++
	}
	if maxLen < cfg.MinMatch {
		return Match{}
	}
	limit := pos - cfg.Window
	var best Match
	chainLen := 0
	var offs, cmps int64
	for cand := m.head[m.hash3(pos)]; cand != noPos && int(cand) >= limit; cand = m.prev[cand] {
		if m.maxChain > 0 && chainLen >= m.maxChain {
			break
		}
		chainLen++
		offs++
		start := int(cand)
		// Check the byte one past the current best first: cheap rejection.
		if best.Length > 0 && data[start+best.Length] != data[pos+best.Length] {
			cmps++
			continue
		}
		l := 0
		for l < maxLen && data[start+l] == data[pos+l] {
			l++
		}
		cmps += int64(l + 1)
		if l > best.Length {
			best = Match{Distance: pos - start, Length: l}
			if l == maxLen {
				break
			}
		}
	}
	if stats != nil {
		stats.Offsets += offs
		stats.Comparisons += cmps
		if best.ok(cfg) {
			stats.Matched++
		}
	}
	if !best.ok(cfg) {
		return Match{}
	}
	return best
}

// Search selects the longest-match strategy for the CPU encoders.
type Search int

// Search strategies.
const (
	// SearchBrute is the linear window scan of the paper's serial
	// implementation (and of both GPU kernels).
	SearchBrute Search = iota
	// SearchHashChain is the hash-chain accelerated search (§VII future
	// work). Output is byte-identical to SearchBrute whenever the chain
	// bound is not hit and ties resolve identically.
	SearchHashChain
)

// String implements fmt.Stringer.
func (s Search) String() string {
	switch s {
	case SearchBrute:
		return "brute"
	case SearchHashChain:
		return "hashchain"
	default:
		return "search(?)"
	}
}

// matcher adapts both strategies behind one greedy-tokenizer-facing shape.
type matcher struct {
	search Search
	cfg    *Config
	data   []byte
	hm     *HashMatcher
	// nextInsert tracks which positions the hash matcher has indexed.
	nextInsert int
}

func newMatcher(search Search, cfg *Config, data []byte) *matcher {
	m := &matcher{search: search, cfg: cfg, data: data}
	if search == SearchHashChain {
		m.hm = NewHashMatcher(*cfg)
		m.hm.Reset(data)
	}
	return m
}

// find returns the longest match at pos, ensuring hash chains cover every
// position before pos.
func (m *matcher) find(pos int, stats *SearchStats) Match {
	if m.search == SearchBrute {
		return LongestMatch(m.data, pos, pos-m.cfg.Window, m.cfg, stats)
	}
	for ; m.nextInsert < pos; m.nextInsert++ {
		m.hm.Insert(m.nextInsert)
	}
	return m.hm.Find(pos, stats)
}
