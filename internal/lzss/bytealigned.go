package lzss

import "fmt"

// Byte-aligned token stream — the format of the CULZSS GPU kernels.
//
// Tokens are grouped in eights. Each group is preceded by one flag byte
// whose bits, MSB first, describe the following eight tokens: bit set =
// coded token (two bytes: distance-1, length-MinMatch), bit clear =
// literal (one raw byte). The final group may cover fewer than eight
// tokens; its unused flag bits are zero. This is the "16 bit encoding
// space" of paper §III.D: 8 bits of match offset and 8 bits of match
// length, which caps the window at 256 bytes and the match length at
// MinMatch+255.
//
// Like the bit-packed stream, there is no terminator: the decoder stops
// after producing the length recorded in the container.

// Token is one parsed LZSS token, used by the GPU kernels' host post-pass
// and by tests that inspect parse decisions.
type Token struct {
	Coded   bool
	Literal byte  // valid when !Coded
	Match   Match // valid when Coded
}

// ByteAlignedWriter emits the byte-aligned token stream incrementally:
// it maintains the current group's flag byte in place, so producers (the
// V2 host post-pass, the encoders) need no intermediate token slice.
type ByteAlignedWriter struct {
	cfg     *Config
	dst     []byte
	flagPos int // index of the current group's flag byte; -1 when closed
	nGroup  int // tokens in the current group (0..8)
}

// NewByteAlignedWriter returns a writer with the given capacity hint.
func NewByteAlignedWriter(cfg *Config, capHint int) *ByteAlignedWriter {
	return &ByteAlignedWriter{cfg: cfg, dst: make([]byte, 0, capHint), flagPos: -1}
}

func (w *ByteAlignedWriter) openGroup() {
	if w.flagPos < 0 || w.nGroup == 8 {
		w.dst = append(w.dst, 0)
		w.flagPos = len(w.dst) - 1
		w.nGroup = 0
	}
}

// Literal appends an uncoded byte token.
func (w *ByteAlignedWriter) Literal(b byte) {
	w.openGroup()
	w.dst = append(w.dst, b)
	w.nGroup++
}

// Match appends a coded token.
func (w *ByteAlignedWriter) Match(m Match) error {
	if m.Distance < 1 || m.Distance > 256 {
		return fmt.Errorf("lzss: distance %d out of byte-aligned range", m.Distance)
	}
	if m.Length < w.cfg.MinMatch || m.Length-w.cfg.MinMatch > 255 {
		return fmt.Errorf("lzss: length %d out of byte-aligned range", m.Length)
	}
	w.openGroup()
	w.dst[w.flagPos] |= 1 << (7 - w.nGroup)
	w.dst = append(w.dst, byte(m.Distance-1), byte(m.Length-w.cfg.MinMatch))
	w.nGroup++
	return nil
}

// Bytes returns the finished stream.
func (w *ByteAlignedWriter) Bytes() []byte { return w.dst }

// AppendTokensByteAligned serialises a token sequence into the byte-aligned
// stream format, appending to dst.
func AppendTokensByteAligned(dst []byte, tokens []Token, cfg *Config) ([]byte, error) {
	if err := cfg.byteAlignedOK(); err != nil {
		return nil, err
	}
	for g := 0; g < len(tokens); g += 8 {
		end := g + 8
		if end > len(tokens) {
			end = len(tokens)
		}
		var flags byte
		for i, t := range tokens[g:end] {
			if t.Coded {
				flags |= 1 << (7 - i)
			}
		}
		dst = append(dst, flags)
		for _, t := range tokens[g:end] {
			if t.Coded {
				if t.Match.Distance < 1 || t.Match.Distance > 256 {
					return nil, fmt.Errorf("lzss: distance %d out of byte-aligned range", t.Match.Distance)
				}
				if t.Match.Length < cfg.MinMatch || t.Match.Length-cfg.MinMatch > 255 {
					return nil, fmt.Errorf("lzss: length %d out of byte-aligned range", t.Match.Length)
				}
				dst = append(dst, byte(t.Match.Distance-1), byte(t.Match.Length-cfg.MinMatch))
			} else {
				dst = append(dst, t.Literal)
			}
		}
	}
	return dst, nil
}

// EncodeByteAligned compresses src into the byte-aligned stream with
// greedy longest-match parsing. It is the CPU-reference encoder for the
// GPU wire format: kernels must produce byte-identical output for the
// same configuration.
func EncodeByteAligned(src []byte, cfg Config, search Search, stats *SearchStats) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.byteAlignedOK(); err != nil {
		return nil, err
	}
	m := newMatcher(search, &cfg, src)
	w := NewByteAlignedWriter(&cfg, len(src)/2+16)
	for pos := 0; pos < len(src); {
		match := m.find(pos, stats)
		if match.Length >= cfg.MinMatch {
			if err := w.Match(match); err != nil {
				return nil, err
			}
			pos += match.Length
		} else {
			w.Literal(src[pos])
			pos++
		}
	}
	return w.Bytes(), nil
}

// DecodeByteAligned expands a byte-aligned token stream produced with cfg
// into exactly originalLen bytes.
func DecodeByteAligned(comp []byte, originalLen int, cfg Config) ([]byte, error) {
	dst := make([]byte, 0, originalLen)
	return AppendDecodedByteAligned(dst, comp, originalLen, cfg)
}

// AppendDecodedByteAligned appends the decoded expansion of comp to dst.
// The stream must decode to exactly originalLen additional bytes.
func AppendDecodedByteAligned(dst, comp []byte, originalLen int, cfg Config) ([]byte, error) {
	base := len(dst)
	pos := 0
	for len(dst)-base < originalLen {
		if pos >= len(comp) {
			return nil, fmt.Errorf("%w: flag byte missing", ErrTruncated)
		}
		flags := comp[pos]
		pos++
		for bit := 0; bit < 8 && len(dst)-base < originalLen; bit++ {
			if flags&(1<<(7-bit)) == 0 {
				if pos >= len(comp) {
					return nil, fmt.Errorf("%w: literal missing", ErrTruncated)
				}
				dst = append(dst, comp[pos])
				pos++
				continue
			}
			if pos+2 > len(comp) {
				return nil, fmt.Errorf("%w: coded token missing", ErrTruncated)
			}
			dist := int(comp[pos]) + 1
			length := int(comp[pos+1]) + cfg.MinMatch
			pos += 2
			if dist > len(dst)-base {
				return nil, fmt.Errorf("%w: distance %d exceeds produced output %d", ErrCorrupt, dist, len(dst)-base)
			}
			if len(dst)-base+length > originalLen {
				return nil, fmt.Errorf("%w: match overruns declared length", ErrCorrupt)
			}
			from := len(dst) - dist
			for i := 0; i < length; i++ {
				dst = append(dst, dst[from+i])
			}
		}
	}
	return dst, nil
}

// ParseTokensByteAligned parses a byte-aligned stream back into tokens,
// stopping once the tokens expand to originalLen bytes. It is the
// inspection tool used by tests and by the GPU decompression kernel's
// host-side verifier.
func ParseTokensByteAligned(comp []byte, originalLen int, cfg *Config) ([]Token, error) {
	var tokens []Token
	produced := 0
	pos := 0
	for produced < originalLen {
		if pos >= len(comp) {
			return nil, fmt.Errorf("%w: flag byte missing", ErrTruncated)
		}
		flags := comp[pos]
		pos++
		for bit := 0; bit < 8 && produced < originalLen; bit++ {
			if flags&(1<<(7-bit)) == 0 {
				if pos >= len(comp) {
					return nil, fmt.Errorf("%w: literal missing", ErrTruncated)
				}
				tokens = append(tokens, Token{Literal: comp[pos]})
				pos++
				produced++
				continue
			}
			if pos+2 > len(comp) {
				return nil, fmt.Errorf("%w: coded token missing", ErrTruncated)
			}
			m := Match{Distance: int(comp[pos]) + 1, Length: int(comp[pos+1]) + cfg.MinMatch}
			pos += 2
			if m.Distance > produced {
				return nil, fmt.Errorf("%w: distance %d exceeds produced output %d", ErrCorrupt, m.Distance, produced)
			}
			tokens = append(tokens, Token{Coded: true, Match: m})
			produced += m.Length
		}
	}
	if produced != originalLen {
		return nil, fmt.Errorf("%w: stream expands to %d bytes, want %d", ErrCorrupt, produced, originalLen)
	}
	return tokens, nil
}
