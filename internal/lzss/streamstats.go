package lzss

import "fmt"

// StreamStats summarises a parsed token stream: the analysis behind the
// culzss CLI's -dump flag and the tuner's diagnostics.
type StreamStats struct {
	// Literals and Matches count the two token kinds.
	Literals int
	Matches  int
	// MatchedBytes is the number of output bytes covered by matches.
	MatchedBytes int
	// MinLen/MaxLen/TotalLen describe match lengths.
	MinLen, MaxLen, TotalLen int
	// MinDist/MaxDist/TotalDist describe match distances.
	MinDist, MaxDist, TotalDist int
	// LengthHist buckets match lengths: [3-4), [4-8), [8-16), [16-32),
	// [32-64), [64-128), [128+].
	LengthHist [7]int
}

// AnalyzeTokens computes StreamStats over a token sequence.
func AnalyzeTokens(tokens []Token) StreamStats {
	var s StreamStats
	for _, tok := range tokens {
		if !tok.Coded {
			s.Literals++
			continue
		}
		m := tok.Match
		s.Matches++
		s.MatchedBytes += m.Length
		s.TotalLen += m.Length
		s.TotalDist += m.Distance
		if s.MinLen == 0 || m.Length < s.MinLen {
			s.MinLen = m.Length
		}
		if m.Length > s.MaxLen {
			s.MaxLen = m.Length
		}
		if s.MinDist == 0 || m.Distance < s.MinDist {
			s.MinDist = m.Distance
		}
		if m.Distance > s.MaxDist {
			s.MaxDist = m.Distance
		}
		switch {
		case m.Length < 4:
			s.LengthHist[0]++
		case m.Length < 8:
			s.LengthHist[1]++
		case m.Length < 16:
			s.LengthHist[2]++
		case m.Length < 32:
			s.LengthHist[3]++
		case m.Length < 64:
			s.LengthHist[4]++
		case m.Length < 128:
			s.LengthHist[5]++
		default:
			s.LengthHist[6]++
		}
	}
	return s
}

// OutputBytes is the total uncompressed length the stream expands to.
func (s StreamStats) OutputBytes() int { return s.Literals + s.MatchedBytes }

// MatchCoverage is the fraction of output bytes produced by matches.
func (s StreamStats) MatchCoverage() float64 {
	if out := s.OutputBytes(); out > 0 {
		return float64(s.MatchedBytes) / float64(out)
	}
	return 0
}

// AvgLen is the mean match length.
func (s StreamStats) AvgLen() float64 {
	if s.Matches == 0 {
		return 0
	}
	return float64(s.TotalLen) / float64(s.Matches)
}

// AvgDist is the mean match distance.
func (s StreamStats) AvgDist() float64 {
	if s.Matches == 0 {
		return 0
	}
	return float64(s.TotalDist) / float64(s.Matches)
}

// String renders a multi-line summary.
func (s StreamStats) String() string {
	labels := []string{"3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"}
	out := fmt.Sprintf("tokens:        %d literals, %d matches\n", s.Literals, s.Matches)
	out += fmt.Sprintf("coverage:      %.1f%% of output bytes from matches\n", s.MatchCoverage()*100)
	if s.Matches > 0 {
		out += fmt.Sprintf("match length:  min %d, avg %.1f, max %d\n", s.MinLen, s.AvgLen(), s.MaxLen)
		out += fmt.Sprintf("match dist:    min %d, avg %.1f, max %d\n", s.MinDist, s.AvgDist(), s.MaxDist)
		out += "length histogram:\n"
		for i, label := range labels {
			out += fmt.Sprintf("  %-7s %d\n", label, s.LengthHist[i])
		}
	}
	return out
}
