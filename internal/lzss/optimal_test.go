package lzss

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOptimalRoundTrip(t *testing.T) {
	for name, input := range map[string][]byte{
		"empty":    {},
		"single":   {7},
		"text":     genText(16<<10, 31),
		"periodic": bytes.Repeat([]byte("abcdefghijklmnopqrst"), 400),
		"random":   genRandom(8<<10, 32),
	} {
		for _, cfg := range []Config{CULZSSV1(), CULZSSV2()} {
			comp, err := EncodeByteAlignedOptimal(input, cfg, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := DecodeByteAligned(comp, len(input), cfg)
			if err != nil || !bytes.Equal(got, input) {
				t.Fatalf("%s: round trip failed: %v", name, err)
			}
		}
	}
}

// TestOptimalNeverWorseThanGreedy is the point of the DP: the optimal
// parse is at most as large as greedy on every input.
func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	cfg := CULZSSV2()
	inputs := [][]byte{
		genText(32<<10, 33),
		genRandom(16<<10, 34),
		bytes.Repeat([]byte("abcabcabd"), 2000),
		bytes.Repeat([]byte("aab"), 4000),
	}
	anyBetter := false
	for i, input := range inputs {
		greedy, err := EncodeByteAligned(input, cfg, SearchHashChain, nil)
		if err != nil {
			t.Fatal(err)
		}
		optimal, err := EncodeByteAlignedOptimal(input, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Allow one byte of slack for the final flag byte's grouping.
		if len(optimal) > len(greedy)+1 {
			t.Fatalf("input %d: optimal %d > greedy %d", i, len(optimal), len(greedy))
		}
		if len(optimal) < len(greedy) {
			anyBetter = true
		}
	}
	if !anyBetter {
		t.Error("optimal parse never beat greedy on any crafted input")
	}
}

func TestOptimalQuick(t *testing.T) {
	cfg := CULZSSV1()
	f := func(data []byte) bool {
		comp, err := EncodeByteAlignedOptimal(data, cfg, nil)
		if err != nil {
			return false
		}
		got, err := DecodeByteAligned(comp, len(data), cfg)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalRejectsBadConfig(t *testing.T) {
	if _, err := EncodeByteAlignedOptimal([]byte("x"), Dipperstein(), nil); err == nil {
		t.Fatal("accepted a config that does not fit the byte-aligned token")
	}
}
