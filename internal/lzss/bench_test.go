package lzss

import (
	"bytes"
	"testing"
)

func benchCorpus() []byte {
	// Deterministic mixed corpus: text-ish with runs.
	var buf bytes.Buffer
	words := []string{"window", "buffer", "stream", "packet", "kernel ", "    ", "return 0;\n"}
	for i := 0; buf.Len() < 1<<20; i++ {
		buf.WriteString(words[i%len(words)])
		if i%37 == 0 {
			buf.Write(bytes.Repeat([]byte{'x'}, 20))
		}
	}
	return buf.Bytes()[:1<<20]
}

func BenchmarkLongestMatchBrute(b *testing.B) {
	data := benchCorpus()
	cfg := CULZSSV1()
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		pos := 4096 + i%(len(data)-8192)
		LongestMatch(data, pos, pos-cfg.Window, &cfg, nil)
	}
}

func BenchmarkHashMatcher(b *testing.B) {
	data := benchCorpus()
	cfg := Dipperstein()
	hm := NewHashMatcher(cfg)
	hm.Reset(data)
	for i := 0; i < 1<<19; i++ {
		hm.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hm.Find(1<<19+i%1024, nil)
	}
}

func BenchmarkEncodeBitPackedBrute(b *testing.B) {
	data := benchCorpus()[:256<<10]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBitPacked(data, CULZSSV1(), SearchBrute, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBitPackedHashChain(b *testing.B) {
	data := benchCorpus()[:256<<10]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBitPacked(data, Dipperstein(), SearchHashChain, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeByteAligned(b *testing.B) {
	data := benchCorpus()[:256<<10]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := EncodeByteAligned(data, CULZSSV1(), SearchBrute, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeByteAligned(b *testing.B) {
	data := benchCorpus()[:256<<10]
	comp, err := EncodeByteAligned(data, CULZSSV1(), SearchHashChain, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeByteAligned(comp, len(data), CULZSSV1()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBitPacked(b *testing.B) {
	data := benchCorpus()[:256<<10]
	comp, err := EncodeBitPacked(data, Dipperstein(), SearchHashChain, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBitPacked(comp, len(data), Dipperstein()); err != nil {
			b.Fatal(err)
		}
	}
}
