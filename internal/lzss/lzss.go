// Package lzss implements the Lempel–Ziv–Storer–Szymanski dictionary
// compression algorithm that every compressor in this repository builds on.
//
// LZSS (Storer & Szymanski 1982) improves LZ77 by prefixing every token
// with a one-bit flag that says whether the token is a raw literal or a
// (offset, length) back-reference into the sliding window, and by emitting
// a back-reference only when it is no longer than the bytes it replaces
// (the minimum-match rule; with the 16-bit coded token used here the
// minimum useful match is three bytes, exactly as in the paper §II.A).
//
// The package provides:
//
//   - Config: window / lookahead / minimum-match parameterisation with the
//     three presets used by the paper (Dipperstein's serial defaults and
//     the CULZSS V1/V2 GPU configurations).
//   - Longest-match search primitives: the brute-force linear scan the
//     paper's serial and GPU implementations use (with search statistics
//     feeding the GPU performance model), and an optional hash-chain
//     matcher (the paper's §VII "improved searching" future work).
//   - Two token-stream formats: the dense bit-packed stream of the serial
//     implementation (1 flag bit + 8-bit literal or offset/length fields)
//     and the byte-aligned stream of the GPU implementations (flag bytes
//     covering groups of eight tokens + 16-bit coded tokens).
//
// Streams produced by this package are raw token streams; framing (chunk
// tables, checksums, parameters) is added by the container in
// internal/format.
package lzss

import (
	"errors"
	"fmt"
)

// Errors shared by the decoders.
var (
	ErrCorrupt   = errors.New("lzss: corrupt token stream")
	ErrTruncated = errors.New("lzss: truncated token stream")
)

// Config parameterises the LZSS dictionary.
type Config struct {
	// Window is the sliding-window (search buffer) size in bytes: the
	// maximum back-reference distance.
	Window int
	// MaxMatch is the maximum match length a coded token can express
	// (the lookahead-buffer size in the classical formulation).
	MaxMatch int
	// MinMatch is the shortest match worth coding. Shorter runs are
	// emitted as literals; with a 16-bit coded token, a two-byte match
	// costs as much as two literals (paper §II.A.1), so MinMatch is 3.
	MinMatch int
}

// Preset configurations.

// Dipperstein returns the serial CPU configuration adapted from
// Dipperstein's reference implementation [paper ref 15]: a 4 KiB window
// with an 18-byte lookahead, 12-bit offsets and 4-bit lengths when
// bit-packed.
func Dipperstein() Config { return Config{Window: 4096, MaxMatch: 18, MinMatch: 3} }

// CULZSSV1 returns the GPU Version 1 configuration: a 128-byte window
// (paper §III.D: best performing, and it fits the 16-bit coded token),
// classical 18-byte lookahead.
func CULZSSV1() Config { return Config{Window: 128, MaxMatch: 18, MinMatch: 3} }

// CULZSSV2 returns the GPU Version 2 configuration: the same 128-byte
// window but with the extended 8-bit match-length field (lengths up to
// MinMatch+255), which is where V2's win on highly compressible data
// comes from (Table II, last row).
func CULZSSV2() Config { return Config{Window: 128, MaxMatch: 258, MinMatch: 3} }

// Validate reports whether the configuration is internally consistent and
// expressible in both token-stream formats used by this repository.
func (c Config) Validate() error {
	if c.Window < 1 {
		return fmt.Errorf("lzss: window %d < 1", c.Window)
	}
	if c.MinMatch < 2 {
		return fmt.Errorf("lzss: min match %d < 2", c.MinMatch)
	}
	if c.MaxMatch < c.MinMatch {
		return fmt.Errorf("lzss: max match %d < min match %d", c.MaxMatch, c.MinMatch)
	}
	return nil
}

// byteAlignedOK reports whether the configuration fits the byte-aligned
// 16-bit coded token (8-bit offset, 8-bit length).
func (c Config) byteAlignedOK() error {
	if c.Window > 256 {
		return fmt.Errorf("lzss: window %d does not fit the 8-bit offset field", c.Window)
	}
	if c.MaxMatch-c.MinMatch > 255 {
		return fmt.Errorf("lzss: max match %d does not fit the 8-bit length field", c.MaxMatch)
	}
	return nil
}

// Match is a back-reference into the sliding window: Length bytes starting
// Distance bytes before the current position. Distance may be smaller than
// Length (an overlapping match: the classical run-length trick).
type Match struct {
	Distance int
	Length   int
}

// ok reports whether the match is worth coding under cfg.
func (m Match) ok(cfg *Config) bool { return m.Length >= cfg.MinMatch }

// SearchStats accumulates work counters during match search. The GPU
// performance model consumes these: Comparisons is the dominant term of
// the kernels' simulated compute time.
type SearchStats struct {
	// Positions is the number of input positions for which a search ran.
	Positions int64
	// Offsets is the number of candidate window offsets visited.
	Offsets int64
	// Comparisons is the number of byte comparisons performed.
	Comparisons int64
	// Matched is the number of searches that found a codable match.
	Matched int64
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.Positions += other.Positions
	s.Offsets += other.Offsets
	s.Comparisons += other.Comparisons
	s.Matched += other.Matched
}

// LongestMatch performs the brute-force linear window scan used by the
// paper's serial implementation and both GPU kernels: every candidate
// offset in [winStart, pos) is tried, closest first, and the longest match
// wins; ties therefore prefer the shortest distance (which also makes the
// output byte-identical to HashMatcher's). The scan stops early when a
// match of the maximum expressible length is found (which is why LZSS
// flies on the highly-compressible dataset, Table I last row).
//
// winStart is the first data index the window may reference. Callers
// normally pass max(0, pos-cfg.Window); the V2 kernel passes its
// tile-anchored window start instead. Matches may overlap pos (source
// extending into the region being matched), exactly as a serial sliding
// window allows.
func LongestMatch(data []byte, pos, winStart int, cfg *Config, stats *SearchStats) Match {
	if winStart < 0 {
		winStart = 0
	}
	if lo := pos - cfg.Window; winStart < lo {
		winStart = lo
	}
	maxLen := cfg.MaxMatch
	if rem := len(data) - pos; rem < maxLen {
		maxLen = rem
	}
	if stats != nil {
		stats.Positions++
	}
	var best Match
	if maxLen < cfg.MinMatch || pos == 0 {
		return best
	}
	first := data[pos]
	var offs, cmps int64
	for start := pos - 1; start >= winStart; start-- {
		offs++
		cmps++
		if data[start] != first {
			continue
		}
		l := 1
		for l < maxLen && data[start+l] == data[pos+l] {
			l++
		}
		cmps += int64(l) // the extension compares plus the failing one fold together
		if l > best.Length {
			best = Match{Distance: pos - start, Length: l}
			if l == maxLen {
				break
			}
		}
	}
	if stats != nil {
		stats.Offsets += offs
		stats.Comparisons += cmps
		if best.ok(cfg) {
			stats.Matched++
		}
	}
	if !best.ok(cfg) {
		return Match{}
	}
	return best
}

// MaxEncodedLenBitPacked bounds the bit-packed stream size for n input
// bytes: worst case is all literals at 9 bits each, plus the final byte's
// padding.
func MaxEncodedLenBitPacked(n int, cfg Config) int {
	return (n*9+7)/8 + 1
}

// MaxEncodedLenByteAligned bounds the byte-aligned stream size for n input
// bytes: worst case is all literals, one flag byte per eight tokens.
func MaxEncodedLenByteAligned(n int) int {
	return n + (n+7)/8
}
