package gpu

import (
	"fmt"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/format"
	"culzss/internal/lzss"
)

// The paper's final §VII item: "Version 2 has additional encoding work
// left on CPU. These can be ported to GPU or hidden by overlapping
// computation".
//
// The host post-pass walks the per-position match records greedily:
// from position 0, take the recorded match (jump its length) or a
// literal (jump 1). That walk is sequential — but it is a traversal of a
// *functional graph*: every position i has exactly one successor
//
//	next(i) = i + max(1, matchLen(i) if >= MinMatch)
//
// and the token stream is exactly the set of positions reachable from 0.
// Reachability in a functional graph parallelises by pointer doubling:
// build jump tables J_k(i) = next^(2^k)(i) with log n doubling rounds
// (each a perfectly parallel pass), then grow the reachable set
// R <- R ∪ J_k(R) round by round; after round k, R holds every
// next^t(0) with t < 2^(k+1). All rounds are data-parallel scatters —
// ideal SIMT work — at the price of O(n log n) total operations versus
// the host's O(n).
//
// CompressV2GPUPost runs the V2 pipeline with this kernel doing the
// token selection; the host then only serialises the pre-selected
// tokens. Output is byte-identical to CompressV2.

// selectChunkPositions marks, for one chunk, every position the greedy
// walk visits, using the pointer-doubling rounds described above.
// matchLen holds the recorded match length per position (0/1 for none).
// The returned slice has selected[i] == true iff i starts a token.
func selectChunkPositions(b *cudasim.BlockCtx, matchLen []uint16, minMatch int) []bool {
	n := len(matchLen)
	next := make([]int32, n+1) // position n = the terminal node
	selected := make([]bool, n+1)

	// Phase 1: build next() — one parallel pass.
	b.Parallel(func(th *cudasim.ThreadCtx) {
		for i := th.Tid; i < n; i += b.NumThreads {
			step := 1
			if l := int(matchLen[i]); l >= minMatch {
				step = l
			}
			j := i + step
			if j > n {
				j = n
			}
			next[i] = int32(j)
			th.Work(4)
		}
		if th.Tid == 0 {
			next[n] = int32(n) // terminal self-loop
		}
	})
	// The frontier scatter and the doubling step alternate; each is a
	// parallel pass over all positions.
	jump := next
	selected[0] = true
	for span := 1; span < n+1; span *= 2 {
		// R <- R ∪ jump(R): parallel scatter over the whole array.
		b.Parallel(func(th *cudasim.ThreadCtx) {
			for i := th.Tid; i <= n; i += b.NumThreads {
				if selected[i] {
					selected[jump[i]] = true
				}
				th.Work(3)
				th.SharedAccess(2, 1)
			}
		})
		// jump <- jump ∘ jump (pointer doubling).
		newJump := make([]int32, n+1)
		b.Parallel(func(th *cudasim.ThreadCtx) {
			for i := th.Tid; i <= n; i += b.NumThreads {
				newJump[i] = jump[jump[i]]
				th.Work(3)
				th.SharedAccess(2, 1)
			}
		})
		jump = newJump
	}
	return selected[:n]
}

// CompressV2GPUPost is CompressV2 with the token selection executed as a
// second GPU kernel (§VII) instead of the serial host walk. The
// container is byte-identical to CompressV2's; the report's HostTime
// shrinks to the serialisation step and the kernel time grows by the
// selection rounds.
func CompressV2GPUPost(data []byte, opts Options) ([]byte, *Report, error) {
	// First run the standard V2 matching kernel by reusing CompressV2's
	// machinery up to the match records. To keep the implementations
	// honest and separate, the matching kernel runs again here with the
	// selection kernel appended per block.
	opts.fill(format.CodecCULZSSV2)
	dev := opts.device()
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Window > 256 || cfg.MaxMatch-cfg.MinMatch > 255 {
		return nil, nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", cfg)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	nChunks := len(chunks)
	tpb := opts.ThreadsPerBlock
	blocks := nChunks
	if blocks == 0 {
		blocks = 1
	}
	sharedPerBlock := cfg.Window + tpb + cfg.MaxMatch

	matchLen := make([]uint16, len(data))
	matchDist := make([]uint8, len(data))
	selectedPer := make([][]bool, nChunks)
	statsPer := make([]lzss.SearchStats, nChunks)

	gIn := cudasim.NewGlobal("input", data)
	rep, err := dev.LaunchPhased(cudasim.LaunchConfig{
		Kernel:          "culzss_v2_gpupost",
		Blocks:          blocks,
		ThreadsPerBlock: tpb,
		SharedPerBlock:  sharedPerBlock,
		Serialization:   SerializationV2,
		HostWorkers:     opts.HostWorkers,
		Context:         opts.Context,
	}, func(b *cudasim.BlockCtx) {
		if b.Index >= nChunks {
			return
		}
		chunk := chunks[b.Index]
		chunkBase := b.Index * opts.ChunkSize
		st := &statsPer[b.Index]
		staged := b.Shared(sharedPerBlock)

		for tile := 0; tile < len(chunk); tile += tpb {
			lo := tile - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := tile + tpb + cfg.MaxMatch
			if hi > len(chunk) {
				hi = len(chunk)
			}
			region := staged[:hi-lo]
			b.GlobalReadCoalesced(region, gIn, chunkBase+lo)
			b.Parallel(func(th *cudasim.ThreadCtx) {
				pos := tile + th.Tid
				if pos >= len(chunk) {
					return
				}
				sPos := pos - lo
				before := st.Comparisons
				beforeOffs := st.Offsets
				m := lzss.LongestMatch(region, sPos, sPos-cfg.Window, &cfg, st)
				matchLen[chunkBase+pos] = uint16(m.Length)
				matchDist[chunkBase+pos] = uint8(max(m.Distance-1, 0))
				cmps := st.Comparisons - before
				offs := st.Offsets - beforeOffs
				charged := cmps
				if offs > 0 && offs < int64(cfg.Window) && sPos >= cfg.Window {
					charged = cmps * int64(cfg.Window) / offs
				}
				if cap := int64(cfg.Window) * uniformScanCap; charged > cap {
					charged = cap
				}
				th.Work(charged * CyclesPerCompare)
				th.SharedAccess(charged*2, 1)
			})
		}

		// §VII: the selection, on the GPU.
		selectedPer[b.Index] = selectChunkPositions(b, matchLen[chunkBase:chunkBase+len(chunk)], cfg.MinMatch)
	})
	if err != nil {
		return nil, nil, err
	}
	if opts.Stats != nil {
		for i := range statsPer {
			opts.Stats.Add(statsPer[i])
		}
	}

	// Host: serialise the pre-selected tokens (no decision-making left).
	hostStart := time.Now()
	streams := make([][]byte, nChunks)
	for ci, chunk := range chunks {
		chunkBase := ci * opts.ChunkSize
		sel := selectedPer[ci]
		w := lzss.NewByteAlignedWriter(&cfg, len(chunk)/2+16)
		for pos := 0; pos < len(chunk); pos++ {
			if !sel[pos] {
				continue
			}
			if l := int(matchLen[chunkBase+pos]); l >= cfg.MinMatch {
				if err := w.Match(lzss.Match{Distance: int(matchDist[chunkBase+pos]) + 1, Length: l}); err != nil {
					return nil, nil, fmt.Errorf("gpu: gpupost chunk %d: %w", ci, err)
				}
			} else {
				w.Literal(chunk[pos])
			}
		}
		streams[ci] = w.Bytes()
	}
	postTime := time.Since(hostStart)

	container, concatTime := assembleContainer(format.CodecCULZSSV2, cfg, opts.ChunkSize, data, streams)
	report := &Report{
		Launch:         rep,
		H2D:            dev.TransferTime(len(data)),
		D2H:            dev.TransferTime(len(data)/8 + 3*tokenBytes(streams)),
		HostTime:       postTime + concatTime,
		HostOverlapped: opts.OverlapHost,
		InputBytes:     len(data),
		OutputBytes:    len(container),
	}
	observeReport(opts.Obs, "culzss_v2_gpupost", report)
	return container, report, nil
}

// tokenBytes sums the emitted stream lengths (the D2H volume shrinks to
// the selected tokens plus the selection bitmap).
func tokenBytes(streams [][]byte) int {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	return n
}
