package gpu

import (
	"fmt"
	"time"

	"culzss/internal/format"
	"culzss/internal/health"
)

// MultiGPUReport describes a multi-device run (§VII: "a multi GPU
// implementation can also increase the performance ... we suspect the
// division of the GPUs by threads introduced thread overhead").
type MultiGPUReport struct {
	// PerDevice holds each device's individual report (one entry per shard
	// that completed on a device; shards that degraded to the CPU under a
	// supervisor contribute no entry).
	PerDevice []*Report
	// BusTime is the serialized PCIe time: the devices share one host
	// root complex, so their copies contend.
	BusTime time.Duration
	// KernelSpan is the longest per-device kernel time (devices compute
	// concurrently).
	KernelSpan time.Duration
	// HostTime is the serial host-side assembly.
	HostTime time.Duration
	// DriverOverhead models the per-device host dispatch cost the paper
	// suspected ("thread overhead"): context switch + launch per device.
	DriverOverhead time.Duration
	InputBytes     int
	OutputBytes    int

	// Supervised-dispatch counters (all zero when Options.Health is nil):
	// Redispatched counts shards re-routed to a sibling device after a
	// failure; TimedOut counts watchdog-cut shard attempts; BreakerOpens
	// counts breaker Open transitions during the run; DegradedShards
	// counts shards the pool could not serve that fell back to the
	// byte-identical CPU encoder; Quarantined is the number of devices
	// left quarantined when the run finished.
	Redispatched, TimedOut, BreakerOpens, DegradedShards, Quarantined int
}

// SimulatedTotal composes the modeled end-to-end multi-GPU time: shared
// bus transfers serialize, kernels overlap, host work and driver
// dispatch overhead are serial.
func (r *MultiGPUReport) SimulatedTotal() time.Duration {
	return r.BusTime + r.KernelSpan + r.HostTime + r.DriverOverhead
}

// perDeviceDispatchOverhead is the modeled host cost of driving one
// additional GPU from its own host thread (context create/switch, launch
// and synchronisation churn). The paper's multi-GPU attempt saw no gains
// and suspected exactly this overhead; with 2000-era drivers a
// millisecond-scale cost per device per batch is realistic.
const perDeviceDispatchOverhead = 2 * time.Millisecond

// CompressV1MultiGPU splits the input across nGPUs simulated devices,
// compresses every shard with the V1 kernel, and reassembles one
// container. The report shows why small inputs see no speed-up: the
// shared PCIe bus serializes the transfers and the per-device dispatch
// overhead eats the kernel-time win — reproducing the paper's negative
// §VII observation — while large inputs do gain on the kernel span.
//
// Dispatch has two modes. Without a supervisor (opts.Health == nil) the
// shards are statically assigned — shard g runs on device g and the first
// failure aborts the run, attributed to its device. With a supervisor the
// assignment is dynamic: each shard prefers its home slot but any healthy
// device may serve it, a failed shard is re-dispatched to a sibling, and
// when the whole pool is quarantined the shard degrades to the
// byte-identical CPU encoder — the container is the same bytes either
// way. A cancelled opts.Context stops the run between shards.
func CompressV1MultiGPU(data []byte, opts Options, nGPUs int) ([]byte, *MultiGPUReport, error) {
	if nGPUs < 1 {
		return nil, nil, fmt.Errorf("gpu: need >= 1 GPU, got %d", nGPUs)
	}
	opts.fill(format.CodecCULZSSV1)
	base := opts.device()

	// Shard on chunk boundaries.
	chunkSize := opts.ChunkSize
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	if nChunks == 0 {
		nChunks = 1
	}
	if nGPUs > nChunks {
		nGPUs = nChunks
	}
	perGPU := (nChunks + nGPUs - 1) / nGPUs

	sup := opts.Health
	var before health.Snapshot
	if sup != nil {
		before = sup.Snapshot()
	}

	rep := &MultiGPUReport{InputBytes: len(data)}
	var allStreams [][]byte
	for g := 0; g < nGPUs; g++ {
		lo := g * perGPU * chunkSize
		if lo >= len(data) && len(data) > 0 {
			break
		}
		// A cancelled context abandons the run between shards — the
		// cleanest stopping point (the in-flight shard has already been
		// adopted or discarded whole).
		if err := opts.ctxErr(); err != nil {
			return nil, nil, fmt.Errorf("gpu: shard %d: %w", g, err)
		}
		hi := lo + perGPU*chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		shard := data[lo:hi]

		var (
			cont     []byte
			r        *Report
			degraded bool
		)
		if sup == nil {
			// Legacy fail-fast static assignment: shard g <-> device g.
			shardOpts := opts
			shardOpts.Device = base.Clone()
			var err error
			cont, r, err = CompressV1(shard, shardOpts)
			if err != nil {
				return nil, nil, fmt.Errorf("gpu: device %d: %w", g, err)
			}
		} else {
			res, err := dispatch(EngineV1{}, sup, shard, opts, g%sup.Devices(), fmt.Sprintf("shard %d", g))
			if err != nil {
				return nil, nil, err
			}
			cont, r, degraded = res.Container, res.Report, res.Degraded
		}

		h, off, err := format.ParseHeader(cont)
		if err != nil {
			return nil, nil, fmt.Errorf("gpu: device %d: reparsing shard container: %w", g, err)
		}
		payload := cont[off:]
		for _, b := range h.ChunkBounds() {
			allStreams = append(allStreams, payload[b.CompOff:b.CompOff+b.CompLen])
		}
		opts.Obs.Counter("culzss_multigpu_shards_total").Inc()
		if degraded {
			rep.DegradedShards++
			opts.Obs.Counter("culzss_multigpu_degraded_shards_total").Inc()
			continue
		}
		rep.PerDevice = append(rep.PerDevice, r)
		rep.BusTime += r.H2D + r.D2H
		if r.Launch.KernelTime > rep.KernelSpan {
			rep.KernelSpan = r.Launch.KernelTime
		}
		rep.HostTime += r.HostTime
	}
	rep.DriverOverhead = time.Duration(len(rep.PerDevice)) * perDeviceDispatchOverhead
	if sup != nil {
		// Counter deltas over this run (the supervisor's counters are
		// lifetime-global; a pool is often shared across runs).
		after := sup.Snapshot()
		rep.Redispatched = after.Redispatched - before.Redispatched
		rep.TimedOut = after.TimedOut - before.TimedOut
		rep.BreakerOpens = after.BreakerOpens - before.BreakerOpens
		rep.Quarantined = after.Quarantined
	}

	container, concat := assembleContainer(format.CodecCULZSSV1, opts.Config, chunkSize, data, allStreams)
	rep.HostTime += concat
	rep.OutputBytes = len(container)
	return container, rep, nil
}
