package gpu

import (
	"fmt"
	"time"

	"culzss/internal/format"
)

// MultiGPUReport describes a multi-device run (§VII: "a multi GPU
// implementation can also increase the performance ... we suspect the
// division of the GPUs by threads introduced thread overhead").
type MultiGPUReport struct {
	// PerDevice holds each device's individual report.
	PerDevice []*Report
	// BusTime is the serialized PCIe time: the devices share one host
	// root complex, so their copies contend.
	BusTime time.Duration
	// KernelSpan is the longest per-device kernel time (devices compute
	// concurrently).
	KernelSpan time.Duration
	// HostTime is the serial host-side assembly.
	HostTime time.Duration
	// DriverOverhead models the per-device host dispatch cost the paper
	// suspected ("thread overhead"): context switch + launch per device.
	DriverOverhead time.Duration
	InputBytes     int
	OutputBytes    int
}

// SimulatedTotal composes the modeled end-to-end multi-GPU time: shared
// bus transfers serialize, kernels overlap, host work and driver
// dispatch overhead are serial.
func (r *MultiGPUReport) SimulatedTotal() time.Duration {
	return r.BusTime + r.KernelSpan + r.HostTime + r.DriverOverhead
}

// perDeviceDispatchOverhead is the modeled host cost of driving one
// additional GPU from its own host thread (context create/switch, launch
// and synchronisation churn). The paper's multi-GPU attempt saw no gains
// and suspected exactly this overhead; with 2000-era drivers a
// millisecond-scale cost per device per batch is realistic.
const perDeviceDispatchOverhead = 2 * time.Millisecond

// CompressV1MultiGPU splits the input across nGPUs simulated devices,
// compresses every shard with the V1 kernel concurrently, and reassembles
// one container. The report shows why small inputs see no speed-up: the
// shared PCIe bus serializes the transfers and the per-device dispatch
// overhead eats the kernel-time win — reproducing the paper's negative
// §VII observation — while large inputs do gain on the kernel span.
func CompressV1MultiGPU(data []byte, opts Options, nGPUs int) ([]byte, *MultiGPUReport, error) {
	if nGPUs < 1 {
		return nil, nil, fmt.Errorf("gpu: need >= 1 GPU, got %d", nGPUs)
	}
	opts.fill(format.CodecCULZSSV1)
	base := opts.device()

	// Shard on chunk boundaries.
	chunkSize := opts.ChunkSize
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	if nChunks == 0 {
		nChunks = 1
	}
	if nGPUs > nChunks {
		nGPUs = nChunks
	}
	perGPU := (nChunks + nGPUs - 1) / nGPUs

	rep := &MultiGPUReport{InputBytes: len(data)}
	var allStreams [][]byte
	for g := 0; g < nGPUs; g++ {
		lo := g * perGPU * chunkSize
		if lo >= len(data) && len(data) > 0 {
			break
		}
		hi := lo + perGPU*chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		shard := data[lo:hi]
		shardOpts := opts
		shardOpts.Device = base.Clone()
		cont, r, err := CompressV1(shard, shardOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("gpu: device %d: %w", g, err)
		}
		h, off, err := format.ParseHeader(cont)
		if err != nil {
			return nil, nil, fmt.Errorf("gpu: device %d: reparsing shard container: %w", g, err)
		}
		payload := cont[off:]
		for _, b := range h.ChunkBounds() {
			allStreams = append(allStreams, payload[b.CompOff:b.CompOff+b.CompLen])
		}
		rep.PerDevice = append(rep.PerDevice, r)
		rep.BusTime += r.H2D + r.D2H
		if r.Launch.KernelTime > rep.KernelSpan {
			rep.KernelSpan = r.Launch.KernelTime
		}
		rep.HostTime += r.HostTime
	}
	rep.DriverOverhead = time.Duration(len(rep.PerDevice)) * perDeviceDispatchOverhead

	container, concat := assembleContainer(format.CodecCULZSSV1, opts.Config, chunkSize, data, allStreams)
	rep.HostTime += concat
	rep.OutputBytes = len(container)
	return container, rep, nil
}
