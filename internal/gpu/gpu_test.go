package gpu

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/lzss"
)

func genText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"kernel", "thread", "block", "memory", "window", "match", "buffer", "stream", "launch", "shared"}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

func genPeriodic(n int) []byte {
	return bytes.Repeat([]byte("abcdefghijklmnopqrst"), (n+19)/20)[:n]
}

func genRandom(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestV1RoundTrip(t *testing.T) {
	for name, input := range map[string][]byte{
		"text":     genText(64<<10, 1),
		"periodic": genPeriodic(32 << 10),
		"random":   genRandom(16<<10, 2),
		"small":    []byte("tiny"),
		"empty":    {},
	} {
		cont, rep, err := CompressV1(input, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Launch.Kernel != "culzss_v1" {
			t.Fatalf("%s: kernel name %q", name, rep.Launch.Kernel)
		}
		got, _, err := Decompress(cont, Options{})
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestV2RoundTrip(t *testing.T) {
	for name, input := range map[string][]byte{
		"text":     genText(64<<10, 3),
		"periodic": genPeriodic(32 << 10),
		"random":   genRandom(16<<10, 4),
		"small":    []byte("tiny"),
		"empty":    {},
		"odd_tail": genText(DefaultChunkSize+777, 5),
	} {
		cont, rep, err := CompressV2(input, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Launch.Kernel != "culzss_v2" {
			t.Fatalf("%s: kernel name %q", name, rep.Launch.Kernel)
		}
		got, _, err := Decompress(cont, Options{})
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestV1MatchesCPUReferencePerChunk pins the V1 kernel to the CPU reference
// encoder: same configuration, byte-identical streams.
func TestV1MatchesCPUReferencePerChunk(t *testing.T) {
	input := genText(3*DefaultChunkSize+123, 6)
	cont, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, off, err := format.ParseHeader(cont)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lzss.CULZSSV1()
	chunks := format.SplitChunks(input, DefaultChunkSize)
	payload := cont[off:]
	for i, b := range h.ChunkBounds() {
		want, err := lzss.EncodeByteAligned(chunks[i], cfg, lzss.SearchBrute, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := payload[b.CompOff : b.CompOff+b.CompLen]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: kernel stream differs from CPU reference", i)
		}
	}
}

// TestV2GreedyEquivalence verifies the redundant-search-plus-post-pass
// pipeline reproduces exactly the greedy serial parse: V2's stream equals
// the CPU byte-aligned encoder at the V2 configuration, chunk by chunk.
func TestV2GreedyEquivalence(t *testing.T) {
	input := genText(2*DefaultChunkSize+517, 7)
	cont, _, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, off, err := format.ParseHeader(cont)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lzss.CULZSSV2()
	chunks := format.SplitChunks(input, DefaultChunkSize)
	payload := cont[off:]
	for i, b := range h.ChunkBounds() {
		want, err := lzss.EncodeByteAligned(chunks[i], cfg, lzss.SearchBrute, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := payload[b.CompOff : b.CompOff+b.CompLen]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: V2 stream differs from greedy CPU reference", i)
		}
	}
}

func TestV2BeatsV1OnHighlyCompressible(t *testing.T) {
	// Table II, last row: V2's 8-bit lengths compress the period-20 data
	// about twice as well as V1's 18-byte lookahead.
	input := genPeriodic(128 << 10)
	v1, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(v2)) > float64(len(v1))*0.7 {
		t.Fatalf("V2 (%d) not clearly smaller than V1 (%d) on periodic data", len(v2), len(v1))
	}
}

func TestV2RedundantWorkShows(t *testing.T) {
	// §V: V2 searches every position; V1 skips over matched spans. On
	// compressible data V1 therefore visits far fewer positions.
	input := genPeriodic(64 << 10)
	var st1, st2 lzss.SearchStats
	if _, _, err := CompressV1(input, Options{Stats: &st1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CompressV2(input, Options{Stats: &st2}); err != nil {
		t.Fatal(err)
	}
	if st2.Positions < st1.Positions*3 {
		t.Fatalf("V2 positions (%d) should dwarf V1 positions (%d) on periodic data", st2.Positions, st1.Positions)
	}
}

func TestDecompressRejectsForeignContainers(t *testing.T) {
	h := &format.Header{Codec: format.CodecSerialBitPacked, MinMatch: 3, Window: 4096, Lookahead: 18}
	cont := format.AppendHeader(nil, h)
	if _, _, err := Decompress(cont, Options{}); err == nil {
		t.Fatal("accepted a serial bit-packed container")
	}
	if _, _, err := Decompress([]byte("garbage!"), Options{}); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestDecompressDetectsCorruption(t *testing.T) {
	input := genText(32<<10, 8)
	cont, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), cont...)
	corrupt[len(corrupt)-3] ^= 0x55
	if _, _, err := Decompress(corrupt, Options{}); err == nil {
		t.Fatal("accepted corrupted payload")
	}
}

func TestReportsSane(t *testing.T) {
	input := genText(128<<10, 9)
	for _, f := range []func([]byte, Options) ([]byte, *Report, error){CompressV1, CompressV2} {
		cont, rep, err := f(input, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Launch.KernelTime <= 0 || rep.H2D <= 0 || rep.D2H <= 0 {
			t.Fatalf("non-positive model times: %+v", rep)
		}
		if rep.SimulatedTotal() < rep.Launch.KernelTime {
			t.Fatal("total < kernel")
		}
		if rep.InputBytes != len(input) || rep.OutputBytes != len(cont) {
			t.Fatalf("byte counts wrong: %+v", rep)
		}
		if rep.Launch.GlobalBytes == 0 || rep.Launch.GlobalTransactions == 0 {
			t.Fatal("no global traffic recorded")
		}
		if s := rep.String(); !strings.Contains(s, "culzss_") {
			t.Fatalf("String() = %q", s)
		}
	}
}

func TestV2FasterThanV1OnText(t *testing.T) {
	// Table I shape: on ~50%-compressible text V2's uniform kernel beats
	// V1's divergent one in simulated time. The word-soup genText is too
	// repetitive to stand in for source text; use the C-files generator.
	if raceEnabled {
		t.Skip("race detector inflates the measured V2 host post-pass, distorting the model comparison")
	}
	input := datasets.CFiles(256<<10, 10)
	_, r1, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SaturatedTotal() >= r1.SaturatedTotal() {
		t.Fatalf("V2 (%v) not faster than V1 (%v) on text", r2.SaturatedTotal(), r1.SaturatedTotal())
	}
}

func TestV1FasterThanV2OnHighlyCompressible(t *testing.T) {
	// Table I shape, DE-map / highly-compressible rows: V1 skips matched
	// spans, V2 pays the redundant search for every position.
	if raceEnabled {
		t.Skip("race detector inflates the measured host steps, distorting the model comparison")
	}
	input := genPeriodic(256 << 10)
	_, r1, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.SaturatedTotal() >= r2.SaturatedTotal() {
		t.Fatalf("V1 (%v) not faster than V2 (%v) on periodic data", r1.SaturatedTotal(), r2.SaturatedTotal())
	}
}

func TestSharedMemoryAblation(t *testing.T) {
	// §III.D: moving the search buffers to shared memory bought ~30%.
	// The global-only model must be slower.
	input := genText(128<<10, 11)
	_, withShared, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, withoutShared, err := CompressV1(input, Options{DisableSharedMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if withoutShared.Launch.KernelTime <= withShared.Launch.KernelTime {
		t.Fatalf("global-only kernel (%v) not slower than shared (%v)",
			withoutShared.Launch.KernelTime, withShared.Launch.KernelTime)
	}
}

func TestBankSkewAblationOnLegacyDevice(t *testing.T) {
	dev := cudasim.FermiGTX480()
	dev.LegacyBankSemantics = true
	input := genText(64<<10, 12)
	_, skewed, err := CompressV2(input, Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	_, unskewed, err := CompressV2(input, Options{Device: dev, DisableBankSkew: true})
	if err != nil {
		t.Fatal(err)
	}
	if unskewed.Launch.SharedReplayCycles <= skewed.Launch.SharedReplayCycles {
		t.Fatalf("bank skew ablation shows no replay difference: %d vs %d",
			unskewed.Launch.SharedReplayCycles, skewed.Launch.SharedReplayCycles)
	}
	if unskewed.Launch.KernelTime <= skewed.Launch.KernelTime {
		t.Fatalf("unskewed kernel (%v) not slower than skewed (%v)",
			unskewed.Launch.KernelTime, skewed.Launch.KernelTime)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := lzss.Config{Window: 4096, MaxMatch: 18, MinMatch: 3} // window too wide for 8-bit offsets
	if _, _, err := CompressV1([]byte("x"), Options{Config: bad}); err == nil {
		t.Fatal("V1 accepted 4096-byte window")
	}
	if _, _, err := CompressV2([]byte("x"), Options{Config: bad}); err == nil {
		t.Fatal("V2 accepted 4096-byte window")
	}
}

func TestThreadsPerBlockVariants(t *testing.T) {
	input := genText(64<<10, 13)
	for _, tpb := range []int{32, 64, 128, 256} {
		opts := Options{ThreadsPerBlock: tpb}
		if tpb > 128 {
			// V1's per-thread shared buffers exceed the SM at 256+
			// threads (paper §V); it must degrade cleanly, not crash:
			// cudasim rejects shapes that cannot be resident.
			_, _, err := CompressV1(input, opts)
			if err == nil {
				// Acceptable when the device still fits it (48 KiB SM).
				continue
			}
			continue
		}
		cont, _, err := CompressV1(input, opts)
		if err != nil {
			t.Fatalf("v1 tpb=%d: %v", tpb, err)
		}
		if got, _, err := Decompress(cont, Options{}); err != nil || !bytes.Equal(got, input) {
			t.Fatalf("v1 tpb=%d round trip failed: %v", tpb, err)
		}
		cont, _, err = CompressV2(input, opts)
		if err != nil {
			t.Fatalf("v2 tpb=%d: %v", tpb, err)
		}
		if got, _, err := Decompress(cont, Options{}); err != nil || !bytes.Equal(got, input) {
			t.Fatalf("v2 tpb=%d round trip failed: %v", tpb, err)
		}
	}
}

func TestOverlapHostShortensTotal(t *testing.T) {
	input := genText(128<<10, 14)
	_, seq, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ovl, err := CompressV2(input, Options{OverlapHost: true})
	if err != nil {
		t.Fatal(err)
	}
	if ovl.SimulatedTotal() > seq.SimulatedTotal() {
		t.Fatalf("overlapped total %v exceeds sequential %v", ovl.SimulatedTotal(), seq.SimulatedTotal())
	}
}
