package gpu

import (
	"bytes"
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/lzss"
)

// testSeed returns the pinned fault seed (CULZSS_FAULT_SEED, default def)
// so the CI fault matrix and local runs inject the same schedule.
func testSeed(def int64) int64 {
	if s := os.Getenv("CULZSS_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// --- CPU fallback bit-compatibility ------------------------------------

func TestCompressV1CPUBitIdentical(t *testing.T) {
	for _, name := range []string{"cfiles", "demap"} {
		var input []byte
		if name == "cfiles" {
			input = datasets.CFiles(64<<10, 3)
		} else {
			input = datasets.DEMap(64<<10, 3)
		}
		gpuCont, _, err := CompressV1(input, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cpuCont, err := CompressV1CPU(input, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gpuCont, cpuCont) {
			t.Fatalf("%s: CPU fallback container differs from the GPU container", name)
		}
		got, _, err := Decompress(cpuCont, Options{})
		if err != nil || !bytes.Equal(got, input) {
			t.Fatalf("%s: CPU fallback round trip failed: %v", name, err)
		}
	}
}

func TestCompressV1CPURejectsOversizedConfig(t *testing.T) {
	cfg := lzss.CULZSSV1()
	cfg.Window = 512 // valid LZSS config, but does not fit the 16-bit token
	if _, err := CompressV1CPU([]byte("data"), Options{Config: cfg}); err == nil {
		t.Fatal("oversized config accepted")
	}
}

// --- launch / transfer / chunk fault sites -----------------------------

func TestLaunchFaultInjected(t *testing.T) {
	inj := faults.New(testSeed(7)).FailFirst(faults.SiteLaunch, 1)
	input := datasets.CFiles(16<<10, 5)
	_, _, err := CompressV1(input, Options{Injector: inj})
	if err == nil {
		t.Fatal("expected injected launch fault")
	}
	if !faults.IsInjected(err) || !faults.IsTransient(err) {
		t.Fatalf("fault not classified as injected+transient: %v", err)
	}
	// The site recovers: the same injector now lets the launch through.
	cont, _, err := CompressV1(input, Options{Injector: inj})
	if err != nil {
		t.Fatalf("second attempt after transient fault: %v", err)
	}
	got, _, err := Decompress(cont, Options{})
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("round trip after recovery failed: %v", err)
	}
}

func TestTransferFaultInjected(t *testing.T) {
	inj := faults.New(testSeed(7)).FailFirst(faults.SiteTransfer, 1)
	_, _, err := CompressV1(datasets.CFiles(8<<10, 5), Options{Injector: inj})
	if err == nil {
		t.Fatal("expected injected transfer fault")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("not an injected fault: %v", err)
	}
	if !strings.Contains(err.Error(), "transfer") {
		t.Fatalf("transfer fault not labelled with its site: %v", err)
	}
}

// TestDecompressChunkFaultDeterministic locks in the satellite fix: with
// a persistent chunk-site fault and many concurrent workers, the reported
// chunk index must always be the lowest one, not whichever goroutine
// won the race.
func TestDecompressChunkFaultDeterministic(t *testing.T) {
	input := datasets.CFiles(64<<10, 5)
	cont, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		inj := faults.New(testSeed(7)).Always(faults.SiteChunk)
		_, _, derr := Decompress(cont, Options{Injector: inj, HostWorkers: 8})
		if derr == nil {
			t.Fatal("expected injected chunk fault")
		}
		if !strings.Contains(derr.Error(), "chunk 0") {
			t.Fatalf("run %d: fault error is not deterministic (want chunk 0): %v", run, derr)
		}
	}
}

func TestContextCancelStopsCompression(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := CompressV1(datasets.CFiles(8<<10, 5), Options{Context: ctx})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled context not honoured: %v", err)
	}
	_, _, err = CompressV1Streamed(datasets.CFiles(8<<10, 5), Options{Context: ctx}, 2)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("streamed: cancelled context not honoured: %v", err)
	}
}

// --- multi-GPU error paths ---------------------------------------------

func TestMultiGPUShardFaultNamesDevice(t *testing.T) {
	// Two shards, launch fails only on the second launch attempt: the
	// error must be attributed to device 1.
	inj := faults.New(testSeed(7)).FailEvery(faults.SiteLaunch, 2)
	input := datasets.CFiles(32<<10, 5)
	_, _, err := CompressV1MultiGPU(input, Options{ChunkSize: 4096, Injector: inj}, 2)
	if err == nil {
		t.Fatal("expected injected shard fault")
	}
	if !strings.Contains(err.Error(), "device 1") {
		t.Fatalf("shard fault not attributed to its device: %v", err)
	}
	if !faults.IsInjected(err) {
		t.Fatalf("not an injected fault: %v", err)
	}
}

func TestMultiGPURejectsOversizedConfig(t *testing.T) {
	cfg := lzss.CULZSSV1()
	cfg.Window = 512
	_, _, err := CompressV1MultiGPU(datasets.CFiles(16<<10, 5), Options{Config: cfg}, 2)
	if err == nil {
		t.Fatal("oversized config accepted")
	}
	if !strings.Contains(err.Error(), "device 0") {
		t.Fatalf("config error not wrapped with its device: %v", err)
	}
}

func TestMultiGPUBadCounts(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, _, err := CompressV1MultiGPU([]byte("x"), Options{}, n); err == nil {
			t.Fatalf("nGPUs=%d accepted", n)
		}
	}
}

// --- hybrid error paths -------------------------------------------------

func TestHybridGPUShardFault(t *testing.T) {
	inj := faults.New(testSeed(7)).Always(faults.SiteLaunch)
	_, _, err := CompressV1Hybrid(datasets.CFiles(32<<10, 5), Options{Injector: inj}, 0.25)
	if err == nil {
		t.Fatal("expected injected fault from the hybrid GPU shard")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("not an injected fault: %v", err)
	}
}

func TestHybridBadFractions(t *testing.T) {
	for _, f := range []float64{1.01, 2} {
		if _, _, err := CompressV1Hybrid([]byte("x"), Options{}, f); err == nil {
			t.Fatalf("cpuFraction=%v accepted", f)
		}
	}
}

func TestHybridOversizedConfig(t *testing.T) {
	cfg := lzss.CULZSSV1()
	cfg.Window = 512
	// cpuFraction 0: everything goes to the GPU shard, which must reject
	// the configuration rather than emit a malformed container.
	_, _, err := CompressV1Hybrid(datasets.CFiles(16<<10, 5), Options{Config: cfg}, 0)
	if err == nil {
		t.Fatal("oversized config accepted")
	}
}
