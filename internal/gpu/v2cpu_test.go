package gpu

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/health"
	"culzss/internal/lzss"
)

func randomBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestCompressV2CPUBitIdentical is the twin contract: for every data
// shape the host encoder must reproduce the V2 kernel's container
// byte-for-byte — same tiled match records, same greedy selection, same
// header — because a stream may interleave device and degraded segments
// and parity covers exact frame bytes.
func TestCompressV2CPUBitIdentical(t *testing.T) {
	inputs := map[string][]byte{
		"empty":       {},
		"one-byte":    {0x7},
		"zeros":       make([]byte, 12<<10),
		"cfiles":      datasets.CFiles(64<<10, 9),
		"random":      randomBytes(16<<10, 10),
		"demap":       datasets.DEMap(20<<10+7, 11),
		"chunk-edge":  datasets.KernelTarball(4097, 12),
		"sub-chunk":   datasets.KernelTarball(777, 13),
		"repetitive":  bytes.Repeat([]byte("xyzzy"), 3000),
		"small-prime": datasets.Dictionary(8191, 14),
	}
	optVariants := map[string]Options{
		"defaults":  {},
		"tpb-64":    {ThreadsPerBlock: 64},
		"chunk-1k":  {ChunkSize: 1 << 10},
		"window-64": {Config: lzss.Config{Window: 64, MaxMatch: 130, MinMatch: 3}},
	}
	for dn, data := range inputs {
		for on, opts := range optVariants {
			t.Run(fmt.Sprintf("%s/%s", dn, on), func(t *testing.T) {
				want, _, err := CompressV2(data, opts)
				if err != nil {
					t.Fatalf("CompressV2: %v", err)
				}
				got, err := CompressV2CPU(data, opts)
				if err != nil {
					t.Fatalf("CompressV2CPU: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("CPU twin differs from kernel output: %d vs %d bytes", len(got), len(want))
				}
				out, _, err := Decompress(got, Options{})
				if err != nil || !bytes.Equal(out, data) {
					t.Fatalf("round trip: %v", err)
				}
				h, _, err := format.ParseHeader(got)
				if err != nil || h.Codec != format.CodecCULZSSV2 {
					t.Fatalf("twin container codec %v, err %v", h.Codec, err)
				}
			})
		}
	}
}

// TestCompressV2SupervisedRedispatchesAndDegrades exercises the generic
// dispatch ladder under the V2 engine: a dead home device redispatches
// to the healthy sibling (byte-identical output, no degrade); an
// all-dead pool degrades to CompressV2CPU, still byte-identical.
func TestCompressV2SupervisedRedispatchesAndDegrades(t *testing.T) {
	input := datasets.CFiles(48<<10, 21)
	want, _, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour})
	got, rep, degraded, err := CompressV2Supervised(input, Options{Health: sup}, 0, "v2 work")
	if err != nil {
		t.Fatal(err)
	}
	if degraded {
		t.Fatal("healthy sibling available, yet the work degraded")
	}
	if rep == nil {
		t.Fatal("device-path success returned a nil report")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("redispatched container differs from healthy single-device output")
	}
	if snap := sup.Snapshot(); snap.Redispatched == 0 {
		t.Fatalf("no redispatch recorded: %+v", snap)
	}

	allDead := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: deadDevice()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour})
	got, rep, degraded, err = CompressV2Supervised(input, Options{Health: allDead}, -1, "v2 work")
	if err != nil {
		t.Fatal(err)
	}
	if !degraded || rep != nil {
		t.Fatalf("all-dead pool: degraded=%v rep=%v, want CPU degrade", degraded, rep)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded container differs from device output — the twin is not bit-identical")
	}
}
