package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"culzss/internal/format"
	"culzss/internal/lzss"
)

// CompressV1CPU is the degrade path behind the streaming Writer's
// retry/fallback policy: a host-only encoder that produces a container
// bit-identical to CompressV1's — same chunking, same per-chunk
// byte-aligned token stream from the same brute-force search, same
// CodecCULZSSV1 header — without touching the simulated device, so no
// launch, transfer, or chunk fault site can fire. When the GPU path fails
// persistently, a segment compressed here still decodes through the
// ordinary chunk-parallel Decompress and round-trips byte-identically.
func CompressV1CPU(data []byte, opts Options) ([]byte, error) {
	opts.fill(format.CodecCULZSSV1)
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window > 256 || cfg.MaxMatch-cfg.MinMatch > 255 {
		return nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", cfg)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	streams := make([][]byte, len(chunks))
	statsPer := make([]lzss.SearchStats, len(chunks))

	workers := opts.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var rec faultRecorder
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				if rec.tripped() {
					continue
				}
				comp, err := lzss.EncodeByteAligned(chunks[ci], cfg, lzss.SearchBrute, &statsPer[ci])
				if err != nil {
					rec.record(ci, fmt.Errorf("gpu: cpu-fallback chunk %d: %w", ci, err))
					continue
				}
				streams[ci] = comp
			}
		}()
	}
	for ci := range chunks {
		next <- ci
	}
	close(next)
	wg.Wait()
	if err := rec.error(); err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		for i := range statsPer {
			opts.Stats.Add(statsPer[i])
		}
	}

	container, _ := assembleContainer(format.CodecCULZSSV1, cfg, opts.ChunkSize, data, streams)
	return container, nil
}
