package gpu

import (
	"fmt"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/format"
)

// CompressV1Streamed is the §VII streaming extension: the input is split
// into stream slices processed through Fermi's concurrent copy-and-execute
// pipeline, so slice i+1's host-to-device copy overlaps slice i's kernel.
// Functionally the output container is identical to CompressV1's (the
// slices are split on chunk boundaries); only the simulated schedule
// changes. The report's H2D/D2H are folded into the pipelined kernel
// span, and HostTime remains the serial concatenation.
func CompressV1Streamed(data []byte, opts Options, streams int) ([]byte, *Report, error) {
	// Validate everything before the empty-input early return so bad
	// stream counts and bad configs error consistently for every input.
	if streams < 1 {
		return nil, nil, fmt.Errorf("gpu: need >= 1 stream, got %d", streams)
	}
	opts.fill(format.CodecCULZSSV1)
	if err := opts.Config.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Config.Window > 256 || opts.Config.MaxMatch-opts.Config.MinMatch > 255 {
		return nil, nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", opts.Config)
	}
	if len(data) == 0 {
		return CompressV1(data, opts)
	}
	// streams == 1 still goes through the pipeline path below so every
	// stream count reports on the same (saturated-slice) scheduling basis.

	// Slice on chunk boundaries so every chunk lands in exactly one
	// stream (the paper: "divide the input data into chunks of powers of
	// two sizes" — any chunk-aligned split preserves the output).
	chunkSize := opts.ChunkSize
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	if streams > nChunks {
		streams = nChunks
	}
	perStream := (nChunks + streams - 1) / streams

	var stages []cudasim.PipelineStage
	var allStreams [][]byte
	var hostTotal time.Duration
	var launch *cudasim.LaunchReport

	for s := 0; s < streams; s++ {
		// A cancelled context abandons the pipeline between slices — the
		// cleanest point to stop a stuck stream (§VII's queue would drain
		// the in-flight slice the same way).
		if err := opts.ctxErr(); err != nil {
			return nil, nil, fmt.Errorf("gpu: stream %d: %w", s, err)
		}
		lo := s * perStream * chunkSize
		if lo >= len(data) {
			break
		}
		hi := lo + perStream*chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		slice := data[lo:hi]
		var (
			cont     []byte
			rep      *Report
			degraded bool
			err      error
		)
		if opts.Health != nil {
			// Supervised: the slice rides the device pool (redispatch on
			// failure, CPU degrade when the pool is out) so one sick
			// device cannot stall the stream.
			var res dispatchResult
			res, err = dispatch(EngineV1{}, opts.Health, slice, opts, -1, fmt.Sprintf("stream %d", s))
			cont, rep, degraded = res.Container, res.Report, res.Degraded
		} else {
			cont, rep, err = CompressV1(slice, opts)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("gpu: stream %d: %w", s, err)
		}
		// Unwrap the per-slice container back into raw chunk streams so
		// one final container covers the whole input.
		h, off, err := format.ParseHeader(cont)
		if err != nil {
			return nil, nil, fmt.Errorf("gpu: stream %d: reparsing slice container: %w", s, err)
		}
		payload := cont[off:]
		for _, b := range h.ChunkBounds() {
			allStreams = append(allStreams, payload[b.CompOff:b.CompOff+b.CompLen])
		}
		opts.Obs.Counter("culzss_streamed_slices_total").Inc()
		if degraded {
			// A CPU-encoded slice contributes no pipeline stage and no
			// launch counters; the bytes are identical regardless.
			opts.Obs.Counter("culzss_streamed_degraded_slices_total").Inc()
			continue
		}
		// Saturated slice kernel times: wave-granularity artifacts of
		// slicing (16 blocks over 15 SMs leaving one SM double-loaded)
		// are scheduling noise a real stream queue backfills away.
		stages = append(stages, cudasim.PipelineStage{
			H2D: rep.H2D, Kernel: rep.Launch.SaturatedKernelTime, D2H: rep.D2H,
		})
		hostTotal += rep.HostTime
		if launch == nil {
			launch = rep.Launch
		} else {
			accumulate(launch, rep.Launch)
		}
	}

	container, concat := assembleContainer(format.CodecCULZSSV1, opts.Config, chunkSize, data, allStreams)
	if launch == nil {
		// Every slice degraded to the CPU: synthesize an empty launch so
		// the report shape stays uniform.
		launch = &cudasim.LaunchReport{Kernel: "culzss_v1 (degraded)"}
	}
	pipelined := cudasim.PipelineSchedule(stages)
	// Fold the whole pipelined span into KernelTime so SimulatedTotal
	// (which would re-add transfer terms) sees zero separate transfers.
	launch.KernelTime = pipelined
	launch.SaturatedKernelTime = pipelined
	report := &Report{
		Launch:      launch,
		H2D:         0,
		D2H:         0,
		HostTime:    hostTotal + concat,
		InputBytes:  len(data),
		OutputBytes: len(container),
	}
	return container, report, nil
}

// accumulate folds counters of b into a (used when composing multi-launch
// runs into one report).
func accumulate(a, b *cudasim.LaunchReport) {
	a.Blocks += b.Blocks
	a.WarpCycles += b.WarpCycles
	a.MemStallCycles += b.MemStallCycles
	a.GlobalTransactions += b.GlobalTransactions
	a.GlobalBytes += b.GlobalBytes
	a.SharedAccesses += b.SharedAccesses
	a.SharedReplayCycles += b.SharedReplayCycles
	a.WallTime += b.WallTime
	a.KernelTime += b.KernelTime
	a.SaturatedKernelTime += b.SaturatedKernelTime
}
