package gpu

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"culzss/internal/format"
	"culzss/internal/lzss"
)

// CompressV1Hybrid is the §VII heterogeneous extension: "a combined CPU
// and GPU heterogeneous implementation can give benefits for the
// execution time". A fraction of the chunks is compressed by host worker
// goroutines (the pthread path, at the CULZSS configuration so the output
// stream is identical) while the rest runs on the simulated GPU; the two
// halves proceed concurrently and the container stitches the chunk
// streams back in order.
//
// cpuFraction in [0,1] is the share of chunks given to the CPU; a
// negative value asks for an automatic split from a quick throughput
// probe of both sides.
type HybridReport struct {
	// GPU is the device report of the GPU share; nil when the share was
	// empty or (under a supervisor) degraded to the CPU encoder.
	GPU *Report
	// CPUTime is the measured host compression time of the CPU share.
	CPUTime time.Duration
	// CPUFraction is the share of chunks the CPU processed.
	CPUFraction float64
	// ProbeErr records why the automatic split probe fell back to an
	// all-GPU split ("" when the probe succeeded or was not requested).
	// The probe is advisory — its failure must not fail the run — but it
	// must not be silent either: a probe that dies on the same fault that
	// will kill the main run is the earliest available signal.
	ProbeErr string
	// GPUDegraded reports that the GPU share was encoded by the
	// byte-identical CPU fallback because the supervisor's pool was
	// exhausted (always false without a supervisor).
	GPUDegraded bool
	InputBytes  int
	OutputBytes int
}

// SimulatedTotal overlaps the CPU share with the simulated GPU share.
func (r *HybridReport) SimulatedTotal() time.Duration {
	gpuTime := time.Duration(0)
	if r.GPU != nil {
		gpuTime = r.GPU.SimulatedTotal()
	}
	if r.CPUTime > gpuTime {
		return r.CPUTime
	}
	return gpuTime
}

// CompressV1Hybrid splits the chunk range between CPU workers and the V1
// kernel.
func CompressV1Hybrid(data []byte, opts Options, cpuFraction float64) ([]byte, *HybridReport, error) {
	if cpuFraction > 1 {
		return nil, nil, fmt.Errorf("gpu: cpu fraction %v > 1", cpuFraction)
	}
	opts.fill(format.CodecCULZSSV1)
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}

	var probeErr string
	if cpuFraction < 0 {
		cpuFraction, probeErr = autoSplit(data, opts)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	nCPU := int(float64(len(chunks)) * cpuFraction)
	if nCPU > len(chunks) {
		nCPU = len(chunks)
	}
	// The CPU takes the tail so the GPU shard stays chunk-aligned at 0.
	gpuData := data[:max(0, len(data)-sumLen(chunks[len(chunks)-nCPU:]))]

	rep := &HybridReport{InputBytes: len(data), CPUFraction: cpuFraction, ProbeErr: probeErr}
	streams := make([][]byte, len(chunks))

	var wg sync.WaitGroup
	var gpuErr, cpuErr error
	wg.Add(1)
	go func() { // CPU share: worker goroutines over the tail chunks.
		defer wg.Done()
		start := time.Now()
		workers := opts.HostWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sem := make(chan struct{}, workers)
		var cwg sync.WaitGroup
		var mu sync.Mutex
		for i := len(chunks) - nCPU; i < len(chunks); i++ {
			// A cancelled context abandons the CPU share between chunks
			// (the queued-up workers drain; nothing partial is kept).
			if err := opts.ctxErr(); err != nil {
				mu.Lock()
				if cpuErr == nil {
					cpuErr = fmt.Errorf("gpu: hybrid cpu chunk %d: %w", i, err)
				}
				mu.Unlock()
				break
			}
			cwg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer cwg.Done()
				defer func() { <-sem }()
				s, err := lzss.EncodeByteAligned(chunks[i], cfg, lzss.SearchBrute, nil)
				if err != nil {
					mu.Lock()
					if cpuErr == nil {
						cpuErr = err
					}
					mu.Unlock()
					return
				}
				streams[i] = s
			}(i)
		}
		cwg.Wait()
		rep.CPUTime = time.Since(start)
	}()

	if len(gpuData) > 0 {
		var (
			cont []byte
			r    *Report
			err  error
		)
		if opts.Health != nil {
			// Supervised: the GPU share rides the device pool with
			// redispatch and CPU degrade, so a sick device cannot fail
			// the hybrid run.
			var res dispatchResult
			res, err = dispatch(EngineV1{}, opts.Health, gpuData, opts, -1, "hybrid gpu shard")
			cont, r, rep.GPUDegraded = res.Container, res.Report, res.Degraded
		} else {
			cont, r, err = CompressV1(gpuData, opts)
		}
		if err != nil {
			gpuErr = err
		} else {
			h, off, perr := format.ParseHeader(cont)
			if perr != nil {
				gpuErr = fmt.Errorf("gpu: hybrid gpu shard: reparsing container: %w", perr)
			} else {
				payload := cont[off:]
				for i, b := range h.ChunkBounds() {
					streams[i] = payload[b.CompOff : b.CompOff+b.CompLen]
				}
				rep.GPU = r
			}
		}
	}
	wg.Wait()
	if gpuErr != nil {
		return nil, nil, gpuErr
	}
	if cpuErr != nil {
		return nil, nil, cpuErr
	}

	container, _ := assembleContainer(format.CodecCULZSSV1, cfg, opts.ChunkSize, data, streams)
	rep.OutputBytes = len(container)
	opts.Obs.Counter("culzss_hybrid_runs_total").Inc()
	if rep.GPUDegraded {
		opts.Obs.Counter("culzss_hybrid_gpu_degraded_total").Inc()
	}
	return container, rep, nil
}

// autoSplit probes both sides on a small sample and returns the CPU share
// that balances their finish times, plus a non-empty probe-failure
// description when either side's probe died (the split then defaults to
// all-GPU — advisory probe, surfaced not swallowed).
func autoSplit(data []byte, opts Options) (frac float64, probeErr string) {
	sample := data
	if len(sample) > 128<<10 {
		sample = sample[:128<<10]
	}
	if len(sample) == 0 {
		return 0, ""
	}
	start := time.Now()
	if _, err := lzss.EncodeByteAligned(sample, opts.Config, lzss.SearchBrute, nil); err != nil {
		return 0, fmt.Sprintf("cpu probe: %v", err)
	}
	cpuT := time.Since(start)
	_, rep, err := CompressV1(sample, opts)
	if err != nil {
		return 0, fmt.Sprintf("gpu probe: %v", err)
	}
	gpuT := rep.SaturatedTotal()
	// Split inversely proportional to the per-byte times.
	c, g := float64(cpuT), float64(gpuT)
	if c+g == 0 {
		return 0, ""
	}
	frac = g / (c + g)
	if frac < 0.05 {
		frac = 0
	}
	if frac > 0.95 {
		frac = 0.95
	}
	return frac, ""
}

func sumLen(chunks [][]byte) int {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	return n
}
