package gpu

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/health"
)

// deadDevice returns a device whose every launch fails.
func deadDevice() *cudasim.Device {
	d := cudasim.FermiGTX480()
	d.LaunchHook = func(ctx context.Context, kernel string) error {
		return errors.New("injected: device fell off the bus")
	}
	return d
}

// hangDevice returns a device whose every launch hangs until the
// caller's context is cancelled — the wedged-kernel failure mode. The
// hang goes through the fault-injection layer's latency rule so the
// production plumbing (hook -> FaultCtx -> timer vs ctx) is what the
// watchdog actually cuts.
func hangDevice(seed int64) *cudasim.Device {
	d := cudasim.FermiGTX480()
	inj := faults.New(seed).Hang(faults.SiteLaunch, time.Hour)
	d.LaunchHook = inj.LaunchHook()
	return d
}

// --- multi-GPU supervised dispatch -------------------------------------

func TestMultiGPUSupervisedSurvivesDeadDevice(t *testing.T) {
	input := datasets.CFiles(96<<10, 31)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour})

	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("supervised multi-GPU container differs from healthy single-device output")
	}
	if rep.Redispatched == 0 {
		t.Fatalf("no redispatch recorded: %+v", rep)
	}
	if rep.BreakerOpens == 0 || rep.Quarantined != 1 {
		t.Fatalf("breaker bookkeeping: %+v", rep)
	}
	if rep.DegradedShards != 0 {
		t.Fatalf("healthy sibling available, yet %d shards degraded", rep.DegradedShards)
	}
	if sup.State(0) != health.Open {
		t.Fatalf("dead device state %v, want open", sup.State(0))
	}
	out, _, err := Decompress(got, Options{})
	if err != nil || !bytes.Equal(out, input) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestMultiGPUSupervisedWatchdogCutsHungDevice(t *testing.T) {
	input := datasets.CFiles(64<<10, 32)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: hangDevice(testSeed(7))},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Deadline: 2 * time.Second})

	start := time.Now()
	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup}, 2)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("container differs from healthy single-device output")
	}
	if rep.TimedOut == 0 {
		t.Fatalf("hung launch was not watchdog-cut: %+v", rep)
	}
	// The hang is injected at one hour; completion in test time proves
	// the watchdog cut it at its deadline, not the test runner's.
	if elapsed > 30*time.Second {
		t.Fatalf("run took %v; the hang leaked past the watchdog", elapsed)
	}
	var timedOut bool
	for _, ev := range sup.Events() {
		if ev.To == health.Open && strings.Contains(ev.Cause, "watchdog timeout") {
			timedOut = true
		}
	}
	if !timedOut {
		t.Fatalf("logbook lacks a watchdog-caused open: %v", sup.Events())
	}
}

func TestMultiGPUSupervisedChaosMix(t *testing.T) {
	// The acceptance scenario: one device fails every launch, one hangs;
	// only the third is healthy. Output must match the healthy
	// single-device container exactly.
	input := datasets.DEMap(96<<10, 33)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: hangDevice(testSeed(7))},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Deadline: 2 * time.Second})

	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chaos-mix container differs from healthy output")
	}
	if rep.Redispatched == 0 || rep.TimedOut == 0 || rep.Quarantined != 2 {
		t.Fatalf("chaos counters: %+v", rep)
	}
}

func TestMultiGPUAllDevicesSickDegradesToCPU(t *testing.T) {
	input := datasets.CFiles(48<<10, 34)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: deadDevice()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour})

	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded container differs from GPU output (CPU fallback must be byte-identical)")
	}
	if rep.DegradedShards == 0 {
		t.Fatalf("expected degraded shards with the whole pool dead: %+v", rep)
	}
	if len(rep.PerDevice) != 0 {
		t.Fatalf("no device completed a shard, yet PerDevice has %d entries", len(rep.PerDevice))
	}
	snap := sup.Snapshot()
	if snap.Quarantined != 2 {
		t.Fatalf("pool snapshot: %+v", snap)
	}
}

func TestMultiGPUQuarantinedDeviceReprobes(t *testing.T) {
	// A device that fails its first two launches then recovers: the
	// breaker opens, quarantine elapses, a half-open probe succeeds and
	// the device rejoins the pool.
	flaky := cudasim.FermiGTX480()
	inj := faults.New(testSeed(7)).FailFirst(faults.SiteLaunch, 2)
	flaky.LaunchHook = inj.LaunchHook()
	sup := health.NewSupervisor([]health.DeviceSlot{{Device: flaky}},
		health.Policy{Threshold: 1, OpenFor: 10 * time.Millisecond})

	input := datasets.CFiles(16<<10, 35)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First run: the only device fails, opens, and the shard degrades.
	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup}, 1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("first run: err=%v identical=%v", err, bytes.Equal(got, want))
	}
	if rep.DegradedShards != 1 {
		t.Fatalf("first run should degrade: %+v", rep)
	}
	time.Sleep(20 * time.Millisecond) // quarantine elapses
	// Second run probes the recovered device (injection budget spent on
	// run one's attempt + the ladder's retry) and closes the breaker.
	for i := 0; i < 3 && sup.State(0) != health.Closed; i++ {
		got, _, err = CompressV1MultiGPU(input, Options{Health: sup}, 1)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reprobe run %d: err=%v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sup.State(0) != health.Closed {
		t.Fatalf("recovered device state %v, want closed; events: %v", sup.State(0), sup.Events())
	}
	var sawHalfOpen bool
	for _, ev := range sup.Events() {
		if ev.To == health.HalfOpen {
			sawHalfOpen = true
		}
	}
	if !sawHalfOpen {
		t.Fatalf("logbook lacks half-open transition: %v", sup.Events())
	}
}

func TestMultiGPUCancelBetweenShards(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := datasets.CFiles(32<<10, 36)
	_, _, err := CompressV1MultiGPU(input, Options{Context: ctx}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// --- hybrid -------------------------------------------------------------

func TestHybridAutoSplitSurfacesProbeError(t *testing.T) {
	// The probe's CompressV1 is the first launch; FailFirst(1) kills
	// exactly it. The run itself must still succeed (probe is advisory)
	// with an all-GPU split and the failure surfaced in the report.
	inj := faults.New(testSeed(7)).FailFirst(faults.SiteLaunch, 1)
	input := datasets.CFiles(48<<10, 37)
	cont, rep, err := CompressV1Hybrid(input, Options{Injector: inj}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeErr == "" {
		t.Fatal("probe failure was swallowed: ProbeErr empty")
	}
	if !strings.Contains(rep.ProbeErr, "gpu probe") {
		t.Fatalf("ProbeErr = %q, want the gpu probe named", rep.ProbeErr)
	}
	if rep.CPUFraction != 0 {
		t.Fatalf("failed probe must default to all-GPU, got fraction %v", rep.CPUFraction)
	}
	out, _, err := Decompress(cont, Options{})
	if err != nil || !bytes.Equal(out, input) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestHybridSupervisedDegradesGPUShare(t *testing.T) {
	input := datasets.CFiles(64<<10, 38)
	want, _, err := CompressV1Hybrid(input, Options{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup := health.NewSupervisor([]health.DeviceSlot{{Device: deadDevice()}},
		health.Policy{Threshold: 1, OpenFor: time.Hour})
	got, rep, err := CompressV1Hybrid(input, Options{Health: sup}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GPUDegraded {
		t.Fatalf("dead pool: GPUDegraded = false, report %+v", rep)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded hybrid container differs from healthy output")
	}
}

func TestHybridCancelBetweenChunks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := datasets.CFiles(64<<10, 39)
	_, _, err := CompressV1Hybrid(input, Options{Context: ctx}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// --- streamed -----------------------------------------------------------

func TestStreamedSupervisedSurvivesDeadDevice(t *testing.T) {
	input := datasets.CFiles(96<<10, 40)
	want, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour})
	got, _, err := CompressV1Streamed(input, Options{Health: sup}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("supervised streamed container differs from plain V1")
	}
	if sup.Snapshot().Redispatched == 0 {
		t.Fatal("dead device never triggered a redispatch")
	}
}
