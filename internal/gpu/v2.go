package gpu

import (
	"fmt"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/format"
	"culzss/internal/lzss"
)

// CompressV2 runs the CULZSS Version 2 kernel: one block per 4 KiB chunk,
// one thread per lookahead position, with the redundant all-positions
// window search and the serial host post-pass that selects the surviving
// tokens and generates the encoding flags (paper §III.B.2–3).
func CompressV2(data []byte, opts Options) ([]byte, *Report, error) {
	opts.fill(format.CodecCULZSSV2)
	dev := opts.device()
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Window > 256 || cfg.MaxMatch-cfg.MinMatch > 255 {
		return nil, nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", cfg)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	nChunks := len(chunks)
	tpb := opts.ThreadsPerBlock
	blocks := nChunks
	if blocks == 0 {
		blocks = 1
	}

	// Shared staging per tile: window + tile + lookahead extension
	// (§III.B.2: "we extended both search window and uncoded buffers with
	// the expected data for each thread").
	sharedPerBlock := cfg.Window + tpb + cfg.MaxMatch
	if opts.DisableSharedMemory {
		sharedPerBlock = 0
	}

	// The bank-conflict degree of the window-scan access pattern. With
	// the paper's four-character stagger each lane starts its linear scan
	// four bytes apart (stride 4); without it, lanes walk byte-adjacent
	// addresses (stride 1). Only legacy bank semantics distinguish them.
	stride := 4
	if opts.DisableBankSkew {
		stride = 1
	}
	conflictDegree := dev.BankConflictDegree(stride)

	gIn := cudasim.NewGlobal("input", data)
	// Per-position match records, device-resident, written coalesced and
	// copied back for the host pass (two byte arrays: length, distance).
	matchLen := make([]uint16, len(data))
	matchDist := make([]uint8, len(data))
	statsPer := make([]lzss.SearchStats, nChunks)

	rep, err := dev.LaunchPhased(cudasim.LaunchConfig{
		Kernel:          "culzss_v2",
		Blocks:          blocks,
		ThreadsPerBlock: tpb,
		SharedPerBlock:  sharedPerBlock,
		Serialization:   SerializationV2,
		HostWorkers:     opts.HostWorkers,
		Context:         opts.Context,
	}, func(b *cudasim.BlockCtx) {
		if b.Index >= nChunks {
			return
		}
		chunk := chunks[b.Index]
		chunkBase := b.Index * opts.ChunkSize
		st := &statsPer[b.Index]

		var staged []byte
		if !opts.DisableSharedMemory {
			staged = b.Shared(sharedPerBlock)
		}

		for tile := 0; tile < len(chunk); tile += tpb {
			lo := tile - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := tile + tpb + cfg.MaxMatch
			if hi > len(chunk) {
				hi = len(chunk)
			}
			// Stage [lo, hi) of the chunk: one coalesced block-wide read
			// (each thread loads consecutive bytes, §III.D's single
			// 128-byte transaction per 128 threads).
			region := chunk[lo:hi]
			if staged != nil {
				b.GlobalReadCoalesced(staged[:len(region)], gIn, chunkBase+lo)
				region = staged[:len(region)]
			}

			b.Parallel(func(th *cudasim.ThreadCtx) {
				pos := tile + th.Tid
				if pos >= len(chunk) {
					return
				}
				sPos := pos - lo
				before := *st
				// Each thread sees exactly the serial window: the
				// cfg.Window bytes before its position, all inside the
				// staged region. Matches may extend into the staged
				// lookahead extension but never past the chunk.
				m := lzss.LongestMatch(region, sPos, sPos-cfg.Window, &cfg, st)
				matchLen[chunkBase+pos] = uint16(m.Length)
				matchDist[chunkBase+pos] = uint8(max(m.Distance-1, 0))

				// Cost model: the real V2 lanes scan the whole window in
				// lockstep — "all the threads compare the same number of
				// characters" (§III.B.2) — with no early exit. The
				// functional search above early-exits once a maximal
				// match is found (the result is identical), so the charge
				// is extrapolated to the uniform full scan: the measured
				// comparisons scaled to all window offsets, bounded by
				// the staging budget of one lane's scan.
				cmps := st.Comparisons - before.Comparisons
				offs := st.Offsets - before.Offsets
				charged := cmps
				if offs > 0 && offs < int64(cfg.Window) && sPos >= cfg.Window {
					charged = cmps * int64(cfg.Window) / offs
				}
				// The staging budget bounds one lane's lockstep scan
				// regardless of how far individual extensions could run.
				if cap := int64(cfg.Window) * uniformScanCap; charged > cap {
					charged = cap
				}
				th.Work(charged * CyclesPerCompare)
				if opts.DisableSharedMemory {
					// Ablation: un-staged searches issue from global.
					th.Work(charged * 2)
					th.GlobalAccess(charged/4+1, charged*2)
				} else {
					th.SharedAccess(charged*2, conflictDegree)
				}
			})

			// Write the tile's match records back, coalesced: two bytes
			// per position across consecutive addresses.
			n := tpb
			if tile+n > len(chunk) {
				n = len(chunk) - tile
			}
			b.Parallel(func(th *cudasim.ThreadCtx) {
				if th.Tid == 0 {
					th.GlobalAccess(cudasim.CoalescedTransactions(chunkBase+tile, 1, 3, n), int64(3*n))
				}
			})
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if opts.Stats != nil {
		for i := range statsPer {
			opts.Stats.Add(statsPer[i])
		}
	}

	// --- Host post-pass (§III.B.3) ---
	// The matching phase ran for every character, so the redundant
	// searches are eliminated here: a serial greedy walk keeps a coded
	// token where the recorded match is long enough, skips the positions
	// it covers, and generates the flags.
	hostStart := time.Now()
	streams := make([][]byte, nChunks)
	for ci, chunk := range chunks {
		chunkBase := ci * opts.ChunkSize
		w := lzss.NewByteAlignedWriter(&cfg, len(chunk)/2+16)
		for pos := 0; pos < len(chunk); {
			l := int(matchLen[chunkBase+pos])
			if l >= cfg.MinMatch {
				if err := w.Match(lzss.Match{
					Distance: int(matchDist[chunkBase+pos]) + 1,
					Length:   l,
				}); err != nil {
					return nil, nil, fmt.Errorf("gpu: v2 chunk %d: %w", ci, err)
				}
				pos += l
			} else {
				w.Literal(chunk[pos])
				pos++
			}
		}
		streams[ci] = w.Bytes()
	}
	postTime := time.Since(hostStart)

	container, concatTime := assembleContainer(format.CodecCULZSSV2, cfg, opts.ChunkSize, data, streams)
	report := &Report{
		Launch: rep,
		H2D:    dev.TransferTime(len(data)),
		// D2H copies the per-position match records (3 bytes each).
		D2H:            dev.TransferTime(3 * len(data)),
		HostTime:       postTime + concatTime,
		HostOverlapped: opts.OverlapHost,
		InputBytes:     len(data),
		OutputBytes:    len(container),
	}
	observeReport(opts.Obs, "culzss_v2", report)
	return container, report, nil
}
