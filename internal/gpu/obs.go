package gpu

import (
	"errors"
	"strconv"

	"culzss/internal/health"
	"culzss/internal/obs"
)

// SimStageSecondsMetric is the histogram family the *modeled* device
// times observe into, labelled {stage="kernel"|"h2d"|"d2h"}. It is
// deliberately separate from obs.StageSecondsMetric: that family carries
// measured wall-clock spans, this one carries the simulator's
// deterministic schedule, and mixing the two bases in one family would
// make every quantile meaningless.
const SimStageSecondsMetric = "culzss_sim_stage_seconds"

// observeReport mirrors one finished device run into the registry: a
// launch counter per kernel, the modeled kernel/transfer stage
// histograms, and the measured host step as a wall-clock "post-pass"
// span. Nil registry or nil report is a no-op.
func observeReport(reg *obs.Registry, op string, rep *Report) {
	if reg == nil || rep == nil {
		return
	}
	reg.SetHelp("culzss_gpu_launches_total", "Kernel launches completed, by kernel name.")
	reg.SetHelp(SimStageSecondsMetric, "Modeled (simulated) device time per stage.")
	reg.Counter("culzss_gpu_launches_total", obs.L("kernel", rep.Launch.Kernel)).Inc()
	reg.Histogram(SimStageSecondsMetric, obs.L("stage", "kernel")).Observe(rep.Launch.KernelTime.Seconds())
	reg.Histogram(SimStageSecondsMetric, obs.L("stage", "h2d")).Observe(rep.H2D.Seconds())
	reg.Histogram(SimStageSecondsMetric, obs.L("stage", "d2h")).Observe(rep.D2H.Seconds())
	reg.Tracer().Record(obs.Span{Op: op, Stage: "post-pass", Device: -1, Duration: rep.HostTime})
}

// observeDispatch wraps dispatchV1's pool walk in a "dispatch" span
// annotated with the attempt count and the retry/degrade/timeout
// outcome, and keeps the dispatch counters. res.Device is -1 for a CPU
// degrade, matching the span convention.
func observeDispatch(reg *obs.Registry, op string, res dispatchResult, err error, sp *obs.ActiveSpan) {
	if reg == nil {
		return
	}
	reg.SetHelp("culzss_dispatch_degraded_total", "Supervised dispatches that fell back to the CPU encoder.")
	if res.Degraded {
		reg.Counter("culzss_dispatch_degraded_total").Inc()
		sp.Annotate("degraded", "true")
	}
	if res.Attempts > 0 {
		sp.Annotate("attempts", strconv.Itoa(res.Attempts))
	}
	if res.TimedOut > 0 {
		sp.Annotate("timeouts", strconv.Itoa(res.TimedOut))
	}
	sp.SetDevice(res.Device).End(err)
}

// isTimeout reports whether err is (or wraps) a watchdog cut.
func isTimeout(err error) bool {
	var te *health.TimeoutError
	return errors.As(err, &te)
}
