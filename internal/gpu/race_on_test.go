//go:build race

package gpu

// raceEnabled reports whether the race detector is compiled in. The
// timing-shape tests comparing V1 and V2 fold a *measured* host step into
// the simulated total; the detector's ~10x instrumentation overhead on
// that real CPU work distorts the comparison, so those assertions skip
// under -race (functional round-trip coverage still runs).
const raceEnabled = true
