package gpu

import (
	"fmt"

	"culzss/internal/cudasim"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/lzss"
)

// Decompress expands a CULZSS container with the chunk-parallel GPU
// decoder (paper §III.C): the per-chunk compressed-size list recorded at
// compression time tells each thread which slice of the payload decodes
// into which slice of the output, so chunks decode independently. Both
// CULZSS versions share this decoder ("the decompression process is
// identical in both versions").
func Decompress(container []byte, opts Options) ([]byte, *Report, error) {
	return DecompressInto(nil, container, opts)
}

// DecompressInto is Decompress with allocation control: when dst has the
// capacity for the decoded output it is overwritten and returned
// (resliced to the decoded length), otherwise a fresh buffer is
// allocated. The streaming Reader leases dst from a recycle pool, so
// steady-state segment decode performs no per-segment output allocation.
func DecompressInto(dst []byte, container []byte, opts Options) ([]byte, *Report, error) {
	h, off, err := format.ParseHeader(container)
	if err != nil {
		return nil, nil, err
	}
	switch h.Codec {
	case format.CodecCULZSSV1, format.CodecCULZSSV2:
	default:
		return nil, nil, fmt.Errorf("gpu: container holds %v, not a CULZSS stream", h.Codec)
	}
	cfg := lzss.Config{Window: h.Window, MaxMatch: h.Lookahead, MinMatch: int(h.MinMatch)}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	opts.fill(h.Codec)
	if err := opts.ctxErr(); err != nil {
		return nil, nil, err
	}
	dev := opts.device()

	payload := container[off:]
	bounds := h.ChunkBounds()
	var out []byte
	if cap(dst) >= h.OriginalLen {
		out = dst[:h.OriginalLen]
	} else {
		out = make([]byte, h.OriginalLen)
	}
	tpb := opts.ThreadsPerBlock
	blocks := (len(bounds) + tpb - 1) / tpb
	if blocks == 0 {
		blocks = 1
	}

	var rec faultRecorder
	if err := opts.transferFault("h2d"); err != nil {
		return nil, nil, err
	}
	rep, err := dev.LaunchPhased(cudasim.LaunchConfig{
		Kernel:          "culzss_decompress",
		Blocks:          blocks,
		ThreadsPerBlock: tpb,
		Serialization:   SerializationDecode,
		HostWorkers:     opts.HostWorkers,
		Context:         opts.Context,
	}, func(b *cudasim.BlockCtx) {
		base := b.Index * tpb
		b.Parallel(func(th *cudasim.ThreadCtx) {
			ci := base + th.Tid
			if ci >= len(bounds) || rec.tripped() {
				return // early abort: a recorded fault voids the launch
			}
			if ierr := opts.Injector.Fault(faults.SiteChunk); ierr != nil {
				rec.record(ci, fmt.Errorf("gpu: chunk %d: %w", ci, ierr))
				return
			}
			bd := bounds[ci]
			// Decode in place: the three-index subslice pins the append
			// destination to this chunk's slot of out, so a successful
			// decode has already written its bytes — no copy-back. An
			// append that outgrew the slot reallocated away from out
			// (decode overrun past the chunk table's claim): a corrupt
			// chunk, not a result.
			slot := out[bd.UncompOff:bd.UncompOff:(bd.UncompOff + bd.UncompLen)]
			dec, derr := lzss.AppendDecodedByteAligned(slot, payload[bd.CompOff:bd.CompOff+bd.CompLen], bd.UncompLen, cfg)
			if derr != nil {
				rec.record(ci, fmt.Errorf("gpu: chunk %d: %w", ci, derr))
				return
			}
			if len(dec) != bd.UncompLen {
				rec.record(ci, fmt.Errorf("gpu: chunk %d: %w: decoded %d bytes, chunk table says %d",
					ci, format.ErrCorrupt, len(dec), bd.UncompLen))
				return
			}

			// Timing model: decompression is "mainly reading from and
			// writing to memory" (paper §IV.D) — a short copy loop per
			// output byte plus scattered per-thread streaming traffic.
			th.Work(int64(bd.UncompLen) * CyclesPerDecodedByte)
			th.GlobalAccess(int64((bd.CompLen+cudasim.TransactionBytes-1)/cudasim.TransactionBytes), int64(bd.CompLen))
			th.GlobalAccess(int64((bd.UncompLen+cudasim.TransactionBytes-1)/cudasim.TransactionBytes), int64(bd.UncompLen))
		})
	})
	if err != nil {
		return nil, nil, err
	}
	if ferr := rec.error(); ferr != nil {
		return nil, nil, ferr
	}
	if err := opts.transferFault("d2h"); err != nil {
		return nil, nil, err
	}

	if format.Checksum32(out) != h.Checksum {
		return nil, nil, format.ErrChecksum
	}
	report := &Report{
		Launch:      rep,
		H2D:         dev.TransferTime(len(payload)),
		D2H:         dev.TransferTime(len(out)),
		InputBytes:  len(container),
		OutputBytes: len(out),
	}
	observeReport(opts.Obs, "decompress", report)
	return out, report, nil
}
