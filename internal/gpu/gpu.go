// Package gpu implements the two CULZSS compression kernels and the
// chunk-parallel decompression kernel on the cudasim device (paper §III.B,
// §III.C), plus the host-side steps the paper leaves on the CPU: bucket
// concatenation for Version 1 and the token-selection post-pass for
// Version 2.
//
// # Version 1 — chunk per thread (paper §III.B.1, Figure 3 left)
//
// The input is divided into fixed 4 KiB chunks. Each CUDA block receives
// ThreadsPerBlock chunks; every thread runs the full sequential LZSS loop
// over its own chunk, keeping its sliding window in shared memory (128
// threads x 128-byte windows = 16 KiB, which is why the paper notes that
// 256-512-thread configurations no longer fit, §V). Output goes to a
// per-chunk bucket; the host concatenates the partially-filled buckets
// into the final stream. Lanes of a warp each run an independent
// compressor, so control flow is almost fully divergent: the launch uses a
// high SIMT serialisation factor.
//
// # Version 2 — match per thread (paper §III.B.2, Figure 3 right)
//
// Each block owns one 4 KiB chunk and slides over it in tiles of
// ThreadsPerBlock positions. Per tile the block stages window + tile +
// lookahead extension into shared memory with one coalesced read, then
// every thread performs the full window scan for its own position — all
// positions are searched, including ones inside what will become a match
// (the redundant work the paper trades for SIMD uniformity). The extended
// staging gives every thread exactly the window a serial implementation
// would see (§III.B.2's "extended buffers"). Matches are recorded per
// position; the serial host post-pass walks them greedily, keeps the
// surviving tokens, generates the flag bytes, and drops the redundant
// matches (§III.B.3). Lanes execute the same scan loop, so the launch uses
// a near-zero serialisation factor — this uniformity is V2's whole point.
//
// # Wire format
//
// Both kernels emit the byte-aligned token stream of internal/lzss, framed
// by internal/format with the per-chunk compressed-size table that makes
// decompression chunk-parallel (§III.C).
package gpu

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/health"
	"culzss/internal/lzss"
	"culzss/internal/obs"
)

// Model constants translating real executed work into simulated cycles.
// They are the per-lane costs of the kernels' inner loops; DESIGN.md §5
// describes the model.
const (
	// CyclesPerCompare is the per-lane cost of one window byte
	// comparison in the match loop: address computation, two loads'
	// issue slots, compare, branch and bookkeeping. The value calibrates
	// the model's absolute scale to Table I (the paper's V1 at 7.28 s
	// over 128 MB implies ~1200 SM-cycles per input byte).
	CyclesPerCompare = 24
	// CyclesPerOutputByte is the token-emission path per output byte.
	CyclesPerOutputByte = 6
	// CyclesPerDecodedByte is the decompression copy path per output byte.
	CyclesPerDecodedByte = 30

	// SerializationV1 is the SIMT divergence factor of the V1 kernel:
	// each lane runs an independent sequential compressor. The inner
	// compare loop is the same instruction sequence on every lane, so
	// warps partially reconverge; 0.60 calibrates the V1/V2 gap to the
	// ratios Table I implies (V2 ~1.7x faster on C files, V1 ~3x faster
	// on the DE map).
	SerializationV1 = 0.55
	// SerializationV2 is the divergence factor of the V2 kernel: lanes
	// run the same window-scan loop over the same-size window (the
	// paper: "all the threads compare the same number of characters"),
	// with residual divergence only in match-extension tails.
	SerializationV2 = 0.13
	// SerializationDecode is the factor for the chunk-parallel decoder
	// (divergent like V1, but the loop bodies are trivial copies).
	SerializationDecode = 0.70

	// uniformScanCap bounds a V2 lane's per-position scan charge at this
	// many times the window size (the shared-memory staging bounds how
	// far one lane's lockstep scan can extend before the next reload).
	uniformScanCap = 2
)

// DefaultChunkSize is the paper's 4 KiB chunk ("a reasonable choice for an
// average size of a network packet", §V).
const DefaultChunkSize = 4096

// DefaultThreadsPerBlock is the paper's best-performing block width
// (§III.D).
const DefaultThreadsPerBlock = 128

// Options configures a GPU compression or decompression run.
type Options struct {
	// Device is the simulated GPU; nil means cudasim.FermiGTX480().
	Device *cudasim.Device
	// ChunkSize is the uncompressed bytes per chunk; 0 means
	// DefaultChunkSize.
	ChunkSize int
	// ThreadsPerBlock is the block width; 0 means DefaultThreadsPerBlock.
	ThreadsPerBlock int
	// Config is the LZSS configuration. The zero value selects the preset
	// matching the kernel (lzss.CULZSSV1 or lzss.CULZSSV2).
	Config lzss.Config
	// UseSharedMemory keeps the search buffers in shared memory (the
	// paper's §III.D optimisation, default). DisableSharedMemory is the
	// ablation switch that models searching straight from global memory.
	DisableSharedMemory bool
	// DisableBankSkew turns off V2's four-character thread stagger
	// (§III.B.2); only observable on devices with LegacyBankSemantics.
	DisableBankSkew bool
	// OverlapHost overlaps the V2 host post-pass with the kernel in the
	// simulated total, the pipelining the paper describes in §V. Default
	// false (the paper's measured configuration is sequential).
	OverlapHost bool
	// HostWorkers bounds functional host parallelism; 0 means GOMAXPROCS.
	HostWorkers int
	// Stats, when non-nil, accumulates match-search counters.
	Stats *lzss.SearchStats
	// Injector, when non-nil, threads the deterministic fault-injection
	// subsystem through this run: kernel launches probe faults.SiteLaunch
	// (via the device's LaunchHook), modeled transfers probe
	// faults.SiteTransfer, and Decompress probes faults.SiteChunk per
	// chunk. Production paths leave it nil (zero cost beyond a pointer
	// test).
	Injector *faults.Injector
	// Context, when non-nil, is checked at launch, slice, and shard
	// boundaries so a stuck or abandoned stream can be cancelled cleanly
	// (the multi-call entry points CompressV1Streamed / CompressV1MultiGPU
	// stop between slices; single launches check once up front). It is
	// also handed to the device's LaunchHook, so a hang injected at the
	// launch site unwedges when the context is cancelled.
	Context context.Context
	// Health, when non-nil, arms the resilient dispatch paths: the
	// multi-GPU and streamed entry points route shards over the
	// supervisor's device pool through per-device circuit breakers and the
	// watchdog, re-dispatching failed shards to sibling devices and
	// degrading to the byte-identical CompressV1CPU encoder when the whole
	// pool is quarantined. Nil keeps the legacy fail-fast dispatch
	// (first shard error aborts the run, attributed to its device).
	Health *health.Supervisor
	// Obs, when non-nil, mirrors the run into the observability layer:
	// launch counters and modeled stage histograms per kernel, dispatch
	// spans (with device id and retry/degrade/timeout annotations) on the
	// supervised ladder, and shard/slice counters on the multi-GPU,
	// hybrid, and streamed paths. Nil is inert (the obs contract).
	Obs *obs.Registry
}

func (o *Options) device() *cudasim.Device {
	d := o.Device
	if d == nil {
		d = cudasim.FermiGTX480()
	}
	if o.Injector != nil {
		// Arm the launch site on a clone so the caller's device (often a
		// shared preset) is not mutated. An explicitly installed hook
		// stays in charge otherwise.
		d = d.Clone()
		d.LaunchHook = o.Injector.LaunchHook()
	}
	return d
}

// ctxErr reports the context's cancellation state (nil context = never
// cancelled).
func (o *Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// transferFault probes the injector's transfer site, naming the copy
// direction. The probe is context-aware: an injected transfer hang is cut
// when o.Context is cancelled (the watchdog's cancellation point for a
// wedged copy).
func (o *Options) transferFault(dir string) error {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.Injector.FaultCtx(ctx, faults.SiteTransfer); err != nil {
		return fmt.Errorf("gpu: %s transfer: %w", dir, err)
	}
	return nil
}

// faultRecorder collects chunk-level faults from a concurrent kernel
// deterministically: the *lowest* faulting chunk index wins regardless of
// which goroutine reports first, and tripped() lets the remaining threads
// early-abort once any fault is recorded (their results would be
// discarded anyway).
type faultRecorder struct {
	trip atomic.Bool
	mu   sync.Mutex
	idx  int
	err  error
}

// record notes a fault at chunk idx, keeping the lowest index seen.
func (r *faultRecorder) record(idx int, err error) {
	r.mu.Lock()
	if r.err == nil || idx < r.idx {
		r.idx, r.err = idx, err
	}
	r.mu.Unlock()
	r.trip.Store(true)
}

// tripped reports whether any fault has been recorded (the early-abort
// check threads poll before doing work).
func (r *faultRecorder) tripped() bool { return r.trip.Load() }

// error returns the recorded fault for the lowest chunk index, or nil.
func (r *faultRecorder) error() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (o *Options) fill(version format.Codec) {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.ThreadsPerBlock <= 0 {
		o.ThreadsPerBlock = DefaultThreadsPerBlock
	}
	if o.Config == (lzss.Config{}) {
		if version == format.CodecCULZSSV2 {
			o.Config = lzss.CULZSSV2()
		} else {
			o.Config = lzss.CULZSSV1()
		}
	}
}

// Report describes one GPU run: the kernel launch report plus the modeled
// transfers and the measured host-side step.
type Report struct {
	Launch *cudasim.LaunchReport
	// H2D and D2H are the modeled PCIe transfer times.
	H2D, D2H time.Duration
	// HostTime is the measured duration of the serial host step (bucket
	// concatenation for V1/decode, token selection + flag generation for
	// V2). It runs on a real CPU here just as in the paper.
	HostTime time.Duration
	// HostOverlapped records whether HostTime was overlapped with the
	// kernel in SimulatedTotal.
	HostOverlapped bool
	// InputBytes and OutputBytes describe the run's data volume.
	InputBytes, OutputBytes int
}

// SimulatedTotal is the modeled end-to-end time: transfers + kernel +
// host step (overlapped with the kernel when the pipelining optimisation
// is on).
func (r *Report) SimulatedTotal() time.Duration {
	return r.total(r.Launch.KernelTime)
}

// SaturatedTotal is SimulatedTotal with the saturated-device kernel time:
// the end-to-end time a grid large enough to fill every SM would take
// per unit of this run's work. Comparisons between kernels at small
// benchmark sizes use this (the paper's 128 MB runs saturate the device;
// kilobyte-scale test inputs do not).
func (r *Report) SaturatedTotal() time.Duration {
	return r.total(r.Launch.SaturatedKernelTime)
}

func (r *Report) total(kernel time.Duration) time.Duration {
	t := r.H2D + r.D2H
	if r.HostOverlapped {
		if r.HostTime > kernel {
			kernel = r.HostTime
		}
		return t + kernel
	}
	return t + kernel + r.HostTime
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d B -> %d B, kernel %v, h2d %v, d2h %v, host %v, total %v",
		r.Launch.Kernel, r.InputBytes, r.OutputBytes,
		r.Launch.KernelTime, r.H2D, r.D2H, r.HostTime, r.SimulatedTotal())
}

// header builds the container header for a finished run.
func header(codec format.Codec, cfg lzss.Config, chunkSize int, data []byte, sizes []int) *format.Header {
	return &format.Header{
		Codec:       codec,
		MinMatch:    uint8(cfg.MinMatch),
		Window:      cfg.Window,
		Lookahead:   cfg.MaxMatch,
		ChunkSize:   chunkSize,
		OriginalLen: len(data),
		Checksum:    format.Checksum32(data),
		ChunkSizes:  sizes,
	}
}

// assembleContainer performs the host concatenation step (paper §III.B.3:
// "a final separate process to concatenate only the compressed data into a
// continuous stream") and returns the container plus the measured host
// time.
func assembleContainer(codec format.Codec, cfg lzss.Config, chunkSize int, data []byte, streams [][]byte) ([]byte, time.Duration) {
	start := time.Now()
	sizes := make([]int, len(streams))
	total := 0
	for i, s := range streams {
		sizes[i] = len(s)
		total += len(s)
	}
	out := format.AppendHeader(make([]byte, 0, 64+len(sizes)*3+total), header(codec, cfg, chunkSize, data, sizes))
	for _, s := range streams {
		out = append(out, s...)
	}
	return out, time.Since(start)
}
