package gpu

import (
	"bytes"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/lzss"
)

// --- §VII streaming (pipelined copy/execute) ---------------------------

func TestStreamedRoundTripAndEquivalence(t *testing.T) {
	input := datasets.CFiles(96<<10, 21)
	plain, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, streams := range []int{1, 2, 4, 7} {
		cont, rep, err := CompressV1Streamed(input, Options{}, streams)
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		// The streamed container must be byte-identical to the plain V1
		// container: slicing on chunk boundaries cannot change output.
		if !bytes.Equal(cont, plain) {
			t.Fatalf("streams=%d: container differs from plain V1", streams)
		}
		got, _, err := Decompress(cont, Options{})
		if err != nil || !bytes.Equal(got, input) {
			t.Fatalf("streams=%d: round trip failed: %v", streams, err)
		}
		if rep.SimulatedTotal() <= 0 {
			t.Fatalf("streams=%d: non-positive simulated total", streams)
		}
	}
}

func TestStreamedPipelineOverlaps(t *testing.T) {
	input := datasets.CFiles(256<<10, 22)
	_, seq, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, pip, err := CompressV1Streamed(input, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Slicing regroups warps slightly, so compare with a small tolerance:
	// the pipelined schedule must stay within a few percent of the
	// single-launch span (the strict pipeline-beats-sequential property
	// over identical stages is asserted in TestPipelineScheduleMath).
	seqSpan := seq.H2D + seq.Launch.KernelTime + seq.D2H
	if float64(pip.Launch.KernelTime) > float64(seqSpan)*1.10 {
		t.Fatalf("pipelined span %v far exceeds sequential %v", pip.Launch.KernelTime, seqSpan)
	}
}

func TestStreamedRejectsBadCount(t *testing.T) {
	if _, _, err := CompressV1Streamed([]byte("x"), Options{}, 0); err == nil {
		t.Fatal("accepted zero streams")
	}
	// Validation must run before the empty-input early return: bad stream
	// counts and bad configs error consistently for every input length.
	if _, _, err := CompressV1Streamed(nil, Options{}, 0); err == nil {
		t.Fatal("accepted zero streams on empty input")
	}
}

func TestStreamedValidatesConfigBeforeEmptyReturn(t *testing.T) {
	bad := Options{Config: lzss.Config{Window: 1024, MaxMatch: 66, MinMatch: 2}}
	if _, _, err := CompressV1Streamed([]byte("data"), bad, 2); err == nil {
		t.Fatal("accepted oversized window")
	}
	if _, _, err := CompressV1Streamed(nil, bad, 2); err == nil {
		t.Fatal("accepted oversized window on empty input")
	}
	// A config that overflows the 16-bit token must also fail either way.
	wide := Options{Config: lzss.Config{Window: 128, MaxMatch: 300, MinMatch: 2}}
	if _, _, err := CompressV1Streamed([]byte("data"), wide, 2); err == nil {
		t.Fatal("accepted token-overflowing config")
	}
	if _, _, err := CompressV1Streamed(nil, wide, 2); err == nil {
		t.Fatal("accepted token-overflowing config on empty input")
	}
}

func TestPipelineScheduleMath(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	slices := []cudasim.PipelineStage{
		{H2D: ms(2), Kernel: ms(10), D2H: ms(1)},
		{H2D: ms(2), Kernel: ms(10), D2H: ms(1)},
		{H2D: ms(2), Kernel: ms(10), D2H: ms(1)},
	}
	seq := cudasim.SequentialSchedule(slices)
	if seq != ms(39) {
		t.Fatalf("sequential = %v", seq)
	}
	pip := cudasim.PipelineSchedule(slices)
	// Kernel-bound steady state: ~2 + 3*10 + trailing copies.
	if pip >= seq {
		t.Fatalf("pipeline %v not faster than sequential %v", pip, seq)
	}
	if pip < ms(32) {
		t.Fatalf("pipeline %v impossibly fast (kernel work alone is 30ms)", pip)
	}
	// Single slice degenerates to the sum.
	one := cudasim.PipelineSchedule(slices[:1])
	if one != ms(13) {
		t.Fatalf("single-slice pipeline = %v", one)
	}
	if cudasim.PipelineSchedule(nil) != 0 {
		t.Fatal("empty pipeline not zero")
	}
}

// --- §VII multi-GPU -----------------------------------------------------

func TestMultiGPURoundTrip(t *testing.T) {
	input := datasets.KernelTarball(128<<10, 23)
	for _, n := range []int{1, 2, 4} {
		cont, rep, err := CompressV1MultiGPU(input, Options{}, n)
		if err != nil {
			t.Fatalf("nGPUs=%d: %v", n, err)
		}
		got, _, err := Decompress(cont, Options{})
		if err != nil || !bytes.Equal(got, input) {
			t.Fatalf("nGPUs=%d: round trip failed: %v", n, err)
		}
		if len(rep.PerDevice) < 1 || len(rep.PerDevice) > n {
			t.Fatalf("nGPUs=%d: %d device reports", n, len(rep.PerDevice))
		}
		if rep.SimulatedTotal() <= 0 {
			t.Fatal("non-positive total")
		}
	}
}

func TestMultiGPUOutputMatchesSingle(t *testing.T) {
	input := datasets.CFiles(64<<10, 24)
	single, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := CompressV1MultiGPU(input, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single, multi) {
		t.Fatal("multi-GPU container differs from single-GPU")
	}
}

func TestMultiGPUNoGainWhenKernelIsCheap(t *testing.T) {
	// The paper's §VII observation: their multi-GPU attempt showed no
	// gains; they suspected the per-device thread overhead. The model
	// reproduces it whenever the kernel-span win is smaller than the
	// added dispatch overhead plus the serialized bus — e.g. on the
	// highly-compressible dataset, where V1's kernel is nearly free.
	input := datasets.HighlyCompressible(256<<10, 25)
	_, one, err := CompressV1MultiGPU(input, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, four, err := CompressV1MultiGPU(input, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.SimulatedTotal() < one.SimulatedTotal() {
		t.Fatalf("4 GPUs (%v) beat 1 GPU (%v) despite a near-free kernel — overhead model missing",
			four.SimulatedTotal(), one.SimulatedTotal())
	}
	if four.DriverOverhead <= one.DriverOverhead {
		t.Fatal("driver overhead not scaling with device count")
	}
}

func TestMultiGPURejectsBadCount(t *testing.T) {
	if _, _, err := CompressV1MultiGPU([]byte("x"), Options{}, 0); err == nil {
		t.Fatal("accepted zero GPUs")
	}
}

// --- §VII heterogeneous CPU+GPU ------------------------------------------

func TestHybridRoundTripAcrossFractions(t *testing.T) {
	input := datasets.CFiles(96<<10, 26)
	single, _, err := CompressV1(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		cont, rep, err := CompressV1Hybrid(input, Options{}, frac)
		if err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		// CPU chunks use the same encoder and configuration, so the
		// container must be byte-identical regardless of the split.
		if !bytes.Equal(cont, single) {
			t.Fatalf("frac=%v: container differs from pure GPU", frac)
		}
		got, _, err := Decompress(cont, Options{})
		if err != nil || !bytes.Equal(got, input) {
			t.Fatalf("frac=%v: round trip failed: %v", frac, err)
		}
		if rep.CPUFraction != frac {
			t.Fatalf("frac=%v: report says %v", frac, rep.CPUFraction)
		}
		if frac > 0 && rep.CPUTime <= 0 {
			t.Fatalf("frac=%v: no CPU time recorded", frac)
		}
	}
}

func TestHybridAutoSplit(t *testing.T) {
	input := datasets.CFiles(128<<10, 27)
	cont, rep, err := CompressV1Hybrid(input, Options{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUFraction < 0 || rep.CPUFraction > 0.95 {
		t.Fatalf("auto split fraction %v out of range", rep.CPUFraction)
	}
	got, _, err := Decompress(cont, Options{})
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("auto-split round trip failed: %v", err)
	}
}

func TestHybridRejectsBadFraction(t *testing.T) {
	if _, _, err := CompressV1Hybrid([]byte("x"), Options{}, 1.5); err == nil {
		t.Fatal("accepted fraction > 1")
	}
}

// --- Legacy device preset ------------------------------------------------

func TestTeslaC1060Preset(t *testing.T) {
	d := cudasim.TeslaC1060()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.LegacyBankSemantics {
		t.Fatal("C1060 must use legacy bank semantics")
	}
	if d.SMs*d.CoresPerSM != 240 {
		t.Fatalf("C1060 core count = %d, want 240", d.SMs*d.CoresPerSM)
	}
	// The whole pipeline still runs on the legacy part.
	input := datasets.CFiles(32<<10, 28)
	cont, rep, err := CompressV2(input, Options{Device: d})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(cont, Options{Device: d})
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("C1060 round trip failed: %v", err)
	}
	if rep.Launch.KernelTime <= 0 {
		t.Fatal("no kernel time")
	}
}

func TestDeviceClone(t *testing.T) {
	a := cudasim.FermiGTX480()
	b := a.Clone()
	b.SMs = 1
	if a.SMs == 1 {
		t.Fatal("Clone aliases the original")
	}
}
