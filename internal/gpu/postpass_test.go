package gpu

import (
	"bytes"
	"testing"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
)

// TestGPUPostIdenticalToHostPost pins the §VII GPU token-selection kernel
// to the serial host post-pass: byte-identical containers on every
// dataset flavour.
func TestGPUPostIdenticalToHostPost(t *testing.T) {
	for name, input := range map[string][]byte{
		"text":     datasets.CFiles(96<<10, 41),
		"demap":    datasets.DEMap(64<<10, 42),
		"periodic": datasets.HighlyCompressible(64<<10, 43),
		"dict":     datasets.Dictionary(64<<10, 44),
		"small":    []byte("tiny input"),
		"empty":    {},
		"odd":      datasets.CFiles(DefaultChunkSize+333, 45),
	} {
		host, _, err := CompressV2(input, Options{})
		if err != nil {
			t.Fatalf("%s: host: %v", name, err)
		}
		gpu, _, err := CompressV2GPUPost(input, Options{})
		if err != nil {
			t.Fatalf("%s: gpu: %v", name, err)
		}
		if !bytes.Equal(host, gpu) {
			t.Fatalf("%s: GPU post-pass container differs from host post-pass", name)
		}
		back, _, err := Decompress(gpu, Options{})
		if err != nil || !bytes.Equal(back, input) {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
	}
}

// TestGPUPostShrinksHostTime verifies the point of the port: the serial
// host step shrinks to pure serialisation while kernel work grows.
func TestGPUPostShrinksHostTime(t *testing.T) {
	input := datasets.CFiles(512<<10, 46)
	_, host, err := CompressV2(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gpu, err := CompressV2GPUPost(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Launch.WarpCycles <= host.Launch.WarpCycles {
		t.Fatalf("selection rounds added no kernel work: %d vs %d",
			gpu.Launch.WarpCycles, host.Launch.WarpCycles)
	}
	// The D2H volume drops from 3 bytes/position to the selected tokens.
	if gpu.D2H >= host.D2H {
		t.Fatalf("D2H did not shrink: %v vs %v", gpu.D2H, host.D2H)
	}
}

// TestSelectChunkPositionsUnit checks the pointer-doubling reachability
// against a direct serial walk on crafted match arrays.
func TestSelectChunkPositionsUnit(t *testing.T) {
	cases := [][]uint16{
		{},
		{0},
		{0, 0, 0, 0},
		{5, 0, 0, 0, 0, 3, 0, 0},    // match at 0 jumps to 5, match at 5 jumps to end
		{3, 3, 3, 3, 3, 3},          // overlapping records; greedy takes 0,3
		{9, 0, 0},                   // match longer than the chunk tail
		{0, 4, 0, 0, 0, 0, 2, 0, 0}, // sub-minimum record at 6 is a literal
	}
	const minMatch = 3
	dev := cudasim.FermiGTX480()
	for ci, matchLen := range cases {
		// Serial reference walk.
		want := make([]bool, len(matchLen))
		for pos := 0; pos < len(matchLen); {
			want[pos] = true
			if l := int(matchLen[pos]); l >= minMatch {
				pos += l
			} else {
				pos++
			}
		}
		var got []bool
		matchLen := matchLen
		_, err := dev.LaunchPhased(cudasim.LaunchConfig{
			Kernel: "select_unit", Blocks: 1, ThreadsPerBlock: 32,
		}, func(b *cudasim.BlockCtx) {
			got = selectChunkPositions(b, matchLen, minMatch)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: length %d vs %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: position %d selected=%v, want %v (matchLen=%v)", ci, i, got[i], want[i], matchLen)
			}
		}
	}
}
