package gpu

import (
	"bytes"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/health"
	"culzss/internal/obs"
)

// These tests pin the GPU layer's half of the reconciliation invariant:
// a fresh registry's counters must equal the run reports exactly,
// because each obs increment shares a code site with the native one.

func TestMultiGPUReportReconcilesWithRegistry(t *testing.T) {
	input := datasets.CFiles(96<<10, 41)

	reg := obs.NewRegistry()
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Obs: reg})

	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup, Obs: reg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(got, Options{})
	if err != nil || !bytes.Equal(out, input) {
		t.Fatalf("round trip: %v", err)
	}

	shards := len(rep.PerDevice) + rep.DegradedShards
	checks := []struct {
		series string
		want   int
	}{
		{"culzss_multigpu_shards_total", shards},
		{"culzss_multigpu_degraded_shards_total", rep.DegradedShards},
		// The supervisor and registry are both fresh, so the report's
		// per-run deltas equal the lifetime totals.
		{"culzss_health_redispatches_total", rep.Redispatched},
		{"culzss_health_watchdog_timeouts_total", rep.TimedOut},
		{"culzss_health_breaker_opens_total", rep.BreakerOpens},
	}
	for _, c := range checks {
		if got := reg.Counter(c.series).Value(); got != int64(c.want) {
			t.Errorf("%s = %d, MultiGPUReport says %d", c.series, got, c.want)
		}
	}
	if got := reg.Gauge("culzss_health_quarantined_devices").Value(); got != int64(rep.Quarantined) {
		t.Errorf("culzss_health_quarantined_devices = %d, MultiGPUReport says %d", got, rep.Quarantined)
	}
	if rep.Redispatched == 0 || rep.BreakerOpens == 0 {
		t.Fatalf("dead device produced no redispatch/open; reconciliation proved nothing: %+v", rep)
	}
	// Each shard that completed on a device launched the V1 kernel once.
	if got := reg.Counter("culzss_gpu_launches_total", obs.L("kernel", "culzss_v1")).Value(); got != int64(len(rep.PerDevice)) {
		t.Errorf("culzss_gpu_launches_total{kernel=culzss_v1} = %d, report has %d device shards", got, len(rep.PerDevice))
	}
}

func TestMultiGPUDegradedShardsReconcile(t *testing.T) {
	// Whole pool dead: every shard degrades, and the degraded counters
	// must say exactly that.
	input := datasets.CFiles(64<<10, 42)
	reg := obs.NewRegistry()
	sup := health.NewPool(deadDevice(), 2, health.Policy{Threshold: 1, OpenFor: time.Hour, Obs: reg})

	got, rep, err := CompressV1MultiGPU(input, Options{Health: sup, Obs: reg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(got, Options{})
	if err != nil || !bytes.Equal(out, input) {
		t.Fatalf("round trip: %v", err)
	}
	if rep.DegradedShards == 0 {
		t.Fatalf("dead pool degraded nothing: %+v", rep)
	}
	if got := reg.Counter("culzss_multigpu_degraded_shards_total").Value(); got != int64(rep.DegradedShards) {
		t.Errorf("degraded shards counter %d, report %d", got, rep.DegradedShards)
	}
	if got := reg.Counter("culzss_dispatch_degraded_total").Value(); got != int64(rep.DegradedShards) {
		t.Errorf("dispatch degraded counter %d, report %d", got, rep.DegradedShards)
	}
	if got := reg.Gauge("culzss_health_quarantined_devices").Value(); got != 2 {
		t.Errorf("quarantined gauge %d, want the whole pool (2)", got)
	}
}

func TestObserveReportStageHistograms(t *testing.T) {
	// One plain V1 run: the launch counter, the modeled stage histograms,
	// and the dispatch-free report path.
	input := datasets.CFiles(32<<10, 43)
	reg := obs.NewRegistry()
	_, rep, err := CompressV1(input, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("culzss_gpu_launches_total", obs.L("kernel", "culzss_v1")).Value(); got != 1 {
		t.Fatalf("launch counter = %d, want 1", got)
	}
	for _, stage := range []string{"kernel", "h2d", "d2h"} {
		snap := reg.Histogram(SimStageSecondsMetric, obs.L("stage", stage)).Snapshot()
		if snap.Count != 1 {
			t.Errorf("sim histogram stage=%s count %d, want 1", stage, snap.Count)
		}
	}
	// The modeled kernel time lands in the histogram sum exactly.
	snap := reg.Histogram(SimStageSecondsMetric, obs.L("stage", "kernel")).Snapshot()
	if want := rep.Launch.KernelTime.Seconds(); snap.Sum != want {
		t.Errorf("kernel histogram sum %g, report says %g", snap.Sum, want)
	}
}

func TestDispatchSpanAnnotations(t *testing.T) {
	// A dead home device forces a redispatch; the dispatch span must
	// carry the attempt count and land on the healthy device's id.
	input := datasets.CFiles(32<<10, 44)
	reg := obs.NewRegistry()
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Obs: reg})

	_, _, _, err := CompressV1Supervised(input, Options{Health: sup, Obs: reg}, 0, "probe")
	if err != nil {
		t.Fatal(err)
	}
	var dispatch *obs.Span
	for _, sp := range reg.Tracer().Spans() {
		if sp.Stage == "dispatch" && sp.Op == "probe" {
			s := sp
			dispatch = &s
		}
	}
	if dispatch == nil {
		t.Fatal("no dispatch span recorded for op \"probe\"")
	}
	if dispatch.Device != 1 {
		t.Errorf("dispatch span device %d, want the healthy sibling 1", dispatch.Device)
	}
	var attempts string
	for _, l := range dispatch.Attrs {
		if l.Key == "attempts" {
			attempts = l.Value
		}
	}
	if attempts == "" {
		t.Errorf("dispatch span lacks an attempts annotation: %v", dispatch.Attrs)
	}
	if dispatch.Err != "" {
		t.Errorf("successful dispatch span carries error %q", dispatch.Err)
	}
	// Kernel spans: one per device attempt, including the failed one.
	var kernels int
	for _, sp := range reg.Tracer().Spans() {
		if sp.Stage == "kernel" {
			kernels++
		}
	}
	if kernels < 2 {
		t.Errorf("want >= 2 kernel spans (failed + redispatched attempt), got %d", kernels)
	}
}
