package gpu

import (
	"context"
	"fmt"

	"culzss/internal/health"
)

// This file is the supervised dispatch layer: the bridge between the
// shard-producing entry points (CompressV1MultiGPU, CompressV1Hybrid,
// CompressV1Streamed, and core.Writer's segment loop) and the
// health.Supervisor's device pool. One piece of work (a shard, a slice, a
// segment) flows through dispatch, parameterized by the Engine that
// does the encoding:
//
//	Acquire a healthy device (preferring the work's home slot for
//	locality) -> Run the engine's kernel under the watchdog -> on failure
//	mark the device's breaker, exclude it, and redispatch to a sibling ->
//	when every device is quarantined or excluded, degrade to the engine's
//	byte-identical CPU twin.
//
// The caller always gets either a valid container or an error that means
// "the caller cancelled" or "even the CPU could not encode this" — a sick
// device never surfaces as a shard failure.

// Engine is the minimal compress-engine shape the supervised ladder
// dispatches over: a device-path entry point and its byte-identical
// host twin for the degrade tail. internal/codec's richer Engine
// interface satisfies it structurally, so any registered codec can ride
// the same ladder.
type Engine interface {
	Compress(data []byte, opts Options) ([]byte, *Report, error)
	CompressCPU(data []byte, opts Options) ([]byte, error)
}

// EngineV1 adapts the Version 1 entry points to the Engine shape.
type EngineV1 struct{}

// Compress runs the V1 kernel.
func (EngineV1) Compress(data []byte, opts Options) ([]byte, *Report, error) {
	return CompressV1(data, opts)
}

// CompressCPU runs V1's bit-identical host twin.
func (EngineV1) CompressCPU(data []byte, opts Options) ([]byte, error) {
	return CompressV1CPU(data, opts)
}

// EngineV2 adapts the Version 2 entry points to the Engine shape.
type EngineV2 struct{}

// Compress runs the V2 kernel.
func (EngineV2) Compress(data []byte, opts Options) ([]byte, *Report, error) {
	return CompressV2(data, opts)
}

// CompressCPU runs V2's bit-identical host twin.
func (EngineV2) CompressCPU(data []byte, opts Options) ([]byte, error) {
	return CompressV2CPU(data, opts)
}

// dispatchResult is one supervised dispatch outcome.
type dispatchResult struct {
	// Container is the shard's container (byte-identical regardless of
	// which device — or the CPU — produced it).
	Container []byte
	// Report is the device report; nil when the shard degraded to the CPU.
	Report *Report
	// Device is the pool slot that produced the shard; -1 for the CPU.
	Device int
	// Degraded records a CPU-fallback encode.
	Degraded bool
	// Attempts counts GPU attempts made (including the successful one).
	Attempts int
	// TimedOut counts attempts the watchdog cut.
	TimedOut int
}

// CompressSupervised is the exported face of the supervised dispatch
// ladder for a single piece of work (a core.Writer segment, a one-shot
// API call) under any engine. Without a supervisor it is the engine's
// plain device path; with one, the work rides the pool with redispatch
// and CPU degrade. home is the preferred pool slot (-1 for round-robin);
// op names the work in watchdog timeouts. degraded reports a
// CPU-fallback encode (rep is then nil; the container bytes are
// identical either way).
func CompressSupervised(e Engine, data []byte, opts Options, home int, op string) (container []byte, rep *Report, degraded bool, err error) {
	if opts.Health == nil {
		container, rep, err = e.Compress(data, opts)
		return container, rep, false, err
	}
	res, err := dispatch(e, opts.Health, data, opts, home, op)
	return res.Container, res.Report, res.Degraded, err
}

// CompressV1Supervised is CompressSupervised under the V1 engine — kept
// as the named entry point the pre-codec callers (multi-GPU, hybrid,
// streamed schedulers) dispatch through.
func CompressV1Supervised(data []byte, opts Options, home int, op string) (container []byte, rep *Report, degraded bool, err error) {
	return CompressSupervised(EngineV1{}, data, opts, home, op)
}

// CompressV2Supervised is CompressSupervised under the V2 engine: the
// match-per-thread kernel with redispatch and a degrade tail that lands
// on CompressV2CPU, V2's own byte-identical twin.
func CompressV2Supervised(data []byte, opts Options, home int, op string) (container []byte, rep *Report, degraded bool, err error) {
	return CompressSupervised(EngineV2{}, data, opts, home, op)
}

// dispatch compresses data with e over sup's device pool. home is the
// preferred pool slot (locality hint; -1 for round-robin); op names the
// work in watchdog timeouts ("shard 3", "segment 12"). See the file
// comment for the dispatch ladder. The returned error is non-nil only
// for caller cancellation or a CPU-fallback failure.
func dispatch(e Engine, sup *health.Supervisor, data []byte, opts Options, home int, op string) (dispatchResult, error) {
	sp := opts.Obs.Tracer().Start(op, "dispatch")
	res, err := dispatchPool(e, sup, data, opts, home, op)
	observeDispatch(opts.Obs, op, res, err, sp)
	return res, err
}

// dispatchPool is dispatch's pool walk, free of observability concerns.
func dispatchPool(e Engine, sup *health.Supervisor, data []byte, opts Options, home int, op string) (dispatchResult, error) {
	res := dispatchResult{Device: -1}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	exclude := make(map[int]bool, sup.Devices())
	var lastErr error
	for len(exclude) < sup.Devices() {
		id, ok := sup.Acquire(home, exclude)
		if !ok {
			break // whole pool quarantined (or excluded): degrade
		}
		res.Attempts++

		// Fresh result storage per attempt: a watchdog-abandoned attempt
		// may still be writing these after Run returns, so the next
		// attempt (and the caller) must never share them.
		var (
			acont []byte
			arep  *Report
		)
		attempt := opts
		if dev := sup.Device(id); dev != nil {
			attempt.Device = dev
		}
		ksp := opts.Obs.Tracer().Start(op, "kernel").SetDevice(id)
		runErr := sup.Run(ctx, id, op, func(runCtx context.Context) error {
			attempt.Context = runCtx
			c, r, err := e.Compress(data, attempt)
			if err != nil {
				return err
			}
			acont, arep = c, r
			return nil
		})
		ksp.End(runErr)
		if isTimeout(runErr) {
			res.TimedOut++
		}
		if runErr == nil {
			res.Container, res.Report, res.Device = acont, arep, id
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller gave up; do not burn the rest of the pool.
			return res, runErr
		}
		lastErr = runErr
		exclude[id] = true
		sup.NoteRedispatch()
	}

	// Degrade: the engine's byte-identical host twin. It sees the
	// caller's context (not a watchdog deadline — the host path has no
	// hung-kernel mode to guard against).
	cpu := opts
	cpu.Context = ctx
	cont, err := e.CompressCPU(data, cpu)
	if err != nil {
		if lastErr != nil {
			return res, fmt.Errorf("gpu: %s: pool exhausted (last device error: %v); cpu fallback: %w", op, lastErr, err)
		}
		return res, fmt.Errorf("gpu: %s: cpu fallback: %w", op, err)
	}
	res.Container, res.Degraded = cont, true
	return res, nil
}
