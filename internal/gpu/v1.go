package gpu

import (
	"fmt"

	"culzss/internal/cudasim"
	"culzss/internal/format"
	"culzss/internal/lzss"
)

// CompressV1 runs the CULZSS Version 1 kernel: chunk-per-thread sequential
// LZSS with shared-memory windows (paper §III.B.1). It returns the
// container, the performance report, and an error.
func CompressV1(data []byte, opts Options) ([]byte, *Report, error) {
	opts.fill(format.CodecCULZSSV1)
	if err := opts.ctxErr(); err != nil {
		return nil, nil, err
	}
	dev := opts.device()
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Window > 256 || cfg.MaxMatch-cfg.MinMatch > 255 {
		return nil, nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", cfg)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	nChunks := len(chunks)
	tpb := opts.ThreadsPerBlock
	blocks := (nChunks + tpb - 1) / tpb
	if blocks == 0 {
		blocks = 1 // degenerate empty input still "launches"
	}

	// Per-thread shared budget: the sliding window plus the uncoded
	// lookahead buffer, one set per thread (this is what caps V1 at 128
	// threads/block on a 16 KiB part, paper §V).
	sharedPerThread := cfg.Window + cfg.MaxMatch
	sharedPerBlock := sharedPerThread * tpb
	if opts.DisableSharedMemory {
		sharedPerBlock = 0 // buffers live in global memory instead
	}

	// Device-side buckets: worst-case capacity per chunk; the host strips
	// the empty tails afterwards. Functionally each thread encodes out of
	// its host-mapped chunk slice; the traffic model is charged through
	// ThreadCtx.GlobalAccess below.
	bucketCap := lzss.MaxEncodedLenByteAligned(opts.ChunkSize)
	streams := make([][]byte, nChunks)
	statsPer := make([]lzss.SearchStats, nChunks)
	var rec faultRecorder

	if err := opts.transferFault("h2d"); err != nil {
		return nil, nil, err
	}
	rep, err := dev.LaunchPhased(cudasim.LaunchConfig{
		Kernel:          "culzss_v1",
		Blocks:          blocks,
		ThreadsPerBlock: tpb,
		SharedPerBlock:  sharedPerBlock,
		Serialization:   SerializationV1,
		HostWorkers:     opts.HostWorkers,
		Context:         opts.Context,
	}, func(b *cudasim.BlockCtx) {
		if sharedPerBlock > 0 {
			_ = b.Shared(sharedPerBlock) // window+lookahead residency check
		}
		base := b.Index * tpb
		b.Parallel(func(th *cudasim.ThreadCtx) {
			ci := base + th.Tid
			if ci >= nChunks || rec.tripped() {
				return // early abort: a recorded fault voids the launch
			}
			chunk := chunks[ci]
			st := &statsPer[ci]
			comp, err := lzss.EncodeByteAligned(chunk, cfg, lzss.SearchBrute, st)
			if err != nil {
				rec.record(ci, fmt.Errorf("gpu: v1 chunk %d: %w", ci, err))
				return
			}
			if len(comp) > bucketCap {
				rec.record(ci, fmt.Errorf("gpu: v1 chunk %d overflows bucket: %d > %d", ci, len(comp), bucketCap))
				return
			}
			streams[ci] = comp

			// --- timing model ---
			// Compute: the search loop dominated by byte comparisons,
			// plus the emission path.
			th.Work(st.Comparisons*CyclesPerCompare + int64(len(comp))*CyclesPerOutputByte)
			if opts.DisableSharedMemory {
				// Ablation: every comparison walks global memory. The
				// lane still issues the two accesses per comparison, and
				// on top of that each 32-byte group of window bytes is a
				// fresh transaction (lanes diverge, so nothing coalesces
				// across the warp) whose latency the launch model exposes.
				th.Work(st.Comparisons * 2)
				th.GlobalAccess(st.Comparisons/4+1, st.Comparisons*2)
			} else {
				// Window and lookahead live in shared memory. Lanes run
				// divergent serial loops, so accesses do not line up into
				// a warp-wide conflict pattern: degree 1, the cost of the
				// divergence itself is carried by SerializationV1.
				th.SharedAccess(st.Comparisons*2, 1)
			}
			// Input streaming: each lane reads its own chunk, 128-byte
			// segments of which never coalesce with other lanes'
			// (stride = ChunkSize >> TransactionBytes).
			th.GlobalAccess(int64((len(chunk)+cudasim.TransactionBytes-1)/cudasim.TransactionBytes), int64(len(chunk)))
			// Bucket write-back, equally scattered.
			th.GlobalAccess(int64((len(comp)+cudasim.TransactionBytes-1)/cudasim.TransactionBytes), int64(len(comp)))
		})
	})
	if err != nil {
		return nil, nil, err
	}
	if ferr := rec.error(); ferr != nil {
		return nil, nil, ferr
	}
	if err := opts.transferFault("d2h"); err != nil {
		return nil, nil, err
	}
	if opts.Stats != nil {
		for i := range statsPer {
			opts.Stats.Add(statsPer[i])
		}
	}

	container, hostTime := assembleContainer(format.CodecCULZSSV1, cfg, opts.ChunkSize, data, streams)
	report := &Report{
		Launch:      rep,
		H2D:         dev.TransferTime(len(data)),
		D2H:         dev.TransferTime(containerPayloadLen(streams) + 4*nChunks),
		HostTime:    hostTime,
		InputBytes:  len(data),
		OutputBytes: len(container),
	}
	observeReport(opts.Obs, "culzss_v1", report)
	return container, report, nil
}

// containerPayloadLen sums per-chunk stream lengths (the bytes actually
// copied back: the paper returns "partial full buckets" and copies only
// the filled prefixes plus the size list).
func containerPayloadLen(streams [][]byte) int {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	return n
}
