package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"culzss/internal/format"
	"culzss/internal/lzss"
)

// CompressV2CPU is Version 2's degrade twin: a host-only encoder that
// produces a container bit-identical to CompressV2's — the same
// per-position match records from the same tiled window search, the same
// serial greedy post-pass, the same CodecCULZSSV2 header — without
// touching the simulated device, so no launch, transfer, or chunk fault
// site can fire. It is what the supervised dispatch ladder falls back to
// when every device is quarantined, mirroring CompressV1CPU for V1.
//
// Bit-identity matters: a stream may mix device-encoded and degraded
// segments, and the two must be indistinguishable to the Reader and to
// parity reconstruction (which covers exact frame bytes).
func CompressV2CPU(data []byte, opts Options) ([]byte, error) {
	opts.fill(format.CodecCULZSSV2)
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window > 256 || cfg.MaxMatch-cfg.MinMatch > 255 {
		return nil, fmt.Errorf("gpu: config %+v does not fit the 16-bit token", cfg)
	}

	chunks := format.SplitChunks(data, opts.ChunkSize)
	tpb := opts.ThreadsPerBlock
	streams := make([][]byte, len(chunks))
	statsPer := make([]lzss.SearchStats, len(chunks))

	workers := opts.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var rec faultRecorder
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				if rec.tripped() {
					continue
				}
				comp, err := encodeV2Chunk(chunks[ci], cfg, tpb, &statsPer[ci])
				if err != nil {
					rec.record(ci, fmt.Errorf("gpu: v2 cpu-fallback chunk %d: %w", ci, err))
					continue
				}
				streams[ci] = comp
			}
		}()
	}
	for ci := range chunks {
		next <- ci
	}
	close(next)
	wg.Wait()
	if err := rec.error(); err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		for i := range statsPer {
			opts.Stats.Add(statsPer[i])
		}
	}

	container, _ := assembleContainer(format.CodecCULZSSV2, cfg, opts.ChunkSize, data, streams)
	return container, nil
}

// encodeV2Chunk reproduces the V2 kernel's functional result for one
// chunk: the per-position match records over the same tpb-wide tiles and
// staging bounds as the device kernel (matches may extend into the
// staged lookahead but never past the chunk), followed by the serial
// greedy token-selection pass (§III.B.3).
func encodeV2Chunk(chunk []byte, cfg lzss.Config, tpb int, st *lzss.SearchStats) ([]byte, error) {
	matchLen := make([]uint16, len(chunk))
	matchDist := make([]uint8, len(chunk))
	for tile := 0; tile < len(chunk); tile += tpb {
		lo := tile - cfg.Window
		if lo < 0 {
			lo = 0
		}
		hi := tile + tpb + cfg.MaxMatch
		if hi > len(chunk) {
			hi = len(chunk)
		}
		region := chunk[lo:hi]
		for pos := tile; pos < tile+tpb && pos < len(chunk); pos++ {
			sPos := pos - lo
			m := lzss.LongestMatch(region, sPos, sPos-cfg.Window, &cfg, st)
			matchLen[pos] = uint16(m.Length)
			matchDist[pos] = uint8(max(m.Distance-1, 0))
		}
	}

	w := lzss.NewByteAlignedWriter(&cfg, len(chunk)/2+16)
	for pos := 0; pos < len(chunk); {
		l := int(matchLen[pos])
		if l >= cfg.MinMatch {
			if err := w.Match(lzss.Match{
				Distance: int(matchDist[pos]) + 1,
				Length:   l,
			}); err != nil {
				return nil, err
			}
			pos += l
		} else {
			w.Literal(chunk[pos])
			pos++
		}
	}
	return w.Bytes(), nil
}
