package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{5 * time.Second})
	if s.N != 1 || s.Mean != 5*time.Second || s.StdDev != 0 {
		t.Fatalf("bad single summary: %+v", s)
	}
	if s.Min != 5*time.Second || s.Max != 5*time.Second || s.Median != 5*time.Second {
		t.Fatalf("bad single summary extremes: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	samples := []time.Duration{2, 4, 4, 4, 5, 5, 7, 9} // classic stddev example
	s := Summarize(samples)
	if s.Mean != 5 {
		t.Fatalf("Mean = %d, want 5", s.Mean)
	}
	// Sample stddev of that set is sqrt(32/7) ~= 2.138; Summary stores
	// durations in integer nanoseconds, so expect the truncated value.
	want := time.Duration(math.Sqrt(32.0 / 7.0))
	if s.StdDev != want {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %d/%d", s.Min, s.Max)
	}
	if s.Median != 4 { // (4+5)/2 rounds down in integer ns, values are 4 and 5 -> 4.5 -> 4
		t.Fatalf("Median = %d", s.Median)
	}
}

func TestSummarizeMedianOdd(t *testing.T) {
	s := Summarize([]time.Duration{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("Median = %d, want 5", s.Median)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(50, 100); got != 0.5 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(10, 0); got != 0 {
		t.Fatalf("Ratio with zero original = %v", got)
	}
	if got := RatioPercent(548, 1000); got != "54.80%" {
		t.Fatalf("RatioPercent = %q", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(0, 0); got != 1 {
		t.Fatalf("Speedup(0,0) = %v", got)
	}
	if got := Speedup(time.Second, 0); !math.IsInf(got, 1) {
		t.Fatalf("Speedup(x,0) = %v, want +Inf", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %v", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{1024, "1.0 KiB"},
		{1536, "1.5 KiB"},
		{1 << 20, "1.0 MiB"},
		{128 << 20, "128.0 MiB"},
		{1 << 30, "1.0 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatThroughput(t *testing.T) {
	if got := FormatThroughput(100); got != "100 B/s" {
		t.Fatalf("got %q", got)
	}
	if got := FormatThroughput(2048); got != "2.0 KiB/s" {
		t.Fatalf("got %q", got)
	}
	if got := FormatThroughput(3 * 1024 * 1024); got != "3.0 MiB/s" {
		t.Fatalf("got %q", got)
	}
}
