// Package stats provides the small statistical helpers the benchmark
// harness uses: summaries over repeated timing samples, compression-ratio
// and speedup arithmetic, and human-readable size formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a set of duration samples.
type Summary struct {
	N      int
	Mean   time.Duration
	StdDev time.Duration
	Min    time.Duration
	Max    time.Duration
	Median time.Duration
}

// Summarize computes a Summary over samples. It returns the zero Summary
// when samples is empty.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{N: len(samples), Min: samples[0], Max: samples[0]}
	var sum float64
	for _, d := range samples {
		sum += float64(d)
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	mean := sum / float64(len(samples))
	s.Mean = time.Duration(mean)
	var ss float64
	for _, d := range samples {
		diff := float64(d) - mean
		ss += diff * diff
	}
	if len(samples) > 1 {
		s.StdDev = time.Duration(math.Sqrt(ss / float64(len(samples)-1)))
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Ratio returns compressed/original as a fraction in [0, +inf).
// Following the paper's Table II convention, smaller is better and the
// value is usually rendered as a percentage.
func Ratio(compressed, original int) float64 {
	if original == 0 {
		return 0
	}
	return float64(compressed) / float64(original)
}

// RatioPercent renders Ratio as the paper does: "54.80%".
func RatioPercent(compressed, original int) string {
	return fmt.Sprintf("%.2f%%", Ratio(compressed, original)*100)
}

// Speedup returns base/other, i.e. how many times faster `other` is than
// `base`. Returns +Inf when other is zero and base is not.
func Speedup(base, other time.Duration) float64 {
	if other == 0 {
		if base == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(base) / float64(other)
}

// Throughput returns bytes processed per second for the given duration.
func Throughput(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds()
}

// FormatBytes renders a byte count with binary units (KiB, MiB, ...).
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatThroughput renders bytes/second with binary units.
func FormatThroughput(bytesPerSec float64) string {
	const unit = 1024.0
	if bytesPerSec < unit {
		return fmt.Sprintf("%.0f B/s", bytesPerSec)
	}
	exp := 0
	v := bytesPerSec / unit
	for v >= unit && exp < 5 {
		v /= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB/s", v, "KMGTPE"[exp])
}
