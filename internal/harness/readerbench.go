package harness

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
)

// Decompression-throughput cells for the streaming Reader's decode
// pipeline. Like the rest of the modeled basis, the numbers derive from
// operation counters and the simulator's schedule, not wall clock: each
// segment's decode cost is its GPU report's modeled total, the
// prefetcher's frame-read cost is a linear pass over the frame bytes,
// and the pipeline's makespan is computed by a deterministic
// earliest-free-worker schedule under in-order delivery. Same input,
// same times — host core count and scheduler noise cannot touch them,
// which is what lets a single-CPU CI runner assert a parallel-decode
// speedup.

// cyclesPerFrameByte is the prefetcher's modeled cost per encoded frame
// byte: one CRC pass plus buffer handling, the same order as the V1
// concatenation pass.
const cyclesPerFrameByte = 2

// readerSegments is the segment count the decode cells use: enough
// segments that an 8-wide pipeline stays full, few enough that the
// bench stays fast.
const readerSegments = 16

// ReaderDecodeCells benchmarks the framed Reader's decode pipeline at
// each worker count over the C-files corpus and returns one BenchCell
// per count (System "Reader Nw"). The stream is written once with the
// V1 GPU codec; per-segment modeled decode costs are collected through
// ReaderOptions.OnSegment during a real decode (so the cells also
// re-verify the plaintext round-trips), then scheduled by
// pipelineMakespan.
func ReaderDecodeCells(cfg Config, workerCounts []int) ([]BenchCell, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	segSize := (len(data) + readerSegments - 1) / readerSegments

	var stream bytes.Buffer
	w := core.NewWriterOptions(&stream, core.Params{Version: core.Version1}, core.StreamOptions{SegmentSize: segSize})
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("reader bench: writing stream: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("reader bench: closing stream: %w", err)
	}

	// One real decode collects the per-segment costs; frame-read cost is
	// approximated by the container bytes the prefetcher moves (the
	// framing overhead around them is a few dozen bytes per segment).
	var read, decode []time.Duration
	r, err := core.NewReaderOptions(bytes.NewReader(stream.Bytes()), core.Params{}, core.ReaderOptions{
		HostWorkers: 1,
		OnSegment: func(index, rawLen int, rep *gpu.Report) {
			if rep == nil {
				return
			}
			read = append(read, cyclesToDuration(float64(rep.InputBytes)*cyclesPerFrameByte))
			if cfg.Saturated {
				decode = append(decode, rep.SaturatedTotal())
			} else {
				decode = append(decode, rep.SimulatedTotal())
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("reader bench: opening stream: %w", err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reader bench: decoding stream: %w", err)
	}
	if !bytes.Equal(out, data) {
		return nil, fmt.Errorf("reader bench: round-trip mismatch: got %d bytes, want %d", len(out), len(data))
	}

	var cells []BenchCell
	for _, workers := range workerCounts {
		total := pipelineMakespan(read, decode, workers)
		cells = append(cells, BenchCell{
			Dataset:  "C files",
			System:   fmt.Sprintf("Reader %dw", workers),
			NsPerOp:  total.Nanoseconds(),
			SimMs:    float64(total.Nanoseconds()) / 1e6,
			RatioPct: float64(stream.Len()) / float64(len(data)) * 100,
		})
	}
	return cells, nil
}

// pipelineMakespan schedules per-segment (read, decode) costs through
// the Reader's pipeline shape — a serial prefetcher feeding `workers`
// decode workers with in-order delivery — and returns the modeled total:
// each segment becomes available when the prefetcher reaches it
// (cumulative read cost), starts on the earliest-free worker, and the
// stream completes when the last segment's decode does. Deterministic
// greedy assignment; with workers == 1 this degenerates to the serial
// sum, so speedup ratios are self-consistent.
func pipelineMakespan(read, decode []time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	free := make([]time.Duration, workers)
	var readDone, finish time.Duration
	for i := range read {
		readDone += read[i]
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		start := readDone
		if free[w] > start {
			start = free[w]
		}
		end := start + decode[i]
		free[w] = end
		if end > finish {
			finish = end
		}
	}
	return finish
}

// ExtensionParallelDecode is the ablation table for the Reader's decode
// pipeline: modeled decode totals for the C-files corpus across worker
// counts, with the speedup over the single-worker (pre-pipeline) Reader.
func ExtensionParallelDecode(cfg Config) (*Table, error) {
	cfg.fill()
	counts := []int{1, 2, 4, 8}
	cells, err := ReaderDecodeCells(cfg, counts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Extension — parallel pipelined stream decode (C files)",
		Columns: []string{"workers", "modeled total", "speedup vs 1w"},
		Notes: []string{
			"Reader pipeline: prefetcher + worker pool + in-order delivery (§III.C's overlap, decode side).",
			fmt.Sprintf("%d segments; per-segment cost = modeled GPU decompress, frame read = %d cycles/byte.", readerSegments, cyclesPerFrameByte),
		},
	}
	base := cells[0].NsPerOp
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", counts[i]),
			time.Duration(c.NsPerOp).Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(c.NsPerOp)),
		})
	}
	return t, nil
}
