package harness

import (
	"fmt"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
	"culzss/internal/lzss"
	"culzss/internal/stats"
)

// The §III.D ablations: each isolates one of the paper's design choices
// and shows its effect in the cudasim model.

// AblationSharedMemory reproduces the "30% speed up over the global memory
// implementation" claim for V1's shared-memory window staging.
func AblationSharedMemory(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Ablation — V1 search buffers in shared vs global memory (C files)",
		Columns: []string{"configuration", "kernel time", "vs shared"},
		Notes:   []string{"Paper §III.D reports ~30% speed-up from the shared-memory move."},
	}
	_, withShared, err := gpu.CompressV1(data, gpu.Options{})
	if err != nil {
		return nil, err
	}
	_, withoutShared, err := gpu.CompressV1(data, gpu.Options{DisableSharedMemory: true})
	if err != nil {
		return nil, err
	}
	base := withShared.Launch.KernelTime
	add := func(name string, r *gpu.Report) {
		t.Rows = append(t.Rows, []string{
			name,
			r.Launch.KernelTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(r.Launch.KernelTime)/float64(base)),
		})
	}
	add("shared memory (paper)", withShared)
	add("global only (ablation)", withoutShared)
	return t, nil
}

// AblationThreadsPerBlock sweeps the block width (paper: "128 threads per
// block configuration is giving the best performance"). Shapes that cannot
// be resident (V1's per-thread buffers at 512 threads exceed the SM) are
// reported as such, reproducing §V's shared-memory limitation.
func AblationThreadsPerBlock(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Ablation — threads per block (C files)",
		Columns: []string{"threads/block", "V1 total", "V1 occupancy", "V2 total", "V2 occupancy"},
		Notes:   []string{"Paper §III.D: 128 threads/block performs best; §V: 256-512 no longer fit V1's buffers."},
	}
	for _, tpb := range []int{32, 64, 128, 256, 512} {
		row := []string{fmt.Sprintf("%d", tpb)}
		if _, r1, err := gpu.CompressV1(data, gpu.Options{ThreadsPerBlock: tpb}); err != nil {
			row = append(row, "does not fit", "-")
		} else {
			row = append(row, r1.SaturatedTotal().Round(time.Microsecond).String(), fmt.Sprintf("%.2f", r1.Launch.Occupancy))
		}
		if _, r2, err := gpu.CompressV2(data, gpu.Options{ThreadsPerBlock: tpb}); err != nil {
			row = append(row, "does not fit", "-")
		} else {
			row = append(row, r2.SaturatedTotal().Round(time.Microsecond).String(), fmt.Sprintf("%.2f", r2.Launch.Occupancy))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationWindowSize sweeps the sliding-window size (paper §III.D: wider
// windows search longer but match better; 128 bytes is the sweet spot that
// also fits the 16-bit token).
func AblationWindowSize(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Ablation — window size, CULZSS V2 (C files)",
		Columns: []string{"window", "total time", "ratio"},
		Notes:   []string{"Paper §III.D: best performance at 128 bytes; larger windows need >16-bit tokens."},
	}
	for _, w := range []int{32, 64, 128, 256} {
		cfgLZ := lzss.CULZSSV2()
		cfgLZ.Window = w
		comp, r, err := gpu.CompressV2(data, gpu.Options{Config: cfgLZ})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			r.SaturatedTotal().Round(time.Microsecond).String(),
			stats.RatioPercent(len(comp), len(data)),
		})
	}
	return t, nil
}

// AblationBankSkew shows the effect of V2's four-character thread stagger
// on a device with pre-Fermi bank semantics (§III.B.2's bank-conflict
// avoidance; on Fermi the same-word broadcast hides it).
func AblationBankSkew(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Ablation — V2 thread stagger vs shared-memory bank conflicts (C files)",
		Columns: []string{"device", "stagger", "kernel time", "bank replay cycles"},
		Notes:   []string{"Paper §III.B.2 staggers threads by 4 chars to avoid bank conflicts."},
	}
	for _, legacy := range []bool{false, true} {
		dev := cudasim.FermiGTX480()
		dev.LegacyBankSemantics = legacy
		name := "Fermi (32 banks, broadcast)"
		if legacy {
			name = "G80-style (16 banks, no multicast)"
		}
		for _, skew := range []bool{true, false} {
			_, r, err := gpu.CompressV2(data, gpu.Options{Device: dev, DisableBankSkew: !skew})
			if err != nil {
				return nil, err
			}
			lbl := "on"
			if !skew {
				lbl = "off"
			}
			t.Rows = append(t.Rows, []string{
				name, lbl,
				r.Launch.KernelTime.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", r.Launch.SharedReplayCycles),
			})
		}
	}
	return t, nil
}

// AblationSearchAlgorithm is the §VII future-work item made real: the
// serial baseline with brute-force versus hash-chain matching.
func AblationSearchAlgorithm(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — serial LZSS search algorithm (§VII future work)",
		Columns: []string{"dataset", "brute force", "hash chain", "speed-up"},
		Notes:   []string{"Identical output streams; only the matcher changes."},
	}
	for _, ds := range datasets.All() {
		data := ds.Gen(cfg.Size, cfg.Seed)
		timeOf := func(search lzss.Search) (time.Duration, error) {
			best := time.Duration(0)
			for rep := 0; rep < cfg.Reps; rep++ {
				start := time.Now()
				if _, err := (func() ([]byte, error) {
					return lzss.EncodeBitPacked(data, lzss.Dipperstein(), search, nil)
				})(); err != nil {
					return 0, err
				}
				d := time.Since(start)
				if best == 0 || d < best {
					best = d
				}
			}
			return best, nil
		}
		brute, err := timeOf(lzss.SearchBrute)
		if err != nil {
			return nil, err
		}
		hash, err := timeOf(lzss.SearchHashChain)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			brute.Round(time.Microsecond).String(),
			hash.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", stats.Speedup(brute, hash)),
		})
	}
	return t, nil
}
