package harness

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"culzss/internal/codec"
	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/lzss"
	"culzss/internal/stats"
)

// Codec-routing cells for the framed Writer. Like the Reader decode
// cells, the numbers ride the Modeled timing basis: each segment's
// compress cost is its device report's modeled total plus the host
// post-pass, raw-store segments charge a linear copy, and the Writer's
// pipeline shape — a worker pool feeding the serial in-order emitter —
// is scheduled deterministically. Same input, same codec route, same
// times on any host, which is what lets the bench gate hold `Writer v2`
// and `Writer auto` cells to a baseline.

// writerBenchWorkers is the encode-worker count the Writer cells model,
// mirroring the Reader cells' 8-wide pipeline.
const writerBenchWorkers = 8

// writerRun drives a framed Writer over data with the given codec route
// and returns the stream length plus the in-order segment reports.
func writerRun(data []byte, segSize int, name string, pool *lzss.SearchStats) (int, []core.SegmentReport, error) {
	var reports []core.SegmentReport
	var buf bytes.Buffer
	w := core.NewWriterOptions(&buf, core.Params{Stats: pool}, core.StreamOptions{
		SegmentSize: segSize,
		Codec:       name,
		OnSegment:   func(sr core.SegmentReport) { reports = append(reports, sr) },
	})
	if _, err := w.Write(data); err != nil {
		return 0, nil, fmt.Errorf("writer bench %s: %w", name, err)
	}
	if err := w.Close(); err != nil {
		return 0, nil, fmt.Errorf("writer bench %s: %w", name, err)
	}
	return buf.Len(), reports, nil
}

// modeledSegmentCost returns the modeled compress cost of one emitted
// segment: device schedule plus host post-pass for the GPU codecs, a
// linear copy for the raw store. Segments from the stats-modeled host
// engines (serial, pthread, bzip2) have no per-segment counters and
// report ok=false; callers model those from the shared stats pool.
func modeledSegmentCost(sr core.SegmentReport, saturated bool) (time.Duration, bool) {
	if sr.Report != nil {
		// Swap the report's measured host step for the modeled one, the
		// same substitution the Modeled compression grid makes, so the
		// totals are deterministic on any host.
		sys := SysV1
		if sr.Codec == format.CodecCULZSSV2 {
			sys = SysV2
		}
		sr.Report.HostTime = modeledHostPass(sys, sr.Report)
		if saturated {
			return sr.Report.SaturatedTotal(), true
		}
		return sr.Report.SimulatedTotal(), true
	}
	if sr.Codec == format.CodecStoreRaw {
		return cyclesToDuration(float64(sr.RawLen) * cyclesPerConcatByte), true
	}
	return 0, false
}

// writerMakespan schedules per-segment compress costs through the
// Writer's pipeline shape — `workers` encode workers feeding a serial
// in-order emitter — and returns the modeled total. Segment i starts on
// the earliest-free worker; the emitter writes frames in index order, so
// frame i's emit cost is paid after both its compress finishes and every
// earlier frame has been emitted. The mirror of pipelineMakespan.
func writerMakespan(compress, emit []time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	free := make([]time.Duration, workers)
	var emitDone time.Duration
	for i := range compress {
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		end := free[w] + compress[i]
		free[w] = end
		if end > emitDone {
			emitDone = end
		}
		emitDone += emit[i]
	}
	return emitDone
}

// WriterCodecCells benchmarks the framed Writer routed through each
// named codec over the C-files corpus and returns one BenchCell per
// route (System "Writer <name>"). Only the device-reporting routes — the
// GPU codecs and the adaptive selector, whose choices all carry
// per-segment costs — are supported; the stats-modeled host engines
// belong to the compression grid, not the Writer cells.
func WriterCodecCells(cfg Config, names []string) ([]BenchCell, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	segSize := (len(data) + readerSegments - 1) / readerSegments

	var cells []BenchCell
	for _, name := range names {
		streamLen, reports, err := writerRun(data, segSize, name, nil)
		if err != nil {
			return nil, err
		}
		compress := make([]time.Duration, len(reports))
		emit := make([]time.Duration, len(reports))
		for i, sr := range reports {
			c, ok := modeledSegmentCost(sr, cfg.Saturated)
			if !ok {
				return nil, fmt.Errorf("writer bench %s: segment %d has no per-segment cost model (codec %v)",
					name, sr.Index, sr.Codec)
			}
			compress[i] = c
			emit[i] = cyclesToDuration(float64(sr.FrameLen) * cyclesPerFrameByte)
		}
		total := writerMakespan(compress, emit, writerBenchWorkers)
		cells = append(cells, BenchCell{
			Dataset:  "C files",
			System:   "Writer " + name,
			NsPerOp:  total.Nanoseconds(),
			SimMs:    float64(total.Nanoseconds()) / 1e6,
			RatioPct: float64(streamLen) / float64(len(data)) * 100,
		})
	}
	return cells, nil
}

// codecMix renders an in-order segment report list as a deterministic
// per-codec tally, e.g. "6×v2 + 4×v1 + 6×raw" (first-seen order).
func codecMix(reports []core.SegmentReport) string {
	counts := map[format.Codec]int{}
	var order []format.Codec
	for _, sr := range reports {
		if counts[sr.Codec] == 0 {
			order = append(order, sr.Codec)
		}
		counts[sr.Codec]++
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
	var b bytes.Buffer
	for i, c := range order {
		if i > 0 {
			b.WriteString(" + ")
		}
		name := c.String()
		if eng, ok := codec.Lookup(c); ok {
			name = eng.Name()
		}
		fmt.Fprintf(&b, "%d×%s", counts[c], name)
	}
	return b.String()
}

// AblationCodec is the codec-routing ablation: every dataset of the
// paper's corpus framed through V1, V2, the serial CPU engine, and the
// adaptive selector. The modeled total is the serial sum of per-segment
// compress costs (the pipeline shape is the Writer cells' concern; this
// table isolates the work each route performs), the ratio is the framed
// stream against the input, and the mix column shows what the selector
// actually chose. The selector's contract is visible in the rows: it
// matches the best fixed GPU route on compressible data and refuses to
// expand the random dataset past the raw-store header overhead.
func AblationCodec(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — per-segment codec routing (framed Writer)",
		Columns: []string{"dataset", "codec", "modeled compress", "ratio", "segments"},
		Notes: []string{
			fmt.Sprintf("%d segments per stream; ratio includes container + frame overhead.", readerSegments),
			"auto samples each segment (middle 32 KiB, byte-aligned V1 probe) and routes to v2, v1, or raw store.",
		},
	}
	routes := []string{"v1", "v2", "cpu", codec.Auto}
	for _, ds := range datasets.All() {
		data := ds.Gen(cfg.Size, cfg.Seed)
		segSize := (len(data) + readerSegments - 1) / readerSegments
		for _, name := range routes {
			var pool lzss.SearchStats
			streamLen, reports, err := writerRun(data, segSize, name, &pool)
			if err != nil {
				return nil, err
			}
			var total time.Duration
			for _, sr := range reports {
				c, ok := modeledSegmentCost(sr, cfg.Saturated)
				if !ok {
					// Stats-modeled host engine: the pool holds the whole
					// stream's counters; charge them once, serially.
					total = modeledSearchTime(pool, 1)
					break
				}
				total += c
			}
			t.Rows = append(t.Rows, []string{
				ds.Name, name,
				total.Round(time.Microsecond).String(),
				stats.RatioPercent(streamLen, len(data)),
				codecMix(reports),
			})
		}
	}
	return t, nil
}
