// Package harness runs the paper's evaluation (§IV): all five systems —
// serial LZSS, pthread LZSS, BZIP2, CULZSS V1 and CULZSS V2 — over the
// five datasets, and renders Tables I–III and Figure 4 plus the §III.D
// ablations.
//
// Timing basis: CPU systems report measured wall-clock on this host; GPU
// systems report the cudasim model's simulated end-to-end time (transfers
// + kernel + host step). Both bases are recorded in every Result so the
// output can show them side by side; EXPERIMENTS.md discusses the
// comparison with the paper's absolute numbers.
package harness

import (
	"fmt"
	"time"

	"culzss/internal/bzip2"
	"culzss/internal/bzip2/bwt"
	"culzss/internal/cpulzss"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
	"culzss/internal/lzss"
	"culzss/internal/stats"
)

// System identifiers, in the paper's column order.
const (
	SysSerial  = "Serial LZSS"
	SysPthread = "Pthread LZSS"
	SysBZip2   = "BZIP2"
	SysV1      = "CULZSS V1"
	SysV2      = "CULZSS V2"
)

// Systems returns the Table I column order.
func Systems() []string {
	return []string{SysSerial, SysPthread, SysBZip2, SysV1, SysV2}
}

// Config shapes an evaluation run.
type Config struct {
	// Size is the bytes generated per dataset (the paper used 128 MB;
	// defaults here are smaller so runs finish in minutes, and the shape
	// — who wins where — is size-stable).
	Size int
	// Reps is the repetition count averaged per cell (paper: 10).
	Reps int
	// Seed feeds the dataset generators.
	Seed int64
	// Workers is the pthread-version thread count; 0 means GOMAXPROCS.
	Workers int
	// SerialSearch selects the serial baseline's matcher. The paper's
	// serial code is the brute-force scan (default); SearchHashChain runs
	// the §VII improved-search extension instead.
	SerialSearch lzss.Search
	// Saturated reports GPU cells at the saturated-device time (work
	// spread over every SM) instead of the actual wave schedule. The
	// paper's 128 MB inputs saturate the GTX 480; inputs under ~32 MiB
	// leave most SMs idle in V1's chunk-per-thread grid, so saturated
	// times are the size-independent basis for comparing shapes.
	Saturated bool
	// Modeled replaces every measured wall-clock component with a
	// deterministic model driven by operation counters (modeled.go): CPU
	// cells from their search/sort statistics, GPU cells' host post-pass
	// from the bytes it touches. Same input, same times — the basis the
	// shape assertions use so they cannot flake on host noise or the
	// race detector's slowdown. Result.Wall stays measured either way.
	Modeled bool
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(msg string)
}

func (c *Config) fill() {
	if c.Size <= 0 {
		c.Size = 1 << 20
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 20110926 // CLUSTER 2011 week, for determinism
	}
}

// Filled returns a copy with the defaults applied — what a run with
// this config actually uses (bench reports record it).
func (c Config) Filled() Config {
	c.fill()
	return c
}

// modelWorkers is the pthread worker count the modeled basis divides
// by. Config.Workers when set; otherwise a fixed 8 (the paper's pthread
// configuration) rather than GOMAXPROCS, so modeled times do not vary
// with the host's core count.
func (c *Config) modelWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 8
}

func (c *Config) logf(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// cpuBaselineConfig is the LZSS configuration of the serial and pthread
// baselines: the same 128-byte window / 18-byte lookahead as CULZSS.
// Table II implies the paper ran its serial baseline this way — its serial
// ratios sit within a point of V1's on every dataset (54.80% vs 55.70% on
// C files), which only happens when the dictionaries match; and the
// serial throughput in Table I (~2.5 MB/s) is 15-20x too fast for a
// brute-force 4 KiB-window scan on a 2.67 GHz core but exactly right for
// a 128-byte one.
var cpuBaselineConfig = lzss.Config{Window: 128, MaxMatch: 18, MinMatch: 3}

// Result is one (dataset, system) cell of the evaluation.
type Result struct {
	Dataset string
	System  string

	OriginalLen   int
	CompressedLen int

	// Time is the reporting basis: measured wall for CPU systems,
	// simulated end-to-end for GPU systems (mean over reps).
	Time time.Duration
	// Wall is the measured host wall-clock either way (mean over reps).
	Wall time.Duration
	// Samples holds the per-rep reporting-basis times.
	Samples []time.Duration

	// GPU-only extras (nil otherwise).
	GPUReport *gpu.Report
	// BZip2-only sort statistics (zero otherwise).
	SortStats bwt.Stats
}

// Ratio returns compressed/original.
func (r *Result) Ratio() float64 { return stats.Ratio(r.CompressedLen, r.OriginalLen) }

// Matrix holds the full evaluation grid.
type Matrix struct {
	Datasets []string
	Systems  []string
	// Saturated records whether GPU cells report saturated-device times.
	Saturated bool
	cells     map[string]*Result
}

func key(dataset, system string) string { return dataset + "\x00" + system }

// Cell returns the result for (dataset, system), or nil.
func (m *Matrix) Cell(dataset, system string) *Result { return m.cells[key(dataset, system)] }

func (m *Matrix) put(r *Result) {
	if m.cells == nil {
		m.cells = map[string]*Result{}
	}
	m.cells[key(r.Dataset, r.System)] = r
}

// RunCompression produces the compression evaluation grid behind Table I,
// Table II and Figure 4.
func RunCompression(cfg Config) (*Matrix, error) {
	cfg.fill()
	m := &Matrix{Systems: Systems(), Saturated: cfg.Saturated}
	for _, ds := range datasets.All() {
		m.Datasets = append(m.Datasets, ds.Name)
		data := ds.Gen(cfg.Size, cfg.Seed)
		for _, sys := range m.Systems {
			res, err := runCompressionCell(&cfg, ds.Name, sys, data)
			if err != nil {
				return nil, fmt.Errorf("%s / %s: %w", ds.Name, sys, err)
			}
			m.put(res)
			cfg.logf("%-14s %-13s time=%-12v ratio=%5.1f%%", ds.Name, sys, res.Time.Round(time.Microsecond), res.Ratio()*100)
		}
	}
	return m, nil
}

func runCompressionCell(cfg *Config, dsName, sys string, data []byte) (*Result, error) {
	res := &Result{Dataset: dsName, System: sys, OriginalLen: len(data)}
	var wallSum time.Duration
	for rep := 0; rep < cfg.Reps; rep++ {
		start := time.Now()
		var (
			comp    []byte
			report  *gpu.Report
			err     error
			modeled time.Duration // CPU-cell modeled basis (Config.Modeled)
			search  lzss.SearchStats
		)
		switch sys {
		case SysSerial:
			opts := cpulzss.Options{Config: cpuBaselineConfig, Search: cfg.SerialSearch}
			if cfg.Modeled {
				opts.Stats = &search
			}
			comp, err = cpulzss.CompressSerial(data, opts)
			if cfg.Modeled {
				modeled = modeledSearchTime(search, 1)
			}
		case SysPthread:
			opts := cpulzss.Options{Config: cpuBaselineConfig, Search: cfg.SerialSearch, Workers: cfg.Workers}
			if cfg.Modeled {
				opts.Stats = &search
			}
			comp, err = cpulzss.CompressParallel(data, opts)
			if cfg.Modeled {
				modeled = modeledSearchTime(search, cfg.modelWorkers())
			}
		case SysBZip2:
			var st bwt.Stats
			comp, err = bzip2.Compress(data, bzip2.Options{Workers: 1, SortStats: &st})
			res.SortStats = st
			if cfg.Modeled {
				modeled = modeledBZip2Time(st, len(data))
			}
		case SysV1:
			comp, report, err = gpu.CompressV1(data, gpu.Options{})
		case SysV2:
			comp, report, err = gpu.CompressV2(data, gpu.Options{})
		default:
			return nil, fmt.Errorf("unknown system %q", sys)
		}
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		wallSum += wall
		basis := wall
		if report != nil {
			if cfg.Modeled {
				// Swap the report's measured host step for the modeled
				// one, so every total derived from it — including the
				// SaturatedTotal the shape test reads — is deterministic.
				report.HostTime = modeledHostPass(sys, report)
			}
			if cfg.Saturated {
				basis = report.SaturatedTotal()
			} else {
				basis = report.SimulatedTotal()
			}
			res.GPUReport = report
		} else if cfg.Modeled {
			basis = modeled
		}
		res.Samples = append(res.Samples, basis)
		res.CompressedLen = len(comp)
	}
	res.Time = stats.Summarize(res.Samples).Mean
	res.Wall = wallSum / time.Duration(cfg.Reps)
	return res, nil
}

// RunDecompression produces the Table III grid: serial CPU decompression
// versus the shared CULZSS GPU decompressor, both in-memory (§IV.D).
func RunDecompression(cfg Config) (*Matrix, error) {
	cfg.fill()
	m := &Matrix{Systems: []string{SysSerial, "CULZSS"}, Saturated: cfg.Saturated}
	for _, ds := range datasets.All() {
		m.Datasets = append(m.Datasets, ds.Name)
		data := ds.Gen(cfg.Size, cfg.Seed)

		serialCont, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: cpuBaselineConfig, Search: lzss.SearchHashChain})
		if err != nil {
			return nil, err
		}
		gpuCont, _, err := gpu.CompressV1(data, gpu.Options{})
		if err != nil {
			return nil, err
		}

		ser := &Result{Dataset: ds.Name, System: SysSerial, OriginalLen: len(data), CompressedLen: len(serialCont)}
		for rep := 0; rep < cfg.Reps; rep++ {
			start := time.Now()
			out, err := cpulzss.Decompress(serialCont, 1)
			if err != nil {
				return nil, err
			}
			if len(out) != len(data) {
				return nil, fmt.Errorf("serial decompression length mismatch")
			}
			ser.Samples = append(ser.Samples, time.Since(start))
		}
		ser.Time = stats.Summarize(ser.Samples).Mean
		ser.Wall = ser.Time
		m.put(ser)

		cul := &Result{Dataset: ds.Name, System: "CULZSS", OriginalLen: len(data), CompressedLen: len(gpuCont)}
		var wallSum time.Duration
		for rep := 0; rep < cfg.Reps; rep++ {
			start := time.Now()
			out, report, err := gpu.Decompress(gpuCont, gpu.Options{})
			if err != nil {
				return nil, err
			}
			if len(out) != len(data) {
				return nil, fmt.Errorf("gpu decompression length mismatch")
			}
			wallSum += time.Since(start)
			if cfg.Saturated {
				cul.Samples = append(cul.Samples, report.SaturatedTotal())
			} else {
				cul.Samples = append(cul.Samples, report.SimulatedTotal())
			}
			cul.GPUReport = report
		}
		cul.Time = stats.Summarize(cul.Samples).Mean
		cul.Wall = wallSum / time.Duration(cfg.Reps)
		m.put(cul)

		cfg.logf("%-14s decompression: serial=%v culzss=%v", ds.Name,
			ser.Time.Round(time.Microsecond), cul.Time.Round(time.Microsecond))
	}
	return m, nil
}
