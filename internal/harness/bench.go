package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Bench-regression reports. cubench -json serializes a compression run
// (plus the Reader decode-pipeline and Writer codec-routing cells) as
// one BenchReport; a committed baseline (BENCH_10.json at the repo
// root) plus cubench -against turns any later run into a regression
// gate. The reports are meant to ride the Modeled timing basis: every
// number derives from operation counters and the simulator's schedule,
// so a >tolerance delta is a real change in the code's work, not host
// noise.

// BenchCell is one (dataset, system) measurement.
type BenchCell struct {
	Dataset string `json:"dataset"`
	System  string `json:"system"`
	// NsPerOp is the reporting-basis time to compress the dataset once.
	NsPerOp int64 `json:"ns_per_op"`
	// SimMs is the same time in milliseconds (for human diffing).
	SimMs float64 `json:"sim_ms"`
	// RatioPct is compressed/original in percent.
	RatioPct float64 `json:"ratio_pct"`
}

// BenchConfig records how the report was produced, so -against can
// refuse to compare apples to oranges.
type BenchConfig struct {
	Size         int    `json:"size"`
	Reps         int    `json:"reps"`
	Seed         int64  `json:"seed"`
	SerialSearch string `json:"serial_search"`
	Saturated    bool   `json:"saturated"`
	Modeled      bool   `json:"modeled"`
}

// BenchReport is the cubench -json output.
type BenchReport struct {
	Config BenchConfig `json:"config"`
	Cells  []BenchCell `json:"cells"`
}

// BenchFromMatrix flattens a compression grid into a report. Cells are
// sorted (dataset, system) so the JSON diffs cleanly.
func BenchFromMatrix(m *Matrix, bc BenchConfig) *BenchReport {
	rep := &BenchReport{Config: bc}
	for _, ds := range m.Datasets {
		for _, sys := range m.Systems {
			c := m.Cell(ds, sys)
			if c == nil {
				continue
			}
			t := c.Time
			if c.GPUReport != nil && m.Saturated {
				t = c.GPUReport.SaturatedTotal()
			}
			rep.Cells = append(rep.Cells, BenchCell{
				Dataset:  ds,
				System:   sys,
				NsPerOp:  t.Nanoseconds(),
				SimMs:    float64(t.Nanoseconds()) / 1e6,
				RatioPct: c.Ratio() * 100,
			})
		}
	}
	rep.Sort()
	return rep
}

// Sort restores the (dataset, system) cell order after appending cells
// outside BenchFromMatrix (the Reader decode cells), keeping the JSON
// diff-stable.
func (r *BenchReport) Sort() {
	sort.Slice(r.Cells, func(i, j int) bool {
		if r.Cells[i].Dataset != r.Cells[j].Dataset {
			return r.Cells[i].Dataset < r.Cells[j].Dataset
		}
		return r.Cells[i].System < r.Cells[j].System
	})
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a report written by WriteJSON.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	return &rep, nil
}

// Compare checks r (the current run) against a baseline and returns one
// message per regression: a cell whose time grew by more than tolerance
// (0.25 = +25%), or a baseline cell the current run no longer produces.
// Improvements and new cells are not regressions. Mismatched configs
// are reported as a single regression, since the numbers would be
// incomparable.
func (r *BenchReport) Compare(baseline *BenchReport, tolerance float64) []string {
	if r.Config != baseline.Config {
		return []string{fmt.Sprintf("config mismatch: current %+v vs baseline %+v (regenerate the baseline)",
			r.Config, baseline.Config)}
	}
	cur := make(map[string]BenchCell, len(r.Cells))
	for _, c := range r.Cells {
		cur[c.Dataset+"\x00"+c.System] = c
	}
	var regressions []string
	for _, base := range baseline.Cells {
		c, ok := cur[base.Dataset+"\x00"+base.System]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s / %s: cell missing from current run", base.Dataset, base.System))
			continue
		}
		if base.NsPerOp <= 0 {
			continue
		}
		limit := float64(base.NsPerOp) * (1 + tolerance)
		if float64(c.NsPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s / %s: %.3fms vs baseline %.3fms (+%.1f%%, tolerance %.0f%%)",
				base.Dataset, base.System, c.SimMs, base.SimMs,
				(float64(c.NsPerOp)/float64(base.NsPerOp)-1)*100, tolerance*100))
		}
	}
	return regressions
}
