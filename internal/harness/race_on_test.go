//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. The
// V1-vs-V2 shape assertions fold a *measured* host step (V2's sequential
// post-pass) into the simulated saturated totals; the detector's ~10x
// instrumentation overhead on that real CPU work distorts the comparison,
// so those assertions skip under -race (everything else still runs).
const raceEnabled = true
