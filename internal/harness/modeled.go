package harness

import (
	"time"

	"culzss/internal/bzip2/bwt"
	"culzss/internal/gpu"
	"culzss/internal/lzss"
)

// Modeled timing basis.
//
// The harness's default basis mixes two clocks: the GPU cells report the
// simulator's deterministic schedule, while the CPU cells (and the GPU
// versions' host post-passes) report measured wall-clock. Measured time
// is the honest basis for benchmarking, but it makes the *shape*
// assertions (who wins where — Table I's qualitative structure) hostage
// to host noise, and the race detector's ~10x slowdown on instrumented
// CPU work breaks the V1-vs-V2 comparison outright.
//
// Config.Modeled replaces every measured component with a deterministic
// model driven by the encoders' own operation counters: the serial and
// pthread cells charge a fixed cycle cost per search operation
// (lzss.SearchStats), the BZIP2 cell per sort comparison and
// fallback-round element (bwt.Stats), and the GPU cells' host post-pass
// per byte it touches. Same input, same counters, same times — on any
// host, under any detector. The cycle weights below are calibrated
// against measured runs on a 2.67 GHz core (the basis the baseline
// throughput discussion in harness.go already assumes), so modeled
// magnitudes stay in the measured ballpark; only their variance is gone.

// modeledHostHz is the modeled host clock: the 2.67 GHz the serial
// baseline's throughput analysis assumes.
const modeledHostHz = 2.67e9

// cyclesToDuration converts a modeled cycle count to time on the modeled
// host clock.
func cyclesToDuration(cycles float64) time.Duration {
	return time.Duration(cycles / modeledHostHz * float64(time.Second))
}

// Modeled per-operation cycle weights, calibrated against measured
// 2 MiB runs (brute-force C files: 124M comparisons + 119M offsets in
// ~270ms measured ≈ 2.9 cycles per visited offset/comparison pair).
const (
	cyclesPerPosition   = 20 // loop + token-emit overhead per input position
	cyclesPerOffset     = 2  // candidate-offset bookkeeping
	cyclesPerComparison = 2  // one byte compare
	cyclesPerMainSort   = 2  // BWT bucket+quicksort comparison
	cyclesPerFallback   = 4  // BWT prefix-doubling, per element per round
	cyclesPerBWTByte    = 30 // MTF + RLE + Huffman linear passes
	cyclesPerConcatByte = 2  // V1 host step: bucket concatenation, per output byte
	cyclesPerSelectByte = 9  // V2 host step: token selection + flag generation, per input byte
)

// modeledSearchTime converts LZSS search counters to modeled host time,
// divided across workers (1 for the serial baseline). The pthread model
// adds a fixed pool spin-up cost so zero-work inputs still cost time.
func modeledSearchTime(st lzss.SearchStats, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	cycles := float64(st.Positions)*cyclesPerPosition +
		float64(st.Offsets)*cyclesPerOffset +
		float64(st.Comparisons)*cyclesPerComparison
	d := cyclesToDuration(cycles / float64(workers))
	if workers > 1 {
		d += 200 * time.Microsecond
	}
	return d
}

// modeledBZip2Time converts BWT sort counters plus the linear
// entropy-coding passes to modeled host time. The fallback term is what
// reproduces the paper's pathology: on the period-20 highly-compressible
// data nearly every rotation ties into the prefix-doubling fallback, and
// its elements x rounds product dwarfs the main sort.
func modeledBZip2Time(st bwt.Stats, inputLen int) time.Duration {
	cycles := float64(st.MainCompares)*cyclesPerMainSort +
		float64(st.FallbackElems)*float64(st.FallbackRounds)*cyclesPerFallback +
		float64(inputLen)*cyclesPerBWTByte
	return cyclesToDuration(cycles)
}

// modeledHostPass returns the modeled duration of a GPU version's serial
// host step: V1 concatenates the per-chunk buckets (work proportional to
// the output), V2 selects tokens and generates flag bits (work
// proportional to the input it walks).
func modeledHostPass(sys string, rep *gpu.Report) time.Duration {
	if sys == SysV2 {
		return cyclesToDuration(float64(rep.InputBytes) * cyclesPerSelectByte)
	}
	return cyclesToDuration(float64(rep.OutputBytes) * cyclesPerConcatByte)
}
