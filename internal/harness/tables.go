package harness

import (
	"fmt"
	"strings"

	"culzss/internal/stats"
)

// Table is a rendered evaluation table in the paper's row/column layout.
type Table struct {
	Title   string
	Columns []string   // column headers (first column is the row label)
	Rows    [][]string // each row starts with its label
	Notes   []string
}

// Render produces an aligned ASCII rendition.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// secs renders a duration in seconds with adaptive precision, matching the
// paper's "50.58" style.
func secs(d float64) string {
	switch {
	case d >= 100:
		return fmt.Sprintf("%.1f", d)
	case d >= 0.01:
		return fmt.Sprintf("%.2f", d)
	default:
		return fmt.Sprintf("%.4f", d)
	}
}

// TableI renders the compression-times table (paper Table I).
func TableI(m *Matrix) *Table {
	t := &Table{
		Title:   "Table I — Compression benchmark average running times (in seconds)",
		Columns: append([]string{""}, m.Systems...),
		Notes: []string{
			"CPU systems: measured wall-clock. CULZSS: simulated GTX480 end-to-end",
			"(H2D + kernel + host step + D2H) from the cudasim model.",
		},
	}
	if m.Saturated {
		t.Notes = append(t.Notes,
			"GPU cells use saturated-device kernel times (work spread over all 15 SMs),",
			"the size-independent basis; the paper's 128 MB inputs saturate the device.")
	}
	for _, ds := range m.Datasets {
		row := []string{ds}
		for _, sys := range m.Systems {
			row = append(row, secs(m.Cell(ds, sys).Time.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableII renders the compression-ratio table (paper Table II: Serial,
// BZIP2, V1, V2; smaller is better).
func TableII(m *Matrix) *Table {
	cols := []string{SysSerial, SysBZip2, SysV1, SysV2}
	t := &Table{
		Title:   "Table II — Compression ratios (smaller is better)",
		Columns: append([]string{""}, "Serial", "BZIP2", "V1", "V2"),
	}
	for _, ds := range m.Datasets {
		row := []string{ds}
		for _, sys := range cols {
			row = append(row, stats.RatioPercent(m.Cell(ds, sys).CompressedLen, m.Cell(ds, sys).OriginalLen))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableIII renders the decompression-times table (paper Table III) from a
// RunDecompression matrix.
func TableIII(m *Matrix) *Table {
	t := &Table{
		Title:   "Table III — Decompression benchmark average running times (in seconds)",
		Columns: []string{"", "Serial LZSS", "CULZSS"},
		Notes: []string{
			"In-memory decompression (no I/O), as in paper §IV.D.",
		},
	}
	for _, ds := range m.Datasets {
		row := []string{ds,
			secs(m.Cell(ds, SysSerial).Time.Seconds()),
			secs(m.Cell(ds, "CULZSS").Time.Seconds()),
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure4 renders the speed-up chart (paper Figure 4): every system's
// compression speed-up over the serial LZSS implementation, as a table of
// factors plus ASCII bars.
func Figure4(m *Matrix) *Table {
	others := []string{SysPthread, SysBZip2, SysV1, SysV2}
	t := &Table{
		Title:   "Figure 4 — Compression speed-up against the serial LZSS implementation",
		Columns: append([]string{""}, others...),
	}
	for _, ds := range m.Datasets {
		base := m.Cell(ds, SysSerial).Time
		row := []string{ds}
		for _, sys := range others {
			row = append(row, fmt.Sprintf("%.2fx", stats.Speedup(base, m.Cell(ds, sys).Time)))
		}
		t.Rows = append(t.Rows, row)
	}
	// ASCII bars, one block per system per dataset.
	maxSpeed := 1.0
	speed := map[string]float64{}
	for _, ds := range m.Datasets {
		base := m.Cell(ds, SysSerial).Time
		for _, sys := range others {
			s := stats.Speedup(base, m.Cell(ds, sys).Time)
			speed[key(ds, sys)] = s
			if s > maxSpeed {
				maxSpeed = s
			}
		}
	}
	const barWidth = 50
	t.Notes = append(t.Notes, "")
	for _, ds := range m.Datasets {
		t.Notes = append(t.Notes, ds)
		for _, sys := range others {
			s := speed[key(ds, sys)]
			n := int(s / maxSpeed * barWidth)
			if n < 1 {
				n = 1
			}
			t.Notes = append(t.Notes, fmt.Sprintf("  %-13s %s %.2fx", sys, strings.Repeat("#", n), s))
		}
	}
	return t
}

// SpeedupOf returns a single Figure 4 data point.
func SpeedupOf(m *Matrix, dataset, system string) float64 {
	return stats.Speedup(m.Cell(dataset, SysSerial).Time, m.Cell(dataset, system).Time)
}

// CSV renders the table as RFC-4180-ish CSV (title as a comment line),
// for downstream plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
