package harness

import (
	"testing"
	"time"
)

// The modeled decode cells are the bench gate's parallel-decode
// evidence: deterministic, and the 8-worker pipeline at least 3x the
// single-worker Reader on the 1 MiB corpus (the PR's acceptance bar).
func TestReaderDecodeCellsSpeedupAndDeterminism(t *testing.T) {
	cfg := Config{Size: 1 << 20, Reps: 1, Modeled: true}
	cells, err := ReaderDecodeCells(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	one, eight := cells[0], cells[1]
	if one.System != "Reader 1w" || eight.System != "Reader 8w" {
		t.Fatalf("unexpected systems %q, %q", one.System, eight.System)
	}
	if one.NsPerOp <= 0 || eight.NsPerOp <= 0 {
		t.Fatalf("non-positive modeled times: %d, %d", one.NsPerOp, eight.NsPerOp)
	}
	if speedup := float64(one.NsPerOp) / float64(eight.NsPerOp); speedup < 3 {
		t.Errorf("8-worker speedup %.2fx, want >= 3x (1w=%v 8w=%v)",
			speedup, time.Duration(one.NsPerOp), time.Duration(eight.NsPerOp))
	}

	again, err := ReaderDecodeCells(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Errorf("cell %d not deterministic: %+v vs %+v", i, cells[i], again[i])
		}
	}
}

// pipelineMakespan invariants: monotone in worker count, serial case is
// the plain sum, and a worker count beyond the segment count changes
// nothing.
func TestPipelineMakespan(t *testing.T) {
	read := make([]time.Duration, 16)
	decode := make([]time.Duration, 16)
	for i := range read {
		read[i] = time.Millisecond
		decode[i] = 80 * time.Millisecond
	}
	serial := pipelineMakespan(read, decode, 1)
	// First decode starts after the first read; every later decode starts
	// when the previous one ends (the reads overlap the long decodes).
	if want := 1*time.Millisecond + 16*80*time.Millisecond; serial != want {
		t.Errorf("serial makespan %v, want %v", serial, want)
	}
	prev := serial
	for _, w := range []int{2, 4, 8, 16} {
		got := pipelineMakespan(read, decode, w)
		if got > prev {
			t.Errorf("makespan grew with workers: %d workers -> %v, previous %v", w, got, prev)
		}
		prev = got
	}
	if a, b := pipelineMakespan(read, decode, 16), pipelineMakespan(read, decode, 64); a != b {
		t.Errorf("idle workers changed the schedule: %v vs %v", a, b)
	}
}
