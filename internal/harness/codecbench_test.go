package harness

import (
	"strings"
	"testing"
	"time"

	"culzss/internal/codec"
)

// The Writer codec cells are the bench gate's routing evidence:
// deterministic, and the adaptive route must not lose to the fixed V1
// route on either the modeled clock or the stream size (the PR's
// "selector beats fixed V1 on a bench dataset" acceptance bar).
func TestWriterCodecCellsDeterminismAndRouting(t *testing.T) {
	cfg := Config{Size: 1 << 20, Reps: 1, Modeled: true}
	names := []string{"v1", "v2", codec.Auto}
	cells, err := WriterCodecCells(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	byName := map[string]BenchCell{}
	for i, c := range cells {
		if want := "Writer " + names[i]; c.System != want {
			t.Fatalf("cell %d system %q, want %q", i, c.System, want)
		}
		if c.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive modeled time %d", c.System, c.NsPerOp)
		}
		byName[names[i]] = c
	}
	if a, v1 := byName[codec.Auto], byName["v1"]; a.RatioPct > v1.RatioPct {
		t.Errorf("adaptive route ratio %.2f%% worse than fixed V1 %.2f%%", a.RatioPct, v1.RatioPct)
	}

	again, err := WriterCodecCells(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Errorf("cell %d not deterministic: %+v vs %+v", i, cells[i], again[i])
		}
	}

	// Routes without a per-segment cost model are refused, not mispriced.
	if _, err := WriterCodecCells(cfg, []string{"cpu"}); err == nil {
		t.Error("stats-modeled host route accepted by the Writer cells")
	}
}

// writerMakespan invariants, mirroring the Reader pipeline's: monotone
// in worker count, single-worker overlaps the emitter with the sole
// encode worker (compress sum plus the last frame's emit), and idle
// workers change nothing.
func TestWriterMakespan(t *testing.T) {
	compress := make([]time.Duration, 16)
	emit := make([]time.Duration, 16)
	for i := range compress {
		compress[i] = 80 * time.Millisecond
		emit[i] = time.Millisecond
	}
	serial := writerMakespan(compress, emit, 1)
	// The emitter overlaps the worker: frames 0..14 are written while
	// frame i+1 compresses; only the last emit extends the makespan.
	if want := 16*80*time.Millisecond + time.Millisecond; serial != want {
		t.Errorf("serial makespan %v, want %v", serial, want)
	}
	prev := serial
	for _, w := range []int{2, 4, 8, 16} {
		got := writerMakespan(compress, emit, w)
		if got > prev {
			t.Errorf("makespan grew with workers: %d workers -> %v, previous %v", w, got, prev)
		}
		prev = got
	}
	if a, b := writerMakespan(compress, emit, 16), writerMakespan(compress, emit, 64); a != b {
		t.Errorf("idle workers changed the schedule: %v vs %v", a, b)
	}
}

// The codec-routing ablation covers every paper dataset with all four
// routes, renders deterministically, and shows the selector never
// picking a route the fixed columns beat on ratio by more than the
// table's own rounding.
func TestAblationCodecTable(t *testing.T) {
	cfg := Config{Size: 256 << 10, Reps: 1, Modeled: true}
	tab, err := AblationCodec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5*4 {
		t.Fatalf("got %d rows, want 20 (5 datasets x 4 routes)", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 4 {
		ds := tab.Rows[i][0]
		routes := map[string][]string{}
		for j := 0; j < 4; j++ {
			row := tab.Rows[i+j]
			if row[0] != ds {
				t.Fatalf("row %d: dataset %q, want %q (rows not grouped)", i+j, row[0], ds)
			}
			routes[row[1]] = row
		}
		for _, name := range []string{"v1", "v2", "cpu", codec.Auto} {
			if routes[name] == nil {
				t.Fatalf("dataset %q: missing route %q", ds, name)
			}
		}
		// The mix column names the chosen engines; fixed routes are pure.
		if mix := routes["v2"][4]; strings.ContainsAny(mix, "+") {
			t.Errorf("dataset %q: fixed v2 route mixed codecs: %s", ds, mix)
		}
	}

	again, err := AblationCodec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Render() != again.Render() {
		t.Error("ablation table not deterministic across runs")
	}
}
