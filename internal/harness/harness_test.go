package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"culzss/internal/lzss"
)

// testConfig keeps harness tests fast: small inputs, single rep, and the
// hash-chain serial matcher (identical output to brute force, far faster).
func testConfig() Config {
	return Config{Size: 96 << 10, Reps: 1, Seed: 99, SerialSearch: lzss.SearchHashChain}
}

func TestRunCompressionGrid(t *testing.T) {
	m, err := RunCompression(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Datasets) != 5 || len(m.Systems) != 5 {
		t.Fatalf("grid %dx%d", len(m.Datasets), len(m.Systems))
	}
	for _, ds := range m.Datasets {
		for _, sys := range m.Systems {
			c := m.Cell(ds, sys)
			if c == nil {
				t.Fatalf("missing cell %s/%s", ds, sys)
			}
			if c.Time <= 0 {
				t.Fatalf("%s/%s: non-positive time", ds, sys)
			}
			if c.CompressedLen <= 0 || c.OriginalLen != 96<<10 {
				t.Fatalf("%s/%s: bad sizes %d/%d", ds, sys, c.CompressedLen, c.OriginalLen)
			}
			if c.Ratio() <= 0 || c.Ratio() > 1.2 {
				t.Fatalf("%s/%s: implausible ratio %v", ds, sys, c.Ratio())
			}
		}
	}
	// GPU cells carry reports; bzip2 cells carry sort stats.
	if m.Cell("C files", SysV1).GPUReport == nil {
		t.Fatal("V1 cell missing GPU report")
	}
	if m.Cell("Highly Compr.", SysBZip2).SortStats.FallbackElems == 0 {
		t.Fatal("bzip2 fallback stats missing on highly-compressible data")
	}
}

// TestPaperShapeHolds asserts the qualitative Table I / Table II / Figure 4
// relationships the reproduction targets (DESIGN.md §4). It runs the
// paper's configuration — brute-force serial baseline — at a size where
// the simulated device is reasonably utilised, on the Modeled timing
// basis: every duration derives from operation counters, so the
// assertions are deterministic on any host, including under -race (which
// used to force skipping the V1-vs-V2 comparison when the basis mixed in
// measured host time).
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the full grid at 2 MiB")
	}
	cfg := Config{Size: 2 << 20, Reps: 1, Seed: 99, SerialSearch: lzss.SearchBrute, Modeled: true}
	m, err := RunCompression(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// GPU comparisons use the saturated-device times: at the paper's
	// 128 MB the grids fill the GPU, but at the 2 MiB test size V1's
	// chunk-per-thread grid spawns only 4 blocks for 15 SMs.
	gpuTime := func(ds, sys string) time.Duration {
		return m.Cell(ds, sys).GPUReport.SaturatedTotal()
	}
	for _, ds := range m.Datasets {
		serial := m.Cell(ds, SysSerial).Time
		v1 := gpuTime(ds, SysV1)
		v2 := gpuTime(ds, SysV2)
		// V1 beats serial everywhere (Figure 4: all V1 speed-ups > 1).
		if v1 >= serial {
			t.Errorf("%s: V1 (%v) not faster than serial (%v)", ds, v1, serial)
		}
		// V2 beats serial on the three text-like sets (on DE map and the
		// highly-compressible set the paper's V2 also loses its edge).
		if v2 >= serial && ds != "Highly Compr." && ds != "DE Map" {
			t.Errorf("%s: V2 (%v) not faster than serial (%v)", ds, v2, serial)
		}
	}
	// V2 wins the three text-like sets, V1 the two highly-compressible
	// ones (Table I / §V). On the modeled basis the V2 host post-pass is
	// deterministic, so this runs under -race too — the detector slows
	// the run down but cannot change a single duration.
	for _, ds := range []string{"C files", "Dictionary", "Kernel tarball"} {
		if !(gpuTime(ds, SysV2) < gpuTime(ds, SysV1)) {
			t.Errorf("%s: V2 (%v) not faster than V1 (%v)", ds, gpuTime(ds, SysV2), gpuTime(ds, SysV1))
		}
	}
	for _, ds := range []string{"DE Map", "Highly Compr."} {
		if !(gpuTime(ds, SysV1) < gpuTime(ds, SysV2)) {
			t.Errorf("%s: V1 (%v) not faster than V2 (%v)", ds, gpuTime(ds, SysV1), gpuTime(ds, SysV2))
		}
	}
	// BZIP2's pathology (paper: 77.8s on highly-compressible vs 9-21s
	// elsewhere): the nearly-free dataset — every other system's BEST
	// row by a wide margin — is bzip2's WORST, because the block sort
	// falls back on the period-20 ties. Assert the comparative shape,
	// which is robust to host noise.
	bzHigh := m.Cell("Highly Compr.", SysBZip2).Time
	bzText := m.Cell("C files", SysBZip2).Time
	if bzHigh <= bzText {
		t.Errorf("BZIP2 not slowest on highly-compressible: %v vs %v on C files", bzHigh, bzText)
	}
	// (V2 is excluded: it cannot skip matched spans, so the free dataset
	// is not its best row — the §V trade-off.)
	for _, sys := range []string{SysSerial, SysPthread, SysV1} {
		if h, c := m.Cell("Highly Compr.", sys).Time, m.Cell("C files", sys).Time; h >= c {
			t.Errorf("%s: highly-compressible (%v) not faster than C files (%v)", sys, h, c)
		}
	}
	if st := m.Cell("Highly Compr.", SysBZip2).SortStats; st.FallbackElems == 0 {
		t.Error("bzip2 fallback sort did not trigger on the period-20 data")
	}
	// Ratio shape (Table II): BZIP2 well below serial LZSS on every set.
	for _, ds := range m.Datasets {
		if !(m.Cell(ds, SysBZip2).Ratio() < m.Cell(ds, SysSerial).Ratio()) {
			t.Errorf("%s: BZIP2 ratio not better than serial LZSS", ds)
		}
	}
	// V1 ratio within a few points of serial (paper: 55.7% vs 54.8%).
	for _, ds := range m.Datasets {
		d := m.Cell(ds, SysV1).Ratio() - m.Cell(ds, SysSerial).Ratio()
		if d < -0.05 || d > 0.12 {
			t.Errorf("%s: V1 ratio drifts %.3f from serial", ds, d)
		}
	}
	// V2 crushes the highly-compressible set relative to V1 (6.34% vs
	// 13.9%).
	if !(m.Cell("Highly Compr.", SysV2).Ratio() < m.Cell("Highly Compr.", SysV1).Ratio()*0.75) {
		t.Error("V2 not clearly better than V1 on highly-compressible data")
	}
}

// TestModeledBasisDeterministic pins the property the shape test relies
// on: two modeled runs over the same inputs report identical times, cell
// for cell — no wall-clock leaks into the basis.
func TestModeledBasisDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Modeled = true
	m1, err := RunCompression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunCompression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range m1.Datasets {
		for _, sys := range m1.Systems {
			t1, t2 := m1.Cell(ds, sys).Time, m2.Cell(ds, sys).Time
			if t1 != t2 {
				t.Errorf("%s/%s: modeled time varies across runs: %v vs %v", ds, sys, t1, t2)
			}
			if t1 <= 0 {
				t.Errorf("%s/%s: non-positive modeled time %v", ds, sys, t1)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	m, err := RunCompression(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1 := TableI(m).Render()
	for _, want := range []string{"Table I", "C files", "Serial LZSS", "CULZSS V2", "Highly Compr."} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := TableII(m).Render()
	for _, want := range []string{"Table II", "%", "BZIP2"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	f4 := Figure4(m).Render()
	for _, want := range []string{"Figure 4", "x", "#"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
	if s := SpeedupOf(m, "C files", SysV1); s <= 0 {
		t.Errorf("SpeedupOf = %v", s)
	}
}

func TestRunDecompression(t *testing.T) {
	cfg := testConfig()
	cfg.Size = 1 << 20
	m, err := RunDecompression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Datasets) != 5 {
		t.Fatalf("datasets = %d", len(m.Datasets))
	}
	out := TableIII(m).Render()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "CULZSS") {
		t.Errorf("Table III malformed:\n%s", out)
	}
	// Shape: GPU decompression faster than serial on every set (at
	// saturated utilisation; 1 MiB fills only a fraction of the grid).
	for _, ds := range m.Datasets {
		ser := m.Cell(ds, SysSerial).Time
		cul := m.Cell(ds, "CULZSS").GPUReport.SaturatedTotal()
		if cul >= ser {
			t.Errorf("%s: CULZSS decompression (%v) not faster than serial (%v)", ds, cul, ser)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := testConfig()
	shared, err := AblationSharedMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Rows) != 2 {
		t.Fatalf("shared ablation rows = %d", len(shared.Rows))
	}
	if !strings.Contains(shared.Render(), "global only") {
		t.Error("shared ablation missing global row")
	}

	tpb, err := AblationThreadsPerBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpb.Rows) != 5 {
		t.Fatalf("tpb ablation rows = %d", len(tpb.Rows))
	}
	// 512 threads must not fit V1's per-thread buffers (paper §V).
	last := tpb.Rows[len(tpb.Rows)-1]
	if last[1] != "does not fit" {
		t.Errorf("V1 at 512 threads/block should not fit, got %q", last[1])
	}

	win, err := AblationWindowSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) != 4 {
		t.Fatalf("window ablation rows = %d", len(win.Rows))
	}
	// Wider window -> better (smaller) ratio across the sweep.
	parsePct := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
			t.Fatalf("bad ratio cell %q: %v", s, err)
		}
		return v
	}
	if !(parsePct(win.Rows[0][2]) > parsePct(win.Rows[3][2])) {
		t.Errorf("window sweep ratio not improving: %v vs %v", win.Rows[0][2], win.Rows[3][2])
	}

	bank, err := AblationBankSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bank.Rows) != 4 {
		t.Fatalf("bank ablation rows = %d", len(bank.Rows))
	}

	search, err := AblationSearchAlgorithm(Config{Size: 32 << 10, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(search.Rows) != 5 {
		t.Fatalf("search ablation rows = %d", len(search.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"", "a", "b"},
		Rows:    [][]string{{"row,1", "1.0", "2.0"}, {"r\"2", "3", "4"}},
	}
	csv := tab.CSV()
	for _, want := range []string{"# T\n", ",a,b\n", "\"row,1\",1.0,2.0\n", "\"r\"\"2\",3,4\n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
}
