package harness

import (
	"fmt"
	"strings"
	"testing"
)

func TestExtensionStreams(t *testing.T) {
	tab, err := ExtensionStreams(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[0][2] != "1.00x" {
		t.Fatalf("baseline row wrong: %v", tab.Rows[0])
	}
	if !strings.Contains(tab.Render(), "streams") {
		t.Fatal("render missing header")
	}
}

func TestExtensionMultiGPU(t *testing.T) {
	tab, err := ExtensionMultiGPU(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two datasets x three device counts.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"C files", "Highly Compr.", "dispatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestExtensionHybrid(t *testing.T) {
	tab, err := ExtensionHybrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[3][0], "auto") {
		t.Fatalf("last row should be the auto split: %v", tab.Rows[3])
	}
}

func TestExtensionAutoSelection(t *testing.T) {
	tab, err := ExtensionAutoSelection(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	picks := map[string]string{}
	for _, row := range tab.Rows {
		picks[row[0]] = row[3]
	}
	// The §V guidance: V1 for the highly-compressible sets, V2 for text.
	if picks["Highly Compr."] != "V1" {
		t.Errorf("auto picked %s for Highly Compr., want V1", picks["Highly Compr."])
	}
	if picks["C files"] != "V2" {
		t.Errorf("auto picked %s for C files, want V2", picks["C files"])
	}
	if picks["Dictionary"] != "V2" {
		t.Errorf("auto picked %s for Dictionary, want V2", picks["Dictionary"])
	}
}

func TestExtensionGPUPostPass(t *testing.T) {
	tab, err := ExtensionGPUPostPass(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "pointer-doubling") {
		t.Fatal("render missing note")
	}
}

func TestExtensionDeviceSweep(t *testing.T) {
	tab, err := ExtensionDeviceSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "Tesla C1060") {
		t.Fatal("render missing the legacy device")
	}
}

func TestExtensionOptimalParse(t *testing.T) {
	tab, err := ExtensionOptimalParse(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var g, o float64
		if _, err := fmt.Sscanf(row[1], "%f%%", &g); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[2], "%f%%", &o); err != nil {
			t.Fatal(err)
		}
		if o > g+0.01 {
			t.Errorf("%s: optimal ratio %.2f worse than greedy %.2f", row[0], o, g)
		}
	}
}
