package harness

import (
	"fmt"
	"time"

	"culzss/internal/core"
	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
	"culzss/internal/lzss"
	"culzss/internal/stats"
)

// The §VII future-work experiments: each is implemented in internal/gpu
// and evaluated here as an extension table.

// ExtensionStreams evaluates the Fermi copy/execute pipelining (§VII:
// "The concurrent execution and streaming feature of new Fermi GPUs can
// be used to process those chunks").
func ExtensionStreams(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Extension — V1 with Fermi copy/execute streams (C files)",
		Columns: []string{"streams", "simulated total", "vs 1 stream"},
		Notes:   []string{"§VII: overlapping H2D/kernel/D2H across stream slices."},
	}
	var base time.Duration
	for _, streams := range []int{1, 2, 4, 8} {
		_, rep, err := gpu.CompressV1Streamed(data, gpu.Options{}, streams)
		if err != nil {
			return nil, err
		}
		total := rep.SimulatedTotal()
		if streams == 1 {
			base = total
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", streams),
			total.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(total)/float64(base)),
		})
	}
	return t, nil
}

// ExtensionMultiGPU evaluates the multi-device split (§VII: the paper's
// own attempt saw no gains and suspected thread overhead; the model shows
// where the crossover sits).
func ExtensionMultiGPU(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — V1 across multiple simulated GPUs",
		Columns: []string{"dataset", "GPUs", "simulated total", "kernel span", "bus", "dispatch"},
		Notes: []string{
			"§VII: the paper's multi-GPU attempt showed no gains (suspected thread",
			"overhead); the model reproduces the loss when kernels are cheap and the",
			"shared PCIe bus plus per-device dispatch dominate.",
		},
	}
	for _, key := range []string{"cfiles", "highcomp"} {
		ds, _ := datasets.ByKey(key)
		data := ds.Gen(cfg.Size, cfg.Seed)
		for _, n := range []int{1, 2, 4} {
			_, rep, err := gpu.CompressV1MultiGPU(data, gpu.Options{}, n)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				ds.Name,
				fmt.Sprintf("%d", n),
				rep.SimulatedTotal().Round(time.Microsecond).String(),
				rep.KernelSpan.Round(time.Microsecond).String(),
				rep.BusTime.Round(time.Microsecond).String(),
				rep.DriverOverhead.String(),
			})
		}
	}
	return t, nil
}

// ExtensionHybrid evaluates the heterogeneous CPU+GPU split (§VII: "a
// combined CPU and GPU heterogeneous implementation can give benefits").
func ExtensionHybrid(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Extension — heterogeneous CPU+GPU V1 (C files)",
		Columns: []string{"cpu share", "overlapped total", "cpu time", "gpu simulated"},
		Notes:   []string{"§VII: chunks split between host workers and the GPU, processed concurrently."},
	}
	for _, frac := range []float64{0, 0.25, 0.5, -1} {
		_, rep, err := gpu.CompressV1Hybrid(data, gpu.Options{}, frac)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.0f%%", rep.CPUFraction*100)
		if frac < 0 {
			label = fmt.Sprintf("auto (%.0f%%)", rep.CPUFraction*100)
		}
		gpuTotal := time.Duration(0)
		if rep.GPU != nil {
			gpuTotal = rep.GPU.SimulatedTotal()
		}
		t.Rows = append(t.Rows, []string{
			label,
			rep.SimulatedTotal().Round(time.Microsecond).String(),
			rep.CPUTime.Round(time.Microsecond).String(),
			gpuTotal.Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// ExtensionAutoSelection evaluates the VersionAuto heuristic against
// always-V1 and always-V2 across the datasets (§V: "This feature gives
// the ability to use the best matching implementation"). An oracle column
// shows what a perfect per-dataset choice would cost.
func ExtensionAutoSelection(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — automatic version selection (§V)",
		Columns: []string{"dataset", "V1 sat", "V2 sat", "auto picks", "auto sat", "oracle"},
		Notes:   []string{"Saturated simulated totals; 'auto picks' is the sampled heuristic of core.SelectVersion."},
	}
	for _, ds := range datasets.All() {
		data := ds.Gen(cfg.Size, cfg.Seed)
		_, r1, err := gpu.CompressV1(data, gpu.Options{})
		if err != nil {
			return nil, err
		}
		_, r2, err := gpu.CompressV2(data, gpu.Options{})
		if err != nil {
			return nil, err
		}
		pick, picked := "V2", r2
		if core.SelectVersion(data) == core.Version1 {
			pick, picked = "V1", r1
		}
		oracle := r1
		if r2.SaturatedTotal() < r1.SaturatedTotal() {
			oracle = r2
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			r1.SaturatedTotal().Round(time.Microsecond).String(),
			r2.SaturatedTotal().Round(time.Microsecond).String(),
			pick,
			picked.SaturatedTotal().Round(time.Microsecond).String(),
			oracle.SaturatedTotal().Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// ExtensionGPUPostPass evaluates the §VII port of V2's serial host
// post-pass to a GPU pointer-doubling selection kernel: host time shrinks
// to pure serialisation at the cost of O(n log n) extra (but perfectly
// parallel) kernel work.
func ExtensionGPUPostPass(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — V2 token selection on GPU vs host (§VII)",
		Columns: []string{"dataset", "host post: total", "host time", "gpu post: total", "host time"},
		Notes: []string{
			"Saturated simulated totals; identical output containers.",
			"The GPU selection adds log(n) pointer-doubling rounds to the kernel",
			"and shrinks the D2H copy to the selected tokens.",
		},
	}
	for _, key := range []string{"cfiles", "highcomp"} {
		ds, _ := datasets.ByKey(key)
		data := ds.Gen(cfg.Size, cfg.Seed)
		_, host, err := gpu.CompressV2(data, gpu.Options{})
		if err != nil {
			return nil, err
		}
		_, gp, err := gpu.CompressV2GPUPost(data, gpu.Options{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			host.SaturatedTotal().Round(time.Microsecond).String(),
			host.HostTime.Round(time.Microsecond).String(),
			gp.SaturatedTotal().Round(time.Microsecond).String(),
			gp.HostTime.Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// ExtensionDeviceSweep runs both kernels on two simulated GPU generations
// — the paper's GTX 480 and a GT200-era Tesla C1060 — showing how the
// architecture (core count, bank semantics, bandwidth) moves the numbers.
// A sensitivity analysis the paper could not run (one testbed).
func ExtensionDeviceSweep(cfg Config) (*Table, error) {
	cfg.fill()
	data := datasets.CFiles(cfg.Size, cfg.Seed)
	t := &Table{
		Title:   "Extension — device generation sweep (C files)",
		Columns: []string{"device", "V1 sat", "V2 sat", "V2/V1"},
		Notes:   []string{"Same kernels, different simulated parts; saturated totals."},
	}
	devices := []*cudasim.Device{cudasim.FermiGTX480(), cudasim.TeslaC1060()}
	for _, dev := range devices {
		// V1's per-thread buffers do not fit a 16 KiB part at 128
		// threads (the paper's §V limitation) — step the block width
		// down until the launch is resident.
		var r1 *gpu.Report
		tpb1 := 128
		for ; tpb1 >= 32; tpb1 /= 2 {
			var err error
			if _, r1, err = gpu.CompressV1(data, gpu.Options{Device: dev, ThreadsPerBlock: tpb1}); err == nil {
				break
			}
			r1 = nil
		}
		if r1 == nil {
			return nil, fmt.Errorf("harness: V1 fits no block width on %s", dev.Name)
		}
		_, r2, err := gpu.CompressV2(data, gpu.Options{Device: dev, ThreadsPerBlock: 128})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (V1 tpb=%d)", dev.Name, tpb1),
			r1.SaturatedTotal().Round(time.Microsecond).String(),
			r2.SaturatedTotal().Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", float64(r2.SaturatedTotal())/float64(r1.SaturatedTotal())),
		})
	}
	return t, nil
}

// ExtensionOptimalParse compares the paper's greedy parse against the
// minimum-cost (dynamic-programming) parse at the V2 configuration — a
// §VII "improvements on the LZSS algorithm" item. Same decoder, strictly
// never-worse output.
func ExtensionOptimalParse(cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Extension — greedy vs optimal parsing (V2 configuration)",
		Columns: []string{"dataset", "greedy ratio", "optimal ratio", "saved"},
		Notes:   []string{"Minimum-cost tokenisation via backward DP; identical wire format."},
	}
	lz := lzss.CULZSSV2()
	for _, ds := range datasets.All() {
		data := ds.Gen(cfg.Size, cfg.Seed)
		greedy, err := lzss.EncodeByteAligned(data, lz, lzss.SearchHashChain, nil)
		if err != nil {
			return nil, err
		}
		optimal, err := lzss.EncodeByteAlignedOptimal(data, lz, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			stats.RatioPercent(len(greedy), len(data)),
			stats.RatioPercent(len(optimal), len(data)),
			fmt.Sprintf("%.2f%%", (1-float64(len(optimal))/float64(len(greedy)))*100),
		})
	}
	return t, nil
}
