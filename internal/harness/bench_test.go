package harness

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func benchFixture() *BenchReport {
	return &BenchReport{
		Config: BenchConfig{Size: 1 << 20, Reps: 1, Seed: 42, SerialSearch: "hashchain", Saturated: true, Modeled: true},
		Cells: []BenchCell{
			{Dataset: "C files", System: SysSerial, NsPerOp: 100_000_000, SimMs: 100, RatioPct: 54.8},
			{Dataset: "C files", System: SysV1, NsPerOp: 40_000_000, SimMs: 40, RatioPct: 55.7},
		},
	}
}

func TestBenchCompareTolerance(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()

	if regs := cur.Compare(base, 0.25); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	// +20% is inside a 25% tolerance; improvements never regress.
	cur.Cells[0].NsPerOp = 120_000_000
	cur.Cells[1].NsPerOp = 10_000_000
	if regs := cur.Compare(base, 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	// +30% is out.
	cur.Cells[0].NsPerOp = 130_000_000
	regs := cur.Compare(base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "C files / Serial LZSS") {
		t.Fatalf("regression not flagged: %v", regs)
	}
}

func TestBenchCompareMissingCellAndConfig(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Cells = cur.Cells[:1]
	regs := cur.Compare(base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("dropped cell not flagged: %v", regs)
	}

	cur = benchFixture()
	cur.Config.Size = 2 << 20
	regs = cur.Compare(base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "config mismatch") {
		t.Fatalf("config mismatch not flagged: %v", regs)
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	rep := benchFixture()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != rep.Config || len(got.Cells) != len(rep.Cells) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range got.Cells {
		if got.Cells[i] != rep.Cells[i] {
			t.Fatalf("cell %d: %+v != %+v", i, got.Cells[i], rep.Cells[i])
		}
	}
}

func TestBenchFromMatrixSortedAndComplete(t *testing.T) {
	cfg := testConfig()
	cfg.Modeled = true
	m, err := RunCompression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := BenchFromMatrix(m, BenchConfig{Size: cfg.Size, Reps: cfg.Reps, Seed: cfg.Seed, Modeled: true})
	if want := len(m.Datasets) * len(m.Systems); len(rep.Cells) != want {
		t.Fatalf("report has %d cells, grid has %d", len(rep.Cells), want)
	}
	if !sort.SliceIsSorted(rep.Cells, func(i, j int) bool {
		if rep.Cells[i].Dataset != rep.Cells[j].Dataset {
			return rep.Cells[i].Dataset < rep.Cells[j].Dataset
		}
		return rep.Cells[i].System < rep.Cells[j].System
	}) {
		t.Fatal("cells not sorted (dataset, system)")
	}
	for _, c := range rep.Cells {
		if c.NsPerOp <= 0 || c.RatioPct <= 0 {
			t.Fatalf("degenerate cell: %+v", c)
		}
	}
}
