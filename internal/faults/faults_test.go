package faults

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"
)

// envSeed returns the pinned CI seed (CULZSS_FAULT_SEED) or the default,
// so the fault matrix reproduces exactly.
func envSeed(def int64) int64 {
	if s := os.Getenv("CULZSS_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fault(SiteLaunch); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
	if in.FailFirst(SiteLaunch, 3) != nil {
		t.Fatal("nil rule chain should stay nil")
	}
	if in.LaunchHook() != nil {
		t.Fatal("nil injector should yield nil hook")
	}
	if got := in.Counts(SiteLaunch); got != (Counts{}) {
		t.Fatalf("nil counts = %+v", got)
	}
	var buf bytes.Buffer
	if w := in.CorruptWriter(&buf, 10); w != &buf {
		t.Fatal("nil injector must return the writer unchanged")
	}
	if in.Seed() != 0 {
		t.Fatal("nil seed")
	}
}

func TestFailFirstTransientThenPasses(t *testing.T) {
	in := New(envSeed(1)).FailFirst(SiteLaunch, 2)
	for i := 1; i <= 2; i++ {
		err := in.Fault(SiteLaunch)
		if err == nil {
			t.Fatalf("attempt %d should fault", i)
		}
		if !IsTransient(err) || !IsInjected(err) {
			t.Fatalf("attempt %d: want transient injected fault, got %v", i, err)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Attempt != i || f.Site != SiteLaunch {
			t.Fatalf("attempt %d: bad fault %+v", i, f)
		}
	}
	if err := in.Fault(SiteLaunch); err != nil {
		t.Fatalf("attempt 3 should pass, got %v", err)
	}
	if c := in.Counts(SiteLaunch); c.Attempts != 3 || c.Injected != 2 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestAlwaysIsPersistent(t *testing.T) {
	in := New(envSeed(1)).Always(SiteChunk)
	for i := 0; i < 5; i++ {
		err := in.Fault(SiteChunk)
		if err == nil {
			t.Fatal("Always site passed")
		}
		if IsTransient(err) {
			t.Fatal("Always faults must be persistent")
		}
	}
}

func TestFailEvery(t *testing.T) {
	in := New(envSeed(1)).FailEvery(SiteTransfer, 3)
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, in.Fault(SiteTransfer) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("attempt %d: got %v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
}

// TestFailProbDeterministicPerSeed is the seed contract: the same seed
// and probe order make the same decisions.
func TestFailProbDeterministicPerSeed(t *testing.T) {
	seed := envSeed(42)
	run := func() []bool {
		in := New(seed).FailProb(SiteLaunch, 0.3)
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.Fault(SiteLaunch) != nil
		}
		return out
	}
	a, b := run(), run()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs across identically seeded injectors", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("prob 0.3 injected %d/%d — rule not probabilistic", injected, len(a))
	}
}

func TestConcurrentProbesDeterministicVolume(t *testing.T) {
	in := New(envSeed(7)).FailFirst(SiteChunk, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = in.Fault(SiteChunk)
			}
		}()
	}
	wg.Wait()
	if c := in.Counts(SiteChunk); c.Attempts != 200 || c.Injected != 10 {
		t.Fatalf("counts = %+v, want 200 attempts / 10 injected", c)
	}
}

func TestLaunchHookWrapsKernelName(t *testing.T) {
	in := New(envSeed(1)).Always(SiteLaunch)
	hook := in.LaunchHook()
	err := hook(context.Background(), "culzss_v1")
	if err == nil || !IsInjected(err) {
		t.Fatalf("hook should inject, got %v", err)
	}
	if want := "culzss_v1"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("hook error %q should name the kernel", err)
	}
}

func TestCorruptWriterFlipsDeterministically(t *testing.T) {
	seed := envSeed(99)
	payload := bytes.Repeat([]byte("the quick brown fox "), 200)
	run := func() ([]byte, Counts) {
		in := New(seed)
		var buf bytes.Buffer
		w := in.CorruptWriter(&buf, 256)
		// Write in uneven slices to prove flip positions are stream
		// offsets, not per-call offsets.
		for off := 0; off < len(payload); {
			n := 37
			if off+n > len(payload) {
				n = len(payload) - off
			}
			if _, err := w.Write(payload[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		return buf.Bytes(), in.Counts(SiteFrame)
	}
	a, ca := run()
	b, cb := run()
	if !bytes.Equal(a, b) {
		t.Fatal("corruption is not deterministic for a fixed seed")
	}
	if ca != cb || ca.Injected == 0 {
		t.Fatalf("flip counts %+v vs %+v", ca, cb)
	}
	if bytes.Equal(a, payload) {
		t.Fatal("corrupt writer flipped nothing")
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(payload, bytes.Repeat([]byte("the quick brown fox "), 200)) {
		t.Fatal("corrupt writer scribbled on the caller's buffer")
	}
	diff := 0
	for i := range a {
		if a[i] != payload[i] {
			diff++
		}
	}
	if diff != ca.Injected {
		t.Fatalf("%d corrupted bytes on the wire, counts say %d", diff, ca.Injected)
	}
}

func TestCorruptWriterBurstErrors(t *testing.T) {
	const burst = 7
	payload := bytes.Repeat([]byte("abcdefgh"), 1024)
	in := New(envSeed(123))
	var buf bytes.Buffer
	w := in.CorruptWriter(&buf, 1024, BurstErrors(burst))
	// One byte per call: bursts must carry across Write boundaries.
	for i := range payload {
		if _, err := w.Write(payload[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	got := buf.Bytes()
	counts := in.Counts(SiteFrame)
	if counts.Injected == 0 || counts.Injected%burst != 0 {
		t.Fatalf("injected %d bytes, want a positive multiple of %d", counts.Injected, burst)
	}
	// Damage comes in runs of `burst` consecutive bytes (adjacent events
	// can merge into a multiple when the drawn gap is minimal).
	runs := 0
	for i := 0; i < len(got); {
		if got[i] == payload[i] {
			i++
			continue
		}
		j := i
		for j < len(got) && got[j] != payload[j] {
			j++
		}
		if (j-i)%burst != 0 {
			t.Fatalf("damage run of %d bytes at %d, want a multiple of %d", j-i, i, burst)
		}
		runs += (j - i) / burst
		i = j
	}
	if runs != counts.Injected/burst {
		t.Fatalf("%d damage runs on the wire, counts imply %d", runs, counts.Injected/burst)
	}
}

func TestCorruptWriterRejectsNonPositiveRate(t *testing.T) {
	in := New(1)
	var buf bytes.Buffer
	defer func() {
		if recover() == nil {
			t.Fatal("armed CorruptWriter with rate 0 did not panic")
		}
	}()
	_ = in.CorruptWriter(&buf, 0)
}
