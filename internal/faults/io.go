// I/O fault injection: torn writes, byte-budget write failures, short
// writes, and fsync failures — the crash shapes a durable stream layer
// (internal/durable) must survive. A process that dies mid-write leaves
// the destination file with an arbitrary prefix of the bytes it meant to
// write; a power cut additionally loses writes that were never fsynced.
// The SiteWrite rules model the first class by cutting an io.Writer at a
// controlled point, and SiteSync (probed by the durable layer before each
// fsync) models the second.
//
// The offset rules (TornWriteAt, ErrAfterNBytes) are deterministic cut
// points independent of the seeded fire rules; ShortWrites composes with
// the fire rules (FailFirst/FailEvery/FailProb/Always on SiteWrite) so a
// scheduled or probabilistic probe tears the write it fires on. All three
// report through Counts(SiteWrite) like any other site, and the nil
// injector stays inert: WrapWriter on a nil *Injector returns the writer
// unchanged.
package faults

import (
	"fmt"
	"io"
	"sync"
)

// The I/O injection sites.
const (
	// SiteWrite fires per Write call on writers wrapped with WrapWriter
	// (a torn or failed write on the way to stable storage).
	SiteWrite Site = "write"
	// SiteSync fires per fsync the durable layer attempts; arm it with
	// the ordinary fire rules (FailFirst, Always, ...) to model an fsync
	// that reports failure, leaving the commit point unknown.
	SiteSync Site = "sync"
)

// TornWriteAt arms SiteWrite so the write crossing absolute output offset
// off is torn there: bytes before off reach the underlying writer, the
// rest vanish, and the call returns a persistent *Fault. Every later
// write fails too (after a torn write the process is presumed dead), so
// the wrapped writer ends holding exactly off bytes — the classic torn
// page. Offsets are counted per wrapped writer, from its first byte.
func (in *Injector) TornWriteAt(off int64) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.wTorn, in.wTornSet = off, true
	in.mu.Unlock()
	return in
}

// ErrAfterNBytes arms SiteWrite with a byte budget: writes pass through
// untouched until n total bytes have been written, and the first call
// that would exceed the budget fails whole (no bytes of it land) with a
// persistent *Fault, as do all later calls. Unlike TornWriteAt the cut is
// at a Write-call boundary — the crash landed between writes, not inside
// one.
func (in *Injector) ErrAfterNBytes(n int64) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.wErrAfter, in.wErrAfterSet = n, true
	in.mu.Unlock()
	return in
}

// ShortWrites arms the short-write mode: when a SiteWrite fire rule
// (FailFirst, FailEvery, FailProb, Always — armed separately) fires on a
// wrapped write, the write is torn in half (the first half lands, the
// rest is dropped) instead of failing whole. Without a fire rule armed,
// ShortWrites alone injects nothing.
func (in *Injector) ShortWrites() *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.wShort = true
	in.mu.Unlock()
	return in
}

// WrapWriter wraps w with the SiteWrite rules. Every Write call probes
// SiteWrite once (so Counts reports attempts and injected tears); with no
// write rules armed the wrapper forwards untouched. A nil injector
// returns w unchanged.
func (in *Injector) WrapWriter(w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, w: w}
}

// writeDecision is the outcome of one SiteWrite probe.
type writeDecision struct {
	keep   int    // bytes of the call to pass through to the real writer
	fault  *Fault // nil = the call passes untouched
	sticky bool   // every later call fails too (the process "died")
}

// writeProbe makes the SiteWrite decision for one Write call of n bytes
// at absolute wrapper offset off. dead marks a wrapper already killed by
// a sticky rule — the probe still counts, modeling writes attempted after
// the cut.
func (in *Injector) writeProbe(off int64, n int, dead bool) writeDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[SiteWrite]++
	attempt := in.attempts[SiteWrite]
	if dead {
		in.injected[SiteWrite]++
		return writeDecision{fault: &Fault{Site: SiteWrite, Attempt: attempt}, sticky: true}
	}
	if in.wTornSet && off+int64(n) > in.wTorn {
		keep := int(in.wTorn - off)
		if keep < 0 {
			keep = 0
		}
		in.injected[SiteWrite]++
		return writeDecision{keep: keep, fault: &Fault{Site: SiteWrite, Attempt: attempt}, sticky: true}
	}
	if in.wErrAfterSet && off+int64(n) > in.wErrAfter {
		in.injected[SiteWrite]++
		return writeDecision{fault: &Fault{Site: SiteWrite, Attempt: attempt}, sticky: true}
	}
	if r, ok := in.rules[SiteWrite]; ok {
		if fire, transient := r.decide(attempt, in.rng); fire {
			in.injected[SiteWrite]++
			keep := 0
			if in.wShort {
				keep = n / 2
			}
			return writeDecision{keep: keep, fault: &Fault{Site: SiteWrite, Attempt: attempt, Transient: transient}}
		}
	}
	return writeDecision{keep: n}
}

// faultWriter applies the SiteWrite rules to one wrapped writer. Offsets
// count bytes that actually reached the underlying writer through this
// wrapper.
type faultWriter struct {
	in *Injector
	w  io.Writer

	mu   sync.Mutex
	off  int64
	dead error
}

// Write implements io.Writer under the armed rules.
func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	d := fw.in.writeProbe(fw.off, len(p), fw.dead != nil)
	if fw.dead != nil {
		return 0, fw.dead
	}
	n := 0
	if d.keep > 0 {
		var err error
		n, err = fw.w.Write(p[:d.keep])
		fw.off += int64(n)
		if err != nil {
			return n, err // a real underlying failure outranks the injected one
		}
	}
	if d.fault == nil {
		return n, nil
	}
	err := fmt.Errorf("faults: write cut at offset %d (%d of %d bytes landed): %w",
		fw.off, n, len(p), d.fault)
	if d.sticky {
		fw.dead = err
	}
	return n, err
}
