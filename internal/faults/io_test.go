package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWrapWriterNilInjectorInert(t *testing.T) {
	var in *Injector
	var buf bytes.Buffer
	if w := in.WrapWriter(&buf); w != io.Writer(&buf) {
		t.Fatal("nil injector must return the writer unchanged")
	}
	// The rule methods chain off nil without panicking.
	if in.TornWriteAt(10).ErrAfterNBytes(5).ShortWrites() != nil {
		t.Fatal("nil injector rule methods must return nil")
	}
	if err := in.Fault(SiteSync); err != nil {
		t.Fatalf("nil injector SiteSync probe: %v", err)
	}
}

func TestWrapWriterUnarmedPassesThrough(t *testing.T) {
	in := New(envSeed(1))
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)
	for i := 0; i < 3; i++ {
		if n, err := w.Write([]byte("abcd")); n != 4 || err != nil {
			t.Fatalf("unarmed write: n=%d err=%v", n, err)
		}
	}
	if got := buf.String(); got != "abcdabcdabcd" {
		t.Fatalf("unarmed wrapper corrupted the stream: %q", got)
	}
	if c := in.Counts(SiteWrite); c.Attempts != 3 || c.Injected != 0 {
		t.Fatalf("unarmed counts = %+v, want {3 0}", c)
	}
}

func TestTornWriteAt(t *testing.T) {
	in := New(envSeed(1)).TornWriteAt(10)
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)

	if n, err := w.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("write before the cut: n=%d err=%v", n, err)
	}
	// This write crosses offset 10: exactly 2 more bytes land.
	n, err := w.Write(make([]byte, 8))
	if n != 2 || !IsInjected(err) {
		t.Fatalf("torn write: n=%d err=%v, want n=2 and an injected fault", n, err)
	}
	if IsTransient(err) {
		t.Fatal("a torn write is persistent, not transient")
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying writer holds %d bytes, want exactly 10", buf.Len())
	}
	// The wrapper is dead afterwards: nothing more lands.
	if n, err := w.Write([]byte("x")); n != 0 || !IsInjected(err) {
		t.Fatalf("post-tear write: n=%d err=%v, want 0 and the sticky fault", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("post-tear bytes leaked: %d", buf.Len())
	}
	if c := in.Counts(SiteWrite); c.Attempts != 3 || c.Injected != 2 {
		t.Fatalf("counts = %+v, want {3 2}", c)
	}
}

func TestTornWriteAtCallBoundary(t *testing.T) {
	// A cut exactly at a call boundary tears the next write at 0 bytes.
	in := New(envSeed(1)).TornWriteAt(4)
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)
	if n, err := w.Write(make([]byte, 4)); n != 4 || err != nil {
		t.Fatalf("write up to the cut: n=%d err=%v", n, err)
	}
	if n, err := w.Write(make([]byte, 4)); n != 0 || !IsInjected(err) {
		t.Fatalf("write at the cut: n=%d err=%v, want 0 bytes and a fault", n, err)
	}
	if buf.Len() != 4 {
		t.Fatalf("underlying writer holds %d bytes, want 4", buf.Len())
	}
}

func TestErrAfterNBytes(t *testing.T) {
	in := New(envSeed(1)).ErrAfterNBytes(10)
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)

	if n, err := w.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("write within budget: n=%d err=%v", n, err)
	}
	// Crossing the budget fails the whole call: no partial bytes.
	if n, err := w.Write(make([]byte, 8)); n != 0 || !IsInjected(err) {
		t.Fatalf("budget-crossing write: n=%d err=%v, want 0 and a fault", n, err)
	}
	if buf.Len() != 8 {
		t.Fatalf("underlying writer holds %d bytes, want the pre-budget 8", buf.Len())
	}
	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	if c := in.Counts(SiteWrite); c.Attempts != 3 || c.Injected != 2 {
		t.Fatalf("counts = %+v, want {3 2}", c)
	}
}

func TestShortWritesComposeWithFireRules(t *testing.T) {
	// ShortWrites + FailEvery(2): every second write is torn in half with
	// a transient fault; the others pass untouched.
	in := New(envSeed(1)).ShortWrites().FailEvery(SiteWrite, 2)
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)

	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err := w.Write(make([]byte, 6))
	if n != 3 || !IsInjected(err) || !IsTransient(err) {
		t.Fatalf("write 2: n=%d err=%v, want a transient half-write", n, err)
	}
	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write 3 (rule does not fire): n=%d err=%v", n, err)
	}
	if buf.Len() != 15 {
		t.Fatalf("underlying writer holds %d bytes, want 6+3+6", buf.Len())
	}
	if c := in.Counts(SiteWrite); c.Attempts != 3 || c.Injected != 1 {
		t.Fatalf("counts = %+v, want {3 1}", c)
	}
}

func TestShortWritesWithoutFireRuleInert(t *testing.T) {
	in := New(envSeed(1)).ShortWrites()
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)
	if n, err := w.Write(make([]byte, 9)); n != 9 || err != nil {
		t.Fatalf("ShortWrites without a fire rule must pass: n=%d err=%v", n, err)
	}
}

func TestFireRuleWithoutShortDropsWholeWrite(t *testing.T) {
	// FailFirst(1) without ShortWrites: the first write fails whole (the
	// error arrived before any byte hit the disk) and is not sticky.
	in := New(envSeed(1)).FailFirst(SiteWrite, 1)
	var buf bytes.Buffer
	w := in.WrapWriter(&buf)
	if n, err := w.Write(make([]byte, 5)); n != 0 || !IsTransient(err) {
		t.Fatalf("write 1: n=%d err=%v, want a transient whole-call failure", n, err)
	}
	if n, err := w.Write(make([]byte, 5)); n != 5 || err != nil {
		t.Fatalf("write 2 after the transient fault: n=%d err=%v", n, err)
	}
	if buf.Len() != 5 {
		t.Fatalf("underlying writer holds %d bytes, want 5", buf.Len())
	}
}

func TestSyncSiteRules(t *testing.T) {
	in := New(envSeed(1)).FailFirst(SiteSync, 1)
	err := in.Fault(SiteSync)
	if !IsInjected(err) || !IsTransient(err) {
		t.Fatalf("first sync probe: %v, want a transient injected fault", err)
	}
	if err := in.Fault(SiteSync); err != nil {
		t.Fatalf("second sync probe must pass: %v", err)
	}
	if c := in.Counts(SiteSync); c.Attempts != 2 || c.Injected != 1 {
		t.Fatalf("sync counts = %+v, want {2 1}", c)
	}
	// Always on SiteSync: persistent, every probe.
	in2 := New(envSeed(1)).Always(SiteSync)
	for i := 0; i < 3; i++ {
		if err := in2.Fault(SiteSync); !IsInjected(err) || IsTransient(err) {
			t.Fatalf("probe %d: %v, want persistent injected fault", i, err)
		}
	}
	if c := in2.Counts(SiteSync); c.Attempts != 3 || c.Injected != 3 {
		t.Fatalf("sync counts = %+v, want {3 3}", c)
	}
}

func TestWriteRulesDoNotDisturbOtherSites(t *testing.T) {
	// Arming the write site leaves the device sites alone, and the torn
	// write surfaces through errors.As like every other fault.
	in := New(envSeed(1)).TornWriteAt(0)
	if err := in.Fault(SiteLaunch); err != nil {
		t.Fatalf("launch site must stay unarmed: %v", err)
	}
	var buf bytes.Buffer
	_, err := in.WrapWriter(&buf).Write([]byte("abc"))
	var f *Fault
	if !errors.As(err, &f) || f.Site != SiteWrite {
		t.Fatalf("torn write fault = %v, want a *Fault at SiteWrite", err)
	}
}
