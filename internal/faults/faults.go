// Package faults is the deterministic, seeded fault-injection subsystem
// the robustness suite plugs into the simulated device and the streaming
// pipeline. It models the failure classes a production CULZSS deployment
// sees — transient kernel-launch failures, per-chunk decode faults,
// stalled/failed PCIe transfers, and bit-flips on framed streams crossing
// a network — so the retry, degrade-to-CPU, and salvage paths can be
// exercised end to end without real hardware faults.
//
// # Seed contract
//
// An Injector is fully determined by its seed and the order of probe
// calls: the nth probe of a site always makes the same decision for the
// same seed and rule set. Concurrent probes of one site serialise under
// the injector's mutex, so the *set* of injected faults is deterministic,
// while *which* goroutine observes a given fault depends on scheduling;
// tests that need a specific chunk to fault pin HostWorkers to 1 (serial
// attempt order) or use rules that fault every attempt. The CI fault
// matrix pins the seed through CULZSS_FAULT_SEED so recovery regressions
// reproduce exactly.
//
// # Wiring
//
// gpu.Options.Injector and core.Params.Injector carry an *Injector down
// the stack; a nil injector is inert (every method on a nil *Injector is
// a no-op), so production paths pay a single pointer test. The
// cudasim.Device side is a context-aware function hook
// (Device.LaunchHook), kept free of any dependency on this package;
// Injector.LaunchHook adapts.
//
// Beyond the fire rules, every site can be armed with a latency rule
// (Hang/HangFirst — the "SiteHang" rule of the device-health suite): the
// probe blocks for a fixed duration before answering, modeling a hung
// kernel or stalled copy. FaultCtx (and the LaunchHook adapter) cut an
// in-progress hang when the probe's context is cancelled, which is what
// lets internal/health's watchdog turn a wedged launch into a typed
// timeout instead of an indefinite stall.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Site identifies a fault-injection point in the pipeline.
type Site string

// The injection sites the stack consults.
const (
	// SiteLaunch fires on kernel launches (simulated driver/device
	// launch failure). Consulted by cudasim.Device.LaunchHook.
	SiteLaunch Site = "launch"
	// SiteChunk fires per decoded chunk inside gpu.Decompress (a
	// device-side decode fault confined to one chunk).
	SiteChunk Site = "chunk"
	// SiteTransfer fires on modeled host<->device transfers (a stalled
	// or failed PCIe copy, surfaced as an error after the deadline).
	SiteTransfer Site = "transfer"
	// SiteFrame fires per byte inside CorruptWriter (a bit-flip on the
	// framed stream crossing the wire).
	SiteFrame Site = "frame"
)

// Fault is the structured error an Injector returns when a probe faults.
type Fault struct {
	// Site is the injection point that fired.
	Site Site
	// Attempt is the 1-based probe count at the site when the fault fired.
	Attempt int
	// Transient reports whether the fault models a condition a retry can
	// outlast (FailFirst/FailEvery/FailProb) rather than a persistent one
	// (Always).
	Transient bool
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "persistent"
	if f.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faults: injected %s fault at %s (attempt %d)", kind, f.Site, f.Attempt)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// IsTransient reports whether err is (or wraps) an injected fault marked
// transient.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Transient
}

// rule decides whether one probe of a site faults.
type rule struct {
	failFirst int     // attempts 1..failFirst fault (transient)
	every     int     // every nth attempt faults (transient)
	prob      float64 // per-attempt fault probability (transient)
	always    bool    // every attempt faults (persistent)

	// hang delays the probe before the fire decision is delivered — the
	// latency-injection ("SiteHang") rule that models a wedged kernel or
	// stalled transfer. FaultCtx interrupts the delay when its context is
	// cancelled, which is how a watchdog deadline cuts a hung launch.
	hang time.Duration
	// hangFirst bounds the hang to the first n probes; 0 hangs every probe.
	hangFirst int
}

// decide evaluates the fire rules for one probe: whether it faults and
// whether the fault models a transient condition. Callers hold the
// injector mutex (the probabilistic rule draws from the shared generator).
func (r rule) decide(attempt int, rng *rand.Rand) (fire, transient bool) {
	switch {
	case r.always:
		return true, false
	case r.failFirst > 0:
		return attempt <= r.failFirst, true
	case r.every > 0:
		return attempt%r.every == 0, true
	case r.prob > 0:
		return rng.Float64() < r.prob, true
	}
	return false, false
}

// Counts summarises a site's probe history.
type Counts struct {
	// Attempts is how many times the site was probed.
	Attempts int
	// Injected is how many probes faulted.
	Injected int
}

// Injector makes seeded fault decisions. The zero value and the nil
// pointer are both inert; construct faulting injectors with New plus the
// rule methods. All methods are safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	seed     int64
	rng      *rand.Rand
	rules    map[Site]rule
	attempts map[Site]int
	injected map[Site]int

	// SiteWrite offset rules (see io.go): the torn-write and byte-budget
	// cut points, and whether a firing SiteWrite probe tears the write in
	// half instead of dropping it whole.
	wTorn, wErrAfter       int64
	wTornSet, wErrAfterSet bool
	wShort                 bool
}

// New returns an injector with no rules (it injects nothing until a rule
// method arms a site). The seed fixes every probabilistic decision.
func New(seed int64) *Injector {
	return &Injector{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		rules:    make(map[Site]rule),
		attempts: make(map[Site]int),
		injected: make(map[Site]int),
	}
}

// Seed returns the seed the injector was built with (0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

func (in *Injector) setRule(site Site, r rule) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	// Fire rules replace each other but never clear an armed hang, so
	// Hang composes with any of them in either order.
	old := in.rules[site]
	r.hang, r.hangFirst = old.hang, old.hangFirst
	in.rules[site] = r
	in.mu.Unlock()
	return in
}

// Hang arms site's latency-injection rule: every probe of the site blocks
// for d before its fire decision is delivered, modeling a hung kernel
// launch or a stalled transfer. The delay is interruptible only through
// FaultCtx (probes through plain Fault sleep the full d); a watchdog that
// cancels the probe's context turns the hang into a prompt context error.
// Hang composes with the fire rules: Hang+Always is a device that is both
// slow and broken.
func (in *Injector) Hang(site Site, d time.Duration) *Injector {
	return in.setHang(site, d, 0)
}

// HangFirst arms site to hang only on its first n probes (a device that
// wedges, is power-cycled, and comes back responsive).
func (in *Injector) HangFirst(site Site, n int, d time.Duration) *Injector {
	return in.setHang(site, d, n)
}

func (in *Injector) setHang(site Site, d time.Duration, first int) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r := in.rules[site]
	r.hang, r.hangFirst = d, first
	in.rules[site] = r
	in.mu.Unlock()
	return in
}

// FailFirst arms site to fault on its first n probes (transient: retries
// past attempt n succeed).
func (in *Injector) FailFirst(site Site, n int) *Injector {
	return in.setRule(site, rule{failFirst: n})
}

// FailEvery arms site to fault on every nth probe (transient).
func (in *Injector) FailEvery(site Site, n int) *Injector {
	return in.setRule(site, rule{every: n})
}

// FailProb arms site to fault each probe independently with probability p,
// drawn from the seeded generator (transient).
func (in *Injector) FailProb(site Site, p float64) *Injector {
	return in.setRule(site, rule{prob: p})
}

// Always arms site to fault on every probe (persistent: no retry can
// succeed, only a degrade path survives it).
func (in *Injector) Always(site Site) *Injector {
	return in.setRule(site, rule{always: true})
}

// Fault probes site once and returns the injected *Fault, or nil when the
// probe passes (or the injector is nil / the site unarmed). An armed hang
// sleeps its full duration — use FaultCtx where a watchdog must be able
// to cut the delay.
func (in *Injector) Fault(site Site) error {
	return in.FaultCtx(context.Background(), site)
}

// FaultCtx is Fault with an interruptible hang: if the site's Hang rule
// fires, the probe blocks for the armed duration or until ctx is done,
// whichever comes first. A cancelled hang returns ctx's error (wrapped),
// so callers observe context.DeadlineExceeded / context.Canceled through
// errors.Is — the shape a watchdog-cut hung kernel surfaces as.
func (in *Injector) FaultCtx(ctx context.Context, site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.attempts[site]++
	attempt := in.attempts[site]
	r, ok := in.rules[site]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	fire, transient := r.decide(attempt, in.rng)
	if fire {
		in.injected[site]++
	}
	hang := r.hang
	if hang > 0 && r.hangFirst > 0 && attempt > r.hangFirst {
		hang = 0
	}
	in.mu.Unlock() // never sleep under the injector mutex

	if hang > 0 {
		t := time.NewTimer(hang)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("faults: hang at %s cut (attempt %d): %w", site, attempt, ctx.Err())
		}
	}
	if !fire {
		return nil
	}
	return &Fault{Site: site, Attempt: attempt, Transient: transient}
}

// Counts reports site's probe history so far.
func (in *Injector) Counts(site Site) Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return Counts{Attempts: in.attempts[site], Injected: in.injected[site]}
}

// LaunchHook adapts the injector's SiteLaunch rule to the context-aware
// function hook cudasim.Device carries (the device stays free of this
// package). A nil injector returns a nil hook. The context is the
// launch's: a watchdog that cancels it cuts an armed hang mid-sleep, so a
// hung kernel surfaces as a prompt context error instead of a wedge.
func (in *Injector) LaunchHook() func(ctx context.Context, kernel string) error {
	if in == nil {
		return nil
	}
	return func(ctx context.Context, kernel string) error {
		if err := in.FaultCtx(ctx, SiteLaunch); err != nil {
			return fmt.Errorf("kernel %q: %w", kernel, err)
		}
		return nil
	}
}

// CorruptOption tunes a CorruptWriter.
type CorruptOption func(*corruptWriter)

// BurstErrors makes every corruption event damage n consecutive bytes
// (one flipped bit in each) instead of a single byte — the torn-sector /
// interference-burst model, the shape parity-frame repair exists for.
// n <= 1 is the default single-byte flip.
func BurstErrors(n int) CorruptOption {
	return func(c *corruptWriter) {
		if n > 1 {
			c.burst = n
		}
	}
}

// CorruptWriter wraps w so that roughly one corruption event per rate
// bytes fires on the way through (a single-bit flip by default, a
// multi-byte burst under BurstErrors), positions drawn deterministically
// from the injector's seed — the wire-corruption model salvage decoding
// is tested against. A nil injector returns w unchanged; a non-nil
// injector with rate <= 0 panics — that configuration silently armed a
// flipper that never fires, which is a test bug, not a choice. The
// wrapper probes SiteFrame once per corrupted byte, so Counts(SiteFrame)
// reports the corruption volume.
func (in *Injector) CorruptWriter(w io.Writer, rate int, opts ...CorruptOption) io.Writer {
	if in == nil {
		return w
	}
	if rate <= 0 {
		panic(fmt.Sprintf("faults: CorruptWriter rate %d; an armed corrupter needs rate > 0", rate))
	}
	in.mu.Lock()
	// A corrupting writer gets its own deterministic stream derived from
	// the injector seed, so interleaved Fault probes do not perturb the
	// flip positions.
	cw := &corruptWriter{w: w, in: in, rng: rand.New(rand.NewSource(in.seed ^ 0x5bd1e995)), rate: rate, burst: 1}
	in.mu.Unlock()
	for _, o := range opts {
		o(cw)
	}
	cw.next = cw.gap()
	return cw
}

type corruptWriter struct {
	w         io.Writer
	in        *Injector
	rng       *rand.Rand
	rate      int
	burst     int   // bytes corrupted per event
	burstLeft int   // remaining bytes of the in-progress burst
	next      int64 // bytes until the next corruption event
	off       int64
}

// gap draws the distance to the next flipped byte: uniform in [1, 2*rate],
// mean rate, strictly positive so consecutive flips never collide.
func (c *corruptWriter) gap() int64 {
	return 1 + int64(c.rng.Intn(2*c.rate))
}

// Write flips the scheduled bits inside p (copying first: callers own
// their buffers) and forwards to the underlying writer. A burst that
// outruns the buffer carries over into the next Write — the damage model
// lives in the byte stream, not in call boundaries.
func (c *corruptWriter) Write(p []byte) (int, error) {
	copied := false
	for i := range p {
		if c.burstLeft == 0 {
			c.next--
			if c.next > 0 {
				continue
			}
			c.burstLeft = c.burst
		}
		c.burstLeft--
		if !copied {
			q := make([]byte, len(p))
			copy(q, p)
			p = q
			copied = true
		}
		p[i] ^= byte(1) << uint(c.rng.Intn(8))
		c.in.mu.Lock()
		c.in.attempts[SiteFrame]++
		c.in.injected[SiteFrame]++
		c.in.mu.Unlock()
		if c.burstLeft == 0 {
			// Drawing the gap after the burst keeps the single-byte
			// rng sequence (bit, gap, bit, gap, ...) unchanged.
			c.next = c.gap()
		}
	}
	n, err := c.w.Write(p)
	c.off += int64(n)
	return n, err
}
