package datasets

import (
	"archive/tar"
	"bytes"
	"io"
	"testing"

	"culzss/internal/cpulzss"
	"culzss/internal/lzss"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("datasets = %d, want 5", len(all))
	}
	wantOrder := []string{"C files", "DE Map", "Dictionary", "Kernel tarball", "Highly Compr."}
	for i, g := range all {
		if g.Name != wantOrder[i] {
			t.Errorf("dataset %d = %q, want %q", i, g.Name, wantOrder[i])
		}
		if g.Key == "" || g.Description == "" || g.Gen == nil {
			t.Errorf("dataset %q incomplete", g.Name)
		}
		if _, ok := ByKey(g.Key); !ok {
			t.Errorf("ByKey(%q) failed", g.Key)
		}
	}
	if _, ok := ByKey("nonsense"); ok {
		t.Error("ByKey accepted unknown key")
	}
}

func TestGeneratorsExactSizeAndDeterminism(t *testing.T) {
	for _, g := range All() {
		for _, n := range []int{1, 100, 4096, 100000} {
			a := g.Gen(n, 42)
			if len(a) != n {
				t.Fatalf("%s: len = %d, want %d", g.Name, len(a), n)
			}
			b := g.Gen(n, 42)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: not deterministic", g.Name)
			}
			c := g.Gen(n, 43)
			if n > 1000 && bytes.Equal(a, c) {
				t.Fatalf("%s: seed ignored", g.Name)
			}
		}
	}
}

// TestCompressibilityBands checks each dataset lands in the paper's
// Table II band for the serial LZSS configuration. Bands are generous —
// the generators emulate, not replicate — but the ordering between the
// sets is the property the benchmarks rely on.
func TestCompressibilityBands(t *testing.T) {
	if testing.Short() {
		t.Skip("compression bands need a few hundred KiB per set")
	}
	const n = 256 << 10
	ratios := map[string]float64{}
	for _, g := range All() {
		data := g.Gen(n, 7)
		comp, err := cpulzss.CompressSerial(data, cpulzss.Options{Search: lzss.SearchHashChain})
		if err != nil {
			t.Fatal(err)
		}
		ratios[g.Key] = float64(len(comp)) / float64(len(data))
		t.Logf("%-14s serial LZSS ratio %.1f%%", g.Name, ratios[g.Key]*100)
	}
	// Paper fidelity at the CULZSS window is asserted by
	// TestWindow128Ratios; here only sanity at the big-window serial
	// configuration: everything compresses, nothing degenerates, and the
	// extremes keep their order.
	for key, r := range ratios {
		if r <= 0.001 || r >= 0.95 {
			t.Errorf("%s: implausible 4 KiB-window ratio %.3f", key, r)
		}
	}
	if !(ratios["highcomp"] < ratios["demap"]) {
		t.Error("highly-compressible not more compressible than DE map")
	}
	if !(ratios["highcomp"] < ratios["cfiles"]) {
		t.Error("highly-compressible not more compressible than C files")
	}
	if !(ratios["cfiles"] < ratios["dictionary"]) {
		t.Error("C files not more compressible than dictionary")
	}
}

func TestKernelTarballIsValidTar(t *testing.T) {
	// Generate enough that at least several entries are complete, then
	// check the prefix parses as a tar stream until the truncation point.
	data := KernelTarball(256<<10, 3)
	tr := tar.NewReader(bytes.NewReader(data))
	files := 0
	for {
		hdr, err := tr.Next()
		if err != nil {
			break // truncation mid-archive is expected ("part of" a tarball)
		}
		if hdr.Name == "" {
			t.Fatal("empty tar entry name")
		}
		if _, err := io.Copy(io.Discard, tr); err != nil {
			break
		}
		files++
	}
	if files < 10 {
		t.Fatalf("only %d complete tar entries in 256 KiB", files)
	}
}

func TestHighlyCompressiblePeriod(t *testing.T) {
	data := HighlyCompressible(1000, 5)
	for i := 20; i < len(data); i++ {
		if data[i] != data[i-20] {
			t.Fatalf("period break at %d", i)
		}
	}
}

func TestDictionarySorted(t *testing.T) {
	data := Dictionary(64<<10, 9)
	lines := bytes.Split(data, []byte{'\n'})
	// Ignore the final (possibly truncated) line and padding.
	var prev []byte
	seen := map[string]bool{}
	for _, l := range lines[:len(lines)-2] {
		if len(l) == 0 {
			continue
		}
		if prev != nil && bytes.Compare(prev, l) > 0 {
			t.Fatalf("dictionary not sorted: %q after %q", l, prev)
		}
		if seen[string(l)] {
			t.Fatalf("duplicate word %q", l)
		}
		seen[string(l)] = true
		prev = l
	}
	if len(seen) < 100 {
		t.Fatalf("only %d unique words", len(seen))
	}
}

func TestDEMapHasRasterStructure(t *testing.T) {
	data := DEMap(64<<10, 11)
	// Raster rows mix flat fills (long byte runs) with halftone texture
	// (period-2/3 patterns). Both must be present: some long runs, and a
	// mean run length clearly above random bytes (~1.004).
	runs, longRuns, cur := 1, 0, 1
	for i := 1; i < len(data); i++ {
		if data[i] == data[i-1] {
			cur++
			continue
		}
		if cur >= 16 {
			longRuns++
		}
		cur = 1
		runs++
	}
	if meanRun := float64(len(data)) / float64(runs); meanRun < 1.1 {
		t.Fatalf("mean run length %.3f indistinguishable from noise", meanRun)
	}
	if longRuns < 20 {
		t.Fatalf("only %d long runs; flat raster regions missing", longRuns)
	}
}

func TestCFilesLooksLikeC(t *testing.T) {
	data := CFiles(32<<10, 13)
	for _, tok := range []string{"#include", "return", "int ", "malloc", "/*"} {
		if !bytes.Contains(data, []byte(tok)) {
			t.Errorf("C corpus missing token %q", tok)
		}
	}
}
