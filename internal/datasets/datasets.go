// Package datasets generates deterministic stand-ins for the paper's five
// 128 MB benchmark datasets (§IV.B). The originals (a C-file collection,
// USGS Delaware DRG/DLG raster data, an English dictionary, a Linux kernel
// tarball and a custom highly-compressible file) are not redistributable
// or reconstructable bit-for-bit, so each generator is tuned to land in
// the same LZSS-compressibility band (Table II, "Serial" column), which is
// the property that drives every result in the paper:
//
//	C files        ~55%   structured source text
//	DE Map         ~34%   run-structured raster rows
//	Dictionary     ~61%   sorted unique words (non-repeating by design)
//	Kernel tarball ~55%   tar archive of a source tree
//	Highly Compr.  ~14%   repeating 20-byte substrings (paper's custom set)
//
// All generators are pure functions of (size, seed).
package datasets

import (
	"archive/tar"
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Generator describes one benchmark dataset.
type Generator struct {
	// Key is the stable machine name used in CLI flags.
	Key string
	// Name is the row label used by the paper's tables.
	Name string
	// Description says what the generator emulates.
	Description string
	// Gen produces exactly n deterministic bytes for the seed.
	Gen func(n int, seed int64) []byte
}

// All returns the five paper datasets in table order.
func All() []Generator {
	return []Generator{
		{Key: "cfiles", Name: "C files", Description: "collection of C source files (text-based input)", Gen: CFiles},
		{Key: "demap", Name: "DE Map", Description: "Delaware DRG/DLG-style raster map rows", Gen: DEMap},
		{Key: "dictionary", Name: "Dictionary", Description: "alphabetically ordered unique English-like words", Gen: Dictionary},
		{Key: "kernel", Name: "Kernel tarball", Description: "tar archive of a generated source tree", Gen: KernelTarball},
		{Key: "highcomp", Name: "Highly Compr.", Description: "repeating substrings of 20 characters", Gen: HighlyCompressible},
	}
}

// ByKey looks a generator up by its Key.
func ByKey(key string) (Generator, bool) {
	for _, g := range All() {
		if g.Key == key {
			return g, true
		}
	}
	return Generator{}, false
}

var identRoots = []string{
	"buf", "ptr", "len", "size", "count", "index", "node", "list", "head",
	"tail", "data", "ctx", "state", "flag", "mask", "offset", "window",
	"match", "input", "output", "block", "chunk", "packet", "frame",
}

var cTypes = []string{"int", "char", "unsigned int", "size_t", "uint32_t", "void *", "struct node *", "long"}

// ident builds a moderately unique C identifier: shared roots (the part
// LZSS can match) with per-site random suffixes (the part it cannot).
func ident(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s_%s%d", identRoots[rng.Intn(len(identRoots))], identRoots[rng.Intn(len(identRoots))], rng.Intn(10000))
	case 1:
		return fmt.Sprintf("%s%d", identRoots[rng.Intn(len(identRoots))], rng.Intn(100000))
	default:
		// Fully random short identifier.
		b := make([]byte, 4+rng.Intn(8))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
}

// CFiles emulates the paper's first dataset: a concatenation of C source
// files with realistic token statistics (keywords, braces, repeated
// identifiers, unique constants and comments). The mix is tuned so the
// serial LZSS ratio lands near the paper's 54.8%.
func CFiles(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.Grow(n + 4096)
	file := 0
	for sb.Len() < n {
		file++
		fmt.Fprintf(&sb, "/* %s_%d.c rev %x */\n", ident(rng), file, rng.Uint32())
		fmt.Fprintf(&sb, "#include <linux/%s.h>\n#include <linux/%s.h>\n",
			identRoots[rng.Intn(len(identRoots))], identRoots[rng.Intn(len(identRoots))])
		for g := 0; g < 1+rng.Intn(3); g++ {
			fmt.Fprintf(&sb, "static %s %s = %d;\n", cTypes[rng.Intn(len(cTypes))], ident(rng), rng.Intn(1000))
		}
		for fn := 0; fn < 3+rng.Intn(5) && sb.Len() < n; fn++ {
			name, arg := ident(rng), ident(rng)
			// A small pool of locals reused across the function body —
			// the short-range redundancy that makes real source compress
			// at 128-byte windows.
			locals := []string{
				identRoots[rng.Intn(len(identRoots))],
				fmt.Sprintf("%s%d", identRoots[rng.Intn(len(identRoots))], rng.Intn(10)),
				identRoots[rng.Intn(len(identRoots))],
			}
			lv := func() string { return locals[rng.Intn(len(locals))] }
			fmt.Fprintf(&sb, "static int %s(struct %s_state *%s, int len)\n{\n", name, arg, arg)
			fmt.Fprintf(&sb, "\tint ret = 0;\n\tint %s = 0, %s = 0;\n", locals[0], locals[1])
			for st := 0; st < 4+rng.Intn(10); st++ {
				v, w := lv(), lv()
				switch rng.Intn(11) {
				case 8, 9, 10:
					// Runs of similar lines (field/register assignments):
					// the dominant short-range redundancy of real source.
					for k := 0; k < 3+rng.Intn(5); k++ {
						fmt.Fprintf(&sb, "\t%s->%s[%d] = %s[%d] & 0x%x;\n", arg, v, k, w, k, rng.Intn(256))
					}
				case 0:
					fmt.Fprintf(&sb, "\tfor (i = 0; i < len; i++)\n\t\t%s += %s->%s[i];\n", v, arg, w)
				case 1:
					fmt.Fprintf(&sb, "\tif (%s == NULL || %s < 0)\n\t\treturn -EINVAL;\n", arg, v)
				case 2:
					fmt.Fprintf(&sb, "\t%s = malloc(len * sizeof(*%s));\n\tif (!%s)\n\t\treturn -ENOMEM;\n", v, v, v)
				case 3:
					fmt.Fprintf(&sb, "\tmemcpy(%s->%s, %s, len);\n", arg, v, w)
				case 4:
					fmt.Fprintf(&sb, "\t/* update %s from %s: 0x%x */\n", v, w, rng.Uint32()&0xffff)
				case 5:
					fmt.Fprintf(&sb, "\t%s ^= (%s << %d) | 0x%x;\n", v, w, rng.Intn(31), rng.Uint32()&0xfff)
				case 6:
					fmt.Fprintf(&sb, "\tret = %s_%s(%s, %s, len);\n\tif (ret)\n\t\tgoto out;\n", w, identRoots[rng.Intn(len(identRoots))], arg, v)
				case 7:
					fmt.Fprintf(&sb, "\tswitch (%s & 0x%x) {\n\tcase %d:\n\t\t%s++;\n\t\tbreak;\n\tdefault:\n\t\t%s--;\n\t}\n",
						v, rng.Intn(255), rng.Intn(16), v, w)
				}
			}
			fmt.Fprintf(&sb, "out:\n\treturn ret ? ret : %d;\n}\n\n", rng.Intn(1000))
		}
	}
	return []byte(sb.String())[:n]
}

// DEMap emulates the Delaware DRG/DLG raster dataset: rows of 8-bit pixels
// dominated by large constant regions (water, fields) crossed by thin
// linear features (roads, contours) and speckle.
func DEMap(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	const rowLen = 512
	out := make([]byte, 0, n+rowLen)
	// A small palette like a classed raster.
	palette := []byte{0x11, 0x11, 0x22, 0x22, 0x22, 0x33, 0x47, 0x58, 0x69}
	region := palette[rng.Intn(len(palette))]
	regionRows := 0
	dither := byte(0)
	for len(out) < n {
		if regionRows <= 0 {
			region = palette[rng.Intn(len(palette))]
			regionRows = 2 + rng.Intn(16)
			dither = byte(rng.Intn(3)) // scan-era halftone texture
		}
		regionRows--
		row := make([]byte, rowLen)
		for i := range row {
			row[i] = region
			if dither > 0 && i%int(dither+1) == 0 {
				row[i] = region + dither // textured fill, short runs
			}
		}
		// Linear features cross most rows.
		for f := 0; f < 1+rng.Intn(6); f++ {
			start := rng.Intn(rowLen)
			width := 1 + rng.Intn(4)
			col := byte(0x80 + rng.Intn(64))
			for w := 0; w < width && start+w < rowLen; w++ {
				row[start+w] = col
			}
		}
		// Scanner speckle noise breaks up runs.
		for s := 0; s < 48+rng.Intn(80); s++ {
			row[rng.Intn(rowLen)] = byte(rng.Intn(256))
		}
		out = append(out, row...)
	}
	return out[:n]
}

// syllables is a broad pool so that neighbouring dictionary words share
// little beyond short prefixes, matching the real dictionary's
// "non-repeating" character (§IV.B).
var syllables = func() []string {
	consonants := []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
		"n", "p", "qu", "r", "s", "t", "v", "w", "x", "z", "ch", "sh", "th",
		"br", "cr", "dr", "fl", "gr", "pl", "st", "tr", "sw"}
	vowels := []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "y"}
	var out []string
	for _, c := range consonants {
		for _, v := range vowels {
			out = append(out, c+v)
		}
	}
	return out
}()

var wordSuffixes = []string{"", "", "n", "r", "s", "t", "l", "m", "tion", "ment", "ness", "ing", "er", "ly", "ish", "ed"}

// dictionaryListBytes caps the unique word list at roughly an English
// dictionary's size. Requests beyond it concatenate the sorted list (a
// 128 MB "dictionary dataset" is necessarily a repeated list; with LZSS
// windows far smaller than the list, repetition across copies is
// invisible, so the compressibility stays size-stable).
const dictionaryListBytes = 1 << 20

// Dictionary emulates the English-dictionary dataset: an alphabetically
// ordered list of unique words, chosen by the paper for its non-repeating
// behaviour (§IV.B) — neighbouring words share only short prefixes.
func Dictionary(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	listLen := n
	if listLen > dictionaryListBytes {
		listLen = dictionaryListBytes
	}
	seen := make(map[string]bool)
	var words []string
	total := 0
	for total < listLen {
		parts := 2 + rng.Intn(3)
		var w strings.Builder
		for p := 0; p < parts; p++ {
			w.WriteString(syllables[rng.Intn(len(syllables))])
		}
		w.WriteString(wordSuffixes[rng.Intn(len(wordSuffixes))])
		word := w.String()
		if seen[word] {
			continue
		}
		seen[word] = true
		words = append(words, word)
		total += len(word) + 1
	}
	sort.Strings(words)
	var sb strings.Builder
	sb.Grow(total + 64)
	for _, w := range words {
		sb.WriteString(w)
		sb.WriteByte('\n')
	}
	list := sb.String()
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, list...)
	}
	return out[:n]
}

// KernelTarball emulates "part of the linux kernel tarball": a tar archive
// of a generated source tree (C files, headers, Makefiles, Kconfig-style
// text), truncated to n bytes exactly as "part of" a larger archive.
func KernelTarball(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	buf.Grow(n + 64<<10)
	tw := tar.NewWriter(&buf)
	dir := 0
	for buf.Len() < n {
		dir++
		dirName := fmt.Sprintf("linux/drivers/sub%02d", dir%40)
		// A Makefile per directory.
		mk := fmt.Sprintf("# SPDX-License-Identifier: GPL-2.0\nobj-$(CONFIG_SUB%02d) += core.o util.o\nccflags-y := -I$(src)\n", dir%40)
		writeTar(tw, dirName+"/Makefile", []byte(mk))
		// Kconfig-style text.
		kc := fmt.Sprintf("config SUB%02d\n\ttristate \"Generated subsystem %d\"\n\tdepends on PCI\n\thelp\n\t  Generated driver stub %d.\n", dir%40, dir, dir)
		writeTar(tw, dirName+"/Kconfig", []byte(kc))
		// Source files reuse the CFiles generator for realistic bodies.
		// Real kernel sources average tens of kilobytes, so tar headers
		// and block padding stay a small fraction of the archive.
		for f := 0; f < 4; f++ {
			body := CFiles(16000+rng.Intn(24000), rng.Int63())
			writeTar(tw, fmt.Sprintf("%s/file%d.c", dirName, f), body)
		}
	}
	tw.Close()
	out := buf.Bytes()
	if len(out) < n {
		out = append(out, make([]byte, n-len(out))...)
	}
	return out[:n]
}

func writeTar(tw *tar.Writer, name string, body []byte) {
	hdr := &tar.Header{
		Name: name,
		Mode: 0o644,
		Size: int64(len(body)),
		Uid:  0, Gid: 0,
	}
	// Errors cannot occur writing to a bytes.Buffer with valid headers.
	if err := tw.WriteHeader(hdr); err != nil {
		panic(err)
	}
	if _, err := tw.Write(body); err != nil {
		panic(err)
	}
}

// HighlyCompressible is the paper's custom dataset: "repeating characters
// in substrings of 20", the best case for LZSS.
func HighlyCompressible(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	pattern := make([]byte, 20)
	for i := range pattern {
		pattern[i] = byte('a' + rng.Intn(26))
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = pattern[i%20]
	}
	return out
}
