package datasets

import (
	"testing"

	"culzss/internal/lzss"
)

// TestWindow128Ratios pins each dataset's compressibility at the paper's
// CULZSS configuration (128-byte window) to generous bands around the
// Table II columns. The harness's Table II reproduction depends on these.
func TestWindow128Ratios(t *testing.T) {
	const n = 256 << 10
	v1 := lzss.CULZSSV1()
	type band struct{ lo, hi float64 }
	// Paper Table II (Serial / V1): C 54.8/55.7, DE 33.9/34.2,
	// Dict 61.4/61.8, Kernel 55.1/56.5, High 13.5/13.9.
	bands := map[string]band{
		"cfiles":     {0.40, 0.70},
		"demap":      {0.20, 0.48},
		"dictionary": {0.50, 0.80},
		"kernel":     {0.38, 0.68},
		"highcomp":   {0.05, 0.20},
	}
	for _, g := range All() {
		data := g.Gen(n, 7)
		ba, err := lzss.EncodeByteAligned(data, v1, lzss.SearchHashChain, nil)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := lzss.EncodeBitPacked(data, v1, lzss.SearchHashChain, nil)
		if err != nil {
			t.Fatal(err)
		}
		v2c, err := lzss.EncodeByteAligned(data, lzss.CULZSSV2(), lzss.SearchHashChain, nil)
		if err != nil {
			t.Fatal(err)
		}
		serial := float64(len(bp)) / float64(n)
		rv1 := float64(len(ba)) / float64(n)
		rv2 := float64(len(v2c)) / float64(n)
		t.Logf("%-14s serial128=%5.1f%%  V1=%5.1f%%  V2=%5.1f%%", g.Name, serial*100, rv1*100, rv2*100)
		b := bands[g.Key]
		if rv1 < b.lo || rv1 > b.hi {
			t.Errorf("%s: V1 ratio %.3f outside [%.2f, %.2f]", g.Name, rv1, b.lo, b.hi)
		}
		// The bit-packed serial stream is always a little tighter than
		// the 16-bit byte-aligned tokens (paper: 54.80% vs 55.70%).
		if serial >= rv1 {
			t.Errorf("%s: serial ratio %.3f not below V1 ratio %.3f", g.Name, serial, rv1)
		}
	}
}
