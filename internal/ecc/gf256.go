// GF(256) arithmetic for the Reed–Solomon coder. The field is the usual
// AES-adjacent GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the same field every production erasure coder uses, so shard
// bytes are field elements and shard XOR is field addition.
//
// Multiplication goes through exp/log tables built once at init: small,
// branch-free, and fast enough for the frame sizes parity groups carry
// (the coder multiplies whole shards by scalars, so the table lookup is
// the inner loop).
package ecc

// gfPoly is the primitive polynomial generating the field.
const gfPoly = 0x11d

// gfExp holds alpha^i for i in [0, 510) so gfMul can skip the mod-255
// reduction of the log sum; gfLog is its inverse on [1, 255].
var (
	gfExp [510]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfExp[i+255] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b must be nonzero).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a nonzero element.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulSliceAdd computes dst[i] ^= c*src[i] — the accumulate step of a
// matrix row applied to shards. c == 0 is a no-op; c == 1 degenerates to
// plain XOR, which is the m=1 fast path's whole computation.
func mulSliceAdd(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		lc := int(gfLog[c])
		for i, s := range src {
			if s != 0 {
				dst[i] ^= gfExp[lc+int(gfLog[s])]
			}
		}
	}
}

// invertMatrix inverts an n×n GF(256) matrix in place via Gauss–Jordan
// elimination, returning false when the matrix is singular. The coder
// only inverts matrices the Cauchy construction guarantees invertible,
// so false here means corrupted inputs, not a library bug.
func invertMatrix(m [][]byte) bool {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot row at or below col.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Normalise the pivot row.
		if p := m[col][col]; p != 1 {
			ip := gfInv(p)
			for i := 0; i < n; i++ {
				m[col][i] = gfMul(m[col][i], ip)
				inv[col][i] = gfMul(inv[col][i], ip)
			}
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			c := m[r][col]
			for i := 0; i < n; i++ {
				m[r][i] ^= gfMul(c, m[col][i])
				inv[r][i] ^= gfMul(c, inv[col][i])
			}
		}
	}
	for i := range m {
		copy(m[i], inv[i])
	}
	return true
}
