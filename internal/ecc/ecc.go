// Package ecc is the erasure-coding layer behind self-healing CLZS
// streams: a systematic Reed–Solomon coder over GF(256) that turns K
// equal-length data shards into M parity shards such that ANY K of the
// K+M shards reconstruct the rest. The frame layer (internal/format)
// feeds it the encoded bytes of segment frames, so a parity group whose
// damage stays within M frames repairs bit-identically.
//
// The parity rows come from a Cauchy matrix (parity[j][i] = 1/(x_j ⊕
// y_i) with distinct x and y sets), whose every square submatrix is
// invertible — the MDS property that makes "any K shards suffice" a
// theorem rather than a hope. For M=1 the single parity row is all ones,
// so encoding and repair degenerate to pure XOR; Parity and Reconstruct
// special-case that path (the common k+1 configuration pays no table
// lookups).
//
// The coder is stateless after construction and safe for concurrent use.
package ecc

import (
	"errors"
	"fmt"
)

// MaxShards bounds k+m: GF(256) runs out of distinct evaluation points
// past 256 shards.
const MaxShards = 256

// Coder errors.
var (
	// ErrShardCount marks a k/m pair the field cannot support.
	ErrShardCount = errors.New("ecc: invalid shard count")
	// ErrShardSize marks shards of unequal (or zero) length.
	ErrShardSize = errors.New("ecc: shards must be non-empty and equal length")
	// ErrTooFewShards marks a reconstruction attempt with fewer than K
	// surviving shards — the damage exceeds what the parity can repair.
	ErrTooFewShards = errors.New("ecc: too few shards to reconstruct")
)

// Coder encodes and repairs one (K, M) geometry.
type Coder struct {
	k, m int
	// rows is the m×k parity half of the systematic encoding matrix:
	// parity[j] = Σ_i rows[j][i] · data[i].
	rows [][]byte
}

// New returns a coder for k data shards and m parity shards.
func New(k, m int) (*Coder, error) {
	if k < 1 || m < 1 || k+m > MaxShards {
		return nil, fmt.Errorf("%w: k=%d m=%d (need k,m >= 1 and k+m <= %d)", ErrShardCount, k, m, MaxShards)
	}
	c := &Coder{k: k, m: m, rows: make([][]byte, m)}
	for j := 0; j < m; j++ {
		c.rows[j] = make([]byte, k)
		for i := 0; i < k; i++ {
			// Cauchy construction: x_j = k+j and y_i = i are disjoint
			// sets, so x_j ⊕ y_i is never zero and every square
			// submatrix of the matrix 1/(x_j ⊕ y_i) is invertible.
			c.rows[j][i] = gfInv(byte(k+j) ^ byte(i))
		}
	}
	if m == 1 {
		// XOR fast path: a single parity row of ones is MDS on its own
		// (any k of the k+1 shards still span), and mulSliceAdd turns
		// coefficient 1 into plain XOR — no field math on the hot path.
		for i := range c.rows[0] {
			c.rows[0][i] = 1
		}
	}
	return c, nil
}

// K returns the data-shard count.
func (c *Coder) K() int { return c.k }

// M returns the parity-shard count.
func (c *Coder) M() int { return c.m }

// Parity computes the m parity shards over k equal-length data shards.
func (c *Coder) Parity(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data shards, coder wants %d", ErrShardCount, len(data), c.k)
	}
	size, err := shardSize(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	for j := range parity {
		parity[j] = make([]byte, size)
	}
	for j := 0; j < c.m; j++ {
		for i := 0; i < c.k; i++ {
			mulSliceAdd(parity[j], data[i], c.rows[j][i])
		}
	}
	return parity, nil
}

// Reconstruct fills in the missing (nil) shards of a full k+m shard
// slice in place: shards[0..k) are data, shards[k..k+m) parity. At least
// k shards must be present and all present shards must share one length.
// On success every slot is non-nil and the data shards are bit-identical
// to what Parity was originally computed over.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: got %d shards, coder wants %d", ErrShardCount, len(shards), c.k+c.m)
	}
	present := 0
	var size int
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size == 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: lengths %d and %d", ErrShardSize, size, len(s))
		}
	}
	if size == 0 {
		return ErrShardSize
	}
	if present < c.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, present, c.k+c.m, c.k)
	}
	if present == c.k+c.m {
		return nil // nothing missing
	}

	if err := c.reconstructData(shards, size); err != nil {
		return err
	}
	// With all data shards in hand, missing parity is a re-encode.
	for j := 0; j < c.m; j++ {
		if shards[c.k+j] != nil {
			continue
		}
		p := make([]byte, size)
		for i := 0; i < c.k; i++ {
			mulSliceAdd(p, shards[i], c.rows[j][i])
		}
		shards[c.k+j] = p
	}
	return nil
}

// reconstructData rebuilds the missing data shards (parity slots are
// left as they are).
func (c *Coder) reconstructData(shards [][]byte, size int) error {
	missing := 0
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}

	if c.m == 1 {
		// XOR fast path: exactly one shard can be missing (present >= k
		// guarantees it), and it is the XOR of everything else.
		out := make([]byte, size)
		hole := -1
		for i, s := range shards {
			if s == nil {
				hole = i
				continue
			}
			mulSliceAdd(out, s, 1)
		}
		shards[hole] = out
		return nil
	}

	// Choose k surviving shards (data first — identity rows keep the
	// matrix sparse) and build the k×k submatrix of the systematic
	// encoding matrix their rows form.
	subM := make([][]byte, 0, c.k)
	subS := make([][]byte, 0, c.k)
	for i := 0; i < c.k && len(subM) < c.k; i++ {
		if shards[i] == nil {
			continue
		}
		row := make([]byte, c.k)
		row[i] = 1
		subM = append(subM, row)
		subS = append(subS, shards[i])
	}
	for j := 0; j < c.m && len(subM) < c.k; j++ {
		if shards[c.k+j] == nil {
			continue
		}
		row := make([]byte, c.k)
		copy(row, c.rows[j])
		subM = append(subM, row)
		subS = append(subS, shards[c.k+j])
	}
	if !invertMatrix(subM) {
		return fmt.Errorf("ecc: submatrix not invertible (corrupted shard set)")
	}
	// data[i] = Σ_r subM[i][r] · subS[r], but only the missing rows need
	// computing.
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		for r := 0; r < c.k; r++ {
			mulSliceAdd(out, subS[r], subM[i][r])
		}
		shards[i] = out
	}
	return nil
}

// shardSize validates equal non-zero lengths and returns the common one.
func shardSize(shards [][]byte) (int, error) {
	if len(shards) == 0 || len(shards[0]) == 0 {
		return 0, ErrShardSize
	}
	size := len(shards[0])
	for _, s := range shards[1:] {
		if len(s) != size {
			return 0, fmt.Errorf("%w: lengths %d and %d", ErrShardSize, size, len(s))
		}
	}
	return size, nil
}
