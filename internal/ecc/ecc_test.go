package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// randShards builds k deterministic pseudo-random shards of size bytes.
func randShards(t *testing.T, k, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

// combinations calls fn with every way to choose n elements of [0, total).
func combinations(total, n int, fn func(pick []int)) {
	pick := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			fn(pick)
			return
		}
		for i := start; i < total; i++ {
			pick[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// TestReconstructAllErasurePatterns proves the MDS property on small
// geometries: for every (k, m) in the grid and EVERY way to erase up to
// m shards, reconstruction restores all of them bit-identically.
func TestReconstructAllErasurePatterns(t *testing.T) {
	for _, geo := range []struct{ k, m int }{
		{1, 1}, {2, 1}, {4, 1}, {3, 2}, {4, 2}, {5, 3}, {4, 4}, {8, 2}, {10, 4},
	} {
		c, err := New(geo.k, geo.m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", geo.k, geo.m, err)
		}
		data := randShards(t, geo.k, 67, int64(geo.k*100+geo.m))
		parity, err := c.Parity(data)
		if err != nil {
			t.Fatalf("Parity(%d,%d): %v", geo.k, geo.m, err)
		}
		full := append(append([][]byte{}, data...), parity...)
		total := geo.k + geo.m
		for erase := 1; erase <= geo.m; erase++ {
			combinations(total, erase, func(pick []int) {
				shards := make([][]byte, total)
				copy(shards, full)
				for _, p := range pick {
					shards[p] = nil
				}
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d m=%d erased %v: %v", geo.k, geo.m, pick, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], full[i]) {
						t.Fatalf("k=%d m=%d erased %v: shard %d differs after reconstruction",
							geo.k, geo.m, pick, i)
					}
				}
			})
		}
	}
}

// TestReconstructTooManyErasures verifies the coder refuses (rather than
// fabricates) when damage exceeds M.
func TestReconstructTooManyErasures(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 4, 32, 9)
	parity, err := c.Parity(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[2], shards[5] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("3 erasures with m=2: got %v, want ErrTooFewShards", err)
	}
}

// TestXORFastPathMatchesManualXOR pins the m=1 parity to plain XOR — the
// property the format layer's documentation promises.
func TestXORFastPathMatchesManualXOR(t *testing.T) {
	c, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 5, 123, 11)
	parity, err := c.Parity(data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 123)
	for _, d := range data {
		for i := range d {
			want[i] ^= d[i]
		}
	}
	if !bytes.Equal(parity[0], want) {
		t.Fatal("m=1 parity is not the XOR of the data shards")
	}
}

// TestParityDeterministic: same inputs, same parity — repair depends on
// re-encoding being reproducible.
func TestParityDeterministic(t *testing.T) {
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 6, 64, 21)
	p1, err := c.Parity(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Parity(data)
	if err != nil {
		t.Fatal(err)
	}
	for j := range p1 {
		if !bytes.Equal(p1[j], p2[j]) {
			t.Fatalf("parity shard %d differs between runs", j)
		}
	}
}

// TestValidation covers the constructor and shard-shape error paths.
func TestValidation(t *testing.T) {
	for _, bad := range []struct{ k, m int }{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(bad.k, bad.m); !errors.Is(err, ErrShardCount) {
			t.Errorf("New(%d,%d): got %v, want ErrShardCount", bad.k, bad.m, err)
		}
	}
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parity([][]byte{{1}, {2}}); !errors.Is(err, ErrShardCount) {
		t.Errorf("short data: got %v, want ErrShardCount", err)
	}
	if _, err := c.Parity([][]byte{{1, 2}, {3}, {4, 5}}); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged data: got %v, want ErrShardSize", err)
	}
	if err := c.Reconstruct(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Errorf("wrong shard slice length: got %v, want ErrShardCount", err)
	}
	if err := c.Reconstruct(make([][]byte, 5)); !errors.Is(err, ErrShardSize) {
		t.Errorf("all-nil shards: got %v, want ErrShardSize", err)
	}
	ragged := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7}, nil}
	if err := c.Reconstruct(ragged); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged reconstruct: got %v, want ErrShardSize", err)
	}
}

// TestReconstructNoOp: a full shard set returns unchanged.
func TestReconstructNoOp(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 2, 16, 5)
	parity, err := c.Parity(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	before := make([][]byte, len(shards))
	for i, s := range shards {
		before[i] = append([]byte{}, s...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], before[i]) {
			t.Fatalf("shard %d mutated by no-op reconstruct", i)
		}
	}
}

// TestGFTables sanity-checks the field: a*inv(a) == 1 and mul/div agree.
func TestGFTables(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
		for b := 1; b < 256; b++ {
			p := gfMul(byte(a), byte(b))
			if gfDiv(p, byte(b)) != byte(a) {
				t.Fatalf("div(mul(%d,%d), %d) != %d", a, b, b, a)
			}
		}
	}
}

func BenchmarkParity8Plus2(b *testing.B) {
	c, _ := New(8, 2)
	data := make([][]byte, 8)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = make([]byte, 64<<10)
		rng.Read(data[i])
	}
	b.SetBytes(8 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parity(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParityXOR8Plus1(b *testing.B) {
	c, _ := New(8, 1)
	data := make([][]byte, 8)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = make([]byte, 64<<10)
		rng.Read(data[i])
	}
	b.SetBytes(8 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parity(data); err != nil {
			b.Fatal(err)
		}
	}
}
