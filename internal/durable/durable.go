// Package durable is the crash-safe persistence layer over the CLZS
// frame format: it writes a framed stream to disk so that a process
// crash, torn write, or power cut at ANY byte offset leaves a file that
// is either (a) the complete, atomically-renamed final stream, or (b) a
// ".partial" file whose longest verifiable frame prefix can be resumed
// into a stream byte-equivalent to an uninterrupted run.
//
// The commit protocol has three rules:
//
//  1. All writes go to PartialPath(path) (= path + ".partial"). The
//     final name appears only via rename after the trailer is on disk
//     and fsynced, so a reader never observes a torn final file.
//  2. fsync happens at frame-boundary commit points (every
//     CommitEverySegments segment frames and/or CommitEveryBytes output
//     bytes, plus once in Close covering the trailer). Between commits,
//     completed frames may still be lost to a power cut — the commit
//     cadence bounds the recompression window, it does not narrow what
//     Resume can recover from.
//  3. Recovery never trusts tail bytes: durable.Resume rescans the
//     partial file, verifies every frame CRC (and decodes every frame to
//     rebuild the plaintext CRC state), truncates to the last verifiable
//     boundary, and appends from there.
//
// The layer deliberately sits *outside* internal/core: the core Writer
// stays an io.Writer pipeline with no file-system opinions, and gains
// only the ResumeState hook this package drives.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"culzss/internal/core"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/obs"
)

// Options tune the durable layer. The zero value commits every segment
// frame.
type Options struct {
	// CommitEverySegments is the fsync cadence in completed segment
	// frames; 0 means 1 (every frame). Larger values trade crash-loss
	// window for fewer fsyncs.
	CommitEverySegments int
	// CommitEveryBytes additionally commits whenever this many output
	// bytes have reached a frame boundary since the last commit; 0
	// disables the byte trigger.
	CommitEveryBytes int64
	// Stream is passed to the underlying core.Writer. Its Resume field
	// is owned by this package: Create zeroes it, Resume fills it.
	Stream core.StreamOptions
}

func (o Options) commitSegments() int {
	if o.CommitEverySegments <= 0 {
		return 1
	}
	return o.CommitEverySegments
}

// PartialPath is where a durable Writer accumulates bytes before the
// finalizing rename: path + ".partial".
func PartialPath(path string) string { return path + ".partial" }

// Writer is a crash-safe framed-stream writer. Write feeds the core
// compression pipeline; completed frames are fsynced on the commit
// cadence; Close writes the trailer, commits, and atomically renames the
// partial file into place. If the process dies first, the partial file
// remains for Resume.
type Writer struct {
	w    *core.Writer
	cw   *commitWriter
	path string
	done bool
}

// Create starts a fresh durable stream destined for path. The bytes
// accumulate in PartialPath(path); path itself appears only on a
// successful Close.
func Create(path string, p core.Params, o Options) (*Writer, error) {
	f, err := os.OpenFile(PartialPath(path), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	o.Stream.Resume = nil
	cw := newCommitWriter(f, p, o, format.NewBoundaryScanner())
	return &Writer{w: core.NewWriterOptions(cw, p, o.Stream), cw: cw, path: path}, nil
}

// Write feeds plaintext into the stream.
func (d *Writer) Write(p []byte) (int, error) { return d.w.Write(p) }

// Close flushes the pipeline, writes the stream trailer, commits it to
// stable storage, and renames the partial file to its final path. On any
// error the partial file is left in place for Resume.
func (d *Writer) Close() error {
	if d.done {
		return nil
	}
	if err := d.w.Close(); err != nil {
		d.done = true
		_ = d.cw.f.Close() // keep the partial for Resume
		return err
	}
	d.done = true
	return d.cw.finalize(d.path)
}

// Abort simulates a crash: it closes the file immediately (in-flight
// pipeline writes fail against it), drains the compression pipeline, and
// leaves the partial file exactly as the "crash" left it. Tests and
// shutdown paths use it; the partial is then Resume fodder.
func (d *Writer) Abort() error {
	if d.done {
		return nil
	}
	d.done = true
	cerr := d.cw.f.Close()
	_ = d.w.Close() // drain workers; their writes fail on the closed file
	return cerr
}

// Stats reports the underlying core.Writer counters with the durable
// layer's Committed filled in.
func (d *Writer) Stats() core.WriterStats {
	st := d.w.Stats()
	st.Committed = d.cw.committedSegments()
	return st
}

// durableMetrics is the package's obs instrument set; every instrument
// is nil-inert.
type durableMetrics struct {
	commits         *obs.Counter
	commitBytes     *obs.Counter
	resumes         *obs.Counter
	resumeTruncated *obs.Counter
	resumeRepaired  *obs.Counter
	commitSeconds   *obs.Histogram
}

func newDurableMetrics(reg *obs.Registry) durableMetrics {
	reg.SetHelp("culzss_durable_commits_total", "Frame-boundary fsync commits by the durable writer.")
	reg.SetHelp("culzss_durable_commit_bytes_total", "Output bytes newly covered by durable commits.")
	reg.SetHelp("culzss_durable_resumes_total", "Interrupted streams resumed from a partial file.")
	reg.SetHelp("culzss_durable_resume_truncated_bytes_total", "Unverifiable tail bytes discarded by resume.")
	reg.SetHelp("culzss_durable_resume_repaired_frames_total", "Frames rebuilt in place from parity during resume.")
	reg.SetHelp("culzss_commit_seconds", "Durable commit (fsync) latency in seconds.")
	return durableMetrics{
		commits:         reg.Counter("culzss_durable_commits_total"),
		commitBytes:     reg.Counter("culzss_durable_commit_bytes_total"),
		resumes:         reg.Counter("culzss_durable_resumes_total"),
		resumeTruncated: reg.Counter("culzss_durable_resume_truncated_bytes_total"),
		resumeRepaired:  reg.Counter("culzss_durable_resume_repaired_frames_total"),
		commitSeconds:   reg.Histogram("culzss_commit_seconds"),
	}
}

// commitWriter sits between the core.Writer and the file: it tracks
// frame boundaries in the byte flow (BoundaryScanner), fsyncs on the
// commit cadence, and records what has provably reached stable storage.
type commitWriter struct {
	f    *os.File
	out  io.Writer // f, possibly behind the injector's write-fault wrapper
	scan *format.BoundaryScanner
	inj  *faults.Injector
	met  durableMetrics

	commitSegs  int
	commitBytes int64

	mu            sync.Mutex
	committedSegs int   // frames known fsynced
	committedOff  int64 // file offset known fsynced (a frame boundary)
}

func newCommitWriter(f *os.File, p core.Params, o Options, scan *format.BoundaryScanner) *commitWriter {
	return &commitWriter{
		f:           f,
		out:         p.Injector.WrapWriter(f),
		scan:        scan,
		inj:         p.Injector,
		met:         newDurableMetrics(p.Obs),
		commitSegs:  o.commitSegments(),
		commitBytes: o.CommitEveryBytes,
	}
}

// seed marks an already-on-disk prefix as committed (Resume's verified
// boundary).
func (cw *commitWriter) seed(off int64, segs int) {
	cw.committedSegs, cw.committedOff = segs, off
}

func (cw *commitWriter) committedSegments() int {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.committedSegs
}

// Write forwards one record's bytes to the file, advances the boundary
// scanner over the bytes that actually landed, and commits when the
// cadence says so. The core.Writer serialises record writes, but the
// mutex also covers Stats readers.
func (cw *commitWriter) Write(p []byte) (int, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	n, werr := cw.out.Write(p)
	if n > 0 {
		// Track only landed bytes: after a torn write the scanner's
		// GoodOffset is the last boundary that is really on disk.
		if _, serr := cw.scan.Write(p[:n]); serr != nil && werr == nil {
			werr = fmt.Errorf("durable: framing bug: %w", serr)
		}
	}
	if werr != nil {
		return n, werr
	}
	if cw.scan.Records()-cw.committedSegs >= cw.commitSegs ||
		(cw.commitBytes > 0 && cw.scan.GoodOffset()-cw.committedOff >= cw.commitBytes) {
		if err := cw.commitLocked(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// commitLocked fsyncs and advances the committed watermark. The fsync
// probes faults.SiteSync first, so the fault layer can model an fsync
// that reports failure.
func (cw *commitWriter) commitLocked() error {
	start := time.Now()
	if err := cw.inj.Fault(faults.SiteSync); err != nil {
		return fmt.Errorf("durable: commit fsync: %w", err)
	}
	if err := cw.f.Sync(); err != nil {
		return fmt.Errorf("durable: commit fsync: %w", err)
	}
	cw.met.commitSeconds.Observe(time.Since(start).Seconds())
	cw.met.commits.Inc()
	cw.met.commitBytes.Add(cw.scan.GoodOffset() - cw.committedOff)
	cw.committedSegs = cw.scan.Records()
	cw.committedOff = cw.scan.GoodOffset()
	return nil
}

// finalize runs the atomic completion: final commit (covering the
// trailer), close, rename into place, and directory fsync so the rename
// itself is durable. On error the partial file survives.
func (cw *commitWriter) finalize(path string) error {
	cw.mu.Lock()
	err := cw.commitLocked()
	cw.mu.Unlock()
	if err != nil {
		_ = cw.f.Close()
		return err
	}
	if err := cw.f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(cw.f.Name(), path); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return syncDir(filepath.Dir(path), cw.inj)
}

// syncDir fsyncs a directory so a just-performed rename survives a power
// cut. It probes faults.SiteSync like any other sync point.
func syncDir(dir string, inj *faults.Injector) error {
	if err := inj.Fault(faults.SiteSync); err != nil {
		return fmt.Errorf("durable: directory fsync: %w", err)
	}
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("durable: directory fsync: %w", err)
	}
	return nil
}
