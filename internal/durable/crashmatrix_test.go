package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/faults"
)

// TestCrashMatrix is the central durability proof: interrupt a reference
// stream at every frame boundary and at sampled intra-frame offsets,
// resume each wreck, and require the completed file to be byte-identical
// to the uninterrupted reference — trailer CRC included — and to decode
// back to the original input.
func TestCrashMatrix(t *testing.T) {
	const segSize = 8 << 10
	input := datasets.CFiles(48<<10, 77) // 6 full segments
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, segSize)
	bounds := boundaries(t, ref)

	// Every record boundary, plus three samples inside each gap: just
	// past the previous boundary, mid-record, and one byte short of the
	// next.
	cuts := map[int64]bool{0: true}
	prev := int64(0)
	for _, b := range bounds {
		cuts[b] = true
		if gap := b - prev; gap > 2 {
			cuts[prev+1] = true
			cuts[prev+gap/2] = true
			cuts[b-1] = true
		}
		prev = b
	}

	dir := t.TempDir()
	n := 0
	for cut := range cuts {
		n++
		path := filepath.Join(dir, fmt.Sprintf("m%d.clzs", n))
		if err := os.WriteFile(PartialPath(path), ref[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The segment size in Options only matters for headerless
		// restarts; header-bearing partials override it from the header.
		w, rep, err := Resume(path, p, Options{Stream: core.StreamOptions{SegmentSize: segSize}})
		if err != nil {
			t.Fatalf("cut %d: Resume: %v", cut, err)
		}
		if w != nil {
			if _, err := w.Write(input[rep.TotalLen:]); err != nil {
				t.Fatalf("cut %d: Write: %v", cut, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("cut %d: Close: %v", cut, err)
			}
		} else if !rep.Complete {
			t.Fatalf("cut %d: no writer for an incomplete stream", cut)
		}
		final, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !bytes.Equal(final, ref) {
			t.Fatalf("cut %d: resumed stream differs from reference (%d vs %d bytes)",
				cut, len(final), len(ref))
		}
		if got := decodeFile(t, path, p); !bytes.Equal(got, input) {
			t.Fatalf("cut %d: decoded plaintext differs from input", cut)
		}
	}
	t.Logf("crash matrix: %d interruption points verified", n)
}

// TestCrashMatrixInjectedTornWrites runs the same equivalence through the
// fault layer: instead of hand-truncating files, the injector tears the
// durable writer's own output mid-flight, and Resume must still complete
// an identical stream.
func TestCrashMatrixInjectedTornWrites(t *testing.T) {
	const segSize = 8 << 10
	input := datasets.CFiles(48<<10, 77)
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, segSize)

	cases := []struct {
		name string
		arm  func(*faults.Injector) *faults.Injector
	}{
		{"torn-early", func(in *faults.Injector) *faults.Injector { return in.TornWriteAt(int64(len(ref)) / 5) }},
		{"torn-mid", func(in *faults.Injector) *faults.Injector { return in.TornWriteAt(int64(len(ref)) / 2) }},
		{"torn-late", func(in *faults.Injector) *faults.Injector { return in.TornWriteAt(int64(len(ref)) - 9) }},
		{"err-after-budget", func(in *faults.Injector) *faults.Injector { return in.ErrAfterNBytes(int64(len(ref)) / 3) }},
		{"torn-header", func(in *faults.Injector) *faults.Injector { return in.TornWriteAt(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.clzs")
			pi := p
			pi.Injector = tc.arm(faults.New(7))
			w, err := Create(path, pi, Options{Stream: core.StreamOptions{SegmentSize: segSize}})
			if err != nil {
				t.Fatal(err)
			}
			_, werr := w.Write(input)
			cerr := w.Close()
			if werr == nil && cerr == nil {
				t.Fatal("injected write fault never surfaced")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("final path appeared despite the crash")
			}

			rw, rep, err := Resume(path, p, Options{Stream: core.StreamOptions{SegmentSize: segSize}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rw.Write(input[rep.TotalLen:]); err != nil {
				t.Fatal(err)
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}
			final, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(final, ref) {
				t.Fatalf("resumed stream differs from reference (%d vs %d bytes)",
					len(final), len(ref))
			}
			if got := decodeFile(t, path, p); !bytes.Equal(got, input) {
				t.Fatal("decoded plaintext differs from input")
			}
		})
	}
}

// TestDoubleCrashResume interrupts the stream, resumes, interrupts the
// resumed run too, and resumes again — commit watermarks must survive
// stacking.
func TestDoubleCrashResume(t *testing.T) {
	const segSize = 8 << 10
	input := datasets.CFiles(48<<10, 77)
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, segSize)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")

	// Crash 1: torn write a third of the way in.
	p1 := p
	p1.Injector = faults.New(7).TornWriteAt(int64(len(ref)) / 3)
	w, err := Create(path, p1, Options{Stream: core.StreamOptions{SegmentSize: segSize}})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = w.Write(input)
	_ = w.Close()

	// Crash 2: resume, then die again two thirds in (wrapper offsets
	// count from the resume point).
	p2 := p
	p2.Injector = faults.New(7).TornWriteAt(int64(len(ref)) / 3)
	rw, rep, err := Resume(path, p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = rw.Write(input[rep.TotalLen:])
	_ = rw.Close()

	// Final resume with a healthy environment.
	rw2, rep2, err := Resume(path, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NextIndex < rep.NextIndex {
		t.Fatalf("second resume lost progress: %d < %d", rep2.NextIndex, rep.NextIndex)
	}
	if _, err := rw2.Write(input[rep2.TotalLen:]); err != nil {
		t.Fatal(err)
	}
	if err := rw2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatal("twice-resumed stream differs from reference")
	}
}
