package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/obs"
)

// refParityStream is refStream for a parity-bearing stream.
func refParityStream(t *testing.T, input []byte, p core.Params, segSize, k, m int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := core.NewWriterOptions(&buf, p, core.StreamOptions{
		SegmentSize: segSize,
		Parity:      core.ParityConfig{K: k, M: m},
	})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writePartial(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(PartialPath(path), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanTailParityState(t *testing.T) {
	const seg = 8 << 10
	input := datasets.CFiles(9*seg-seg/2, 41) // 9 segments: groups 4+4+1
	p := core.Params{Version: core.Version2}
	full := refParityStream(t, input, p, seg, 4, 2)
	bounds := boundaries(t, full)
	// bounds: header, d0..d3, p0, p1, d4..d7, p2, p3, d8, p4, p5, trailer.
	if len(bounds) != 1+9+6+1 {
		t.Fatalf("boundary count = %d, want 17", len(bounds))
	}
	dir := t.TempDir()
	scan := func(prefix []byte) *TailReport {
		t.Helper()
		path := filepath.Join(dir, "s.clzs")
		writePartial(t, path, prefix)
		f, err := os.Open(PartialPath(path))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep, err := ScanTail(f, p)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Cut after data frame 6 (mid group 1): geometry learned, the three
	// post-run frames carried for the resumed writer's accumulator.
	rep := scan(full[:bounds[9]])
	if rep.ParityK != 4 || rep.ParityM != 2 {
		t.Fatalf("geometry = %d+%d, want 4+2", rep.ParityK, rep.ParityM)
	}
	if rep.NextIndex != 7 || len(rep.GroupFrames) != 3 {
		t.Fatalf("NextIndex=%d GroupFrames=%d, want 7 and 3", rep.NextIndex, len(rep.GroupFrames))
	}
	if rep.LastGoodOffset != bounds[9] {
		t.Fatalf("LastGoodOffset=%d, want %d", rep.LastGoodOffset, bounds[9])
	}

	// Cut after p0 of group 0 (incomplete run): the run is not a resume
	// point; the verified offset stays at data frame 3 and the whole
	// group is carried.
	rep = scan(full[:bounds[5]])
	if rep.LastGoodOffset != bounds[4] {
		t.Fatalf("partial run kept: LastGoodOffset=%d, want %d", rep.LastGoodOffset, bounds[4])
	}
	if rep.NextIndex != 4 || len(rep.GroupFrames) != 4 {
		t.Fatalf("NextIndex=%d GroupFrames=%d, want 4 and 4", rep.NextIndex, len(rep.GroupFrames))
	}

	// Cut right after group 0's complete run: a clean group boundary.
	rep = scan(full[:bounds[6]])
	if rep.LastGoodOffset != bounds[6] || len(rep.GroupFrames) != 0 {
		t.Fatalf("full run dropped: LastGoodOffset=%d GroupFrames=%d", rep.LastGoodOffset, len(rep.GroupFrames))
	}

	// Cut inside the short tail run (p4 on disk, p5 lost): short groups
	// are Close tails — truncated back to the data frame and re-covered.
	rep = scan(full[:bounds[14]])
	if rep.LastGoodOffset != bounds[13] || len(rep.GroupFrames) != 1 {
		t.Fatalf("short tail run: LastGoodOffset=%d GroupFrames=%d", rep.LastGoodOffset, len(rep.GroupFrames))
	}
}

func TestResumeParityByteEquivalentAcrossCuts(t *testing.T) {
	const seg = 8 << 10
	input := datasets.CFiles(9*seg-seg/2, 42)
	p := core.Params{Version: core.Version2}
	full := refParityStream(t, input, p, seg, 4, 2)
	bounds := boundaries(t, full)
	o := Options{Stream: core.StreamOptions{Parity: core.ParityConfig{K: 4, M: 2}}}

	// Every record-boundary cut (and a few torn mid-record ones) must
	// resume into a file byte-identical to the uninterrupted run.
	cuts := make([]int, 0, len(bounds)+2)
	for _, b := range bounds[:len(bounds)-1] { // final boundary = complete stream
		cuts = append(cuts, int(b))
	}
	cuts = append(cuts, int(bounds[3])+5, int(bounds[10])+2)
	for _, cut := range cuts {
		t.Run(fmt.Sprint(cut), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.clzs")
			writePartial(t, path, full[:cut])
			w, rep, err := Resume(path, p, o)
			if err != nil {
				t.Fatal(err)
			}
			if w == nil {
				t.Fatal("complete stream from a strict prefix")
			}
			if _, err := w.Write(input[rep.TotalLen:]); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, full) {
				t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(full))
			}
		})
	}
}

func TestResumeTornFrameRepairsFromParity(t *testing.T) {
	// The self-healing acceptance case: the crash tore a data frame whose
	// group parity did reach the disk (out-of-order sector landing).
	// Resume must rebuild the frame in place from the parity instead of
	// truncating it and everything after it.
	const seg = 8 << 10
	input := datasets.CFiles(9*seg-seg/2, 43)
	reg := obs.NewRegistry()
	p := core.Params{Version: core.Version2, Obs: reg}
	full := refParityStream(t, input, p, seg, 4, 2)
	bounds := boundaries(t, full)
	o := Options{Stream: core.StreamOptions{Parity: core.ParityConfig{K: 4, M: 2}}}

	// Partial ends after group 0's parity run; data frame 3 is torn.
	prefix := append([]byte(nil), full[:bounds[6]]...)
	for i := bounds[3] + 3; i < bounds[4]-1; i++ {
		prefix[i] = 0xEE
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	writePartial(t, path, prefix)

	w, rep, err := Resume(path, p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("torn frame not repaired from parity (NextIndex=%d)", rep.NextIndex)
	}
	if rep.NextIndex != 4 || rep.LastGoodOffset != bounds[6] {
		t.Fatalf("repair did not extend the prefix: NextIndex=%d LastGoodOffset=%d want 4, %d",
			rep.NextIndex, rep.LastGoodOffset, bounds[6])
	}
	if v := reg.Counter("culzss_durable_resume_repaired_frames_total").Value(); v == 0 {
		t.Fatal("repaired-frames counter did not move")
	}
	if _, err := w.Write(input[rep.TotalLen:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("healed resumed stream differs from uninterrupted run")
	}
}

func TestResumeTornFrameAndTornParityTail(t *testing.T) {
	// Harder: the same torn frame, but the run behind it is itself torn
	// (p1 cut mid-record). One parity shard is enough for one erasure,
	// and the repair sink regenerates p1's bytes too — the rescan then
	// finds the complete run back in place.
	const seg = 8 << 10
	input := datasets.CFiles(9*seg-seg/2, 44)
	p := core.Params{Version: core.Version2}
	full := refParityStream(t, input, p, seg, 4, 2)
	bounds := boundaries(t, full)
	o := Options{Stream: core.StreamOptions{Parity: core.ParityConfig{K: 4, M: 2}}}

	prefix := append([]byte(nil), full[:bounds[6]-3]...) // p1 loses its last bytes
	for i := bounds[3] + 3; i < bounds[4]-1; i++ {
		prefix[i] = 0xEE
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	writePartial(t, path, prefix)

	w, rep, err := Resume(path, p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 || rep.NextIndex != 4 {
		t.Fatalf("repair with torn parity tail: Repaired=%d NextIndex=%d", rep.Repaired, rep.NextIndex)
	}
	if rep.LastGoodOffset != bounds[6] || len(rep.GroupFrames) != 0 {
		t.Fatalf("run not fully regenerated: LastGoodOffset=%d (want %d) GroupFrames=%d",
			rep.LastGoodOffset, bounds[6], len(rep.GroupFrames))
	}
	if _, err := w.Write(input[rep.TotalLen:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("healed resumed stream differs from uninterrupted run")
	}
}
