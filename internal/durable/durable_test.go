package durable

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/obs"
)

// refStream compresses input through a plain core.Writer with the same
// parameters a durable writer would use — the uninterrupted reference
// every crash test compares against (compression is deterministic for a
// fixed version and segment size).
func refStream(t *testing.T, input []byte, p core.Params, segSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := core.NewWriterOptions(&buf, p, core.StreamOptions{SegmentSize: segSize})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// boundaries returns the record-boundary offsets of a framed stream:
// just past the header, past each segment frame, and past the trailer.
func boundaries(t *testing.T, stream []byte) []int64 {
	t.Helper()
	s := format.NewBoundaryScanner()
	var bounds []int64
	for i := range stream {
		if _, err := s.Write(stream[i : i+1]); err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if n := int64(i + 1); s.GoodOffset() == n {
			bounds = append(bounds, n)
		}
	}
	return bounds
}

func decodeFile(t *testing.T, path string, p core.Params) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := core.NewReader(bufio.NewReader(f), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCreateCloseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	input := datasets.CFiles(40<<10, 31)
	p := core.Params{Version: core.Version1}

	w, err := Create(path, p, Options{Stream: core.StreamOptions{SegmentSize: 8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PartialPath(path)); !os.IsNotExist(err) {
		t.Fatalf("partial file survived a clean Close: %v", err)
	}
	if got := decodeFile(t, path, p); !bytes.Equal(got, input) {
		t.Fatal("decoded output differs from input")
	}
	st := w.Stats()
	if st.Committed != st.Segments || st.Segments != 5 {
		t.Fatalf("stats = %+v, want all 5 segments committed", st)
	}
	// Double Close stays a no-op.
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCommitCadenceSyncsAtConfiguredBoundaries(t *testing.T) {
	// 8 full segments with CommitEverySegments=2: commits at frames
	// 2/4/6/8, one final commit covering the trailer, one directory sync
	// after the rename — 6 SiteSync probes on an unarmed injector.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	in := faults.New(7)
	p := core.Params{Version: core.Version1, Injector: in}

	w, err := Create(path, p, Options{
		CommitEverySegments: 2,
		Stream:              core.StreamOptions{SegmentSize: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(datasets.CFiles(32<<10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c := in.Counts(faults.SiteSync); c.Attempts != 6 || c.Injected != 0 {
		t.Fatalf("SiteSync counts = %+v, want {6 0}", c)
	}
	if st := w.Stats(); st.Committed != 8 {
		t.Fatalf("Committed = %d, want 8", st.Committed)
	}
}

func TestCommitEveryBytesTriggers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	in := faults.New(7)
	p := core.Params{Version: core.Version1, Injector: in}

	// A byte trigger far below one segment's output commits every frame
	// even though the segment cadence alone (1000) never would.
	w, err := Create(path, p, Options{
		CommitEverySegments: 1000,
		CommitEveryBytes:    1,
		Stream:              core.StreamOptions{SegmentSize: 8 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(datasets.CFiles(24<<10, 9)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Header + 3 frames + final commit + dir sync = at least 5 probes.
	if c := in.Counts(faults.SiteSync); c.Attempts < 5 {
		t.Fatalf("SiteSync attempts = %d, want >= 5", c.Attempts)
	}
}

func TestFsyncFailureKeepsPartialAndResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	input := datasets.CFiles(40<<10, 13)
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, 8<<10)

	// Every fsync fails: the first commit kills the stream.
	in := faults.New(7).Always(faults.SiteSync)
	pi := p
	pi.Injector = in
	w, err := Create(path, pi, Options{Stream: core.StreamOptions{SegmentSize: 8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := w.Write(input)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("injected fsync failures never surfaced")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("final path appeared despite fsync failures")
	}
	if _, err := os.Stat(PartialPath(path)); err != nil {
		t.Fatalf("partial file missing after fsync failure: %v", err)
	}

	// Resume with a healthy environment completes the stream.
	rw, rep, err := Resume(path, p, Options{Stream: core.StreamOptions{SegmentSize: 8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("interrupted stream reported complete")
	}
	if _, err := rw.Write(input[rep.TotalLen:]); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatalf("resumed stream differs from uninterrupted reference (%d vs %d bytes)",
			len(final), len(ref))
	}
	if st := rw.Stats(); st.Resumed != rep.NextIndex {
		t.Fatalf("Resumed = %d, want %d", st.Resumed, rep.NextIndex)
	}
}

func TestResumeCompletePartialFinalizes(t *testing.T) {
	// Crash between the trailer fsync and the rename: the partial holds a
	// complete stream. Resume finalizes it without writing anything.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	input := datasets.CFiles(30<<10, 23)
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, 8<<10)
	if err := os.WriteFile(PartialPath(path), ref, 0o644); err != nil {
		t.Fatal(err)
	}
	w, rep, err := Resume(path, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatal("Resume of a complete partial must not return a writer")
	}
	if !rep.Complete || rep.TotalLen != len(input) {
		t.Fatalf("report = %+v, want complete covering %d bytes", rep, len(input))
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatal("finalized stream differs from reference")
	}
	if _, err := os.Stat(PartialPath(path)); !os.IsNotExist(err) {
		t.Fatal("partial survived finalization")
	}
}

func TestResumeHeaderlessPartialStartsOver(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	input := datasets.CFiles(20<<10, 3)
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, 8<<10)

	// The crash hit inside the 7-byte header: nothing is recoverable.
	if err := os.WriteFile(PartialPath(path), ref[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, rep, err := Resume(path, p, Options{Stream: core.StreamOptions{SegmentSize: 8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeaderOK || rep.TotalLen != 0 {
		t.Fatalf("report = %+v, want headerless zero-progress", rep)
	}
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatal("restarted stream differs from reference")
	}
	if st := w.Stats(); st.Resumed != 0 {
		t.Fatalf("Resumed = %d for a restarted stream, want 0", st.Resumed)
	}
}

func TestScanTailRejectsForeignFiles(t *testing.T) {
	p := core.Params{Version: core.Version1}
	if _, err := ScanTail(bytes.NewReader([]byte("not a clzs stream at all")), p); err == nil {
		t.Fatal("ScanTail accepted a foreign file")
	}
}

func TestDurableObsCounters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.clzs")
	input := datasets.CFiles(32<<10, 41)
	reg := obs.NewRegistry()
	p := core.Params{Version: core.Version1, Obs: reg}
	ref := refStream(t, input, core.Params{Version: core.Version1}, 8<<10)

	// Interrupt at an intra-frame offset, then resume under the same
	// registry.
	cut := int64(len(ref) - len(ref)/3)
	if err := os.WriteFile(PartialPath(path), ref[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	w, rep, err := Resume(path, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(input[rep.TotalLen:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if v := reg.Counter("culzss_durable_resumes_total").Value(); v != 1 {
		t.Fatalf("resumes counter = %d, want 1", v)
	}
	if v := reg.Counter("culzss_durable_resume_truncated_bytes_total").Value(); v != cut-rep.LastGoodOffset {
		t.Fatalf("truncated counter = %d, want %d", v, cut-rep.LastGoodOffset)
	}
	if v := reg.Counter("culzss_durable_commits_total").Value(); v < 1 {
		t.Fatalf("commits counter = %d, want >= 1", v)
	}
	if h := reg.Histogram("culzss_commit_seconds").Snapshot(); h.Count < 1 {
		t.Fatalf("commit_seconds observations = %d, want >= 1", h.Count)
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"culzss_durable_commits_total",
		"culzss_durable_commit_bytes_total",
		"culzss_durable_resumes_total",
		"culzss_commit_seconds",
	} {
		if !bytes.Contains(prom.Bytes(), []byte(name)) {
			t.Fatalf("exposition is missing %s", name)
		}
	}
}
