package durable

import (
	"bytes"
	"testing"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/format"
)

// TestScanTailTruncateEveryByte is the exhaustive sweep the resume
// protocol leans on: for every truncation point in (the first 8 KiB of)
// a multi-frame stream, ScanTail must land exactly on the greatest
// record boundary at or before the cut, never past it, and never panic
// or over-read.
func TestScanTailTruncateEveryByte(t *testing.T) {
	const segSize = 512
	input := datasets.CFiles(4<<10, 19) // 8 frames of 512 bytes
	p := core.Params{Version: core.Version1}
	ref := refStream(t, input, p, segSize)
	bounds := boundaries(t, ref)

	limit := len(ref)
	if limit > 8<<10 {
		limit = 8 << 10
	}
	for cut := 0; cut <= limit; cut++ {
		want := int64(0)
		frames := 0
		for i, b := range bounds {
			if b <= int64(cut) {
				want = b
				frames = i // bounds[0] is the header boundary
			}
		}
		if frames > 8 {
			frames = 8 // the last boundary is the trailer, not a frame
		}
		rep, err := ScanTail(bytes.NewReader(ref[:cut]), p)
		if err != nil {
			// Cuts inside the 4-byte magic legitimately fail the
			// stream-identity check rather than reporting a tail.
			if cut >= len(format.StreamMagic) {
				t.Fatalf("cut %d: %v", cut, err)
			}
			continue
		}
		if rep.LastGoodOffset != want {
			t.Fatalf("cut %d: LastGoodOffset = %d, want %d", cut, rep.LastGoodOffset, want)
		}
		if rep.LastGoodOffset+rep.Truncated != int64(cut) {
			t.Fatalf("cut %d: offset %d + truncated %d != size", cut, rep.LastGoodOffset, rep.Truncated)
		}
		if rep.HeaderOK && rep.NextIndex != frames {
			t.Fatalf("cut %d: NextIndex = %d, want %d", cut, rep.NextIndex, frames)
		}
		if rep.TotalLen != rep.NextIndex*segSize {
			t.Fatalf("cut %d: TotalLen = %d over %d frames", cut, rep.TotalLen, rep.NextIndex)
		}
		if rep.Complete != (cut == len(ref)) {
			t.Fatalf("cut %d: Complete = %v", cut, rep.Complete)
		}
	}
}

// FuzzScanTail feeds arbitrary bytes to the tail scanner. Whatever the
// input, the scanner must not panic, must account for every byte
// (LastGoodOffset + Truncated == size), must keep the good offset inside
// the input, and must be prefix-monotonic: deleting the final byte can
// only shrink (or keep) the verified prefix.
func FuzzScanTail(f *testing.F) {
	p := core.Params{Version: core.Version1}
	input := datasets.CFiles(2<<10, 19)
	var seedBuf bytes.Buffer
	w := core.NewWriterOptions(&seedBuf, p, core.StreamOptions{SegmentSize: 512})
	_, _ = w.Write(input)
	_ = w.Close()
	valid := seedBuf.Bytes()

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 0xff))
	mangled := append([]byte{}, valid...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled)
	f.Add([]byte("CLZS"))
	f.Add([]byte{'C', 'L', 'Z', 'S', 1, 0, 0x80, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ScanTail(bytes.NewReader(data), p)
		if err != nil {
			return // not a CLZS stream at all — fine, just must not panic
		}
		size := int64(len(data))
		if rep.LastGoodOffset < 0 || rep.LastGoodOffset > size {
			t.Fatalf("LastGoodOffset %d outside [0,%d]", rep.LastGoodOffset, size)
		}
		if rep.LastGoodOffset+rep.Truncated != size {
			t.Fatalf("offset %d + truncated %d != size %d", rep.LastGoodOffset, rep.Truncated, size)
		}
		if rep.TotalLen < 0 || rep.NextIndex < 0 {
			t.Fatalf("negative progress: %+v", rep)
		}
		if len(data) > 0 {
			prev, err := ScanTail(bytes.NewReader(data[:len(data)-1]), p)
			if err == nil && prev.LastGoodOffset > rep.LastGoodOffset {
				t.Fatalf("prefix scans further than the full input: %d > %d",
					prev.LastGoodOffset, rep.LastGoodOffset)
			}
		}
	})
}
