// Tail scanning and resume: recovering the longest verifiable prefix of
// an interrupted CLZS stream and continuing it in place.
package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"culzss/internal/core"
	"culzss/internal/format"
)

// TailReport is what ScanTail recovers from an interrupted stream: the
// last byte offset up to which every record verifies, and the stream
// state (index, plaintext length, incremental CRC) a resumed writer
// needs to continue it.
type TailReport struct {
	// HeaderOK reports that the stream header parsed. When false the
	// file holds no usable prefix (empty, or cut inside the header) and
	// resume starts the stream over.
	HeaderOK bool
	// SegmentSize is the segment size from the header, which a resumed
	// writer must reuse.
	SegmentSize int
	// LastGoodOffset is the offset just past the last fully verified
	// record. Everything after it is unverifiable and must be truncated.
	LastGoodOffset int64
	// NextIndex is the index the next segment frame must carry.
	NextIndex int
	// TotalLen is the plaintext byte count the verified frames decode to.
	TotalLen int
	// CRC is the running plaintext CRC-32 over those TotalLen bytes.
	CRC uint32
	// ParityK and ParityM report the stream's parity geometry, learned
	// from its first parity frame; 0,0 when the verified prefix carries
	// no parity.
	ParityK, ParityM int
	// GroupFrames holds the exact encoded bytes of the verified data
	// frames after the last kept parity run — the trailing open parity
	// group. A resumed writer seeds its accumulator with them
	// (core.ResumeState.GroupFrames) so the group's eventual parity
	// covers the pre-crash frames too. Empty for parity-less streams and
	// group-boundary cuts.
	GroupFrames [][]byte
	// Repaired is the number of frames reconstructed in place from
	// parity before this report's scan (filled by Resume's repair pass;
	// always 0 from a direct ScanTail).
	Repaired int
	// Complete reports the stream already ends with a verified trailer —
	// nothing was lost; the file only needs finalizing.
	Complete bool
	// Truncated is the number of unverifiable tail bytes
	// (fileSize - LastGoodOffset).
	Truncated int64
	// Cause is the parse or verification error that ended the scan for
	// an incomplete stream; nil when Complete.
	Cause error
}

// ResumeState converts the report into the core.Writer hook.
func (t *TailReport) ResumeState() *core.ResumeState {
	return &core.ResumeState{
		NextIndex:   t.NextIndex,
		Total:       t.TotalLen,
		CRC:         t.CRC,
		GroupFrames: t.GroupFrames,
	}
}

// countReader counts consumed bytes and exposes io.ByteReader so the
// frame reader uses it directly — n is then the exact stream offset of
// the parse position, with no buffered over-read hidden inside the
// decoder.
type countReader struct {
	r *bufio.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// ScanTail walks an interrupted (possibly trailer-less) framed stream
// from the start, fully verifying each record — frame CRC, decode, raw
// length — and reports the last good offset plus the stream state at it.
// Damage or truncation anywhere in the tail is expected and lands in the
// report's Cause, not the returned error; the error is reserved for
// files that are not a CLZS stream at all (bad magic, wrong version) and
// for I/O failures, where "truncate and resume" would destroy data the
// caller never meant to treat as a resumable stream.
func ScanTail(r io.ReadSeeker, p core.Params) (*TailReport, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	cr := &countReader{r: bufio.NewReader(r)}
	fr, err := format.NewFrameReader(cr)
	if err != nil {
		if errors.Is(err, format.ErrTruncated) {
			// Cut inside the header: no usable prefix, start over.
			return &TailReport{Truncated: size, Cause: err}, nil
		}
		return nil, err
	}
	rep := &TailReport{HeaderOK: true, SegmentSize: fr.SegmentSize, LastGoodOffset: cr.n}
	// Trailing-parity rule: a parity run is a resume point only when it is
	// complete and covers a full-size group (k == the stream's K). A short
	// run is the tail parity of an interrupted Close — keeping it would
	// freeze the group short, so it is truncated and its data frames
	// carried in GroupFrames for the resumed writer to re-cover. Partial
	// runs never advance the verified offset (the reader rejects the
	// stream shapes a resumed writer could legally append after them).
	var group [][]byte
	trackGroup := true
	fr.OnParity = func(pf *format.ParityFrame) {
		if pf.J == pf.M-1 && pf.K == fr.ParityK {
			rep.LastGoodOffset = cr.n
			group = group[:0]
		}
	}
	for {
		seg, trailer, err := fr.Next()
		if err != nil {
			rep.Cause = err
			break
		}
		if trailer != nil {
			if trailer.Checksum != rep.CRC {
				rep.Cause = fmt.Errorf("%w: trailer stream CRC %08x, frames decode to %08x",
					format.ErrCorrupt, trailer.Checksum, rep.CRC)
				break
			}
			rep.Complete = true
			rep.LastGoodOffset = cr.n
			break
		}
		raw, err := core.Decompress(seg.Container, p)
		if err != nil {
			rep.Cause = fmt.Errorf("durable: segment %d does not decode: %w", seg.Index, err)
			break
		}
		if len(raw) != seg.RawLen {
			rep.Cause = fmt.Errorf("durable: segment %d decodes to %d bytes, frame claims %d",
				seg.Index, len(raw), seg.RawLen)
			break
		}
		rep.CRC = format.Checksum32Update(rep.CRC, raw)
		rep.TotalLen += len(raw)
		rep.NextIndex++
		rep.LastGoodOffset = cr.n
		if trackGroup {
			group = append(group, format.AppendSegmentFrame(nil, seg.Index, seg.RawLen, seg.Container))
			if fr.ParityK == 0 && len(group) > format.MaxParityK {
				// A parity-bearing writer emits parity at least every
				// MaxParityK frames; this stream carries none. Stop
				// retaining encodings — the memory would be unbounded.
				group, trackGroup = nil, false
			}
		}
	}
	rep.ParityK, rep.ParityM = fr.ParityK, fr.ParityM
	// The trailing frames are carried even when the prefix ends before the
	// stream's first parity run: the resumed writer's options declare
	// whether parity is in play, and a parity-less resume simply ignores
	// them.
	if !rep.Complete {
		rep.GroupFrames = group
	}
	rep.Truncated = size - rep.LastGoodOffset
	return rep, nil
}

// repairPartial runs a salvage+repair pass over the first size bytes of
// an interrupted partial file: every frame that parity can reconstruct
// is rewritten in place (the repair layer's RepairSink yields the exact
// original bytes at their exact offsets), so a following ScanTail
// verifies straight through damage that would otherwise cut the resume
// prefix. Returns the number of frames patched; 0 means the file is
// untouched. Patching is safe by construction — every sunk frame is
// CRC-verified bit-identical to what the original writer put there.
func repairPartial(f *os.File, size int64) (int, error) {
	type patch struct {
		off int64
		enc []byte
	}
	cr := bufio.NewReader(io.NewSectionReader(f, 0, size))
	fr, err := format.NewFrameReaderSalvage(cr)
	if err != nil {
		return 0, nil // unusable header; nothing to repair
	}
	fr.EnableRepair()
	var patches []patch
	fr.RepairSink = func(index int, off int64, encoded []byte) {
		if off >= 0 {
			patches = append(patches, patch{off, append([]byte(nil), encoded...)})
		}
	}
	for {
		_, trailer, err := fr.Next()
		if trailer != nil {
			break
		}
		if err != nil {
			var cse *format.CorruptSegmentError
			var rse *format.RepairedSegmentError
			if errors.As(err, &rse) || errors.As(err, &cse) {
				continue // non-sticky notices; keep draining
			}
			break // terminal: end of the usable prefix
		}
	}
	if len(patches) == 0 {
		return 0, nil
	}
	for _, p := range patches {
		if _, err := f.WriteAt(p.enc, p.off); err != nil {
			return 0, fmt.Errorf("durable: patching repaired frame at %d: %w", p.off, err)
		}
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("durable: committing repaired frames: %w", err)
	}
	return len(patches), nil
}

// Resume continues an interrupted durable stream: it scans
// PartialPath(path), truncates to the last verifiable frame boundary,
// and returns a Writer that appends to the same stream — the eventual
// file is byte-equivalent in decoded content (and trailer CRC) to an
// uninterrupted run over the same input.
//
// Three shapes come back:
//   - The partial holds a complete stream (the crash hit between trailer
//     and rename): Resume finalizes it and returns (nil, report, nil) —
//     there is nothing left to write.
//   - The partial has a usable prefix: the returned Writer continues it;
//     the caller must skip the first report.TotalLen bytes of its input
//     (they are already compressed) and Write the remainder.
//   - The partial has no usable prefix (cut inside the header): the
//     returned Writer starts the stream over; report.TotalLen is 0.
//
// Params must match the original run where output bytes are concerned
// (Version, Window...); Options may change the commit cadence, but the
// segment size is taken from the partial's header, overriding
// o.Stream.SegmentSize.
func Resume(path string, p core.Params, o Options) (*Writer, *TailReport, error) {
	f, err := os.OpenFile(PartialPath(path), os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	rep, err := ScanTail(f, p)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	met := newDurableMetrics(p.Obs)
	if !rep.Complete && rep.HeaderOK && rep.Truncated > 0 {
		// Before truncating unverifiable tail bytes, let parity heal them:
		// a torn or corrupted frame whose group parity survived is
		// rewritten in place, and the rescan then verifies past it.
		if size, serr := f.Seek(0, io.SeekEnd); serr == nil {
			if n, perr := repairPartial(f, size); perr == nil && n > 0 {
				met.resumeRepaired.Add(int64(n))
				if rep2, serr := ScanTail(f, p); serr == nil {
					rep2.Repaired = n
					rep = rep2
				}
			}
		}
	}
	met.resumes.Inc()
	met.resumeTruncated.Add(rep.Truncated)
	if err := f.Truncate(rep.LastGoodOffset); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Seek(rep.LastGoodOffset, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("durable: %w", err)
	}

	if rep.Complete {
		// The stream finished; only the rename was lost. Finalize it.
		cw := newCommitWriter(f, p, o, format.NewBoundaryScanner())
		cw.seed(rep.LastGoodOffset, rep.NextIndex)
		if err := cw.finalize(path); err != nil {
			return nil, rep, err
		}
		return nil, rep, nil
	}

	var scan *format.BoundaryScanner
	if rep.HeaderOK {
		o.Stream.SegmentSize = rep.SegmentSize
		o.Stream.Resume = rep.ResumeState()
		if o.Stream.Parity.K == 0 && rep.ParityK > 0 {
			// The caller did not restate the parity geometry; inherit it
			// from the stream so the resumed half stays covered too.
			o.Stream.Parity = core.ParityConfig{K: rep.ParityK, M: rep.ParityM}
		}
		scan = format.ResumeBoundaryScanner(rep.LastGoodOffset, rep.NextIndex)
	} else {
		// Nothing recoverable: restart the stream in the same partial.
		o.Stream.Resume = nil
		scan = format.NewBoundaryScanner()
	}
	cw := newCommitWriter(f, p, o, scan)
	cw.seed(rep.LastGoodOffset, rep.NextIndex)
	return &Writer{w: core.NewWriterOptions(cw, p, o.Stream), cw: cw, path: path}, rep, nil
}
