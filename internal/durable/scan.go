// Tail scanning and resume: recovering the longest verifiable prefix of
// an interrupted CLZS stream and continuing it in place.
package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"culzss/internal/core"
	"culzss/internal/format"
)

// TailReport is what ScanTail recovers from an interrupted stream: the
// last byte offset up to which every record verifies, and the stream
// state (index, plaintext length, incremental CRC) a resumed writer
// needs to continue it.
type TailReport struct {
	// HeaderOK reports that the stream header parsed. When false the
	// file holds no usable prefix (empty, or cut inside the header) and
	// resume starts the stream over.
	HeaderOK bool
	// SegmentSize is the segment size from the header, which a resumed
	// writer must reuse.
	SegmentSize int
	// LastGoodOffset is the offset just past the last fully verified
	// record. Everything after it is unverifiable and must be truncated.
	LastGoodOffset int64
	// NextIndex is the index the next segment frame must carry.
	NextIndex int
	// TotalLen is the plaintext byte count the verified frames decode to.
	TotalLen int
	// CRC is the running plaintext CRC-32 over those TotalLen bytes.
	CRC uint32
	// Complete reports the stream already ends with a verified trailer —
	// nothing was lost; the file only needs finalizing.
	Complete bool
	// Truncated is the number of unverifiable tail bytes
	// (fileSize - LastGoodOffset).
	Truncated int64
	// Cause is the parse or verification error that ended the scan for
	// an incomplete stream; nil when Complete.
	Cause error
}

// ResumeState converts the report into the core.Writer hook.
func (t *TailReport) ResumeState() *core.ResumeState {
	return &core.ResumeState{NextIndex: t.NextIndex, Total: t.TotalLen, CRC: t.CRC}
}

// countReader counts consumed bytes and exposes io.ByteReader so the
// frame reader uses it directly — n is then the exact stream offset of
// the parse position, with no buffered over-read hidden inside the
// decoder.
type countReader struct {
	r *bufio.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// ScanTail walks an interrupted (possibly trailer-less) framed stream
// from the start, fully verifying each record — frame CRC, decode, raw
// length — and reports the last good offset plus the stream state at it.
// Damage or truncation anywhere in the tail is expected and lands in the
// report's Cause, not the returned error; the error is reserved for
// files that are not a CLZS stream at all (bad magic, wrong version) and
// for I/O failures, where "truncate and resume" would destroy data the
// caller never meant to treat as a resumable stream.
func ScanTail(r io.ReadSeeker, p core.Params) (*TailReport, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	cr := &countReader{r: bufio.NewReader(r)}
	fr, err := format.NewFrameReader(cr)
	if err != nil {
		if errors.Is(err, format.ErrTruncated) {
			// Cut inside the header: no usable prefix, start over.
			return &TailReport{Truncated: size, Cause: err}, nil
		}
		return nil, err
	}
	rep := &TailReport{HeaderOK: true, SegmentSize: fr.SegmentSize, LastGoodOffset: cr.n}
	for {
		seg, trailer, err := fr.Next()
		if err != nil {
			rep.Cause = err
			break
		}
		if trailer != nil {
			if trailer.Checksum != rep.CRC {
				rep.Cause = fmt.Errorf("%w: trailer stream CRC %08x, frames decode to %08x",
					format.ErrCorrupt, trailer.Checksum, rep.CRC)
				break
			}
			rep.Complete = true
			rep.LastGoodOffset = cr.n
			break
		}
		raw, err := core.Decompress(seg.Container, p)
		if err != nil {
			rep.Cause = fmt.Errorf("durable: segment %d does not decode: %w", seg.Index, err)
			break
		}
		if len(raw) != seg.RawLen {
			rep.Cause = fmt.Errorf("durable: segment %d decodes to %d bytes, frame claims %d",
				seg.Index, len(raw), seg.RawLen)
			break
		}
		rep.CRC = format.Checksum32Update(rep.CRC, raw)
		rep.TotalLen += len(raw)
		rep.NextIndex++
		rep.LastGoodOffset = cr.n
	}
	rep.Truncated = size - rep.LastGoodOffset
	return rep, nil
}

// Resume continues an interrupted durable stream: it scans
// PartialPath(path), truncates to the last verifiable frame boundary,
// and returns a Writer that appends to the same stream — the eventual
// file is byte-equivalent in decoded content (and trailer CRC) to an
// uninterrupted run over the same input.
//
// Three shapes come back:
//   - The partial holds a complete stream (the crash hit between trailer
//     and rename): Resume finalizes it and returns (nil, report, nil) —
//     there is nothing left to write.
//   - The partial has a usable prefix: the returned Writer continues it;
//     the caller must skip the first report.TotalLen bytes of its input
//     (they are already compressed) and Write the remainder.
//   - The partial has no usable prefix (cut inside the header): the
//     returned Writer starts the stream over; report.TotalLen is 0.
//
// Params must match the original run where output bytes are concerned
// (Version, Window...); Options may change the commit cadence, but the
// segment size is taken from the partial's header, overriding
// o.Stream.SegmentSize.
func Resume(path string, p core.Params, o Options) (*Writer, *TailReport, error) {
	f, err := os.OpenFile(PartialPath(path), os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	rep, err := ScanTail(f, p)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	met := newDurableMetrics(p.Obs)
	met.resumes.Inc()
	met.resumeTruncated.Add(rep.Truncated)
	if err := f.Truncate(rep.LastGoodOffset); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Seek(rep.LastGoodOffset, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("durable: %w", err)
	}

	if rep.Complete {
		// The stream finished; only the rename was lost. Finalize it.
		cw := newCommitWriter(f, p, o, format.NewBoundaryScanner())
		cw.seed(rep.LastGoodOffset, rep.NextIndex)
		if err := cw.finalize(path); err != nil {
			return nil, rep, err
		}
		return nil, rep, nil
	}

	var scan *format.BoundaryScanner
	if rep.HeaderOK {
		o.Stream.SegmentSize = rep.SegmentSize
		o.Stream.Resume = rep.ResumeState()
		scan = format.ResumeBoundaryScanner(rep.LastGoodOffset, rep.NextIndex)
	} else {
		// Nothing recoverable: restart the stream in the same partial.
		o.Stream.Resume = nil
		scan = format.NewBoundaryScanner()
	}
	cw := newCommitWriter(f, p, o, scan)
	cw.seed(rep.LastGoodOffset, rep.NextIndex)
	return &Writer{w: core.NewWriterOptions(cw, p, o.Stream), cw: cw, path: path}, rep, nil
}
