package durable

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/codec"
	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/format"
)

// streamCodecs counts a framed stream's segment frames per embedded
// container codec byte.
func streamCodecs(t *testing.T, stream []byte) map[format.Codec]int {
	t.Helper()
	fr, err := format.NewFrameReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	out := map[format.Codec]int{}
	for {
		frame, trailer, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if trailer != nil {
			return out
		}
		h, _, err := format.ParseHeader(frame.Container)
		if err != nil {
			t.Fatal(err)
		}
		out[h.Codec]++
	}
}

// TestResumeCodecStreams pins resume for the codec-routed streams the
// legacy crash tests never produced: a fixed V2 stream and an adaptive
// (auto) stream mixing V2, V1, and raw-store frames. A crash-interrupted
// run must resume into a file byte-identical to the uninterrupted one —
// the selector re-derives each segment's engine from the same bytes, and
// every engine's encoder is deterministic.
func TestResumeCodecStreams(t *testing.T) {
	const seg = 8 << 10
	// Mixed compressibility so "auto" genuinely mixes codecs: text (V2
	// territory), log-like repetition (V1), and an incompressible tail
	// (raw-store).
	input := datasets.CFiles(3*seg, 41)
	input = append(input, datasets.HighlyCompressible(3*seg, 42)...)
	tail := make([]byte, 3*seg-seg/2)
	rand.New(rand.NewSource(43)).Read(tail)
	input = append(input, tail...)

	for _, name := range []string{"v2", codec.Auto} {
		t.Run(name, func(t *testing.T) {
			sopts := core.StreamOptions{SegmentSize: seg, Codec: name}
			p := core.Params{}
			var refBuf bytes.Buffer
			w := core.NewWriterOptions(&refBuf, p, sopts)
			if _, err := w.Write(input); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			full := refBuf.Bytes()
			mix := streamCodecs(t, full)
			if name == "v2" {
				if len(mix) != 1 || mix[format.CodecCULZSSV2] == 0 {
					t.Fatalf("fixed v2 stream carries codec mix %v", mix)
				}
			} else if len(mix) < 2 {
				t.Fatalf("adaptive stream was meant to mix codecs, got %v", mix)
			}

			bounds := boundaries(t, full)
			// A clean frame-boundary cut, a mid-stream one, and a torn cut
			// inside the final record.
			cuts := []int{int(bounds[2]), int(bounds[len(bounds)/2]), int(bounds[len(bounds)-2]) + 3}
			for _, cut := range cuts {
				t.Run(fmt.Sprint(cut), func(t *testing.T) {
					dir := t.TempDir()
					path := filepath.Join(dir, "out.clzs")
					writePartial(t, path, full[:cut])
					w, rep, err := Resume(path, p, Options{Stream: sopts})
					if err != nil {
						t.Fatal(err)
					}
					if w == nil {
						t.Fatal("complete stream from a strict prefix")
					}
					if _, err := w.Write(input[rep.TotalLen:]); err != nil {
						t.Fatal(err)
					}
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					got, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, full) {
						t.Fatalf("resumed %s stream differs from uninterrupted run (%d vs %d bytes)",
							name, len(got), len(full))
					}
					if back := decodeFile(t, path, core.Params{}); !bytes.Equal(back, input) {
						t.Fatal("resumed stream does not decode to the input")
					}
				})
			}
		})
	}
}
