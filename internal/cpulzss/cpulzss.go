// Package cpulzss implements the paper's two CPU baselines:
//
//   - Serial LZSS (§III.A): a single-threaded whole-buffer compressor
//     adapted, like the paper's, from Dipperstein's reference
//     implementation — greedy longest-match parsing over a sliding window
//     with a dense bit-packed token stream.
//   - Pthread LZSS (§III.A): the input is divided into chunks, the chunks
//     are compressed concurrently by a pool of workers (goroutines here,
//     POSIX threads in the paper), and the compressed chunks are
//     reassembled into one container — the PBZIP2 strategy [16].
//
// Both produce containers in the internal/format framing so that any
// decompressor in the repository can locate chunks and verify checksums.
package cpulzss

import (
	"fmt"
	"runtime"
	"sync"

	"culzss/internal/format"
	"culzss/internal/lzss"
)

// Options configures the CPU compressors.
type Options struct {
	// Config is the LZSS dictionary configuration. The zero value means
	// lzss.Dipperstein(), the paper's serial parameters.
	Config lzss.Config
	// Search selects the longest-match strategy (brute force by default,
	// exactly as the paper's serial code; hash chains are the §VII
	// future-work acceleration).
	Search lzss.Search
	// ChunkSize is the number of uncompressed bytes per parallel chunk.
	// Zero means DefaultChunkSize. Ignored by CompressSerial.
	ChunkSize int
	// Workers is the number of concurrent compression workers. Zero means
	// runtime.GOMAXPROCS(0). Ignored by CompressSerial.
	Workers int
	// Stats, when non-nil, accumulates match-search counters across the
	// whole compression (summed over workers).
	Stats *lzss.SearchStats
}

// DefaultChunkSize is the per-thread chunk granularity of the pthread
// version. The paper divides the file evenly among threads; a fixed 256 KiB
// chunk keeps the work queue balanced for any worker count.
const DefaultChunkSize = 256 << 10

func (o *Options) fill() {
	if o.Config == (lzss.Config{}) {
		o.Config = lzss.Dipperstein()
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// CompressSerial compresses data exactly as the paper's serial CPU
// implementation: one bit-packed token stream over the whole buffer.
func CompressSerial(data []byte, opts Options) ([]byte, error) {
	opts.fill()
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	payload, err := lzss.EncodeBitPacked(data, opts.Config, opts.Search, opts.Stats)
	if err != nil {
		return nil, err
	}
	h := &format.Header{
		Codec:       format.CodecSerialBitPacked,
		MinMatch:    uint8(opts.Config.MinMatch),
		Window:      opts.Config.Window,
		Lookahead:   opts.Config.MaxMatch,
		ChunkSize:   0,
		OriginalLen: len(data),
		Checksum:    format.Checksum32(data),
	}
	if len(data) > 0 {
		h.ChunkSizes = []int{len(payload)}
	}
	out := format.AppendHeader(make([]byte, 0, len(format.Magic)+32+len(payload)), h)
	return append(out, payload...), nil
}

// CompressParallel compresses data with the pthread strategy: independent
// chunks compressed concurrently and reassembled in order.
func CompressParallel(data []byte, opts Options) ([]byte, error) {
	opts.fill()
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	chunks := format.SplitChunks(data, opts.ChunkSize)
	streams := make([][]byte, len(chunks))
	errs := make([]error, len(chunks))
	statsPer := make([]lzss.SearchStats, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, chunk := range chunks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, chunk []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			var st *lzss.SearchStats
			if opts.Stats != nil {
				st = &statsPer[i]
			}
			streams[i], errs[i] = lzss.EncodeBitPacked(chunk, opts.Config, opts.Search, st)
		}(i, chunk)
	}
	wg.Wait()

	total := 0
	for i := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(streams[i])
		if opts.Stats != nil {
			opts.Stats.Add(statsPer[i])
		}
	}

	h := &format.Header{
		Codec:       format.CodecChunkedBitPacked,
		MinMatch:    uint8(opts.Config.MinMatch),
		Window:      opts.Config.Window,
		Lookahead:   opts.Config.MaxMatch,
		ChunkSize:   opts.ChunkSize,
		OriginalLen: len(data),
		Checksum:    format.Checksum32(data),
		ChunkSizes:  make([]int, len(chunks)),
	}
	for i, s := range streams {
		h.ChunkSizes[i] = len(s)
	}
	out := format.AppendHeader(make([]byte, 0, 64+total), h)
	// Reassembly step (paper §III.A): concatenate the per-chunk streams in
	// chunk order.
	for _, s := range streams {
		out = append(out, s...)
	}
	return out, nil
}

// Decompress expands a container produced by CompressSerial or
// CompressParallel, verifying the checksum. Chunked containers are decoded
// with up to workers concurrent goroutines; workers <= 0 means
// runtime.GOMAXPROCS(0).
func Decompress(container []byte, workers int) ([]byte, error) {
	h, off, err := format.ParseHeader(container)
	if err != nil {
		return nil, err
	}
	switch h.Codec {
	case format.CodecSerialBitPacked, format.CodecChunkedBitPacked:
	default:
		return nil, fmt.Errorf("cpulzss: container holds %v, not a bit-packed stream", h.Codec)
	}
	cfg := lzss.Config{Window: h.Window, MaxMatch: h.Lookahead, MinMatch: int(h.MinMatch)}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	payload := container[off:]
	out := make([]byte, h.OriginalLen)
	bounds := h.ChunkBounds()

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(bounds) == 1 || workers == 1 {
		for _, b := range bounds {
			dst := out[b.UncompOff:b.UncompOff:(b.UncompOff + b.UncompLen)]
			dec, err := lzss.AppendDecodedBitPacked(dst, payload[b.CompOff:b.CompOff+b.CompLen], b.UncompLen, cfg)
			if err != nil {
				return nil, fmt.Errorf("chunk %d: %w", b.Index, err)
			}
			copy(out[b.UncompOff:], dec)
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(bounds))
		sem := make(chan struct{}, workers)
		for _, b := range bounds {
			wg.Add(1)
			sem <- struct{}{}
			go func(b format.ChunkBound) {
				defer wg.Done()
				defer func() { <-sem }()
				dst := out[b.UncompOff:b.UncompOff:(b.UncompOff + b.UncompLen)]
				dec, err := lzss.AppendDecodedBitPacked(dst, payload[b.CompOff:b.CompOff+b.CompLen], b.UncompLen, cfg)
				if err != nil {
					errs[b.Index] = fmt.Errorf("chunk %d: %w", b.Index, err)
					return
				}
				copy(out[b.UncompOff:], dec)
			}(b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	if format.Checksum32(out) != h.Checksum {
		return nil, format.ErrChecksum
	}
	return out, nil
}
