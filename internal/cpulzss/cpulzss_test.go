package cpulzss

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"culzss/internal/format"
	"culzss/internal/lzss"
)

func genText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"int", "return", "for", "while", "struct", "static", "void", "char", "buffer", "window"}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

func TestSerialRoundTrip(t *testing.T) {
	input := genText(20000, 1)
	comp, err := CompressSerial(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(input) {
		t.Fatalf("no compression on text: %d -> %d", len(input), len(comp))
	}
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
}

func TestSerialEmptyInput(t *testing.T) {
	comp, err := CompressSerial(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestParallelRoundTrip(t *testing.T) {
	input := genText(100000, 2)
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{1024, 4096, 1 << 20} {
			comp, err := CompressParallel(input, Options{ChunkSize: chunk, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decompress(comp, workers)
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !bytes.Equal(got, input) {
				t.Fatalf("workers=%d chunk=%d: round trip mismatch", workers, chunk)
			}
		}
	}
}

func TestParallelMatchesHeaderMetadata(t *testing.T) {
	input := genText(10000, 3)
	comp, err := CompressParallel(input, Options{ChunkSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := format.ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Codec != format.CodecChunkedBitPacked {
		t.Fatalf("codec = %v", h.Codec)
	}
	if len(h.ChunkSizes) != 3 {
		t.Fatalf("chunks = %d, want 3", len(h.ChunkSizes))
	}
	if h.OriginalLen != len(input) {
		t.Fatalf("originalLen = %d", h.OriginalLen)
	}
}

func TestParallelSameRatioBallparkAsSerial(t *testing.T) {
	// The pthread version sacrifices a little ratio at chunk boundaries
	// (windows do not cross chunks) but must stay close to serial.
	input := genText(200000, 4)
	ser, err := CompressSerial(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(input, Options{ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(par)) > float64(len(ser))*1.05 {
		t.Fatalf("parallel ratio drifted: serial %d, parallel %d", len(ser), len(par))
	}
}

func TestDecompressRejectsWrongCodec(t *testing.T) {
	h := &format.Header{
		Codec: format.CodecBZip2, MinMatch: 3, Window: 128, Lookahead: 18,
		OriginalLen: 0,
	}
	cont := format.AppendHeader(nil, h)
	if _, err := Decompress(cont, 0); err == nil {
		t.Fatal("accepted bzip2 container")
	}
}

func TestDecompressChecksumMismatch(t *testing.T) {
	input := genText(5000, 5)
	comp, err := CompressSerial(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: decode may fail structurally or produce wrong
	// bytes; either way the result must be an error, and if the stream
	// still parses it must be the checksum error.
	corrupt := append([]byte(nil), comp...)
	corrupt[len(corrupt)-1] ^= 0xFF
	_, err = Decompress(corrupt, 0)
	if err == nil {
		t.Fatal("accepted corrupted payload")
	}
	if !errors.Is(err, format.ErrChecksum) && !errors.Is(err, lzss.ErrCorrupt) && !errors.Is(err, lzss.ErrTruncated) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestDecompressTruncatedContainer(t *testing.T) {
	input := genText(5000, 6)
	comp, err := CompressParallel(input, Options{ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(comp) / 4, len(comp) / 2, len(comp) - 1} {
		if _, err := Decompress(comp[:cut], 0); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	input := genText(20000, 7)
	var ser, par lzss.SearchStats
	if _, err := CompressSerial(input, Options{Stats: &ser}); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressParallel(input, Options{Stats: &par, ChunkSize: 4096}); err != nil {
		t.Fatal(err)
	}
	if ser.Positions == 0 || par.Positions == 0 {
		t.Fatalf("stats not accumulated: serial %+v parallel %+v", ser, par)
	}
	// Both visit roughly one position per emitted token; the totals must
	// be in the same ballpark.
	if par.Positions > ser.Positions*2 || ser.Positions > par.Positions*2 {
		t.Fatalf("implausible stats: serial %+v parallel %+v", ser, par)
	}
}

func TestQuickRoundTripParallel(t *testing.T) {
	cfgQuick := &quick.Config{MaxCount: 30}
	f := func(data []byte, chunkSeed uint8) bool {
		chunk := 64 + int(chunkSeed)*8
		comp, err := CompressParallel(data, Options{ChunkSize: chunk, Config: lzss.CULZSSV1()})
		if err != nil {
			return false
		}
		got, err := Decompress(comp, 4)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, cfgQuick); err != nil {
		t.Fatal(err)
	}
}

func TestSerialHashChainEquivalentOutput(t *testing.T) {
	input := genText(30000, 8)
	brute, err := CompressSerial(input, Options{Search: lzss.SearchBrute})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := CompressSerial(input, Options{Search: lzss.SearchHashChain})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(brute, hash) {
		t.Fatal("hash-chain output differs from brute force")
	}
}
