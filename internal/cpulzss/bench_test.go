package cpulzss

import (
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/lzss"
)

var benchData = datasets.CFiles(512<<10, 77)

func BenchmarkSerialBrute(b *testing.B) {
	opts := Options{Config: lzss.Config{Window: 128, MaxMatch: 18, MinMatch: 3}}
	b.SetBytes(int64(len(benchData)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressSerial(benchData, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialHashChain(b *testing.B) {
	opts := Options{Search: lzss.SearchHashChain}
	b.SetBytes(int64(len(benchData)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressSerial(benchData, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel(b *testing.B) {
	opts := Options{Config: lzss.Config{Window: 128, MaxMatch: 18, MinMatch: 3}}
	b.SetBytes(int64(len(benchData)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressParallel(benchData, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	comp, err := CompressSerial(benchData, Options{Search: lzss.SearchHashChain})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, 1); err != nil {
			b.Fatal(err)
		}
	}
}
