// Package bitio provides MSB-first bit-level reading and writing on top of
// byte slices and io streams.
//
// The serial LZSS token stream (Dipperstein-shaped) is a dense bit stream:
// a one-bit coded/uncoded flag followed by either an 8-bit literal or an
// offset/length pair whose widths depend on the window configuration.
// bitio is the substrate for that stream.
//
// Bits are packed MSB-first: the first bit written lands in bit 7 of the
// first byte. Multi-bit values are written most-significant-bit first, so a
// value written with WriteBits(v, n) is read back with ReadBits(n).
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned by Reader when the stream ends inside a
// requested bit group.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of bits currently in cur (0..7)
}

// NewWriter returns a Writer whose internal buffer has the given capacity
// hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBit appends a single bit; any non-zero b writes a 1 bit.
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// WriteByte appends one full byte. It never fails; the error return exists
// to satisfy io.ByteWriter.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Len reports the number of complete bytes buffered so far, excluding a
// partially filled final byte.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen reports the total number of bits written.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes any partial byte (zero-padding the tail) and returns the
// underlying buffer. The Writer may continue to be used afterwards, but the
// padding bits become part of the stream, so Bytes is normally terminal.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.cur <<= 8 - w.nCur
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // next byte index
	cur byte // current byte being drained
	rem uint // bits remaining in cur (0..8)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit returns the next bit (0 or 1).
func (r *Reader) ReadBit() (int, error) {
	if r.rem == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.rem = 8
	}
	r.rem--
	return int(r.cur >> r.rem & 1), nil
}

// ReadBits returns the next n bits as an unsigned value, MSB first.
// n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d out of range", n))
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadByte returns the next 8 bits as a byte.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// BitsRemaining reports how many bits are left in the stream, including
// any zero padding appended by Writer.Bytes.
func (r *Reader) BitsRemaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.rem)
}

// Width returns the minimum number of bits needed to represent values in
// [0, n-1]; Width(0) and Width(1) are both 0.
func Width(n int) uint {
	w := uint(0)
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}
