package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteBitPacksMSBFirst(t *testing.T) {
	w := NewWriter(0)
	// 1010 1100 -> 0xAC
	for _, b := range []int{1, 0, 1, 0, 1, 1, 0, 0} {
		w.WriteBit(b)
	}
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xAC}) {
		t.Fatalf("got %x, want ac", got)
	}
}

func TestWriteBitsValue(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3) // 101
	w.WriteBits(0x3, 2) // 11
	w.WriteBits(0x0, 3) // 000
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xB8}) { // 1011 1000
		t.Fatalf("got %x, want b8", got)
	}
}

func TestBytesPadsPartialByte(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x7, 3) // 111 -> padded to 1110 0000
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xE0}) {
		t.Fatalf("got %x, want e0", got)
	}
}

func TestBitLenAndLen(t *testing.T) {
	w := NewWriter(0)
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatalf("zero writer has nonzero length")
	}
	w.WriteBits(0x1FF, 9)
	if w.BitLen() != 9 {
		t.Fatalf("BitLen = %d, want 9", w.BitLen())
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1 full byte", w.Len())
	}
}

func TestWriteByteInterface(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteByte(0x42); err != nil {
		t.Fatal(err)
	}
	if got := w.Bytes(); !bytes.Equal(got, []byte{0x42}) {
		t.Fatalf("got %x", got)
	}
}

func TestReaderRoundTripBits(t *testing.T) {
	w := NewWriter(0)
	vals := []struct {
		v uint64
		n uint
	}{{1, 1}, {0, 1}, {0xAB, 8}, {0x1234, 13}, {7, 3}, {0xFFFFFFFF, 32}, {0, 0}}
	for _, x := range vals {
		w.WriteBits(x.v&(1<<x.n-1), x.n)
	}
	r := NewReader(w.Bytes())
	for i, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		want := x.v & (1<<x.n - 1)
		if got != want {
			t.Fatalf("field %d: got %x want %x", i, got, want)
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReaderEOFMidGroup(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(12); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestBitsRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if got := r.BitsRemaining(); got != 24 {
		t.Fatalf("BitsRemaining = %d, want 24", got)
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if got := r.BitsRemaining(); got != 19 {
		t.Fatalf("BitsRemaining = %d, want 19", got)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xDEAD, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits(0x01, 8)
	if got := w.Bytes(); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("got %x after reset", got)
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {128, 7}, {129, 8}, {256, 8}, {257, 9}, {4096, 12}}
	for _, c := range cases {
		if got := Width(c.n); got != c.want {
			t.Errorf("Width(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWidthCoversRange(t *testing.T) {
	// Property: every value in [0, n) fits in Width(n) bits and survives a
	// write/read round trip at that width.
	for _, n := range []int{1, 2, 3, 7, 8, 9, 127, 128, 129, 255, 256} {
		wdt := Width(n)
		w := NewWriter(0)
		for v := 0; v < n; v++ {
			w.WriteBits(uint64(v), wdt)
		}
		r := NewReader(w.Bytes())
		for v := 0; v < n; v++ {
			got, err := r.ReadBits(wdt)
			if err != nil {
				t.Fatalf("n=%d v=%d: %v", n, v, err)
			}
			if got != uint64(v) {
				t.Fatalf("n=%d: got %d want %d", n, got, v)
			}
		}
	}
}

func TestQuickRoundTripBytes(t *testing.T) {
	f := func(data []byte) bool {
		w := NewWriter(len(data))
		for _, b := range data {
			w.WriteBits(uint64(b), 8)
		}
		r := NewReader(w.Bytes())
		for _, b := range data {
			got, err := r.ReadBits(8)
			if err != nil || byte(got) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripMixedWidths(t *testing.T) {
	// Property: arbitrary (value, width) sequences round-trip.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(64) + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.Intn(33))
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("iter %d field %d: %v", iter, i, err)
			}
			if got != vals[i] {
				t.Fatalf("iter %d field %d: got %x want %x (width %d)", iter, i, got, vals[i], widths[i])
			}
		}
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width > 64")
		}
	}()
	NewWriter(0).WriteBits(0, 65)
}
