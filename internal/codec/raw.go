package codec

import (
	"fmt"

	"culzss/internal/format"
	"culzss/internal/gpu"
)

// engineRaw is the store-raw codec (format.CodecStoreRaw): the payload
// is the plaintext verbatim, one chunk, no LZSS state. The adaptive
// selector emits it for segments that would expand under LZSS — the
// byte-aligned token stream pays ~12.5% on incompressible data, the raw
// store pays only the container header (a few dozen bytes). Compress is
// host-only (there is nothing to accelerate), so the engine is its own
// degrade twin.
type engineRaw struct{}

func (engineRaw) Codec() format.Codec { return format.CodecStoreRaw }
func (engineRaw) Name() string        { return "raw" }
func (engineRaw) Accelerated() bool   { return false }

// rawHeader builds the store-raw container header for data.
func rawHeader(data []byte) *format.Header {
	h := &format.Header{
		Codec:       format.CodecStoreRaw,
		OriginalLen: len(data),
		Checksum:    format.Checksum32(data),
	}
	if len(data) > 0 {
		h.ChunkSizes = []int{len(data)}
	}
	return h
}

// RawOverhead is the worst-case container overhead of a store-raw
// segment: header fields plus the single chunk-table entry. The adaptive
// selector's guarantee — a segment never expands by more than the
// container header — is this bound.
const RawOverhead = len(format.Magic) + 4 /*version,codec,minMatch,reserved*/ +
	4 /*checksum*/ + 5*binaryMaxVarint /*window,lookahead,chunkSize,originalLen,chunkCount*/ +
	binaryMaxVarint /*one chunk size*/

// binaryMaxVarint is the encoded size of the largest varint the header
// can carry (format caps varints at 2^40, i.e. 6 encoded bytes).
const binaryMaxVarint = 6

func (engineRaw) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	if err := ctxErr(opts); err != nil {
		return nil, nil, err
	}
	out := format.AppendHeader(make([]byte, 0, len(data)+RawOverhead), rawHeader(data))
	return append(out, data...), nil, nil
}

// CompressInto builds the container directly in dst when it fits — the
// raw store's whole cost is this one copy.
func (engineRaw) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	if err := ctxErr(opts); err != nil {
		return nil, nil, err
	}
	if cap(dst) < len(data)+RawOverhead {
		dst = make([]byte, 0, len(data)+RawOverhead)
	}
	out := format.AppendHeader(dst[:0], rawHeader(data))
	return append(out, data...), nil, nil
}

func (e engineRaw) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	out, _, err := e.Compress(data, opts)
	return out, err
}

func (engineRaw) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	h, payloadOff, err := format.ParseHeader(container)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec != format.CodecStoreRaw {
		return nil, nil, fmt.Errorf("codec: container holds %v, not a raw store", h.Codec)
	}
	payload := container[payloadOff:]
	if len(payload) < h.OriginalLen {
		return nil, nil, fmt.Errorf("%w: raw payload %d bytes, header says %d",
			format.ErrTruncated, len(payload), h.OriginalLen)
	}
	payload = payload[:h.OriginalLen]
	if format.Checksum32(payload) != h.Checksum {
		return nil, nil, format.ErrChecksum
	}
	if cap(dst) >= len(payload) {
		dst = dst[:len(payload)]
	} else {
		dst = make([]byte, len(payload))
	}
	copy(dst, payload)
	return dst, nil, nil
}
