package codec

import (
	"culzss/internal/format"
	"culzss/internal/lzss"
)

// Auto is the StreamOptions.Codec / CLI value selecting the adaptive
// per-segment engine choice implemented by Select.
const Auto = "auto"

// selectSampleLen is the probe size: enough bytes for a stable ratio
// estimate, cheap next to compressing the segment itself.
const selectSampleLen = 32 << 10

// Ratio thresholds (compressed/original of the probe):
//   - >= rawThreshold: LZSS cannot shrink the sample, so token framing
//     would expand the segment — store it raw (GPULZ and CODAG make the
//     same call for incompressible pages).
//   - < v1Threshold: highly compressible — V1 wins (§V, Table I's
//     crossover: DE map and highly-compressible favour V1).
//   - otherwise: V2, the paper's headline kernel for ~50%-or-less
//     compressible data.
const (
	rawThreshold = 1.0
	v1Threshold  = 0.45
)

// Select is the adaptive per-segment selector: it compresses a small
// middle sample with a fast matcher and picks the engine by the
// observed ratio — V2 / V1 / raw-store. The choice is recorded in the
// emitted container's codec byte, so a stream may change engines at
// every segment and any Reader dispatches per frame with no extra wire
// state.
func Select(data []byte) Engine {
	c := SelectCodec(data)
	e, ok := Lookup(c)
	if !ok {
		// The built-ins register at init; reaching this means the
		// registry was torn apart. Fail closed with raw (always present
		// semantics: store the bytes).
		e, _ = Lookup(format.CodecStoreRaw)
	}
	return e
}

// SelectCodec is Select returning just the codec identity.
func SelectCodec(data []byte) format.Codec {
	sample := data
	if len(sample) > selectSampleLen {
		// Sample from the middle: file headers are unrepresentative.
		start := (len(data) - selectSampleLen) / 2
		sample = data[start : start+selectSampleLen]
	}
	if len(sample) == 0 {
		return format.CodecStoreRaw
	}
	comp, err := lzss.EncodeByteAligned(sample, lzss.CULZSSV1(), lzss.SearchHashChain, nil)
	if err != nil {
		return format.CodecCULZSSV2
	}
	ratio := float64(len(comp)) / float64(len(sample))
	switch {
	case ratio >= rawThreshold:
		return format.CodecStoreRaw
	case ratio < v1Threshold:
		return format.CodecCULZSSV1
	default:
		return format.CodecCULZSSV2
	}
}
