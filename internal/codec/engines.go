package codec

import (
	"culzss/internal/bzip2"
	"culzss/internal/cpulzss"
	"culzss/internal/format"
	"culzss/internal/gpu"
)

// The built-in engines. Registration happens here, at package init, so
// every importer sees the full ladder: the two GPU kernels with their
// byte-identical host twins, the two CPU baselines, the bzip2 pipeline,
// and the raw store.
func init() {
	Register(engineCPU{})
	Register(enginePthread{})
	Register(engineV1{})
	Register(engineV2{})
	Register(engineBZip2{})
	Register(engineRaw{})
}

// cpuWorkers maps the shared options onto the CPU codecs' worker bound.
func cpuWorkers(opts gpu.Options) int { return opts.HostWorkers }

// ctxErr reports a cancelled options context (the host engines have no
// device to interrupt, so they check once at entry like the CPU twins).
func ctxErr(opts gpu.Options) error {
	if opts.Context == nil {
		return nil
	}
	return opts.Context.Err()
}

// --- Version 1: chunk-per-thread GPU kernel -----------------------------

type engineV1 struct{}

func (engineV1) Codec() format.Codec { return format.CodecCULZSSV1 }
func (engineV1) Name() string        { return "v1" }
func (engineV1) Accelerated() bool   { return true }

func (engineV1) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return gpu.CompressV1(data, opts)
}

func (e engineV1) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return compressInto(e, dst, data, opts)
}

func (engineV1) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	return gpu.CompressV1CPU(data, opts)
}

func (engineV1) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return gpu.DecompressInto(dst, container, opts)
}

// --- Version 2: match-per-thread GPU kernel -----------------------------

type engineV2 struct{}

func (engineV2) Codec() format.Codec { return format.CodecCULZSSV2 }
func (engineV2) Name() string        { return "v2" }
func (engineV2) Accelerated() bool   { return true }

func (engineV2) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return gpu.CompressV2(data, opts)
}

func (e engineV2) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return compressInto(e, dst, data, opts)
}

func (engineV2) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	return gpu.CompressV2CPU(data, opts)
}

func (engineV2) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return gpu.DecompressInto(dst, container, opts)
}

// --- Serial CPU baseline ------------------------------------------------

type engineCPU struct{}

func (engineCPU) Codec() format.Codec { return format.CodecSerialBitPacked }
func (engineCPU) Name() string        { return "cpu" }
func (engineCPU) Accelerated() bool   { return false }

func (engineCPU) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	if err := ctxErr(opts); err != nil {
		return nil, nil, err
	}
	out, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: opts.Config, Stats: opts.Stats})
	return out, nil, err
}

func (e engineCPU) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return compressInto(e, dst, data, opts)
}

func (e engineCPU) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	out, _, err := e.Compress(data, opts)
	return out, err
}

func (engineCPU) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	out, err := cpulzss.Decompress(container, cpuWorkers(opts))
	return out, nil, err
}

// --- Pthread-style chunked CPU baseline ---------------------------------

type enginePthread struct{}

func (enginePthread) Codec() format.Codec { return format.CodecChunkedBitPacked }
func (enginePthread) Name() string        { return "pthread" }
func (enginePthread) Accelerated() bool   { return false }

func (enginePthread) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	if err := ctxErr(opts); err != nil {
		return nil, nil, err
	}
	out, err := cpulzss.CompressParallel(data, cpulzss.Options{
		Config: opts.Config, ChunkSize: opts.ChunkSize, Workers: opts.HostWorkers, Stats: opts.Stats,
	})
	return out, nil, err
}

func (e enginePthread) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return compressInto(e, dst, data, opts)
}

func (e enginePthread) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	out, _, err := e.Compress(data, opts)
	return out, err
}

func (enginePthread) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	out, err := cpulzss.Decompress(container, cpuWorkers(opts))
	return out, nil, err
}

// --- BZIP2 baseline -----------------------------------------------------

type engineBZip2 struct{}

func (engineBZip2) Codec() format.Codec { return format.CodecBZip2 }
func (engineBZip2) Name() string        { return "bzip2" }
func (engineBZip2) Accelerated() bool   { return false }

func (engineBZip2) Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	if err := ctxErr(opts); err != nil {
		return nil, nil, err
	}
	out, err := bzip2.Compress(data, bzip2.Options{BlockSize: opts.ChunkSize, Workers: opts.HostWorkers})
	return out, nil, err
}

func (e engineBZip2) CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	return compressInto(e, dst, data, opts)
}

func (e engineBZip2) CompressCPU(data []byte, opts gpu.Options) ([]byte, error) {
	out, _, err := e.Compress(data, opts)
	return out, err
}

func (engineBZip2) DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	out, err := bzip2.Decompress(container, cpuWorkers(opts))
	return out, nil, err
}
