package codec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/gpu"
)

// The accelerated engines must satisfy the gpu dispatch ladder's minimal
// shape structurally — that is what lets any registered codec ride the
// supervised acquire/watchdog/redispatch/degrade path.
var (
	_ gpu.Engine = engineV1{}
	_ gpu.Engine = engineV2{}
	_ gpu.Engine = engineRaw{}
)

func randomBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func corpus() map[string][]byte {
	return map[string][]byte{
		"empty":      {},
		"one-byte":   {0x42},
		"zeros":      make([]byte, 8<<10),
		"text":       datasets.CFiles(24<<10, 3),
		"random":     randomBytes(12<<10, 4),
		"chunk-edge": datasets.KernelTarball(4097, 5),
	}
}

// TestRegistryCoversAssignedCodecs pins the registry wiring: every codec
// value the format assigns resolves to an engine that claims exactly
// that identity and name.
func TestRegistryCoversAssignedCodecs(t *testing.T) {
	wantNames := map[format.Codec]string{
		format.CodecSerialBitPacked:  "cpu",
		format.CodecChunkedBitPacked: "pthread",
		format.CodecCULZSSV1:         "v1",
		format.CodecCULZSSV2:         "v2",
		format.CodecBZip2:            "bzip2",
		format.CodecStoreRaw:         "raw",
	}
	for c, name := range wantNames {
		e, ok := Lookup(c)
		if !ok {
			t.Fatalf("codec %v has no registered engine", c)
		}
		if e.Codec() != c || e.Name() != name {
			t.Fatalf("codec %v resolved to engine (%v, %q), want (%v, %q)", c, e.Codec(), e.Name(), c, name)
		}
		byN, ok := ByName(name)
		if !ok || byN.Codec() != c {
			t.Fatalf("ByName(%q) did not round-trip to codec %v", name, c)
		}
	}
	if got := len(Engines()); got != len(wantNames) {
		t.Fatalf("%d engines registered, want %d", got, len(wantNames))
	}
	// Headroom values parse as structurally valid but stay unregistered —
	// the satellite seam for typed unknown-codec decode failures.
	for c := format.CodecStoreRaw + 1; c <= format.CodecMax; c++ {
		if !c.Valid() {
			t.Fatalf("headroom codec %d should be structurally valid", uint8(c))
		}
		if _, ok := Lookup(c); ok {
			t.Fatalf("headroom codec %d unexpectedly registered", uint8(c))
		}
	}
}

// TestEnginesRoundTripAndTwinIdentity runs every registered engine over
// the corpus: Compress must round-trip through the engine's own
// DecompressInto, the container must carry the engine's codec byte, and
// CompressCPU — the degrade twin — must be byte-identical to Compress.
func TestEnginesRoundTripAndTwinIdentity(t *testing.T) {
	for _, e := range Engines() {
		for name, data := range corpus() {
			t.Run(fmt.Sprintf("%s/%s", e.Name(), name), func(t *testing.T) {
				cont, _, err := e.Compress(data, gpu.Options{HostWorkers: 1})
				if err != nil {
					t.Fatalf("compress: %v", err)
				}
				h, _, err := format.ParseHeader(cont)
				if err != nil {
					t.Fatalf("container header: %v", err)
				}
				if h.Codec != e.Codec() {
					t.Fatalf("container codec %v, engine claims %v", h.Codec, e.Codec())
				}
				twin, err := e.CompressCPU(data, gpu.Options{HostWorkers: 1})
				if err != nil {
					t.Fatalf("cpu twin: %v", err)
				}
				if !bytes.Equal(twin, cont) {
					t.Fatalf("CompressCPU differs from Compress: %d vs %d bytes", len(twin), len(cont))
				}
				out, _, err := e.DecompressInto(nil, cont, gpu.Options{HostWorkers: 1})
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(out))
				}
			})
		}
	}
}

// TestCompressIntoHonoursCapacity verifies the pooled-buffer contract:
// a dst with capacity receives the container in place; a too-small dst
// still yields a correct fresh container.
func TestCompressIntoHonoursCapacity(t *testing.T) {
	data := datasets.CFiles(16<<10, 7)
	for _, e := range Engines() {
		t.Run(e.Name(), func(t *testing.T) {
			want, _, err := e.Compress(data, gpu.Options{HostWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			big := make([]byte, 0, len(want)+RawOverhead+len(data))
			got, _, err := e.CompressInto(big, data, gpu.Options{HostWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("CompressInto(dst) content differs from Compress")
			}
			if &got[0] != &big[:1][0] {
				t.Fatal("CompressInto ignored a dst with sufficient capacity")
			}
			small, _, err := e.CompressInto(make([]byte, 0, 1), data, gpu.Options{HostWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(small, want) {
				t.Fatal("CompressInto(small dst) content differs from Compress")
			}
		})
	}
}

// TestRawStoreOverheadBound pins the selector's never-expand guarantee
// at the engine level: a raw container costs at most RawOverhead beyond
// the plaintext, for every size.
func TestRawStoreOverheadBound(t *testing.T) {
	e, _ := Lookup(format.CodecStoreRaw)
	for _, n := range []int{0, 1, 100, 4096, 1 << 20} {
		data := randomBytes(n, int64(n)+1)
		cont, _, err := e.Compress(data, gpu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cont) > n+RawOverhead {
			t.Fatalf("raw container for %d bytes is %d bytes, exceeds bound %d", n, len(cont), n+RawOverhead)
		}
		out, _, err := e.DecompressInto(make([]byte, 0, n), cont, gpu.Options{})
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("raw round trip (%d bytes): %v", n, err)
		}
	}
}

// TestRawStoreRejectsDamage: flipping a payload byte must fail the
// checksum, and a foreign codec byte must be refused.
func TestRawStoreRejectsDamage(t *testing.T) {
	e, _ := Lookup(format.CodecStoreRaw)
	cont, _, err := e.Compress(randomBytes(1024, 9), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), cont...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := e.DecompressInto(nil, bad, gpu.Options{}); !errors.Is(err, format.ErrChecksum) {
		t.Fatalf("damaged payload: %v, want checksum failure", err)
	}
	v1cont, _, err := Engines()[2].Compress([]byte("hello hello hello"), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.DecompressInto(nil, v1cont, gpu.Options{}); err == nil {
		t.Fatal("raw engine decoded a non-raw container")
	}
}

// TestSelectCodec pins the decision rule on the three data shapes it
// distinguishes.
func TestSelectCodec(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want format.Codec
	}{
		{"incompressible", randomBytes(64<<10, 11), format.CodecStoreRaw},
		{"highly-compressible", datasets.HighlyCompressible(64<<10, 12), format.CodecCULZSSV1},
		{"mid-compressible", datasets.CFiles(64<<10, 13), format.CodecCULZSSV2},
		{"empty", nil, format.CodecStoreRaw},
	}
	for _, tc := range cases {
		if got := SelectCodec(tc.data); got != tc.want {
			t.Errorf("SelectCodec(%s) = %v, want %v", tc.name, got, tc.want)
		}
		if e := Select(tc.data); e.Codec() != tc.want {
			t.Errorf("Select(%s) engine = %v, want %v", tc.name, e.Codec(), tc.want)
		}
	}
}

// TestUnknownCodecError pins the typed error's shape: errors.Is matches
// the sentinel, errors.As recovers the codec value.
func TestUnknownCodecError(t *testing.T) {
	err := error(&UnknownCodecError{Codec: format.Codec(9)})
	if !errors.Is(err, ErrUnknownCodec) {
		t.Fatal("UnknownCodecError does not unwrap to ErrUnknownCodec")
	}
	var uce *UnknownCodecError
	if !errors.As(err, &uce) || uce.Codec != format.Codec(9) {
		t.Fatalf("errors.As lost the codec value: %+v", uce)
	}
	wrapped := fmt.Errorf("core: segment 3: %w", err)
	if !errors.Is(wrapped, ErrUnknownCodec) || !errors.As(wrapped, &uce) {
		t.Fatal("wrapping broke the typed chain")
	}
}
