// Package codec is the pluggable compression-engine seam: one interface
// every compressor in the repository implements, plus the registry that
// maps the container format's codec byte (and a short CLI-friendly name)
// to the engine that owns it.
//
// The streaming layer (core.Writer/Reader), the supervised dispatch
// ladder (gpu.CompressSupervised), the durable layer, and the CLI all
// dispatch through this package, so a new backend — a bigger-window
// kernel, multi-byte symbols à la GPULZ — plugs into retry, health
// supervision, parity, resume, and observability by registering one
// Engine.
//
// Contract (see DESIGN.md §15):
//
//   - Codec() is the format.Codec identity an engine writes into its
//     container headers and the value decode dispatch routes on.
//   - CompressCPU is the engine's degrade twin: a host-only encoder whose
//     output is byte-identical to Compress's, with no device fault
//     sites. Streams mix device-encoded and degraded segments freely, and
//     parity covers exact frame bytes, so the twin must be exact.
//   - DecompressInto decodes any container the engine produced,
//     honouring (but not requiring) the caller's output buffer.
//   - Engines must treat the nil-able option fields (Stats, Injector,
//     Health, Obs, Context) as inert when nil, matching the gpu layer.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"culzss/internal/format"
	"culzss/internal/gpu"
)

// Engine is one compression backend behind the format's codec byte.
// Implementations must be stateless (or internally synchronized): one
// Engine value serves concurrent segments.
type Engine interface {
	// Codec is the container identity this engine writes and decodes.
	Codec() format.Codec
	// Name is the registry's short name ("v1", "v2", "cpu", "raw", ...),
	// the value CLI flags and StreamOptions.Codec carry.
	Name() string
	// Accelerated reports whether Compress drives the (simulated) device.
	// Accelerated engines ride the supervised dispatch ladder and the
	// Writer's retry policy; host engines fail fast — their errors are
	// deterministic.
	Accelerated() bool
	// Compress encodes data into a self-describing container.
	Compress(data []byte, opts gpu.Options) ([]byte, *gpu.Report, error)
	// CompressInto is Compress into a caller-provided buffer: the result
	// lands in dst when it fits dst's capacity (a fresh allocation
	// otherwise), so pooling callers can avoid a copy.
	CompressInto(dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error)
	// CompressCPU is the byte-identical host twin (the degrade tail).
	CompressCPU(data []byte, opts gpu.Options) ([]byte, error)
	// DecompressInto decodes a container produced by this engine,
	// honouring dst when it has the capacity.
	DecompressInto(dst, container []byte, opts gpu.Options) ([]byte, *gpu.Report, error)
}

// ErrUnknownCodec is the sentinel every UnknownCodecError unwraps to:
// a structurally valid container whose codec byte no registered engine
// claims.
var ErrUnknownCodec = errors.New("codec: unknown codec")

// UnknownCodecError is the typed decode-dispatch failure, carrying the
// unclaimed codec value. errors.Is(err, ErrUnknownCodec) matches it.
type UnknownCodecError struct {
	Codec format.Codec
}

func (e *UnknownCodecError) Error() string {
	return fmt.Sprintf("codec: no engine registered for %v (codec byte %d)", e.Codec, uint8(e.Codec))
}

// Unwrap ties the typed error to the ErrUnknownCodec sentinel.
func (e *UnknownCodecError) Unwrap() error { return ErrUnknownCodec }

var (
	regMu   sync.RWMutex
	byCodec = map[format.Codec]Engine{}
	byName  = map[string]Engine{}
)

// Register adds an engine to the registry. Registry rules: one engine
// per codec value, one per name — a collision panics (it is a wiring
// bug, not a runtime condition), and the codec value must be
// structurally valid (within format.CodecMax).
func Register(e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	if !e.Codec().Valid() {
		panic(fmt.Sprintf("codec: Register(%q): codec value %d outside the structural range", e.Name(), uint8(e.Codec())))
	}
	if prev, ok := byCodec[e.Codec()]; ok {
		panic(fmt.Sprintf("codec: Register(%q): codec %v already owned by %q", e.Name(), e.Codec(), prev.Name()))
	}
	if _, ok := byName[e.Name()]; ok {
		panic(fmt.Sprintf("codec: Register(%q): name already taken", e.Name()))
	}
	byCodec[e.Codec()] = e
	byName[e.Name()] = e
}

// Lookup resolves the engine owning a container codec value.
func Lookup(c format.Codec) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := byCodec[c]
	return e, ok
}

// ByName resolves an engine by its registry name.
func ByName(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := byName[name]
	return e, ok
}

// Engines returns the registered engines ordered by codec value (a
// stable iteration order for tests and table rendering).
func Engines() []Engine {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Engine, 0, len(byCodec))
	for _, e := range byCodec {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Codec() < out[j].Codec() })
	return out
}

// Names returns the registered engine names ordered by codec value.
func Names() []string {
	engines := Engines()
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.Name()
	}
	return names
}

// compressInto adapts an engine's Compress to the CompressInto contract
// for engines without a cheaper direct path.
func compressInto(e Engine, dst, data []byte, opts gpu.Options) ([]byte, *gpu.Report, error) {
	out, rep, err := e.Compress(data, opts)
	if err != nil {
		return nil, nil, err
	}
	if cap(dst) >= len(out) {
		dst = dst[:len(out)]
		copy(dst, out)
		return dst, rep, nil
	}
	return out, rep, nil
}
