package core

import (
	"bytes"
	"sync"
	"testing"

	"culzss/internal/datasets"
)

// TestConcurrentCompressDecompress hammers the API from many goroutines:
// the library must be safe for concurrent use with independent buffers
// (the gateway example depends on it).
func TestConcurrentCompressDecompress(t *testing.T) {
	inputs := [][]byte{
		datasets.CFiles(32<<10, 1),
		datasets.DEMap(32<<10, 2),
		datasets.HighlyCompressible(32<<10, 3),
		datasets.Dictionary(32<<10, 4),
	}
	versions := []Version{Version1, Version2, VersionSerial, VersionParallel, VersionAuto}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			input := inputs[w%len(inputs)]
			v := versions[w%len(versions)]
			for rep := 0; rep < 3; rep++ {
				comp, err := Compress(input, Params{Version: v})
				if err != nil {
					errs <- err
					return
				}
				got, err := Decompress(comp, Params{})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, input) {
					errs <- errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent round trip mismatch" }

// TestDeterministicOutput: compressing the same input twice must produce
// identical containers (no time- or scheduling-dependent bytes).
func TestDeterministicOutput(t *testing.T) {
	input := datasets.KernelTarball(64<<10, 5)
	for _, v := range []Version{Version1, Version2, VersionSerial, VersionParallel} {
		a, err := Compress(input, Params{Version: v})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compress(input, Params{Version: v})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: non-deterministic container", v)
		}
	}
}
