package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/obs"
)

// --- parallel pipelined decode: differential + discipline suite ---------
//
// The contract under test: a Reader with any pipeline geometry is
// observationally identical to the HostWorkers=1 Reader — same bytes,
// same errors, same corruption/repair records in the same order — across
// clean streams, the corruption matrix, truncation, and parity repair.

const pplSeg = 8 << 10

// writeParallelStream frames input at segSize with optional parity.
func writeParallelStream(t testing.TB, input []byte, segSize int, parity ParityConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version2},
		StreamOptions{SegmentSize: segSize, Parity: parity})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeOutcome is everything externally observable about one decode.
type decodeOutcome struct {
	out      []byte
	err      string
	corrupt  []string // one formatted record per damaged region, in order
	repaired []string
}

// decodeWith runs one full decode with the given geometry and captures
// the outcome. Callback order is captured too: the records delivered via
// OnCorrupt/OnRepair must match the accessor slices exactly.
func decodeWith(t testing.TB, stream []byte, o ReaderOptions) decodeOutcome {
	t.Helper()
	var cb decodeOutcome
	o.OnCorrupt = func(cse *format.CorruptSegmentError) {
		cb.corrupt = append(cb.corrupt, cse.Error())
	}
	o.OnRepair = func(rse *format.RepairedSegmentError) {
		cb.repaired = append(cb.repaired, rse.Error())
	}
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, o)
	if err != nil {
		return decodeOutcome{err: err.Error()}
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	oc := decodeOutcome{out: out}
	if err != nil {
		oc.err = err.Error()
	}
	for _, cse := range r.CorruptSegments() {
		oc.corrupt = append(oc.corrupt, cse.Error())
	}
	for _, rse := range r.RepairedSegments() {
		oc.repaired = append(oc.repaired, rse.Error())
	}
	// The callbacks fire at delivery, in stream order: they must have
	// seen exactly the records the accessors report.
	if !equalStrings(cb.corrupt, oc.corrupt) {
		t.Fatalf("OnCorrupt saw %v, accessors report %v", cb.corrupt, oc.corrupt)
	}
	if !equalStrings(cb.repaired, oc.repaired) {
		t.Fatalf("OnRepair saw %v, accessors report %v", cb.repaired, oc.repaired)
	}
	return oc
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffOutcomes fails the test unless two outcomes are identical.
func diffOutcomes(t *testing.T, label string, base, got decodeOutcome) {
	t.Helper()
	if !bytes.Equal(base.out, got.out) {
		t.Errorf("%s: output differs: %d bytes vs baseline %d", label, len(got.out), len(base.out))
	}
	if base.err != got.err {
		t.Errorf("%s: error %q vs baseline %q", label, got.err, base.err)
	}
	if !equalStrings(base.corrupt, got.corrupt) {
		t.Errorf("%s: corrupt records %v vs baseline %v", label, got.corrupt, base.corrupt)
	}
	if !equalStrings(base.repaired, got.repaired) {
		t.Errorf("%s: repaired records %v vs baseline %v", label, got.repaired, base.repaired)
	}
}

// TestParallelReaderDifferentialClean: every pipeline geometry serves
// the same bytes as the serial Reader on intact streams, across sizes
// that straddle segment boundaries.
func TestParallelReaderDifferentialClean(t *testing.T) {
	for _, size := range []int{0, 1, pplSeg - 1, pplSeg, pplSeg + 1, 7*pplSeg + pplSeg/3} {
		input := datasets.CFiles(size, 41)
		stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
		base := decodeWith(t, stream, ReaderOptions{HostWorkers: 1})
		if base.err != "" {
			t.Fatalf("size %d: baseline failed: %s", size, base.err)
		}
		if !bytes.Equal(base.out, input) {
			t.Fatalf("size %d: baseline did not round-trip", size)
		}
		for _, o := range []ReaderOptions{
			{HostWorkers: 2},
			{HostWorkers: 8},
			{HostWorkers: 8, Prefetch: 1},
			{HostWorkers: 8, Prefetch: 32},
			{HostWorkers: 8, MaxInFlight: 2},
			{HostWorkers: 3, MaxInFlight: 16, Prefetch: 2},
		} {
			label := fmt.Sprintf("size %d workers %d prefetch %d inflight %d",
				size, o.HostWorkers, o.Prefetch, o.MaxInFlight)
			diffOutcomes(t, label, base, decodeWith(t, stream, o))
		}
	}
}

// TestParallelReaderDifferentialCorruption: smash each record of a
// salvageable stream in turn (and a couple of multi-record patterns) —
// the parallel Reader must record and skip exactly what the serial one
// does, and serve the identical remaining bytes.
func TestParallelReaderDifferentialCorruption(t *testing.T) {
	input := datasets.CFiles(9*pplSeg-pplSeg/2, 77)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	recs := streamRecords(t, stream)
	if len(recs) < 5 {
		t.Fatalf("expected several records, got %d", len(recs))
	}
	cases := make(map[string][]byte, len(recs)+2)
	for i, rec := range recs {
		cases[fmt.Sprintf("smash-rec-%d", i)] = smashRec(stream, rec)
	}
	cases["smash-two-adjacent"] = smashRec(smashRec(stream, recs[2]), recs[3])
	cases["smash-first-and-last"] = smashRec(smashRec(stream, recs[0]), recs[len(recs)-1])
	for name, damaged := range cases {
		base := decodeWith(t, damaged, ReaderOptions{Salvage: true, HostWorkers: 1})
		for _, workers := range []int{2, 8} {
			got := decodeWith(t, damaged, ReaderOptions{Salvage: true, HostWorkers: workers})
			diffOutcomes(t, fmt.Sprintf("%s workers %d", name, workers), base, got)
		}
	}
}

// TestParallelReaderDifferentialTruncation: cut the stream at assorted
// offsets; under salvage both geometries must deliver the same prefix
// and the same truncation record, and without salvage the same error.
func TestParallelReaderDifferentialTruncation(t *testing.T) {
	input := datasets.CFiles(6*pplSeg, 13)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	for _, cut := range []int{len(stream) - 1, len(stream) - 7, len(stream) * 3 / 4, len(stream) / 2, 64} {
		if cut <= 0 || cut >= len(stream) {
			continue
		}
		truncated := stream[:cut]
		for _, salvage := range []bool{true, false} {
			base := decodeWith(t, truncated, ReaderOptions{Salvage: salvage, HostWorkers: 1})
			got := decodeWith(t, truncated, ReaderOptions{Salvage: salvage, HostWorkers: 8})
			diffOutcomes(t, fmt.Sprintf("cut %d salvage %v", cut, salvage), base, got)
		}
	}
}

// TestParallelReaderDifferentialRepair: parity-protected stream with
// burst damage — repair must heal identically regardless of geometry,
// and the healed output must equal the original input.
func TestParallelReaderDifferentialRepair(t *testing.T) {
	input := datasets.CFiles(9*pplSeg-pplSeg/2, 77)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{K: 4, M: 2})
	recs := streamRecords(t, stream)
	// Damage two data records of the first group: within the M=2 budget.
	var data []streamRec
	for _, r := range recs {
		if !r.parity {
			data = append(data, r)
		}
	}
	if len(data) < 4 {
		t.Fatalf("expected >= 4 data records, got %d", len(data))
	}
	damaged := smashRec(smashRec(stream, data[0]), data[2])

	base := decodeWith(t, damaged, ReaderOptions{Repair: true, HostWorkers: 1})
	if base.err != "" {
		t.Fatalf("baseline repair failed: %s", base.err)
	}
	if !bytes.Equal(base.out, input) {
		t.Fatal("baseline repair did not restore the original bytes")
	}
	if len(base.repaired) == 0 || len(base.corrupt) != 0 {
		t.Fatalf("baseline: repaired %d corrupt %d, want repairs and no losses",
			len(base.repaired), len(base.corrupt))
	}
	for _, workers := range []int{2, 8} {
		got := decodeWith(t, damaged, ReaderOptions{Repair: true, HostWorkers: workers})
		diffOutcomes(t, fmt.Sprintf("repair workers %d", workers), base, got)
	}
}

// TestParallelReaderCancellationMidDecode: cancelling the context while
// segments are in flight surfaces the context error — never a corrupt
// record (cancellation is not data damage) — and the pipeline tears
// down cleanly (the race detector would flag leaked decode goroutines
// touching the reader after the test).
func TestParallelReaderCancellationMidDecode(t *testing.T) {
	input := datasets.CFiles(16*pplSeg, 3)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{
		Context:     ctx,
		Salvage:     true, // must NOT convert cancellation into salvage records
		HostWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pplSeg/2)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	var lastErr error
	for i := 0; i < 64; i++ {
		_, lastErr = r.Read(buf)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("post-cancel read error = %v, want context.Canceled", lastErr)
	}
	if got := r.CorruptSegments(); len(got) != 0 {
		t.Fatalf("cancellation produced %d corrupt records: %v", len(got), got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReaderCloseMidStream: Close abandons the stream, joins the
// pipeline, and flips Read to ErrReaderClosed.
func TestParallelReaderCloseMidStream(t *testing.T) {
	input := datasets.CFiles(12*pplSeg, 9)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{HostWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrReaderClosed) {
		t.Fatalf("Read after Close = %v, want ErrReaderClosed", err)
	}
	// Close on a never-started and on a fully-drained Reader: no-ops.
	r2, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{HostWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{HostWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := io.ReadAll(r3); err != nil || !bytes.Equal(out, input) {
		t.Fatalf("full drain: err %v, %d bytes", err, len(out))
	}
	if err := r3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReaderScrapeWhileReading exercises the concurrent-scrape
// contract under the race detector: Stats, the record accessors, and a
// Prometheus exposition all race against an active pipelined decode.
func TestParallelReaderScrapeWhileReading(t *testing.T) {
	input := datasets.CFiles(24*pplSeg, 21)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	reg := obs.NewRegistry()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{Obs: reg}, ReaderOptions{
		Salvage:     true,
		HostWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := r.Stats()
			if st.Segments < 0 || st.Bytes < 0 {
				panic("negative stats")
			}
			_ = r.CorruptSegments()
			_ = r.RepairedSegments()
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				panic(err)
			}
		}
	}()
	out, err := io.ReadAll(r)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, input) {
		t.Fatal("scraped decode did not round-trip")
	}
	st := r.Stats()
	if st.Segments != 24 || st.Bytes != len(input) {
		t.Fatalf("final stats %+v, want 24 segments / %d bytes", st, len(input))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"culzss_reader_segments_total 24",
		"culzss_reader_inflight_segments 0",
		"culzss_bufpool_hits_total",
	} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestParallelReaderMaxInFlightBound: the admission bound holds as a
// high-water mark, and bounds the worker pool from above.
func TestParallelReaderMaxInFlightBound(t *testing.T) {
	input := datasets.CFiles(24*pplSeg, 31)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	for _, bound := range []int{1, 2, 5} {
		r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{
			HostWorkers: 8,
			MaxInFlight: bound,
			Prefetch:    16,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, input) {
			t.Fatalf("bound %d: bad round-trip", bound)
		}
		st := r.Stats()
		if st.MaxInFlight > bound {
			t.Errorf("bound %d: MaxInFlight high-water %d exceeds it", bound, st.MaxInFlight)
		}
		if st.MaxInFlight < 1 {
			t.Errorf("bound %d: high-water %d, nothing was ever admitted?", bound, st.MaxInFlight)
		}
	}
}

// TestReaderBareContainerCap: the legacy (non-framed) path buffers its
// input whole, so it must be bounded and fail typed, not OOM-shaped.
func TestReaderBareContainerCap(t *testing.T) {
	container, err := Compress(datasets.CFiles(64<<10, 11), Params{Version: Version2})
	if err != nil {
		t.Fatal(err)
	}
	// Under the cap: decodes normally.
	r, err := NewReaderOptions(bytes.NewReader(container), Params{},
		ReaderOptions{MaxContainerLen: int64(len(container))})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := io.ReadAll(r); err != nil || len(out) != 64<<10 {
		t.Fatalf("capped open: err %v, %d bytes", err, len(out))
	}
	// Over the cap: typed refusal, input not slurped.
	if _, err := NewReaderOptions(bytes.NewReader(container), Params{},
		ReaderOptions{MaxContainerLen: int64(len(container)) - 1}); !errors.Is(err, ErrContainerTooLarge) {
		t.Fatalf("over-cap open = %v, want ErrContainerTooLarge", err)
	}
	// Negative: unlimited, the pre-cap behaviour.
	r, err = NewReaderOptions(bytes.NewReader(container), Params{},
		ReaderOptions{MaxContainerLen: -1})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := io.ReadAll(r); err != nil || len(out) != 64<<10 {
		t.Fatalf("unlimited open: err %v, %d bytes", err, len(out))
	}
}

// legacyShapeDecode replays the pre-pipeline Reader's allocation shape:
// a FrameReader without a lease hook (fresh container buffer per frame)
// and a whole-buffer Decompress per segment.
func legacyShapeDecode(tb testing.TB, stream []byte) int {
	tb.Helper()
	fr, err := format.NewFrameReader(bytes.NewReader(stream))
	if err != nil {
		tb.Fatal(err)
	}
	total := 0
	for {
		frame, trailer, err := fr.Next()
		if err != nil {
			tb.Fatal(err)
		}
		if trailer != nil {
			return total
		}
		plain, err := Decompress(frame.Container, Params{})
		if err != nil {
			tb.Fatal(err)
		}
		total += len(plain)
	}
}

func pipelineDecode(tb testing.TB, stream []byte, workers int) int {
	tb.Helper()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{HostWorkers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	n, err := io.Copy(io.Discard, r)
	if err != nil {
		tb.Fatal(err)
	}
	return int(n)
}

// TestParallelReaderAllocationDiscipline is the allocs regression gate:
// a full-stream decode through the pooled pipeline must allocate less
// than half the bytes of the pre-pipeline shape (fresh container +
// fresh plaintext buffer per segment). Byte counts, not timings, so the
// gate is stable on any host.
func TestParallelReaderAllocationDiscipline(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking inside a test")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews per-op allocation accounting")
	}
	input := datasets.CFiles(32*pplSeg, 5)
	stream := writeParallelStream(t, input, pplSeg, ParityConfig{})
	want := legacyShapeDecode(t, stream)

	legacy := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := legacyShapeDecode(b, stream); got != want {
				b.Fatalf("legacy decode %d bytes, want %d", got, want)
			}
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := pipelineDecode(b, stream, 1); got != want {
				b.Fatalf("pooled decode %d bytes, want %d", got, want)
			}
		}
	})
	lb, pb := legacy.AllocedBytesPerOp(), pooled.AllocedBytesPerOp()
	t.Logf("alloc bytes/op: legacy %d, pooled %d (%.1f%%)", lb, pb, float64(pb)/float64(lb)*100)
	if pb*2 > lb {
		t.Errorf("pooled decode allocates %d bytes/op, want <= 50%% of legacy %d", pb, lb)
	}
}

// BenchmarkReaderStreamDecode tracks the pooled pipeline's allocation
// profile (run with -benchmem; the differential gate above enforces the
// ratio).
func BenchmarkReaderStreamDecode(b *testing.B) {
	input := datasets.CFiles(32*pplSeg, 5)
	stream := writeParallelStream(b, input, pplSeg, ParityConfig{})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				pipelineDecode(b, stream, workers)
			}
		})
	}
}

// BenchmarkReaderStreamDecodeLegacyShape is the pre-pipeline shape, kept
// for -benchmem comparison against BenchmarkReaderStreamDecode.
func BenchmarkReaderStreamDecodeLegacyShape(b *testing.B) {
	input := datasets.CFiles(32*pplSeg, 5)
	stream := writeParallelStream(b, input, pplSeg, ParityConfig{})
	b.ReportAllocs()
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		legacyShapeDecode(b, stream)
	}
}
