//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// allocation-discipline gate counts exact allocated bytes per decode;
// the detector's shadow-memory bookkeeping inflates both sides of that
// comparison unevenly (channel and goroutine traffic allocates more
// under instrumentation), so the ratio assertion skips under -race. The
// functional differential coverage still runs.
const raceEnabled = true
