package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"culzss/internal/codec"
	"culzss/internal/datasets"
	"culzss/internal/format"
)

// differentialCorpus is the shared adversarial corpus every codec must
// agree on: degenerate sizes, pathological content, and sizes straddling
// the chunk (4 KiB) and segment boundaries.
func differentialCorpus(segSize int) map[string][]byte {
	rng := rand.New(rand.NewSource(97))
	random := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	corpus := map[string][]byte{
		"empty":          {},
		"one-byte":       {0x42},
		"all-zeros":      make([]byte, 16<<10),
		"incompressible": random(32 << 10),
		"text":           datasets.CFiles(20<<10, 41),
		"repetitive":     bytes.Repeat([]byte("abcd"), 6<<10/4),
	}
	// Chunk-boundary-straddling sizes around the GPU 4 KiB chunk.
	for _, n := range []int{4095, 4096, 4097, 8191, 8193} {
		corpus[fmt.Sprintf("chunk-%d", n)] = datasets.KernelTarball(n, int64(n))
	}
	// Segment-boundary-straddling sizes for the framed stream mode.
	for _, d := range []int{-1, 0, 1} {
		n := segSize + d
		corpus[fmt.Sprintf("segment%+d", d)] = datasets.DEMap(n, int64(n))
	}
	return corpus
}

// TestDifferentialRoundTripAllCodecs is the cross-codec differential
// suite: every Version and the framed stream mode must reproduce every
// corpus entry byte-identically, with matching format.Checksum32, and
// every codec's container must open through the same Decompress dispatch.
func TestDifferentialRoundTripAllCodecs(t *testing.T) {
	const segSize = 8 << 10
	corpus := differentialCorpus(segSize)
	versions := []Version{Version1, Version2, VersionSerial, VersionParallel, VersionBZip2}

	for name, input := range corpus {
		wantSum := format.Checksum32(input)
		for _, v := range versions {
			t.Run(fmt.Sprintf("%s/%v", name, v), func(t *testing.T) {
				container, err := Compress(input, Params{Version: v})
				if err != nil {
					t.Fatalf("compress: %v", err)
				}
				h, _, err := format.ParseHeader(container)
				if err != nil {
					t.Fatalf("container header: %v", err)
				}
				if h.OriginalLen != len(input) {
					t.Fatalf("header OriginalLen = %d, want %d", h.OriginalLen, len(input))
				}
				if h.Checksum != wantSum {
					t.Fatalf("header checksum %08x, want %08x", h.Checksum, wantSum)
				}
				got, err := Decompress(container, Params{})
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if !bytes.Equal(got, input) {
					t.Fatalf("round trip mismatch: %d bytes in, %d out", len(input), len(got))
				}
				if format.Checksum32(got) != wantSum {
					t.Fatal("decoded checksum differs")
				}
			})
		}

		// The framed stream mode over the same corpus, every version.
		for _, v := range versions {
			t.Run(fmt.Sprintf("%s/framed-%v", name, v), func(t *testing.T) {
				var buf bytes.Buffer
				w := NewWriterOptions(&buf, Params{Version: v}, StreamOptions{SegmentSize: segSize})
				if _, err := w.Write(input); err != nil {
					t.Fatalf("stream write: %v", err)
				}
				if err := w.Close(); err != nil {
					t.Fatalf("stream close: %v", err)
				}
				r, err := NewReader(&buf, Params{})
				if err != nil {
					t.Fatalf("stream open: %v", err)
				}
				got, err := io.ReadAll(r)
				if err != nil {
					t.Fatalf("stream read: %v", err)
				}
				if !bytes.Equal(got, input) {
					t.Fatalf("framed round trip mismatch: %d bytes in, %d out", len(input), len(got))
				}
				if format.Checksum32(got) != wantSum {
					t.Fatal("framed decoded checksum differs")
				}
			})
		}
	}
}

// TestDifferentialStreamRepairAllEngines runs the full streaming story
// for every registered engine: a parallel Writer routed through the
// engine by registry name, parity frames, deterministic wire damage, and
// a parallel salvage+repair Reader that must reproduce the input
// byte-identically with every loss healed.
func TestDifferentialStreamRepairAllEngines(t *testing.T) {
	const segSize = 8 << 10
	// Mixed compressibility so no engine gets a trivially easy corpus:
	// text, log-like repetition, and an incompressible tail, ending on a
	// short final segment.
	rng := rand.New(rand.NewSource(31))
	input := datasets.CFiles(3*segSize, 61)
	input = append(input, datasets.HighlyCompressible(2*segSize, 62)...)
	tail := make([]byte, 2*segSize-segSize/3)
	rng.Read(tail)
	input = append(input, tail...)

	for _, eng := range codec.Engines() {
		t.Run(eng.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriterOptions(&buf, Params{HostWorkers: 4}, StreamOptions{
				SegmentSize: segSize,
				Codec:       eng.Name(),
				Parity:      ParityConfig{K: 4, M: 2},
			})
			if _, err := w.Write(input); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			stream := buf.Bytes()

			// Every segment frame must carry this engine's codec byte —
			// the per-frame wire mechanism the PR-9 reader dispatches on.
			fr, err := format.NewFrameReader(bytes.NewReader(stream))
			if err != nil {
				t.Fatal(err)
			}
			for {
				frame, trailer, err := fr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if trailer != nil {
					break
				}
				h, _, err := format.ParseHeader(frame.Container)
				if err != nil {
					t.Fatalf("segment %d container: %v", frame.Index, err)
				}
				if h.Codec != eng.Codec() {
					t.Fatalf("segment %d carries codec %v, want %v", frame.Index, h.Codec, eng.Codec())
				}
			}

			// Smash one data record in each parity group (7 segments at
			// K=4 → groups of 4 and 3): within M=2 reach, so repair must
			// recover everything.
			recs := streamRecords(t, stream)
			var dataRecs []streamRec
			for _, rec := range recs {
				if !rec.parity {
					dataRecs = append(dataRecs, rec)
				}
			}
			if len(dataRecs) != 7 {
				t.Fatalf("data records = %d, want 7", len(dataRecs))
			}
			damaged := smashRec(stream, dataRecs[1])
			damaged = smashRec(damaged, dataRecs[5])

			r, err := NewReaderOptions(bytes.NewReader(damaged), Params{HostWorkers: 4},
				ReaderOptions{Repair: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("repair read: %v", err)
			}
			if len(r.CorruptSegments()) != 0 {
				t.Fatalf("parity-reachable damage recorded as lost: %v", r.CorruptSegments())
			}
			if len(r.RepairedSegments()) != 2 {
				t.Fatalf("repaired %d segments, want 2", len(r.RepairedSegments()))
			}
			if !bytes.Equal(got, input) {
				t.Fatalf("repaired round trip mismatch: %d bytes in, %d out", len(input), len(got))
			}
		})
	}
}

// TestDifferentialCodecsAgreeOnPlaintext cross-checks the codecs against
// each other: whatever one compressor wrote, the shared Decompress must
// recover the exact bytes every other codec also recovered.
func TestDifferentialCodecsAgreeOnPlaintext(t *testing.T) {
	input := datasets.Dictionary(24<<10, 55)
	var decoded [][]byte
	for _, v := range []Version{Version1, Version2, VersionSerial, VersionParallel, VersionBZip2} {
		container, err := Compress(input, Params{Version: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got, err := Decompress(container, Params{})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		decoded = append(decoded, got)
	}
	for i := 1; i < len(decoded); i++ {
		if !bytes.Equal(decoded[0], decoded[i]) {
			t.Fatalf("codec %d decoded different plaintext than codec 0", i)
		}
	}
}
