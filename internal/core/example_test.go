package core_test

import (
	"bytes"
	"fmt"
	"strings"

	"culzss/internal/core"
)

// The paper's Figure 2 flow: initialise, compress a memory buffer,
// decompress it back.
func ExampleCompress() {
	payload := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200))

	container, err := core.Compress(payload, core.Params{Version: core.Version1})
	if err != nil {
		panic(err)
	}
	restored, err := core.Decompress(container, core.Params{})
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip ok:", bytes.Equal(restored, payload))
	fmt.Println("compressed smaller:", len(container) < len(payload))
	// Output:
	// round trip ok: true
	// compressed smaller: true
}

// Version selection follows the paper's §V guidance: V1 for highly
// compressible data, V2 otherwise.
func ExampleSelectVersion() {
	repetitive := bytes.Repeat([]byte("abcdefghijklmnopqrst"), 2000)
	fmt.Println(core.SelectVersion(repetitive))
	// Output:
	// culzss-v1
}

// The streaming adapters wrap the buffer API for io pipelines.
func ExampleNewWriter() {
	var network bytes.Buffer

	w := core.NewWriter(&network, core.Params{Version: core.Version2})
	fmt.Fprint(w, strings.Repeat("sensor reading 42.0; ", 500))
	if err := w.Close(); err != nil {
		panic(err)
	}

	r, err := core.NewReader(&network, core.Params{})
	if err != nil {
		panic(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		panic(err)
	}
	fmt.Println("delivered bytes:", out.Len())
	// Output:
	// delivered bytes: 10500
}
