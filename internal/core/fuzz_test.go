package core

import (
	"math/rand"
	"testing"

	"culzss/internal/format"
)

// TestDecompressNeverPanicsOnRandomContainers drives the public entry
// point with random and half-valid containers: any outcome but a panic.
func TestDecompressNeverPanicsOnRandomContainers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))

	// Pure garbage.
	for trial := 0; trial < 1000; trial++ {
		n := rng.Intn(256)
		garbage := make([]byte, n)
		rng.Read(garbage)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on garbage: %v", trial, r)
				}
			}()
			_, _ = Decompress(garbage, Params{})
		}()
	}

	// Valid magic + garbage body.
	for trial := 0; trial < 1000; trial++ {
		n := 5 + rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)
		copy(buf, format.Magic)
		buf[4] = format.Version
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on magic+garbage: %v", trial, r)
				}
			}()
			_, _ = Decompress(buf, Params{})
		}()
	}

	// Valid container with mutations.
	base, err := Compress([]byte("fuzz seed content fuzz seed content fuzz"), Params{Version: Version1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		corrupt := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on mutated container: %v", trial, r)
				}
			}()
			_, _ = Decompress(corrupt, Params{})
		}()
	}
}

// FuzzDecompress is a native fuzz target over the container parser and
// all decoders (run with `go test -fuzz=FuzzDecompress ./internal/core`).
func FuzzDecompress(f *testing.F) {
	seedA, _ := Compress([]byte("seed one: some compressible compressible data"), Params{Version: Version1})
	seedB, _ := Compress([]byte("seed two"), Params{Version: VersionSerial})
	f.Add(seedA)
	f.Add(seedB)
	f.Add([]byte(format.Magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(data, Params{})
	})
}
