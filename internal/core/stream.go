package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// ErrClosed is returned by Writer operations after Close.
var ErrClosed = errors.New("core: writer is closed")

// Writer is an io.WriteCloser adapter over Compress for the paper's
// network-gateway scenario: the application streams plaintext in, and on
// Close the compressed container is written to the underlying writer.
//
// CULZSS is a block compressor — the container layout (chunk table up
// front) requires the whole input, so Writer buffers until Close. Callers
// needing bounded memory should segment their stream and emit one
// container per segment (examples/gateway does exactly that).
type Writer struct {
	dst    io.Writer
	params Params
	buf    bytes.Buffer
	closed bool
}

// NewWriter returns a Writer compressing into dst with the given
// parameters.
func NewWriter(dst io.Writer, p Params) *Writer {
	return &Writer{dst: dst, params: p}
}

// Write buffers plaintext.
func (w *Writer) Write(data []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	return w.buf.Write(data)
}

// Close compresses the buffered plaintext and writes the container to the
// underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	out, err := Compress(w.buf.Bytes(), w.params)
	if err != nil {
		return err
	}
	if _, err := w.dst.Write(out); err != nil {
		return fmt.Errorf("core: writing container: %w", err)
	}
	return nil
}

// Reader is an io.Reader serving the decompressed expansion of a
// container read from the underlying reader.
type Reader struct {
	r *bytes.Reader
}

// NewReader reads one whole container from src, decompresses it, and
// returns a Reader over the plaintext.
func NewReader(src io.Reader, p Params) (*Reader, error) {
	container, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	out, err := Decompress(container, p)
	if err != nil {
		return nil, err
	}
	return &Reader{r: bytes.NewReader(out)}, nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) { return r.r.Read(p) }

// Len reports the remaining plaintext bytes.
func (r *Reader) Len() int { return r.r.Len() }
