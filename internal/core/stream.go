// Framed streaming: the bounded-memory io.Writer / io.Reader adapters over
// the block compressor.
//
// CULZSS is a block compressor — a single container needs its whole input
// up front for the chunk table. The paper's gateway scenario ("heavy
// traffic from millions of users") cannot buffer whole transfers, so the
// Writer cuts the plaintext into SegmentSize segments, compresses each
// into an ordinary container through a bounded worker pipeline (mirroring
// the §VII stream-pipelining idea: segment i+1 compresses while segment i
// is being emitted), and frames the containers with internal/format's
// stream records. Peak memory is O(SegmentSize × HostWorkers) regardless
// of stream length; emission order is the write order.
//
// The Reader auto-detects the input: a framed stream ("CLZS") decodes
// incrementally, one segment at a time; a bare container ("CLZ1") is
// decompressed whole, preserving the previous adapter behaviour.
package core

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"culzss/internal/codec"
	"culzss/internal/format"
	"culzss/internal/gpu"
	"culzss/internal/health"
	"culzss/internal/lzss"
	"culzss/internal/obs"
)

// writerMetrics holds the Writer's pre-resolved instruments. With
// Params.Obs nil every field is nil and every call inert, so the
// disabled Writer pays nothing beyond nil tests. Counters increment in
// the emitter, the same single site that updates WriterStats, so a fresh
// registry's totals reconcile with Stats() exactly.
type writerMetrics struct {
	segments *obs.Counter
	retries  *obs.Counter
	degraded *obs.Counter
	errors   *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	tracer   *obs.Tracer

	// reg and byCodec back the per-codec segment counter
	// (culzss_segments_total{codec=}): series materialise lazily, on the
	// first segment a codec actually emits, so a fixed-codec stream
	// exports exactly one series. Touched only by the emitter goroutine.
	reg     *obs.Registry
	byCodec map[format.Codec]*obs.Counter
}

func newWriterMetrics(reg *obs.Registry) writerMetrics {
	if reg == nil {
		return writerMetrics{}
	}
	reg.SetHelp("culzss_writer_segments_total", "Segments the Writer pipeline emitted (including failed ones).")
	reg.SetHelp("culzss_writer_retries_total", "Extra GPU attempts beyond each segment's first.")
	reg.SetHelp("culzss_writer_degraded_total", "Segments that fell back to the CPU encoder.")
	reg.SetHelp("culzss_writer_errors_total", "Segments that failed the stream.")
	reg.SetHelp("culzss_writer_bytes_in_total", "Plaintext bytes of emitted segments.")
	reg.SetHelp("culzss_writer_bytes_out_total", "Framed compressed bytes written (segment frames only).")
	reg.SetHelp("culzss_segments_total", "Segments emitted, labelled by the codec that encoded them.")
	return writerMetrics{
		segments: reg.Counter("culzss_writer_segments_total"),
		retries:  reg.Counter("culzss_writer_retries_total"),
		degraded: reg.Counter("culzss_writer_degraded_total"),
		errors:   reg.Counter("culzss_writer_errors_total"),
		bytesIn:  reg.Counter("culzss_writer_bytes_in_total"),
		bytesOut: reg.Counter("culzss_writer_bytes_out_total"),
		tracer:   reg.Tracer(),
		reg:      reg,
	}
}

// segmentsFor returns the per-codec segment counter, materialising the
// labelled series on first use. Emitter goroutine only.
func (m *writerMetrics) segmentsFor(c format.Codec) *obs.Counter {
	if m.reg == nil {
		return nil
	}
	if ctr, ok := m.byCodec[c]; ok {
		return ctr
	}
	label := c.String()
	if eng, ok := codec.Lookup(c); ok {
		label = eng.Name() // the registry's short name, matching the CLI flag
	}
	ctr := m.reg.Counter("culzss_segments_total", obs.L("codec", label))
	if m.byCodec == nil {
		m.byCodec = make(map[format.Codec]*obs.Counter)
	}
	m.byCodec[c] = ctr
	return ctr
}

// readerMetrics is the Reader-side counterpart. Counters increment at
// the delivery site, the same single site that updates ReaderStats, so
// a fresh registry's totals reconcile with Stats() exactly.
type readerMetrics struct {
	segments *obs.Counter
	bytesOut *obs.Counter
	corrupt  *obs.Counter
	inflight *obs.Gauge
	tracer   *obs.Tracer
}

func newReaderMetrics(reg *obs.Registry) readerMetrics {
	if reg == nil {
		return readerMetrics{}
	}
	reg.SetHelp("culzss_reader_segments_total", "Framed segments decoded and served.")
	reg.SetHelp("culzss_reader_bytes_out_total", "Plaintext bytes served from framed segments.")
	reg.SetHelp("culzss_reader_corrupt_segments_total", "Damaged regions recorded in salvage mode.")
	reg.SetHelp("culzss_reader_inflight_segments", "Segments admitted to the decode pipeline and not yet delivered.")
	return readerMetrics{
		segments: reg.Counter("culzss_reader_segments_total"),
		bytesOut: reg.Counter("culzss_reader_bytes_out_total"),
		corrupt:  reg.Counter("culzss_reader_corrupt_segments_total"),
		inflight: reg.Gauge("culzss_reader_inflight_segments"),
		tracer:   reg.Tracer(),
	}
}

// ErrClosed is returned by Writer.Write after Close.
var ErrClosed = errors.New("core: writer is closed")

// DefaultSegmentSize is the Writer's default segment granularity. 1 MiB
// keeps per-worker buffers small while amortising the per-frame header
// and giving the GPU versions enough chunks per launch to fill the device.
const DefaultSegmentSize = 1 << 20

// StreamOptions tune the framed stream layer.
type StreamOptions struct {
	// SegmentSize is the uncompressed bytes per segment; 0 means
	// DefaultSegmentSize. Smaller segments lower latency and peak memory,
	// larger segments improve ratio (more window context) and shrink
	// framing overhead.
	SegmentSize int
	// GPUStreams, when > 1 and the version resolves to the V1 GPU kernel,
	// compresses each segment through the pipelined copy/execute scheduler
	// (gpu.CompressV1Streamed) with this many CUDA streams, overlapping
	// H2D copies with kernel execution in the simulated schedule.
	GPUStreams int
	// Retry bounds the per-segment retry/degrade policy for the GPU
	// versions. The zero value means up to 3 attempts with 1ms..50ms
	// jittered exponential backoff, then CPU fallback.
	Retry RetryPolicy
	// Context, when non-nil, cancels the Writer's pipeline: Write and
	// Close fail with the context's error once it is done, and in-flight
	// segment compressions stop between retry attempts. nil means
	// context.Background().
	Context context.Context
	// MaxInFlight is the admission bound: at most this many segments may
	// be in the pipeline at once (Write blocks beyond it — that
	// backpressure is the Writer's memory bound). 0 means HostWorkers.
	// Values below HostWorkers also shrink the worker pool: admission is
	// the bound, not worker count.
	MaxInFlight int
	// SegmentDeadline bounds one segment's total time on the GPU path
	// (all retry attempts and, under Params.Health, the whole
	// redispatch ladder). A segment that exceeds it degrades to the
	// deterministic CPU encoder instead of failing the stream — the
	// stream trades latency for completeness, never the reverse.
	// 0 disables the per-segment deadline.
	SegmentDeadline time.Duration
	// Resume, when non-nil, continues an existing framed stream instead of
	// starting one: the Writer skips the stream header, numbers its first
	// segment NextIndex, and folds Total/CRC into the trailer so the final
	// stream is indistinguishable from an uninterrupted run. The caller
	// owns the file surgery (truncating to a verified frame boundary and
	// positioning dst there — see internal/durable); SegmentSize must
	// match the original stream's.
	Resume *ResumeState
	// Parity selects self-healing redundancy: after every Parity.K data
	// frames the Writer emits Parity.M parity frames carrying an erasure
	// code over the group's exact frame bytes, so a salvage+repair Reader
	// can reconstruct up to M damaged or missing frames per group
	// bit-identically instead of skipping them. The zero value disables
	// parity and the output is byte-identical to a parity-less stream.
	// Overhead is roughly M/K of the compressed size plus small headers.
	Parity ParityConfig
	// DrainOnCancel selects graceful drain: when Context is cancelled,
	// Write stops admitting new data (it returns the context's error as
	// before) but every segment already accepted — in flight or buffered
	// — is still compressed (degrading to the CPU encoder, which needs no
	// device) and Close emits a valid trailer covering all accepted
	// bytes. Without it, cancellation abandons in-flight work and Close
	// reports the context's error.
	DrainOnCancel bool
	// Codec selects the segment engine by registry name ("v1", "v2",
	// "cpu", "pthread", "bzip2", "raw"), or codec.Auto for the adaptive
	// per-segment selector (a cheap sample probe picks V2, V1, or
	// raw-store segment by segment). Each segment's choice is recorded in
	// its embedded container's codec byte — the frame layer carries no
	// extra state, so any Reader dispatches per frame. "" keeps the legacy
	// routing through Params.Version, byte-identical to previous releases.
	Codec string
	// OnSegment, when non-nil, observes every emitted segment frame in
	// stream order from the emitter goroutine — the Writer-side mirror of
	// ReaderOptions.OnSegment. The bench harness uses it to collect
	// per-segment codec choices and device reports without re-reading the
	// stream. It must not block: the emitter is the pipeline's only
	// in-order stage.
	OnSegment func(SegmentReport)
}

// SegmentReport describes one emitted segment frame, delivered through
// StreamOptions.OnSegment in stream order.
type SegmentReport struct {
	// Index is the segment's frame index.
	Index int
	// RawLen is the segment's plaintext length.
	RawLen int
	// FrameLen is the encoded frame's total length (frame header
	// included) as written to the stream.
	FrameLen int
	// Codec identifies the engine that encoded this segment — under
	// StreamOptions.Codec "auto" it varies per segment.
	Codec format.Codec
	// Retries is the number of extra device attempts the segment consumed.
	Retries int
	// Degraded reports that the segment fell back to the engine's CPU twin.
	Degraded bool
	// Report is the device performance report; nil for host-encoded
	// (CPU-codec, raw, or degraded) segments.
	Report *gpu.Report
}

// ParityConfig is StreamOptions.Parity: the K+M geometry of the
// stream's parity groups.
type ParityConfig struct {
	// K is the number of data frames per parity group; 0 disables
	// parity. Bounded by format.MaxParityK.
	K int
	// M is the number of parity frames per group: 1 selects the XOR fast
	// path (repairs any single loss), larger M Reed–Solomon (any M
	// losses). Bounded by format.MaxParityM; must be ≥ 1 when K > 0.
	M int
}

func (c ParityConfig) validate() error {
	if c.K == 0 && c.M == 0 {
		return nil
	}
	if c.K < 1 || c.K > format.MaxParityK {
		return fmt.Errorf("core: parity K %d out of range [1,%d]", c.K, format.MaxParityK)
	}
	if c.M < 1 || c.M > format.MaxParityM {
		return fmt.Errorf("core: parity M %d out of range [1,%d]", c.M, format.MaxParityM)
	}
	return nil
}

// ResumeState carries the stream position a resumed Writer continues
// from. It is what durable.ScanTail recovers from an interrupted file:
// the index the next segment frame must carry, the plaintext bytes
// already represented by the surviving frames, and the incremental
// CRC-32 (format.Checksum32Update state) over that plaintext.
type ResumeState struct {
	// NextIndex is the index of the next segment frame to emit — the
	// number of complete frames already on disk.
	NextIndex int
	// Total is the plaintext byte count covered by the surviving frames.
	Total int
	// CRC is the running plaintext CRC-32 over those Total bytes.
	CRC uint32
	// GroupFrames, for a parity-bearing stream, holds the exact encoded
	// bytes of the surviving data frames of the trailing incomplete
	// parity group (the frames after the last parity run). A resumed
	// Writer seeds its group accumulator with them so the group's parity
	// eventually covers the pre-crash frames too, keeping the finished
	// stream byte-equivalent to an uninterrupted run. Empty when the cut
	// landed on a group boundary or the stream carries no parity.
	GroupFrames [][]byte
}

// RetryPolicy bounds how hard the Writer fights for a segment before
// giving up on the GPU path. Failures of the host engines are
// deterministic and never retried; GPU-path failures (launch faults,
// transfer faults, chunk faults — all of which the fault-injection layer
// can produce) are retried with exponential backoff plus jitter, and a
// segment that still fails after MaxAttempts degrades to the engine's
// host twin (Engine.CompressCPU), which emits a bit-identical container,
// so one flaky device never kills the stream.
type RetryPolicy struct {
	// MaxAttempts is the number of GPU attempts per segment (including
	// the first); 0 means 3.
	MaxAttempts int
	// BaseBackoff is the nominal delay before the first retry; each
	// further retry doubles it. 0 means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay; 0 means 50ms.
	MaxBackoff time.Duration
	// DisableFallback turns the CPU degrade path off: a segment that
	// exhausts MaxAttempts fails the stream instead.
	DisableFallback bool
}

func (r RetryPolicy) maxAttempts() int {
	if r.MaxAttempts <= 0 {
		return 3
	}
	return r.MaxAttempts
}

func (r RetryPolicy) baseBackoff() time.Duration {
	if r.BaseBackoff <= 0 {
		return time.Millisecond
	}
	return r.BaseBackoff
}

func (r RetryPolicy) maxBackoff() time.Duration {
	if r.MaxBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return r.MaxBackoff
}

// WriterStats reports the Writer's retry/degrade activity, and — when a
// health supervisor is armed via Params.Health — the supervisor's
// device-pool counters over this Writer's lifetime.
type WriterStats struct {
	// Segments is the number of segments the pipeline processed.
	Segments int
	// Retries is the total number of extra GPU attempts beyond each
	// segment's first.
	Retries int
	// Degraded is the number of segments that fell back to the CPU
	// encoder after exhausting their GPU attempts (or, supervised, after
	// the whole pool was quarantined or the segment deadline expired).
	Degraded int
	// ParityFrames is the number of parity frames emitted (0 without
	// StreamOptions.Parity).
	ParityFrames int
	// Resumed is the number of segment frames inherited from an
	// interrupted stream (StreamOptions.Resume's NextIndex); 0 for a
	// fresh stream.
	Resumed int
	// Committed is the number of segment frames known to have reached
	// stable storage. The core Writer never fsyncs, so it reports 0; the
	// durable layer fills it in.
	Committed int
	// TimedOut counts watchdog-cut device operations; Redispatched counts
	// work re-routed to a sibling device after a failure; BreakerOpens
	// counts circuit-breaker Open transitions; Quarantined is the number
	// of devices currently quarantined. All zero without a supervisor.
	TimedOut, Redispatched, BreakerOpens, Quarantined int
}

func (o StreamOptions) segmentSize() int {
	if o.SegmentSize <= 0 {
		return DefaultSegmentSize
	}
	return o.SegmentSize
}

// segJob is one segment travelling through the Writer's pipeline.
type segJob struct {
	index  int
	data   []byte // uncompressed segment (buf-pool owned)
	result chan segResult
}

type segResult struct {
	container []byte
	codec     format.Codec // the engine that produced the container
	rep       *gpu.Report  // device report; nil for host-encoded segments
	retries   int          // extra GPU attempts this segment consumed
	degraded  bool         // segment fell back to the engine's CPU twin
	err       error
}

// Writer is an io.WriteCloser emitting a framed compressed stream.
//
// Segments are compressed concurrently by HostWorkers workers while a
// single emitter goroutine writes frames strictly in order, so the output
// is deterministic for a given input and parameter set. Write blocks when
// HostWorkers segments are already in flight, which is what bounds peak
// memory.
//
// Close flushes the final partial segment, writes the stream trailer, and
// tears the worker pool down. A second Close is a no-op returning nil
// (matching gzip.Writer); Write after Close returns ErrClosed.
type Writer struct {
	dst     io.Writer
	params  Params
	opts    StreamOptions
	segSize int
	workers int
	bound   int // admission bound: max segments in the pipeline
	ctx     context.Context

	// healthBase is the supervisor's counter baseline at construction;
	// Stats reports deltas against it (the pool is often shared).
	healthBase health.Snapshot

	met      writerMetrics
	segStart time.Time // when the current partial segment began accumulating

	started bool
	closed  bool
	buf     []byte // current partial segment; len < segSize
	index   int    // next segment index
	total   int    // total plaintext bytes accepted
	crc     uint32 // running CRC-32 of the plaintext

	// Parity accumulator (emitter goroutine only, after construction):
	// the exact encoded bytes of the open group's data frames, and the
	// index of the group's first frame.
	parityGroup [][]byte
	parityFirst int

	jobs     chan *segJob // feeds the compression workers
	pending  chan *segJob // feeds the in-order emitter; its capacity is the memory bound
	emitted  chan struct{}
	workerWG sync.WaitGroup
	bufPool  *bytePool

	mu   sync.Mutex
	werr error // first pipeline error (compression or underlying write)

	statsMu sync.Mutex // serialises merges into params.Stats

	wstatsMu sync.Mutex
	wstats   WriterStats

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter; seeded from the injector when armed

	// in-flight accounting, exercised by the bounded-memory test.
	flightMu  sync.Mutex
	inFlight  int // bytes of segment buffers currently in the pipeline
	maxFlight int
}

// NewWriter returns a framed-stream Writer with default StreamOptions
// (1 MiB segments).
func NewWriter(dst io.Writer, p Params) *Writer {
	return NewWriterOptions(dst, p, StreamOptions{})
}

// NewWriterOptions returns a framed-stream Writer with explicit stream
// options.
func NewWriterOptions(dst io.Writer, p Params, o StreamOptions) *Writer {
	workers := p.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// Jitter only perturbs sleep durations, never output bytes; seeding
	// from the injector keeps even the timing reproducible under test.
	seed := int64(1)
	if s := p.Injector.Seed(); s != 0 {
		seed = s
	}
	bound := o.MaxInFlight
	if bound <= 0 {
		bound = workers
	}
	if workers > bound {
		workers = bound // no point in more workers than admitted segments
	}
	w := &Writer{
		dst:     dst,
		params:  p,
		opts:    o,
		segSize: o.segmentSize(),
		workers: workers,
		bound:   bound,
		ctx:     ctx,
		rng:     rand.New(rand.NewSource(seed)),
		met:     newWriterMetrics(p.Obs),
	}
	if p.Health != nil {
		w.healthBase = p.Health.Snapshot()
	}
	if err := o.Parity.validate(); err != nil {
		w.setErr(err)
	}
	if o.Codec != "" && o.Codec != codec.Auto {
		if _, ok := codec.ByName(o.Codec); !ok {
			w.setErr(fmt.Errorf("core: unknown codec %q (registered: %v, or %q)",
				o.Codec, codec.Names(), codec.Auto))
		}
	}
	if r := o.Resume; r != nil {
		w.index = r.NextIndex
		w.total = r.Total
		w.crc = r.CRC
		w.wstats.Resumed = r.NextIndex
		if o.Parity.K > 0 {
			w.parityGroup = append([][]byte(nil), r.GroupFrames...)
			w.parityFirst = r.NextIndex - len(r.GroupFrames)
			if w.parityFirst < 0 {
				w.setErr(fmt.Errorf("core: resume carries %d group frames but only %d segments precede it",
					len(r.GroupFrames), r.NextIndex))
			}
		}
	}
	w.bufPool = newBytePool(p.Obs, "writer-segment")
	return w
}

// Stats returns a snapshot of the Writer's retry/degrade counters, plus
// the supervisor's device-pool counters (as deltas over this Writer's
// lifetime) when Params.Health is armed. It is safe to call concurrently
// with Write and after Close.
func (w *Writer) Stats() WriterStats {
	w.wstatsMu.Lock()
	st := w.wstats
	w.wstatsMu.Unlock()
	if sup := w.params.Health; sup != nil {
		snap := sup.Snapshot()
		st.TimedOut = snap.TimedOut - w.healthBase.TimedOut
		st.Redispatched = snap.Redispatched - w.healthBase.Redispatched
		st.BreakerOpens = snap.BreakerOpens - w.healthBase.BreakerOpens
		st.Quarantined = snap.Quarantined
	}
	return st
}

// ctxErr reports the Writer context's error, if it is done.
func (w *Writer) ctxErr() error {
	select {
	case <-w.ctx.Done():
		return w.ctx.Err()
	default:
		return nil
	}
}

// start lazily writes the stream header and spins up the pipeline.
func (w *Writer) start() {
	if w.started {
		return
	}
	w.started = true
	// A resumed stream already carries its header; emitting another would
	// corrupt it mid-stream.
	if w.opts.Resume == nil {
		if _, err := format.WriteStreamHeader(w.dst, w.segSize); err != nil {
			w.setErr(fmt.Errorf("core: writing stream header: %w", err))
		}
	}
	// pending's capacity is the admission bound (StreamOptions.MaxInFlight,
	// default HostWorkers): at most cap(pending)+1 segments exist
	// concurrently (one being handed over in flush) — the memory bound.
	w.pending = make(chan *segJob, w.bound)
	// jobs can hold every in-flight job, so sending to it never blocks
	// once the pending send has succeeded.
	w.jobs = make(chan *segJob, w.bound+1)
	w.emitted = make(chan struct{})
	for i := 0; i < w.workers; i++ {
		w.workerWG.Add(1)
		go w.worker()
	}
	go w.emitter()
}

// worker compresses segments. Results go back through the per-job result
// channel so the emitter can restore write order.
func (w *Writer) worker() {
	defer w.workerWG.Done()
	for job := range w.jobs {
		job.result <- w.compressSegment(job.index, job.data)
	}
}

// emitter writes frames in submission order. On the first error it stops
// writing but keeps draining, so Write/Close never deadlock against a
// full pipeline.
func (w *Writer) emitter() {
	defer close(w.emitted)
	// A resume-seeded group can already be full — its parity run was torn
	// off with the crash. Re-emit that run before any new frame.
	if k := w.opts.Parity.K; k > 0 && len(w.parityGroup) >= k && w.err() == nil {
		if err := w.emitParity(); err != nil {
			w.setErr(fmt.Errorf("core: writing resumed group parity: %w", err))
		}
	}
	for job := range w.pending {
		res := <-job.result
		w.wstatsMu.Lock()
		w.wstats.Segments++
		w.wstats.Retries += res.retries
		if res.degraded {
			w.wstats.Degraded++
		}
		w.wstatsMu.Unlock()
		// Mirror the same deltas into the registry at the same single
		// site, so counters and Stats() reconcile exactly.
		w.met.segments.Inc()
		w.met.retries.Add(int64(res.retries))
		if res.degraded {
			w.met.degraded.Inc()
		}
		w.met.bytesIn.Add(int64(len(job.data)))
		if res.err != nil {
			w.met.errors.Inc()
			w.setErr(fmt.Errorf("core: segment %d: %w", job.index, res.err))
		} else if w.err() == nil {
			var sp *obs.ActiveSpan
			if w.met.tracer != nil {
				sp = w.met.tracer.Start(fmt.Sprintf("segment %d", job.index), "frame-emit")
			}
			var n int
			var err error
			if w.opts.Parity.K > 0 {
				// Parity covers the exact frame bytes, so build the frame
				// once and both write and retain the same encoding.
				enc := format.AppendSegmentFrame(nil, job.index, len(job.data), res.container)
				n, err = w.dst.Write(enc)
				if err == nil {
					w.parityGroup = append(w.parityGroup, enc)
					if len(w.parityGroup) == w.opts.Parity.K {
						err = w.emitParity()
					}
				}
			} else {
				n, err = format.WriteSegmentFrame(w.dst, job.index, len(job.data), res.container)
			}
			sp.End(err)
			w.met.bytesOut.Add(int64(n))
			if err != nil {
				w.setErr(fmt.Errorf("core: writing segment frame %d: %w", job.index, err))
			} else {
				w.met.segmentsFor(res.codec).Inc()
				if w.opts.OnSegment != nil {
					w.opts.OnSegment(SegmentReport{
						Index:    job.index,
						RawLen:   len(job.data),
						FrameLen: n,
						Codec:    res.codec,
						Retries:  res.retries,
						Degraded: res.degraded,
						Report:   res.rep,
					})
				}
			}
		}
		w.release(job)
	}
	// The final (possibly short) group still gets its parity: a reader
	// must be able to repair losses in the stream's tail too.
	if w.err() == nil && len(w.parityGroup) > 0 {
		if err := w.emitParity(); err != nil {
			w.setErr(fmt.Errorf("core: writing tail parity: %w", err))
		}
	}
}

// emitParity closes the open parity group: it derives the group's M
// parity frames and writes them after the group's last data frame.
// Runs on the emitter goroutine.
func (w *Writer) emitParity() error {
	pfs, err := format.BuildParityFrames(w.parityFirst, w.parityGroup, w.opts.Parity.M)
	if err != nil {
		return err
	}
	for _, pf := range pfs {
		if _, err := format.WriteParityFrame(w.dst, pf); err != nil {
			return err
		}
	}
	w.wstatsMu.Lock()
	w.wstats.ParityFrames += len(pfs)
	w.wstatsMu.Unlock()
	w.parityFirst += len(w.parityGroup)
	w.parityGroup = w.parityGroup[:0]
	return nil
}

// release returns a job's segment buffer to the pool and retires its
// bytes from the in-flight account.
func (w *Writer) release(job *segJob) {
	w.flightMu.Lock()
	w.inFlight -= cap(job.data)
	w.flightMu.Unlock()
	w.bufPool.put(job.data)
	job.data = nil
}

// segmentEngine resolves the engine one segment compresses with:
// StreamOptions.Codec by registry name (codec.Auto probes the segment),
// "" through the legacy Params.Version routing — byte-identical to
// previous releases, including VersionAuto's V1/V2-only sampling.
func (w *Writer) segmentEngine(data []byte) (codec.Engine, error) {
	if name := w.opts.Codec; name != "" {
		return resolveEngine(name, data)
	}
	v := w.params.Version
	if v == VersionAuto {
		v = SelectVersion(data)
	}
	var name string
	switch v {
	case Version1:
		name = "v1"
	case Version2:
		name = "v2"
	case VersionSerial:
		name = "cpu"
	case VersionParallel:
		name = "pthread"
	case VersionBZip2:
		name = "bzip2"
	default:
		return nil, fmt.Errorf("core: unknown version %v", v)
	}
	eng, ok := codec.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: engine %q not registered", name)
	}
	return eng, nil
}

// compressSegment compresses segment index with the Writer's parameters,
// resolving the segment's engine via segmentEngine (so a stream may mix
// codecs frame by frame under the adaptive selector).
//
// Accelerated engines run under the retry policy: a failed attempt is
// retried after a jittered exponential backoff, and a segment that still
// fails after MaxAttempts degrades to the engine's byte-identical host
// twin (Engine.CompressCPU) unless the policy forbids it. With
// Params.Health armed, accelerated segments additionally ride the
// supervised device pool (per-device breakers, watchdog, redispatch)
// inside each attempt. StreamOptions.SegmentDeadline bounds the whole
// device phase; expiry degrades to the twin. Host engines (the CPU
// codecs, bzip2, raw-store) fail fast — their errors are deterministic.
func (w *Writer) compressSegment(index int, data []byte) segResult {
	p := w.params
	// Workers run concurrently; a shared SearchStats would race. Collect
	// locally and merge under the stats mutex.
	var local *lzss.SearchStats
	if p.Stats != nil {
		local = new(lzss.SearchStats)
		p.Stats = local
	}

	eng, err := w.segmentEngine(data)
	if err != nil {
		return segResult{err: err}
	}
	opts, err := p.engineOptions(eng)
	if err != nil {
		return segResult{err: err}
	}
	opts.HostWorkers = 1 // the segment pipeline is the host parallelism

	merge := func() {
		if local != nil {
			w.statsMu.Lock()
			w.params.Stats.Add(*local)
			w.statsMu.Unlock()
		}
	}

	if !eng.Accelerated() {
		out, rep, err := eng.Compress(data, opts)
		if err == nil {
			merge()
		}
		return segResult{container: out, codec: eng.Codec(), rep: rep, err: err}
	}

	// The segment context bounds the whole device phase: every attempt,
	// the backoff sleeps, and (supervised) the redispatch ladder. Expiry
	// does not fail the segment — it routes to the CPU degrade below.
	segCtx := w.ctx
	cancel := func() {}
	if d := w.opts.SegmentDeadline; d > 0 {
		segCtx, cancel = context.WithTimeout(w.ctx, d)
	}
	defer cancel()

	// abortErr classifies a cancellation: non-nil means the segment must
	// fail with it (the stream context is done and drain is off); nil
	// means the device phase merely ended (segment deadline expired, or
	// drain mode) and the segment should degrade.
	abortErr := func() error {
		if w.ctxErr() != nil && !w.opts.DrainOnCancel {
			return w.ctx.Err()
		}
		return nil
	}

	supDegraded := false
	var rep *gpu.Report
	attempt := func() ([]byte, error) {
		if local != nil {
			*local = lzss.SearchStats{} // drop stats from a failed attempt
		}
		rep = nil
		aopts := opts
		aopts.Context = segCtx
		if w.opts.GPUStreams > 1 && eng.Codec() == format.CodecCULZSSV1 {
			// The slice scheduler consults opts.Health internally. It is
			// V1-specific (its copy/execute schedule models the
			// chunk-per-thread kernel), so other codecs take the plain path.
			out, r, err := gpu.CompressV1Streamed(data, aopts, w.opts.GPUStreams)
			rep = r
			return out, err
		}
		if p.Health != nil {
			out, r, degraded, err := gpu.CompressSupervised(
				eng, data, aopts, index%p.Health.Devices(), fmt.Sprintf("segment %d", index))
			if err == nil {
				supDegraded = degraded
				rep = r
			}
			return out, err
		}
		out, r, err := eng.Compress(data, aopts)
		rep = r
		return out, err
	}

	pol := w.opts.Retry
	maxAttempts := pol.maxAttempts()
	var lastErr error
	retries := 0
	for a := 1; ; a++ {
		if cerr := segCtx.Err(); cerr != nil {
			if err := abortErr(); err != nil {
				return segResult{retries: retries, err: err}
			}
			lastErr = cerr
			break // deadline expired (or draining): degrade
		}
		out, err := attempt()
		if err == nil {
			merge()
			return segResult{container: out, codec: eng.Codec(), rep: rep,
				retries: retries, degraded: supDegraded}
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if aerr := abortErr(); aerr != nil {
				return segResult{retries: retries, err: aerr}
			}
			break // the segment deadline cut the attempt: degrade
		}
		if a >= maxAttempts {
			break
		}
		retries++
		if err := w.sleepBackoff(segCtx, a); err != nil {
			if aerr := abortErr(); aerr != nil {
				return segResult{retries: retries, err: aerr}
			}
			break
		}
	}

	if pol.DisableFallback {
		return segResult{retries: retries,
			err: fmt.Errorf("core: gpu path failed after %d attempts: %w", maxAttempts, lastErr)}
	}
	if local != nil {
		*local = lzss.SearchStats{}
	}
	// Degrade: the engine's host twin, zero device fault sites. The twin
	// emits the same container bytes as the device path, so mixed streams
	// stay parity-consistent and decode through the ordinary path. Under
	// graceful drain the stream context may already be cancelled; the
	// fallback still runs to completion so Close can emit a trailer
	// covering every accepted byte (only reachable with DrainOnCancel —
	// otherwise a cancelled stream returned above).
	fbCtx := w.ctx
	if w.ctxErr() != nil {
		fbCtx = context.Background()
	}
	out, err := eng.CompressCPU(data, gpu.Options{
		ChunkSize:       p.ChunkSize,
		ThreadsPerBlock: p.ThreadsPerBlock,
		Config:          opts.Config,
		HostWorkers:     1,
		Stats:           local,
		Context:         fbCtx,
	})
	if err != nil {
		return segResult{retries: retries,
			err: fmt.Errorf("core: cpu fallback after gpu failure (%v): %w", lastErr, err)}
	}
	merge()
	return segResult{container: out, codec: eng.Codec(), retries: retries, degraded: true}
}

// sleepBackoff sleeps the jittered exponential delay before retry number
// attempt, returning early with ctx's error if it fires first.
func (w *Writer) sleepBackoff(ctx context.Context, attempt int) error {
	pol := w.opts.Retry
	d := pol.baseBackoff() << uint(attempt-1)
	if limit := pol.maxBackoff(); d > limit || d <= 0 {
		d = limit
	}
	// Full jitter over [d/2, d] decorrelates retry storms.
	w.rngMu.Lock()
	j := d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
	w.rngMu.Unlock()
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (w *Writer) setErr(err error) {
	w.mu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
}

func (w *Writer) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

// Write accepts plaintext, cutting and dispatching full segments as they
// accumulate. It blocks when HostWorkers segments are already in flight.
func (w *Writer) Write(data []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.ctxErr(); err != nil {
		return 0, err
	}
	if err := w.err(); err != nil {
		return 0, err
	}
	w.start()
	if err := w.err(); err != nil {
		return 0, err // e.g. the stream header failed to write
	}
	written := 0
	for len(data) > 0 {
		if w.buf == nil {
			w.buf = w.bufPool.get(w.segSize)
			w.segStart = time.Now()
		}
		n := w.segSize - len(w.buf)
		if n > len(data) {
			n = len(data)
		}
		w.buf = append(w.buf, data[:n]...)
		w.crc = format.Checksum32Update(w.crc, data[:n])
		w.total += n
		written += n
		data = data[n:]
		if len(w.buf) == w.segSize {
			if err := w.flushSegment(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// flushSegment hands the current buffer to the pipeline. The send into
// pending blocks while HostWorkers segments are in flight — that
// backpressure is the Writer's memory bound.
func (w *Writer) flushSegment() error {
	if w.met.tracer != nil {
		// The "read" stage: wall time spent accumulating this segment's
		// plaintext (includes the caller's own pacing — that is the
		// point: a slow producer shows up here, not in compress stages).
		w.met.tracer.Record(obs.Span{
			Op: fmt.Sprintf("segment %d", w.index), Stage: "read", Device: -1,
			Start: w.segStart, Duration: time.Since(w.segStart),
		})
	}
	job := &segJob{index: w.index, data: w.buf, result: make(chan segResult, 1)}
	w.index++
	w.buf = nil
	w.flightMu.Lock()
	w.inFlight += cap(job.data)
	if w.inFlight > w.maxFlight {
		w.maxFlight = w.inFlight
	}
	w.flightMu.Unlock()
	if w.opts.DrainOnCancel {
		// Graceful drain: the bytes were accepted, so the segment enters
		// the pipeline even while the stream context is cancelled — the
		// workers degrade it to the CPU encoder and the trailer stays
		// honest. The send still bounds memory (pending drains because
		// in-flight segments always complete under drain).
		w.pending <- job
	} else {
		select {
		case w.pending <- job:
		case <-w.ctx.Done():
			// The job never entered the pipeline; retire it here.
			w.release(job)
			w.setErr(w.ctx.Err())
			return w.err()
		}
	}
	w.jobs <- job
	return w.err()
}

// Close flushes the final partial segment, waits for the pipeline to
// drain, writes the stream trailer, and reports the first error seen.
// Closing an empty Writer emits a valid zero-segment stream. A second
// Close is a no-op returning nil.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.start()
	if w.buf != nil && len(w.buf) > 0 {
		if err := w.flushSegment(); err != nil {
			// Pipeline already failed; still fall through to teardown.
			_ = err
		}
	}
	close(w.jobs)
	close(w.pending)
	w.workerWG.Wait()
	<-w.emitted
	if err := w.err(); err != nil {
		return err
	}
	trailer := &format.StreamTrailer{Segments: w.index, TotalLen: w.total, Checksum: w.crc}
	if _, err := format.WriteStreamTrailer(w.dst, trailer); err != nil {
		w.setErr(fmt.Errorf("core: writing stream trailer: %w", err))
	}
	return w.err()
}

// maxInFlight reports the high-water mark of segment-buffer bytes held by
// the pipeline (test hook for the memory-bound guarantee).
func (w *Writer) maxInFlight() int {
	w.flightMu.Lock()
	defer w.flightMu.Unlock()
	return w.maxFlight
}

// Reader is an io.Reader serving the decompressed expansion of either a
// framed stream or a bare container (decompressed whole).
//
// Framed streams decode through a bounded concurrent pipeline, the mirror
// image of the Writer's: a prefetcher goroutine pulls records off the
// format.FrameReader (the sole owner of the frame/salvage/repair state), a
// pool of HostWorkers decode workers decompresses segment containers
// concurrently, and delivery — the Read side — replays the prefetcher's
// in-order event queue, so plaintext order, corruption and repair records,
// and every callback are identical to a serial decode no matter how decode
// completions interleave. Peak decoded-segment memory is bounded by
// MaxInFlight segments (plus the one being served); Prefetch bounds how
// far the prefetcher reads ahead of delivery.
type Reader struct {
	params Params
	opts   ReaderOptions
	ctx    context.Context
	met    readerMetrics

	// Legacy single-container mode.
	legacy *bytes.Reader

	// Framed mode. The pipeline starts lazily at the first Read; until
	// then a Reader costs no goroutines.
	fr       *format.FrameReader
	workers  int // decode worker-pool size
	inner    int // per-segment inner decode parallelism
	bound    int // admission bound: segments decoded or decoding at once
	prefetch int // event-queue capacity: records read ahead of delivery

	started bool
	closed  bool
	events  chan *readEvent // in-order record queue, prefetcher -> delivery
	jobs    chan *readEvent // decode-job feed, prefetcher -> workers
	tokens  chan struct{}   // admission semaphore, capacity bound
	pctx    context.Context
	pcancel context.CancelFunc
	wg      sync.WaitGroup // prefetcher + workers

	contPool  *bytePool // frame container buffers (fed to fr.Lease)
	plainPool *bytePool // decoded segment buffers

	cur    []byte // decoded bytes of the current segment not yet consumed
	curBuf []byte // cur's pool-owned backing buffer, recycled once drained
	crc    uint32 // running CRC-32 of the plaintext served so far
	served int
	done   bool
	err    error

	// mu guards the record lists, stats, and in-flight accounting against
	// concurrent scrapes: Stats, CorruptSegments, and RepairedSegments
	// are safe to call while Read runs.
	mu       sync.Mutex
	corrupt  []*format.CorruptSegmentError
	repaired []*format.RepairedSegmentError
	stats    ReaderStats
	inflight int
}

// readEvent is one in-order record from the prefetcher; exactly one of
// frame, trailer, cse, rse, or err is set. Frame events double as decode
// jobs: a worker fills plain/rep/derr and closes done.
type readEvent struct {
	frame   *format.SegmentFrame
	trailer *format.StreamTrailer
	cse     *format.CorruptSegmentError
	rse     *format.RepairedSegmentError
	err     error

	done  chan struct{}
	plain []byte
	buf   []byte // plain's pool-owned backing buffer; nil if not pooled
	rep   *gpu.Report
	derr  error
}

// ReaderStats is a point-in-time snapshot of a framed Reader's decode
// activity, safe to take concurrently with Read.
type ReaderStats struct {
	// Segments and Bytes count delivered segments and plaintext bytes.
	Segments int
	Bytes    int
	// Corrupt and Repaired mirror len(CorruptSegments()) and
	// len(RepairedSegments()).
	Corrupt  int
	Repaired int
	// MaxInFlight is the high-water mark of segments admitted to the
	// pipeline and not yet delivered (the memory-bound guarantee's test
	// hook, the mirror of the Writer's).
	MaxInFlight int
	// PoolHits and PoolMisses count buffer requests served from the
	// Reader's recycle pools versus freshly allocated.
	PoolHits   int64
	PoolMisses int64
}

// ReaderOptions tune the Reader's decode behaviour.
type ReaderOptions struct {
	// Salvage opts into best-effort decode of damaged framed streams:
	// instead of stopping at the first bad record, the Reader skips
	// damaged regions (resynchronising at the next frame that parses and
	// checksums cleanly), keeps serving every intact segment, and records
	// one *format.CorruptSegmentError per damaged region, retrievable via
	// CorruptSegments. Salvaged segments still pass the per-frame CRC and
	// the per-container chunk checksums; only the end-to-end trailer
	// checks are waived (they cannot hold once bytes are missing).
	Salvage bool
	// Context, when non-nil, cancels the decode: Read fails with the
	// context's error at the next segment boundary. nil means
	// context.Background().
	Context context.Context
	// OnCorrupt, when non-nil, is called once per damaged region as it is
	// discovered (salvage mode only), before the following intact segment
	// is served.
	OnCorrupt func(*format.CorruptSegmentError)
	// Repair upgrades salvage from skip to heal: damaged or missing
	// segment frames are reconstructed bit-identically from the stream's
	// parity frames (when the writer emitted them via
	// StreamOptions.Parity), and only damage beyond the parity's reach
	// degrades to a recorded CorruptSegmentError. Implies Salvage.
	// Parity-less streams decode as under plain salvage. Healed regions
	// are recorded as *format.RepairedSegmentError, retrievable via
	// RepairedSegments; when every damaged region is repaired the
	// end-to-end trailer checks are enforced again (nothing is missing).
	Repair bool
	// OnRepair, when non-nil, is called once per healed region as its
	// parity group settles (repair mode only), before the repaired
	// segments are served.
	OnRepair func(*format.RepairedSegmentError)
	// HostWorkers is the decode pipeline's worker-pool size for framed
	// streams: up to that many segments decompress concurrently while
	// delivery stays strictly in stream order. 0 falls back to
	// Params.HostWorkers, then GOMAXPROCS; 1 decodes serially (the
	// pre-pipeline behaviour). Each pipeline worker decodes its segment
	// single-threaded — the segment pipeline is the host parallelism,
	// exactly as in the Writer.
	HostWorkers int
	// Prefetch bounds how many records the prefetcher may queue ahead of
	// delivery; 0 means MaxInFlight. Raising it smooths bursty sources
	// without raising decoded-memory use (queued-but-unadmitted records
	// hold only their compressed containers).
	Prefetch int
	// MaxInFlight is the admission bound: at most this many segments may
	// be decoded or decoding at once, so peak decoded-segment memory is
	// MaxInFlight segments plus the one being served. 0 means
	// HostWorkers. Values below HostWorkers also shrink the worker pool —
	// admission, not worker count, is the bound.
	MaxInFlight int
	// MaxContainerLen bounds the legacy bare-container path: a non-framed
	// input longer than this fails with ErrContainerTooLarge instead of
	// being buffered without limit (the container format is not
	// incremental, so the Reader must hold it whole). 0 means
	// DefaultMaxContainerLen; negative means unlimited.
	MaxContainerLen int64
	// OnSegment, when non-nil, observes every delivered segment in stream
	// order: its index, plaintext length, and the GPU decode report (nil
	// for CPU-codec segments). The bench harness uses it to collect
	// per-segment modeled decode costs without re-reading the stream.
	OnSegment func(index, rawLen int, rep *gpu.Report)
}

// DefaultMaxContainerLen is the legacy bare-container path's input cap
// (the ReaderOptions.MaxContainerLen zero value). It matches the frame
// layer's segment ceiling — far beyond any real single container.
const DefaultMaxContainerLen = int64(format.MaxSegmentLen)

// ErrContainerTooLarge reports a bare (non-framed) input longer than
// ReaderOptions.MaxContainerLen.
var ErrContainerTooLarge = errors.New("core: bare container too large")

// ErrReaderClosed is returned by Read after Close interrupted a framed
// stream mid-decode.
var ErrReaderClosed = errors.New("core: reader is closed")

// resolve computes the pipeline geometry — worker count, admission bound,
// and read-ahead — applying the documented defaults.
func (o *ReaderOptions) resolve(p Params) (workers, bound, prefetch int) {
	workers = o.HostWorkers
	if workers <= 0 {
		workers = p.HostWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound = o.MaxInFlight
	if bound <= 0 {
		bound = workers
	}
	if workers > bound {
		workers = bound // more workers than admitted segments is waste
	}
	prefetch = o.Prefetch
	if prefetch <= 0 {
		prefetch = bound
	}
	return workers, bound, prefetch
}

// NewReader sniffs src and returns a Reader over the plaintext. Framed
// streams decode lazily: NewReader itself reads only the stream header, so
// a pipe that has produced only its first frames is readable immediately.
func NewReader(src io.Reader, p Params) (*Reader, error) {
	return NewReaderOptions(src, p, ReaderOptions{})
}

// NewReaderOptions is NewReader with explicit decode options.
func NewReaderOptions(src io.Reader, p Params, o ReaderOptions) (*Reader, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	br := bufio.NewReader(src)
	magic, err := br.Peek(len(format.StreamMagic))
	if err == nil && string(magic) == format.StreamMagic {
		var fr *format.FrameReader
		var ferr error
		if o.Salvage || o.Repair {
			fr, ferr = format.NewFrameReaderSalvage(br)
		} else {
			fr, ferr = format.NewFrameReader(br)
		}
		if ferr != nil {
			return nil, ferr
		}
		fr.Obs = p.Obs
		if o.Repair {
			o.Salvage = true
			fr.EnableRepair()
		}
		r := &Reader{params: p, opts: o, ctx: ctx, fr: fr, met: newReaderMetrics(p.Obs)}
		r.workers, r.bound, r.prefetch = o.resolve(p)
		r.inner = 1
		if r.workers == 1 {
			// A serial pipeline keeps the pre-pipeline behaviour: the one
			// decode at a time may use inner chunk parallelism.
			r.inner = p.HostWorkers
		}
		r.contPool = newBytePool(p.Obs, "reader-container")
		r.plainPool = newBytePool(p.Obs, "reader-plain")
		fr.Lease = func(n int) []byte { return r.contPool.get(n) }
		return r, nil
	}
	// Bare container (or too short / not ours — let Decompress produce
	// the diagnostic). MaxContainerLen bounds the buffering so an endless
	// input fails typed instead of exhausting memory.
	limit := o.MaxContainerLen
	if limit == 0 {
		limit = DefaultMaxContainerLen
	}
	var container []byte
	if limit < 0 {
		container, err = io.ReadAll(br)
	} else {
		container, err = io.ReadAll(io.LimitReader(br, limit+1))
		if err == nil && int64(len(container)) > limit {
			err = fmt.Errorf("%w: input exceeds %d bytes (raise ReaderOptions.MaxContainerLen)",
				ErrContainerTooLarge, limit)
		}
	}
	if err != nil {
		return nil, err
	}
	out, err := Decompress(container, p)
	if err != nil {
		return nil, err
	}
	return &Reader{params: p, opts: o, ctx: ctx, legacy: bytes.NewReader(out)}, nil
}

// CorruptSegments returns the damaged regions recorded so far (salvage
// mode). A synthetic entry with Index == -1 marks a stream that ended
// without its trailer (truncated tail). The returned slice is a copy and
// grows as Read progresses; it is complete once Read has returned io.EOF.
// Safe to call concurrently with Read.
func (r *Reader) CorruptSegments() []*format.CorruptSegmentError {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*format.CorruptSegmentError(nil), r.corrupt...)
}

// RepairedSegments returns the healed regions recorded so far (repair
// mode): damage that parity reconstruction fully reversed, whose
// segments were served bit-identical to the originals. The returned
// slice is a copy and grows as Read progresses; it is complete once Read
// has returned io.EOF. Safe to call concurrently with Read.
func (r *Reader) RepairedSegments() []*format.RepairedSegmentError {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*format.RepairedSegmentError(nil), r.repaired...)
}

// Stats returns a snapshot of the Reader's decode-pipeline activity,
// safe to take concurrently with Read. For a legacy bare-container
// Reader every field is zero.
func (r *Reader) Stats() ReaderStats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	if r.contPool != nil {
		ch, cm := r.contPool.counts()
		ph, pm := r.plainPool.counts()
		st.PoolHits, st.PoolMisses = ch+ph, cm+pm
	}
	return st
}

// ctxErr reports the Reader context's error, if it is done.
func (r *Reader) ctxErr() error {
	select {
	case <-r.ctx.Done():
		return r.ctx.Err()
	default:
		return nil
	}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if err := r.ctxErr(); err != nil {
		return 0, err
	}
	if r.legacy != nil {
		return r.legacy.Read(p)
	}
	if r.err != nil {
		return 0, r.err
	}
	r.startPipeline()
	for len(r.cur) == 0 {
		if r.curBuf != nil {
			r.plainPool.put(r.curBuf)
			r.cur, r.curBuf = nil, nil
		}
		if r.done {
			return 0, io.EOF
		}
		if err := r.nextEvent(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	if len(r.cur) == 0 && r.curBuf != nil {
		r.plainPool.put(r.curBuf)
		r.cur, r.curBuf = nil, nil
	}
	return n, nil
}

// startPipeline lazily spins up the decode pipeline on the first Read,
// so a Reader that is constructed but never read costs no goroutines.
func (r *Reader) startPipeline() {
	if r.started {
		return
	}
	r.started = true
	r.pctx, r.pcancel = context.WithCancel(r.ctx)
	r.events = make(chan *readEvent, r.prefetch)
	// jobs can hold every admitted job (admission is bounded by tokens),
	// so once an event is queued the prefetcher's job send cannot block —
	// mirroring the Writer's jobs/pending pair.
	r.jobs = make(chan *readEvent, r.bound)
	r.tokens = make(chan struct{}, r.bound)
	r.wg.Add(1 + r.workers)
	go r.prefetcher()
	for i := 0; i < r.workers; i++ {
		go r.decodeWorker()
	}
}

// prefetcher is the sole owner of the FrameReader: it converts the
// frame/salvage/repair record stream into the in-order event queue,
// dispatching segment frames to the decode workers. Stream order is
// fixed here, before any concurrency; delivery replays the queue.
func (r *Reader) prefetcher() {
	defer r.wg.Done()
	defer close(r.jobs)
	defer close(r.events)
	for seq := 0; ; seq++ {
		var sp *obs.ActiveSpan
		if r.met.tracer != nil {
			sp = r.met.tracer.Start(fmt.Sprintf("record %d", seq), "frame-read")
		}
		frame, trailer, err := r.fr.Next()
		sp.End(err)
		ev := &readEvent{}
		terminal := false
		switch {
		case err != nil:
			salvaged := false
			if r.opts.Salvage {
				// A RepairedSegmentError may wrap the parse failure that
				// revealed the damage, so match it before the corrupt
				// case. Both are non-sticky: the next record follows.
				var rse *format.RepairedSegmentError
				var cse *format.CorruptSegmentError
				if errors.As(err, &rse) {
					ev.rse, salvaged = rse, true
				} else if errors.As(err, &cse) {
					ev.cse, salvaged = cse, true
				}
			}
			if !salvaged {
				ev.err = err
				terminal = true
			}
		case trailer != nil:
			ev.trailer = trailer
			terminal = true
		default:
			ev.frame = frame
			ev.done = make(chan struct{})
			// Admission: acquire an in-flight token before the event is
			// queued, so the head of the queue is always a job the
			// workers will run — delivery never waits on an unadmitted
			// decode.
			select {
			case r.tokens <- struct{}{}:
			case <-r.pctx.Done():
				return
			}
			r.noteAdmit()
		}
		select {
		case r.events <- ev:
		case <-r.pctx.Done():
			return
		}
		if ev.frame != nil {
			r.jobs <- ev
		}
		if terminal {
			return
		}
	}
}

// decodeWorker drains the job feed until it closes or the pipeline is
// cancelled.
func (r *Reader) decodeWorker() {
	defer r.wg.Done()
	for ev := range r.jobs {
		r.decodeOne(ev)
	}
}

// decodeOne decompresses one segment container into a pooled buffer and
// publishes the result on the event.
func (r *Reader) decodeOne(ev *readEvent) {
	defer close(ev.done)
	if err := r.pctx.Err(); err != nil {
		ev.derr = err
		return
	}
	var sp *obs.ActiveSpan
	if r.met.tracer != nil {
		sp = r.met.tracer.Start(fmt.Sprintf("segment %d", ev.frame.Index), "decode")
	}
	leased := r.plainPool.get(ev.frame.RawLen)
	plain, rep, err := decompressInto(leased, ev.frame.Container, r.params, r.pctx, r.inner)
	sp.End(err)
	r.contPool.put(ev.frame.Container)
	ev.frame.Container = nil
	if err != nil {
		r.plainPool.put(leased)
		ev.derr = err
		return
	}
	if aliases(plain, leased) {
		ev.buf = leased
	} else {
		// The codec allocated its own output (CPU paths, or a container
		// whose header asked for more than the lease); recycle the lease.
		r.plainPool.put(leased)
	}
	ev.plain = plain
	ev.rep = rep
}

// aliases reports whether the decoded output landed inside the leased
// buffer, as opposed to a fresh or codec-internal allocation.
func aliases(plain, leased []byte) bool {
	return cap(plain) > 0 && cap(leased) > 0 && &plain[:1][0] == &leased[:1][0]
}

// nextEvent consumes in-order events until one yields plaintext, the
// trailer, or an error — the concurrent mirror of the serial reader's
// nextSegment loop. All bookkeeping (records, callbacks, CRC, totals)
// happens here, on the Read side, in queue order.
func (r *Reader) nextEvent() error {
	for {
		if err := r.ctxErr(); err != nil {
			return err
		}
		ev, ok := <-r.events
		if !ok {
			// The pipeline stopped without a terminal record: the Reader
			// was closed (or its context cancelled) mid-stream.
			if err := r.ctxErr(); err != nil {
				return err
			}
			return ErrReaderClosed
		}
		switch {
		case ev.rse != nil:
			r.recordRepaired(ev.rse)
		case ev.cse != nil:
			r.recordCorrupt(ev.cse)
		case ev.err != nil:
			r.finish()
			if r.opts.Salvage && errors.Is(ev.err, format.ErrTruncated) {
				// The stream ended without its trailer. Deliver what we
				// have; the truncation is recorded for the caller.
				r.recordCorrupt(&format.CorruptSegmentError{Index: -1, Err: format.ErrTruncated})
				r.done = true
				return nil
			}
			return ev.err
		case ev.trailer != nil:
			r.finish()
			if r.corruptCount() == 0 {
				if ev.trailer.TotalLen != r.served {
					return fmt.Errorf("%w: trailer says %d plaintext bytes, decoded %d",
						format.ErrCorrupt, ev.trailer.TotalLen, r.served)
				}
				if ev.trailer.Checksum != r.crc {
					return fmt.Errorf("%w: stream trailer", format.ErrChecksum)
				}
			}
			// With recorded corruption the end-to-end totals cannot match;
			// the delivered segments were each CRC-verified individually.
			r.done = true
			return nil
		default:
			delivered, err := r.deliverFrame(ev)
			if err != nil {
				return err
			}
			if delivered {
				return nil
			}
		}
	}
}

// deliverFrame waits for one frame event's decode and applies the serial
// reader's delivery rules. It reports whether plaintext was delivered
// into r.cur (false: the segment was recorded corrupt and skipped,
// salvage mode only).
func (r *Reader) deliverFrame(ev *readEvent) (bool, error) {
	select {
	case <-ev.done:
	case <-r.ctx.Done():
		return false, r.ctx.Err()
	}
	r.noteRetire()
	frame := ev.frame
	if ev.derr != nil {
		if errors.Is(ev.derr, context.Canceled) || errors.Is(ev.derr, context.DeadlineExceeded) {
			// Pipeline shutdown cut this decode short: cancellation, not
			// data corruption — never a salvage record.
			if err := r.ctxErr(); err != nil {
				return false, err
			}
			return false, ev.derr
		}
		if r.opts.Salvage {
			// The frame CRC held but the container inside is broken (for
			// example a frame-header bit-flip mislabelled an intact
			// container). Skip just this segment.
			r.recordCorrupt(&format.CorruptSegmentError{Index: frame.Index, Err: ev.derr})
			return false, nil
		}
		return false, fmt.Errorf("core: segment %d: %w", frame.Index, ev.derr)
	}
	if len(ev.plain) != frame.RawLen {
		r.plainPool.put(ev.buf)
		err := fmt.Errorf("%w: segment %d decoded to %d bytes, frame says %d",
			format.ErrCorrupt, frame.Index, len(ev.plain), frame.RawLen)
		if r.opts.Salvage {
			r.recordCorrupt(&format.CorruptSegmentError{Index: frame.Index, Err: err})
			return false, nil
		}
		return false, err
	}
	r.crc = format.Checksum32Update(r.crc, ev.plain)
	r.served += len(ev.plain)
	r.cur = ev.plain
	r.curBuf = ev.buf
	r.met.segments.Inc()
	r.met.bytesOut.Add(int64(len(ev.plain)))
	r.mu.Lock()
	r.stats.Segments++
	r.stats.Bytes += len(ev.plain)
	r.mu.Unlock()
	if r.opts.OnSegment != nil {
		r.opts.OnSegment(frame.Index, frame.RawLen, ev.rep)
	}
	return true, nil
}

// recordCorrupt appends one damaged region and fires the callback.
func (r *Reader) recordCorrupt(cse *format.CorruptSegmentError) {
	r.met.corrupt.Inc()
	r.mu.Lock()
	r.corrupt = append(r.corrupt, cse)
	r.stats.Corrupt = len(r.corrupt)
	r.mu.Unlock()
	if r.opts.OnCorrupt != nil {
		r.opts.OnCorrupt(cse)
	}
}

// recordRepaired appends one healed region and fires the callback.
func (r *Reader) recordRepaired(rse *format.RepairedSegmentError) {
	r.mu.Lock()
	r.repaired = append(r.repaired, rse)
	r.stats.Repaired = len(r.repaired)
	r.mu.Unlock()
	if r.opts.OnRepair != nil {
		r.opts.OnRepair(rse)
	}
}

func (r *Reader) corruptCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.corrupt)
}

// noteAdmit accounts one segment entering the pipeline (prefetcher side:
// called with the admission token held).
func (r *Reader) noteAdmit() {
	r.mu.Lock()
	r.inflight++
	if r.inflight > r.stats.MaxInFlight {
		r.stats.MaxInFlight = r.inflight
	}
	r.mu.Unlock()
	r.met.inflight.Inc()
}

// noteRetire accounts one segment leaving the pipeline at delivery and
// releases its admission token.
func (r *Reader) noteRetire() {
	r.mu.Lock()
	r.inflight--
	r.mu.Unlock()
	r.met.inflight.Dec()
	<-r.tokens
}

// finish tears the pipeline down after a terminal record: the prefetcher
// has already stopped; cancellation unblocks anything else and the
// goroutines are joined.
func (r *Reader) finish() {
	if r.pcancel != nil {
		r.pcancel()
	}
	r.wg.Wait()
}

// Close releases the decode pipeline without reading to EOF: in-flight
// decodes are cancelled and every pipeline goroutine is joined. It never
// closes the underlying source. Close is idempotent, and a Reader that
// reaches io.EOF (or a terminal error) tears its pipeline down on its
// own — Close is for abandoning a framed stream midway, after which Read
// returns ErrReaderClosed.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.legacy != nil || !r.started {
		return nil
	}
	r.pcancel()
	r.wg.Wait()
	for range r.events {
		// Drain whatever the prefetcher had queued so nothing pins the
		// pooled buffers; the pool references die with the Reader.
	}
	if r.err == nil && !r.done {
		r.err = ErrReaderClosed
	}
	return nil
}

// Len reports the plaintext bytes currently buffered and undelivered. For
// a bare container that is the whole remainder; for a framed stream it is
// the unread tail of the current segment (the stream's total length is
// only known at the trailer).
func (r *Reader) Len() int {
	if r.legacy != nil {
		return r.legacy.Len()
	}
	return len(r.cur)
}
