package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"culzss/internal/datasets"
	"culzss/internal/format"
)

func genText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"gateway", "compress", "network", "bandwidth", "storage", "payload"}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

func TestInitDetectsDevice(t *testing.T) {
	info := Init()
	if info.Device == nil || info.CUDACores != 480 {
		t.Fatalf("Init() = %+v", info)
	}
}

func TestVersionString(t *testing.T) {
	for v, want := range map[Version]string{
		VersionAuto: "auto", Version1: "culzss-v1", Version2: "culzss-v2",
		VersionSerial: "serial", VersionParallel: "parallel",
		VersionBZip2: "bzip2", Version(99): "version(99)",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCompressDecompressAllVersions(t *testing.T) {
	input := genText(96<<10, 1)
	for _, v := range []Version{Version1, Version2, VersionSerial, VersionParallel, VersionBZip2, VersionAuto} {
		comp, err := Compress(input, Params{Version: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(comp) >= len(input) {
			t.Fatalf("%v: no compression (%d -> %d)", v, len(input), len(comp))
		}
		got, err := Decompress(comp, Params{})
		if err != nil {
			t.Fatalf("%v: decompress: %v", v, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("%v: round trip mismatch", v)
		}
	}
}

func TestCompressedContainersCarryRightCodec(t *testing.T) {
	input := genText(16<<10, 2)
	cases := map[Version]format.Codec{
		Version1:        format.CodecCULZSSV1,
		Version2:        format.CodecCULZSSV2,
		VersionSerial:   format.CodecSerialBitPacked,
		VersionParallel: format.CodecChunkedBitPacked,
		VersionBZip2:    format.CodecBZip2,
	}
	for v, want := range cases {
		comp, err := Compress(input, Params{Version: v})
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := format.ParseHeader(comp)
		if err != nil {
			t.Fatal(err)
		}
		if h.Codec != want {
			t.Errorf("%v produced %v, want %v", v, h.Codec, want)
		}
	}
}

func TestSelectVersionFollowsPaperGuidance(t *testing.T) {
	// Highly compressible (Table II: 13.5%) -> V1.
	high := datasets.HighlyCompressible(128<<10, 3)
	if v := SelectVersion(high); v != Version1 {
		t.Errorf("SelectVersion(highly-compressible) = %v, want V1", v)
	}
	// DE-map-like data (34%) -> V1.
	demap := datasets.DEMap(128<<10, 4)
	if v := SelectVersion(demap); v != Version1 {
		t.Errorf("SelectVersion(DE map) = %v, want V1", v)
	}
	// ~50%+ text -> V2.
	cfiles := datasets.CFiles(128<<10, 5)
	if v := SelectVersion(cfiles); v != Version2 {
		t.Errorf("SelectVersion(C files) = %v, want V2", v)
	}
	dict := datasets.Dictionary(128<<10, 6)
	if v := SelectVersion(dict); v != Version2 {
		t.Errorf("SelectVersion(dictionary) = %v, want V2", v)
	}
	// Empty input defaults sanely.
	if v := SelectVersion(nil); v != Version2 {
		t.Errorf("SelectVersion(nil) = %v", v)
	}
}

func TestTuningOverrides(t *testing.T) {
	input := genText(32<<10, 7)
	// Window override for GPU versions (§VII tuning API).
	comp, err := Compress(input, Params{Version: Version1, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := format.ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Window != 64 {
		t.Fatalf("window = %d, want 64", h.Window)
	}
	// Oversized GPU window must be rejected.
	if _, err := Compress(input, Params{Version: Version2, Window: 1024}); err == nil {
		t.Fatal("accepted window 1024 on GPU version")
	}
	// CPU serial accepts large windows.
	comp, err = Compress(input, Params{Version: VersionSerial, Window: 8192})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, Params{})
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("serial 8 KiB window round trip failed: %v", err)
	}
}

func TestDecompressDispatchesBZip2(t *testing.T) {
	// A bzip2 container from the baseline package must open through the
	// same Decompress call.
	input := genText(64<<10, 8)
	comp := mustBZip2(t, input)
	got, err := Decompress(comp, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("bzip2 dispatch round trip mismatch")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte("not a container"), Params{}); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestCompressRejectsUnknownVersion(t *testing.T) {
	if _, err := Compress([]byte("x"), Params{Version: Version(42)}); err == nil {
		t.Fatal("accepted unknown version")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "in.dat")
	cz := filepath.Join(dir, "in.dat.clz")
	back := filepath.Join(dir, "out.dat")
	input := genText(48<<10, 9)
	if err := os.WriteFile(src, input, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompressFile(src, cz, Params{Version: Version2}); err != nil {
		t.Fatal(err)
	}
	if err := DecompressFile(cz, back, Params{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("file round trip mismatch")
	}
	if err := CompressFile(filepath.Join(dir, "missing"), cz, Params{}); err == nil {
		t.Fatal("compressed a missing file")
	}
}

func TestStreamingAdapters(t *testing.T) {
	input := genText(64<<10, 10)
	var netBuf bytes.Buffer
	w := NewWriter(&netBuf, Params{Version: Version1})
	half := len(input) / 2
	if _, err := w.Write(input[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(input[half:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("more")); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close must be a no-op returning nil, got %v", err)
	}
	if netBuf.Len() >= len(input) {
		t.Fatal("stream not compressed")
	}

	r, err := NewReader(&netBuf, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("stream round trip mismatch")
	}
}

func TestQuickRoundTripAllVersions(t *testing.T) {
	for _, v := range []Version{Version1, Version2, VersionSerial, VersionParallel} {
		v := v
		f := func(data []byte) bool {
			comp, err := Compress(data, Params{Version: v})
			if err != nil {
				return false
			}
			got, err := Decompress(comp, Params{})
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}
