package core

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/format"
)

// frameBoundaries walks a framed stream and returns the byte offsets just
// past the header and past each segment frame (the positions a resumed
// writer can append into).
func frameBoundaries(t *testing.T, stream []byte) []int64 {
	t.Helper()
	cr := &countingStreamReader{r: bufio.NewReader(bytes.NewReader(stream))}
	fr, err := format.NewFrameReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{cr.n}
	for {
		seg, trailer, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if trailer != nil {
			return bounds
		}
		_ = seg
		bounds = append(bounds, cr.n)
	}
}

// countingStreamReader implements io.Reader+io.ByteReader so NewFrameReader
// uses it directly and n tracks the exact consumed offset.
type countingStreamReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingStreamReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingStreamReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func TestWriterResumeByteIdentical(t *testing.T) {
	const segSize = 16 << 10
	input := datasets.CFiles(100<<10, 17) // 7 segments, last partial
	p := Params{Version: Version1, HostWorkers: 2}

	var ref bytes.Buffer
	w := NewWriterOptions(&ref, p, StreamOptions{SegmentSize: segSize})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	bounds := frameBoundaries(t, ref.Bytes())
	for k := 0; k < len(bounds); k++ {
		cut := bounds[k]
		done := k * segSize // plaintext bytes covered by the first k frames
		if done > len(input) {
			done = len(input) // the final frame is partial
		}
		var out bytes.Buffer
		out.Write(ref.Bytes()[:cut])
		rw := NewWriterOptions(&out, p, StreamOptions{
			SegmentSize: segSize,
			Resume: &ResumeState{
				NextIndex: k,
				Total:     done,
				CRC:       format.Checksum32(input[:done]),
			},
		})
		if _, err := rw.Write(input[done:]); err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		if err := rw.Close(); err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		if !bytes.Equal(out.Bytes(), ref.Bytes()) {
			t.Fatalf("boundary %d: resumed stream differs from reference (%d vs %d bytes)",
				k, out.Len(), ref.Len())
		}
		if st := rw.Stats(); st.Resumed != k {
			t.Fatalf("boundary %d: Stats().Resumed = %d, want %d", k, st.Resumed, k)
		}

		// The resumed stream decodes back to the full input.
		r, err := NewReader(bytes.NewReader(out.Bytes()), p)
		if err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("boundary %d: decoded plaintext differs", k)
		}
	}
}

func TestWriterResumeStatsFresh(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1}, StreamOptions{SegmentSize: 8 << 10})
	if _, err := w.Write(datasets.CFiles(20<<10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Resumed != 0 || st.Committed != 0 {
		t.Fatalf("fresh stream stats: Resumed=%d Committed=%d, want 0 0", st.Resumed, st.Committed)
	}
}
