package core

import (
	"testing"

	"culzss/internal/bzip2"
)

// mustBZip2 compresses with the baseline for dispatch tests.
func mustBZip2(t *testing.T, data []byte) []byte {
	t.Helper()
	out, err := bzip2.Compress(data, bzip2.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
