package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/lzss"
)

// --- framed round trips -------------------------------------------------

func TestFramedStreamRoundTripVersions(t *testing.T) {
	input := datasets.KernelTarball(300<<10, 11) // > 4 segments at 64 KiB
	for _, v := range []Version{VersionAuto, Version1, Version2, VersionSerial, VersionParallel, VersionBZip2} {
		t.Run(v.String(), func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriterOptions(&buf, Params{Version: v}, StreamOptions{SegmentSize: 64 << 10})
			// Dribble in odd-sized writes to exercise segment cutting.
			for off := 0; off < len(input); {
				n := 7777
				if off+n > len(input) {
					n = len(input) - off
				}
				if _, err := w.Write(input[off : off+n]); err != nil {
					t.Fatal(err)
				}
				off += n
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if buf.Len() >= len(input) {
				t.Fatalf("framed stream not compressed: %d >= %d", buf.Len(), len(input))
			}
			r, err := NewReader(&buf, Params{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, input) {
				t.Fatal("framed round trip mismatch")
			}
		})
	}
}

func TestFramedStreamSegmentBoundarySizes(t *testing.T) {
	const seg = 8 << 10
	for _, n := range []int{0, 1, seg - 1, seg, seg + 1, 3*seg - 1, 3 * seg, 3*seg + 1} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			input := datasets.CFiles(n, int64(n)+1)
			var buf bytes.Buffer
			w := NewWriterOptions(&buf, Params{Version: Version1}, StreamOptions{SegmentSize: seg})
			if _, err := w.Write(input); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := NewReader(&buf, Params{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, input) {
				t.Fatalf("n=%d: round trip mismatch", n)
			}
		})
	}
}

func TestFramedStreamDeterministic(t *testing.T) {
	input := datasets.Dictionary(200<<10, 3)
	frame := func() []byte {
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, Params{Version: Version2, HostWorkers: 4}, StreamOptions{SegmentSize: 32 << 10})
		if _, err := w.Write(input); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(frame(), frame()) {
		t.Fatal("concurrent segment pipeline produced non-deterministic framed output")
	}
}

func TestFramedStreamGPUStreams(t *testing.T) {
	input := datasets.KernelTarball(128<<10, 9)
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1},
		StreamOptions{SegmentSize: 32 << 10, GPUStreams: 4})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("GPU-streams framed round trip mismatch")
	}
}

func TestFramedStreamStatsMerge(t *testing.T) {
	var st lzss.SearchStats
	input := datasets.CFiles(100<<10, 4)
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: VersionSerial, Stats: &st, HostWorkers: 4},
		StreamOptions{SegmentSize: 16 << 10})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Comparisons == 0 {
		t.Fatal("Stats not merged from segment workers")
	}
}

// --- Close semantics (gzip.Writer parity) -------------------------------

func TestWriterCloseEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Params{})
	if err := w.Close(); err != nil {
		t.Fatalf("Close on empty writer: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty close must still emit a valid (zero-segment) stream")
	}
	r, err := NewReader(&buf, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream decoded to %d bytes", len(got))
	}
}

func TestWriterDoubleCloseIsNoop(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Params{Version: VersionSerial})
	if _, err := io.WriteString(w, "some plaintext for the stream"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	emitted := buf.Len()
	for i := 0; i < 3; i++ {
		if err := w.Close(); err != nil {
			t.Fatalf("Close #%d: %v (want nil no-op)", i+2, err)
		}
	}
	if buf.Len() != emitted {
		t.Fatal("repeated Close emitted extra bytes")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

// failingWriter errors once its byte budget is exhausted.
type failingWriter struct {
	budget int
	err    error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, f.err
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	f.budget -= n
	if n < len(p) {
		return n, f.err
	}
	return n, nil
}

func TestWriterUnderlyingErrorPaths(t *testing.T) {
	sentinel := errors.New("disk full")
	input := datasets.CFiles(64<<10, 5)

	// Header write fails immediately.
	t.Run("header", func(t *testing.T) {
		w := NewWriter(&failingWriter{budget: 0, err: sentinel}, Params{Version: VersionSerial})
		_, werr := w.Write(input)
		cerr := w.Close()
		if !errors.Is(werr, sentinel) && !errors.Is(cerr, sentinel) {
			t.Fatalf("header failure not surfaced: write=%v close=%v", werr, cerr)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close after failed Close must be a nil no-op, got %v", err)
		}
	})

	// Mid-stream frame write fails; Write eventually errors and Close must
	// not deadlock against a full pipeline.
	t.Run("mid-stream", func(t *testing.T) {
		w := NewWriterOptions(&failingWriter{budget: 100, err: sentinel},
			Params{Version: VersionSerial, HostWorkers: 2}, StreamOptions{SegmentSize: 4 << 10})
		var werr error
		for i := 0; i < 64 && werr == nil; i++ {
			_, werr = w.Write(input[:4<<10])
		}
		cerr := w.Close()
		if !errors.Is(werr, sentinel) && !errors.Is(cerr, sentinel) {
			t.Fatalf("mid-stream failure not surfaced: write=%v close=%v", werr, cerr)
		}
	})

	// Trailer write fails (budget covers header + frames, trailer tips it).
	t.Run("trailer", func(t *testing.T) {
		var probe bytes.Buffer
		w := NewWriter(&probe, Params{Version: VersionSerial})
		if _, err := w.Write(input[:1024]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2 := NewWriter(&failingWriter{budget: probe.Len() - 1, err: sentinel}, Params{Version: VersionSerial})
		if _, err := w2.Write(input[:1024]); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); !errors.Is(err, sentinel) {
			t.Fatalf("trailer failure not surfaced by Close: %v", err)
		}
	})
}

// Compression errors inside a worker (not the underlying writer) must also
// surface and tear the pool down cleanly.
func TestWriterCompressionErrorMidStream(t *testing.T) {
	var buf bytes.Buffer
	// Window 1024 is invalid for the GPU kernels: every segment fails.
	w := NewWriterOptions(&buf, Params{Version: Version1, Window: 1024, HostWorkers: 2},
		StreamOptions{SegmentSize: 4 << 10})
	input := datasets.CFiles(64<<10, 6)
	var werr error
	for i := 0; i < 16 && werr == nil; i++ {
		_, werr = w.Write(input[i*4<<10 : (i+1)*4<<10])
	}
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("compression error never surfaced")
	}
}

// --- Reader behaviour ---------------------------------------------------

func TestReaderLegacyContainerStillOpens(t *testing.T) {
	input := datasets.Dictionary(48<<10, 7)
	container, err := Compress(input, Params{Version: Version2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(container), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(input) {
		t.Fatalf("legacy Reader.Len = %d, want %d", r.Len(), len(input))
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("legacy container round trip failed: %v", err)
	}
}

func TestReaderRejectsCorruptFrame(t *testing.T) {
	input := datasets.CFiles(40<<10, 8)
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: VersionSerial}, StreamOptions{SegmentSize: 8 << 10})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	// Flip a byte inside a container payload: the per-frame CRC must trip.
	corrupt := append([]byte(nil), stream...)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := drainStream(corrupt); err == nil {
		t.Fatal("corrupt frame decoded cleanly")
	}

	// Truncate mid-stream: must error (not silently EOF).
	if _, err := drainStream(stream[:len(stream)/2]); err == nil {
		t.Fatal("truncated stream decoded cleanly")
	}

	// Drop the trailer only: the reader must notice the missing trailer.
	if _, err := drainStream(stream[:len(stream)-5]); err == nil {
		t.Fatal("trailer-less stream decoded cleanly")
	}
}

func drainStream(stream []byte) ([]byte, error) {
	r, err := NewReader(bytes.NewReader(stream), Params{})
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

func TestReaderLenFramed(t *testing.T) {
	input := []byte(strings.Repeat("len probe ", 1000))
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: VersionSerial}, StreamOptions{SegmentSize: 4 << 10})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != nil {
		t.Fatal(err)
	}
	// After one byte, the rest of the first segment is buffered.
	if want := 4<<10 - 1; r.Len() != want {
		t.Fatalf("framed Reader.Len = %d, want %d", r.Len(), want)
	}
}

// --- bounded memory (the acceptance criterion) --------------------------

// patternSource deterministically generates a compressible synthetic
// stream without ever materialising it.
type patternSource struct {
	remaining int
	counter   uint64
}

func (p *patternSource) Read(b []byte) (int, error) {
	if p.remaining == 0 {
		return 0, io.EOF
	}
	n := len(b)
	if n > p.remaining {
		n = p.remaining
	}
	for i := 0; i < n; i++ {
		// 64-byte repeating lines with a slowly-advancing counter: highly
		// compressible, position-dependent, cheap to regenerate.
		pos := p.counter + uint64(i)
		b[i] = byte("log line #%d: sensor nominal, pressure steady, temp ok........\n"[pos%62]) ^ byte(pos>>16)
	}
	p.counter += uint64(n)
	p.remaining -= n
	return n, nil
}

// TestWriterBoundedMemory64MiB compresses a 64 MiB synthetic stream with
// SegmentSize = 1 MiB and asserts the pipeline's peak in-flight segment
// bytes stay O(SegmentSize × HostWorkers), then round-trips the framed
// output byte-identically through the incremental Reader — comparing
// against a regenerated stream so neither side ever buffers the payload.
func TestWriterBoundedMemory64MiB(t *testing.T) {
	const (
		totalLen = 64 << 20
		segSize  = 1 << 20
		workers  = 4
	)
	var framed bytes.Buffer
	w := NewWriterOptions(&framed, Params{Version: Version1, HostWorkers: workers},
		StreamOptions{SegmentSize: segSize})
	if _, err := io.Copy(w, &patternSource{remaining: totalLen}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The memory bound: at most `workers` segments queued for emission,
	// one in the emitter's hands, one mid-handoff in flush.
	if max, bound := w.maxInFlight(), (workers+2)*segSize; max > bound {
		t.Fatalf("peak in-flight segment bytes %d exceed O(SegmentSize x HostWorkers) bound %d", max, bound)
	}
	if framed.Len() >= totalLen/2 {
		t.Fatalf("synthetic stream barely compressed: %d of %d", framed.Len(), totalLen)
	}

	// Incremental round trip, streaming comparison.
	r, err := NewReader(&framed, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := &patternSource{remaining: totalLen}
	got := make([]byte, 256<<10)
	ref := make([]byte, 256<<10)
	var off int64
	for {
		n, err := r.Read(got)
		if n > 0 {
			if _, rerr := io.ReadFull(want, ref[:n]); rerr != nil {
				t.Fatalf("reference stream ended early at offset %d: %v", off, rerr)
			}
			if !bytes.Equal(got[:n], ref[:n]) {
				t.Fatalf("round trip mismatch at offset %d", off)
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if off != totalLen {
		t.Fatalf("decoded %d bytes, want %d", off, totalLen)
	}
	if want.remaining != 0 {
		t.Fatalf("reference stream has %d bytes left over", want.remaining)
	}
}

// --- concurrency (run with -race) ---------------------------------------

// TestConcurrentFramedWriters drives many independent Writers at once:
// the segment pipeline must be safe across instances.
func TestConcurrentFramedWriters(t *testing.T) {
	inputs := [][]byte{
		datasets.CFiles(64<<10, 21),
		datasets.DEMap(64<<10, 22),
		datasets.HighlyCompressible(64<<10, 23),
		datasets.Dictionary(64<<10, 24),
	}
	versions := []Version{Version1, Version2, VersionSerial, VersionParallel, VersionAuto}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			input := inputs[g%len(inputs)]
			var buf bytes.Buffer
			w := NewWriterOptions(&buf, Params{Version: versions[g%len(versions)], HostWorkers: 2},
				StreamOptions{SegmentSize: 16 << 10})
			if _, err := w.Write(input); err != nil {
				errs <- err
				return
			}
			if err := w.Close(); err != nil {
				errs <- err
				return
			}
			got, err := drainStream(buf.Bytes())
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, input) {
				errs <- fmt.Errorf("writer %d: round trip mismatch", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWriterTeardownAfterError hammers the error path: a failing sink
// must never leave Close hanging on the worker pool, whatever the timing.
func TestWriterTeardownAfterError(t *testing.T) {
	input := datasets.CFiles(32<<10, 25)
	for trial := 0; trial < 8; trial++ {
		w := NewWriterOptions(&failingWriter{budget: 50 * trial, err: errors.New("boom")},
			Params{Version: VersionSerial, HostWorkers: 3}, StreamOptions{SegmentSize: 2 << 10})
		for i := 0; i < 16; i++ {
			if _, err := w.Write(input[i*2<<10 : (i+1)*2<<10]); err != nil {
				break
			}
		}
		_ = w.Close() // must return, error or not
		if err := w.Close(); err != nil {
			t.Fatalf("trial %d: second Close = %v, want nil", trial, err)
		}
	}
}
