package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"culzss/internal/codec"
	"culzss/internal/format"
)

// maxSegmentFrameOverhead bounds the framing a segment record adds on
// top of its container: marker byte, three uvarints (index, rawLen,
// container length — all well under 2^28 here), and the frame CRC.
const maxSegmentFrameOverhead = 1 + 3*5 + 4

// TestAutoStoresIncompressibleStream is the raw-store acceptance test:
// an all-random stream framed under the adaptive selector must come out
// smaller than the same stream forced through V1 (whose bit-packed
// literals expand random bytes by ~12.5%), decode byte-identically, and
// never expand any single segment by more than the raw container header
// plus frame overhead.
func TestAutoStoresIncompressibleStream(t *testing.T) {
	const segSize = 64 << 10
	n := 4 << 20
	if testing.Short() {
		n = 1 << 20
	}
	input := make([]byte, n)
	rand.New(rand.NewSource(9001)).Read(input)

	frame := func(name string, onSeg func(SegmentReport)) []byte {
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, Params{HostWorkers: 4},
			StreamOptions{SegmentSize: segSize, Codec: name, OnSegment: onSeg})
		if _, err := w.Write(input); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
		return buf.Bytes()
	}

	var reports []SegmentReport
	auto := frame(codec.Auto, func(sr SegmentReport) { reports = append(reports, sr) })
	v1 := frame("v1", nil)

	if len(auto) >= len(v1) {
		t.Fatalf("adaptive stream (%d bytes) not smaller than forced V1 (%d bytes) on random input",
			len(auto), len(v1))
	}
	if len(reports) != n/segSize {
		t.Fatalf("OnSegment saw %d segments, want %d", len(reports), n/segSize)
	}
	for _, sr := range reports {
		// The selector must fall back to raw store on incompressible
		// segments and pay at most the container+frame header for it.
		if sr.Codec != format.CodecStoreRaw {
			t.Fatalf("segment %d: selector chose %v for random bytes, want raw store", sr.Index, sr.Codec)
		}
		if bound := sr.RawLen + codec.RawOverhead + maxSegmentFrameOverhead; sr.FrameLen > bound {
			t.Fatalf("segment %d: frame is %d bytes for %d raw, exceeds expansion bound %d",
				sr.Index, sr.FrameLen, sr.RawLen, bound)
		}
	}

	r, err := NewReader(bytes.NewReader(auto), Params{HostWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatalf("adaptive stream round trip mismatch: %d bytes in, %d out", len(input), len(got))
	}
}

// TestDecompressUnknownCodec pins the decode-dispatch contract for the
// codec byte's reserved headroom: a container whose codec value parses
// (structurally valid, [1, CodecMax]) but has no registered engine must
// fail with the typed unknown-codec error, not a parse error.
func TestDecompressUnknownCodec(t *testing.T) {
	payload := []byte("reserved-codec payload")
	unknown := format.Codec(9) // headroom: valid range, never assigned
	if !unknown.Valid() || unknown.Known() {
		t.Fatalf("codec %d is not a valid-but-unassigned headroom value", unknown)
	}
	h := &format.Header{
		Codec:       unknown,
		OriginalLen: len(payload),
		Checksum:    format.Checksum32(payload),
	}
	container := append(format.AppendHeader(nil, h), payload...)
	if _, _, err := format.ParseHeader(container); err != nil {
		t.Fatalf("headroom codec byte failed structural parse: %v", err)
	}

	_, err := Decompress(container, Params{})
	if err == nil {
		t.Fatal("decode dispatched a codec no engine claims")
	}
	if !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("error does not unwrap to ErrUnknownCodec: %v", err)
	}
	var uce *codec.UnknownCodecError
	if !errors.As(err, &uce) {
		t.Fatalf("error is not a typed *codec.UnknownCodecError: %v", err)
	}
	if uce.Codec != unknown {
		t.Fatalf("UnknownCodecError carries codec %v, want %v", uce.Codec, unknown)
	}

	// The streaming reader surfaces the same typed error for a framed
	// segment carrying the unregistered codec byte.
	var stream []byte
	stream = format.AppendStreamHeader(stream, 1<<10)
	stream = format.AppendSegmentFrame(stream, 0, len(payload), container)
	stream = format.AppendStreamTrailer(stream, &format.StreamTrailer{
		Segments: 1, TotalLen: len(payload), Checksum: format.Checksum32(payload),
	})
	r, err := NewReader(bytes.NewReader(stream), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("streaming decode of unregistered codec: %v", err)
	}
}
