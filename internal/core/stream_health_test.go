package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/health"
)

// deadDevice returns a device whose every launch fails.
func deadDevice() *cudasim.Device {
	d := cudasim.FermiGTX480()
	d.LaunchHook = func(ctx context.Context, kernel string) error {
		return errors.New("injected: device fell off the bus")
	}
	return d
}

// hangDevice returns a device whose every launch hangs until its context
// is cancelled, via the fault layer's latency rule.
func hangDevice(seed int64) *cudasim.Device {
	d := cudasim.FermiGTX480()
	inj := faults.New(seed).Hang(faults.SiteLaunch, time.Hour)
	d.LaunchHook = inj.LaunchHook()
	return d
}

// writeAll dribbles input through w in odd-sized writes.
func writeAll(t *testing.T, w *Writer, input []byte) {
	t.Helper()
	for off := 0; off < len(input); {
		n := 7777
		if off+n > len(input) {
			n = len(input) - off
		}
		if _, err := w.Write(input[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
}

// decodeStream round-trips a framed stream back to plaintext.
func decodeStream(t *testing.T, stream []byte) []byte {
	t.Helper()
	r, err := NewReader(bytes.NewReader(stream), Params{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// --- supervised streaming ----------------------------------------------

func TestWriterSupervisedChaosStream(t *testing.T) {
	// The acceptance scenario on the streaming path: a pool where one
	// device fails every launch and another hangs; the stream must
	// complete byte-identical to the healthy single-device stream, with
	// the supervisor's counters visible through Stats.
	input := datasets.CFiles(300<<10, 51)
	so := StreamOptions{SegmentSize: 64 << 10}

	var healthy bytes.Buffer
	hw := NewWriterOptions(&healthy, Params{Version: Version1, HostWorkers: 2}, so)
	writeAll(t, hw, input)
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}

	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: hangDevice(testSeed(7))},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: 50 * time.Millisecond, Deadline: 2 * time.Second})

	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 2, Health: sup}, so)
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(buf.Bytes(), healthy.Bytes()) {
		t.Fatal("supervised chaos stream differs from healthy stream")
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}

	st := w.Stats()
	if st.Redispatched == 0 {
		t.Fatalf("stats lack redispatches: %+v", st)
	}
	if st.TimedOut == 0 {
		t.Fatalf("hung device never watchdog-cut: %+v", st)
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("no breaker opened: %+v", st)
	}
	// The logbook must show the full quarantine cycle: Open (the sick
	// devices tripping) and HalfOpen (the 50ms quarantine elapsing and a
	// re-probe being admitted while later segments flow).
	var sawOpen, sawHalfOpen bool
	for _, ev := range sup.Events() {
		switch ev.To {
		case health.Open:
			sawOpen = true
		case health.HalfOpen:
			sawHalfOpen = true
		}
	}
	if !sawOpen || !sawHalfOpen {
		t.Fatalf("logbook lacks open/half-open cycle: %v", sup.Events())
	}
}

func TestWriterSupervisedAllDeadDegrades(t *testing.T) {
	input := datasets.CFiles(150<<10, 52)
	so := StreamOptions{SegmentSize: 64 << 10, Retry: RetryPolicy{MaxAttempts: 1}}

	var healthy bytes.Buffer
	hw := NewWriterOptions(&healthy, Params{Version: Version1, HostWorkers: 2}, so)
	writeAll(t, hw, input)
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}

	sup := health.NewPool(deadDevice(), 2, health.Policy{Threshold: 1, OpenFor: time.Hour})
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 2, Health: sup}, so)
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), healthy.Bytes()) {
		t.Fatal("fully-degraded stream differs from healthy stream")
	}
	st := w.Stats()
	if st.Degraded == 0 || st.Quarantined != 2 {
		t.Fatalf("stats: %+v, want degraded segments and a fully quarantined pool", st)
	}
}

func TestCompressOneShotSupervisedDegrade(t *testing.T) {
	input := datasets.DEMap(64<<10, 53)
	want, err := Compress(input, Params{Version: Version1})
	if err != nil {
		t.Fatal(err)
	}
	sup := health.NewPool(deadDevice(), 2, health.Policy{Threshold: 1, OpenFor: time.Hour})
	got, rep, err := CompressWithReport(input, Params{Version: Version1, Health: sup})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("degraded one-shot call returned a device report")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("supervised one-shot container differs from plain V1")
	}
	out, err := Decompress(got, Params{})
	if err != nil || !bytes.Equal(out, input) {
		t.Fatalf("round trip: %v", err)
	}
}

// --- admission control and per-segment deadline -------------------------

func TestWriterAdmissionBound(t *testing.T) {
	input := datasets.HighlyCompressible(2<<20, 54)
	const seg = 64 << 10
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: VersionSerial, HostWorkers: 8},
		StreamOptions{SegmentSize: seg, MaxInFlight: 2})
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// cap(pending)+2 segments may exist at once: MaxInFlight queued for
	// emission, one held by the emitter awaiting its result, and one
	// mid-handoff in a worker — the same O(SegmentSize x bound) formula
	// the bounded-memory test asserts, with MaxInFlight as the bound
	// instead of HostWorkers.
	if limit := (2 + 2) * seg; w.maxInFlight() > limit {
		t.Fatalf("in-flight high water %d exceeds admission bound %d", w.maxInFlight(), limit)
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriterSegmentDeadlineDegrades(t *testing.T) {
	// Every launch hangs and there is no supervisor: the per-segment
	// deadline is the only thing standing between the stream and a
	// wedge. Expiry must degrade the segment to the CPU encoder, not
	// fail the stream.
	input := datasets.CFiles(100<<10, 55)
	var buf bytes.Buffer
	start := time.Now()
	w := NewWriterOptions(&buf, Params{Version: Version1, Device: hangDevice(testSeed(7)), HostWorkers: 2},
		StreamOptions{
			SegmentSize:     64 << 10,
			SegmentDeadline: 100 * time.Millisecond,
			Retry:           RetryPolicy{MaxAttempts: 2},
		})
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stream took %v; hung launches leaked past the segment deadline", elapsed)
	}
	if st := w.Stats(); st.Degraded == 0 {
		t.Fatalf("stats: %+v, want every segment degraded", st)
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
}

// --- graceful drain ------------------------------------------------------

func TestWriterDrainOnCancelEmitsValidTrailer(t *testing.T) {
	// Accept a few segments plus a partial tail, cancel, then Close: the
	// drain mode must still compress everything accepted (degrading off
	// the now-cancelled GPU path) and emit a trailer covering it.
	input := datasets.CFiles(200<<10, 56)
	const seg = 64 << 10
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 2}, StreamOptions{
		SegmentSize:   seg,
		Context:       ctx,
		DrainOnCancel: true,
		Retry:         RetryPolicy{MaxAttempts: 1},
	})
	writeAll(t, w, input) // 3 full segments + a partial tail buffered
	cancel()
	// Admission stops: new bytes are refused with the context's error.
	if _, err := w.Write([]byte("more")); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Write err = %v, want context.Canceled", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("drain Close: %v", err)
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatalf("drained stream serves %d bytes, want the %d accepted", len(got), len(input))
	}
}

func TestWriterDrainFinishesInFlightUnderDeadDevice(t *testing.T) {
	// Harder drain: the GPU is dead AND the context is cancelled before
	// Close; the in-flight segments must still complete via the CPU
	// fallback running outside the cancelled context.
	input := datasets.CFiles(130<<10, 57)
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, Device: deadDevice(), HostWorkers: 2}, StreamOptions{
		SegmentSize:   64 << 10,
		Context:       ctx,
		DrainOnCancel: true,
		Retry:         RetryPolicy{MaxAttempts: 1},
	})
	writeAll(t, w, input)
	cancel()
	if err := w.Close(); err != nil {
		t.Fatalf("drain Close: %v", err)
	}
	if st := w.Stats(); st.Degraded == 0 {
		t.Fatalf("stats: %+v, want degraded segments", st)
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("drained stream does not serve the accepted bytes")
	}
}

func TestWriterDefaultCancelStillFailsFast(t *testing.T) {
	// Without DrainOnCancel the PR-2 behaviour is preserved: a cancelled
	// context fails the stream.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1}, StreamOptions{Context: ctx})
	if _, err := w.Write([]byte("data")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write err = %v, want context.Canceled", err)
	}
}

// --- soak: sustained FailProb + hang mix must never wedge ----------------

func TestWriterChaosSoak(t *testing.T) {
	// CI's chaos job: a sustained stream over a pool mixing probabilistic
	// launch failures with first-launch hangs, under -race. The assertion
	// is liveness plus byte-exactness: nothing wedges, nothing corrupts.
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	input := datasets.KernelTarball(400<<10, 58)
	so := StreamOptions{SegmentSize: 32 << 10, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}

	var healthy bytes.Buffer
	hw := NewWriterOptions(&healthy, Params{Version: Version1, HostWorkers: 2}, so)
	writeAll(t, hw, input)
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}

	flaky := cudasim.FermiGTX480()
	flaky.LaunchHook = faults.New(testSeed(7)).FailProb(faults.SiteLaunch, 0.4).LaunchHook()
	sticky := cudasim.FermiGTX480()
	sticky.LaunchHook = faults.New(testSeed(7)+1).HangFirst(faults.SiteLaunch, 2, time.Hour).LaunchHook()

	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: flaky},
		{Device: sticky},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 2, OpenFor: 30 * time.Millisecond, Deadline: 2 * time.Second})

	start := time.Now()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 3, Health: sup}, so)
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Fatalf("soak took %v — something is close to wedged", elapsed)
	}
	if !bytes.Equal(buf.Bytes(), healthy.Bytes()) {
		t.Fatal("soak stream differs from healthy stream")
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("soak round trip mismatch")
	}
	t.Logf("soak stats: %+v", w.Stats())
	t.Logf("soak events: %d breaker transitions", len(sup.Events()))
}
