package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/format"
)

// testSeed returns the pinned fault seed (CULZSS_FAULT_SEED, default def)
// so the CI fault matrix and local runs inject the same schedule.
func testSeed(def int64) int64 {
	if s := os.Getenv("CULZSS_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// fastRetry keeps the injected-fault tests quick: microsecond backoffs,
// default three attempts.
func fastRetry() RetryPolicy {
	return RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
}

// streamWith compresses data through a Writer with the given params and
// returns the framed stream plus the writer stats.
func streamWith(t *testing.T, data []byte, p Params, o StreamOptions) ([]byte, WriterStats) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, p, o)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes(), w.Stats()
}

// readAll drains a Reader built over stream with the given options.
func readAll(t *testing.T, stream []byte, o ReaderOptions) ([]byte, *Reader) {
	t.Helper()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		t.Fatalf("read: %v", err)
	}
	return out.Bytes(), r
}

// --- acceptance (a): transient faults are retried to success -----------

func TestWriterRetriesTransientLaunchFaults(t *testing.T) {
	data := datasets.CFiles(64<<10, 11)
	inj := faults.New(testSeed(7)).FailFirst(faults.SiteLaunch, 2)
	p := Params{Version: Version1, HostWorkers: 1, Injector: inj}
	o := StreamOptions{SegmentSize: 16 << 10, Retry: fastRetry()}

	stream, ws := streamWith(t, data, p, o)
	if ws.Segments != 4 {
		t.Fatalf("segments = %d, want 4", ws.Segments)
	}
	// The first segment's first two launches fail; the third succeeds.
	if ws.Retries != 2 {
		t.Fatalf("retries = %d, want 2", ws.Retries)
	}
	if ws.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0 (faults were transient)", ws.Degraded)
	}
	got, _ := readAll(t, stream, ReaderOptions{})
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch after transient faults")
	}

	// The injector saw exactly the probes the stats claim.
	c := inj.Counts(faults.SiteLaunch)
	if c.Injected != 2 {
		t.Fatalf("injector reports %d injected launch faults, want 2", c.Injected)
	}
}

// --- acceptance (b): persistent faults degrade to the CPU encoder ------

func TestWriterDegradesPersistentFaultsBitIdentically(t *testing.T) {
	data := datasets.CFiles(64<<10, 11)
	o := StreamOptions{SegmentSize: 16 << 10, Retry: fastRetry()}

	clean, ws := streamWith(t, data, Params{Version: Version1, HostWorkers: 1}, o)
	if ws.Degraded != 0 || ws.Retries != 0 {
		t.Fatalf("clean run recorded faults: %+v", ws)
	}

	inj := faults.New(testSeed(7)).Always(faults.SiteLaunch)
	faulty, ws := streamWith(t, data, Params{Version: Version1, HostWorkers: 1, Injector: inj}, o)
	if ws.Degraded != ws.Segments || ws.Segments != 4 {
		t.Fatalf("stats = %+v, want all 4 segments degraded", ws)
	}
	if ws.Retries != 4*2 {
		t.Fatalf("retries = %d, want 8 (two extra attempts per segment)", ws.Retries)
	}

	// The degrade path is bit-compatible: the stream a dead GPU produces
	// is byte-identical to the healthy stream.
	if !bytes.Equal(clean, faulty) {
		t.Fatal("degraded stream differs from the healthy stream")
	}
	got, _ := readAll(t, faulty, ReaderOptions{})
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch after degradation")
	}
}

func TestWriterDisableFallbackFailsStream(t *testing.T) {
	data := datasets.CFiles(32<<10, 11)
	inj := faults.New(testSeed(7)).Always(faults.SiteLaunch)
	pol := fastRetry()
	pol.DisableFallback = true
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 1, Injector: inj},
		StreamOptions{SegmentSize: 16 << 10, Retry: pol})
	_, werr := w.Write(data)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("stream succeeded with fallback disabled and a dead GPU")
	}
	err := cerr
	if err == nil {
		err = werr
	}
	if !faults.IsInjected(err) {
		t.Fatalf("failure does not unwrap to the injected fault: %v", err)
	}
}

// --- acceptance (c): salvage decode of a damaged stream ----------------

func TestSalvageRecoversAllButDamagedSegment(t *testing.T) {
	data := datasets.CFiles(64<<10, 11)
	const segSize = 16 << 10
	stream, _ := streamWith(t, data, Params{Version: VersionSerial, HostWorkers: 1},
		StreamOptions{SegmentSize: segSize})
	damaged := append([]byte{}, stream...)
	damaged[len(damaged)/2] ^= 0x20 // inside some segment's container

	// Strict decode refuses the stream.
	r, err := NewReader(bytes.NewReader(damaged), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := new(bytes.Buffer).ReadFrom(r); err == nil {
		t.Fatal("strict decode accepted a damaged stream")
	}

	// Salvage decode delivers everything but the damaged segment and
	// reports the damage, both through CorruptSegments and the callback.
	var fromCallback []*format.CorruptSegmentError
	got, sr := readAll(t, damaged, ReaderOptions{
		Salvage:   true,
		OnCorrupt: func(cse *format.CorruptSegmentError) { fromCallback = append(fromCallback, cse) },
	})
	damagedRegions := sr.CorruptSegments()
	if len(damagedRegions) != 1 {
		t.Fatalf("recorded %d damaged regions, want 1: %v", len(damagedRegions), damagedRegions)
	}
	if len(fromCallback) != 1 || fromCallback[0] != damagedRegions[0] {
		t.Fatalf("OnCorrupt saw %v, CorruptSegments %v", fromCallback, damagedRegions)
	}
	cse := damagedRegions[0]
	if cse.Index < 0 || cse.Index > 3 {
		t.Fatalf("damaged segment index %d out of range", cse.Index)
	}
	if cse.Skipped <= 0 || cse.Offset <= 0 {
		t.Fatalf("damaged region lacks a byte range: %+v", cse)
	}
	if !errors.Is(cse, format.ErrFrameChecksum) {
		t.Fatalf("cause is not the frame checksum failure: %v", cse)
	}
	// Recovered bytes = original minus exactly the damaged segment.
	lo := cse.Index * segSize
	hi := lo + segSize
	if hi > len(data) {
		hi = len(data)
	}
	want := append(append([]byte{}, data[:lo]...), data[hi:]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("salvaged %d bytes, want original minus segment %d (%d bytes)",
			len(got), cse.Index, len(want))
	}
}

// TestSalvageSurvivesFrameBitFlips drives the injector's corrupting
// writer over the whole stream: whatever the flips hit, salvage must
// never panic and every delivered byte must come from intact, in-order
// segments of the original.
func TestSalvageSurvivesFrameBitFlips(t *testing.T) {
	data := datasets.CFiles(128<<10, 11)
	const segSize = 8 << 10
	stream, _ := streamWith(t, data, Params{Version: VersionSerial, HostWorkers: 1},
		StreamOptions{SegmentSize: segSize})

	// Cut the plaintext the way the Writer did, for the subsequence check.
	var segments [][]byte
	for off := 0; off < len(data); off += segSize {
		end := off + segSize
		if end > len(data) {
			end = len(data)
		}
		segments = append(segments, data[off:end])
	}

	inj := faults.New(testSeed(7))
	var corrupted bytes.Buffer
	cw := inj.CorruptWriter(&corrupted, 4<<10) // a flip every ~4 KiB on average
	if _, err := cw.Write(stream); err != nil {
		t.Fatal(err)
	}

	r, err := NewReaderOptions(bytes.NewReader(corrupted.Bytes()), Params{}, ReaderOptions{Salvage: true})
	if err != nil {
		if errors.Is(err, format.ErrBadStreamMagic) || errors.Is(err, format.ErrBadVersion) ||
			errors.Is(err, format.ErrCorrupt) || errors.Is(err, format.ErrTruncated) {
			t.Skipf("flips destroyed the stream header: %v", err)
		}
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		t.Fatalf("salvage read failed outright: %v", err)
	}
	if len(r.CorruptSegments()) == 0 {
		t.Fatal("bit-flipped stream decoded without recording any damage")
	}
	// Every delivered byte must belong to an intact segment, in order.
	got := out.Bytes()
	seg := 0
	for len(got) > 0 {
		matched := false
		for ; seg < len(segments); seg++ {
			if bytes.HasPrefix(got, segments[seg]) {
				got = got[len(segments[seg]):]
				seg++
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("salvaged output is not an in-order subsequence of the original segments (%d bytes unmatched)", len(got))
		}
	}
}

// --- context plumbing ---------------------------------------------------

func TestWriterHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: VersionSerial},
		StreamOptions{SegmentSize: 4 << 10, Context: ctx})
	if _, err := w.Write(datasets.CFiles(16<<10, 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write under cancelled context: %v", err)
	}
}

func TestReaderHonoursCancelledContext(t *testing.T) {
	data := datasets.CFiles(16<<10, 3)
	stream, _ := streamWith(t, data, Params{Version: VersionSerial},
		StreamOptions{SegmentSize: 4 << 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Read under cancelled context: %v", err)
	}
}

// TestDeterministicUnderSeed locks the whole fault schedule to the seed:
// two identical runs must produce identical streams, stats, and injector
// counters.
func TestDeterministicUnderSeed(t *testing.T) {
	data := datasets.DEMap(64<<10, 11)
	run := func() ([]byte, WriterStats, faults.Counts) {
		inj := faults.New(testSeed(7)).FailEvery(faults.SiteLaunch, 3)
		p := Params{Version: Version1, HostWorkers: 1, Injector: inj}
		stream, ws := streamWith(t, data, p, StreamOptions{SegmentSize: 16 << 10, Retry: fastRetry()})
		return stream, ws, inj.Counts(faults.SiteLaunch)
	}
	s1, ws1, c1 := run()
	s2, ws2, c2 := run()
	if !bytes.Equal(s1, s2) {
		t.Fatal("streams differ across identically-seeded runs")
	}
	if ws1 != ws2 {
		t.Fatalf("writer stats differ: %+v vs %+v", ws1, ws2)
	}
	if c1 != c2 {
		t.Fatalf("injector counters differ: %+v vs %+v", c1, c2)
	}
	got, _ := readAll(t, s1, ReaderOptions{})
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}
