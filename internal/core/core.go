// Package core is the CULZSS library surface — the in-memory compression
// API of the paper's Figure 2, with the version-selection parameter, the
// tuning knobs promised in §VII (window size, threads per block), file
// I/O helpers for the standalone-program mode, and io.Reader/io.Writer
// streaming adapters.
//
// The paper's interface is
//
//	Gpu_init(); Gpu_compress(buf, len, out, params); Gpu_decompress(...)
//
// which maps here to Init (device detection), Compress / Decompress, and
// Params. Decompress dispatches on the container's codec, so any stream
// produced by this repository — GPU V1/V2, serial, pthread, bzip2 — opens
// with the same call.
package core

import (
	"context"
	"fmt"
	"os"

	"culzss/internal/bzip2"
	"culzss/internal/codec"
	"culzss/internal/cpulzss"
	"culzss/internal/cudasim"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/gpu"
	"culzss/internal/health"
	"culzss/internal/lzss"
	"culzss/internal/obs"
)

// Version selects which implementation compresses the data, mirroring the
// paper's API parameter ("Users of our library can specify the version on
// the API call", §V).
type Version int

// Version values.
const (
	// VersionAuto samples the input and picks V1 or V2 by its
	// compressibility: §V — V2 "gives best performance gain mainly on
	// files that are around 50% compressible or less", V1 wins on highly
	// compressible data.
	VersionAuto Version = iota
	// Version1 is the chunk-per-thread GPU kernel.
	Version1
	// Version2 is the match-per-thread GPU kernel.
	Version2
	// VersionSerial is the serial CPU implementation (the paper's
	// baseline; useful without a GPU).
	VersionSerial
	// VersionParallel is the pthread-style chunked CPU implementation.
	VersionParallel
	// VersionBZip2 is the from-scratch BZIP2 baseline (the program the
	// paper compares against), behind the same API.
	VersionBZip2
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case VersionAuto:
		return "auto"
	case Version1:
		return "culzss-v1"
	case Version2:
		return "culzss-v2"
	case VersionSerial:
		return "serial"
	case VersionParallel:
		return "parallel"
	case VersionBZip2:
		return "bzip2"
	default:
		return fmt.Sprintf("version(%d)", int(v))
	}
}

// Params are the compression parameters of the paper's API. The zero
// value is ready to use: automatic version selection with the paper's
// defaults (4 KiB chunks, 128 threads/block, 128-byte window).
type Params struct {
	// Version picks the implementation; VersionAuto samples the input.
	Version Version
	// ChunkSize is the per-chunk granularity; 0 means the version's
	// default (4 KiB for the GPU kernels, 256 KiB for the CPU parallel).
	ChunkSize int
	// ThreadsPerBlock is the GPU block width; 0 means 128 (§III.D).
	ThreadsPerBlock int
	// Window overrides the sliding-window size (§VII's tuning API);
	// 0 means the version's preset. GPU versions accept at most 256.
	Window int
	// MaxMatch overrides the maximum match length; 0 means the preset.
	MaxMatch int
	// Device is the simulated GPU; nil uses the device detected by Init.
	Device *cudasim.Device
	// HostWorkers bounds host-side parallelism; 0 means GOMAXPROCS.
	HostWorkers int
	// Stats, when non-nil, accumulates search statistics.
	Stats *lzss.SearchStats
	// Injector, when non-nil, arms the seeded fault-injection layer
	// (internal/faults) on the GPU paths: kernel launches, simulated
	// transfers, and per-chunk decode probe it for injected failures.
	// Production callers leave it nil; the nil Injector is inert.
	Injector *faults.Injector
	// Health, when non-nil, supervises the GPU paths with a device pool:
	// Version1 compressions route over healthy devices through per-device
	// circuit breakers and the watchdog, re-dispatching failures and
	// degrading to the byte-identical host encoder when the whole pool is
	// quarantined. The streaming Writer additionally reports the
	// supervisor's counters through Stats. Nil keeps the legacy
	// single-device fail-fast dispatch.
	Health *health.Supervisor
	// Obs, when non-nil, mirrors the run into the observability layer
	// (internal/obs): the GPU paths report launch counters and stage
	// timings, the streaming Writer/Reader report segment counters and
	// lifecycle spans, and the health supervisor's counters appear when
	// its Policy carries the same registry. Nil is inert — production
	// paths that never arm it pay a pointer test.
	Obs *obs.Registry
}

// Info describes the detected (simulated) device, the paper's
// "library gets initialized when loaded, detects GPUs, and determines
// capabilities" step.
type Info struct {
	Device      *cudasim.Device
	CUDACores   int
	SharedPerSM int
}

// Init performs device detection and returns the capability report.
func Init() *Info {
	d := cudasim.FermiGTX480()
	return &Info{Device: d, CUDACores: d.SMs * d.CoresPerSM, SharedPerSM: d.SharedMemPerSM}
}

// gpuConfig assembles the LZSS configuration for a GPU version, applying
// the tuning overrides.
func (p *Params) gpuConfig(v Version) (lzss.Config, error) {
	cfg := lzss.CULZSSV1()
	if v == Version2 {
		cfg = lzss.CULZSSV2()
	}
	if p.Window > 0 {
		cfg.Window = p.Window
	}
	if p.MaxMatch > 0 {
		cfg.MaxMatch = p.MaxMatch
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Window > 256 {
		return cfg, fmt.Errorf("core: GPU versions need window <= 256, got %d", cfg.Window)
	}
	return cfg, nil
}

// cpuConfig assembles the LZSS configuration for the CPU versions.
func (p *Params) cpuConfig() (lzss.Config, error) {
	cfg := lzss.Dipperstein()
	if p.Window > 0 {
		cfg.Window = p.Window
	}
	if p.MaxMatch > 0 {
		cfg.MaxMatch = p.MaxMatch
	}
	return cfg, cfg.Validate()
}

// SelectVersion implements the automatic choice: it compresses a small
// sample and picks Version1 for highly compressible data, Version2
// otherwise (§V's guidance, Table I's crossover).
func SelectVersion(data []byte) Version {
	const sampleLen = 32 << 10
	sample := data
	if len(sample) > sampleLen {
		// Sample from the middle: file headers are unrepresentative.
		start := (len(data) - sampleLen) / 2
		sample = data[start : start+sampleLen]
	}
	if len(sample) == 0 {
		return Version2
	}
	comp, err := lzss.EncodeByteAligned(sample, lzss.CULZSSV1(), lzss.SearchHashChain, nil)
	if err != nil {
		return Version2
	}
	ratio := float64(len(comp)) / float64(len(sample))
	// Table II: DE map (34%) and highly-compressible (14%) favour V1;
	// C files / kernel (~55%) and dictionary (~61%) favour V2.
	if ratio < 0.45 {
		return Version1
	}
	return Version2
}

// Compress compresses data in memory per the paper's Gpu_compress: the
// returned buffer is a self-describing container.
func Compress(data []byte, p Params) ([]byte, error) {
	out, _, err := CompressWithReport(data, p)
	return out, err
}

// CompressWithReport additionally returns the GPU performance report
// (nil for the CPU versions).
func CompressWithReport(data []byte, p Params) ([]byte, *gpu.Report, error) {
	v := p.Version
	if v == VersionAuto {
		v = SelectVersion(data)
	}
	switch v {
	case Version1, Version2:
		cfg, err := p.gpuConfig(v)
		if err != nil {
			return nil, nil, err
		}
		opts := gpu.Options{
			Device:          p.Device,
			ChunkSize:       p.ChunkSize,
			ThreadsPerBlock: p.ThreadsPerBlock,
			Config:          cfg,
			HostWorkers:     p.HostWorkers,
			Stats:           p.Stats,
			Injector:        p.Injector,
			Health:          p.Health,
			Obs:             p.Obs,
		}
		if v == Version1 {
			// With a supervisor, the one-shot call rides the device pool
			// (redispatch + byte-identical CPU degrade); the report is nil
			// for a degraded run.
			cont, rep, _, err := gpu.CompressV1Supervised(data, opts, -1, "compress")
			return cont, rep, err
		}
		return gpu.CompressV2(data, opts)
	case VersionSerial:
		cfg, err := p.cpuConfig()
		if err != nil {
			return nil, nil, err
		}
		out, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: cfg, Stats: p.Stats})
		return out, nil, err
	case VersionParallel:
		cfg, err := p.cpuConfig()
		if err != nil {
			return nil, nil, err
		}
		out, err := cpulzss.CompressParallel(data, cpulzss.Options{
			Config: cfg, ChunkSize: p.ChunkSize, Workers: p.HostWorkers, Stats: p.Stats,
		})
		return out, nil, err
	case VersionBZip2:
		out, err := bzip2.Compress(data, bzip2.Options{BlockSize: p.ChunkSize, Workers: p.HostWorkers})
		return out, nil, err
	default:
		return nil, nil, fmt.Errorf("core: unknown version %v", p.Version)
	}
}

// Decompress expands any container produced by this repository,
// dispatching on the recorded codec.
func Decompress(container []byte, p Params) ([]byte, error) {
	out, _, err := DecompressWithReport(container, p)
	return out, err
}

// DecompressWithReport additionally returns the GPU report for GPU-coded
// containers (nil otherwise).
func DecompressWithReport(container []byte, p Params) ([]byte, *gpu.Report, error) {
	return decompressInto(nil, container, p, nil, p.HostWorkers)
}

// decompressInto is the decode core shared by Decompress and the
// streaming Reader's pipeline workers: Decompress with a caller-provided
// output buffer (honoured by the GPU codecs — the CPU codecs allocate
// their own), an explicit host-worker bound, and a cancellation context
// threaded through to the simulated device. A nil ctx means no
// cancellation; workers <= 0 means GOMAXPROCS (the gpu layer's default).
func decompressInto(dst, container []byte, p Params, ctx context.Context, workers int) ([]byte, *gpu.Report, error) {
	h, _, err := format.ParseHeader(container)
	if err != nil {
		return nil, nil, err
	}
	eng, ok := codec.Lookup(h.Codec)
	if !ok {
		return nil, nil, &codec.UnknownCodecError{Codec: h.Codec}
	}
	return eng.DecompressInto(dst, container, gpu.Options{
		Device: p.Device, ThreadsPerBlock: p.ThreadsPerBlock, HostWorkers: workers,
		Injector: p.Injector, Obs: p.Obs, Context: ctx,
	})
}

// ErrUnknownCodec re-exports the registry's sentinel: Decompress (and the
// streaming Reader) return an error matching it — and carrying the codec
// value via *codec.UnknownCodecError — when a container's codec byte is
// structurally valid but no registered engine claims it.
var ErrUnknownCodec = codec.ErrUnknownCodec

// engineOptions maps Params onto the gpu.Options an engine consumes,
// resolving the LZSS configuration preset that matches the engine's
// codec family (GPU presets for V1/V2, the Dipperstein preset for the
// bit-packed CPU codecs; bzip2 and raw take no LZSS config).
func (p *Params) engineOptions(eng codec.Engine) (gpu.Options, error) {
	opts := gpu.Options{
		Device:          p.Device,
		ChunkSize:       p.ChunkSize,
		ThreadsPerBlock: p.ThreadsPerBlock,
		HostWorkers:     p.HostWorkers,
		Stats:           p.Stats,
		Injector:        p.Injector,
		Health:          p.Health,
		Obs:             p.Obs,
	}
	var err error
	switch eng.Codec() {
	case format.CodecCULZSSV1:
		opts.Config, err = p.gpuConfig(Version1)
	case format.CodecCULZSSV2:
		opts.Config, err = p.gpuConfig(Version2)
	case format.CodecSerialBitPacked, format.CodecChunkedBitPacked:
		opts.Config, err = p.cpuConfig()
	}
	return opts, err
}

// CompressCodec compresses data with a registry engine chosen by name
// ("v1", "v2", "cpu", "pthread", "bzip2", "raw"), or adaptively per
// input when name is codec.Auto. Accelerated engines ride the supervised
// dispatch ladder when Params.Health is armed, exactly like Compress.
func CompressCodec(data []byte, name string, p Params) ([]byte, *gpu.Report, error) {
	eng, err := resolveEngine(name, data)
	if err != nil {
		return nil, nil, err
	}
	opts, err := p.engineOptions(eng)
	if err != nil {
		return nil, nil, err
	}
	if eng.Accelerated() {
		cont, rep, _, err := gpu.CompressSupervised(eng, data, opts, -1, "compress")
		return cont, rep, err
	}
	return eng.Compress(data, opts)
}

// resolveEngine maps a StreamOptions.Codec / CLI codec name to an engine,
// running the adaptive selector for codec.Auto.
func resolveEngine(name string, data []byte) (codec.Engine, error) {
	if name == codec.Auto {
		return codec.Select(data), nil
	}
	eng, ok := codec.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown codec %q (registered: %v, or %q)", name, codec.Names(), codec.Auto)
	}
	return eng, nil
}

// CompressFile is the standalone I/O mode: it reads src, compresses with
// p, and writes the container to dst.
func CompressFile(src, dst string, p Params) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	out, err := Compress(data, p)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, out, 0o644)
}

// DecompressFile reads a container from src and writes the expansion to
// dst.
func DecompressFile(src, dst string, p Params) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	out, err := Decompress(data, p)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, out, 0o644)
}
