package core

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/health"
	"culzss/internal/obs"
)

// The invariant these tests pin down: every observability counter is
// incremented at the same code site as the native counter it mirrors, so
// a fresh registry's totals must equal Writer.Stats() EXACTLY — not
// approximately, not eventually — even under the chaos configurations of
// the fault-injection and device-health PRs. A monitoring stack alerting
// on culzss_writer_degraded_total depends on precisely this.

// counterVal reads a label-free counter, tolerating one that was never
// created (a run with no degrades never touches the degraded counter).
func counterVal(reg *obs.Registry, name string, labels ...obs.Label) int64 {
	return reg.Counter(name, labels...).Value()
}

func TestWriterMetricsReconcileUnderChaos(t *testing.T) {
	// The TestWriterChaosSoak pool: a probabilistically flaky device, a
	// sticky device that hangs its first two launches, and a healthy
	// sibling — retries, redispatches, watchdog timeouts, breaker opens,
	// and (with MaxAttempts 2) possible degrades all occur.
	input := datasets.KernelTarball(200<<10, 58)
	so := StreamOptions{SegmentSize: 32 << 10, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}

	flaky := cudasim.FermiGTX480()
	flaky.LaunchHook = faults.New(testSeed(7)).FailProb(faults.SiteLaunch, 0.4).LaunchHook()
	sticky := cudasim.FermiGTX480()
	sticky.LaunchHook = faults.New(testSeed(7)+1).HangFirst(faults.SiteLaunch, 2, time.Hour).LaunchHook()

	reg := obs.NewRegistry()
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: flaky},
		{Device: sticky},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 2, OpenFor: 30 * time.Millisecond, Deadline: 300 * time.Millisecond, Obs: reg})

	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 3, Health: sup, Obs: reg}, so)
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("chaos round trip mismatch")
	}

	// Read Stats() first: it snapshots the supervisor, and the gauge is
	// only moved by the same locked transitions that snapshot ripens.
	st := w.Stats()
	checks := []struct {
		series string
		want   int
	}{
		{"culzss_writer_segments_total", st.Segments},
		{"culzss_writer_retries_total", st.Retries},
		{"culzss_writer_degraded_total", st.Degraded},
		{"culzss_health_watchdog_timeouts_total", st.TimedOut},
		{"culzss_health_redispatches_total", st.Redispatched},
		{"culzss_health_breaker_opens_total", st.BreakerOpens},
	}
	for _, c := range checks {
		if got := counterVal(reg, c.series); got != int64(c.want) {
			t.Errorf("%s = %d, Writer.Stats says %d", c.series, got, c.want)
		}
	}
	if got := reg.Gauge("culzss_health_quarantined_devices").Value(); got != int64(st.Quarantined) {
		t.Errorf("culzss_health_quarantined_devices = %d, Writer.Stats says %d", got, st.Quarantined)
	}
	if got := counterVal(reg, "culzss_writer_bytes_in_total"); got != int64(len(input)) {
		t.Errorf("culzss_writer_bytes_in_total = %d, wrote %d", got, len(input))
	}
	if got := counterVal(reg, "culzss_writer_bytes_out_total"); got <= 0 || got > int64(buf.Len()) {
		t.Errorf("culzss_writer_bytes_out_total = %d, stream is %d bytes", got, buf.Len())
	}
	if st.Retries == 0 && st.Redispatched == 0 {
		t.Fatalf("chaos pool produced no retries or redispatches; the reconciliation proved nothing: %+v", st)
	}
	t.Logf("chaos stats reconciled: %+v", st)

	// The lifecycle spans must cover the whole pipeline: every segment
	// gets read, dispatch, and frame-emit spans, plus one kernel span per
	// device attempt.
	stages := map[string]int{}
	for _, sp := range reg.Tracer().Spans() {
		stages[sp.Stage]++
	}
	for _, stage := range []string{"read", "dispatch", "kernel", "frame-emit"} {
		if stages[stage] == 0 {
			t.Errorf("no %q spans recorded; saw %v", stage, stages)
		}
	}
}

func TestWriterStatsMatchSupervisorSnapshot(t *testing.T) {
	// The quarantined gauge must agree with the supervisor's own
	// Snapshot(): both ride the same locked transition function.
	reg := obs.NewRegistry()
	sup := health.NewPool(deadDevice(), 2, health.Policy{Threshold: 1, OpenFor: time.Hour, Obs: reg})
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 2, Health: sup, Obs: reg},
		StreamOptions{SegmentSize: 32 << 10, Retry: RetryPolicy{MaxAttempts: 1}})
	writeAll(t, w, datasets.CFiles(100<<10, 59))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap := sup.Snapshot()
	if got := reg.Gauge("culzss_health_quarantined_devices").Value(); got != int64(snap.Quarantined) {
		t.Fatalf("gauge %d, Snapshot().Quarantined %d", got, snap.Quarantined)
	}
	if snap.Quarantined != 2 {
		t.Fatalf("dead pool not fully quarantined: %+v", snap)
	}
	if got := counterVal(reg, "culzss_writer_degraded_total"); got != int64(w.Stats().Degraded) || got == 0 {
		t.Fatalf("degraded counter %d, stats %d", got, w.Stats().Degraded)
	}
}

func TestReaderMetricsReconcile(t *testing.T) {
	input := datasets.CFiles(150<<10, 60)
	stream, ws := streamWith(t, input, Params{Version: VersionSerial, HostWorkers: 2},
		StreamOptions{SegmentSize: 16 << 10})

	reg := obs.NewRegistry()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{Obs: reg}, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, input) {
		t.Fatal("round trip mismatch")
	}
	if got := counterVal(reg, "culzss_reader_segments_total"); got != int64(ws.Segments) {
		t.Errorf("culzss_reader_segments_total = %d, Writer emitted %d", got, ws.Segments)
	}
	if got := counterVal(reg, "culzss_reader_bytes_out_total"); got != int64(len(input)) {
		t.Errorf("culzss_reader_bytes_out_total = %d, served %d", got, len(input))
	}
	if got := counterVal(reg, "culzss_frames_read_total"); got != 0 {
		// Frame reads are labelled by kind; the label-free series must
		// not exist (guards against accidentally dropping the label).
		t.Errorf("label-free culzss_frames_read_total = %d, want labelled series only", got)
	}
	segFrames := counterVal(reg, "culzss_frames_read_total", obsLabelKindSegment...)
	if segFrames != int64(ws.Segments) {
		t.Errorf(`culzss_frames_read_total{kind="segment"} = %d, want %d`, segFrames, ws.Segments)
	}
}

// obsLabelKindSegment adapts the variadic Label API for counterVal.
var obsLabelKindSegment = []obs.Label{obs.L("kind", "segment")}

func TestReaderSalvageMetrics(t *testing.T) {
	input := datasets.CFiles(64<<10, 61)
	stream, _ := streamWith(t, input, Params{Version: VersionSerial, HostWorkers: 1},
		StreamOptions{SegmentSize: 16 << 10})
	damaged := append([]byte{}, stream...)
	damaged[len(damaged)/2] ^= 0x20

	reg := obs.NewRegistry()
	r, err := NewReaderOptions(bytes.NewReader(damaged), Params{Obs: reg}, ReaderOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	nCorrupt := int64(len(r.CorruptSegments()))
	if nCorrupt == 0 {
		t.Fatal("damaged stream recorded no corrupt segments")
	}
	if got := counterVal(reg, "culzss_reader_corrupt_segments_total"); got != nCorrupt {
		t.Errorf("culzss_reader_corrupt_segments_total = %d, reader recorded %d", got, nCorrupt)
	}
	if got := counterVal(reg, "culzss_frames_salvage_resyncs_total"); got != nCorrupt {
		t.Errorf("culzss_frames_salvage_resyncs_total = %d, want %d", got, nCorrupt)
	}
	var skipped int64
	for _, cse := range r.CorruptSegments() {
		skipped += cse.Skipped
	}
	if got := counterVal(reg, "culzss_frames_salvage_skipped_bytes_total"); got != skipped {
		t.Errorf("culzss_frames_salvage_skipped_bytes_total = %d, regions total %d", got, skipped)
	}
}

func TestConcurrentScrapeWhileCompressing(t *testing.T) {
	// The -race test behind the gateway's /metrics endpoint: scrapers
	// hammer the exposition while the Writer's workers, the supervisor,
	// and the tracer all write the same registry.
	input := datasets.KernelTarball(150<<10, 62)
	reg := obs.NewRegistry()
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: deadDevice()},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Deadline: 2 * time.Second, Obs: reg})

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if len(body) > 0 && !strings.HasPrefix(string(body), "#") {
					// Any non-empty exposition starts with a HELP/TYPE
					// comment; anything else means a torn write.
					t.Errorf("scrape does not start with a comment: %q", body[:min(40, len(body))])
					return
				}
			}
		}()
	}

	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version1, HostWorkers: 3, Health: sup, Obs: reg},
		StreamOptions{SegmentSize: 16 << 10})
	writeAll(t, w, input)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := decodeStream(t, buf.Bytes()); !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
	st := w.Stats()
	if got := counterVal(reg, "culzss_writer_segments_total"); got != int64(st.Segments) {
		t.Fatalf("after concurrent scraping, segments counter %d != stats %d", got, st.Segments)
	}
}

// TestWriterObsDisabledUnchanged pins the zero-cost-when-nil contract:
// a Writer with no registry behaves identically (same bytes, same
// stats) to one with a registry — observation must never perturb the
// pipeline.
func TestWriterObsDisabledUnchanged(t *testing.T) {
	input := datasets.CFiles(100<<10, 63)
	so := StreamOptions{SegmentSize: 32 << 10}

	plain, plainStats := streamWith(t, input, Params{Version: Version1, HostWorkers: 2}, so)

	reg := obs.NewRegistry()
	observed, obsStats := streamWith(t, input, Params{Version: Version1, HostWorkers: 2, Obs: reg}, so)

	if !bytes.Equal(plain, observed) {
		t.Fatal("observed stream differs from unobserved stream")
	}
	if plainStats != obsStats {
		t.Fatalf("stats diverge: plain %+v, observed %+v", plainStats, obsStats)
	}
	if got := counterVal(reg, "culzss_writer_segments_total"); got != int64(obsStats.Segments) {
		t.Fatalf("observed run counted %d segments, stats say %d", got, obsStats.Segments)
	}
}
