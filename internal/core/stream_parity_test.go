package core

import (
	"bytes"
	"io"
	"testing"

	"culzss/internal/datasets"
	"culzss/internal/format"
)

// --- self-healing streams: core-level parity wiring ---------------------

const parSeg = 8 << 10

func parityInput() []byte {
	return datasets.CFiles(9*parSeg-parSeg/2, 77) // 9 segments, short last
}

// writeParityStream frames input with the given parity geometry and
// returns the stream bytes plus the writer's stats.
func writeParityStream(t *testing.T, input []byte, k, m int) ([]byte, WriterStats) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Params{Version: Version2},
		StreamOptions{SegmentSize: parSeg, Parity: ParityConfig{K: k, M: m}})
	if _, err := w.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), w.Stats()
}

// streamRec is one record's extent within a framed stream.
type streamRec struct {
	start, end int
	parity     bool
}

// streamRecords maps a stream's record boundaries using the write-side
// BoundaryScanner (header and trailer excluded).
func streamRecords(t *testing.T, stream []byte) []streamRec {
	t.Helper()
	s := format.NewBoundaryScanner()
	var recs []streamRec
	prevGood, prevSeg, prevPar := 0, 0, 0
	for i := range stream {
		if _, err := s.Write(stream[i : i+1]); err != nil {
			t.Fatal(err)
		}
		if good := int(s.GoodOffset()); good != prevGood {
			switch {
			case s.Records() != prevSeg:
				recs = append(recs, streamRec{prevGood, good, false})
			case s.ParityRecords() != prevPar:
				recs = append(recs, streamRec{prevGood, good, true})
			}
			prevGood, prevSeg, prevPar = good, s.Records(), s.ParityRecords()
		}
	}
	return recs
}

// smashRec flips interior bytes of one record in a copy of the stream.
func smashRec(stream []byte, r streamRec) []byte {
	out := append([]byte(nil), stream...)
	for i := r.start + 3; i < r.end-1; i++ {
		out[i] ^= 0x5a
	}
	return out
}

// readRepair decodes stream under salvage+repair and returns the
// plaintext plus the reader's damage/heal records.
func readRepair(t *testing.T, stream []byte) ([]byte, *Reader) {
	t.Helper()
	r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, ReaderOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return got, r
}

func TestStreamParityRoundTripClean(t *testing.T) {
	input := parityInput()
	stream, st := writeParityStream(t, input, 4, 2)
	// 9 segments at K=4 → groups of 4, 4, 1; M=2 parity frames each.
	if st.ParityFrames != 6 {
		t.Fatalf("ParityFrames = %d, want 6", st.ParityFrames)
	}

	// The normal (fail-fast) reader absorbs parity frames transparently.
	r, err := NewReader(bytes.NewReader(stream), Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("normal reader round trip mismatch on parity stream")
	}

	// So do plain salvage and salvage+repair; the trailer checks stay
	// enforced (a clean stream must still verify end to end).
	for _, opts := range []ReaderOptions{{Salvage: true}, {Repair: true}} {
		r, err := NewReaderOptions(bytes.NewReader(stream), Params{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("opts %+v: round trip mismatch", opts)
		}
		if len(r.CorruptSegments()) != 0 || len(r.RepairedSegments()) != 0 {
			t.Fatalf("opts %+v: clean stream recorded damage", opts)
		}
	}
}

func TestStreamParityZeroConfigBytesUnchanged(t *testing.T) {
	// The zero ParityConfig must leave the stream byte-identical to a
	// writer that never heard of parity.
	input := datasets.Dictionary(3*parSeg, 5)
	frame := func(o StreamOptions) []byte {
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, Params{Version: Version2}, o)
		if _, err := w.Write(input); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.Stats().ParityFrames != 0 {
			t.Fatal("parity frames emitted without ParityConfig")
		}
		return buf.Bytes()
	}
	plain := frame(StreamOptions{SegmentSize: parSeg})
	zero := frame(StreamOptions{SegmentSize: parSeg, Parity: ParityConfig{}})
	if !bytes.Equal(plain, zero) {
		t.Fatal("zero ParityConfig changed the stream bytes")
	}
}

func TestStreamParityConfigValidation(t *testing.T) {
	for _, c := range []ParityConfig{
		{K: -1, M: 1},
		{K: format.MaxParityK + 1, M: 1},
		{K: 4, M: 0},
		{K: 0, M: 3},
		{K: 4, M: format.MaxParityM + 1},
	} {
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, Params{Version: Version2},
			StreamOptions{SegmentSize: parSeg, Parity: c})
		if _, err := w.Write([]byte("x")); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
}

func TestStreamRepairSingleRecordMatrix(t *testing.T) {
	input := parityInput()
	stream, _ := writeParityStream(t, input, 4, 2)
	recs := streamRecords(t, stream)
	if len(recs) != 9+6 {
		t.Fatalf("record count = %d, want 15", len(recs))
	}
	for i, rec := range recs {
		var repairs int
		r, err := NewReaderOptions(bytes.NewReader(smashRec(stream, rec)), Params{}, ReaderOptions{
			Repair:   true,
			OnRepair: func(*format.RepairedSegmentError) { repairs++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, input) {
			t.Fatalf("record %d (parity=%v): repaired plaintext differs", i, rec.parity)
		}
		if len(r.CorruptSegments()) != 0 {
			t.Fatalf("record %d: lost data despite parity: %v", i, r.CorruptSegments()[0])
		}
		if len(r.RepairedSegments()) == 0 || repairs != len(r.RepairedSegments()) {
			t.Fatalf("record %d: repairs not reported (records %d, callbacks %d)",
				i, len(r.RepairedSegments()), repairs)
		}
	}
}

func TestStreamRepairBeyondCapacity(t *testing.T) {
	// Three erasures in a K=4/M=2 group exceed the parity's reach: the
	// survivors still decode, the losses degrade to recorded corruption.
	input := parityInput()
	stream, _ := writeParityStream(t, input, 4, 2)
	recs := streamRecords(t, stream)
	damaged := stream
	for _, i := range []int{0, 1, 2} { // first three data frames of group 0
		damaged = smashRec(damaged, recs[i])
	}
	got, r := readRepair(t, damaged)
	if len(r.CorruptSegments()) == 0 {
		t.Fatal("three losses in an M=2 group reported as fully healed")
	}
	want := input[3*parSeg:] // segments 0-2 lost, 3..8 survive
	if !bytes.Equal(got, want) {
		t.Fatalf("survivor plaintext mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

func TestStreamRepairXORGeometry(t *testing.T) {
	// M=1 exercises the XOR fast path end to end.
	input := parityInput()
	stream, st := writeParityStream(t, input, 3, 1)
	if st.ParityFrames != 3 {
		t.Fatalf("ParityFrames = %d, want 3", st.ParityFrames)
	}
	recs := streamRecords(t, stream)
	got, r := readRepair(t, smashRec(stream, recs[1]))
	if !bytes.Equal(got, input) || len(r.CorruptSegments()) != 0 {
		t.Fatalf("XOR repair failed: corrupt=%d", len(r.CorruptSegments()))
	}
}

func TestStreamParityResumeByteEquivalent(t *testing.T) {
	// A writer resumed mid-group (ResumeState.GroupFrames) must finish
	// the stream byte-identical to an uninterrupted run.
	input := parityInput()
	full, _ := writeParityStream(t, input, 4, 2)
	recs := streamRecords(t, full)

	// Cut just past segment frame 2: group 0 is open with frames 0-2 on
	// disk and no parity yet.
	cut := recs[2].end
	fr, err := format.NewFrameReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	var group [][]byte
	for i := 0; i < 3; i++ {
		frame, _, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		group = append(group, format.AppendSegmentFrame(nil, frame.Index, frame.RawLen, frame.Container))
	}

	var buf bytes.Buffer
	buf.Write(full[:cut])
	w := NewWriterOptions(&buf, Params{Version: Version2}, StreamOptions{
		SegmentSize: parSeg,
		Parity:      ParityConfig{K: 4, M: 2},
		Resume: &ResumeState{
			NextIndex:   3,
			Total:       3 * parSeg,
			CRC:         format.Checksum32Update(0, input[:3*parSeg]),
			GroupFrames: group,
		},
	})
	if _, err := w.Write(input[3*parSeg:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), full) {
		t.Fatal("resumed parity stream differs from the uninterrupted run")
	}
}
