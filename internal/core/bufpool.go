// Buffer recycling for the streaming hot paths. The Writer's original
// bufPool pattern, generalized: one bytePool per buffer population
// (writer segment buffers, reader container buffers, reader plaintext
// buffers), with hit/miss accounting so the allocation discipline is
// observable — through ReaderStats and, when a registry is armed, the
// culzss_bufpool_{hits,misses}_total{pool=...} counters — rather than
// asserted.
package core

import (
	"sync"
	"sync/atomic"

	"culzss/internal/obs"
)

// bytePool recycles byte buffers of one population. The zero pool is
// not ready to use; construct with newBytePool (a nil registry is
// inert, matching the rest of the obs layer).
type bytePool struct {
	pool   sync.Pool
	hits   atomic.Int64
	misses atomic.Int64
	chits  *obs.Counter // nil-inert registry mirrors
	cmiss  *obs.Counter
}

func newBytePool(reg *obs.Registry, name string) *bytePool {
	p := &bytePool{}
	if reg != nil {
		reg.SetHelp("culzss_bufpool_hits_total", "Stream buffer requests served from a recycle pool.")
		reg.SetHelp("culzss_bufpool_misses_total", "Stream buffer requests that had to allocate.")
		p.chits = reg.Counter("culzss_bufpool_hits_total", obs.L("pool", name))
		p.cmiss = reg.Counter("culzss_bufpool_misses_total", obs.L("pool", name))
	}
	return p
}

// get returns a zero-length buffer with capacity of at least capHint. A
// pooled buffer too small for the request is dropped (segment and
// container sizes are near-uniform within one stream, so the pool
// self-corrects instead of churning).
func (p *bytePool) get(capHint int) []byte {
	if v := p.pool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= capHint {
			p.hits.Add(1)
			p.chits.Inc()
			return b[:0]
		}
	}
	p.misses.Add(1)
	p.cmiss.Inc()
	return make([]byte, 0, capHint)
}

// put recycles b for a later get. nil is ignored.
func (p *bytePool) put(b []byte) {
	if b == nil {
		return
	}
	p.pool.Put(b[:0]) //nolint:staticcheck // slice, not pointer: allocation-free enough here
}

// counts reports the pool's lifetime hit/miss totals.
func (p *bytePool) counts() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}
