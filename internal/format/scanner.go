// Record-boundary scanning for the write side of the frame layer.
//
// A crash-safe stream writer (internal/durable) needs to know, as bytes
// flow to disk, where the complete-record boundaries are: a commit
// (fsync) is only meaningful at a boundary, and recovery truncates back
// to one. BoundaryScanner is an incremental structural parser fed the
// exact bytes of a framed stream in production order; it tracks the
// offset just past the last complete record without buffering payloads or
// verifying checksums (the writer produced the bytes itself — the scanner
// guards against framing bugs, not bit rot; CRCs are re-verified on the
// read side by FrameReader and durable.ScanTail).
package format

import (
	"fmt"
)

// scanState enumerates the scanner's position inside the stream grammar.
type scanState int

const (
	scanHeaderFixed  scanState = iota // magic, version, flags (6 bytes)
	scanHeaderSize                    // segmentSize varint
	scanMarker                        // record marker byte
	scanSegIndex                      // segment frame: index varint
	scanSegRawLen                     // segment frame: rawLen varint
	scanSegCompLen                    // segment frame: compLen varint
	scanSegCRC                        // segment frame: 4 CRC bytes
	scanSegPayload                    // segment frame: compLen container bytes
	scanTrailerSegs                   // trailer: segments varint
	scanTrailerTotal                  // trailer: totalLen varint
	scanTrailerCRC                    // trailer: 4 CRC bytes
	scanParFirst                      // parity frame: firstIndex varint
	scanParK                          // parity frame: k varint
	scanParM                          // parity frame: m varint
	scanParJ                          // parity frame: j varint
	scanParShardLen                   // parity frame: shardLen varint
	scanParFrameLens                  // parity frame: k frameLens varints
	scanParCRC                        // parity frame: 4 CRC bytes
	scanParPayload                    // parity frame: shardLen shard bytes
	scanDone                          // trailer complete; no byte may follow
)

// BoundaryScanner consumes a framed stream incrementally (via Write) and
// reports record boundaries. It is an io.Writer so it can sit on a write
// path as a tee; errors are sticky and mark a structurally invalid stream
// — on the write side that is a framing bug, not recoverable damage.
type BoundaryScanner struct {
	state   scanState
	headerN int   // bytes of the fixed header consumed
	need    int   // remaining bytes of the current fixed-size field
	skip    int64 // remaining payload bytes of the current segment frame
	compLen int64 // the current frame's container length
	uv      uint64
	uvBits  uint

	// In-flight parity frame fields.
	parFirst, parK, parM, parJ, parShardLen int
	parLensLeft                             int

	off           int64 // total bytes consumed
	good          int64 // offset just past the last complete record (header included)
	records       int   // complete segment frames seen
	parityRecords int   // complete parity frames seen
	trailer       bool
	err           error
}

// NewBoundaryScanner returns a scanner expecting a stream from its first
// byte (the stream header).
func NewBoundaryScanner() *BoundaryScanner {
	return &BoundaryScanner{}
}

// ResumeBoundaryScanner returns a scanner positioned at a record boundary
// of an existing stream: off is the absolute offset of the boundary and
// records the number of segment frames before it. It expects a record
// marker next — the shape a resumed durable writer appends into.
func ResumeBoundaryScanner(off int64, records int) *BoundaryScanner {
	return &BoundaryScanner{state: scanMarker, off: off, good: off, records: records}
}

// GoodOffset reports the offset just past the last complete record. The
// stream header counts as a record: after it, GoodOffset is the header
// length.
func (s *BoundaryScanner) GoodOffset() int64 { return s.good }

// Offset reports the total bytes consumed, including any partial record.
func (s *BoundaryScanner) Offset() int64 { return s.off }

// Records reports the number of complete segment frames seen.
func (s *BoundaryScanner) Records() int { return s.records }

// ParityRecords reports the number of complete parity frames seen.
func (s *BoundaryScanner) ParityRecords() int { return s.parityRecords }

// TrailerDone reports whether the stream trailer has been fully consumed.
func (s *BoundaryScanner) TrailerDone() bool { return s.trailer }

// Err returns the sticky structural error, if any.
func (s *BoundaryScanner) Err() error { return s.err }

// Write consumes the next bytes of the stream. On a structural violation
// it consumes up to the offending byte and returns the sticky error.
func (s *BoundaryScanner) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := len(p)
	for len(p) > 0 && s.err == nil {
		if s.state == scanSegPayload || s.state == scanParPayload {
			k := int64(len(p))
			if k > s.skip {
				k = s.skip
			}
			p = p[k:]
			s.off += k
			s.skip -= k
			if s.skip == 0 {
				if s.state == scanParPayload {
					s.completeParity()
				} else {
					s.completeFrame()
				}
			}
			continue
		}
		b := p[0]
		p = p[1:]
		s.off++
		s.step(b)
	}
	if s.err != nil {
		return n - len(p), s.err
	}
	return n, nil
}

// completeFrame closes out one segment frame.
func (s *BoundaryScanner) completeFrame() {
	s.records++
	s.good = s.off
	s.state = scanMarker
}

// completeParity closes out one parity frame: it advances the good
// offset (a commit is meaningful after it) without counting as a
// segment record.
func (s *BoundaryScanner) completeParity() {
	s.parityRecords++
	s.good = s.off
	s.state = scanMarker
}

func (s *BoundaryScanner) fail(err error) {
	s.err = err
}

// step advances the state machine by one non-payload byte.
func (s *BoundaryScanner) step(b byte) {
	switch s.state {
	case scanHeaderFixed:
		idx := s.headerN
		s.headerN++
		switch {
		case idx < len(StreamMagic) && b != StreamMagic[idx]:
			s.fail(fmt.Errorf("%w: header byte %d is %#x", ErrBadStreamMagic, idx, b))
		case idx == 4 && b != StreamVersion:
			s.fail(fmt.Errorf("%w: stream version %d", ErrBadVersion, b))
		case idx == 5 && b != 0:
			s.fail(fmt.Errorf("%w: nonzero stream flags %#x", ErrCorrupt, b))
		}
		if s.headerN == 6 {
			s.state = scanHeaderSize
		}
	case scanHeaderSize:
		if _, done := s.varint(b); done {
			s.good = s.off
			s.state = scanMarker
		}
	case scanMarker:
		switch b {
		case frameMarkerSegment:
			s.state = scanSegIndex
		case frameMarkerTrailer:
			s.state = scanTrailerSegs
		case frameMarkerParity:
			s.state = scanParFirst
		default:
			s.fail(fmt.Errorf("%w: unknown frame marker %#x at offset %d", ErrCorrupt, b, s.off-1))
		}
	case scanSegIndex:
		if v, done := s.varint(b); done {
			if int(v) != s.records {
				s.fail(fmt.Errorf("%w: emitting segment %d, want %d", ErrFrameOrder, v, s.records))
				return
			}
			s.state = scanSegRawLen
		}
	case scanSegRawLen:
		if v, done := s.varint(b); done {
			if v > MaxSegmentLen {
				s.fail(fmt.Errorf("%w: implausible segment rawLen %d", ErrCorrupt, v))
				return
			}
			s.state = scanSegCompLen
		}
	case scanSegCompLen:
		if v, done := s.varint(b); done {
			if v > MaxSegmentLen {
				s.fail(fmt.Errorf("%w: implausible segment compLen %d", ErrCorrupt, v))
				return
			}
			s.compLen = int64(v)
			s.need = 4
			s.state = scanSegCRC
		}
	case scanSegCRC:
		s.need--
		if s.need == 0 {
			if s.compLen == 0 {
				s.completeFrame()
			} else {
				s.skip = s.compLen
				s.state = scanSegPayload
			}
		}
	case scanTrailerSegs:
		if v, done := s.varint(b); done {
			if int(v) != s.records {
				s.fail(fmt.Errorf("%w: trailer counts %d segments, stream carried %d", ErrCorrupt, v, s.records))
				return
			}
			s.state = scanTrailerTotal
		}
	case scanTrailerTotal:
		if _, done := s.varint(b); done {
			s.need = 4
			s.state = scanTrailerCRC
		}
	case scanTrailerCRC:
		s.need--
		if s.need == 0 {
			s.trailer = true
			s.good = s.off
			s.state = scanDone
		}
	case scanParFirst:
		if v, done := s.varint(b); done {
			s.parFirst = int(v)
			s.state = scanParK
		}
	case scanParK:
		if v, done := s.varint(b); done {
			s.parK = int(v)
			s.state = scanParM
		}
	case scanParM:
		if v, done := s.varint(b); done {
			s.parM = int(v)
			s.state = scanParJ
		}
	case scanParJ:
		if v, done := s.varint(b); done {
			s.parJ = int(v)
			s.state = scanParShardLen
		}
	case scanParShardLen:
		if v, done := s.varint(b); done {
			s.parShardLen = int(v)
			if err := validateParityGeometry(s.parFirst, s.parK, s.parM, s.parJ, s.parShardLen); err != nil {
				s.fail(err)
				return
			}
			// The writer emits parity immediately after its group's last
			// data frame.
			if s.parFirst+s.parK != s.records {
				s.fail(fmt.Errorf("%w: emitting parity for [%d,%d), stream carries %d segments",
					ErrFrameOrder, s.parFirst, s.parFirst+s.parK, s.records))
				return
			}
			s.parLensLeft = s.parK
			s.state = scanParFrameLens
		}
	case scanParFrameLens:
		if v, done := s.varint(b); done {
			if v < 1 || int(v) > s.parShardLen {
				s.fail(fmt.Errorf("%w: frame length %d vs shard length %d", ErrParityGeometry, v, s.parShardLen))
				return
			}
			s.parLensLeft--
			if s.parLensLeft == 0 {
				s.need = 4
				s.state = scanParCRC
			}
		}
	case scanParCRC:
		s.need--
		if s.need == 0 {
			s.skip = int64(s.parShardLen)
			s.state = scanParPayload
		}
	case scanDone:
		s.fail(fmt.Errorf("%w: %d byte(s) after the stream trailer", ErrCorrupt, 1))
	}
}

// varint feeds one byte to the in-progress uvarint; done reports the
// value is complete (and resets the accumulator).
func (s *BoundaryScanner) varint(b byte) (uint64, bool) {
	s.uv |= uint64(b&0x7f) << s.uvBits
	if b < 0x80 {
		v := s.uv
		s.uv, s.uvBits = 0, 0
		if v > 1<<40 {
			s.fail(fmt.Errorf("%w: implausible varint %d", ErrCorrupt, v))
			return 0, false
		}
		return v, true
	}
	s.uvBits += 7
	if s.uvBits > 63 {
		s.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		return 0, false
	}
	return 0, false
}
