// Repair-mode salvage: use parity frames to reconstruct damaged or
// missing segment frames instead of skipping them.
//
// The repair layer sits between the raw salvage record pump
// (nextSalvageRaw) and the FrameReader.Next contract. It retains the
// exact encoded bytes of every data frame it sees and settles them a
// parity group at a time: when a group's parity arrives, the survivors
// plus the parity shards go through the Reed–Solomon coder, missing
// frames are reconstructed, and the whole group is verified against the
// parity before anything is released. Every reconstructed frame is
// re-parsed and CRC-verified, so a successful repair is bit-identical to
// the original by construction, never merely plausible.
//
// Why hold-until-close rather than eager delivery: the per-frame CRC
// covers only the container bytes, so a bit flip inside the index or
// rawLen varint yields a frame that still parses and passes its CRC — a
// plausible imposter. Such a frame can only be unmasked by checking the
// group against its parity, which exists only once the group closes.
// Holding delivery until then lets the reader (a) void both claimants
// when two different frames collide on one index, treating the slot as
// an erasure for parity to refill, and (b) locate a content-level
// imposter by trial erasure: re-derive each suspect frame from the rest
// of the group plus parity and accept the single substitution that makes
// every parity shard and every per-frame CRC agree.
//
// Delivery policy: frames are released in index order when their group
// closes. A group closes at its last parity shard, at the first parity
// record of a different group, at the trailer, or at end of input — never
// at an out-of-group data frame, whose index a flip could have forged.
// Successful repairs surface as *RepairedSegmentError notices
// (non-sticky, like *CorruptSegmentError); damage beyond the parity's
// reach degrades to the plain-salvage *CorruptSegmentError per gap.
//
// Memory bound: a few groups' worth of encoded frames plus the open
// group's parity shards. For streams that carry no parity at all,
// retention is abandoned as soon as the reader has seen more than
// MaxParityK data frames without a single parity frame (a parity-bearing
// writer must emit parity at least that often), and the reader degrades
// to plain salvage behavior. A hard cap of 4·MaxParityK held frames
// bounds retention against hostile index values.
package format

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"culzss/internal/ecc"
)

// RepairedSegmentError reports a damaged region that parity
// reconstruction fully healed. Like *CorruptSegmentError it is returned
// by FrameReader.Next between segments and is not sticky; unlike it, the
// affected segments ARE delivered — bit-identical to the originals — on
// subsequent calls. Index is -1 when only parity frames (redundancy, not
// data) had to be rebuilt.
type RepairedSegmentError struct {
	// Index is the first repaired segment index, or -1 for parity-only
	// repair.
	Index int
	// Frames lists every repaired segment index, ascending.
	Frames []int
	// Offset is the absolute stream offset where the damage began, -1
	// when the damaged region was a clean excision with no byte damage.
	Offset int64
	// Skipped is how many bytes of damage were discarded while
	// resynchronizing.
	Skipped int64
	// Err is the parse or checksum failure that revealed the damage.
	Err error
}

// Error implements error.
func (e *RepairedSegmentError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("format: repaired parity frames at offset %d (data intact): %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("format: repaired %d segment(s) starting at %d (offset %d, %d damaged bytes): %v",
		len(e.Frames), e.Index, e.Offset, e.Skipped, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *RepairedSegmentError) Unwrap() error { return e.Err }

// groupFrame is one retained data frame.
type groupFrame struct {
	frame   *SegmentFrame
	encoded []byte // exact wire bytes (re-encoded; identical by determinism)
	off     int64  // absolute stream offset of the frame, -1 unknown
}

// parityRec is one collected parity frame of the open group.
type parityRec struct {
	pf  *ParityFrame
	off int64
}

// repairEvent is one queued delivery: exactly one field is set.
type repairEvent struct {
	frame   *SegmentFrame
	trailer *StreamTrailer
	err     error
}

// repairState is the frame buffer behind repair-mode salvage.
type repairState struct {
	k, m       int // stream parity geometry; 0 until learned
	sawParity  bool
	disabled   bool
	framesSeen int

	got      map[int]*groupFrame // held frames by index
	poisoned map[int]bool        // indices voided by a collision
	maxSeen  int                 // highest index ever held; -1 none
	run      []*parityRec        // parity records of the open group
	damage   []*CorruptSegmentError

	deliverNext int // next segment index owed to the consumer
	queue       []repairEvent
}

// EnableRepair switches a salvage-mode FrameReader into repair mode:
// parity groups are buffered and damaged frames are reconstructed from
// parity instead of skipped. It must be called before the first Next.
// On a non-salvage reader it is a no-op (normal mode is fail-fast and
// has nothing to repair).
func (fr *FrameReader) EnableRepair() {
	if !fr.salvage || fr.rep != nil {
		return
	}
	fr.rep = &repairState{
		got:      make(map[int]*groupFrame),
		poisoned: make(map[int]bool),
		maxSeen:  -1,
	}
}

// repairNext is Next's salvage path in repair mode.
func (fr *FrameReader) repairNext() (*SegmentFrame, *StreamTrailer, error) {
	rep := fr.rep
	for {
		if len(rep.queue) > 0 {
			ev := rep.queue[0]
			rep.queue = rep.queue[1:]
			return ev.frame, ev.trailer, ev.err
		}
		f, t, p, err := fr.nextSalvageRaw()
		switch {
		case err != nil:
			var cse *CorruptSegmentError
			if errors.As(err, &cse) {
				if rep.disabled {
					rep.queue = append(rep.queue, repairEvent{err: cse})
				} else {
					rep.damage = append(rep.damage, cse)
				}
				continue
			}
			// Terminal (truncation or I/O): settle everything held — with
			// trailing parity in hand this is where a torn tail gets
			// rebuilt — then surface the terminal error.
			fr.closeAll(nil)
			rep.queue = append(rep.queue, repairEvent{err: err})
		case t != nil:
			fr.closeAll(t)
			rep.queue = append(rep.queue, repairEvent{trailer: t})
		case p != nil:
			fr.repairParity(p)
		default:
			fr.repairFrame(f)
		}
	}
}

// repairFrame routes one intact-looking data frame into the hold buffer.
func (fr *FrameReader) repairFrame(f *SegmentFrame) {
	rep := fr.rep
	rep.framesSeen++
	if rep.disabled {
		rep.queue = append(rep.queue, repairEvent{frame: f})
		return
	}
	if f.Index < rep.deliverNext {
		return // stale duplicate of an already-settled index
	}
	if rep.poisoned[f.Index] {
		return // index already voided by a collision
	}
	enc := AppendSegmentFrame(make([]byte, 0, 24+len(f.Container)), f.Index, f.RawLen, f.Container)
	if old := rep.got[f.Index]; old != nil {
		if bytes.Equal(old.encoded, enc) {
			return // exact duplicate
		}
		// Two different frames claim one index: at least one is an
		// imposter (a header flip the container CRC cannot see). Trust
		// neither; the slot becomes an erasure for parity to refill.
		delete(rep.got, f.Index)
		rep.poisoned[f.Index] = true
		return
	}
	rep.got[f.Index] = &groupFrame{frame: f, encoded: enc, off: fr.recOff}
	if f.Index > rep.maxSeen {
		rep.maxSeen = f.Index
	}
	if !rep.sawParity && rep.framesSeen > MaxParityK {
		// A parity-bearing writer must emit parity at least every
		// MaxParityK frames; this stream has none. Stop buffering.
		fr.disableRepair()
		return
	}
	if len(rep.got) > 4*MaxParityK {
		// Runaway retention (hostile index values): stop buffering.
		fr.disableRepair()
	}
}

// repairParity routes one intact parity frame into the open group run.
func (fr *FrameReader) repairParity(p *ParityFrame) {
	rep := fr.rep
	if rep.disabled {
		// Same transparency contract as non-repair salvage: a group that
		// closes past the reader reveals cleanly excised frames.
		if close := p.FirstIndex + p.K; close > fr.nextIndex {
			fr.corrupted = true
			rep.queue = append(rep.queue, repairEvent{err: &CorruptSegmentError{
				Index:  fr.nextIndex,
				Offset: fr.recOff,
				Err:    fmt.Errorf("%w: parity closes group at %d, reader is at %d", ErrFrameOrder, close, fr.nextIndex),
			}})
			fr.nextIndex = close
		}
		return
	}
	rep.sawParity = true
	if rep.k == 0 {
		rep.k, rep.m = p.K, p.M
	}
	if p.FirstIndex+p.K <= rep.deliverNext {
		return // stale group, already settled
	}
	if len(rep.run) > 0 && rep.run[0].pf.FirstIndex != p.FirstIndex {
		fr.closeParityGroup()
	}
	rep.run = append(rep.run, &parityRec{pf: p, off: fr.recOff})
	// Parity proves its whole group was written; move the expected index
	// past the group so the next group's frames parse as in-order.
	if close := p.FirstIndex + p.K; close > fr.nextIndex {
		fr.nextIndex = close
	}
	if p.J == p.M-1 {
		fr.closeParityGroup()
	}
}

// disableRepair abandons repair buffering, settling everything held
// (without parity the gaps are plain losses) and reverting to the plain
// salvage flow.
func (fr *FrameReader) disableRepair() {
	rep := fr.rep
	target := rep.deliverNext
	for i := range rep.got {
		if i+1 > target {
			target = i + 1
		}
	}
	fr.flushRange(target)
	for _, d := range rep.damage {
		rep.queue = append(rep.queue, repairEvent{err: d})
	}
	rep.damage = nil
	rep.run = nil
	rep.poisoned = make(map[int]bool)
	rep.disabled = true
}

// closeAll settles every open group and held frame at end of stream. t
// is the trailer when one arrived, nil at a terminal error.
func (fr *FrameReader) closeAll(t *StreamTrailer) {
	rep := fr.rep
	if rep.disabled {
		for _, d := range rep.damage {
			rep.queue = append(rep.queue, repairEvent{err: d})
		}
		rep.damage = nil
		return
	}
	fr.closeParityGroup()
	if t != nil && t.Segments >= rep.deliverNext {
		// The trailer bounds the real stream; anything held beyond it is
		// a header-flip phantom.
		for i := range rep.got {
			if i >= t.Segments {
				delete(rep.got, i)
			}
		}
	}
	target := rep.deliverNext
	for i := range rep.got {
		if i+1 > target {
			target = i + 1
		}
	}
	if t != nil && t.Segments > target && t.Segments-target <= maxIndexGap {
		// Frames the trailer counts but the stream no longer carries are
		// losses, not a short stream.
		target = t.Segments
	}
	fr.flushRange(target)
	for _, d := range rep.damage {
		rep.queue = append(rep.queue, repairEvent{err: d})
	}
	rep.damage = nil
}

// flushRange releases every held frame below target in index order,
// reporting each gap as one merged CorruptSegmentError. Indices flushed
// this way are beyond repair: any parity that covered them has already
// been spent or lost.
func (fr *FrameReader) flushRange(target int) {
	rep := fr.rep
	for rep.deliverNext < target {
		i := rep.deliverNext
		if gf := rep.got[i]; gf != nil {
			rep.queue = append(rep.queue, repairEvent{frame: gf.frame})
			delete(rep.got, i)
			delete(rep.poisoned, i)
			rep.deliverNext = i + 1
			continue
		}
		j := i + 1
		for j < target && rep.got[j] == nil {
			j++
		}
		fr.Obs.Counter("culzss_repair_unrepairable_total").Add(int64(j - i))
		fr.corrupted = true
		rep.queue = append(rep.queue, repairEvent{err: fr.mergeDamage(i, j-i)})
		for x := i; x < j; x++ {
			delete(rep.poisoned, x)
		}
		rep.deliverNext = j
	}
}

// mergeDamage folds the pending damage reports into one
// CorruptSegmentError covering count segments starting at index.
func (fr *FrameReader) mergeDamage(index, count int) *CorruptSegmentError {
	rep := fr.rep
	cse := &CorruptSegmentError{Index: index, Offset: -1}
	if len(rep.damage) > 0 {
		cse.Offset = rep.damage[0].Offset
		cse.Err = rep.damage[0].Err
		for _, d := range rep.damage {
			cse.Skipped += d.Skipped
		}
		rep.damage = rep.damage[:0]
	} else {
		cse.Err = fmt.Errorf("%w: %d segment(s) lost with no parity cover", ErrFrameOrder, count)
	}
	return cse
}

// closeParityGroup settles the group described by the open parity run:
// reconstructs missing frames, verifies the survivors against the
// parity, and releases the group in index order.
func (fr *FrameReader) closeParityGroup() {
	rep := fr.rep
	if len(rep.run) == 0 {
		return
	}
	run := rep.run
	rep.run = nil
	s := run[0].pf.FirstIndex

	// Header-flip phantom guard: a parity frame whose FirstIndex varint
	// was flipped describes a group nothing corroborates. If the claimed
	// range holds no frames, no damage was seen, and the range starts
	// beyond the delivery watermark, drop the parity silently rather
	// than inventing a group's worth of lost segments.
	maxK := 0
	for _, pr := range run {
		if pr.pf.K > maxK {
			maxK = pr.pf.K
		}
	}
	overlap := false
	for i := s; i < s+maxK; i++ {
		if rep.got[i] != nil || rep.poisoned[i] {
			overlap = true
			break
		}
	}
	if !overlap && len(rep.damage) == 0 && s > rep.deliverNext {
		return
	}

	k0 := run[0].pf.K
	missing0 := 0
	for i := s; i < s+k0; i++ {
		if rep.got[i] == nil {
			missing0++
		}
	}
	sol := fr.solveGroup(s, run)
	if missing0 > 0 || sol == nil || len(sol.rebuilt) > 0 {
		fr.Obs.Counter("culzss_repair_attempts_total").Inc()
	}
	if sol == nil {
		// Nothing provable: leave every frame held. The claimed range may
		// be a phantom (a flipped FirstIndex varint) whose real group is
		// still on its way; genuinely lost segments are reported when a
		// later close or end of stream settles past them.
		return
	}
	// Settle everything owed before this group first: those indices have
	// no parity left that could repair them.
	fr.flushRange(s)
	fr.applySolution(s, sol, run)
	fr.flushRange(s + sol.hdr.K)
}

// groupSolution is one verified settlement of a parity group.
type groupSolution struct {
	hdr        *ParityFrame        // chosen geometry source
	shards     [][]byte            // final k+m shard set, fully populated
	rebuilt    map[int]*groupFrame // repaired data frames by index
	parityHave map[int]bool        // parity slots that arrived intact on the wire
}

// sameGeometry reports whether two parity headers describe the same
// group shape.
func sameGeometry(a, b *ParityFrame) bool {
	if a.K != b.K || a.M != b.M || a.ShardLen != b.ShardLen {
		return false
	}
	for i := range a.FrameLens {
		if a.FrameLens[i] != b.FrameLens[i] {
			return false
		}
	}
	return true
}

// solveGroup tries each distinct geometry among the run's parity
// headers — a header flip can make duplicates disagree — preferring the
// one that best matches the held frames, and returns the first verified
// settlement.
func (fr *FrameReader) solveGroup(s int, run []*parityRec) *groupSolution {
	rep := fr.rep
	var cands []*ParityFrame
outer:
	for _, pr := range run {
		for _, c := range cands {
			if sameGeometry(c, pr.pf) {
				continue outer
			}
		}
		cands = append(cands, pr.pf)
	}
	// Score: held frames whose observed length matches the header's
	// record. Accepted frames always have their genuine wire length (a
	// width-changing flip shifts the CRC and is rejected), so a length
	// mismatch convicts the header, not the frame.
	score := func(h *ParityFrame) int {
		sc := 0
		for i := 0; i < h.K; i++ {
			if gf := rep.got[s+i]; gf != nil {
				if len(gf.encoded) == h.FrameLens[i] {
					sc++
				} else {
					sc -= 1000
				}
			}
		}
		return sc
	}
	sort.SliceStable(cands, func(a, b int) bool { return score(cands[a]) > score(cands[b]) })
	for _, hdr := range cands {
		if sol := fr.trySolve(s, hdr, run); sol != nil {
			return sol
		}
	}
	return nil
}

// trySolve attempts to settle the group under one candidate geometry:
// erasure-decode the missing slots, verify every reconstruction by
// strict re-parse, and cross-check the final data against every parity
// shard that arrived on the wire. If the group is complete but the
// parity disagrees — a content imposter — it re-derives each held frame
// in turn (trial erasure) and accepts the single substitution that makes
// everything agree.
func (fr *FrameReader) trySolve(s int, hdr *ParityFrame, run []*parityRec) *groupSolution {
	rep := fr.rep
	k, m, shardLen := hdr.K, hdr.M, hdr.ShardLen

	dataEnc := make([][]byte, k)
	erasures := 0
	for i := 0; i < k; i++ {
		gf := rep.got[s+i]
		if gf == nil || len(gf.encoded) != hdr.FrameLens[i] {
			erasures++
			continue
		}
		dataEnc[i] = gf.encoded
	}
	parShard := make([][]byte, m)
	parityHave := make(map[int]bool)
	conflict := make(map[int]bool)
	for _, pr := range run {
		if !sameGeometry(pr.pf, hdr) {
			continue
		}
		j := pr.pf.J
		if conflict[j] {
			continue
		}
		switch {
		case parShard[j] == nil:
			parShard[j] = pr.pf.Shard
			parityHave[j] = true
		case !bytes.Equal(parShard[j], pr.pf.Shard):
			// Two shards claim slot j (a flipped J varint): trust neither.
			parShard[j] = nil
			delete(parityHave, j)
			conflict[j] = true
		}
	}
	if erasures > len(parityHave) {
		return nil
	}

	tryErase := func(extra int) *groupSolution {
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			if dataEnc[i] == nil || i == extra {
				continue
			}
			shards[i] = padShard(dataEnc[i], shardLen)
		}
		for j := 0; j < m; j++ {
			shards[k+j] = parShard[j]
		}
		coder, err := ecc.New(k, m)
		if err != nil {
			return nil
		}
		if err := coder.Reconstruct(shards); err != nil {
			return nil
		}
		rebuilt := make(map[int]*groupFrame)
		for i := 0; i < k; i++ {
			if dataEnc[i] != nil && i != extra {
				continue
			}
			enc := shards[i][:hdr.FrameLens[i]]
			sf, err := parseSegmentRecord(enc)
			if err != nil || sf.Index != s+i {
				return nil
			}
			off := int64(-1)
			if gf := rep.got[s+i]; gf != nil {
				off = gf.off
			}
			rebuilt[s+i] = &groupFrame{frame: sf, encoded: append([]byte(nil), enc...), off: off}
		}
		if len(parityHave) > 0 {
			recomputed, err := coder.Parity(shards[:k])
			if err != nil {
				return nil
			}
			for j := range parityHave {
				if !bytes.Equal(recomputed[j], parShard[j]) {
					return nil
				}
			}
			for j := 0; j < m; j++ {
				shards[k+j] = recomputed[j]
			}
		}
		return &groupSolution{hdr: hdr, shards: shards, rebuilt: rebuilt, parityHave: parityHave}
	}

	if sol := tryErase(-1); sol != nil {
		return sol
	}
	// The straightforward decode failed its verification: some held
	// frame is lying. Locate it by trial erasure — only possible with a
	// spare parity shard beyond the known erasures.
	if len(parityHave) >= erasures+1 {
		for i := 0; i < k; i++ {
			if dataEnc[i] == nil {
				continue
			}
			if sol := tryErase(i); sol != nil {
				return sol
			}
		}
	}
	return nil
}

// padShard zero-pads b to length n (no copy when already that long).
func padShard(b []byte, n int) []byte {
	if len(b) == n {
		return b
	}
	p := make([]byte, n)
	copy(p, b)
	return p
}

// applySolution installs a verified settlement: repaired frames join the
// hold buffer, a RepairedSegmentError notice is queued, counters tick,
// and an armed RepairSink receives the bytes to patch.
func (fr *FrameReader) applySolution(s int, sol *groupSolution, run []*parityRec) {
	rep := fr.rep
	for idx, gf := range sol.rebuilt {
		if old := rep.got[idx]; old != nil {
			// A content imposter (flipped rawLen varint) was accepted and
			// summed into the running raw total before parity unmasked it;
			// correct the books so the trailer's strict consistency check
			// still holds on an otherwise-clean stream.
			fr.rawTotal += gf.frame.RawLen - old.frame.RawLen
		}
		rep.got[idx] = gf
		delete(rep.poisoned, idx)
		if idx > rep.maxSeen {
			rep.maxSeen = idx
		}
	}
	switch {
	case len(sol.rebuilt) > 0:
		fr.Obs.Counter("culzss_repair_repaired_total").Add(int64(len(sol.rebuilt)))
		idxs := make([]int, 0, len(sol.rebuilt))
		for idx := range sol.rebuilt {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		notice := &RepairedSegmentError{Index: idxs[0], Frames: idxs, Offset: -1}
		if len(rep.damage) > 0 {
			notice.Offset = rep.damage[0].Offset
			notice.Err = rep.damage[0].Err
			for _, d := range rep.damage {
				notice.Skipped += d.Skipped
			}
			rep.damage = rep.damage[:0]
		} else {
			notice.Err = fmt.Errorf("%w: segments altered or excised without byte damage", ErrFrameOrder)
		}
		rep.queue = append(rep.queue, repairEvent{err: notice})
	case len(rep.damage) > 0:
		// Data intact; the damage hit only this group's parity frames.
		d := rep.damage[0]
		var skipped int64
		for _, dd := range rep.damage {
			skipped += dd.Skipped
		}
		rep.damage = rep.damage[:0]
		rep.queue = append(rep.queue, repairEvent{err: &RepairedSegmentError{
			Index: -1, Offset: d.Offset, Skipped: skipped, Err: d.Err,
		}})
	}
	if fr.RepairSink != nil {
		fr.sinkRepairs(s, sol, run)
	}
}

// sinkRepairs hands every rebuilt record to the RepairSink with the
// absolute stream offset it originally occupied, derived by chaining the
// group's known record offsets through the parity-recorded lengths.
func (fr *FrameReader) sinkRepairs(s int, sol *groupSolution, run []*parityRec) {
	rep := fr.rep
	hdr := sol.hdr
	k, m := hdr.K, hdr.M
	// Encoded wire length of every record in the group, data then parity.
	lens := make([]int64, k+m)
	encParity := make([][]byte, m)
	for i := 0; i < k; i++ {
		lens[i] = int64(hdr.FrameLens[i])
	}
	for j := 0; j < m; j++ {
		pf := &ParityFrame{FirstIndex: s, K: k, M: m, J: j,
			ShardLen: hdr.ShardLen, FrameLens: hdr.FrameLens, Shard: sol.shards[k+j]}
		lens[k+j] = int64(pf.EncodedLen())
		if !sol.parityHave[j] {
			encParity[j] = AppendParityFrame(make([]byte, 0, pf.EncodedLen()), pf)
		}
	}
	// Anchor known offsets, then propagate forward and backward.
	offs := make([]int64, k+m)
	for i := range offs {
		offs[i] = -1
	}
	for i := 0; i < k; i++ {
		if gf := rep.got[s+i]; gf != nil && gf.off >= 0 {
			offs[i] = gf.off
		}
	}
	for _, pr := range run {
		if sameGeometry(pr.pf, hdr) && sol.parityHave[pr.pf.J] && pr.off >= 0 {
			offs[k+pr.pf.J] = pr.off
		}
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < 0 && offs[i-1] >= 0 {
			offs[i] = offs[i-1] + lens[i-1]
		}
	}
	for i := len(offs) - 2; i >= 0; i-- {
		if offs[i] < 0 && offs[i+1] >= 0 {
			offs[i] = offs[i+1] - lens[i]
		}
	}
	idxs := make([]int, 0, len(sol.rebuilt))
	for idx := range sol.rebuilt {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		gf := sol.rebuilt[idx]
		gf.off = offs[idx-s]
		fr.RepairSink(idx, gf.off, gf.encoded)
	}
	for j := 0; j < m; j++ {
		if encParity[j] != nil {
			fr.RepairSink(-1, offs[k+j], encParity[j])
		}
	}
}
