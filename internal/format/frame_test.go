package format

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildStream assembles a syntactically valid framed stream from segment
// (rawLen, container) pairs.
func buildStream(segSize int, segs [][2][]byte) []byte {
	out := AppendStreamHeader(nil, segSize)
	total := 0
	crc := uint32(0)
	for i, s := range segs {
		raw, container := s[0], s[1]
		out = AppendSegmentFrame(out, i, len(raw), container)
		total += len(raw)
		crc = Checksum32Update(crc, raw)
	}
	return AppendStreamTrailer(out, &StreamTrailer{Segments: len(segs), TotalLen: total, Checksum: crc})
}

func TestFrameRoundTrip(t *testing.T) {
	segs := [][2][]byte{
		{[]byte("first segment plaintext"), []byte("container-one")},
		{[]byte("second"), []byte("container-two-bytes")},
		{[]byte{}, []byte{}}, // zero-length segment is legal
	}
	stream := buildStream(1<<20, segs)

	fr, err := NewFrameReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if fr.SegmentSize != 1<<20 {
		t.Fatalf("SegmentSize = %d", fr.SegmentSize)
	}
	for i, want := range segs {
		frame, trailer, err := fr.Next()
		if err != nil || trailer != nil {
			t.Fatalf("frame %d: %v trailer=%v", i, err, trailer)
		}
		if frame.Index != i || frame.RawLen != len(want[0]) || !bytes.Equal(frame.Container, want[1]) {
			t.Fatalf("frame %d decoded wrong: %+v", i, frame)
		}
	}
	frame, trailer, err := fr.Next()
	if err != nil || frame != nil || trailer == nil {
		t.Fatalf("trailer read: frame=%v trailer=%v err=%v", frame, trailer, err)
	}
	if trailer.Segments != 3 || trailer.TotalLen != len(segs[0][0])+len(segs[1][0]) {
		t.Fatalf("trailer = %+v", trailer)
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after trailer: %v, want io.EOF", err)
	}
}

func TestFrameWriteHelpersMatchAppend(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteStreamHeader(&buf, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSegmentFrame(&buf, 0, 5, []byte("cont")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteStreamTrailer(&buf, &StreamTrailer{Segments: 1, TotalLen: 5, Checksum: 42}); err != nil {
		t.Fatal(err)
	}
	want := AppendStreamHeader(nil, 4096)
	want = AppendSegmentFrame(want, 0, 5, []byte("cont"))
	want = AppendStreamTrailer(want, &StreamTrailer{Segments: 1, TotalLen: 5, Checksum: 42})
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("io helpers and append helpers disagree on the wire bytes")
	}
}

func TestFrameReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewFrameReader(bytes.NewReader([]byte("CLZ1xxxx"))); !errors.Is(err, ErrBadStreamMagic) {
		t.Fatalf("container magic: %v", err)
	}
	if _, err := NewFrameReader(bytes.NewReader([]byte("CL"))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short input: %v", err)
	}
	bad := AppendStreamHeader(nil, 1)
	bad[4] = 99 // version
	if _, err := NewFrameReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	bad = AppendStreamHeader(nil, 1)
	bad[5] = 1 // flags
	if _, err := NewFrameReader(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nonzero flags: %v", err)
	}
}

func TestFrameReaderDetectsCorruption(t *testing.T) {
	stream := buildStream(4096, [][2][]byte{
		{[]byte("hello hello hello"), []byte("payload-a")},
		{[]byte("world"), []byte("payload-b")},
	})

	drain := func(b []byte) error {
		fr, err := NewFrameReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		for {
			_, trailer, err := fr.Next()
			if err != nil {
				return err
			}
			if trailer != nil {
				return nil
			}
		}
	}

	if err := drain(stream); err != nil {
		t.Fatalf("pristine stream: %v", err)
	}

	// Every truncation point must fail — never a clean EOF mid-stream.
	for cut := len(stream) - 1; cut > 4; cut -= 3 {
		if err := drain(stream[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	// Container corruption trips the per-frame CRC.
	c := append([]byte(nil), stream...)
	c[len(AppendStreamHeader(nil, 4096))+15] ^= 0x01 // inside frame 0's container
	if err := drain(c); !errors.Is(err, ErrFrameChecksum) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("corrupted container: %v", err)
	}

	// Out-of-order segment indices.
	oo := AppendStreamHeader(nil, 64)
	oo = AppendSegmentFrame(oo, 1, 3, []byte("abc")) // index 1 first
	if err := drain(oo); !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("out-of-order frame: %v", err)
	}

	// Trailer that disagrees with the frames it follows.
	tr := AppendStreamHeader(nil, 64)
	tr = AppendSegmentFrame(tr, 0, 3, []byte("abc"))
	tr = AppendStreamTrailer(tr, &StreamTrailer{Segments: 2, TotalLen: 3})
	if err := drain(tr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment-count mismatch: %v", err)
	}
	tr = AppendStreamHeader(nil, 64)
	tr = AppendSegmentFrame(tr, 0, 3, []byte("abc"))
	tr = AppendStreamTrailer(tr, &StreamTrailer{Segments: 1, TotalLen: 99})
	if err := drain(tr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("totalLen mismatch: %v", err)
	}

	// Unknown marker byte.
	um := AppendStreamHeader(nil, 64)
	um = append(um, 0x7f)
	if err := drain(um); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown marker: %v", err)
	}

	// Implausible segment length must be rejected before allocating.
	big := AppendStreamHeader(nil, 64)
	big = append(big, 0x01) // segment marker
	big = appendUvarintBytes(big, 0)
	big = appendUvarintBytes(big, 7)
	big = appendUvarintBytes(big, uint64(MaxSegmentLen)+1)
	if err := drain(big); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized compLen: %v", err)
	}
}

func appendUvarintBytes(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// FuzzFrameRoundTrip drives the frame decoder with truncated and mutated
// streams. Invariants: no panics, no unbounded allocations, and pristine
// streams round-trip losslessly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(buildStream(4096, nil))
	f.Add(buildStream(1, [][2][]byte{{[]byte("x"), []byte("c")}}))
	f.Add(buildStream(1<<20, [][2][]byte{
		{bytes.Repeat([]byte("ab"), 100), bytes.Repeat([]byte{0x5a}, 40)},
		{[]byte("tail"), []byte("zz")},
	}))
	f.Add([]byte(StreamMagic))
	f.Add(append([]byte(StreamMagic), StreamVersion, 0, 0x80, 0x80, 0x80))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var frames []*SegmentFrame
		var trailer *StreamTrailer
		for {
			frame, tr, err := fr.Next()
			if err != nil {
				return // truncated/corrupt input is fine, just no panic
			}
			if tr != nil {
				trailer = tr
				break
			}
			frames = append(frames, frame)
			if len(frames) > 1<<16 {
				t.Fatal("frame decoder failed to terminate")
			}
		}
		// A stream the decoder fully accepted must survive a re-encode /
		// re-decode cycle with identical records. (Byte identity is too
		// strong: ReadUvarint tolerates non-canonical varint encodings and
		// the decoder ignores trailing bytes after the trailer.)
		out := AppendStreamHeader(nil, fr.SegmentSize)
		for _, fr := range frames {
			out = AppendSegmentFrame(out, fr.Index, fr.RawLen, fr.Container)
		}
		out = AppendStreamTrailer(out, trailer)
		fr2, err := NewFrameReader(bytes.NewReader(out))
		if err != nil || fr2.SegmentSize != fr.SegmentSize {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		for i := 0; ; i++ {
			frame, tr, err := fr2.Next()
			if err != nil {
				t.Fatalf("re-decode frame %d: %v", i, err)
			}
			if tr != nil {
				if i != len(frames) || *tr != *trailer {
					t.Fatalf("re-decode trailer mismatch: %+v vs %+v after %d frames", tr, trailer, i)
				}
				break
			}
			if i >= len(frames) || frame.Index != frames[i].Index ||
				frame.RawLen != frames[i].RawLen || !bytes.Equal(frame.Container, frames[i].Container) {
				t.Fatalf("re-decode frame %d mismatch", i)
			}
		}
	})
}
