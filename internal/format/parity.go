// Parity frames: the erasure-coding record kind that turns salvage from
// "skip the damage" into "repair the damage".
//
// A writer configured with Parity{K, M} cuts the segment-frame sequence
// into *parity groups* of K consecutive data frames (group g covers
// indices [g·K, (g+1)·K); only the final group, flushed at Close, may be
// shorter). After the last data frame of a group it emits M parity
// frames. Each parity frame carries one Reed–Solomon parity shard
// computed over the *exact encoded bytes* of the group's data frames
// (marker, varints, CRC and container alike), zero-padded to the length
// of the longest frame in the group. Because the shards are the wire
// bytes themselves, reconstruction returns the missing frames
// bit-identically — a repaired stream is indistinguishable from an
// undamaged one, and the per-frame CRC re-verifies every repair.
//
// Wire layout (appended after the group's data frames):
//
//	parity frame, repeated M times per group (j = 0..M-1)
//	  marker       1 byte   0x02
//	  firstIndex   varint   index of the group's first data frame
//	  k            varint   data frames in this group (== K except the
//	                        short final group)
//	  m            varint   parity shards for this group
//	  j            varint   which parity shard this frame carries
//	  shardLen     varint   shard length == max encoded frame length
//	  frameLens    k varints  encoded byte length of each data frame
//	  crc          4 bytes  CRC-32 (IEEE) of the shard payload, big endian
//	  payload      shardLen bytes  parity shard j
//
// Every parity frame repeats the full group geometry (firstIndex, k, m,
// frameLens), so any single surviving parity frame is enough to know
// which byte ranges the group occupied — the property the repair layer
// leans on to locate frames that no longer parse. Parity frames are
// CRC-protected like segment frames, making them safe resynchronization
// points in salvage mode. Streams written without Parity contain no
// parity frames and are byte-identical to pre-parity writers; readers
// that predate parity frames treat marker 0x02 as unknown damage and
// salvage past it, losing only the (redundant) parity bytes.
package format

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"culzss/internal/ecc"
)

// frameMarkerParity tags a parity frame record.
const frameMarkerParity = 0x02

// Parity geometry caps. K is bounded by the repair buffer a reader must
// hold (a group's worth of encoded frames); M by the write amplification
// that still makes sense for a compression format.
const (
	MaxParityK = 64
	MaxParityM = 16
)

// ErrParityGeometry marks an unusable K/M configuration or a parity
// frame whose declared geometry is out of bounds.
var ErrParityGeometry = errors.New("format: invalid parity geometry")

// ParityFrame is one decoded parity record.
type ParityFrame struct {
	FirstIndex int   // index of the group's first data frame
	K          int   // data frames in this group
	M          int   // parity shards for this group
	J          int   // which parity shard this frame carries (0-based)
	ShardLen   int   // length of Shard == max encoded frame length in group
	FrameLens  []int // encoded byte length of each of the K data frames
	Shard      []byte
}

// EncodedLen returns the exact wire length of this parity frame.
func (pf *ParityFrame) EncodedLen() int {
	n := 1 + uvarintLen(uint64(pf.FirstIndex)) + uvarintLen(uint64(pf.K)) +
		uvarintLen(uint64(pf.M)) + uvarintLen(uint64(pf.J)) + uvarintLen(uint64(pf.ShardLen))
	for _, l := range pf.FrameLens {
		n += uvarintLen(uint64(l))
	}
	return n + 4 + len(pf.Shard)
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendParityFrame appends the encoded parity frame to dst.
func AppendParityFrame(dst []byte, pf *ParityFrame) []byte {
	dst = append(dst, frameMarkerParity)
	dst = binary.AppendUvarint(dst, uint64(pf.FirstIndex))
	dst = binary.AppendUvarint(dst, uint64(pf.K))
	dst = binary.AppendUvarint(dst, uint64(pf.M))
	dst = binary.AppendUvarint(dst, uint64(pf.J))
	dst = binary.AppendUvarint(dst, uint64(pf.ShardLen))
	for _, l := range pf.FrameLens {
		dst = binary.AppendUvarint(dst, uint64(l))
	}
	dst = binary.BigEndian.AppendUint32(dst, Checksum32(pf.Shard))
	return append(dst, pf.Shard...)
}

// WriteParityFrame writes one parity frame to w and reports the bytes
// written.
func WriteParityFrame(w io.Writer, pf *ParityFrame) (int, error) {
	return w.Write(AppendParityFrame(make([]byte, 0, pf.EncodedLen()), pf))
}

// BuildParityFrames computes the m parity frames for one group whose
// data frames' exact encoded bytes are frames[0..k). firstIndex is the
// stream index of frames[0].
func BuildParityFrames(firstIndex int, frames [][]byte, m int) ([]*ParityFrame, error) {
	k := len(frames)
	if k < 1 || k > MaxParityK || m < 1 || m > MaxParityM {
		return nil, fmt.Errorf("%w: k=%d m=%d (want 1<=k<=%d, 1<=m<=%d)",
			ErrParityGeometry, k, m, MaxParityK, MaxParityM)
	}
	shardLen := 0
	lens := make([]int, k)
	for i, f := range frames {
		if len(f) == 0 {
			return nil, fmt.Errorf("%w: empty frame %d in parity group", ErrParityGeometry, firstIndex+i)
		}
		lens[i] = len(f)
		if len(f) > shardLen {
			shardLen = len(f)
		}
	}
	shards := make([][]byte, k)
	for i, f := range frames {
		if len(f) == shardLen {
			shards[i] = f
		} else {
			s := make([]byte, shardLen)
			copy(s, f)
			shards[i] = s
		}
	}
	coder, err := ecc.New(k, m)
	if err != nil {
		return nil, err
	}
	parity, err := coder.Parity(shards)
	if err != nil {
		return nil, err
	}
	out := make([]*ParityFrame, m)
	for j := 0; j < m; j++ {
		out[j] = &ParityFrame{
			FirstIndex: firstIndex,
			K:          k,
			M:          m,
			J:          j,
			ShardLen:   shardLen,
			FrameLens:  lens,
			Shard:      parity[j],
		}
	}
	return out, nil
}

// validateParityGeometry rejects parity-frame header fields outside the
// format's bounds before any of them size an allocation.
func validateParityGeometry(firstIndex, k, m, j, shardLen int) error {
	if k < 1 || k > MaxParityK || m < 1 || m > MaxParityM {
		return fmt.Errorf("%w: k=%d m=%d", ErrParityGeometry, k, m)
	}
	if j < 0 || j >= m {
		return fmt.Errorf("%w: shard %d of %d", ErrParityGeometry, j, m)
	}
	// A shard is a zero-padded encoded segment frame: marker + varints +
	// CRC + container, so it can exceed MaxSegmentLen only by the small
	// record overhead.
	if shardLen < 1 || shardLen > MaxSegmentLen+64 {
		return fmt.Errorf("%w: implausible shard length %d", ErrParityGeometry, shardLen)
	}
	if firstIndex < 0 {
		return fmt.Errorf("%w: negative first index", ErrParityGeometry)
	}
	return nil
}

// parseSegmentRecord strictly parses ONE segment frame occupying exactly
// b (no trailing bytes), verifying the per-frame CRC. The repair layer
// runs every reconstructed frame through this before trusting it.
func parseSegmentRecord(b []byte) (*SegmentFrame, error) {
	if len(b) < 1 || b[0] != frameMarkerSegment {
		return nil, fmt.Errorf("%w: reconstructed bytes are not a segment frame", ErrCorrupt)
	}
	p := 1
	fields := make([]int, 3) // index, rawLen, compLen
	for i := range fields {
		v, n := binary.Uvarint(b[p:])
		if n <= 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad varint in reconstructed frame", ErrCorrupt)
		}
		fields[i] = int(v)
		p += n
	}
	index, rawLen, compLen := fields[0], fields[1], fields[2]
	if rawLen > MaxSegmentLen || compLen > MaxSegmentLen {
		return nil, fmt.Errorf("%w: implausible segment lengths raw=%d comp=%d", ErrCorrupt, rawLen, compLen)
	}
	if len(b) != p+4+compLen {
		return nil, fmt.Errorf("%w: reconstructed frame length %d, record needs %d", ErrCorrupt, len(b), p+4+compLen)
	}
	crc := binary.BigEndian.Uint32(b[p : p+4])
	container := b[p+4:]
	if Checksum32(container) != crc {
		return nil, fmt.Errorf("%w: reconstructed segment %d", ErrFrameChecksum, index)
	}
	c := make([]byte, compLen)
	copy(c, container)
	return &SegmentFrame{Index: index, RawLen: rawLen, Container: c}, nil
}
