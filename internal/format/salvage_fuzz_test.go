package format

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// FuzzFrameSalvage hammers the salvage decoder with randomly bit-flipped
// and truncated framed streams. Invariants, whatever the damage:
//
//   - no panics and bounded work (the decoder terminates);
//   - delivered segment indices strictly increase;
//   - every delivered container is bit-exact equal to one of the
//     containers originally written — the per-frame CRC guarantee means
//     salvage never hands over container bytes that did not verify
//     (frame-header damage can at worst mislabel an intact container);
//   - the strict decoder over the same bytes never panics either.
func FuzzFrameSalvage(f *testing.F) {
	f.Add([]byte("some payload bytes that span a few segments"), uint8(3), int64(1), uint16(0))
	f.Add(bytes.Repeat([]byte{0xa5, 0x00, 0x01}, 300), uint8(5), int64(42), uint16(7))
	f.Add([]byte{}, uint8(1), int64(7), uint16(1))
	f.Add(bytes.Repeat([]byte("CLZS"), 64), uint8(2), int64(99), uint16(3)) // magic-looking payload
	f.Fuzz(func(t *testing.T, payload []byte, nSeg uint8, mutSeed int64, cut uint16) {
		// Build a valid stream whose containers are slices of payload.
		n := int(nSeg)%6 + 1
		per := len(payload)/n + 1
		var segs [][2][]byte
		originals := make(map[string]bool)
		for i := 0; i < n; i++ {
			lo := i * per
			if lo > len(payload) {
				lo = len(payload)
			}
			hi := lo + per
			if hi > len(payload) {
				hi = len(payload)
			}
			container := payload[lo:hi]
			segs = append(segs, [2][]byte{container, container})
			originals[string(container)] = true
		}
		stream := buildStream(1<<10, segs)

		// Damage it: up to four seeded bit flips plus an optional cut.
		rng := rand.New(rand.NewSource(mutSeed))
		for i, flips := 0, rng.Intn(4)+1; i < flips && len(stream) > 0; i++ {
			stream[rng.Intn(len(stream))] ^= 1 << rng.Intn(8)
		}
		if cut > 0 && len(stream) > 0 {
			stream = stream[:rng.Intn(len(stream))]
		}

		// The strict decoder must never panic on the damaged bytes.
		if fr, err := NewFrameReader(bytes.NewReader(stream)); err == nil {
			for i := 0; i < 1<<15; i++ {
				if _, tr, err := fr.Next(); err != nil || tr != nil {
					break
				}
			}
		}

		// Salvage decode under the invariants above.
		fr, err := NewFrameReaderSalvage(bytes.NewReader(stream))
		if err != nil {
			return // header damage; rejecting the stream is legal
		}
		prev := -1
		for i := 0; ; i++ {
			if i > 1<<15 {
				t.Fatal("salvage decoder failed to terminate")
			}
			frame, trailer, err := fr.Next()
			if err != nil {
				var cse *CorruptSegmentError
				if errors.As(err, &cse) {
					continue // recoverable; the decoder resumes after it
				}
				if err == io.EOF || IsSalvageable(err) || errors.Is(err, ErrTruncated) ||
					errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFrameOrder) ||
					errors.Is(err, ErrFrameChecksum) || errors.Is(err, ErrBadVersion) {
					return
				}
				t.Fatalf("unexpected terminal error class: %v", err)
			}
			if trailer != nil {
				return
			}
			if frame.Index <= prev {
				t.Fatalf("delivered indices not increasing: %d after %d", frame.Index, prev)
			}
			prev = frame.Index
			if !originals[string(frame.Container)] {
				t.Fatalf("salvage delivered a container that was never written (%d bytes, segment %d)",
					len(frame.Container), frame.Index)
			}
		}
	})
}
