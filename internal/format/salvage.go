// Salvage-mode frame decoding: recover every intact segment of a damaged
// framed stream instead of dying at the first bad byte.
//
// Normal-mode FrameReader semantics are fail-fast: any CRC mismatch,
// out-of-order index, or mid-record truncation is sticky and the rest of
// the stream — often 99% intact — is lost. Salvage mode turns each
// damaged region into a structured *CorruptSegmentError and then
// *resynchronizes*: it scans forward for the next plausible frame marker,
// re-parses the candidate record, and only accepts it when the record is
// fully self-consistent — for segment frames that includes the per-frame
// CRC-32 over the container bytes, so a false resynchronization point is
// vanishingly unlikely; for the (unchecksummed) trailer a resync
// candidate is only accepted when it ends the stream exactly, which is
// the position a legal trailer must occupy.
//
// The scan holds at most one candidate record in memory (O(segment)
// bytes, the same bound as normal incremental decoding). Determinism:
// salvage is a pure function of the input bytes — no randomness, no
// scheduling dependence — so a given damaged stream always yields the
// same recovered segments and the same error reports.
package format

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// maxIndexGap bounds how far ahead a recovered segment index may jump
// past the expected one before the record is considered garbage (a
// resynchronization guard; 2^20 lost segments in one region is beyond
// plausible damage).
const maxIndexGap = 1 << 20

// errNeedMore is the internal signal that a record parse ran out of
// buffered bytes before the record was complete.
var errNeedMore = errors.New("format: record extends past available data")

// CorruptSegmentError reports one damaged region of a framed stream
// encountered in salvage mode. It is returned by FrameReader.Next (and
// surfaced by core.Reader) *between* intact segments: the error is not
// sticky, and the next call resumes with the first record that parsed
// cleanly after the damage.
type CorruptSegmentError struct {
	// Index is the expected index of the first segment lost or damaged in
	// this region.
	Index int
	// Offset is the absolute byte offset in the framed stream at which
	// the damaged region begins (0 = first byte of the stream magic).
	Offset int64
	// Skipped is how many bytes were discarded to resynchronize. 0 means
	// no bytes were damaged but one or more whole frames are missing (a
	// clean index gap).
	Skipped int64
	// Err is the parse or checksum failure that triggered salvage.
	Err error
}

// Error implements error.
func (e *CorruptSegmentError) Error() string {
	if e.Skipped == 0 {
		return fmt.Sprintf("format: segment %d missing at offset %d: %v", e.Index, e.Offset, e.Err)
	}
	return fmt.Sprintf("format: corrupt region at segment %d: skipped %d bytes at offset %d: %v",
		e.Index, e.Skipped, e.Offset, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *CorruptSegmentError) Unwrap() error { return e.Err }

// NewFrameReaderSalvage parses the stream header from r and returns a
// FrameReader in salvage mode. The header itself is not salvageable
// (nothing downstream can be trusted without it), so header errors match
// NewFrameReader's. After a successful open, Next never returns a sticky
// error for in-stream damage: it yields *CorruptSegmentError for each
// damaged region, keeps delivering the intact segments around it, and
// ends with either the trailer, io.EOF, or ErrTruncated.
func NewFrameReaderSalvage(r io.Reader) (*FrameReader, error) {
	fr := &FrameReader{salvage: true, src: r, parityGroupFirst: -1}
	if !fr.ensure(len(StreamMagic)) {
		if fr.readErr != nil {
			return nil, fr.readErr
		}
		return nil, ErrTruncated
	}
	if string(fr.buf[:len(StreamMagic)]) != StreamMagic {
		return nil, ErrBadStreamMagic
	}
	if !fr.ensure(len(StreamMagic) + 2) {
		return nil, ErrTruncated
	}
	if v := fr.buf[len(StreamMagic)]; v != StreamVersion {
		return nil, fmt.Errorf("%w: stream version %d", ErrBadVersion, v)
	}
	if f := fr.buf[len(StreamMagic)+1]; f != 0 {
		return nil, fmt.Errorf("%w: nonzero stream flags %#x", ErrCorrupt, f)
	}
	segSize, n, err := fr.varintAt(len(StreamMagic) + 2)
	if err != nil {
		if errors.Is(err, errNeedMore) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	fr.SegmentSize = segSize
	fr.consume(len(StreamMagic) + 2 + n)
	return fr, nil
}

// Corrupted reports whether salvage has recovered past at least one
// damaged region so far.
func (fr *FrameReader) Corrupted() bool { return fr.corrupted }

// fill reads another chunk from the underlying reader into the salvage
// window. It reports whether any bytes were added.
func (fr *FrameReader) fill() bool {
	if fr.eof {
		return false
	}
	if fr.scratch == nil {
		fr.scratch = make([]byte, 64<<10)
	}
	n, err := fr.src.Read(fr.scratch)
	if n > 0 {
		fr.buf = append(fr.buf, fr.scratch[:n]...)
	}
	if err != nil {
		fr.eof = true
		if err != io.EOF {
			fr.readErr = err
		}
	}
	return n > 0
}

// ensure grows the window to at least n bytes, reporting success.
func (fr *FrameReader) ensure(n int) bool {
	for len(fr.buf) < n {
		if !fr.fill() {
			return false
		}
	}
	return true
}

// consume discards the first n window bytes and advances the absolute
// stream offset.
func (fr *FrameReader) consume(n int) {
	fr.buf = fr.buf[n:]
	fr.off += int64(n)
}

// varintAt decodes a bounded uvarint at window position p, pulling more
// input when the encoding crosses the buffered edge. It returns the
// value, its encoded length, and errNeedMore / a corruption error.
func (fr *FrameReader) varintAt(p int) (int, int, error) {
	for {
		if p < len(fr.buf) {
			v, n := binary.Uvarint(fr.buf[p:])
			if n > 0 {
				if v > 1<<40 {
					return 0, 0, fmt.Errorf("%w: implausible varint %d", ErrCorrupt, v)
				}
				return int(v), n, nil
			}
			if n < 0 {
				return 0, 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
			}
		}
		if !fr.ensure(len(fr.buf) + 1) {
			return 0, 0, errNeedMore
		}
	}
}

// tryRecord attempts to parse one complete record at window position pos.
// On success it returns the record (segment, trailer, or parity) and its
// total encoded length (the window is NOT consumed). Failure is either
// errNeedMore (the stream ended before the record was complete) or a
// corruption error.
func (fr *FrameReader) tryRecord(pos int) (*SegmentFrame, *StreamTrailer, *ParityFrame, int, error) {
	if !fr.ensure(pos + 1) {
		return nil, nil, nil, 0, errNeedMore
	}
	p := pos + 1
	switch marker := fr.buf[pos]; marker {
	case frameMarkerSegment:
		index, n, err := fr.varintAt(p)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		p += n
		rawLen, n, err := fr.varintAt(p)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		p += n
		compLen, n, err := fr.varintAt(p)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		p += n
		if rawLen > MaxSegmentLen || compLen > MaxSegmentLen {
			return nil, nil, nil, 0, fmt.Errorf("%w: implausible segment lengths raw=%d comp=%d", ErrCorrupt, rawLen, compLen)
		}
		lo, hi := fr.nextIndex, fr.nextIndex+maxIndexGap
		if rep := fr.rep; rep != nil && !rep.disabled {
			// Repair mode holds frames until their group closes, so the
			// strict cursor can have been dragged ahead by an imposter
			// (index-varint flip). Accept anything not yet delivered; the
			// group buffer sorts out who is real.
			lo = rep.deliverNext
			if h := rep.maxSeen + 1 + maxIndexGap; h > hi {
				hi = h
			}
		}
		if index < lo || index > hi {
			return nil, nil, nil, 0, fmt.Errorf("%w: got segment %d, want >= %d", ErrFrameOrder, index, lo)
		}
		if !fr.ensure(p + 4 + compLen) {
			return nil, nil, nil, 0, errNeedMore
		}
		crc := binary.BigEndian.Uint32(fr.buf[p : p+4])
		p += 4
		container := fr.buf[p : p+compLen]
		if Checksum32(container) != crc {
			return nil, nil, nil, 0, fmt.Errorf("%w: segment %d", ErrFrameChecksum, index)
		}
		// Copy out: the window's backing array is reused as it slides.
		c := fr.lease(compLen)
		copy(c, container)
		return &SegmentFrame{Index: index, RawLen: rawLen, Container: c}, nil, nil, p + compLen - pos, nil
	case frameMarkerTrailer:
		segments, n, err := fr.varintAt(p)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		p += n
		totalLen, n, err := fr.varintAt(p)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		p += n
		if !fr.ensure(p + 4) {
			return nil, nil, nil, 0, errNeedMore
		}
		t := &StreamTrailer{Segments: segments, TotalLen: totalLen, Checksum: binary.BigEndian.Uint32(fr.buf[p : p+4])}
		p += 4
		switch {
		case pos == 0 && !fr.corrupted:
			// Clean path: enforce the same consistency checks as normal
			// mode, so salvage and normal decoding agree on pristine
			// streams.
			if t.Segments != fr.nextIndex {
				return nil, nil, nil, 0, fmt.Errorf("%w: trailer counts %d segments, stream carried %d", ErrCorrupt, t.Segments, fr.nextIndex)
			}
			if t.TotalLen != fr.rawTotal {
				return nil, nil, nil, 0, fmt.Errorf("%w: trailer totalLen %d, segment rawLens sum to %d", ErrCorrupt, t.TotalLen, fr.rawTotal)
			}
		case pos > 0:
			// Resynchronization candidate. The trailer record carries no
			// self-checksum, so a scan can hallucinate one out of payload
			// bytes; demand the one property a real trailer must have —
			// it ends the stream exactly.
			if fr.ensure(p + 1) {
				return nil, nil, nil, 0, fmt.Errorf("%w: resynchronized trailer not at stream end", ErrCorrupt)
			}
		default:
			// pos == 0 after earlier salvage: the record boundary is
			// trusted, and the counts legitimately disagree with what we
			// recovered — deliver the trailer as the stream's own claim.
		}
		return nil, t, nil, p - pos, nil
	case frameMarkerParity:
		fields := make([]int, 5) // firstIndex, k, m, j, shardLen
		for i := range fields {
			v, n, err := fr.varintAt(p)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			fields[i] = v
			p += n
		}
		pf := &ParityFrame{FirstIndex: fields[0], K: fields[1], M: fields[2], J: fields[3], ShardLen: fields[4]}
		if err := validateParityGeometry(pf.FirstIndex, pf.K, pf.M, pf.J, pf.ShardLen); err != nil {
			return nil, nil, nil, 0, err
		}
		// Parity follows its group's data, so a real parity frame never
		// describes a group starting past the reader's position.
		bound := fr.nextIndex
		if rep := fr.rep; rep != nil && !rep.disabled && rep.maxSeen+1 > bound {
			bound = rep.maxSeen + 1
		}
		if pf.FirstIndex > bound || pf.FirstIndex+pf.K > bound+maxIndexGap {
			return nil, nil, nil, 0, fmt.Errorf("%w: parity group at %d, reader at %d", ErrFrameOrder, pf.FirstIndex, bound)
		}
		pf.FrameLens = make([]int, pf.K)
		for i := range pf.FrameLens {
			v, n, err := fr.varintAt(p)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			if v < 1 || v > pf.ShardLen {
				return nil, nil, nil, 0, fmt.Errorf("%w: frame length %d vs shard length %d", ErrParityGeometry, v, pf.ShardLen)
			}
			pf.FrameLens[i] = v
			p += n
		}
		if !fr.ensure(p + 4 + pf.ShardLen) {
			return nil, nil, nil, 0, errNeedMore
		}
		crc := binary.BigEndian.Uint32(fr.buf[p : p+4])
		p += 4
		shard := fr.buf[p : p+pf.ShardLen]
		if Checksum32(shard) != crc {
			return nil, nil, nil, 0, fmt.Errorf("%w: parity shard %d of group at %d", ErrFrameChecksum, pf.J, pf.FirstIndex)
		}
		pf.Shard = make([]byte, pf.ShardLen)
		copy(pf.Shard, shard)
		return nil, nil, pf, p + pf.ShardLen - pos, nil
	default:
		return nil, nil, nil, 0, fmt.Errorf("%w: unknown frame marker %#x", ErrCorrupt, marker)
	}
}

// nextSalvage decodes the next record in salvage mode. Damaged regions
// come back as *CorruptSegmentError; the following call resumes at the
// resynchronized record. In repair mode (see repair.go) the record flow
// is routed through the group buffer instead.
func (fr *FrameReader) nextSalvage() (*SegmentFrame, *StreamTrailer, error) {
	if fr.rep != nil {
		return fr.repairNext()
	}
	for {
		frame, trailer, parity, err := fr.nextSalvageRaw()
		if parity == nil {
			return frame, trailer, err
		}
		// Parity frames are transparent outside repair mode, but a group
		// that closes past the reader's position reveals data frames that
		// were excised without any byte damage — report the loss the same
		// way a clean index gap at a segment frame would.
		if close := parity.FirstIndex + parity.K; close > fr.nextIndex {
			cse := &CorruptSegmentError{
				Index:  fr.nextIndex,
				Offset: fr.recOff,
				Err:    fmt.Errorf("%w: parity closes group at %d, reader is at %d", ErrFrameOrder, close, fr.nextIndex),
			}
			fr.corrupted = true
			fr.nextIndex = close
			return nil, nil, cse
		}
	}
}

// nextSalvageRaw decodes the next record in salvage mode, surfacing
// parity frames to the caller instead of absorbing them. It does not
// advance nextIndex for parity records — callers decide how a group
// close moves the expected index. fr.recOff holds the returned record's
// absolute start offset.
func (fr *FrameReader) nextSalvageRaw() (*SegmentFrame, *StreamTrailer, *ParityFrame, error) {
	// Deliver the record stashed behind a just-reported corruption.
	if fr.pendFrame != nil {
		f := fr.pendFrame
		fr.pendFrame = nil
		return f, nil, nil, nil
	}
	if fr.pendTrailer != nil {
		t := fr.pendTrailer
		fr.pendTrailer = nil
		return nil, t, nil, nil
	}
	if fr.pendParity != nil {
		p := fr.pendParity
		fr.pendParity = nil
		return nil, nil, p, nil
	}

	startOff := fr.off
	frame, trailer, parity, n, err := fr.tryRecord(0)
	if err == nil {
		fr.consume(n)
		fr.recOff = startOff
		if parity != nil {
			fr.noteParity(parity)
			return nil, nil, parity, nil
		}
		f, t, aerr := fr.acceptSalvage(frame, trailer, startOff)
		return f, t, nil, aerr
	}
	if errors.Is(err, errNeedMore) && len(fr.buf) == 0 {
		// Clean record boundary at end of data but no trailer was seen.
		if fr.readErr != nil {
			return nil, nil, nil, fr.readErr
		}
		return nil, nil, nil, ErrTruncated
	}

	// Damage at the expected record position: resynchronize.
	cause := err
	if errors.Is(cause, errNeedMore) {
		cause = ErrTruncated
	}
	for skip := 1; ; skip++ {
		if !fr.ensure(skip + 1) {
			// Scanned to end of data without resynchronizing: the whole
			// tail is damage.
			if fr.readErr != nil {
				return nil, nil, nil, fr.readErr
			}
			skipped := int64(len(fr.buf))
			fr.consume(len(fr.buf))
			fr.corrupted = true
			return nil, nil, nil, &CorruptSegmentError{Index: fr.nextIndex, Offset: startOff, Skipped: skipped, Err: cause}
		}
		b := fr.buf[skip]
		if b != frameMarkerSegment && b != frameMarkerTrailer && b != frameMarkerParity {
			continue
		}
		f2, t2, p2, n2, err2 := fr.tryRecord(skip)
		if err2 != nil {
			continue // not a real record; keep scanning
		}
		// Resynchronized. Report the damaged region first; stash the
		// recovered record for the next call.
		fr.corrupted = true
		cse := &CorruptSegmentError{Index: fr.nextIndex, Offset: startOff, Skipped: int64(skip), Err: cause}
		fr.recOff = startOff + int64(skip)
		fr.consume(skip + n2)
		switch {
		case t2 != nil:
			fr.pendTrailer = t2
		case p2 != nil:
			fr.noteParity(p2)
			fr.pendParity = p2
		default:
			fr.nextIndex = f2.Index + 1
			fr.rawTotal += f2.RawLen
			fr.pendFrame = f2
		}
		return nil, nil, nil, cse
	}
}

// acceptSalvage applies index bookkeeping to a record parsed at the
// expected boundary, turning clean index gaps (whole frames excised
// without byte damage) into CorruptSegmentError reports too.
func (fr *FrameReader) acceptSalvage(frame *SegmentFrame, trailer *StreamTrailer, startOff int64) (*SegmentFrame, *StreamTrailer, error) {
	if trailer != nil {
		return nil, trailer, nil
	}
	if frame.Index != fr.nextIndex {
		cse := &CorruptSegmentError{
			Index:  fr.nextIndex,
			Offset: startOff,
			Err:    fmt.Errorf("%w: got segment %d, want %d", ErrFrameOrder, frame.Index, fr.nextIndex),
		}
		fr.corrupted = true
		fr.nextIndex = frame.Index + 1
		fr.rawTotal += frame.RawLen
		fr.pendFrame = frame
		return nil, nil, cse
	}
	fr.nextIndex++
	fr.rawTotal += frame.RawLen
	return frame, nil, nil
}

// IsSalvageable reports whether err is the kind of in-stream damage
// salvage mode can recover past (checksum mismatches, corrupt records,
// ordering violations, truncation) as opposed to I/O failures or API
// misuse.
func IsSalvageable(err error) bool {
	var cse *CorruptSegmentError
	return errors.As(err, &cse) ||
		errors.Is(err, ErrCorrupt) ||
		errors.Is(err, ErrFrameChecksum) ||
		errors.Is(err, ErrFrameOrder) ||
		errors.Is(err, ErrParityGeometry) ||
		errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrTruncated)
}
