// Frame layer: a *framed stream* is a sequence of self-describing segment
// containers, the bounded-memory transport the paper's network-gateway
// scenario needs (§VII: "heavy traffic" cannot buffer whole files). One
// logical stream is cut into segments; each segment is compressed into an
// ordinary CLZ1 container and wrapped in a frame record, so a receiver can
// decode segment-at-a-time with O(SegmentSize) memory and detect
// truncation or corruption before handing bytes to a decompressor.
//
// Wire layout (all multi-byte integers are unsigned varints unless noted):
//
//	stream header
//	  magic        4 bytes  "CLZS"
//	  version      1 byte   frame format version (currently 1)
//	  flags        1 byte   reserved, must be zero
//	  segmentSize  varint   nominal uncompressed segment size (advisory)
//
//	segment frame, repeated once per segment
//	  marker       1 byte   0x01
//	  index        varint   0-based sequence number
//	  rawLen       varint   uncompressed length of this segment
//	  compLen      varint   length of the container that follows
//	  crc          4 bytes  CRC-32 (IEEE) of the container bytes, big endian
//	  container    compLen bytes  a standard CLZ1 container (any codec)
//
//	trailer
//	  marker       1 byte   0x00
//	  segments     varint   total number of segment frames
//	  totalLen     varint   total uncompressed stream length
//	  crc          4 bytes  CRC-32 (IEEE) of the whole uncompressed stream
//
// The per-frame CRC covers the *compressed* container, so a receiver
// rejects a damaged frame without paying for decompression; the trailer
// CRC covers the *uncompressed* stream, the end-to-end "data looks the
// same going in as coming out" guarantee (§III). The trailer marker reuses
// the frame-marker byte position, so a reader distinguishes "next segment"
// from "end of stream" with a single byte read.
package format

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"culzss/internal/obs"
)

// StreamMagic identifies a CULZSS framed stream. It deliberately shares
// the "CLZ" prefix with the container magic while staying distinguishable
// in the fourth byte.
const StreamMagic = "CLZS"

// StreamVersion is the current frame format version.
const StreamVersion = 1

// Frame markers (the first byte of every record after the stream header).
const (
	frameMarkerTrailer = 0x00
	frameMarkerSegment = 0x01
)

// MaxSegmentLen caps the per-segment lengths a reader will accept; frames
// claiming more are corrupt (and would otherwise let a hostile header
// drive a huge allocation).
const MaxSegmentLen = 1 << 30

// Frame-layer errors.
var (
	// ErrBadStreamMagic marks input that is not a framed stream.
	ErrBadStreamMagic = errors.New("format: bad stream magic (not a CULZSS framed stream)")
	// ErrFrameChecksum marks a segment frame whose container bytes fail
	// the per-frame CRC.
	ErrFrameChecksum = errors.New("format: frame checksum mismatch")
	// ErrFrameOrder marks out-of-sequence segment indices.
	ErrFrameOrder = errors.New("format: segment frames out of order")
)

// SegmentFrame is one decoded segment record.
type SegmentFrame struct {
	Index     int    // 0-based sequence number
	RawLen    int    // uncompressed length of the segment
	Container []byte // the CLZ1 container holding the compressed segment
}

// StreamTrailer is the end-of-stream record.
type StreamTrailer struct {
	Segments int    // number of segment frames in the stream
	TotalLen int    // total uncompressed length
	Checksum uint32 // CRC-32 (IEEE) of the whole uncompressed stream
}

// AppendStreamHeader appends the encoded stream header to dst.
func AppendStreamHeader(dst []byte, segmentSize int) []byte {
	dst = append(dst, StreamMagic...)
	dst = append(dst, StreamVersion, 0)
	return binary.AppendUvarint(dst, uint64(segmentSize))
}

// AppendSegmentFrame appends one segment frame (record plus container) to
// dst.
func AppendSegmentFrame(dst []byte, index, rawLen int, container []byte) []byte {
	dst = append(dst, frameMarkerSegment)
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = binary.AppendUvarint(dst, uint64(rawLen))
	dst = binary.AppendUvarint(dst, uint64(len(container)))
	dst = binary.BigEndian.AppendUint32(dst, Checksum32(container))
	return append(dst, container...)
}

// AppendStreamTrailer appends the trailer record to dst.
func AppendStreamTrailer(dst []byte, t *StreamTrailer) []byte {
	dst = append(dst, frameMarkerTrailer)
	dst = binary.AppendUvarint(dst, uint64(t.Segments))
	dst = binary.AppendUvarint(dst, uint64(t.TotalLen))
	return binary.BigEndian.AppendUint32(dst, t.Checksum)
}

// WriteStreamHeader writes the stream header to w and reports the bytes
// written.
func WriteStreamHeader(w io.Writer, segmentSize int) (int, error) {
	return w.Write(AppendStreamHeader(make([]byte, 0, 16), segmentSize))
}

// WriteSegmentFrame writes one segment frame to w and reports the bytes
// written.
func WriteSegmentFrame(w io.Writer, index, rawLen int, container []byte) (int, error) {
	return w.Write(AppendSegmentFrame(make([]byte, 0, 24+len(container)), index, rawLen, container))
}

// WriteStreamTrailer writes the trailer to w and reports the bytes
// written.
func WriteStreamTrailer(w io.Writer, t *StreamTrailer) (int, error) {
	return w.Write(AppendStreamTrailer(make([]byte, 0, 16), t))
}

// frameByteReader is the reader the frame decoder needs: stream reads for
// container payloads plus single-byte reads for markers and varints.
type frameByteReader interface {
	io.Reader
	io.ByteReader
}

// FrameReader decodes a framed stream incrementally: one Next call per
// record, holding at most one segment's container in memory.
type FrameReader struct {
	r frameByteReader
	// SegmentSize is the advisory nominal segment size from the stream
	// header.
	SegmentSize int
	// Obs, when non-nil, counts decoded records
	// (culzss_frames_read_total{kind=...}) and — in salvage mode —
	// resynchronisations and discarded bytes. Set it before the first
	// Next call; nil is inert.
	Obs *obs.Registry

	// OnParity, when non-nil, observes every intact parity frame as it is
	// decoded (both modes). Parity frames are otherwise transparent: Next
	// never returns them.
	OnParity func(*ParityFrame)
	// RepairSink, when non-nil in repair mode, receives the exact encoded
	// bytes of every frame the repair layer reconstructs, together with
	// the absolute stream offset the frame originally occupied — the hook
	// durable recovery uses to patch damage in place. The offset is -1
	// when the original position could not be established.
	RepairSink func(index int, off int64, encoded []byte)
	// Lease, when non-nil, supplies the buffer behind each returned
	// SegmentFrame.Container (both normal and salvage modes): it is
	// called with the needed length and may return a recycled buffer of
	// at least that capacity; a nil or short return falls back to the
	// allocator. Ownership of the Container passes to the Next caller as
	// usual — the streaming layer points Lease at a recycle pool and
	// returns each container once its segment is decoded, removing the
	// per-frame throwaway allocation. Set it before the first Next.
	Lease func(n int) []byte
	// ParityK and ParityM report the stream's parity geometry, learned
	// from the first parity frame (0,0 until one is seen / for
	// parity-less streams).
	ParityK, ParityM int
	// ParityFrames counts intact parity frames decoded so far.
	ParityFrames int

	nextIndex int
	rawTotal  int
	trailer   *StreamTrailer
	err       error

	// Parity j-sequencing state (normal mode): first index of the parity
	// group currently being read and the next expected shard number.
	parityGroupFirst int
	parityNextJ      int

	// Salvage mode (see salvage.go): reads go through a sliding window so
	// the decoder can back up and rescan after a damaged record.
	salvage     bool
	src         io.Reader
	buf         []byte // unconsumed window
	off         int64  // absolute stream offset of buf[0]
	scratch     []byte // fill() read buffer
	eof         bool
	readErr     error
	corrupted   bool
	pendFrame   *SegmentFrame
	pendTrailer *StreamTrailer
	pendParity  *ParityFrame
	// recOff is the absolute stream offset at which the most recently
	// returned salvage record started.
	recOff int64

	// rep holds the repair-mode state (see repair.go); nil outside repair
	// mode.
	rep *repairState
}

// NewFrameReader parses the stream header from r and returns a reader for
// the frames that follow. Inputs not starting with StreamMagic fail with
// ErrBadStreamMagic.
func NewFrameReader(r io.Reader) (*FrameReader, error) {
	br, ok := r.(frameByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if string(magic[:]) != StreamMagic {
		return nil, ErrBadStreamMagic
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, eofToTruncated(err)
	}
	if version != StreamVersion {
		return nil, fmt.Errorf("%w: stream version %d", ErrBadVersion, version)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, eofToTruncated(err)
	}
	if flags != 0 {
		return nil, fmt.Errorf("%w: nonzero stream flags %#x", ErrCorrupt, flags)
	}
	segSize, err := readVarint(br)
	if err != nil {
		return nil, err
	}
	return &FrameReader{r: br, SegmentSize: segSize, parityGroupFirst: -1}, nil
}

// Next decodes the next record. It returns (frame, nil, nil) for a segment
// frame, (nil, trailer, nil) at the end-of-stream trailer, and a non-nil
// error for truncated or corrupt input. After the trailer (or an error),
// further calls return io.EOF (or the sticky error).
// In salvage mode (NewFrameReaderSalvage) a returned *CorruptSegmentError
// is NOT sticky: it reports one damaged region, and the next call resumes
// with the first record that parsed cleanly after it.
func (fr *FrameReader) Next() (*SegmentFrame, *StreamTrailer, error) {
	if fr.err != nil {
		return nil, nil, fr.err
	}
	if fr.trailer != nil {
		return nil, nil, io.EOF
	}
	next := fr.next
	if fr.salvage {
		next = fr.nextSalvage
	}
	frame, trailer, err := next()
	if err != nil {
		var cse *CorruptSegmentError
		if errors.As(err, &cse) {
			fr.Obs.Counter("culzss_frames_salvage_resyncs_total").Inc()
			fr.Obs.Counter("culzss_frames_salvage_skipped_bytes_total").Add(cse.Skipped)
			return nil, nil, err // salvage: recoverable, not sticky
		}
		var rse *RepairedSegmentError
		if errors.As(err, &rse) {
			return nil, nil, err // repair notice: damage healed, not sticky
		}
		fr.err = err
		return nil, nil, err
	}
	if trailer != nil {
		fr.trailer = trailer
		fr.Obs.Counter("culzss_frames_read_total", obs.L("kind", "trailer")).Inc()
	} else {
		fr.Obs.Counter("culzss_frames_read_total", obs.L("kind", "segment")).Inc()
	}
	return frame, trailer, nil
}

func (fr *FrameReader) next() (*SegmentFrame, *StreamTrailer, error) {
	for {
		frame, trailer, err := fr.nextRecord()
		if err != nil || frame != nil || trailer != nil {
			return frame, trailer, err
		}
		// A parity frame was decoded and absorbed; keep reading.
	}
}

func (fr *FrameReader) nextRecord() (*SegmentFrame, *StreamTrailer, error) {
	marker, err := fr.r.ReadByte()
	if err != nil {
		// A stream must end with a trailer; EOF here is truncation.
		return nil, nil, eofToTruncated(err)
	}
	switch marker {
	case frameMarkerSegment:
		index, err := readVarint(fr.r)
		if err != nil {
			return nil, nil, err
		}
		if index != fr.nextIndex {
			return nil, nil, fmt.Errorf("%w: got segment %d, want %d", ErrFrameOrder, index, fr.nextIndex)
		}
		rawLen, err := readVarint(fr.r)
		if err != nil {
			return nil, nil, err
		}
		compLen, err := readVarint(fr.r)
		if err != nil {
			return nil, nil, err
		}
		if rawLen > MaxSegmentLen || compLen > MaxSegmentLen {
			return nil, nil, fmt.Errorf("%w: implausible segment lengths raw=%d comp=%d", ErrCorrupt, rawLen, compLen)
		}
		var crc [4]byte
		if _, err := io.ReadFull(fr.r, crc[:]); err != nil {
			return nil, nil, eofToTruncated(err)
		}
		container := fr.lease(compLen)
		if _, err := io.ReadFull(fr.r, container); err != nil {
			return nil, nil, eofToTruncated(err)
		}
		if Checksum32(container) != binary.BigEndian.Uint32(crc[:]) {
			return nil, nil, fmt.Errorf("%w: segment %d", ErrFrameChecksum, index)
		}
		fr.nextIndex++
		fr.rawTotal += rawLen
		return &SegmentFrame{Index: index, RawLen: rawLen, Container: container}, nil, nil
	case frameMarkerTrailer:
		segments, err := readVarint(fr.r)
		if err != nil {
			return nil, nil, err
		}
		totalLen, err := readVarint(fr.r)
		if err != nil {
			return nil, nil, err
		}
		var crc [4]byte
		if _, err := io.ReadFull(fr.r, crc[:]); err != nil {
			return nil, nil, eofToTruncated(err)
		}
		t := &StreamTrailer{Segments: segments, TotalLen: totalLen, Checksum: binary.BigEndian.Uint32(crc[:])}
		if t.Segments != fr.nextIndex {
			return nil, nil, fmt.Errorf("%w: trailer counts %d segments, stream carried %d", ErrCorrupt, t.Segments, fr.nextIndex)
		}
		if t.TotalLen != fr.rawTotal {
			return nil, nil, fmt.Errorf("%w: trailer totalLen %d, segment rawLens sum to %d", ErrCorrupt, t.TotalLen, fr.rawTotal)
		}
		return nil, t, nil
	case frameMarkerParity:
		pf, err := fr.readParity()
		if err != nil {
			return nil, nil, err
		}
		if err := fr.acceptParity(pf); err != nil {
			return nil, nil, err
		}
		return nil, nil, nil // absorbed; caller keeps reading
	default:
		return nil, nil, fmt.Errorf("%w: unknown frame marker %#x", ErrCorrupt, marker)
	}
}

// readParity decodes one parity frame body (the marker byte has already
// been consumed), verifying geometry bounds and the shard CRC.
func (fr *FrameReader) readParity() (*ParityFrame, error) {
	fields := make([]int, 5) // firstIndex, k, m, j, shardLen
	for i := range fields {
		v, err := readVarint(fr.r)
		if err != nil {
			return nil, err
		}
		fields[i] = v
	}
	pf := &ParityFrame{FirstIndex: fields[0], K: fields[1], M: fields[2], J: fields[3], ShardLen: fields[4]}
	if err := validateParityGeometry(pf.FirstIndex, pf.K, pf.M, pf.J, pf.ShardLen); err != nil {
		return nil, err
	}
	pf.FrameLens = make([]int, pf.K)
	for i := range pf.FrameLens {
		v, err := readVarint(fr.r)
		if err != nil {
			return nil, err
		}
		if v < 1 || v > pf.ShardLen {
			return nil, fmt.Errorf("%w: frame length %d vs shard length %d", ErrParityGeometry, v, pf.ShardLen)
		}
		pf.FrameLens[i] = v
	}
	var crc [4]byte
	if _, err := io.ReadFull(fr.r, crc[:]); err != nil {
		return nil, eofToTruncated(err)
	}
	pf.Shard = make([]byte, pf.ShardLen)
	if _, err := io.ReadFull(fr.r, pf.Shard); err != nil {
		return nil, eofToTruncated(err)
	}
	if Checksum32(pf.Shard) != binary.BigEndian.Uint32(crc[:]) {
		return nil, fmt.Errorf("%w: parity shard %d of group at %d", ErrFrameChecksum, pf.J, pf.FirstIndex)
	}
	return pf, nil
}

// acceptParity applies ordering checks and bookkeeping to an intact
// parity frame in fail-fast (normal) mode.
func (fr *FrameReader) acceptParity(pf *ParityFrame) error {
	// Parity for [firstIndex, firstIndex+k) legally appears only right
	// after that group's last data frame.
	if pf.FirstIndex+pf.K != fr.nextIndex {
		return fmt.Errorf("%w: parity group [%d,%d) closes at segment %d, reader is at %d",
			ErrFrameOrder, pf.FirstIndex, pf.FirstIndex+pf.K, pf.FirstIndex+pf.K, fr.nextIndex)
	}
	if pf.FirstIndex == fr.parityGroupFirst {
		if pf.J != fr.parityNextJ {
			return fmt.Errorf("%w: parity shard %d of group at %d, want %d",
				ErrFrameOrder, pf.J, pf.FirstIndex, fr.parityNextJ)
		}
	} else {
		if pf.J != 0 {
			return fmt.Errorf("%w: parity group at %d starts with shard %d", ErrFrameOrder, pf.FirstIndex, pf.J)
		}
		fr.parityGroupFirst = pf.FirstIndex
	}
	fr.parityNextJ = pf.J + 1
	fr.noteParity(pf)
	return nil
}

// noteParity records an intact parity frame (both modes): geometry,
// counters, hook.
func (fr *FrameReader) noteParity(pf *ParityFrame) {
	if fr.ParityK == 0 {
		fr.ParityK, fr.ParityM = pf.K, pf.M
	}
	fr.ParityFrames++
	fr.Obs.Counter("culzss_frames_read_total", obs.L("kind", "parity")).Inc()
	if fr.OnParity != nil {
		fr.OnParity(pf)
	}
}

// lease returns a length-n container buffer from the Lease hook when it
// can satisfy the request, or the allocator.
func (fr *FrameReader) lease(n int) []byte {
	if fr.Lease != nil {
		if b := fr.Lease(n); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// readVarint decodes one bounded unsigned varint from r.
func readVarint(r io.ByteReader) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, eofToTruncated(err)
	}
	if v > 1<<40 {
		return 0, fmt.Errorf("%w: implausible varint %d", ErrCorrupt, v)
	}
	return int(v), nil
}

// eofToTruncated maps mid-record EOFs onto ErrTruncated: a framed stream
// only legally ends immediately after its trailer.
func eofToTruncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}
