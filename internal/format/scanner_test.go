package format

import (
	"bytes"
	"errors"
	"testing"
)

// buildScanStream assembles a header + n segment frames (+ optional
// trailer) and returns the bytes plus the record-boundary offsets in
// order (offset just past the header, past each frame, past the trailer).
func buildScanStream(t *testing.T, n int, withTrailer bool) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	var bounds []int64
	if _, err := WriteStreamHeader(&buf, 4096); err != nil {
		t.Fatal(err)
	}
	bounds = append(bounds, int64(buf.Len()))
	total := 0
	for i := 0; i < n; i++ {
		container := bytes.Repeat([]byte{byte('a' + i)}, 50+i*13)
		if _, err := WriteSegmentFrame(&buf, i, 100+i, container); err != nil {
			t.Fatal(err)
		}
		total += 100 + i
		bounds = append(bounds, int64(buf.Len()))
	}
	if withTrailer {
		tr := &StreamTrailer{Segments: n, TotalLen: total, Checksum: 0xdeadbeef}
		if _, err := WriteStreamTrailer(&buf, tr); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, int64(buf.Len()))
	}
	return buf.Bytes(), bounds
}

func TestBoundaryScannerFullStream(t *testing.T) {
	data, bounds := buildScanStream(t, 3, true)
	s := NewBoundaryScanner()
	if n, err := s.Write(data); n != len(data) || err != nil {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(data))
	}
	if s.GoodOffset() != int64(len(data)) {
		t.Fatalf("GoodOffset = %d, want %d", s.GoodOffset(), len(data))
	}
	if s.Records() != 3 {
		t.Fatalf("Records = %d, want 3", s.Records())
	}
	if !s.TrailerDone() {
		t.Fatal("TrailerDone = false after a complete stream")
	}
	_ = bounds
}

func TestBoundaryScannerByteAtATime(t *testing.T) {
	// Feeding one byte per Write call must land on exactly the same
	// boundaries as one big call: GoodOffset only ever equals a real
	// record boundary.
	data, bounds := buildScanStream(t, 3, true)
	isBound := map[int64]bool{0: true}
	for _, b := range bounds {
		isBound[b] = true
	}
	s := NewBoundaryScanner()
	for i := range data {
		if _, err := s.Write(data[i : i+1]); err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if !isBound[s.GoodOffset()] {
			t.Fatalf("after byte %d GoodOffset = %d, not a record boundary", i, s.GoodOffset())
		}
		if s.Offset() != int64(i+1) {
			t.Fatalf("after byte %d Offset = %d", i, s.Offset())
		}
	}
	if !s.TrailerDone() || s.Records() != 3 {
		t.Fatalf("end state: trailer=%v records=%d", s.TrailerDone(), s.Records())
	}
}

func TestBoundaryScannerTruncationPoints(t *testing.T) {
	// For every possible truncation length, GoodOffset must be the
	// greatest record boundary ≤ the cut.
	data, bounds := buildScanStream(t, 3, true)
	for cut := 0; cut <= len(data); cut++ {
		want := int64(0)
		for _, b := range bounds {
			if b <= int64(cut) {
				want = b
			}
		}
		s := NewBoundaryScanner()
		if _, err := s.Write(data[:cut]); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if s.GoodOffset() != want {
			t.Fatalf("cut %d: GoodOffset = %d, want %d", cut, s.GoodOffset(), want)
		}
	}
}

func TestBoundaryScannerResume(t *testing.T) {
	data, bounds := buildScanStream(t, 4, true)
	// Resume at the boundary after frame 1 (bounds[0] is the header).
	off, records := bounds[2], 2
	s := ResumeBoundaryScanner(off, records)
	if _, err := s.Write(data[off:]); err != nil {
		t.Fatal(err)
	}
	if s.GoodOffset() != int64(len(data)) || s.Records() != 4 || !s.TrailerDone() {
		t.Fatalf("resumed scan: good=%d records=%d trailer=%v",
			s.GoodOffset(), s.Records(), s.TrailerDone())
	}
}

func TestBoundaryScannerRejectsStructuralViolations(t *testing.T) {
	valid, bounds := buildScanStream(t, 2, true)

	t.Run("bad magic", func(t *testing.T) {
		s := NewBoundaryScanner()
		if _, err := s.Write([]byte("XLZS")); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("unknown marker", func(t *testing.T) {
		s := NewBoundaryScanner()
		bad := append(append([]byte{}, valid[:bounds[0]]...), 0x7f)
		if _, err := s.Write(bad); err == nil {
			t.Fatal("unknown frame marker accepted")
		}
		// The error is sticky.
		if _, err := s.Write([]byte{0}); err == nil {
			t.Fatal("scanner not sticky after a structural error")
		}
	})
	t.Run("out-of-order index", func(t *testing.T) {
		var frame bytes.Buffer
		if _, err := WriteSegmentFrame(&frame, 5, 10, []byte("xxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
		s := NewBoundaryScanner()
		bad := append(append([]byte{}, valid[:bounds[0]]...), frame.Bytes()...)
		if _, err := s.Write(bad); err == nil {
			t.Fatal("out-of-order segment index accepted")
		}
	})
	t.Run("byte after trailer", func(t *testing.T) {
		s := NewBoundaryScanner()
		if _, err := s.Write(valid); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Write([]byte{0}); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
	t.Run("trailer segment mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := WriteStreamHeader(&buf, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteStreamTrailer(&buf, &StreamTrailer{Segments: 3, TotalLen: 0}); err != nil {
			t.Fatal(err)
		}
		s := NewBoundaryScanner()
		if _, err := s.Write(buf.Bytes()); err == nil {
			t.Fatal("trailer with wrong segment count accepted")
		}
	})
}

// TestBoundaryScannerParityStream: parity frames advance the good
// offset without counting as segment records, byte-at-a-time included.
func TestBoundaryScannerParityStream(t *testing.T) {
	segs := buildParitySegs(5) // k=2, m=2: short final group of 1
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 2, 2)

	s := NewBoundaryScanner()
	for _, b := range stream { // byte at a time: exercises every state edge
		if _, err := s.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.TrailerDone() || s.GoodOffset() != int64(len(stream)) {
		t.Fatalf("trailer=%v good=%d want %d", s.TrailerDone(), s.GoodOffset(), len(stream))
	}
	if s.Records() != 5 {
		t.Fatalf("records = %d, want 5", s.Records())
	}
	if s.ParityRecords() != 6 { // 3 groups x m=2
		t.Fatalf("parity records = %d, want 6", s.ParityRecords())
	}

	// Good offset lands exactly on record boundaries mid-stream.
	s = NewBoundaryScanner()
	if _, err := s.Write(stream[:recOffs[3]+1]); err != nil { // 1 byte into record 3
		t.Fatal(err)
	}
	if s.GoodOffset() != int64(recOffs[3]) {
		t.Fatalf("good = %d, want boundary %d", s.GoodOffset(), recOffs[3])
	}
	_ = trailerOff

	// Parity emitted at the wrong position is a framing bug.
	frames := make([][]byte, 2)
	for i := range frames {
		frames[i] = AppendSegmentFrame(nil, i, len(segs[i][0]), segs[i][1])
	}
	pfs, err := BuildParityFrames(0, frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := AppendStreamHeader(nil, 1<<16)
	bad = append(bad, frames[0]...) // only 1 of the group's 2 frames written
	bad = AppendParityFrame(bad, pfs[0])
	s = NewBoundaryScanner()
	if _, err := s.Write(bad); !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("misplaced parity: %v, want ErrFrameOrder", err)
	}
}
