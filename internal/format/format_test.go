package format

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleHeader() *Header {
	return &Header{
		Codec:       CodecCULZSSV1,
		MinMatch:    3,
		Window:      128,
		Lookahead:   18,
		ChunkSize:   4096,
		OriginalLen: 10000,
		Checksum:    0xDEADBEEF,
		ChunkSizes:  []int{4000, 3800, 1500},
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	enc := AppendHeader(nil, h)
	payload := make([]byte, h.PayloadLen())
	enc = append(enc, payload...)

	got, off, err := ParseHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if off != len(enc)-len(payload) {
		t.Fatalf("payload offset = %d, want %d", off, len(enc)-len(payload))
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripSingleChunk(t *testing.T) {
	h := &Header{
		Codec:       CodecSerialBitPacked,
		MinMatch:    3,
		Window:      4096,
		Lookahead:   18,
		ChunkSize:   0,
		OriginalLen: 555,
		Checksum:    1,
		ChunkSizes:  []int{300},
	}
	enc := AppendHeader(nil, h)
	enc = append(enc, make([]byte, 300)...)
	got, _, err := ParseHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("mismatch: got %+v want %+v", got, h)
	}
}

func TestParseHeaderBadMagic(t *testing.T) {
	enc := AppendHeader(nil, sampleHeader())
	enc[0] = 'X'
	if _, _, err := ParseHeader(enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseHeaderBadVersion(t *testing.T) {
	enc := AppendHeader(nil, sampleHeader())
	enc[4] = 99
	if _, _, err := ParseHeader(enc); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseHeaderBadCodec(t *testing.T) {
	h := sampleHeader()
	h.Codec = Codec(200)
	enc := AppendHeader(nil, h)
	enc = append(enc, make([]byte, h.PayloadLen())...)
	if _, _, err := ParseHeader(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestParseHeaderNonzeroReserved(t *testing.T) {
	enc := AppendHeader(nil, sampleHeader())
	enc[7] = 1
	if _, _, err := ParseHeader(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestParseHeaderTruncation(t *testing.T) {
	h := sampleHeader()
	full := AppendHeader(nil, h)
	full = append(full, make([]byte, h.PayloadLen())...)
	// Every prefix strictly inside the header+payload region must error,
	// never panic.
	headerLen := len(full) - h.PayloadLen()
	for i := 0; i < headerLen; i++ {
		if _, _, err := ParseHeader(full[:i]); err == nil {
			t.Fatalf("ParseHeader accepted %d-byte truncation of %d-byte header", i, headerLen)
		}
	}
	// Truncating the payload must also be caught by Validate.
	if _, _, err := ParseHeader(full[:len(full)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload truncation: err = %v, want ErrTruncated", err)
	}
}

func TestParseHeaderChunkCountMismatch(t *testing.T) {
	h := sampleHeader()
	h.ChunkSizes = h.ChunkSizes[:2] // 10000/4096 needs 3 chunks
	enc := AppendHeader(nil, h)
	enc = append(enc, make([]byte, h.PayloadLen())...)
	if _, _, err := ParseHeader(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestParseHeaderRandomCorruption(t *testing.T) {
	h := sampleHeader()
	full := AppendHeader(nil, h)
	full = append(full, make([]byte, h.PayloadLen())...)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), full...)
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		// Must never panic; errors are fine, silent acceptance of a
		// header that then disagrees with itself is caught by Validate.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			_, _, _ = ParseHeader(corrupt)
		}()
	}
}

func TestChunkBounds(t *testing.T) {
	h := sampleHeader()
	bounds := h.ChunkBounds()
	if len(bounds) != 3 {
		t.Fatalf("len = %d", len(bounds))
	}
	want := []ChunkBound{
		{Index: 0, UncompOff: 0, UncompLen: 4096, CompOff: 0, CompLen: 4000},
		{Index: 1, UncompOff: 4096, UncompLen: 4096, CompOff: 4000, CompLen: 3800},
		{Index: 2, UncompOff: 8192, UncompLen: 10000 - 8192, CompOff: 7800, CompLen: 1500},
	}
	if !reflect.DeepEqual(bounds, want) {
		t.Fatalf("bounds mismatch:\ngot  %+v\nwant %+v", bounds, want)
	}
}

func TestChunkBoundsSingle(t *testing.T) {
	h := &Header{ChunkSize: 0, OriginalLen: 777, ChunkSizes: []int{100}}
	b := h.ChunkBounds()
	if len(b) != 1 || b[0].UncompLen != 777 || b[0].CompLen != 100 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestSplitChunks(t *testing.T) {
	data := make([]byte, 10)
	for i := range data {
		data[i] = byte(i)
	}
	chunks := SplitChunks(data, 4)
	if len(chunks) != 3 {
		t.Fatalf("len = %d", len(chunks))
	}
	if len(chunks[0]) != 4 || len(chunks[1]) != 4 || len(chunks[2]) != 2 {
		t.Fatalf("chunk lens = %d %d %d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if chunks[2][1] != 9 {
		t.Fatalf("chunk content wrong")
	}
}

func TestSplitChunksEdgeCases(t *testing.T) {
	if got := SplitChunks(nil, 4); got != nil {
		t.Fatalf("SplitChunks(nil) = %v", got)
	}
	one := SplitChunks([]byte{1, 2}, 0)
	if len(one) != 1 || len(one[0]) != 2 {
		t.Fatalf("chunkSize 0 should give one chunk, got %v", one)
	}
	one = SplitChunks([]byte{1, 2}, 100)
	if len(one) != 1 {
		t.Fatalf("oversized chunkSize should give one chunk, got %v", one)
	}
}

func TestSplitChunksProperty(t *testing.T) {
	f := func(data []byte, szRaw uint8) bool {
		sz := int(szRaw)
		chunks := SplitChunks(data, sz)
		var rejoined []byte
		for _, c := range chunks {
			rejoined = append(rejoined, c...)
		}
		if len(data) == 0 {
			return len(rejoined) == 0
		}
		return string(rejoined) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecString(t *testing.T) {
	cases := map[Codec]string{
		CodecSerialBitPacked:  "serial-lzss",
		CodecChunkedBitPacked: "pthread-lzss",
		CodecCULZSSV1:         "culzss-v1",
		CodecCULZSSV2:         "culzss-v2",
		CodecBZip2:            "bzip2",
		Codec(77):             "codec(77)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Codec(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestChecksum32(t *testing.T) {
	// CRC-32 (IEEE) of "123456789" is the well-known check value 0xCBF43926.
	if got := Checksum32([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("Checksum32 = %#x, want 0xCBF43926", got)
	}
}
