package format

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"culzss/internal/obs"
)

// buildParitySegs makes n (rawLen, container) pairs with varied container
// sizes so parity shards exercise the padding path.
func buildParitySegs(n int) [][2][]byte {
	segs := make([][2][]byte, n)
	for i := range segs {
		raw := bytes.Repeat([]byte{byte('a' + i%26)}, 20+i)
		container := make([]byte, 9+(i*7)%23)
		for j := range container {
			container[j] = byte(i*31 + j)
		}
		segs[i] = [2][]byte{raw, container}
	}
	return segs
}

// buildParityStream assembles a framed stream with parity groups of k
// data frames and m parity shards, returning the stream and the absolute
// offset of every record (data, parity, in stream order).
func buildParityStream(t testing.TB, segs [][2][]byte, k, m int) (stream []byte, recOffs []int) {
	stream, recOffs, _ = buildParityStreamOffs(t, segs, k, m)
	return stream, recOffs
}

// buildParityStreamOffs additionally reports where the trailer starts.
func buildParityStreamOffs(t testing.TB, segs [][2][]byte, k, m int) (stream []byte, recOffs []int, trailerOff int) {
	t.Helper()
	out := AppendStreamHeader(nil, 1<<16)
	total := 0
	crc := uint32(0)
	var group [][]byte
	groupFirst := 0
	flush := func() {
		if len(group) == 0 {
			return
		}
		pfs, err := BuildParityFrames(groupFirst, group, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pf := range pfs {
			recOffs = append(recOffs, len(out))
			out = AppendParityFrame(out, pf)
		}
		groupFirst += len(group)
		group = group[:0]
	}
	for i, s := range segs {
		raw, container := s[0], s[1]
		recOffs = append(recOffs, len(out))
		enc := AppendSegmentFrame(nil, i, len(raw), container)
		out = append(out, enc...)
		group = append(group, enc)
		total += len(raw)
		crc = Checksum32Update(crc, raw)
		if len(group) == k {
			flush()
		}
	}
	flush()
	trailerOff = len(out)
	out = AppendStreamTrailer(out, &StreamTrailer{Segments: len(segs), TotalLen: total, Checksum: crc})
	return out, recOffs, trailerOff
}

// drainRepair reads a whole stream through a repair-enabled salvage
// reader, partitioning the results.
func drainRepair(t *testing.T, data []byte) (frames []*SegmentFrame, corrupt []*CorruptSegmentError, repaired []*RepairedSegmentError, trailer *StreamTrailer, termErr error) {
	t.Helper()
	fr, err := NewFrameReaderSalvage(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fr.EnableRepair()
	for i := 0; i < 10000; i++ {
		f, tr, err := fr.Next()
		switch {
		case err != nil:
			var cse *CorruptSegmentError
			var rse *RepairedSegmentError
			if errors.As(err, &cse) {
				corrupt = append(corrupt, cse)
				continue
			}
			if errors.As(err, &rse) {
				repaired = append(repaired, rse)
				continue
			}
			termErr = err
			return
		case tr != nil:
			trailer = tr
			return
		default:
			frames = append(frames, f)
		}
	}
	t.Fatal("repair reader did not terminate")
	return
}

// checkExactRecovery asserts the reader delivered every segment of segs,
// in order, bit-identical, and lost nothing.
func checkExactRecovery(t *testing.T, segs [][2][]byte, frames []*SegmentFrame, corrupt []*CorruptSegmentError, trailer *StreamTrailer, termErr error) {
	t.Helper()
	if termErr != nil {
		t.Fatalf("terminal error: %v", termErr)
	}
	if trailer == nil {
		t.Fatal("no trailer delivered")
	}
	if len(corrupt) != 0 {
		t.Fatalf("lost segments: %v", corrupt[0])
	}
	if len(frames) != len(segs) {
		t.Fatalf("delivered %d frames, want %d", len(frames), len(segs))
	}
	for i, f := range frames {
		if f.Index != i || f.RawLen != len(segs[i][0]) || !bytes.Equal(f.Container, segs[i][1]) {
			t.Fatalf("frame %d not bit-identical: index=%d rawLen=%d", i, f.Index, f.RawLen)
		}
	}
}

func TestBuildParityFramesValidation(t *testing.T) {
	frame := AppendSegmentFrame(nil, 0, 3, []byte{1, 2, 3})
	if _, err := BuildParityFrames(0, nil, 1); !errors.Is(err, ErrParityGeometry) {
		t.Errorf("k=0: got %v", err)
	}
	if _, err := BuildParityFrames(0, [][]byte{frame}, 0); !errors.Is(err, ErrParityGeometry) {
		t.Errorf("m=0: got %v", err)
	}
	if _, err := BuildParityFrames(0, [][]byte{frame}, MaxParityM+1); !errors.Is(err, ErrParityGeometry) {
		t.Errorf("m too big: got %v", err)
	}
	if _, err := BuildParityFrames(0, [][]byte{frame, nil}, 1); !errors.Is(err, ErrParityGeometry) {
		t.Errorf("empty frame: got %v", err)
	}
}

// TestParityNormalReaderTransparent: a fail-fast reader on a pristine
// parity stream delivers exactly the data frames and trailer, absorbing
// parity while reporting geometry and invoking OnParity in order.
func TestParityNormalReaderTransparent(t *testing.T) {
	segs := buildParitySegs(10) // k=4: groups of 4, 4, 2 (short final)
	stream, _ := buildParityStream(t, segs, 4, 2)

	fr, err := NewFrameReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	fr.OnParity = func(pf *ParityFrame) {
		seen = append(seen, fmt.Sprintf("%d/%d:%d", pf.FirstIndex, pf.K, pf.J))
	}
	for i := range segs {
		f, tr, err := fr.Next()
		if err != nil || tr != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Index != i || !bytes.Equal(f.Container, segs[i][1]) {
			t.Fatalf("frame %d mangled", i)
		}
	}
	_, tr, err := fr.Next()
	if err != nil || tr == nil {
		t.Fatalf("trailer: %v", err)
	}
	if fr.ParityK != 4 || fr.ParityM != 2 || fr.ParityFrames != 6 {
		t.Fatalf("geometry: K=%d M=%d frames=%d", fr.ParityK, fr.ParityM, fr.ParityFrames)
	}
	want := []string{"0/4:0", "0/4:1", "4/4:0", "4/4:1", "8/2:0", "8/2:1"}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("OnParity order: %v", seen)
	}
}

// TestParityNormalReaderRejectsMisplacedParity: fail-fast mode enforces
// that parity appears exactly at its group boundary with sequential j.
func TestParityNormalReaderRejectsMisplacedParity(t *testing.T) {
	segs := buildParitySegs(4)
	frames := make([][]byte, len(segs))
	for i, s := range segs {
		frames[i] = AppendSegmentFrame(nil, i, len(s[0]), s[1])
	}
	pfs, err := BuildParityFrames(0, frames, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Parity mid-group (after 3 of its 4 frames).
	out := AppendStreamHeader(nil, 1<<16)
	for _, f := range frames[:3] {
		out = append(out, f...)
	}
	out = AppendParityFrame(out, pfs[0])
	fr, err := NewFrameReader(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err = fr.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("mid-group parity: %v, want ErrFrameOrder", err)
	}

	// Shard j=1 first.
	out = AppendStreamHeader(nil, 1<<16)
	for _, f := range frames {
		out = append(out, f...)
	}
	out = AppendParityFrame(out, pfs[1])
	fr, err = NewFrameReader(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err = fr.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("out-of-order shard: %v, want ErrFrameOrder", err)
	}
}

// TestParitySalvageTransparent: plain salvage (no repair) on a pristine
// parity stream delivers everything with zero corruption reports.
func TestParitySalvageTransparent(t *testing.T) {
	segs := buildParitySegs(9)
	stream, _ := buildParityStream(t, segs, 3, 1)
	frames, corrupt, trailer, termErr := drainSalvage(t, stream)
	if termErr != nil || trailer == nil || len(corrupt) != 0 {
		t.Fatalf("termErr=%v trailer=%v corrupt=%d", termErr, trailer, len(corrupt))
	}
	if len(frames) != len(segs) {
		t.Fatalf("got %d frames", len(frames))
	}
}

// TestRepairCleanStreams: repair mode is a no-op on pristine streams,
// with and without parity, short and long (past the no-parity disable
// threshold).
func TestRepairCleanStreams(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n, k, m int
	}{
		{"parity", 10, 4, 2},
		{"parity-xor", 7, 3, 1},
		{"no-parity-short", 5, 0, 0},
		{"no-parity-long", MaxParityK + 9, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			segs := buildParitySegs(tc.n)
			var stream []byte
			if tc.k > 0 {
				stream, _ = buildParityStream(t, segs, tc.k, tc.m)
			} else {
				stream = buildStream(1<<16, segs)
			}
			frames, corrupt, repaired, trailer, termErr := drainRepair(t, stream)
			checkExactRecovery(t, segs, frames, corrupt, trailer, termErr)
			if len(repaired) != 0 {
				t.Fatalf("spurious repair notice: %v", repaired[0])
			}
		})
	}
}

// smashRecord obliterates the middle of a record so it cannot parse.
func smashRecord(stream []byte, off, length int) []byte {
	out := append([]byte(nil), stream...)
	for i := off + 1; i < off+length && i < len(out); i++ {
		out[i] ^= 0x5a
	}
	return out
}

// recordLengths reconstructs each record's length from consecutive
// offsets (the last record's end is the trailer start).
func recordLengths(trailerOff int, recOffs []int) []int {
	lens := make([]int, len(recOffs))
	for i := range recOffs {
		end := trailerOff
		if i+1 < len(recOffs) {
			end = recOffs[i+1]
		}
		lens[i] = end - recOffs[i]
	}
	return lens
}

// TestRepairSingleRecordCorruptionMatrix: destroy each record of a
// parity stream in turn — every data and parity frame — and prove the
// stream still decodes bit-identically.
func TestRepairSingleRecordCorruptionMatrix(t *testing.T) {
	segs := buildParitySegs(8) // k=4, m=2: records 0-3 data, 4-5 parity, 6-9 data, 10-11 parity
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 4, 2)
	lens := recordLengths(trailerOff, recOffs)
	dataRecords := map[int]bool{0: true, 1: true, 2: true, 3: true, 6: true, 7: true, 8: true, 9: true}

	for r := range recOffs {
		t.Run(fmt.Sprintf("record%d", r), func(t *testing.T) {
			mut := smashRecord(stream, recOffs[r], lens[r])
			frames, corrupt, repaired, trailer, termErr := drainRepair(t, mut)
			checkExactRecovery(t, segs, frames, corrupt, trailer, termErr)
			if dataRecords[r] && len(repaired) == 0 {
				t.Fatal("data frame destroyed but no repair notice surfaced")
			}
			for _, rse := range repaired {
				if dataRecords[r] && rse.Index >= 0 && len(rse.Frames) == 0 {
					t.Fatalf("repair notice without frame list: %v", rse)
				}
			}
		})
	}
}

// TestRepairMultiFrameSameGroup: m=2 repairs two destroyed data frames
// of one group; three is beyond reach and must degrade to a loss report
// while the rest of the stream survives.
func TestRepairMultiFrameSameGroup(t *testing.T) {
	segs := buildParitySegs(8)
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 4, 2)
	lens := recordLengths(trailerOff, recOffs)

	mut := smashRecord(stream, recOffs[1], lens[1])
	mut = smashRecord(mut, recOffs[3], lens[3])
	frames, corrupt, repaired, trailer, termErr := drainRepair(t, mut)
	checkExactRecovery(t, segs, frames, corrupt, trailer, termErr)
	if len(repaired) == 0 {
		t.Fatal("no repair notice for two-frame repair")
	}

	mut = smashRecord(stream, recOffs[0], lens[0])
	mut = smashRecord(mut, recOffs[1], lens[1])
	mut = smashRecord(mut, recOffs[2], lens[2])
	frames, corrupt, _, trailer, termErr = drainRepair(t, mut)
	if termErr != nil || trailer == nil {
		t.Fatalf("termErr=%v trailer=%v", termErr, trailer)
	}
	if len(corrupt) == 0 {
		t.Fatal("three erasures with m=2 must report a loss")
	}
	lost := 0
	for _, c := range corrupt {
		_ = c
		lost++
	}
	// Frames 3..7 must still be delivered bit-identically.
	gotByIndex := map[int]*SegmentFrame{}
	for _, f := range frames {
		gotByIndex[f.Index] = f
	}
	for i := 3; i < 8; i++ {
		f := gotByIndex[i]
		if f == nil || !bytes.Equal(f.Container, segs[i][1]) {
			t.Fatalf("survivor frame %d lost or mangled", i)
		}
	}
}

// TestRepairFlipEverything: the exhaustive single-bit sweep. Flip every
// bit of every byte of one data frame, then of one parity frame, and
// prove every case round-trips bit-identically. The data-frame sweep
// uses m=2: a flip inside the index varint creates an imposter whose
// unmasking costs two erasures (the vacated slot and the collision).
func TestRepairFlipEverything(t *testing.T) {
	segs := buildParitySegs(6) // k=3, m=2: records 0-2 data, 3-4 parity, 5-7 data, 8-9 parity
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 3, 2)
	lens := recordLengths(trailerOff, recOffs)

	sweep := func(t *testing.T, rec int) {
		for i := 0; i < lens[rec]; i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), stream...)
				mut[recOffs[rec]+i] ^= 1 << bit
				frames, corrupt, _, trailer, termErr := drainRepair(t, mut)
				if termErr != nil || trailer == nil || len(corrupt) != 0 || len(frames) != len(segs) {
					t.Fatalf("byte %d bit %d: frames=%d corrupt=%d trailer=%v err=%v",
						i, bit, len(frames), len(corrupt), trailer != nil, termErr)
				}
				for j, f := range frames {
					if f.Index != j || f.RawLen != len(segs[j][0]) || !bytes.Equal(f.Container, segs[j][1]) {
						t.Fatalf("byte %d bit %d: frame %d not bit-identical", i, bit, j)
					}
				}
			}
		}
	}
	t.Run("data-frame-1", func(t *testing.T) { sweep(t, 1) })
	t.Run("data-frame-5", func(t *testing.T) { sweep(t, 5) }) // second group
	t.Run("parity-group0-j0", func(t *testing.T) { sweep(t, 3) })
	t.Run("parity-group1-j1", func(t *testing.T) { sweep(t, 9) })
}

// TestRepairSinkPatchesStreamInPlace: the RepairSink receives exact
// bytes and offsets that, written back over the damaged stream, make it
// byte-identical to the original — the contract durable recovery uses.
func TestRepairSinkPatchesStreamInPlace(t *testing.T) {
	segs := buildParitySegs(8)
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 4, 2)
	lens := recordLengths(trailerOff, recOffs)

	for _, victim := range []int{1, 4, 7} { // data, parity, second-group data
		// Flip bytes in place (same length, so offsets stay aligned).
		mut := smashRecord(stream, recOffs[victim], lens[victim])
		fr, err := NewFrameReaderSalvage(bytes.NewReader(mut))
		if err != nil {
			t.Fatal(err)
		}
		fr.EnableRepair()
		patched := append([]byte(nil), mut...)
		fr.RepairSink = func(index int, off int64, encoded []byte) {
			if off < 0 {
				t.Fatalf("victim %d: sink offset unknown for index %d", victim, index)
			}
			copy(patched[off:], encoded)
		}
		for {
			_, tr, err := fr.Next()
			if tr != nil {
				break
			}
			if err != nil && !IsSalvageable(err) {
				t.Fatalf("victim %d: %v", victim, err)
			}
			var rse *RepairedSegmentError
			if err != nil && !errors.As(err, &rse) {
				var cse *CorruptSegmentError
				if errors.As(err, &cse) {
					continue
				}
			}
		}
		if !bytes.Equal(patched, stream) {
			t.Fatalf("victim %d: patched stream differs from original", victim)
		}
	}
}

// TestRepairCounters: the obs registry sees attempts, repaired frames,
// and unrepairable frames.
func TestRepairCounters(t *testing.T) {
	segs := buildParitySegs(8)
	stream, recOffs, trailerOff := buildParityStreamOffs(t, segs, 4, 2)
	lens := recordLengths(trailerOff, recOffs)

	reg := obs.NewRegistry()
	mut := smashRecord(stream, recOffs[1], lens[1])
	fr, err := NewFrameReaderSalvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	fr.Obs = reg
	fr.EnableRepair()
	for {
		_, tr, err := fr.Next()
		if tr != nil || (err != nil && !IsSalvageable(err)) {
			break
		}
	}
	if v := reg.Counter("culzss_repair_attempts_total").Value(); v != 1 {
		t.Errorf("attempts = %d, want 1", v)
	}
	if v := reg.Counter("culzss_repair_repaired_total").Value(); v != 1 {
		t.Errorf("repaired = %d, want 1", v)
	}
	if v := reg.Counter("culzss_repair_unrepairable_total").Value(); v != 0 {
		t.Errorf("unrepairable = %d, want 0", v)
	}

	// Beyond parity reach: 3 frames of one group with m=2.
	reg = obs.NewRegistry()
	mut = smashRecord(stream, recOffs[0], lens[0])
	mut = smashRecord(mut, recOffs[1], lens[1])
	mut = smashRecord(mut, recOffs[2], lens[2])
	fr, err = NewFrameReaderSalvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	fr.Obs = reg
	fr.EnableRepair()
	for {
		_, tr, err := fr.Next()
		if tr != nil || (err != nil && !IsSalvageable(err)) {
			break
		}
	}
	if v := reg.Counter("culzss_repair_unrepairable_total").Value(); v != 3 {
		t.Errorf("unrepairable = %d, want 3", v)
	}
}

// TestRepairTornTail: truncate the stream inside the final group's data,
// append that group's parity (the out-of-order writeback model durable
// recovery sees), and verify the torn frame is rebuilt from trailing
// parity rather than truncated away.
func TestRepairTornTail(t *testing.T) {
	segs := buildParitySegs(4)
	frames := make([][]byte, len(segs))
	for i, s := range segs {
		frames[i] = AppendSegmentFrame(nil, i, len(s[0]), s[1])
	}
	pfs, err := BuildParityFrames(0, frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := AppendStreamHeader(nil, 1<<16)
	for i, f := range frames {
		if i == 2 {
			// Frame 2's tail never hit the disk: half its bytes are junk.
			torn := append([]byte(nil), f...)
			for j := len(torn) / 2; j < len(torn); j++ {
				torn[j] = 0xEE
			}
			out = append(out, torn...)
			continue
		}
		out = append(out, f...)
	}
	out = AppendParityFrame(out, pfs[0])
	// No trailer: the writer died before Close.

	fs, corrupt, repaired, trailer, termErr := drainRepair(t, out)
	if trailer != nil {
		t.Fatal("no trailer was written; none should be delivered")
	}
	if !errors.Is(termErr, ErrTruncated) {
		t.Fatalf("terminal: %v, want ErrTruncated", termErr)
	}
	if len(corrupt) != 0 {
		t.Fatalf("torn frame should repair, not report loss: %v", corrupt[0])
	}
	if len(repaired) == 0 {
		t.Fatal("no repair notice for torn frame")
	}
	if len(fs) != 4 {
		t.Fatalf("delivered %d frames, want 4", len(fs))
	}
	for i, f := range fs {
		if f.Index != i || !bytes.Equal(f.Container, segs[i][1]) {
			t.Fatalf("frame %d not bit-identical after torn-tail repair", i)
		}
	}
}

// FuzzParityRepair corrupts a parity stream at fuzzer-chosen positions
// and asserts the repair reader never crashes, never loops, delivers
// indices in strictly ascending order, and — whenever it claims a clean
// decode (no corruption reports) — delivers exactly the original data.
func FuzzParityRepair(f *testing.F) {
	segs := buildParitySegs(8)
	stream, _ := buildParityStream(f, segs, 4, 2)
	f.Add([]byte{10, 0x01}, uint8(0))
	f.Add([]byte{40, 0xff, 90, 0x80}, uint8(1))
	f.Add([]byte{0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, edits []byte, truncate uint8) {
		mut := append([]byte(nil), stream...)
		for i := 0; i+1 < len(edits) && i < 16; i += 2 {
			pos := int(edits[i]) * len(mut) / 256
			mut[pos] ^= edits[i+1]
		}
		if truncate > 0 {
			keep := len(mut) - int(truncate)
			if keep < 0 {
				keep = 0
			}
			mut = mut[:keep]
		}
		fr, err := NewFrameReaderSalvage(bytes.NewReader(mut))
		if err != nil {
			return // header damage is legitimately fatal
		}
		fr.EnableRepair()
		last := -1
		sawCorrupt := false
		for i := 0; ; i++ {
			if i > 10000 {
				t.Fatal("repair reader did not terminate")
			}
			frame, trailer, err := fr.Next()
			if frame != nil {
				if frame.Index <= last {
					t.Fatalf("indices not ascending: %d after %d", frame.Index, last)
				}
				last = frame.Index
				continue
			}
			if trailer != nil {
				break
			}
			if err != nil {
				var cse *CorruptSegmentError
				if errors.As(err, &cse) {
					sawCorrupt = true
					continue
				}
				var rse *RepairedSegmentError
				if errors.As(err, &rse) {
					continue
				}
				break // terminal
			}
		}
		_ = sawCorrupt
	})
}
