package format

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildSalvageStream assembles a framed stream with n segments of
// distinct, recognisable container payloads and returns the stream plus
// the byte offset of each segment frame.
func buildSalvageStream(n int) (stream []byte, frameOff []int, containers [][]byte) {
	out := AppendStreamHeader(nil, 1<<10)
	total := 0
	for i := 0; i < n; i++ {
		container := bytes.Repeat([]byte{byte('A' + i)}, 50+i)
		containers = append(containers, container)
		frameOff = append(frameOff, len(out))
		out = AppendSegmentFrame(out, i, 100+i, container)
		total += 100 + i
	}
	out = AppendStreamTrailer(out, &StreamTrailer{Segments: n, TotalLen: total, Checksum: 0xdeadbeef})
	return out, frameOff, nil
}

// drainSalvage decodes a whole stream in salvage mode, collecting frames,
// corruption reports, and the terminal state.
func drainSalvage(t *testing.T, data []byte) (frames []*SegmentFrame, corrupt []*CorruptSegmentError, trailer *StreamTrailer, termErr error) {
	t.Helper()
	fr, err := NewFrameReaderSalvage(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("open salvage reader: %v", err)
	}
	for i := 0; i < 1<<16; i++ {
		frame, tr, err := fr.Next()
		if err != nil {
			var cse *CorruptSegmentError
			if errors.As(err, &cse) {
				corrupt = append(corrupt, cse)
				continue
			}
			return frames, corrupt, nil, err
		}
		if tr != nil {
			return frames, corrupt, tr, nil
		}
		frames = append(frames, frame)
	}
	t.Fatal("salvage decoder failed to terminate")
	return
}

func TestSalvageCleanStreamMatchesNormal(t *testing.T) {
	data, _, _ := buildSalvageStream(5)
	frames, corrupt, trailer, err := drainSalvage(t, data)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("clean stream reported %d corrupt regions", len(corrupt))
	}
	if len(frames) != 5 || trailer == nil || trailer.Segments != 5 {
		t.Fatalf("frames=%d trailer=%+v", len(frames), trailer)
	}
	for i, f := range frames {
		if f.Index != i || f.RawLen != 100+i {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
}

func TestSalvageSingleBitFlipRecoversOtherSegments(t *testing.T) {
	data, off, _ := buildSalvageStream(6)
	// Flip one bit inside segment 2's container bytes.
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[off[2]+20] ^= 0x10

	frames, corrupt, trailer, err := drainSalvage(t, bad)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	var got []int
	for _, f := range frames {
		got = append(got, f.Index)
		if Checksum32(f.Container) != Checksum32(bytes.Repeat([]byte{byte('A' + f.Index)}, 50+f.Index)) {
			t.Fatalf("segment %d delivered with damaged container", f.Index)
		}
	}
	want := []int{0, 1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
	if len(corrupt) != 1 {
		t.Fatalf("want 1 corrupt region, got %d: %v", len(corrupt), corrupt)
	}
	cse := corrupt[0]
	if cse.Index != 2 {
		t.Fatalf("corrupt region names segment %d, want 2", cse.Index)
	}
	if cse.Offset != int64(off[2]) {
		t.Fatalf("corrupt region offset %d, want %d", cse.Offset, off[2])
	}
	if cse.Skipped != int64(off[3]-off[2]) {
		t.Fatalf("skipped %d bytes, want the whole damaged frame %d", cse.Skipped, off[3]-off[2])
	}
	if !errors.Is(cse, ErrFrameChecksum) {
		t.Fatalf("cause = %v, want frame checksum mismatch", cse.Err)
	}
	if trailer == nil {
		t.Fatal("trailer lost")
	}
}

func TestSalvageCorruptMarkerByte(t *testing.T) {
	data, off, _ := buildSalvageStream(4)
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[off[1]] = 0x7f // destroy segment 1's marker

	frames, corrupt, trailer, err := drainSalvage(t, bad)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if len(frames) != 3 || len(corrupt) != 1 || trailer == nil {
		t.Fatalf("frames=%d corrupt=%d trailer=%v", len(frames), len(corrupt), trailer)
	}
	if !errors.Is(corrupt[0], ErrCorrupt) {
		t.Fatalf("cause = %v", corrupt[0].Err)
	}
}

func TestSalvageTruncatedTailReportsThenTruncated(t *testing.T) {
	data, off, _ := buildSalvageStream(4)
	cut := data[:off[3]+5] // cut mid-way through segment 3's record

	frames, corrupt, trailer, err := drainSalvage(t, cut)
	if len(frames) != 3 {
		t.Fatalf("recovered %d frames, want 3", len(frames))
	}
	if trailer != nil {
		t.Fatal("truncated stream cannot produce a trailer")
	}
	if len(corrupt) != 1 || !errors.Is(corrupt[0], ErrTruncated) {
		t.Fatalf("corrupt=%v", corrupt)
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("terminal err = %v, want ErrTruncated", err)
	}
}

func TestSalvageCleanBoundaryTruncation(t *testing.T) {
	data, off, _ := buildSalvageStream(4)
	cut := data[:off[2]] // stream ends exactly at a record boundary

	frames, corrupt, trailer, err := drainSalvage(t, cut)
	if len(frames) != 2 || len(corrupt) != 0 || trailer != nil {
		t.Fatalf("frames=%d corrupt=%d trailer=%v", len(frames), len(corrupt), trailer)
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("terminal err = %v", err)
	}
}

func TestSalvageCorruptedTrailer(t *testing.T) {
	data, _, _ := buildSalvageStream(3)
	bad := make([]byte, len(data))
	copy(bad, data)
	// The trailer is the final record: marker + varints + 4 CRC bytes.
	// Destroy its marker so it cannot parse.
	trailerOff := len(data) - 1 - 4 - 2 // crc(4) + two short varints
	for trailerOff > 0 && bad[trailerOff] != frameMarkerTrailer {
		trailerOff--
	}
	bad[trailerOff] = 0x55

	frames, corrupt, trailer, err := drainSalvage(t, bad)
	if len(frames) != 3 {
		t.Fatalf("recovered %d frames, want all 3", len(frames))
	}
	if trailer != nil {
		t.Fatal("destroyed trailer should not be delivered")
	}
	if len(corrupt) != 1 {
		t.Fatalf("corrupt=%v", corrupt)
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("terminal err = %v", err)
	}
}

func TestSalvageExcisedFrameIsCleanGap(t *testing.T) {
	data, off, _ := buildSalvageStream(5)
	// Remove segment 2's frame entirely (clean excision, no byte damage).
	cut := append(append([]byte{}, data[:off[2]]...), data[off[3]:]...)

	frames, corrupt, trailer, err := drainSalvage(t, cut)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	var got []int
	for _, f := range frames {
		got = append(got, f.Index)
	}
	if len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("recovered %v", got)
	}
	if len(corrupt) != 1 || corrupt[0].Index != 2 || corrupt[0].Skipped != 0 {
		t.Fatalf("corrupt=%v", corrupt)
	}
	if !errors.Is(corrupt[0], ErrFrameOrder) {
		t.Fatalf("cause = %v", corrupt[0].Err)
	}
	if trailer == nil {
		t.Fatal("trailer lost")
	}
}

func TestSalvageTwoDamagedRegions(t *testing.T) {
	data, off, _ := buildSalvageStream(8)
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[off[1]+10] ^= 0x01
	bad[off[5]+10] ^= 0x80

	frames, corrupt, trailer, err := drainSalvage(t, bad)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if len(frames) != 6 || len(corrupt) != 2 || trailer == nil {
		t.Fatalf("frames=%d corrupt=%d trailer=%v", len(frames), len(corrupt), trailer)
	}
	if corrupt[0].Index != 1 || corrupt[1].Index != 5 {
		t.Fatalf("corrupt regions %v", corrupt)
	}
}

func TestSalvageHeaderErrorsMatchNormalMode(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("CLZ"),
		[]byte("NOPE"),
		[]byte("XXXXXXXX"),
		append([]byte(StreamMagic), 99, 0, 1), // bad version
		append([]byte(StreamMagic), StreamVersion, 7, 1), // bad flags
	}
	for i, c := range cases {
		_, errN := NewFrameReader(bytes.NewReader(c))
		_, errS := NewFrameReaderSalvage(bytes.NewReader(c))
		if (errN == nil) != (errS == nil) {
			t.Fatalf("case %d: normal err %v, salvage err %v", i, errN, errS)
		}
		if errN != nil && errS != nil && errN.Error() != errS.Error() {
			t.Fatalf("case %d: normal %q vs salvage %q", i, errN, errS)
		}
	}
}

// TestSalvageNeverDeliversBadCRC is the core guarantee: every container a
// salvage reader hands back verified its per-frame CRC, no matter how the
// input was mangled.
func TestSalvageNeverDeliversBadCRC(t *testing.T) {
	data, _, _ := buildSalvageStream(6)
	for pos := 0; pos < len(data); pos += 3 {
		for _, bit := range []byte{0x01, 0x80} {
			bad := make([]byte, len(data))
			copy(bad, data)
			bad[pos] ^= bit
			fr, err := NewFrameReaderSalvage(bytes.NewReader(bad))
			if err != nil {
				continue // header damage: unrecoverable by contract
			}
			for i := 0; i < 1<<12; i++ {
				frame, trailer, err := fr.Next()
				if err != nil {
					var cse *CorruptSegmentError
					if errors.As(err, &cse) {
						continue
					}
					break
				}
				if trailer != nil {
					break
				}
				// Any delivered container must be one of the original
				// containers, bit-exact: the per-frame CRC covers the
				// container bytes, so damage there can never get through.
				// (A flip in the unprotected frame *header* may mislabel
				// an intact container's index — the container-level
				// checksum downstream still protects the plaintext.)
				ok := false
				for j := 0; j < 6; j++ {
					if bytes.Equal(frame.Container, bytes.Repeat([]byte{byte('A' + j)}, 50+j)) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("flip at %d/%#x: salvage delivered a damaged container (labelled segment %d)", pos, bit, frame.Index)
				}
			}
		}
	}
}

func TestSalvageReaderIOErrorIsSticky(t *testing.T) {
	data, off, _ := buildSalvageStream(3)
	boom := errors.New("disk on fire")
	fr, err := NewFrameReaderSalvage(io.MultiReader(
		bytes.NewReader(data[:off[2]+4]),
		&errReader{err: boom},
	))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		_, _, err := fr.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("terminal err = %v, want the I/O error", err)
			}
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("delivered %d frames before the I/O error, want 2", seen)
	}
	if _, _, err := fr.Next(); !errors.Is(err, boom) {
		t.Fatalf("I/O error must be sticky, got %v", err)
	}
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }
