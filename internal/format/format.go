// Package format defines the CULZSS container format shared by every codec
// in this repository.
//
// The container records the compression parameters and — central to the
// paper's parallel decompression (§III.C) — the list of per-chunk compressed
// sizes. With that table, any chunk of the compressed payload can be located
// and decompressed independently, which is what lets the GPU decompressor
// assign chunks to blocks.
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	magic        4 bytes  "CLZ1"
//	version      1 byte   container format version (currently 1)
//	codec        1 byte   which compressor produced the payload
//	minMatch     1 byte   minimum match length of the LZSS configuration
//	reserved     1 byte   must be zero
//	window       varint   sliding-window size in bytes
//	lookahead    varint   lookahead-buffer size in bytes
//	chunkSize    varint   uncompressed chunk size (0 = single chunk)
//	originalLen  varint   total uncompressed length
//	checksum     4 bytes  CRC-32 (IEEE) of the uncompressed data, big endian
//	chunkCount   varint   number of entries in the chunk table
//	chunkSizes   varints  compressed size of each chunk, in order
//	payload      ...      concatenated compressed chunks
package format

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a CULZSS container.
const Magic = "CLZ1"

// Version is the current container format version.
const Version = 1

// Codec identifies the compressor that produced a payload.
type Codec uint8

// Codec values. The numeric values are part of the on-disk format.
const (
	// CodecSerialBitPacked is the Dipperstein-shaped dense bit stream
	// produced by the serial CPU implementation (single chunk).
	CodecSerialBitPacked Codec = 1
	// CodecChunkedBitPacked is the pthread-style chunked variant of the
	// bit-packed stream: each chunk is an independent bit stream.
	CodecChunkedBitPacked Codec = 2
	// CodecCULZSSV1 is the GPU Version 1 byte-aligned token stream
	// (flag bytes + 16-bit coded tokens), chunked.
	CodecCULZSSV1 Codec = 3
	// CodecCULZSSV2 is the GPU Version 2 stream. The wire format is the
	// same byte-aligned token stream as V1; the codec id records which
	// kernel produced it.
	CodecCULZSSV2 Codec = 4
	// CodecBZip2 is the bzip2-style pipeline (RLE1+BWT+MTF+RLE2+Huffman).
	CodecBZip2 Codec = 5
	// CodecStoreRaw stores the payload uncompressed (single chunk, the
	// plaintext verbatim). The streaming writer's adaptive selector emits
	// it for segments that would expand under LZSS: the only cost is the
	// container header.
	CodecStoreRaw Codec = 6
)

// CodecMax is the highest structurally valid codec value. The range
// above CodecStoreRaw is headroom for pluggable engines: ParseHeader
// accepts those values (the container is structurally sound — the codec
// byte is an open namespace, not a closed enum), and decode dispatch
// fails with a typed unknown-codec error when no registered engine
// claims the value. Values above CodecMax are treated as corruption.
const CodecMax Codec = 15

// String implements fmt.Stringer for diagnostics and table rendering.
func (c Codec) String() string {
	switch c {
	case CodecSerialBitPacked:
		return "serial-lzss"
	case CodecChunkedBitPacked:
		return "pthread-lzss"
	case CodecCULZSSV1:
		return "culzss-v1"
	case CodecCULZSSV2:
		return "culzss-v2"
	case CodecBZip2:
		return "bzip2"
	case CodecStoreRaw:
		return "store-raw"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Valid reports whether c is structurally valid — in the codec byte's
// assigned-or-reserved range [1, CodecMax]. A valid value is not
// necessarily decodable: whether an engine claims it is a registry
// question (internal/codec), answered at decode dispatch.
func (c Codec) Valid() bool {
	return c >= CodecSerialBitPacked && c <= CodecMax
}

// Known reports whether c is a codec this repository assigns (as opposed
// to a reserved headroom value that merely parses).
func (c Codec) Known() bool {
	return c >= CodecSerialBitPacked && c <= CodecStoreRaw
}

// Errors returned by ParseHeader and Validate.
var (
	ErrBadMagic   = errors.New("format: bad magic (not a CULZSS container)")
	ErrBadVersion = errors.New("format: unsupported container version")
	ErrTruncated  = errors.New("format: truncated container")
	ErrCorrupt    = errors.New("format: corrupt container")
	ErrChecksum   = errors.New("format: checksum mismatch after decompression")
)

// Header is the parsed container header.
type Header struct {
	Codec       Codec
	MinMatch    uint8
	Window      int
	Lookahead   int
	ChunkSize   int    // uncompressed bytes per chunk; 0 means single chunk
	OriginalLen int    // total uncompressed length
	Checksum    uint32 // CRC-32 (IEEE) of the uncompressed data
	ChunkSizes  []int  // compressed size of each chunk
}

// Checksum32 computes the checksum stored in containers.
func Checksum32(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Checksum32Update extends a running Checksum32 with more data, for
// streaming producers that never hold the whole plaintext:
// Checksum32Update(Checksum32(a), b) == Checksum32(append(a, b...)).
func Checksum32Update(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, crc32.IEEETable, data)
}

// AppendHeader appends the encoded header to dst and returns the extended
// slice.
func AppendHeader(dst []byte, h *Header) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, Version, byte(h.Codec), h.MinMatch, 0)
	dst = binary.AppendUvarint(dst, uint64(h.Window))
	dst = binary.AppendUvarint(dst, uint64(h.Lookahead))
	dst = binary.AppendUvarint(dst, uint64(h.ChunkSize))
	dst = binary.AppendUvarint(dst, uint64(h.OriginalLen))
	dst = binary.BigEndian.AppendUint32(dst, h.Checksum)
	dst = binary.AppendUvarint(dst, uint64(len(h.ChunkSizes)))
	for _, s := range h.ChunkSizes {
		dst = binary.AppendUvarint(dst, uint64(s))
	}
	return dst
}

// ParseHeader decodes a container header from the front of data and returns
// the header and the byte offset where the payload begins.
func ParseHeader(data []byte) (*Header, int, error) {
	if len(data) < len(Magic)+4 {
		return nil, 0, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, ErrBadMagic
	}
	pos := len(Magic)
	if data[pos] != Version {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, data[pos])
	}
	h := &Header{Codec: Codec(data[pos+1]), MinMatch: data[pos+2]}
	if data[pos+3] != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved byte", ErrCorrupt)
	}
	pos += 4
	if !h.Codec.Valid() {
		return nil, 0, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, uint8(h.Codec))
	}

	next := func() (int, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, ErrTruncated
		}
		if v > 1<<40 {
			return 0, fmt.Errorf("%w: implausible varint %d", ErrCorrupt, v)
		}
		pos += n
		return int(v), nil
	}

	var err error
	if h.Window, err = next(); err != nil {
		return nil, 0, err
	}
	if h.Lookahead, err = next(); err != nil {
		return nil, 0, err
	}
	if h.ChunkSize, err = next(); err != nil {
		return nil, 0, err
	}
	if h.OriginalLen, err = next(); err != nil {
		return nil, 0, err
	}
	if pos+4 > len(data) {
		return nil, 0, ErrTruncated
	}
	h.Checksum = binary.BigEndian.Uint32(data[pos:])
	pos += 4
	nChunks, err := next()
	if err != nil {
		return nil, 0, err
	}
	if nChunks > len(data) { // each chunk-size varint takes >= 1 byte
		return nil, 0, fmt.Errorf("%w: chunk count %d exceeds container size", ErrCorrupt, nChunks)
	}
	h.ChunkSizes = make([]int, nChunks)
	for i := range h.ChunkSizes {
		if h.ChunkSizes[i], err = next(); err != nil {
			return nil, 0, err
		}
	}
	if err := h.Validate(len(data) - pos); err != nil {
		return nil, 0, err
	}
	return h, pos, nil
}

// Validate checks internal consistency of the header against the payload
// length that follows it.
func (h *Header) Validate(payloadLen int) error {
	total := 0
	for i, s := range h.ChunkSizes {
		if s < 0 {
			return fmt.Errorf("%w: negative chunk size at %d", ErrCorrupt, i)
		}
		total += s
	}
	if total > payloadLen {
		return fmt.Errorf("%w: chunk table wants %d payload bytes, have %d", ErrTruncated, total, payloadLen)
	}
	if h.ChunkSize > 0 && h.OriginalLen > 0 {
		want := (h.OriginalLen + h.ChunkSize - 1) / h.ChunkSize
		if want != len(h.ChunkSizes) {
			return fmt.Errorf("%w: %d chunks for originalLen=%d chunkSize=%d (want %d)",
				ErrCorrupt, len(h.ChunkSizes), h.OriginalLen, h.ChunkSize, want)
		}
	}
	return nil
}

// PayloadLen returns the total number of payload bytes the chunk table
// accounts for.
func (h *Header) PayloadLen() int {
	total := 0
	for _, s := range h.ChunkSizes {
		total += s
	}
	return total
}

// ChunkBound describes one chunk's position in the uncompressed input and
// the compressed payload.
type ChunkBound struct {
	Index     int
	UncompOff int // offset in the uncompressed data
	UncompLen int // uncompressed length of this chunk
	CompOff   int // offset in the compressed payload
	CompLen   int // compressed length of this chunk
}

// ChunkBounds expands the chunk table into absolute offsets. The final
// chunk's uncompressed length is the remainder of OriginalLen.
func (h *Header) ChunkBounds() []ChunkBound {
	bounds := make([]ChunkBound, len(h.ChunkSizes))
	compOff := 0
	for i, cs := range h.ChunkSizes {
		uOff := i * h.ChunkSize
		uLen := h.ChunkSize
		if h.ChunkSize == 0 {
			uLen = h.OriginalLen
		} else if uOff+uLen > h.OriginalLen {
			uLen = h.OriginalLen - uOff
		}
		bounds[i] = ChunkBound{Index: i, UncompOff: uOff, UncompLen: uLen, CompOff: compOff, CompLen: cs}
		compOff += cs
	}
	return bounds
}

// SplitChunks returns the uncompressed input cut into chunkSize pieces.
// A chunkSize of zero or >= len(data) yields a single chunk. The returned
// slices alias data.
func SplitChunks(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 || chunkSize >= len(data) {
		if len(data) == 0 {
			return nil
		}
		return [][]byte{data}
	}
	n := (len(data) + chunkSize - 1) / chunkSize
	chunks := make([][]byte, 0, n)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}
