// Gateway: the paper's motivating network scenario (§III): "the input
// data resides in a memory buffer that needs to be compressed at one
// gateway of the network and decompressed at the egress gateway, so the
// data looks the same going in as coming out."
//
// Topology, all on loopback:
//
//	producer --plain--> [ingress gateway] --framed stream--> [egress gateway] --plain--> consumer
//
// The gateways speak the framed stream format of internal/format: the
// ingress wraps its TCP connection in a core.Writer (64 KiB segments,
// concurrent segment compression, bounded memory), the egress unwraps it
// with a core.Reader that decodes segment-at-a-time — no hand-rolled
// length-prefix framing, and neither gateway ever holds the whole
// transfer. The consumer verifies byte identity and the example reports
// the bandwidth saved on the gateway-to-gateway hop.
//
// A production gateway also cannot die when its accelerator does, so this
// example arms the device-health supervisor (internal/health) over a
// two-device pool where device 0 fails every kernel launch — a GPU that
// has fallen off the bus mid-service. The first failure trips device 0's
// circuit breaker, the supervisor quarantines it and re-dispatches the
// segment to its healthy sibling, and every later segment routes around
// the corpse; a watchdog deadline bounds each dispatch so a hang could
// never wedge the stream. Had the whole pool been sick, each segment
// would have degraded to the byte-identical host encoder instead — the
// gateway serves in degraded mode rather than dying. The example reports
// the supervisor's counters and its breaker logbook. The egress opens the
// stream in salvage mode, so a damaged hop would cost only the damaged
// segments, not the connection.
//
// Run with:
//
//	go run ./examples/gateway
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"culzss/internal/core"
	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/format"
	"culzss/internal/health"
	"culzss/internal/stats"
)

const segmentSize = 64 << 10

// countingWriter tallies the bytes crossing the compressed hop.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func main() {
	payload := datasets.KernelTarball(4<<20, 7) // "a file transfer"

	egressIn := listen()   // compressed hop
	consumerIn := listen() // plain delivery
	ingressIn := listen()  // plain ingestion
	hop := make(chan int64, 1)

	// Consumer: collects the delivered plaintext.
	done := make(chan []byte, 1)
	go func() {
		conn := accept(consumerIn)
		defer conn.Close()
		out, err := io.ReadAll(conn)
		if err != nil {
			log.Fatal(err)
		}
		done <- out
	}()

	// Egress gateway: framed stream in, plain out. core.NewReader decodes
	// incrementally, so the gateway's memory stays O(segment). Salvage
	// mode means a damaged hop costs the damaged segments, not the
	// connection: intact segments keep flowing and each skipped region is
	// reported.
	go func() {
		in := accept(egressIn)
		defer in.Close()
		out := dial(consumerIn)
		defer out.Close()
		r, err := core.NewReaderOptions(in, core.Params{}, core.ReaderOptions{
			Salvage: true,
			OnCorrupt: func(cse *format.CorruptSegmentError) {
				log.Print("egress: salvage skipped damaged region: ", cse)
			},
		})
		if err != nil {
			log.Fatal("egress open stream:", err)
		}
		if _, err := io.Copy(out, r); err != nil {
			log.Fatal("egress forward:", err)
		}
	}()

	// Ingress gateway: plain in, framed stream out. The Writer cuts
	// segments, compresses them concurrently, and emits them in order.
	//
	// The supervisor watches a two-device pool where device 0 fails every
	// launch. Its breaker opens on the first failure, the segment is
	// re-dispatched to the healthy device 1, and the rest of the stream
	// routes around the quarantined device; the watchdog deadline bounds
	// each dispatch so even a hung kernel could not wedge the gateway.
	dead := cudasim.FermiGTX480()
	dead.LaunchHook = func(context.Context, string) error {
		return errors.New("device fell off the bus")
	}
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: dead},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Deadline: 5 * time.Second})

	degraded := make(chan core.WriterStats, 1)
	go func() {
		in := accept(ingressIn)
		defer in.Close()
		conn := dial(egressIn)
		defer conn.Close()
		cw := &countingWriter{w: conn}
		params := core.Params{
			Version: core.Version1,
			Health:  sup,
		}
		w := core.NewWriterOptions(cw, params, core.StreamOptions{
			SegmentSize: segmentSize,
			Retry: core.RetryPolicy{
				MaxAttempts: 2, // fail fast in the demo; default is 3
				BaseBackoff: 500 * time.Microsecond,
			},
		})
		if _, err := io.Copy(w, in); err != nil {
			log.Fatal("ingress compress:", err)
		}
		if err := w.Close(); err != nil {
			log.Fatal("ingress close:", err)
		}
		degraded <- w.Stats()
		hop <- cw.n
	}()

	// Producer: streams the payload into the ingress gateway.
	prod := dial(ingressIn)
	if _, err := prod.Write(payload); err != nil {
		log.Fatal(err)
	}
	prod.Close()

	delivered := <-done
	ws := <-degraded
	hopBytes := <-hop
	if !bytes.Equal(delivered, payload) {
		log.Fatal("delivered data differs from what was sent")
	}
	fmt.Printf("delivered %s end to end, byte-identical\n", stats.FormatBytes(int64(len(delivered))))
	fmt.Printf("gateway rode out a dead GPU: %d/%d segments re-dispatched to the healthy device, %d degraded to CPU, %d device(s) quarantined\n",
		ws.Redispatched, ws.Segments, ws.Degraded, ws.Quarantined)
	for _, ev := range sup.Events() {
		fmt.Printf("breaker logbook: device %d %v -> %v (%s)\n", ev.Device, ev.From, ev.To, ev.Cause)
	}
	fmt.Printf("gateway hop carried %s (%s of the plain size) — %s saved\n",
		stats.FormatBytes(hopBytes),
		stats.RatioPercent(int(hopBytes), len(payload)),
		stats.FormatBytes(int64(len(payload))-hopBytes))
}

func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func accept(l net.Listener) net.Conn {
	c, err := l.Accept()
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func dial(l net.Listener) net.Conn {
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	return c
}
