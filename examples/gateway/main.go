// Gateway: the paper's motivating network scenario (§III): "the input
// data resides in a memory buffer that needs to be compressed at one
// gateway of the network and decompressed at the egress gateway, so the
// data looks the same going in as coming out."
//
// Topology, all on loopback:
//
//	producer --plain--> [ingress gateway] --framed stream--> [egress gateway] --plain--> consumer
//
// The gateways speak the framed stream format of internal/format: the
// ingress wraps its TCP connection in a core.Writer (64 KiB segments,
// concurrent segment compression, bounded memory), the egress unwraps it
// with a core.Reader that decodes segment-at-a-time — no hand-rolled
// length-prefix framing, and neither gateway ever holds the whole
// transfer. The consumer verifies byte identity and the example reports
// the bandwidth saved on the gateway-to-gateway hop.
//
// A production gateway also cannot die when its accelerator does, so this
// example arms the device-health supervisor (internal/health) over a
// two-device pool where device 0 fails every kernel launch — a GPU that
// has fallen off the bus mid-service. The first failure trips device 0's
// circuit breaker, the supervisor quarantines it and re-dispatches the
// segment to its healthy sibling, and every later segment routes around
// the corpse; a watchdog deadline bounds each dispatch so a hang could
// never wedge the stream. Had the whole pool been sick, each segment
// would have degraded to the byte-identical host encoder instead — the
// gateway serves in degraded mode rather than dying. The example reports
// the supervisor's counters and its breaker logbook.
//
// The hop itself is hostile: a seeded fault injector plants multi-byte
// interference bursts (faults.BurstErrors) directly on the wire, the
// damage model parity frames exist for. The ingress therefore writes
// with parity protection (4+2 Reed–Solomon: every 4 data frames are
// followed by 2 parity frames), and the egress opens the stream in
// salvage+repair mode — damaged frames are rebuilt bit-identically from
// their group's parity instead of being skipped, so the consumer still
// receives the exact payload even though the wire mangled it. Each
// healed region is logged, and the repair counters land on /metrics
// alongside everything else.
//
// Real gateway traffic is not uniformly compressible, so the ingress
// writes with the adaptive codec selector (StreamOptions.Codec "auto"):
// each segment is probed and encoded with the engine that fits it — the
// match-per-thread V2 kernel for ordinary data, the chunk-per-thread V1
// kernel for highly compressible runs, and the raw store for segments
// LZSS would expand (already-compressed or encrypted payloads). The
// choice is recorded in each frame's embedded container codec byte, so
// the egress needs no negotiation: its decode workers dispatch per
// frame. The transfer below mixes all three kinds of data on purpose.
//
// The gateway also exposes the observability layer a production
// deployment would scrape: an HTTP debug server (default on an ephemeral
// loopback port, -debug-addr to pin it) serving Prometheus-style metrics
// at /metrics and the standard pprof handlers under /debug/pprof/. After
// the transfer the example scrapes its own /metrics and verifies the
// exported counters reconcile exactly with Writer.Stats() — including
// the per-codec culzss_segments_total series against the selector's
// actual choices. Pass -hold to keep the server up afterwards for manual
// scraping / profiling.
//
// Run with:
//
//	go run ./examples/gateway
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"culzss/internal/codec"
	"culzss/internal/core"
	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/faults"
	"culzss/internal/format"
	"culzss/internal/health"
	"culzss/internal/obs"
	"culzss/internal/stats"
)

const (
	segmentSize = 64 << 10

	// The hostile-wire model: one interference burst every ~512 KiB on
	// average, each burst flipping bits in 97 consecutive bytes. Seeded,
	// so the demo's damage — and its repair — is reproducible.
	wireFaultSeed = 11
	wireBurstGap  = 512 << 10
	wireBurstLen  = 97

	// Parity geometry on the hop: every 4 data frames are followed by 2
	// Reed–Solomon parity frames, so any ≤2 damaged frames per group
	// rebuild bit-identically.
	parityK = 4
	parityM = 2
)

// countingWriter tallies the bytes crossing the compressed hop.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func main() {
	debugAddr := flag.String("debug-addr", "127.0.0.1:0", "address for the /metrics + pprof debug server")
	hold := flag.Duration("hold", 0, "keep the debug server up this long after the transfer (0 = exit immediately)")
	flag.Parse()

	payload := buildPayload() // "a file transfer" of mixed compressibility

	// The observability registry: both gateways, the device pool, and the
	// supervisor all report into it, and the debug server exposes it.
	reg := obs.NewRegistry()
	metricsURL := serveDebug(*debugAddr, reg)
	fmt.Printf("debug server: %s (and /debug/pprof/)\n", metricsURL)

	egressIn := listen()   // compressed hop
	consumerIn := listen() // plain delivery
	ingressIn := listen()  // plain ingestion
	hop := make(chan int64, 1)

	// Consumer: collects the delivered plaintext.
	done := make(chan []byte, 1)
	go func() {
		conn := accept(consumerIn)
		defer conn.Close()
		out, err := io.ReadAll(conn)
		if err != nil {
			log.Fatal(err)
		}
		done <- out
	}()

	// Egress gateway: framed stream in, plain out. The Reader's decode
	// pipeline overlaps segment decompressions (four workers here) while
	// delivery stays in stream order, so the gateway's memory stays
	// O(MaxInFlight segments). Repair mode upgrades salvage from skip to
	// heal: a damaged frame is rebuilt bit-identically from its parity
	// group, and only damage past the parity budget would cost the
	// segment — the repair bookkeeping is unchanged by the concurrency.
	healed := make(chan int, 1) // data frames rebuilt from parity
	go func() {
		in := accept(egressIn)
		defer in.Close()
		out := dial(consumerIn)
		defer out.Close()
		r, err := core.NewReaderOptions(in, core.Params{Obs: reg}, core.ReaderOptions{
			Repair:      true,
			HostWorkers: 4,
			Prefetch:    8,
			OnRepair: func(rse *format.RepairedSegmentError) {
				log.Print("egress: repaired damaged region: ", rse)
			},
			OnCorrupt: func(cse *format.CorruptSegmentError) {
				log.Print("egress: salvage skipped damaged region: ", cse)
			},
		})
		if err != nil {
			log.Fatal("egress open stream:", err)
		}
		if _, err := io.Copy(out, r); err != nil {
			log.Fatal("egress forward:", err)
		}
		if skipped := r.CorruptSegments(); len(skipped) > 0 {
			log.Fatalf("egress: %d region(s) were beyond the parity budget", len(skipped))
		}
		frames := 0
		for _, rse := range r.RepairedSegments() {
			frames += len(rse.Frames)
		}
		st := r.Stats()
		log.Printf("egress: decode pipeline: %d segments, peak in-flight %d, buffer pool %d hits / %d misses",
			st.Segments, st.MaxInFlight, st.PoolHits, st.PoolMisses)
		healed <- frames
	}()

	// Ingress gateway: plain in, framed stream out. The Writer cuts
	// segments, compresses them concurrently, and emits them in order.
	//
	// The supervisor watches a two-device pool where device 0 fails every
	// launch. Its breaker opens on the first failure, the segment is
	// re-dispatched to the healthy device 1, and the rest of the stream
	// routes around the quarantined device; the watchdog deadline bounds
	// each dispatch so even a hung kernel could not wedge the gateway.
	dead := cudasim.FermiGTX480()
	dead.LaunchHook = func(context.Context, string) error {
		return errors.New("device fell off the bus")
	}
	sup := health.NewSupervisor([]health.DeviceSlot{
		{Device: dead},
		{Device: cudasim.FermiGTX480()},
	}, health.Policy{Threshold: 1, OpenFor: time.Hour, Deadline: 5 * time.Second, Obs: reg})

	// The wire corrupter sits between the Writer and the byte counter:
	// everything the ingress emits — headers, data frames, parity frames
	// alike — is exposed to seeded interference bursts, exactly as a
	// hostile hop would do it.
	injector := faults.New(wireFaultSeed)
	degraded := make(chan core.WriterStats, 1)
	mixCh := make(chan map[format.Codec]int, 1)
	go func() {
		in := accept(ingressIn)
		defer in.Close()
		conn := dial(egressIn)
		defer conn.Close()
		cw := &countingWriter{w: conn}
		wire := injector.CorruptWriter(cw, wireBurstGap, faults.BurstErrors(wireBurstLen))
		params := core.Params{
			Health: sup,
			Obs:    reg,
		}
		codecMix := map[format.Codec]int{}
		w := core.NewWriterOptions(wire, params, core.StreamOptions{
			SegmentSize: segmentSize,
			Codec:       codec.Auto, // per-segment V2 / V1 / raw-store selection
			Parity:      core.ParityConfig{K: parityK, M: parityM},
			Retry: core.RetryPolicy{
				MaxAttempts: 2, // fail fast in the demo; default is 3
				BaseBackoff: 500 * time.Microsecond,
			},
			// Runs on the emitter goroutine in stream order; the map is
			// only read after Close has joined the emitter.
			OnSegment: func(sr core.SegmentReport) { codecMix[sr.Codec]++ },
		})
		if _, err := io.Copy(w, in); err != nil {
			log.Fatal("ingress compress:", err)
		}
		if err := w.Close(); err != nil {
			log.Fatal("ingress close:", err)
		}
		degraded <- w.Stats()
		mixCh <- codecMix
		hop <- cw.n
	}()

	// Producer: streams the payload into the ingress gateway.
	prod := dial(ingressIn)
	if _, err := prod.Write(payload); err != nil {
		log.Fatal(err)
	}
	prod.Close()

	delivered := <-done
	ws := <-degraded
	codecMix := <-mixCh
	hopBytes := <-hop
	healedFrames := <-healed
	if !bytes.Equal(delivered, payload) {
		log.Fatal("delivered data differs from what was sent")
	}
	var mixParts []string
	for _, e := range codec.Engines() {
		if n := codecMix[e.Codec()]; n > 0 {
			mixParts = append(mixParts, fmt.Sprintf("%d %s", n, e.Name()))
		}
	}
	if len(mixParts) < 2 {
		log.Fatal("the mixed payload was meant to exercise several codecs, but the selector picked only one")
	}
	wireDamage := injector.Counts(faults.SiteFrame).Injected
	if wireDamage == 0 {
		log.Fatal("the hostile wire injected no damage — the healing demo demonstrated nothing")
	}
	if healedFrames == 0 {
		log.Fatal("wire damage landed but no frames were rebuilt from parity")
	}
	fmt.Printf("delivered %s end to end, byte-identical\n", stats.FormatBytes(int64(len(delivered))))
	fmt.Printf("hostile wire corrupted %d byte(s) in transit; egress rebuilt %d frame(s) from %d+%d parity — nothing skipped\n",
		wireDamage, healedFrames, parityK, parityM)
	fmt.Printf("adaptive selector chose %s across %d segments, recorded per frame in each container's codec byte\n",
		strings.Join(mixParts, " / "), ws.Segments)
	fmt.Printf("gateway rode out a dead GPU: %d/%d segments re-dispatched to the healthy device, %d degraded to CPU, %d device(s) quarantined\n",
		ws.Redispatched, ws.Segments, ws.Degraded, ws.Quarantined)
	for _, ev := range sup.Events() {
		fmt.Printf("breaker logbook: device %d %v -> %v (%s)\n", ev.Device, ev.From, ev.To, ev.Cause)
	}
	fmt.Printf("gateway hop carried %s (%s of the plain size) — %s saved\n",
		stats.FormatBytes(hopBytes),
		stats.RatioPercent(int(hopBytes), len(payload)),
		stats.FormatBytes(int64(len(payload))-hopBytes))

	// Scrape our own /metrics and verify the exported counters reconcile
	// exactly with the Writer's view of the same run — the check a
	// monitoring stack implicitly depends on.
	scraped := scrape(metricsURL)
	type check struct {
		series string
		want   int
	}
	checks := []check{
		{"culzss_writer_segments_total", ws.Segments},
		{"culzss_writer_retries_total", ws.Retries},
		{"culzss_writer_degraded_total", ws.Degraded},
		{"culzss_health_watchdog_timeouts_total", ws.TimedOut},
		{"culzss_health_redispatches_total", ws.Redispatched},
		{"culzss_health_breaker_opens_total", ws.BreakerOpens},
		{"culzss_health_quarantined_devices", ws.Quarantined},
		{"culzss_repair_repaired_total", healedFrames},
		{"culzss_reader_corrupt_segments_total", 0},
	}
	// The per-codec segment series must match the selector's actual
	// choices, one labelled series per codec the stream used.
	for _, e := range codec.Engines() {
		if n := codecMix[e.Codec()]; n > 0 {
			checks = append(checks, check{fmt.Sprintf(`culzss_segments_total{codec=%q}`, e.Name()), n})
		}
	}
	ok := true
	for _, c := range checks {
		got, found := scraped[c.series]
		if !found || got != int64(c.want) {
			ok = false
			log.Printf("metrics mismatch: %s = %d, Writer.Stats says %d", c.series, got, c.want)
		}
	}
	if !ok {
		log.Fatal("scraped /metrics do not reconcile with Writer.Stats()")
	}
	fmt.Printf("scraped /metrics reconcile with Writer.Stats(): %d series checked, all exact\n", len(checks))
	if *hold > 0 {
		fmt.Printf("holding debug server for %v — scrape %s\n", *hold, metricsURL)
		time.Sleep(*hold)
	}
}

// serveDebug starts the /metrics + pprof server and returns the metrics
// URL.
func serveDebug(addr string, reg *obs.Registry) string {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal("debug listener:", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(l, mux); err != nil {
			log.Print("debug server:", err)
		}
	}()
	return fmt.Sprintf("http://%s/metrics", l.Addr())
}

// scrape GETs a Prometheus text exposition and returns every
// integer-valued series the reconciliation check needs, keyed by the
// series name including its rendered label set (e.g.
// `culzss_segments_total{codec="v2"}`).
func scrape(url string) map[string]int64 {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal("scrape:", err)
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		log.Fatal("scrape read:", err)
	}
	return out
}

// buildPayload composes a transfer with genuinely different regions, so
// the adaptive selector has real per-segment choices: a kernel tarball
// (~55% compressible — V2 territory), a highly compressible log-like
// block (V1 territory), and an incompressible already-encrypted tail
// (raw-store territory).
func buildPayload() []byte {
	out := datasets.KernelTarball(2<<20, 7)
	out = append(out, datasets.HighlyCompressible(1<<20, 9)...)
	tail := make([]byte, 1<<20)
	rand.New(rand.NewSource(13)).Read(tail)
	return append(out, tail...)
}

func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func accept(l net.Listener) net.Conn {
	c, err := l.Accept()
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func dial(l net.Listener) net.Conn {
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	return c
}
