// Gateway: the paper's motivating network scenario (§III): "the input
// data resides in a memory buffer that needs to be compressed at one
// gateway of the network and decompressed at the egress gateway, so the
// data looks the same going in as coming out."
//
// Topology, all on loopback:
//
//	producer --plain--> [ingress gateway] --compressed--> [egress gateway] --plain--> consumer
//
// The gateways segment the stream (64 KiB segments), compress each segment
// with the in-memory API, and frame containers with a 4-byte length
// prefix. The consumer verifies byte identity and the example reports the
// bandwidth saved on the gateway-to-gateway hop.
//
// Run with:
//
//	go run ./examples/gateway
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync/atomic"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/stats"
)

const segmentSize = 64 << 10

func main() {
	payload := datasets.KernelTarball(4<<20, 7) // "a file transfer"

	// Egress gateway: accepts compressed segments, forwards plaintext.
	egressIn := listen()   // compressed hop
	consumerIn := listen() // plain delivery
	ingressIn := listen()  // plain ingestion
	var hopBytes atomic.Int64

	// Consumer: collects the delivered plaintext.
	done := make(chan []byte, 1)
	go func() {
		conn := accept(consumerIn)
		defer conn.Close()
		out, err := io.ReadAll(conn)
		if err != nil {
			log.Fatal(err)
		}
		done <- out
	}()

	// Egress gateway: compressed in, plain out.
	go func() {
		in := accept(egressIn)
		defer in.Close()
		out := dial(consumerIn)
		defer out.Close()
		for {
			container, err := readFrame(in)
			if err == io.EOF {
				return
			}
			if err != nil {
				log.Fatal("egress:", err)
			}
			plain, err := core.Decompress(container, core.Params{})
			if err != nil {
				log.Fatal("egress decompress:", err)
			}
			if _, err := out.Write(plain); err != nil {
				log.Fatal("egress forward:", err)
			}
		}
	}()

	// Ingress gateway: plain in, compressed out.
	go func() {
		in := accept(ingressIn)
		defer in.Close()
		out := dial(egressIn)
		defer out.Close()
		buf := make([]byte, segmentSize)
		for {
			n, err := io.ReadFull(in, buf)
			if n > 0 {
				container, cerr := core.Compress(buf[:n], core.Params{Version: core.VersionAuto})
				if cerr != nil {
					log.Fatal("ingress compress:", cerr)
				}
				hopBytes.Add(int64(len(container)) + 4)
				if werr := writeFrame(out, container); werr != nil {
					log.Fatal("ingress forward:", werr)
				}
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if err != nil {
				log.Fatal("ingress:", err)
			}
		}
	}()

	// Producer: streams the payload into the ingress gateway.
	prod := dial(ingressIn)
	if _, err := prod.Write(payload); err != nil {
		log.Fatal(err)
	}
	prod.Close()

	delivered := <-done
	if !bytes.Equal(delivered, payload) {
		log.Fatal("delivered data differs from what was sent")
	}
	fmt.Printf("delivered %s end to end, byte-identical\n", stats.FormatBytes(int64(len(delivered))))
	fmt.Printf("gateway hop carried %s (%s of the plain size) — %s saved\n",
		stats.FormatBytes(hopBytes.Load()),
		stats.RatioPercent(int(hopBytes.Load()), len(payload)),
		stats.FormatBytes(int64(len(payload))-hopBytes.Load()))
}

func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func accept(l net.Listener) net.Conn {
	c, err := l.Accept()
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func dial(l net.Listener) net.Conn {
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("frame of %d bytes implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
