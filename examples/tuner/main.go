// Tuner: the paper's §VII future-work item — "a more detailed tuning
// configuration API that gives the ability to adjust the program for the
// needs of the user. If better compression ratio is required, an
// adjustable configuration of increased window size can help. For a faster
// execution but lesser compression ratio ... playing with the buffer and
// bucket sizes."
//
// The example sweeps window size and threads-per-block over a sample of
// the user's data (a file path argument, or a generated corpus) and
// reports the simulated-time/ratio frontier plus a recommendation for
// each objective.
//
// Run with:
//
//	go run ./examples/tuner [file]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/stats"
)

type point struct {
	window, tpb int
	version     core.Version
	ratio       float64
	simTime     time.Duration
}

func main() {
	var data []byte
	if len(os.Args) > 1 {
		var err error
		if data, err = os.ReadFile(os.Args[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuning for %s (%s)\n\n", os.Args[1], stats.FormatBytes(int64(len(data))))
	} else {
		data = datasets.CFiles(2<<20, 11)
		fmt.Printf("tuning for a generated C corpus (%s); pass a file path to tune your own data\n\n",
			stats.FormatBytes(int64(len(data))))
	}
	// Tune on a sample for speed; apply to the full data at the end.
	sample := data
	if len(sample) > 1<<20 {
		sample = sample[:1<<20]
	}

	fmt.Printf("%-8s %-8s %-8s %-10s %-12s\n", "version", "window", "tpb", "ratio", "sim time")
	var points []point
	for _, v := range []core.Version{core.Version1, core.Version2} {
		for _, window := range []int{32, 64, 128, 256} {
			for _, tpb := range []int{64, 128, 256} {
				if v == core.Version1 && tpb > 128 && window >= 256 {
					continue // cannot be resident: per-thread buffers exceed the SM
				}
				comp, report, err := core.CompressWithReport(sample, core.Params{
					Version: v, Window: window, ThreadsPerBlock: tpb,
				})
				if err != nil {
					// Some shapes legitimately do not fit (paper §V);
					// report and move on.
					fmt.Printf("%-8v %-8d %-8d does not fit (%v)\n", v, window, tpb, err)
					continue
				}
				p := point{
					window: window, tpb: tpb, version: v,
					ratio:   stats.Ratio(len(comp), len(sample)),
					simTime: report.SaturatedTotal(),
				}
				points = append(points, p)
				fmt.Printf("%-8v %-8d %-8d %-10s %-12v\n", v, window, tpb,
					stats.RatioPercent(len(comp), len(sample)), p.simTime.Round(time.Microsecond))
			}
		}
	}
	if len(points) == 0 {
		log.Fatal("no configuration fit the device")
	}

	best := func(less func(a, b point) bool) point {
		b := points[0]
		for _, p := range points[1:] {
			if less(p, b) {
				b = p
			}
		}
		return b
	}
	fastest := best(func(a, b point) bool { return a.simTime < b.simTime })
	smallest := best(func(a, b point) bool { return a.ratio < b.ratio })
	// Balanced: the fastest configuration whose ratio stays within 10% of
	// the best ratio achieved.
	balanced := smallest
	for _, p := range points {
		if p.ratio <= smallest.ratio*1.10 && p.simTime < balanced.simTime {
			balanced = p
		}
	}

	fmt.Println()
	rec := func(label string, p point) {
		fmt.Printf("%-18s version=%v window=%d tpb=%d  (ratio %s, sim %v)\n", label,
			p.version, p.window, p.tpb, fmt.Sprintf("%.1f%%", p.ratio*100), p.simTime.Round(time.Microsecond))
	}
	rec("fastest:", fastest)
	rec("best ratio:", smallest)
	rec("balanced:", balanced)

	// Apply the balanced configuration to the full input.
	comp, err := core.Compress(data, core.Params{
		Version: balanced.version, Window: balanced.window, ThreadsPerBlock: balanced.tpb,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull input with the balanced configuration: %s -> %s (%s)\n",
		stats.FormatBytes(int64(len(data))), stats.FormatBytes(int64(len(comp))),
		stats.RatioPercent(len(comp), len(data)))
}
