// Checkpoint: the paper's HPC motivation (§VI): "Many applications write
// to a file every few timesteps for subsequent visualization. Other
// long-running applications checkpoint their state to disk for
// restarting."
//
// A toy stencil simulation evolves a 2-D grid; every k steps the state is
// serialised the way visualization dumps usually are — quantised to
// 16-bit fixed point, stored as byte planes (all high bytes, then all low
// bytes) so the smooth plane compresses — then written as a framed CLZS
// stream through the crash-safe durable layer (internal/durable): bytes
// accumulate in a ".partial" file with frame-boundary fsyncs and the
// final name appears atomically on completion.
//
// The last dump is deliberately killed mid-write with an injected torn
// write — the crash a checkpointing application actually fears. The
// example then does what a restarted application would do: durable.Resume
// scans the wreck, truncates to the last verifiable frame, and continues
// the same stream; the finished checkpoint decodes bit-identically, and
// the simulation restarts from it.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"

	"culzss/internal/core"
	"culzss/internal/durable"
	"culzss/internal/faults"
	"culzss/internal/stats"
)

const (
	gridW, gridH   = 512, 256
	steps          = 60
	checkpointEach = 15
	quantScale     = 8192 // 16-bit fixed point, |v| < 4
	segmentSize    = 32 << 10
)

type sim struct {
	step int
	grid []float64
}

func newSim() *sim {
	s := &sim{grid: make([]float64, gridW*gridH)}
	// Smooth initial condition: a couple of gaussian bumps.
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			dx, dy := float64(x-gridW/3), float64(y-gridH/2)
			dx2, dy2 := float64(x-2*gridW/3), float64(y-gridH/3)
			s.grid[y*gridW+x] = math.Exp(-(dx*dx+dy*dy)/5000) + 0.6*math.Exp(-(dx2*dx2+dy2*dy2)/2000)
		}
	}
	return s
}

// tick runs one diffusion + forcing step (deterministic, grows structure).
func (s *sim) tick() {
	next := make([]float64, len(s.grid))
	for y := 1; y < gridH-1; y++ {
		for x := 1; x < gridW-1; x++ {
			i := y*gridW + x
			lap := s.grid[i-1] + s.grid[i+1] + s.grid[i-gridW] + s.grid[i+gridW] - 4*s.grid[i]
			forcing := 0.02 * math.Sin(float64(s.step)*0.1+float64(x)*0.05) * math.Cos(float64(y)*0.07)
			next[i] = s.grid[i] + 0.2*lap + forcing
		}
	}
	s.grid = next
	s.step++
}

// serialize quantises the grid to 16-bit fixed point and splits it into
// byte planes: the high-byte plane of a smooth field is long runs of the
// same value — exactly what LZSS eats (and what real dump formats exploit).
func (s *sim) serialize() []byte {
	n := len(s.grid)
	buf := make([]byte, 8+2*n)
	binary.LittleEndian.PutUint64(buf, uint64(s.step))
	hi, lo := buf[8:8+n], buf[8+n:]
	for i, v := range s.grid {
		q := int16(math.Round(v * quantScale))
		hi[i] = byte(uint16(q) >> 8)
		lo[i] = byte(uint16(q))
	}
	return buf
}

// restore rebuilds a simulation from serialized bytes.
func restore(data []byte) *sim {
	s := &sim{step: int(binary.LittleEndian.Uint64(data))}
	n := (len(data) - 8) / 2
	s.grid = make([]float64, n)
	hi, lo := data[8:8+n], data[8+n:]
	for i := range s.grid {
		q := int16(uint16(hi[i])<<8 | uint16(lo[i]))
		s.grid[i] = float64(q) / quantScale
	}
	return s
}

// dump writes one checkpoint through the durable layer. p may carry an
// armed injector to crash the write mid-stream; the error comes back for
// the caller to react to the way a restarted application would.
func dump(path string, state []byte, p core.Params) (*durable.Writer, error) {
	w, err := durable.Create(path, p, durable.Options{
		CommitEverySegments: 2,
		Stream:              core.StreamOptions{SegmentSize: segmentSize},
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(state); err != nil {
		_ = w.Abort() // the partial stays on disk for Resume
		return w, err
	}
	if err := w.Close(); err != nil {
		return w, err
	}
	return w, nil
}

// decodeCheckpoint reads a finished framed checkpoint back.
func decodeCheckpoint(path string, p core.Params) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := core.NewReader(bufio.NewReader(f), p)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

func main() {
	dir, err := os.MkdirTemp("", "culzss-checkpoint-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("checkpointing a %dx%d grid (16-bit quantised planes) every %d steps into %s\n",
		gridW, gridH, checkpointEach, dir)
	fmt.Printf("durable framed dumps: %d KiB segments, fsync every 2 frames, atomic rename on completion\n\n",
		segmentSize>>10)

	p := core.Params{Version: core.Version1}
	s := newSim()
	var lastCheckpoint string
	var lastState []byte
	for s.step < steps {
		s.tick()
		if s.step%checkpointEach != 0 {
			continue
		}
		state := s.serialize()
		path := filepath.Join(dir, fmt.Sprintf("step%04d.clzs", s.step))

		if s.step+checkpointEach > steps {
			// The final dump gets "killed" two thirds of the way through:
			// the injector tears the write exactly as a crashed process
			// would, leaving only the .partial file.
			crashAt := int64(len(lastState)) / 3 // well inside the stream
			pc := p
			pc.Injector = faults.New(7).TornWriteAt(crashAt)
			w, err := dump(path, state, pc)
			if err == nil {
				log.Fatal("the injected crash never fired")
			}
			st := w.Stats()
			fmt.Printf("step %3d: KILLED mid-dump after ~%s on disk (%d/%d frames committed)\n",
				s.step, stats.FormatBytes(crashAt), st.Committed, st.Segments)

			// A restarted application resumes the wreck: scan, truncate to
			// the last verifiable frame, continue the same stream.
			rw, rep, err := durable.Resume(path, p, durable.Options{
				CommitEverySegments: 2,
				Stream:              core.StreamOptions{SegmentSize: segmentSize},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          resume: %d frame(s) / %s verified, %s unverifiable tail dropped\n",
				rep.NextIndex, stats.FormatBytes(int64(rep.TotalLen)), stats.FormatBytes(rep.Truncated))
			if _, err := rw.Write(state[rep.TotalLen:]); err != nil {
				log.Fatal(err)
			}
			if err := rw.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          resume: stream completed (%d new frame(s), %d inherited)\n",
				rw.Stats().Segments, rw.Stats().Resumed)
		} else if _, err := dump(path, state, p); err != nil {
			log.Fatal(err)
		}

		fi, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		lastCheckpoint, lastState = path, state
		fmt.Printf("step %3d: state %s -> checkpoint %s (ratio %s)\n",
			s.step, stats.FormatBytes(int64(len(state))), stats.FormatBytes(fi.Size()),
			stats.RatioPercent(int(fi.Size()), len(state)))
	}

	// Restore the last checkpoint — the one that crashed and was resumed.
	// The codec must be lossless against the serialized state despite the
	// torn write, and the simulation must restart from it.
	state, err := decodeCheckpoint(lastCheckpoint, p)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(state, lastState) {
		log.Fatal("checkpoint did not decompress to the serialized state")
	}
	restarted := restore(state)
	for i := 0; i < 5; i++ {
		restarted.tick()
	}
	fmt.Printf("\nrestored %s losslessly at step %d (post-crash) and resumed to step %d\n",
		filepath.Base(lastCheckpoint), int(binary.LittleEndian.Uint64(state)), restarted.step)
}
