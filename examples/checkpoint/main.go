// Checkpoint: the paper's HPC motivation (§VI): "Many applications write
// to a file every few timesteps for subsequent visualization. Other
// long-running applications checkpoint their state to disk for
// restarting."
//
// A toy stencil simulation evolves a 2-D grid; every k steps the state is
// serialised the way visualization dumps usually are — quantised to
// 16-bit fixed point, stored as byte planes (all high bytes, then all low
// bytes) so the smooth plane compresses — then compressed with automatic
// version selection and written to a checkpoint directory. At the end the
// example restores the last checkpoint, verifies the codec round trip is
// lossless, and resumes the simulation from it.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"culzss/internal/core"
	"culzss/internal/stats"
)

const (
	gridW, gridH   = 512, 256
	steps          = 60
	checkpointEach = 15
	quantScale     = 8192 // 16-bit fixed point, |v| < 4
)

type sim struct {
	step int
	grid []float64
}

func newSim() *sim {
	s := &sim{grid: make([]float64, gridW*gridH)}
	// Smooth initial condition: a couple of gaussian bumps.
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			dx, dy := float64(x-gridW/3), float64(y-gridH/2)
			dx2, dy2 := float64(x-2*gridW/3), float64(y-gridH/3)
			s.grid[y*gridW+x] = math.Exp(-(dx*dx+dy*dy)/5000) + 0.6*math.Exp(-(dx2*dx2+dy2*dy2)/2000)
		}
	}
	return s
}

// tick runs one diffusion + forcing step (deterministic, grows structure).
func (s *sim) tick() {
	next := make([]float64, len(s.grid))
	for y := 1; y < gridH-1; y++ {
		for x := 1; x < gridW-1; x++ {
			i := y*gridW + x
			lap := s.grid[i-1] + s.grid[i+1] + s.grid[i-gridW] + s.grid[i+gridW] - 4*s.grid[i]
			forcing := 0.02 * math.Sin(float64(s.step)*0.1+float64(x)*0.05) * math.Cos(float64(y)*0.07)
			next[i] = s.grid[i] + 0.2*lap + forcing
		}
	}
	s.grid = next
	s.step++
}

// serialize quantises the grid to 16-bit fixed point and splits it into
// byte planes: the high-byte plane of a smooth field is long runs of the
// same value — exactly what LZSS eats (and what real dump formats exploit).
func (s *sim) serialize() []byte {
	n := len(s.grid)
	buf := make([]byte, 8+2*n)
	binary.LittleEndian.PutUint64(buf, uint64(s.step))
	hi, lo := buf[8:8+n], buf[8+n:]
	for i, v := range s.grid {
		q := int16(math.Round(v * quantScale))
		hi[i] = byte(uint16(q) >> 8)
		lo[i] = byte(uint16(q))
	}
	return buf
}

// restore rebuilds a simulation from serialized bytes.
func restore(data []byte) *sim {
	s := &sim{step: int(binary.LittleEndian.Uint64(data))}
	n := (len(data) - 8) / 2
	s.grid = make([]float64, n)
	hi, lo := data[8:8+n], data[8+n:]
	for i := range s.grid {
		q := int16(uint16(hi[i])<<8 | uint16(lo[i]))
		s.grid[i] = float64(q) / quantScale
	}
	return s
}

func main() {
	dir, err := os.MkdirTemp("", "culzss-checkpoint-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("checkpointing a %dx%d grid (16-bit quantised planes) every %d steps into %s\n\n",
		gridW, gridH, checkpointEach, dir)

	s := newSim()
	var lastCheckpoint string
	var lastState []byte
	for s.step < steps {
		s.tick()
		if s.step%checkpointEach != 0 {
			continue
		}
		state := s.serialize()
		version := core.SelectVersion(state)
		comp, err := core.Compress(state, core.Params{Version: version})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("step%04d.clz", s.step))
		if err := os.WriteFile(path, comp, 0o644); err != nil {
			log.Fatal(err)
		}
		lastCheckpoint, lastState = path, state
		fmt.Printf("step %3d: state %s -> checkpoint %s (ratio %s, version %v)\n",
			s.step, stats.FormatBytes(int64(len(state))), stats.FormatBytes(int64(len(comp))),
			stats.RatioPercent(len(comp), len(state)), version)
	}

	// Restore the last checkpoint: the codec must be lossless against the
	// serialized state, and the simulation must resume from it.
	comp, err := os.ReadFile(lastCheckpoint)
	if err != nil {
		log.Fatal(err)
	}
	state, err := core.Decompress(comp, core.Params{})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(state, lastState) {
		log.Fatal("checkpoint did not decompress to the serialized state")
	}
	restarted := restore(state)
	for i := 0; i < 5; i++ {
		restarted.tick()
	}
	fmt.Printf("\nrestored %s losslessly at step %d and resumed to step %d\n",
		filepath.Base(lastCheckpoint), int(binary.LittleEndian.Uint64(state)), restarted.step)
}
