// Quickstart: the paper's Figure 2 in-memory API end to end.
//
// It compresses a buffer with each implementation, decompresses through
// the codec-dispatching Decompress, verifies the round trip, and prints
// the paper's Figure 1 worked example encoded by the real encoder.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/lzss"
	"culzss/internal/stats"
)

func main() {
	info := core.Init()
	fmt.Printf("device: %s (%d CUDA cores, %d KiB shared per SM)\n\n",
		info.Device.Name, info.CUDACores, info.SharedPerSM>>10)

	// --- Figure 1: the paper's worked encoding example -----------------
	figure1 := []byte("I meant what I said and I said what I meant. " +
		"From there to here, from here to there. I said what I meant.")
	cfg := lzss.Config{Window: 256, MaxMatch: 64, MinMatch: 3}
	tokensStream, err := lzss.EncodeByteAligned(figure1, cfg, lzss.SearchBrute, nil)
	if err != nil {
		log.Fatal(err)
	}
	tokens, err := lzss.ParseTokensByteAligned(tokensStream, len(figure1), &cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 example: %d chars -> %d bytes, tokens:\n  ", len(figure1), len(tokensStream))
	pos := 0
	for _, tok := range tokens {
		if tok.Coded {
			fmt.Printf("(%d,%d)", pos-tok.Match.Distance, tok.Match.Length)
			pos += tok.Match.Length
		} else {
			fmt.Printf("%c", tok.Literal)
			pos++
		}
	}
	fmt.Print("\n\n")

	// --- The in-memory API over a realistic payload ---------------------
	payload := datasets.CFiles(1<<20, 42)
	fmt.Printf("payload: %s of generated C source\n\n", stats.FormatBytes(int64(len(payload))))

	for _, v := range []core.Version{core.Version1, core.Version2, core.VersionSerial, core.VersionParallel, core.VersionAuto} {
		start := time.Now()
		comp, report, err := core.CompressWithReport(payload, core.Params{Version: v})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)

		back, err := core.Decompress(comp, core.Params{})
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(back, payload) {
			log.Fatalf("%v: round trip mismatch", v)
		}

		line := fmt.Sprintf("%-10v ratio %-7s host %-10v", v,
			stats.RatioPercent(len(comp), len(payload)), wall.Round(time.Millisecond))
		if report != nil {
			line += fmt.Sprintf(" simulated GPU %v (kernel %v)",
				report.SimulatedTotal().Round(time.Microsecond),
				report.Launch.KernelTime.Round(time.Microsecond))
		}
		fmt.Println(line)
	}

	fmt.Printf("\nauto-selection picked %v for this payload (paper §V: V2 for ~50%% compressible)\n",
		core.SelectVersion(payload))
}
