package culzss

import (
	"bytes"
	stdbzip2 "compress/bzip2"
	"io"
	"testing"

	"culzss/internal/bzip2"
	"culzss/internal/bzip2/bzfile"
	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
)

// TestEndToEndEveryVersionEveryDataset is the repository-wide integration
// sweep: every implementation compresses every dataset, every container
// opens through the codec-dispatching public API, and the bytes survive.
func TestEndToEndEveryVersionEveryDataset(t *testing.T) {
	const n = 64 << 10
	versions := []core.Version{
		core.Version1, core.Version2, core.VersionSerial,
		core.VersionParallel, core.VersionBZip2, core.VersionAuto,
	}
	for _, ds := range datasets.All() {
		data := ds.Gen(n, 4242)
		for _, v := range versions {
			comp, err := core.Compress(data, core.Params{Version: v})
			if err != nil {
				t.Fatalf("%s/%v: %v", ds.Name, v, err)
			}
			got, err := core.Decompress(comp, core.Params{})
			if err != nil {
				t.Fatalf("%s/%v: decompress: %v", ds.Name, v, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%v: round trip mismatch", ds.Name, v)
			}
		}
	}
}

// TestCrossImplementationAgreement pins the wire-level relationships the
// repository guarantees between implementations.
func TestCrossImplementationAgreement(t *testing.T) {
	data := datasets.KernelTarball(96<<10, 777)

	// V1 kernel == pure-GPU hybrid == multi-GPU == streamed: identical
	// containers.
	base, _, err := gpu.CompressV1(data, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, _, err := gpu.CompressV1Hybrid(data, gpu.Options{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := gpu.CompressV1MultiGPU(data, gpu.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, err := gpu.CompressV1Streamed(data, gpu.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string][]byte{"hybrid": hybrid, "multi": multi, "streamed": streamed} {
		if !bytes.Equal(base, c) {
			t.Errorf("%s container differs from plain V1", name)
		}
	}

	// V2 host post == V2 GPU post.
	v2h, _, err := gpu.CompressV2(data, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2g, _, err := gpu.CompressV2GPUPost(data, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2h, v2g) {
		t.Error("V2 GPU post-pass container differs from host post-pass")
	}
}

// TestBZip2FamilyConsistency ties the internal bzip2 baseline to the
// interchange writer: both run the same pipeline, and the interchange
// stream must decode with the standard library.
func TestBZip2FamilyConsistency(t *testing.T) {
	data := datasets.CFiles(256<<10, 31337)

	internal, err := bzip2.Compress(data, bzip2.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := bzip2.Decompress(internal, 0)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("internal container round trip failed: %v", err)
	}

	var bz bytes.Buffer
	if err := bzfile.Encode(&bz, data, 9); err != nil {
		t.Fatal(err)
	}
	bzLen := bz.Len() // the reader below drains the buffer
	std, err := io.ReadAll(stdbzip2.NewReader(&bz))
	if err != nil || !bytes.Equal(std, data) {
		t.Fatalf(".bz2 interchange round trip failed: %v", err)
	}

	// The two serialisations of the same pipeline should land within a
	// few percent of each other in size.
	a, b := float64(len(internal)), float64(bzLen)
	if a/b > 1.15 || b/a > 1.15 {
		t.Errorf("container (%d) and .bz2 (%d) sizes diverge beyond framing differences", len(internal), bzLen)
	}
}
